# dcmodel build targets.

GO ?= go

.PHONY: all build vet test race cover bench fuzz examples artifacts clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerates every table/figure and runs the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzReadJSON -fuzztime=30s ./internal/trace/

examples:
	@for ex in quickstart storagestudy webtier selfsimilar serverconfig incast tracing memorymodel; do \
		echo "== examples/$$ex =="; \
		$(GO) run ./examples/$$ex || exit 1; \
	done

# The artifacts EXPERIMENTS.md records.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
