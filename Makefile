# dcmodel build targets. Run `make help` for a summary.

GO ?= go

.PHONY: all build vet test test-race race chaos obs spec cluster whatif provision cover cover-spec bench bench-json bench-json-pr10 bench-compare fuzz fuzz-smoke vulncheck examples artifacts serve loadtest clean help

all: build vet test

help:
	@echo "dcmodel targets:"
	@echo "  all        build + vet + test"
	@echo "  build      go build ./..."
	@echo "  vet        go vet ./..."
	@echo "  test       go test ./..."
	@echo "  test-race  go test -race ./... — the concurrency gate for the"
	@echo "             parallel cross-examination engine and sharded simulator"
	@echo "  race       alias for test-race"
	@echo "  chaos      fault-armed acceptance run under -race: fault engine,"
	@echo "             degraded simulation/replay, breaker + armed-drain daemon"
	@echo "  obs        observability gate: vet, the pprof-import guard, and"
	@echo "             the obs/serve/dapper suites under -race (metrics golden,"
	@echo "             trace determinism, 96-client scrape lifecycle)"
	@echo "  spec       workload-spec gate: vet + the internal/spec suite"
	@echo "             (parser, golden presets, worker-count determinism) under -race"
	@echo "  cluster    distributed-cluster gate: the coordinator/worker suite"
	@echo "             under -race (hash-ring routing, exact-merge byte-identity,"
	@echo "             mid-run kill with zero dropped requests)"
	@echo "  whatif     analytical-twin gate under -race: twin compilers +"
	@echo "             solvers, the facade BuildTwin/WhatIf surface, the"
	@echo "             /v1/whatif byte-stability + no-DES contract, and the"
	@echo "             six-preset twin-vs-DES deviation bounds"
	@echo "  provision  closed-loop optimizer gate under -race: the"
	@echo "             internal/optimize suite (byte-identical plans for any"
	@echo "             worker count, strategy determinism), the facade's"
	@echo "             mapreduce reproduction, and the daemon's /v1/provision"
	@echo "             + drift-triggered auto-reprovision lifecycle"
	@echo "  cover      go test -cover ./... + the internal/spec coverage floor"
	@echo "  cover-spec enforce the $(SPEC_COVER_FLOOR)% statement-coverage floor on internal/spec"
	@echo "  bench      regenerate every table/figure + ablations (-bench=. -benchmem)"
	@echo "  bench-json rerun the hot-path benchmarks and refresh BENCH_PR7.json"
	@echo "             (trace-v2 codec + batched synthesis vs the frozen PR 2 baseline)"
	@echo "  bench-json-pr10  rerun the provisioning-search benchmarks and refresh"
	@echo "             BENCH_PR10.json (configs/sec + twin-vs-DES ratio, baseline"
	@echo "             chained from BENCH_PR7.json)"
	@echo "  bench-compare  quick benchstat-style table vs the frozen baseline (no file written)"
	@echo "  fuzz       run the codec, sharded-simulator and spec fuzz targets (30s each)"
	@echo "  fuzz-smoke quick CI fuzz pass over the same targets (10s each)"
	@echo "  vulncheck  govulncheck over the whole module (installed on demand)"
	@echo "  examples   run every example program"
	@echo "  artifacts  record test + bench output to *_output.txt"
	@echo "  serve      run the dcmodeld model-serving daemon on :8080"
	@echo "  loadtest   ingest a simulated trace into a running daemon and"
	@echo "             fire 64 concurrent synthesize requests at it"
	@echo "  clean      remove build cache and recorded artifacts"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet gates test so a vet regression can never ride in on a green test run.
test: vet
	$(GO) test ./...

# The race detector must stay clean: parallel cross-examination, sharded
# simulation and concurrent synthesis all run under it in CI.
test-race:
	$(GO) test -race ./...

race: test-race

# Chaos gate: every fault-injection and failure-recovery test under the
# race detector — the deterministic fault engine, degraded GFS simulation
# and replay, the facade's faulty sharded run, and the daemon's breaker +
# fault-armed drain lifecycle (zero dropped in-flight requests).
chaos:
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -race -count=1 -run 'Fault|Degraded|Breaker|Faulty|HealthyReplay' \
		. ./internal/gfs/ ./internal/replay/ ./internal/serve/ ./internal/crossexam/

# Observability gate: the profiling surface stays confined to
# internal/obs (one deliberate, flag-gated mount point), the /metrics
# exposition stays byte-identical to its golden file, and the tracing
# substrate stays race-clean under the 96-client scrape lifecycle.
obs:
	$(GO) vet ./...
	@bad=$$($(GO) list -f '{{.ImportPath}} {{join .Imports ","}},{{join .TestImports ","}}' ./... \
		| grep 'net/http/pprof' | grep -v '^dcmodel/internal/obs ' || true); \
	if [ -n "$$bad" ]; then \
		echo "net/http/pprof imported outside internal/obs (mount via obs.RegisterPprof):"; \
		echo "$$bad"; exit 1; \
	fi
	$(GO) test -race -count=1 ./internal/obs/ ./internal/serve/ ./internal/dapper/

# Spec gate: the declarative workload-spec engine's whole suite — parser
# precision, preset goldens, phase math and the worker-count determinism
# contract — under the race detector.
spec:
	$(GO) vet ./internal/spec/ ./presets/
	$(GO) test -race -count=1 -run TestSpec ./internal/spec/

# Cluster gate: the distributed coordinator/worker subsystem under the
# race detector — consistent-hash routing, the exact-merge determinism
# contract (merged model byte-identical to single-node training for any
# worker count and interleaving), and fault-scheduled mid-run kills with
# zero dropped requests.
cluster:
	$(GO) test -race -count=1 ./internal/cluster/

# Analytical-twin gate: the closed-form fast path's whole contract under
# the race detector — the twin compilers and queueing solvers, the facade
# surface, the daemon's /v1/whatif (byte-stable responses, no DES, no work
# queue), and the pinned twin-vs-DES deviation bounds on all six presets.
whatif:
	$(GO) test -race -count=1 ./internal/twin/ ./internal/queueing/
	$(GO) test -race -count=1 -run 'Twin|WhatIf' . ./internal/serve/ ./internal/crossexam/

# Closed-loop provisioning gate: the optimizer's determinism contract
# (plans byte-identical for any worker count and population order), the
# facade's mapreduce 21-server reproduction, and the daemon's /v1/provision
# endpoint + drift-triggered auto-reprovision with zero dropped requests —
# all under the race detector.
provision:
	$(GO) test -race -count=1 ./internal/optimize/
	$(GO) test -race -count=1 -run 'Provision|QueryEnvelope|AutoReprovision' . ./internal/serve/

cover: cover-spec
	$(GO) test -cover ./...

# The spec engine is the repo's configuration surface; its statement
# coverage must not sink below the floor.
SPEC_COVER_FLOOR = 85
cover-spec:
	@$(GO) test -coverprofile=/tmp/spec_cover.out ./internal/spec/ > /dev/null
	@pct=$$($(GO) tool cover -func=/tmp/spec_cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/spec coverage: $$pct% (floor $(SPEC_COVER_FLOOR)%)"; \
	ok=$$(echo "$$pct $(SPEC_COVER_FLOOR)" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "internal/spec coverage $$pct% fell below the $(SPEC_COVER_FLOOR)% floor"; exit 1; \
	fi

# Regenerates every table/figure and runs the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The benchmark packages the BENCH_*.json records cover: the synthesis hot
# paths (alias-method sampling, Markov stepping, DES, trace codec) plus the
# end-to-end Table 2 pipeline in the root package.
BENCH_JSON_PKGS = . ./internal/markov/ ./internal/stats/ ./internal/workload/ ./internal/queueing/ ./internal/trace/

# Baseline-name mapping for BENCH_PR7.json: the trace-v2 codec and the
# batch synthesis/stepping APIs replace the CSV codec and the scalar APIs
# on the same hot paths, so each inherits the frozen baseline of the
# measurement it supersedes (colon-separated: bench names contain '=').
BENCH_RENAMES = \
	-rename BenchmarkWriteCSV:BenchmarkWriteBinary \
	-rename BenchmarkReadCSV:BenchmarkReadBinary \
	-rename BenchmarkKoozaSynthesize:BenchmarkKoozaSynthesizeBatch \
	-rename BenchmarkSynthTable2Scale:BenchmarkSynthTable2ScaleBatch \
	-rename BenchmarkChainStep/states=8:BenchmarkChainStepN/states=8 \
	-rename BenchmarkChainStep/states=32:BenchmarkChainStepN/states=32 \
	-rename BenchmarkChainStep/states=128:BenchmarkChainStepN/states=128 \
	-rename BenchmarkChainStep/states=1024:BenchmarkChainStepN/states=1024

# Regenerates BENCH_PR7.json: "current" is remeasured, "baseline" is the
# frozen pre-optimization section of BENCH_PR2.json (see cmd/bench2json),
# and the benchstat-style comparison is printed.
# -p 1 keeps the package test binaries from benchmarking concurrently
# and contending for cores (go test parallelizes across packages).
bench-json:
	$(GO) test -p 1 -bench=. -benchmem -run=xxx -benchtime=2s $(BENCH_JSON_PKGS) > bench_raw.txt
	$(GO) run ./cmd/bench2json -in bench_raw.txt -out BENCH_PR7.json -baseline-json BENCH_PR2.json \
		-print $(BENCH_RENAMES) \
		-note "Baseline imported from BENCH_PR2.json (frozen pre-optimization numbers); current regenerated by 'make bench-json' after the trace-v2 codec + batched-synthesis pass (PR 7)."
	rm -f bench_raw.txt

# Regenerates BENCH_PR10.json: the provisioning-search benchmarks
# (configs/sec through the twin-first evaluator, twin-vs-DES run ratio),
# with the baseline section chained from BENCH_PR7.json so every record
# traces back to the original pre-optimization numbers.
bench-json-pr10:
	$(GO) test -bench=. -benchmem -run=xxx -benchtime=2s ./internal/optimize/ > bench_raw.txt
	$(GO) run ./cmd/bench2json -in bench_raw.txt -out BENCH_PR10.json -baseline-json BENCH_PR7.json -print \
		-note "Baseline chained from BENCH_PR7.json; current adds the closed-loop provisioning search benchmarks (PR 10): configs/sec is the twin-first evaluation rate, twin_per_des the twin-evals-per-DES-run ratio."
	rm -f bench_raw.txt

# Quick comparison against the frozen baseline without touching the
# checked-in record — the CI log's benchstat-style table.
bench-compare:
	$(GO) test -p 1 -bench=. -benchmem -run=xxx -benchtime=0.3s $(BENCH_JSON_PKGS) > bench_raw.txt
	$(GO) run ./cmd/bench2json -in bench_raw.txt -baseline-json BENCH_PR2.json -print $(BENCH_RENAMES)
	rm -f bench_raw.txt

FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzReadJSON -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzBinaryCodec -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzShardedCodecRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzSpanReader -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzSpecParse -fuzztime=$(FUZZTIME) -run '^$$' ./internal/spec/
	$(GO) test -fuzz=FuzzSpecRoundTrip -fuzztime=$(FUZZTIME) -run '^$$' ./internal/spec/

# The CI smoke pass: same targets, 10 seconds each.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# Known-vulnerability scan over the module and its (stdlib-only)
# dependency graph. Installs govulncheck on demand; CI runs this on every
# push.
vulncheck:
	@command -v govulncheck >/dev/null 2>&1 || $(GO) install golang.org/x/vuln/cmd/govulncheck@latest
	govulncheck ./...

examples:
	@for ex in quickstart storagestudy webtier selfsimilar serverconfig incast tracing memorymodel; do \
		echo "== examples/$$ex =="; \
		$(GO) run ./examples/$$ex || exit 1; \
	done

# The artifacts EXPERIMENTS.md records.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Runs the model-serving daemon in the foreground (Ctrl-C / SIGTERM
# drains gracefully). Override flags with SERVE_FLAGS.
SERVE_ADDR ?= :8080
serve:
	$(GO) run ./cmd/dcmodeld -addr $(SERVE_ADDR) $(SERVE_FLAGS)

# Exercises a running daemon (start one with `make serve` first): streams
# a 4000-request simulated GFS trace into the window, then fires 64
# concurrent synthesize requests and prints the status-code tally — 200s
# are served syntheses, 429s are the bounded queue pushing back.
LOADTEST_URL ?= http://localhost:8080
loadtest:
	$(GO) run ./cmd/gfstrace -requests 4000 -rate 200 -o /tmp/dcmodeld_load.csv
	curl -s --data-binary @/tmp/dcmodeld_load.csv $(LOADTEST_URL)/v1/ingest; echo
	@rm -f /tmp/dcmodeld_codes.txt; \
	for i in $$(seq 1 64); do \
		curl -s -o /dev/null -w "%{http_code}\n" \
			"$(LOADTEST_URL)/v1/synthesize?n=2000&seed=$$i" >> /tmp/dcmodeld_codes.txt & \
	done; wait; sort /tmp/dcmodeld_codes.txt | uniq -c
	curl -s $(LOADTEST_URL)/metrics | grep -E 'dcmodeld_(queue_rejected_total|retrain_total|window_requests)'

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
