package dcmodel

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSynthesizeBatchMatchesScalar pins the batch-synthesis determinism
// contract for all three model families: same seed, SynthesizeBatch emits a
// trace byte-identical (via the canonical CSV form) to Synthesize, and the
// RNG streams stay in lockstep afterwards. Run under -race it also guards
// the read-only-model contract the batch path inherits.
func TestSynthesizeBatchMatchesScalar(t *testing.T) {
	tr := simulate(t, 1500, 20, 11)
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		t.Run(a.String(), func(t *testing.T) {
			m, err := Train(tr, a)
			if err != nil {
				t.Fatal(err)
			}
			// A non-slab-aligned n exercises the final partial reservation.
			const n = 2*4096 + 1234
			r1 := rand.New(rand.NewSource(5))
			scalar, err := m.Synthesize(n, r1)
			if err != nil {
				t.Fatal(err)
			}
			r2 := rand.New(rand.NewSource(5))
			batch, err := m.SynthesizeBatch(n, r2)
			if err != nil {
				t.Fatal(err)
			}
			var bs, bb bytes.Buffer
			if err := WriteTraceCSV(&bs, scalar); err != nil {
				t.Fatal(err)
			}
			if err := WriteTraceCSV(&bb, batch); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bs.Bytes(), bb.Bytes()) {
				t.Fatal("SynthesizeBatch trace differs from Synthesize at the same seed")
			}
			if r1.Float64() != r2.Float64() {
				t.Fatal("RNG streams diverged after the batch")
			}
		})
	}
}

// TestSynthesizeBatchConcurrent drives concurrent batch syntheses on one
// shared model under -race: the model must stay read-only on the batch path
// exactly as on the scalar one.
func TestSynthesizeBatchConcurrent(t *testing.T) {
	tr := simulate(t, 1000, 20, 12)
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		m, err := Train(tr, a)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				if _, err := m.SynthesizeBatch(3000, rand.New(rand.NewSource(seed))); err != nil {
					errs <- fmt.Errorf("%v seed %d: %w", a, seed, err)
				}
			}(int64(w))
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestSynthesizeBatchErrors: the batch path validates like the scalar one.
func TestSynthesizeBatchErrors(t *testing.T) {
	tr := simulate(t, 500, 20, 13)
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		m, err := Train(tr, a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.SynthesizeBatch(0, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%v: SynthesizeBatch(0) succeeded", a)
		}
	}
}
