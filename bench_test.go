package dcmodel

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md):
//
//	BenchmarkTable1CrossExamination — Table 1 (qualitative comparison,
//	    backed by measured proxies)
//	BenchmarkTable2Validation       — Table 2 (original vs synthetic
//	    request features and latency)
//	BenchmarkFigure1RequestFlow     — Figure 1 (a request's path through
//	    the GFS chunkserver)
//	BenchmarkFigure2ModelStructure  — Figure 2 (the trained KOOZA model)
//
// plus the ablation benches for the design choices DESIGN.md calls out
// (storage-state count, hierarchical storage model, the phase queue, the
// arrival-process family, CPU quantization).
//
// Each bench prints its table/figure once and reports its headline
// deviations via b.ReportMetric, so `go test -bench=. -benchmem` both
// regenerates the artifacts and times the pipelines.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dcmodel/internal/hw"
	"dcmodel/internal/kooza"
	"dcmodel/internal/markov"
	"dcmodel/internal/replay"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// benchTrace lazily builds the shared training trace (4000 requests of the
// paper's two validation classes on one chunkserver).
var benchTrace = sync.OnceValue(func() *Trace {
	tr, err := Simulate(DefaultGFSConfig(), GFSRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 4000, Seed: 42},
		Rate:      20,
	})
	if err != nil {
		panic(err)
	}
	return tr
})

var printOnce sync.Map // experiment name -> *sync.Once

func printExperiment(name, body string) {
	v, _ := printOnce.LoadOrStore(name, &sync.Once{})
	v.(*sync.Once).Do(func() {
		fmt.Printf("\n===== %s =====\n%s\n", name, body)
	})
}

func BenchmarkTable2Validation(b *testing.B) {
	tr := benchTrace()
	var maxFeat, maxLat float64
	for i := 0; i < b.N; i++ {
		res, err := Validate(tr, tr.Len(), DefaultPlatform(), KoozaOptions{}, int64(100+i))
		if err != nil {
			b.Fatal(err)
		}
		maxFeat, maxLat = 0, 0
		for _, row := range res.Rows {
			if d := row.FeatureDeviation(); d > maxFeat {
				maxFeat = d
			}
			if d := row.LatencyDeviation(); d > maxLat {
				maxLat = d
			}
		}
		if i == 0 {
			printExperiment("Table 2 — KOOZA validation (paper: features <= 1%, latency <= 6.6%)", res.Render())
		}
	}
	b.ReportMetric(100*maxFeat, "feat-dev-%")
	b.ReportMetric(100*maxLat, "lat-dev-%")
}

func BenchmarkTable1CrossExamination(b *testing.B) {
	tr := benchTrace()
	var kz Scores
	for i := 0; i < b.N; i++ {
		scores, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{Requests: tr.Len(), Seed: int64(200 + i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range scores {
			if s.Name == "KOOZA" {
				kz = s
			}
		}
		if i == 0 {
			printExperiment("Table 1 — cross-examination of the three approaches", RenderScores(scores))
		}
	}
	b.ReportMetric(kz.Completeness, "kooza-completeness")
	b.ReportMetric(kz.RequestFeatures, "kooza-features")
	b.ReportMetric(kz.TimeDependencies, "kooza-timedeps")
}

func BenchmarkFigure1RequestFlow(b *testing.B) {
	var rendered string
	var phases int
	for i := 0; i < b.N; i++ {
		tr, err := Simulate(DefaultGFSConfig(), GFSRun{
			RunConfig: RunConfig{Mix: Table2Mix(), Requests: 50, Seed: int64(300 + i)},
			Rate:      20,
		})
		if err != nil {
			b.Fatal(err)
		}
		rendered = renderRequestFlow(tr)
		phases = len(tr.Requests[0].Phases())
	}
	printExperiment("Figure 1 — GFS structure: a user request's path through the chunkserver", rendered)
	b.ReportMetric(float64(phases), "phases/request")
}

// renderRequestFlow prints the measured per-phase timeline of one read and
// one write request — the regeneration of Figure 1.
func renderRequestFlow(tr *Trace) string {
	out := ""
	for _, class := range tr.Classes() {
		sub := tr.ByClass(class)
		if sub.Len() == 0 {
			continue
		}
		r := sub.Requests[0]
		out += fmt.Sprintf("%s request (latency %.3f ms):\n", class, 1000*r.Latency())
		for _, s := range r.Spans {
			detail := ""
			switch s.Subsystem {
			case Network:
				detail = fmt.Sprintf("%d B", s.Bytes)
			case CPU:
				detail = fmt.Sprintf("util %.2f%%", 100*s.Util)
			case Memory:
				detail = fmt.Sprintf("%d B %s bank %d", s.Bytes, s.Op, s.Bank)
			case Storage:
				detail = fmt.Sprintf("%d B %s LBN %d", s.Bytes, s.Op, s.LBN)
			}
			out += fmt.Sprintf("  %-8s t=%9.4f ms  dur=%8.4f ms  %s\n",
				s.Subsystem, 1000*(s.Start-r.Arrival), 1000*s.Duration, detail)
		}
	}
	return out
}

func BenchmarkFigure2ModelStructure(b *testing.B) {
	tr := benchTrace()
	var m *KoozaModel
	for i := 0; i < b.N; i++ {
		var err error
		m, err = TrainKooza(tr, KoozaOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	printExperiment("Figure 2 — the trained KOOZA model (four models + time-dependency queue)", m.Describe())
	b.ReportMetric(float64(m.NumParams()), "params")
}

// ---- Ablations ----

// latencyDeviation runs train -> synthesize -> replay with the given
// options and returns the worst per-class mean-latency deviation.
func latencyDeviation(b *testing.B, tr *Trace, opts KoozaOptions, seed int64) float64 {
	b.Helper()
	m, err := TrainKooza(tr, opts)
	if err != nil {
		b.Fatal(err)
	}
	synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	timed, err := Replay(synth, DefaultPlatform())
	if err != nil {
		b.Fatal(err)
	}
	var worst float64
	for _, class := range tr.Classes() {
		o := stats.Mean(tr.ByClass(class).Latencies())
		s := stats.Mean(timed.ByClass(class).Latencies())
		if d := stats.RelError(o, s); d > worst {
			worst = d
		}
	}
	return worst
}

func BenchmarkAblationStorageRegions(b *testing.B) {
	tr := benchTrace()
	for _, regions := range []int{4, 16, 32, 128} {
		b.Run(fmt.Sprintf("regions=%d", regions), func(b *testing.B) {
			var dev float64
			var params int
			for i := 0; i < b.N; i++ {
				opts := KoozaOptions{StorageRegions: regions}
				dev = latencyDeviation(b, tr, opts, int64(400+i))
				m, err := TrainKooza(tr, opts)
				if err != nil {
					b.Fatal(err)
				}
				params = m.NumParams()
			}
			b.ReportMetric(100*dev, "lat-dev-%")
			b.ReportMetric(float64(params), "params")
		})
	}
}

func BenchmarkAblationHierarchicalStorage(b *testing.B) {
	tr := benchTrace()
	for _, hier := range []bool{false, true} {
		name := "flat"
		if hier {
			name = "hierarchical"
		}
		b.Run(name, func(b *testing.B) {
			var dev float64
			var params int
			for i := 0; i < b.N; i++ {
				opts := KoozaOptions{StorageRegions: 64, Hierarchical: hier}
				dev = latencyDeviation(b, tr, opts, int64(500+i))
				m, err := TrainKooza(tr, opts)
				if err != nil {
					b.Fatal(err)
				}
				params = m.NumParams()
			}
			b.ReportMetric(100*dev, "lat-dev-%")
			b.ReportMetric(float64(params), "params")
		})
	}
}

func BenchmarkAblationCPUStates(b *testing.B) {
	tr := benchTrace()
	for _, states := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("states=%d", states), func(b *testing.B) {
			var utilDev float64
			for i := 0; i < b.N; i++ {
				m, err := TrainKooza(tr, KoozaOptions{CPUStates: states})
				if err != nil {
					b.Fatal(err)
				}
				synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(int64(600+i))))
				if err != nil {
					b.Fatal(err)
				}
				utilDev = 0
				for _, class := range tr.Classes() {
					o := stats.Mean(tr.ByClass(class).SpanFeature(trace.CPU, func(s Span) float64 { return s.Util }))
					sy := stats.Mean(synth.ByClass(class).SpanFeature(trace.CPU, func(s Span) float64 { return s.Util }))
					if d := stats.RelError(o, sy); d > utilDev {
						utilDev = d
					}
				}
			}
			b.ReportMetric(100*utilDev, "util-dev-%")
		})
	}
}

func BenchmarkAblationPhaseQueue(b *testing.B) {
	// Isolates the contribution of the time-dependency queue: KOOZA (with
	// the queue) vs the in-breadth model (same subsystem models, no
	// structure) on per-class latency fidelity.
	tr := benchTrace()
	b.Run("with-queue-kooza", func(b *testing.B) {
		var dev float64
		for i := 0; i < b.N; i++ {
			dev = latencyDeviation(b, tr, KoozaOptions{}, int64(700+i))
		}
		b.ReportMetric(100*dev, "lat-dev-%")
	})
	b.Run("without-queue-inbreadth", func(b *testing.B) {
		var dev float64
		for i := 0; i < b.N; i++ {
			m, err := TrainInBreadth(tr, InBreadthOptions{})
			if err != nil {
				b.Fatal(err)
			}
			synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(int64(710+i))))
			if err != nil {
				b.Fatal(err)
			}
			timed, err := Replay(synth, DefaultPlatform())
			if err != nil {
				b.Fatal(err)
			}
			pooled := stats.Mean(timed.Latencies())
			dev = 0
			for _, class := range tr.Classes() {
				o := stats.Mean(tr.ByClass(class).Latencies())
				if d := stats.RelError(o, pooled); d > dev {
					dev = d
				}
			}
		}
		b.ReportMetric(100*dev, "lat-dev-%")
	})
}

func BenchmarkAblationArrivalProcess(b *testing.B) {
	// How well does the network queueing model's KS-selected fit track
	// different true arrival processes (Sengupta's non-Poisson warning)?
	arrivalCases := []struct {
		name string
		arr  Arrivals
	}{
		{"poisson", workload.Poisson{Rate: 20}},
		{"mmpp", workload.MMPP2{Rate: [2]float64{50, 5}, Hold: [2]float64{1, 2}}},
		{"selfsimilar", workload.SelfSimilar{Sources: 16, OnRate: 5, MeanOn: 1, MeanOff: 3, Alpha: 1.4}},
	}
	for _, tc := range arrivalCases {
		for _, arrivalStates := range []int{1, 4} {
			name := tc.name + "/renewal"
			if arrivalStates > 1 {
				name = tc.name + "/semi-markov"
			}
			b.Run(name, func(b *testing.B) {
				tr, err := Simulate(DefaultGFSConfig(), GFSRun{
					RunConfig: RunConfig{Mix: Table2Mix(), Requests: 4000, Seed: 800},
					Arrivals:  tc.arr,
				})
				if err != nil {
					b.Fatal(err)
				}
				origIDC := stats.IndexOfDispersion(tr.Arrivals(), 1)
				var rateErr, idcErr float64
				for i := 0; i < b.N; i++ {
					m, err := TrainKooza(tr, KoozaOptions{ArrivalStates: arrivalStates})
					if err != nil {
						b.Fatal(err)
					}
					synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(int64(810+i))))
					if err != nil {
						b.Fatal(err)
					}
					origRate := 1 / stats.Mean(tr.Interarrivals())
					synthRate := 1 / stats.Mean(synth.Interarrivals())
					rateErr = stats.RelError(origRate, synthRate)
					idcErr = stats.RelError(origIDC, stats.IndexOfDispersion(synth.Arrivals(), 1))
				}
				b.ReportMetric(100*rateErr, "rate-dev-%")
				b.ReportMetric(100*idcErr, "IDC-dev-%")
			})
		}
	}
}

func BenchmarkAblationMarkovOrder(b *testing.B) {
	// The detail/complexity trade-off at the chain level: order-1 vs
	// order-2 storage-region chains on held-out likelihood and parameter
	// count.
	tr := benchTrace()
	const regions = 16
	regionSeq := func(t *Trace) []int {
		var lbns []float64
		var maxLBN float64
		lbns = t.SpanFeature(trace.Storage, func(s Span) float64 { return float64(s.LBN) })
		for _, l := range lbns {
			if l > maxLBN {
				maxLBN = l
			}
		}
		per := (maxLBN + 1) / regions
		seq := make([]int, len(lbns))
		for i, l := range lbns {
			st := int(l / per)
			if st >= regions {
				st = regions - 1
			}
			seq[i] = st
		}
		return seq
	}
	trainSeq := regionSeq(tr)
	held, err := Simulate(DefaultGFSConfig(), GFSRun{RunConfig: RunConfig{Mix: Table2Mix(), Requests: 1000, Seed: 43}, Rate: 20})
	if err != nil {
		b.Fatal(err)
	}
	heldSeq := regionSeq(held)
	for _, order := range []int{1, 2} {
		b.Run(fmt.Sprintf("order=%d", order), func(b *testing.B) {
			var ll float64
			var params int
			for i := 0; i < b.N; i++ {
				m, err := markov.TrainOrderK([][]int{trainSeq}, regions, order, 0.01)
				if err != nil {
					b.Fatal(err)
				}
				ll = m.LogLikelihood(heldSeq) / float64(len(heldSeq))
				params = m.NumParams()
			}
			b.ReportMetric(ll, "heldout-loglik")
			b.ReportMetric(float64(params), "params")
		})
	}
}

func BenchmarkAblationPlatformTransfer(b *testing.B) {
	// Train on platform A, predict on a slower platform B (4x slower
	// disk, 10x slower network). KOOZA's feature-based synthesis
	// transfers; in-depth's recorded timings cannot — the paper's central
	// applicability argument, quantified.
	tr := benchTrace()
	slowPlatform := Platform{NewServer: func() *hw.Server {
		s := DefaultPlatform().NewServer()
		s.Disk.TransferRate /= 4
		s.Net.Bandwidth /= 10
		return s
	}}
	truthB, err := Replay(tr, slowPlatform)
	if err != nil {
		b.Fatal(err)
	}
	truth := stats.Mean(truthB.Latencies())
	b.Run("kooza", func(b *testing.B) {
		var devSum float64
		for i := 0; i < b.N; i++ {
			m, err := TrainKooza(tr, KoozaOptions{})
			if err != nil {
				b.Fatal(err)
			}
			synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(int64(950+i))))
			if err != nil {
				b.Fatal(err)
			}
			predB, err := Replay(synth, slowPlatform)
			if err != nil {
				b.Fatal(err)
			}
			devSum += stats.RelError(truth, stats.Mean(predB.Latencies()))
		}
		b.ReportMetric(100*devSum/float64(b.N), "transfer-dev-%")
	})
	b.Run("indepth", func(b *testing.B) {
		var devSum float64
		for i := 0; i < b.N; i++ {
			m, err := TrainInDepth(tr)
			if err != nil {
				b.Fatal(err)
			}
			synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(int64(960+i))))
			if err != nil {
				b.Fatal(err)
			}
			devSum += stats.RelError(truth, stats.Mean(synth.Latencies()))
		}
		b.ReportMetric(100*devSum/float64(b.N), "transfer-dev-%")
	})
}

func BenchmarkScalingServers(b *testing.B) {
	// The paper: "Scaling to multiple servers in order to simulate
	// real-application scenarios requires multiple instances of the
	// model." Train on an N-server trace, synthesize, replay on N
	// servers; report the pipeline wall-clock and the latency fidelity at
	// each scale.
	for _, servers := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			cfg := DefaultGFSConfig()
			cfg.Chunkservers = servers
			cfg.PopularitySkew = 0
			tr, err := Simulate(cfg, GFSRun{
				RunConfig: RunConfig{Mix: Table2Mix(), Requests: 2000, Seed: int64(900 + servers)},
				Rate:      20 * float64(servers),
			})
			if err != nil {
				b.Fatal(err)
			}
			var dev float64
			for i := 0; i < b.N; i++ {
				m, err := TrainKooza(tr, KoozaOptions{})
				if err != nil {
					b.Fatal(err)
				}
				synth, err := m.Synthesize(tr.Len(), rand.New(rand.NewSource(int64(910+i))))
				if err != nil {
					b.Fatal(err)
				}
				timed, err := Replay(synth, DefaultPlatform())
				if err != nil {
					b.Fatal(err)
				}
				dev = 0
				for _, class := range tr.Classes() {
					o := stats.Mean(tr.ByClass(class).Latencies())
					s := stats.Mean(timed.ByClass(class).Latencies())
					if d := stats.RelError(o, s); d > dev {
						dev = d
					}
				}
			}
			b.ReportMetric(100*dev, "lat-dev-%")
		})
	}
}

func BenchmarkGFSSimulator(b *testing.B) {
	// Raw substrate throughput: requests simulated per second.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(DefaultGFSConfig(), GFSRun{
			RunConfig: RunConfig{Mix: Table2Mix(), Requests: 1000, Seed: int64(i)},
			Rate:      20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKoozaTrain(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kooza.Train(tr, kooza.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKoozaSynthesize(b *testing.B) {
	tr := benchTrace()
	m, err := kooza.Train(tr, kooza.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Synthesize(1000, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKoozaSynthesizeBatch is the slab-reserving batch flavor of
// BenchmarkKoozaSynthesize (same seed, byte-identical output) — the number
// BENCH_PR7.json tracks against the scalar PR 2 baseline.
func BenchmarkKoozaSynthesizeBatch(b *testing.B) {
	tr := benchTrace()
	m, err := kooza.Train(tr, kooza.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SynthesizeBatch(1000, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthTable2Scale times pure KOOZA synthesis at the scale of the
// Table 2 validation run (the full 4000-request training-trace length) —
// the number BENCH_PR2.json tracks for the O(1)-sampler speedup.
func BenchmarkSynthTable2Scale(b *testing.B) {
	tr := benchTrace()
	m, err := kooza.Train(tr, kooza.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Synthesize(tr.Len(), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthTable2ScaleBatch is the batch flavor of
// BenchmarkSynthTable2Scale: the path the daemon, the sharded facade and
// cmd/synth actually run since trace-v2 landed.
func BenchmarkSynthTable2ScaleBatch(b *testing.B) {
	tr := benchTrace()
	m, err := kooza.Train(tr, kooza.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SynthesizeBatch(tr.Len(), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCrossExamination times the full three-approach chain
// (train -> synthesize -> replay -> score) at several worker counts. The
// output is identical at every worker count (see the determinism tests);
// only the wall clock changes. On a 4-core machine workers=4 should beat
// workers=1 by >= 1.8x: the three chains are independent, and in-breadth
// and KOOZA dominate the serial runtime about equally.
func BenchmarkParallelCrossExamination(b *testing.B) {
	tr := benchTrace()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{Requests: tr.Len(), Seed: int64(1000 + i),
					Workers: workers, SkipThroughput: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedGFS times the sharded cluster simulator at several worker
// counts; with 8 shards the output trace is byte-identical across worker
// counts and the parallel speedup tracks the core count.
func BenchmarkShardedGFS(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(DefaultGFSConfig(), GFSRun{
					RunConfig: RunConfig{Mix: Table2Mix(), Requests: 8000,
						Seed: int64(1100 + i), Shards: 8, Workers: workers},
					Rate: 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(tr, replay.Platform{NewServer: DefaultPlatform().NewServer}); err != nil {
			b.Fatal(err)
		}
	}
}
