package dcmodel

import "dcmodel/internal/cluster"

// Distributed cluster re-exports (cmd/dcmodel-cluster is a thin wrapper
// over these; embedders can run coordinator and workers in-process).
// The cluster mirrors the paper's GFS master/chunkserver topology: the
// coordinator consistent-hash-routes ingested request streams across
// worker shards, assembles a global model by exact merge of each shard's
// sufficient statistics, and replicates it so any node answers queries.
// The merged model is byte-identical regardless of worker count and
// routing interleaving — including across mid-run worker kills.
type (
	// ClusterCoordinator fronts the cluster: routed ingest, exact model
	// merge, replication, scored query routing, and breaker-style local
	// degradation when every worker is down.
	ClusterCoordinator = cluster.Coordinator
	// ClusterCoordinatorConfig tunes a ClusterCoordinator.
	ClusterCoordinatorConfig = cluster.CoordinatorConfig
	// ClusterWorker is one data node: it trains its shard online and
	// serves queries from the replicated global model.
	ClusterWorker = cluster.Worker
	// ClusterWorkerConfig tunes a ClusterWorker.
	ClusterWorkerConfig = cluster.WorkerConfig
	// ClusterModel is the exactly-mergeable workload model the cluster
	// trains and replicates.
	ClusterModel = cluster.Model
	// ClusterModelConfig fixes the quantization every node must share.
	ClusterModelConfig = cluster.ModelConfig
	// RoutingScorer scores candidate workers for routed queries; see
	// ParseRoutingScorers for the built-in policies.
	RoutingScorer = cluster.Scorer
)

// NewClusterCoordinator builds a coordinator over cfg.Workers.
func NewClusterCoordinator(cfg ClusterCoordinatorConfig) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(cfg)
}

// NewClusterWorker builds a worker (zero config fields defaulted).
func NewClusterWorker(cfg ClusterWorkerConfig) (*ClusterWorker, error) {
	return cluster.NewWorker(cfg)
}

// NewClusterModel builds an empty exactly-mergeable model; embedders can
// train shards themselves and Merge them without any HTTP in between.
func NewClusterModel(cfg ClusterModelConfig) (*ClusterModel, error) {
	return cluster.NewModel(cfg)
}

// ParseRoutingScorers resolves a -routing-scorers flag value: a
// comma-separated subset of queue-depth, model-staleness and
// shard-affinity (empty selects all three).
func ParseRoutingScorers(list string) ([]RoutingScorer, error) {
	return cluster.ParseScorers(list)
}

// DefaultClusterModelConfig returns the quantization defaults shared
// with the single-node serving daemon.
func DefaultClusterModelConfig() ClusterModelConfig { return cluster.DefaultModelConfig() }
