// Command bench2json converts `go test -bench -benchmem` output into the
// machine-readable benchmark record the repository checks in (e.g.
// BENCH_PR2.json), so performance claims in the docs are backed by a file
// that can be regenerated and diffed.
//
// The JSON holds two measurement sets: "baseline" (recorded once, before
// an optimization lands) and "current", plus the per-benchmark ns/op
// speedup of current over baseline. When several `-count` repetitions of
// one benchmark appear in the input, the fastest is kept — the standard
// best-of-N reading that suppresses scheduler noise.
//
// Usage:
//
//	go test -bench . -benchmem -run xxx ./... > bench_raw.txt
//	bench2json -in bench_raw.txt -out BENCH_PR2.json
//
// The baseline section comes from -baseline (raw benchmark output captured
// before the change) or -baseline-json (the frozen baseline section of an
// earlier checked-in record, e.g. BENCH_PR2.json — how later records chain
// back to the original pre-optimization numbers). Without either, an
// existing -out file keeps its baseline section, so re-running `make
// bench-json` refreshes "current" while the frozen pre-change numbers stay
// put.
//
// -rename old:new copies the baseline entry `old` to `new`, so a benchmark
// that was renamed — or a new implementation that replaces an old one on
// the same hot path (WriteBinary vs WriteCSV) — gets a speedup computed
// against the measurement it supersedes. -print renders a benchstat-style
// baseline-vs-current table for every benchmark with both measurements;
// with no -out, -print emits only the table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. Custom holds any b.ReportMetric
// units beyond the standard trio (e.g. configs/sec, twin_per_des), keyed
// by unit.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

// File is the schema of the checked-in benchmark record.
type File struct {
	Go         string             `json:"go"`
	GoMaxProcs int                `json:"gomaxprocs,omitempty"`
	Note       string             `json:"note,omitempty"`
	Baseline   map[string]Result  `json:"baseline"`
	Current    map[string]Result  `json:"current"`
	Speedup    map[string]float64 `json:"speedup_ns_per_op"`
}

// benchLine matches one benchmark result line; the -N GOMAXPROCS suffix is
// stripped so records stay comparable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metric matches the trailing per-op metrics (B/op, allocs/op, and any
// custom ReportMetric units, recorded under "custom").
var metric = regexp.MustCompile(`([\d.]+) (\S+)`)

func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, err
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, err
		}
		res := Result{Iterations: iters, NsPerOp: ns}
		for _, mm := range metric.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				return nil, err
			}
			switch mm[2] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "MB/s":
				// Derivable from ns/op and bytes processed; dropped to keep
				// records comparable across machines.
			default:
				if res.Custom == nil {
					res.Custom = map[string]float64{}
				}
				res.Custom[mm[2]] = v
			}
		}
		if prev, ok := out[m[1]]; !ok || res.NsPerOp < prev.NsPerOp {
			out[m[1]] = res
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench2json: ")
	var (
		in           = flag.String("in", "", "raw benchmark output (empty = stdin)")
		out          = flag.String("out", "", "output JSON path (empty = stdout, or table-only with -print)")
		baseline     = flag.String("baseline", "", "raw benchmark output recorded before the change")
		baselineJSON = flag.String("baseline-json", "", "earlier benchmark record whose frozen baseline section seeds this record's baseline (e.g. BENCH_PR2.json)")
		note         = flag.String("note", "", "free-form note stored in the record")
		printTable   = flag.Bool("print", false, "print a benchstat-style baseline vs current table")
		renames      renameFlags
	)
	flag.Var(&renames, "rename", "old:new baseline copy (repeatable); gives a renamed or replacement benchmark a speedup vs the measurement it supersedes")
	flag.Parse()
	if *baseline != "" && *baselineJSON != "" {
		log.Fatal("-baseline and -baseline-json are mutually exclusive")
	}

	var (
		current map[string]Result
		err     error
	)
	if *in == "" {
		current, err = parse(os.Stdin)
	} else {
		current, err = parseFile(*in)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(current) == 0 {
		log.Fatal("no benchmark lines in input")
	}

	file := File{
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note:       *note,
		Baseline:   map[string]Result{},
		Current:    current,
		Speedup:    map[string]float64{},
	}
	switch {
	case *baseline != "":
		if file.Baseline, err = parseFile(*baseline); err != nil {
			log.Fatal(err)
		}
	case *baselineJSON != "":
		data, err := os.ReadFile(*baselineJSON)
		if err != nil {
			log.Fatal(err)
		}
		var prev File
		if err := json.Unmarshal(data, &prev); err != nil {
			log.Fatalf("%s: %v", *baselineJSON, err)
		}
		if len(prev.Baseline) == 0 {
			log.Fatalf("%s has no baseline section", *baselineJSON)
		}
		file.Baseline = prev.Baseline
	case *out != "":
		// Keep the frozen baseline of an existing record.
		if data, err := os.ReadFile(*out); err == nil {
			var prev File
			if err := json.Unmarshal(data, &prev); err != nil {
				log.Fatalf("existing %s: %v", *out, err)
			}
			file.Baseline = prev.Baseline
			if *note == "" {
				file.Note = prev.Note
			}
		}
	}
	for _, rn := range renames {
		res, ok := file.Baseline[rn.old]
		if !ok {
			log.Fatalf("-rename %s:%s: no baseline entry %q", rn.old, rn.new, rn.old)
		}
		file.Baseline[rn.new] = res
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if base, ok := file.Baseline[name]; ok && current[name].NsPerOp > 0 {
			file.Speedup[name] = base.NsPerOp / current[name].NsPerOp
		}
	}
	if *printTable {
		printComparison(os.Stdout, file, names)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		if !*printTable {
			os.Stdout.Write(data)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d with baseline)\n", *out, len(current), len(file.Speedup))
}

// renameFlags collects repeated -rename old:new flags. The separator is a
// colon because benchmark names routinely contain '=' and '/'
// (BenchmarkChainStep/states=8) but never ':'.
type renameFlags []struct{ old, new string }

func (r *renameFlags) String() string { return fmt.Sprintf("%d renames", len(*r)) }

func (r *renameFlags) Set(v string) error {
	old, new, ok := strings.Cut(v, ":")
	if !ok || old == "" || new == "" {
		return fmt.Errorf("want old:new, got %q", v)
	}
	*r = append(*r, struct{ old, new string }{old, new})
	return nil
}

// printComparison renders the benchstat-style table: every benchmark with
// both a baseline and a current measurement, fastest-relative-gain first.
func printComparison(w io.Writer, file File, names []string) {
	rows := make([]string, 0, len(names))
	for _, name := range names {
		if _, ok := file.Speedup[name]; ok {
			rows = append(rows, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return file.Speedup[rows[i]] > file.Speedup[rows[j]] })
	if len(rows) == 0 {
		fmt.Fprintln(w, "no benchmarks with both baseline and current measurements")
		return
	}
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "name", "baseline", "current", "speedup")
	for _, name := range rows {
		fmt.Fprintf(w, "%-52s %14s %14s %8.2fx\n",
			strings.TrimPrefix(name, "Benchmark"),
			formatNs(file.Baseline[name].NsPerOp),
			formatNs(file.Current[name].NsPerOp),
			file.Speedup[name])
	}
}

// formatNs renders a ns/op value with benchstat's unit scaling.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}
