// Command bench2json converts `go test -bench -benchmem` output into the
// machine-readable benchmark record the repository checks in (e.g.
// BENCH_PR2.json), so performance claims in the docs are backed by a file
// that can be regenerated and diffed.
//
// The JSON holds two measurement sets: "baseline" (recorded once, before
// an optimization lands) and "current", plus the per-benchmark ns/op
// speedup of current over baseline. When several `-count` repetitions of
// one benchmark appear in the input, the fastest is kept — the standard
// best-of-N reading that suppresses scheduler noise.
//
// Usage:
//
//	go test -bench . -benchmem -run xxx ./... > bench_raw.txt
//	bench2json -in bench_raw.txt -out BENCH_PR2.json
//
// The baseline section comes from -baseline (raw benchmark output captured
// before the change). Without -baseline, an existing -out file keeps its
// baseline section, so re-running `make bench-json` refreshes "current"
// while the frozen pre-change numbers stay put.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the schema of the checked-in benchmark record.
type File struct {
	Go       string             `json:"go"`
	Note     string             `json:"note,omitempty"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	Speedup  map[string]float64 `json:"speedup_ns_per_op"`
}

// benchLine matches one benchmark result line; the -N GOMAXPROCS suffix is
// stripped so records stay comparable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metric matches the trailing per-op metrics (B/op, allocs/op, and any
// custom ReportMetric units, which are ignored).
var metric = regexp.MustCompile(`([\d.]+) (\S+)`)

func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, err
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, err
		}
		res := Result{Iterations: iters, NsPerOp: ns}
		for _, mm := range metric.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				return nil, err
			}
			switch mm[2] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if prev, ok := out[m[1]]; !ok || res.NsPerOp < prev.NsPerOp {
			out[m[1]] = res
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench2json: ")
	var (
		in       = flag.String("in", "", "raw benchmark output (empty = stdin)")
		out      = flag.String("out", "", "output JSON path (empty = stdout)")
		baseline = flag.String("baseline", "", "raw benchmark output recorded before the change")
		note     = flag.String("note", "", "free-form note stored in the record")
	)
	flag.Parse()

	var (
		current map[string]Result
		err     error
	)
	if *in == "" {
		current, err = parse(os.Stdin)
	} else {
		current, err = parseFile(*in)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(current) == 0 {
		log.Fatal("no benchmark lines in input")
	}

	file := File{
		Go:       runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Note:     *note,
		Baseline: map[string]Result{},
		Current:  current,
		Speedup:  map[string]float64{},
	}
	switch {
	case *baseline != "":
		if file.Baseline, err = parseFile(*baseline); err != nil {
			log.Fatal(err)
		}
	case *out != "":
		// Keep the frozen baseline of an existing record.
		if data, err := os.ReadFile(*out); err == nil {
			var prev File
			if err := json.Unmarshal(data, &prev); err != nil {
				log.Fatalf("existing %s: %v", *out, err)
			}
			file.Baseline = prev.Baseline
			if *note == "" {
				file.Note = prev.Note
			}
		}
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if base, ok := file.Baseline[name]; ok && current[name].NsPerOp > 0 {
			file.Speedup[name] = base.NsPerOp / current[name].NsPerOp
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d with baseline)\n", *out, len(current), len(file.Speedup))
}
