// Command characterize performs Feitelson-style workload characterization
// on a trace: distribution fitting of interarrival times (KS-selected),
// burstiness (index of dispersion, peak-to-mean), self-similarity (Hurst
// estimators), request-size summaries, and per-class breakdowns.
//
// Usage:
//
//	gfstrace -requests 8000 | characterize
//	characterize -in trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		in     = flag.String("in", "-", "input trace (CSV; '-' for stdin)")
		window = flag.Float64("window", 0.5, "counting window for burstiness analysis (seconds)")
	)
	flag.Parse()
	cliflag.Check(cliflag.PositiveFloat("window", *window))

	var (
		tr  *dcmodel.Trace
		err error
	)
	if *in == "-" {
		tr, err = dcmodel.ReadTraceCSV(os.Stdin)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			tr, err = dcmodel.ReadTraceCSV(f)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if tr.Len() < 3 {
		log.Fatalf("need at least 3 requests, got %d", tr.Len())
	}
	tr.SortByArrival()
	sum := tr.Summarize()
	fmt.Printf("trace: %d requests, %d classes, %.2fs, mean latency %.3f ms, p99 %.3f ms\n\n",
		sum.Requests, len(sum.Classes), sum.Duration, 1000*sum.MeanLatency, 1000*sum.P99Latency)

	// Arrival-process characterization.
	gaps := tr.Interarrivals()
	fmt.Println("arrival process:")
	fmt.Printf("  rate: %.2f req/s, interarrival SCV %.2f\n", 1/stats.Mean(gaps), stats.SquaredCoefVar(gaps))
	results := stats.FitAll(gaps)
	fmt.Println("  distribution fits (KS-ranked):")
	for i, res := range results {
		if res.Err != nil || i >= 3 {
			break
		}
		fmt.Printf("    %-14s KS=%.4f p=%.3g\n", res.Dist.Name(), res.KS, res.P)
	}
	arr := tr.Arrivals()
	fmt.Printf("  burstiness: IDC@%.2gs %.2f, IDC@%.2gs %.2f, peak-to-mean %.2f\n",
		*window, stats.IndexOfDispersion(arr, *window),
		*window*16, stats.IndexOfDispersion(arr, *window*16),
		stats.PeakToMean(arr, *window))
	if ss, err := stats.AnalyzeSelfSimilarity(arr, *window); err == nil {
		fmt.Printf("  self-similarity: Hurst(R/S) %.2f, Hurst(aggvar) %.2f\n", ss.HurstRS, ss.HurstAggVar)
	}

	// Per-class breakdowns.
	fmt.Println("\nclasses:")
	fmt.Printf("  %-12s | %-8s | %-12s | %-12s | %-10s | %-8s\n",
		"class", "share", "mean I/O B", "latency ms", "cpu util", "read%")
	for _, class := range tr.Classes() {
		sub := tr.ByClass(class)
		ioBytes := sub.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })
		utils := sub.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util })
		reads := sub.SpanFeature(trace.Storage, func(s trace.Span) float64 {
			if s.Op == trace.OpRead {
				return 1
			}
			return 0
		})
		fmt.Printf("  %-12s | %7.1f%% | %12.0f | %12.3f | %9.2f%% | %7.1f%%\n",
			class, 100*float64(sub.Len())/float64(tr.Len()),
			stats.Mean(ioBytes), 1000*stats.Mean(sub.Latencies()),
			100*stats.Mean(utils), 100*stats.Mean(reads))
	}

	// Storage locality.
	fmt.Println("\nstorage locality:")
	lbns := tr.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.LBN) })
	if len(lbns) > 1 {
		var seq int
		ios := storageStream(tr)
		var prevEnd int64 = -1
		for _, io := range ios {
			if prevEnd >= 0 && io.lbn == prevEnd {
				seq++
			}
			prevEnd = io.lbn + (io.bytes+4095)/4096
		}
		fmt.Printf("  sequential fraction: %.1f%%\n", 100*float64(seq)/float64(len(ios)-1))
		fmt.Printf("  LBN span: %.0f .. %.0f\n", stats.Min(lbns), stats.Max(lbns))
	}
}

type ioRec struct {
	start float64
	lbn   int64
	bytes int64
}

func storageStream(tr *dcmodel.Trace) []ioRec {
	var out []ioRec
	for _, r := range tr.Requests {
		for _, s := range r.SpansIn(trace.Storage) {
			out = append(out, ioRec{start: s.Start, lbn: s.LBN, bytes: s.Bytes})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}
