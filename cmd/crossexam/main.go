// Command crossexam runs the paper's Table 1 cross-examination: train the
// in-breadth, in-depth and KOOZA models on the same trace, synthesize from
// each, and print the qualitative matrix plus the measured scorecard.
//
// Usage:
//
//	crossexam -requests 3000 -rate 20
//	crossexam -in trace.csv
//	crossexam -requests 3000 -workers 4   # parallel approach chains
//	crossexam -requests 3000 -json        # machine-readable scorecard
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossexam: ")
	var (
		in       = flag.String("in", "", "input trace CSV (empty = simulate)")
		requests = flag.Int("requests", 3000, "requests to simulate when -in is empty")
		rate     = flag.Float64("rate", 20, "arrival rate for simulation")
		n        = flag.Int("n", 0, "synthetic requests per approach (0 = trace size)")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "concurrent approach chains (0 = GOMAXPROCS, 1 = serial)")
		asJSON   = flag.Bool("json", false, "emit the scorecard as JSON instead of the rendered table")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Workers(*workers),
		cliflag.Seed(*seed),
		cliflag.Min("requests", *requests, 1),
		cliflag.Min("n", *n, 0),
		cliflag.PositiveFloat("rate", *rate),
	)

	var (
		tr  *dcmodel.Trace
		err error
	)
	if *in == "" {
		tr, err = dcmodel.SimulateGFS(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
			Mix:      dcmodel.Table2Mix(),
			Rate:     *rate,
			Requests: *requests,
		}, *seed)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			tr, err = dcmodel.ReadTraceCSV(f)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	count := *n
	if count == 0 {
		count = tr.Len()
	}
	scores, err := dcmodel.CrossExamineOpts(tr, count, dcmodel.DefaultPlatform(), *seed+1,
		dcmodel.CrossExamOptions{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(scores); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(dcmodel.RenderScores(scores))
}
