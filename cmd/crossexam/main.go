// Command crossexam runs the paper's Table 1 cross-examination: train the
// in-breadth, in-depth and KOOZA models on the same trace, synthesize from
// each, and print the qualitative matrix plus the measured scorecard.
//
// Usage:
//
//	crossexam -requests 3000 -rate 20
//	crossexam -in trace.csv
//	crossexam -requests 3000 -workers 4   # parallel approach chains
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dcmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossexam: ")
	var (
		in       = flag.String("in", "", "input trace CSV (empty = simulate)")
		requests = flag.Int("requests", 3000, "requests to simulate when -in is empty")
		rate     = flag.Float64("rate", 20, "arrival rate for simulation")
		n        = flag.Int("n", 0, "synthetic requests per approach (0 = trace size)")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "concurrent approach chains (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	var (
		tr  *dcmodel.Trace
		err error
	)
	if *in == "" {
		tr, err = dcmodel.SimulateGFS(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
			Mix:      dcmodel.Table2Mix(),
			Rate:     *rate,
			Requests: *requests,
		}, *seed)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			tr, err = dcmodel.ReadTraceCSV(f)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	count := *n
	if count == 0 {
		count = tr.Len()
	}
	scores, err := dcmodel.CrossExamineOpts(tr, count, dcmodel.DefaultPlatform(), *seed+1,
		dcmodel.CrossExamOptions{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dcmodel.RenderScores(scores))
}
