// Command crossexam runs the paper's Table 1 cross-examination: train the
// in-breadth, in-depth and KOOZA models on the same trace, synthesize from
// each, and print the qualitative matrix plus the measured scorecard.
//
// Usage:
//
//	crossexam -requests 3000 -rate 20
//	crossexam -in trace.csv
//	crossexam -spec presets/incast.json   # cross-examine a declarative scenario
//	crossexam -requests 3000 -workers 4   # parallel approach chains
//	crossexam -requests 3000 -json        # machine-readable scorecard
//	crossexam -requests 3000 -faults '{"mtbf":2,"mttr":0.5}'
//
// With -faults, a second cross-examination runs in the degraded regime:
// the workload is re-simulated with the scenario armed (or, with -in, the
// loaded trace is kept) and every approach's synthetic workload is
// replayed on the degraded platform. The healthy Table 1 output is
// unchanged; the regime comparison is appended after it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dcmodel"
	"dcmodel/internal/cliflag"
	"dcmodel/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossexam: ")
	var (
		in       = flag.String("in", "", "input trace (CSV, or binary trace-v2 for .dct paths; empty = simulate)")
		specRef  = flag.String("spec", "", "cross-examine a workload spec (preset name or JSON/YAML file) instead of the default simulation")
		requests = flag.Int("requests", 3000, "requests to simulate when -in is empty")
		rate     = flag.Float64("rate", 20, "arrival rate for simulation")
		n        = flag.Int("n", 0, "synthetic requests per approach (0 = trace size)")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "concurrent approach chains (0 = GOMAXPROCS, 1 = serial)")
		asJSON   = flag.Bool("json", false, "emit the scorecard as JSON instead of the rendered table")
		faults   = flag.String("faults", "", "fault scenario JSON (e.g. '{\"mtbf\":2,\"mttr\":0.5}'); adds a degraded-regime cross-examination")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Workers(*workers),
		cliflag.Seed(*seed),
		cliflag.Min("requests", *requests, 1),
		cliflag.Min("n", *n, 0),
		cliflag.PositiveFloat("rate", *rate),
	)

	if *in != "" && *specRef != "" {
		cliflag.Check("-in and -spec are mutually exclusive")
	}

	// -spec: resolve once; explicit -requests/-seed override the spec.
	var scenario *spec.Spec
	var specOpts spec.Options
	if *specRef != "" {
		var err error
		scenario, err = spec.Resolve(*specRef)
		if err != nil {
			cliflag.Fatal(err)
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "requests":
				specOpts.Requests = *requests
			case "seed":
				specOpts.Seed = *seed
			}
		})
	}

	var (
		tr  *dcmodel.Trace
		err error
	)
	switch {
	case scenario != nil:
		var c *spec.Compiled
		c, err = scenario.Compile(specOpts)
		if err == nil {
			tr, err = c.Generate(*workers)
		}
	case *in == "":
		tr, err = dcmodel.Simulate(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
			RunConfig: dcmodel.RunConfig{
				Mix:      dcmodel.Table2Mix(),
				Requests: *requests,
				Seed:     *seed,
			},
			Rate: *rate,
		})
	default:
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			if strings.HasSuffix(*in, ".dct") {
				tr, err = dcmodel.ReadTraceBinary(f)
			} else {
				tr, err = dcmodel.ReadTraceCSV(f)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	count := *n
	if count == 0 {
		count = tr.Len()
	}
	opts := dcmodel.CrossExamOptions{
		Requests: count,
		Seed:     *seed + 1,
		Workers:  *workers,
	}
	scores, err := dcmodel.CrossExamine(tr, dcmodel.DefaultPlatform(), opts)
	if err != nil {
		log.Fatal(err)
	}

	// Optional degraded regime: re-simulate the workload with the scenario
	// armed (a loaded trace is kept as-is) and replay on a degraded platform.
	var degraded []dcmodel.Scores
	if *faults != "" {
		var fc dcmodel.FaultConfig
		if err := json.Unmarshal([]byte(*faults), &fc); err != nil {
			cliflag.Fatal(fmt.Errorf("crossexam: -faults: %w", err))
		}
		faultyTr := tr
		switch {
		case scenario != nil:
			// Regenerate the scenario with the fault engine armed.
			faultyOpts := specOpts
			faultyOpts.Faults = &fc
			var c *spec.Compiled
			c, err = scenario.Compile(faultyOpts)
			if err == nil {
				faultyTr, err = c.Generate(*workers)
			}
			if err != nil {
				cliflag.Fatal(err)
			}
		case *in == "":
			faultyTr, err = dcmodel.Simulate(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
				RunConfig: dcmodel.RunConfig{
					Mix:      dcmodel.Table2Mix(),
					Requests: *requests,
					Seed:     *seed,
					Faults:   &fc,
				},
				Rate: *rate,
			})
			if err != nil {
				cliflag.Fatal(err)
			}
		}
		p := dcmodel.DefaultPlatform()
		p.Faults = &fc
		degraded, err = dcmodel.CrossExamine(faultyTr, p, opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var v any = scores
		if degraded != nil {
			v = map[string][]dcmodel.Scores{"healthy": scores, "degraded": degraded}
		}
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(dcmodel.RenderScores(scores))
	if degraded != nil {
		fmt.Println()
		fmt.Print(dcmodel.RenderScoresComparison(scores, degraded))
	}
}
