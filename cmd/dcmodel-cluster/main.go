// Command dcmodel-cluster runs one node of the distributed modeling
// service: a coordinator that consistent-hash-routes ingested request
// streams across worker shards and assembles the exactly-merged global
// model, or a worker that trains its shard online and serves queries
// from the replicated model.
//
// Usage:
//
//	dcmodel-cluster -mode worker -addr :9071
//	dcmodel-cluster -mode worker -addr :9072
//	dcmodel-cluster -mode coordinator -addr :9070 \
//	    -workers http://localhost:9071,http://localhost:9072
//	curl --data-binary @trace.csv http://localhost:9070/v1/ingest
//	curl -X POST http://localhost:9070/v1/merge
//	curl 'http://localhost:9071/v1/synthesize?n=4000&seed=2' > synth.csv
//
// The merged model is byte-identical regardless of worker count and
// routing interleaving, so any worker (or the coordinator itself, when
// every worker is down) answers queries identically. -routing-scorers
// picks the query-routing policy; -faults arms a kill schedule over the
// workers to rehearse mid-run failures.
//
// SIGTERM or SIGINT shuts the node down gracefully.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcmodel/internal/cliflag"
	"dcmodel/internal/cluster"
	"dcmodel/internal/fault"
	"dcmodel/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcmodel-cluster: ")
	defModel := cluster.DefaultModelConfig()
	var (
		mode       = flag.String("mode", "worker", "node role: coordinator or worker")
		addr       = flag.String("addr", ":9070", "listen address")
		regions    = flag.Int("regions", defModel.StorageRegions, "storage Markov states (must match across every node)")
		diskBlocks = flag.Int64("disk-blocks", defModel.DiskBlocks, "fixed LBN address-space size for region quantization")
		smoothing  = flag.Float64("smoothing", defModel.Smoothing, "Laplace smoothing applied when counts become chains")

		// Coordinator flags.
		workers    = flag.String("workers", "", "comma-separated worker base URLs (coordinator mode, required)")
		vnodes     = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per worker on the hash ring")
		scorers    = flag.String("routing-scorers", "", "comma-separated query-routing scorers: queue-depth, model-staleness, shard-affinity (empty = all)")
		mergeEvery = flag.Int("merge-every", 4096, "routed requests between automatic merge+replicate cycles (<0 disables)")
		cooldown   = flag.Duration("cooldown", time.Second, "how long a dead worker stays excluded before the half-open probe")
		faultsJSON = flag.String("faults", "", "fault schedule to arm over the workers, as JSON (e.g. '{\"mtbf\":30,\"mttr\":5}')")
		traceEvery = flag.Int("trace-every", 0, "sample 1 in N ingest requests into live span trees at /v1/traces (0 = off)")
		traceCap   = flag.Int("trace-cap", 128, "sampled traces kept in the ring buffer")

		// Worker flags.
		maxInflight = flag.Int("max-inflight", 64, "concurrent ingest bodies a worker accepts before replying 429")
		maxSynth    = flag.Int("max-synth", 100000, "largest n one synthesize request may ask for")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Min("regions", *regions, 2),
		cliflag.Min("vnodes", *vnodes, 1),
		cliflag.Min("max-inflight", *maxInflight, 1),
		cliflag.Min("max-synth", *maxSynth, 1),
		cliflag.PositiveFloat("smoothing", *smoothing),
		cliflag.PositiveFloat("cooldown", cooldown.Seconds()),
	)
	if *traceEvery < 0 {
		cliflag.Check("-trace-every must be >= 0")
	}

	model := cluster.ModelConfig{
		StorageRegions: *regions,
		DiskBlocks:     *diskBlocks,
		Smoothing:      *smoothing,
	}

	var handler http.Handler
	switch *mode {
	case "worker":
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Model:       model,
			MaxInflight: *maxInflight,
			MaxSynth:    *maxSynth,
		})
		if err != nil {
			cliflag.Fatal(err)
		}
		handler = w.Handler()
		log.Printf("worker listening on %s (regions %d, max-inflight %d)", *addr, *regions, *maxInflight)
	case "coordinator":
		urls := splitURLs(*workers)
		if len(urls) == 0 {
			cliflag.Check("-workers is required in coordinator mode")
		}
		sc, err := cluster.ParseScorers(*scorers)
		if err != nil {
			cliflag.Fatal(err)
		}
		cfg := cluster.CoordinatorConfig{
			Workers:    urls,
			VNodes:     *vnodes,
			Scorers:    sc,
			MergeEvery: *mergeEvery,
			Model:      model,
			Cooldown:   cooldown.Seconds(),
			MaxSynth:   *maxSynth,
		}
		if *faultsJSON != "" {
			var fc fault.Config
			if err := json.Unmarshal([]byte(*faultsJSON), &fc); err != nil {
				cliflag.Fatal(fmt.Errorf("dcmodel-cluster: -faults: %w", err))
			}
			cfg.Faults = &fc
		}
		if *traceEvery > 0 {
			cliflag.Check(cliflag.Min("trace-cap", *traceCap, 1))
			cfg.Obs = &obs.Options{SampleEvery: *traceEvery, TraceCapacity: *traceCap}
		}
		c, err := cluster.NewCoordinator(cfg)
		if err != nil {
			cliflag.Fatal(err)
		}
		handler = c.Handler()
		log.Printf("coordinator listening on %s over %d workers (scorers %s, merge-every %d)",
			*addr, len(urls), cluster.ScorerNames(sc), *mergeEvery)
	default:
		cliflag.Check(fmt.Sprintf("-mode must be coordinator or worker, got %q", *mode))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}

// splitURLs parses the -workers list, dropping empty entries.
func splitURLs(list string) []string {
	var out []string
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}
