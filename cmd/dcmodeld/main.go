// Command dcmodeld is the model-serving daemon: a long-running HTTP
// service that streams trace spans into a sliding window, keeps the
// KOOZA / in-breadth / in-depth workload models warm with an online
// training loop (chi-square drift detection forces retrains), and serves
// synthesis, characterization and replay queries from a bounded work
// queue with explicit backpressure.
//
// Usage:
//
//	dcmodeld -addr :8080
//	curl --data-binary @trace.csv http://localhost:8080/v1/ingest
//	curl 'http://localhost:8080/v1/synthesize?n=4000&seed=2' > synth.csv
//	curl http://localhost:8080/v1/characterize | jq .scores
//	curl -X POST -d '{"mtbf":2,"mttr":0.5}' http://localhost:8080/v1/faults
//	curl -X POST -d '{"request":{"objective":{"target_seconds":0.05}}}' http://localhost:8080/v1/provision
//	curl http://localhost:8080/metrics
//
// Live observability is off by default. -trace-every 1000 samples one
// request in a thousand into Dapper-style span trees served as JSON at
// /v1/traces (render them with cmd/traceview); -trace-cap bounds the
// trace ring buffer; -pprof mounts net/http/pprof under /debug/pprof/.
//
// A fault scenario can also be armed at boot with -faults (the same JSON
// the /v1/faults endpoint accepts); replay queries then run on the
// degraded platform until a DELETE /v1/faults disarms it.
//
// SIGTERM or SIGINT drains gracefully: the listener stops accepting,
// in-flight requests finish, the work queue runs dry, then the process
// exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"dcmodel/internal/cliflag"
	"dcmodel/internal/fault"
	"dcmodel/internal/obs"
	"dcmodel/internal/optimize"
	"dcmodel/internal/serve"
	"dcmodel/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcmodeld: ")
	def := serve.DefaultConfig()
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		window     = flag.Int("window", def.Window, "sliding-window capacity (requests)")
		queue      = flag.Int("queue", def.QueueDepth, "bounded work-queue depth (full queue returns 429)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		maxSynth   = flag.Int("max-synth", def.MaxSynth, "largest n one synthesize request may ask for")
		deadline   = flag.Duration("deadline", def.RequestTimeout, "per-request deadline for queued work")
		retrainMin = flag.Int("retrain-min", def.RetrainMin, "new requests needed before a retrain is considered")
		stale      = flag.Duration("stale", def.RetrainInterval, "model age that forces a retrain once fresh data arrived")
		driftP     = flag.Float64("drift-p", def.DriftP, "chi-square p-value below which drift forces a retrain")
		driftMin   = flag.Int64("drift-min", def.DriftMinTransitions, "observed storage transitions before the drift test is consulted")
		regions    = flag.Int("regions", def.StorageRegions, "storage Markov states (shared by trainer and drift quantization)")
		diskBlocks = flag.Int64("disk-blocks", def.DiskBlocks, "fixed LBN address-space size for region quantization")
		faultsJSON = flag.String("faults", "", "fault scenario to arm at boot, as /v1/faults JSON (e.g. '{\"mtbf\":2,\"mttr\":0.5}')")
		autoProv   = flag.String("auto-provision", "", "arm drift-triggered auto-reprovisioning with this optimizer request, as the /v1/provision request JSON (e.g. '{\"objective\":{\"target_seconds\":0.05}}'); plans are published on GET /v1/provision")
		warmSpec   = flag.String("warm-spec", "", "workload spec (preset name or JSON/YAML file) generated and ingested at boot, so models are warm before the first client request")
		traceEvery = flag.Int("trace-every", 0, "sample 1 in N requests into live span traces served at /v1/traces (0 = tracing off)")
		traceCap   = flag.Int("trace-cap", 128, "sampled traces kept in the ring buffer (oldest evicted)")
		pprof      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Workers(*workers),
		cliflag.Min("window", *window, 3),
		cliflag.Min("queue", *queue, 1),
		cliflag.Min("max-synth", *maxSynth, 1),
		cliflag.Min("retrain-min", *retrainMin, 1),
		cliflag.Min("regions", *regions, 2),
		cliflag.PositiveFloat("drift-p", *driftP),
		cliflag.PositiveFloat("deadline", deadline.Seconds()),
		cliflag.PositiveFloat("stale", stale.Seconds()),
	)
	if *driftP >= 1 {
		cliflag.Check("-drift-p must be < 1")
	}
	if *traceEvery < 0 {
		cliflag.Check("-trace-every must be >= 0")
	}
	if *traceEvery > 0 {
		cliflag.Check(cliflag.Min("trace-cap", *traceCap, 1))
	}

	cfg := serve.DefaultConfig()
	cfg.Window = *window
	cfg.QueueDepth = *queue
	cfg.Workers = *workers
	cfg.MaxSynth = *maxSynth
	cfg.RequestTimeout = *deadline
	cfg.RetrainMin = *retrainMin
	cfg.RetrainInterval = *stale
	cfg.DriftP = *driftP
	cfg.DriftMinTransitions = *driftMin
	cfg.StorageRegions = *regions
	cfg.DiskBlocks = *diskBlocks
	if *faultsJSON != "" {
		var fc fault.Config
		if err := json.Unmarshal([]byte(*faultsJSON), &fc); err != nil {
			cliflag.Fatal(fmt.Errorf("dcmodeld: -faults: %w", err))
		}
		cfg.Platform.Faults = &fc
	}
	if *autoProv != "" {
		var req optimize.Request
		if err := json.Unmarshal([]byte(*autoProv), &req); err != nil {
			cliflag.Fatal(fmt.Errorf("dcmodeld: -auto-provision: %w", err))
		}
		if req.Spec != "" || req.Model != "" {
			cliflag.Check("-auto-provision: spec/model are offline-only fields; the daemon provisions for its ingested window")
		}
		if req.Objective.TargetSeconds <= 0 {
			cliflag.Check("-auto-provision: objective.target_seconds is required")
		}
		cfg.AutoProvision = &req
	}
	if *traceEvery > 0 || *pprof {
		cfg.Obs = &obs.Options{
			SampleEvery:   *traceEvery,
			TraceCapacity: *traceCap,
			Pprof:         *pprof,
		}
	}

	s, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *warmSpec != "" {
		sp, err := spec.Resolve(*warmSpec)
		if err != nil {
			cliflag.Fatal(err)
		}
		c, err := sp.Compile(spec.Options{})
		if err != nil {
			cliflag.Fatal(err)
		}
		tr, err := c.Generate(*workers)
		if err != nil {
			cliflag.Fatal(err)
		}
		retrained, reason, err := s.Ingest(tr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed window with %d requests from spec %s (retrained=%v, reason=%q)",
			tr.Len(), c.Name, retrained, reason)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	log.Printf("listening on %s (window %d, queue %d, drift-p %g, stale %s)",
		*addr, *window, *queue, *driftP, *stale)
	start := time.Now()
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained cleanly after %s", time.Since(start).Round(time.Millisecond))
}
