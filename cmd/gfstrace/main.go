// Command gfstrace runs the GFS cluster simulator and emits the resulting
// workload trace (the substitute for the paper's proprietary GFS traces).
//
// Usage:
//
//	gfstrace -requests 4000 -rate 20 -mix table2 -format csv > trace.csv
//	gfstrace -requests 4000 -shards 8 -workers 4 > trace.csv  # sharded, same output for any -workers
//	gfstrace -spec presets/webtier.json > trace.csv           # declarative scenario (preset or file)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dcmodel/internal/spec"
	"dcmodel/internal/workload"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gfstrace: ")
	var (
		specRef     = flag.String("spec", "", "workload spec: a preset name or a JSON/YAML spec file (overrides -rate/-mix/-arrivals/-servers/...)")
		requests    = flag.Int("requests", 4000, "number of requests to simulate")
		rate        = flag.Float64("rate", 20, "mean arrival rate (requests/second)")
		servers     = flag.Int("servers", 1, "number of chunkservers")
		files       = flag.Int("files", 64, "number of files in the namespace")
		replication = flag.Int("replication", 1, "replicas per chunk")
		seed        = flag.Int64("seed", 1, "random seed")
		mixName     = flag.String("mix", "table2", "request mix: table2, web or oltp")
		arrivals    = flag.String("arrivals", "poisson", "arrival process: poisson, mmpp or selfsimilar")
		format      = flag.String("format", "csv", "output format: csv, json or binary (trace-v2; implied by a .dct -o path)")
		out         = flag.String("o", "-", "output path ('-' for stdout)")
		shards      = flag.Int("shards", 1, "partition clients across this many independent cluster partitions")
		workers     = flag.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS, 1 = serial); needs -shards > 1")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Workers(*workers),
		cliflag.Shards(*shards),
		cliflag.Seed(*seed),
		cliflag.Min("requests", *requests, 1),
		cliflag.Min("servers", *servers, 1),
		cliflag.Min("files", *files, 1),
		cliflag.Min("replication", *replication, 1),
		cliflag.PositiveFloat("rate", *rate),
	)

	var (
		tr  *dcmodel.Trace
		err error
	)
	if *specRef != "" {
		tr, err = generateFromSpec(*specRef, *workers, explicitOverrides(*requests, *seed))
	} else {
		tr, err = simulateFromFlags(*mixName, *arrivals, *rate, *requests, *servers, *files, *replication, *shards, *workers, *seed)
	}
	if err != nil {
		cliflag.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	// A .dct output path selects the binary codec unless -format was set
	// explicitly (flag.Visit reports only flags present on the command
	// line, the same pattern explicitOverrides uses).
	if strings.HasSuffix(*out, ".dct") {
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "format" {
				explicit = true
			}
		})
		if !explicit {
			*format = "binary"
		}
	}
	switch *format {
	case "csv":
		err = dcmodel.WriteTraceCSV(w, tr)
	case "json":
		err = dcmodel.WriteTraceJSON(w, tr)
	case "binary":
		err = dcmodel.WriteTraceBinary(w, tr)
	default:
		log.Fatalf("unknown format %q (want csv, json or binary)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "gfstrace: %d requests, %d classes, %.2fs duration, mean latency %.3fms\n",
		s.Requests, len(s.Classes), s.Duration, 1000*s.MeanLatency)
}

// explicitOverrides returns spec.Options carrying only the -requests and
// -seed values the user actually set on the command line, so a spec's own
// values win unless explicitly overridden.
func explicitOverrides(requests int, seed int64) spec.Options {
	var opts spec.Options
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "requests":
			opts.Requests = requests
		case "seed":
			opts.Seed = seed
		}
	})
	return opts
}

// generateFromSpec resolves a -spec reference and generates its trace.
func generateFromSpec(ref string, workers int, opts spec.Options) (*dcmodel.Trace, error) {
	s, err := spec.Resolve(ref)
	if err != nil {
		return nil, err
	}
	c, err := s.Compile(opts)
	if err != nil {
		return nil, err
	}
	return c.Generate(workers)
}

// simulateFromFlags is the classic flag-driven single-mix simulation.
func simulateFromFlags(mixName, arrivals string, rate float64, requests, servers, files, replication, shards, workers int, seed int64) (*dcmodel.Trace, error) {
	var mix *dcmodel.Mix
	switch mixName {
	case "table2":
		mix = dcmodel.Table2Mix()
	case "web":
		mix = dcmodel.WebMix()
	case "oltp":
		mix = workload.OLTPMix()
	default:
		log.Fatalf("unknown mix %q (want table2, web or oltp)", mixName)
	}
	var arr dcmodel.Arrivals
	switch arrivals {
	case "poisson":
		arr = workload.Poisson{Rate: rate}
	case "mmpp":
		arr = workload.DefaultMMPP(rate)
	case "selfsimilar":
		arr = workload.DefaultSelfSimilar(rate)
	default:
		log.Fatalf("unknown arrival process %q", arrivals)
	}

	cfg := dcmodel.DefaultGFSConfig()
	cfg.Chunkservers = servers
	cfg.Files = files
	cfg.Replication = replication
	return dcmodel.Simulate(cfg, dcmodel.GFSRun{
		RunConfig: dcmodel.RunConfig{
			Mix:      mix,
			Requests: requests,
			Seed:     seed,
			Shards:   shards,
			Workers:  workers,
		},
		Arrivals: arr,
	})
}
