package main

import (
	"strconv"
	"time"
)

// Backpressure handling for 429 replies: the daemon sheds load with
// Retry-After when its work queue is full, and a well-behaved generator
// backs off instead of failing the run.
const (
	// maxRetries bounds how often one batch is retried before the run
	// gives up.
	maxRetries = 8
	// baseDelay seeds the exponential backoff used when the server
	// sends no (or an unusable) Retry-After.
	baseDelay = 100 * time.Millisecond
	// maxDelay caps any single wait, server-suggested or computed.
	maxDelay = 5 * time.Second
)

// backoffDelay returns how long to wait before retry `attempt`
// (0-based). A parseable Retry-After header (delta-seconds form) is
// honored; otherwise the delay doubles per attempt from baseDelay. Both
// paths are capped at maxDelay.
func backoffDelay(attempt int, retryAfter string) time.Duration {
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > maxDelay {
			return maxDelay
		}
		return d
	}
	d := baseDelay << attempt
	if d > maxDelay || d <= 0 {
		return maxDelay
	}
	return d
}
