package main

import (
	"testing"
	"time"
)

func TestBackoffDelayHonorsRetryAfter(t *testing.T) {
	if got := backoffDelay(0, "2"); got != 2*time.Second {
		t.Errorf("Retry-After 2 -> %s, want 2s", got)
	}
	if got := backoffDelay(5, "1"); got != time.Second {
		t.Errorf("Retry-After overrides the attempt count: got %s, want 1s", got)
	}
	if got := backoffDelay(0, "3600"); got != maxDelay {
		t.Errorf("huge Retry-After -> %s, want the %s cap", got, maxDelay)
	}
	if got := backoffDelay(0, "0"); got != 0 {
		t.Errorf("Retry-After 0 -> %s, want immediate retry", got)
	}
}

func TestBackoffDelayExponential(t *testing.T) {
	for attempt, want := range []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
	} {
		if got := backoffDelay(attempt, ""); got != want {
			t.Errorf("attempt %d -> %s, want %s", attempt, got, want)
		}
	}
	if got := backoffDelay(20, ""); got != maxDelay {
		t.Errorf("late attempt -> %s, want the %s cap", got, maxDelay)
	}
	if got := backoffDelay(200, ""); got != maxDelay {
		t.Errorf("overflowing shift -> %s, want the %s cap", got, maxDelay)
	}
}

func TestBackoffDelayIgnoresBadHeader(t *testing.T) {
	for _, bad := range []string{"soon", "-1", "1.5", "Wed, 21 Oct 2026 07:28:00 GMT"} {
		if got := backoffDelay(0, bad); got != baseDelay {
			t.Errorf("unusable Retry-After %q -> %s, want the %s base", bad, got, baseDelay)
		}
	}
}
