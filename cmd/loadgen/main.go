// Command loadgen generates a workload from a declarative spec and streams
// it into a running dcmodeld over HTTP: the trace is generated up front
// (deterministic for a given spec + seed at any -workers), split into
// batches, and each batch POSTed to /v1/ingest as CSV or as the binary
// trace-v2 codec — exercising the daemon's sliding window, drift detection
// and online retraining with a scenario you can put under version control.
//
// Usage:
//
//	loadgen -spec presets/webtier.json -url http://localhost:8080
//	loadgen -spec incast -requests 10000 -batch 1000
//	loadgen -spec webtier -format binary     # trace-v2 ingest bodies
//	loadgen -spec rag -dry-run > trace.csv   # inspect without a daemon
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"dcmodel/internal/cliflag"
	"dcmodel/internal/spec"
	"dcmodel/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		specRef  = flag.String("spec", "", "workload spec: a preset name or a JSON/YAML spec file (required)")
		url      = flag.String("url", "http://localhost:8080", "dcmodeld base URL")
		requests = flag.Int("requests", 0, "total requests to generate (0 = the spec's value)")
		seed     = flag.Int64("seed", 0, "random seed (0 = the spec's value)")
		workers  = flag.Int("workers", 0, "concurrent generation partitions (0 = GOMAXPROCS); output is identical for any value")
		batch    = flag.Int("batch", 500, "requests per ingest POST")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		format   = flag.String("format", "csv", "ingest body codec: csv or binary (trace-v2)")
		dryRun   = flag.Bool("dry-run", false, "write the generated trace to stdout in the -format codec instead of POSTing it")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Workers(*workers),
		cliflag.Min("requests", *requests, 0),
		cliflag.Min("batch", *batch, 1),
		cliflag.PositiveFloat("timeout", timeout.Seconds()),
	)
	if *specRef == "" {
		cliflag.Check("-spec is required (a preset name or a spec file)")
	}
	if *format != "csv" && *format != "binary" {
		cliflag.Check(fmt.Sprintf("-format must be csv or binary, got %q", *format))
	}
	binary := *format == "binary"

	s, err := spec.Resolve(*specRef)
	if err != nil {
		cliflag.Fatal(err)
	}
	c, err := s.Compile(spec.Options{Requests: *requests, Seed: *seed})
	if err != nil {
		cliflag.Fatal(err)
	}
	tr, err := c.Generate(*workers)
	if err != nil {
		log.Fatal(err)
	}
	summarize(os.Stderr, c, tr)

	if *dryRun {
		if binary {
			err = trace.WriteBinary(os.Stdout, tr)
		} else {
			err = trace.WriteCSV(os.Stdout, tr)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	client := &http.Client{Timeout: *timeout}
	target := *url + "/v1/ingest"
	var sent, retrains int
	for lo := 0; lo < tr.Len(); lo += *batch {
		hi := lo + *batch
		if hi > tr.Len() {
			hi = tr.Len()
		}
		part := &trace.Trace{Requests: tr.Requests[lo:hi]}
		resp, err := post(client, target, part, binary)
		if err != nil {
			log.Fatal(err)
		}
		sent += resp.Ingested
		if resp.Retrained {
			retrains++
			log.Printf("batch %d-%d: window %d/%d, retrained (%s)", lo, hi, resp.Window, resp.Capacity, resp.Reason)
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: streamed %d requests to %s in batches of %d (%d retrains)\n",
		sent, target, *batch, retrains)
}

// ingestResponse is the subset of the /v1/ingest reply loadgen reports.
type ingestResponse struct {
	Ingested  int    `json:"ingested"`
	Window    int    `json:"window"`
	Capacity  int    `json:"capacity"`
	Total     int64  `json:"total"`
	Retrained bool   `json:"retrained"`
	Reason    string `json:"reason"`
}

// post sends one trace batch (CSV, or trace-v2 when binary is set, with
// the matching Content-Type so the daemon picks the right decoder) and
// decodes the ingest reply. A 429 is backpressure, not an error: the
// batch is retried with bounded exponential backoff, honoring the
// daemon's Retry-After suggestion.
func post(client *http.Client, target string, part *trace.Trace, binary bool) (*ingestResponse, error) {
	var buf bytes.Buffer
	contentType := "text/csv"
	var err error
	if binary {
		contentType = trace.ContentTypeV2
		err = trace.WriteBinary(&buf, part)
	} else {
		err = trace.WriteCSV(&buf, part)
	}
	if err != nil {
		return nil, err
	}
	payload := buf.Bytes()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(target, contentType, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries {
			delay := backoffDelay(attempt, resp.Header.Get("Retry-After"))
			log.Printf("server busy (429), retry %d/%d in %s", attempt+1, maxRetries, delay)
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("loadgen: %s: %s: %s", target, resp.Status, bytes.TrimSpace(body))
		}
		var out ingestResponse
		if err := json.Unmarshal(body, &out); err != nil {
			return nil, fmt.Errorf("loadgen: decoding ingest reply: %w", err)
		}
		return &out, nil
	}
}

// summarize prints the per-client composition of the generated trace.
func summarize(w io.Writer, c *spec.Compiled, tr *trace.Trace) {
	counts := map[string]int{}
	for _, r := range tr.Requests {
		counts[r.Class]++
	}
	fmt.Fprintf(w, "loadgen: spec %s: %d requests, %d clients, seed %d\n", c.Name, tr.Len(), len(c.Clients), c.Seed)
	for _, cl := range c.Clients {
		fmt.Fprintf(w, "loadgen:   %-14s %5d requests  slo=%s\n", cl.Name, cl.Requests, cl.SLO)
	}
	classes := make([]string, 0, len(counts))
	for k := range counts {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		fmt.Fprintf(w, "loadgen:     %-20s %5d\n", k, counts[k])
	}
}
