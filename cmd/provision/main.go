// Command provision sizes a server farm for a p95 latency target with the
// analytical-twin fast path: it trains a workload model on the trace,
// compiles the model's queueing twin, searches farm sizes in closed form
// (microseconds per candidate, no sampling), and then validates the winning
// configuration against one discrete-event simulation of the SQS farm —
// one simulation total, instead of one per candidate.
//
// Usage:
//
//	gfstrace -requests 8000 -rate 200 | provision -target 0.05
//	provision -spec webtier -target 0.1 -max 64
//	provision -in trace.csv -model in-breadth -target 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strings"

	"dcmodel/internal/sqs"

	"dcmodel"
	"dcmodel/internal/cliflag"
	"dcmodel/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("provision: ")
	var (
		in        = flag.String("in", "-", "input trace (CSV, or binary trace-v2 for .dct paths; '-' for stdin)")
		specRef   = flag.String("spec", "", "generate the workload from a spec (preset name or JSON/YAML file) instead of reading -in")
		modelName = flag.String("model", "kooza", "model behind the twin: kooza, in-breadth or in-depth")
		target    = flag.Float64("target", 0.05, "p95 response-time target (seconds)")
		maxSrv    = flag.Int("max", 64, "largest farm size to consider")
		tasks     = flag.Int("tasks", 20000, "tasks simulated in the validation run")
		samples   = flag.Int("samples", 10000, "characterization sample budget of the validation run")
		seed      = flag.Int64("seed", 1, "random seed (validation simulation and -spec generation)")
		workers   = flag.Int("workers", 0, "concurrent -spec generation shards (0 = GOMAXPROCS)")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Seed(*seed),
		cliflag.Workers(*workers),
		cliflag.Min("max", *maxSrv, 1),
		cliflag.Min("tasks", *tasks, 1),
		cliflag.Min("samples", *samples, 1),
		cliflag.PositiveFloat("target", *target),
	)
	approach, err := dcmodel.ParseApproach(*modelName)
	if err != nil {
		cliflag.Fatal(err)
	}

	var tr *dcmodel.Trace
	if *specRef != "" {
		tr, err = traceFromSpec(*specRef, *seed, *workers)
	} else {
		tr, err = readTrace(*in)
	}
	if err != nil {
		cliflag.Fatal(err)
	}

	// Closed-form phase: train, compile the twin, search farm sizes.
	m, err := dcmodel.Train(tr, approach)
	if err != nil {
		cliflag.Fatal(err)
	}
	tw, err := dcmodel.BuildTwin(m, dcmodel.DefaultPlatform())
	if err != nil {
		cliflag.Fatal(err)
	}
	fmt.Printf("%s twin: arrival rate %.2f/s, total demand %.3f ms/request\n",
		tw.Approach, tw.Lambda, 1000*tw.TotalDemand())

	slo := dcmodel.WhatIfSLO{Quantile: 0.95, TargetSeconds: *target, MaxServers: *maxSrv}
	sized, err := tw.WhatIf(dcmodel.WhatIfQuery{SLO: &slo})
	if err != nil {
		cliflag.Fatal(err)
	}
	if !sized.SLOMet {
		log.Fatalf("no configuration up to %d servers meets p95 <= %.3fs (closed-form search)", *maxSrv, *target)
	}
	chosen := sized.ServersForSLO

	fmt.Printf("\nclosed-form twin search (p95 <= %.0f ms, up to %d servers):\n", 1000**target, *maxSrv)
	fmt.Printf("%-8s | %-10s | %-10s | %-10s | %-10s\n", "servers", "util", "mean ms", "p95 ms", "p99 ms")
	var twinP95 float64
	for k := 1; k <= chosen; k++ {
		ans, err := tw.WhatIf(dcmodel.WhatIfQuery{Servers: k})
		if err != nil {
			cliflag.Fatal(err)
		}
		if !ans.Stable {
			fmt.Printf("%-8d | %9.1f%% | %10s | %10s | %10s\n",
				k, 100*ans.BottleneckUtilization, "saturated", "-", "-")
			continue
		}
		fmt.Printf("%-8d | %9.1f%% | %10.2f | %10.2f | %10.2f\n",
			k, 100*ans.BottleneckUtilization, 1000*ans.MeanResponseSeconds,
			1000*ans.P95Seconds, 1000*ans.P99Seconds)
		if k == chosen {
			twinP95 = ans.P95Seconds
		}
	}
	fmt.Printf("\ntwin decision: %d servers (smallest meeting p95 <= %.0f ms, bottleneck %s)\n",
		chosen, 1000**target, sized.Bottleneck)

	// Validation phase: one discrete-event farm simulation of the winner.
	r := rand.New(rand.NewSource(*seed))
	c, err := sqs.NewCharacterizer(*samples, r)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.ObserveTrace(tr); err != nil {
		log.Fatal(err)
	}
	sm, err := c.Model()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sm.Evaluate(chosen, *tasks, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidation: one DES run of %d servers (%d tasks): util %.1f%%, mean %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		chosen, *tasks, 100*res.Utilization, 1000*res.MeanResponse, 1000*res.P95, 1000*res.P99)
	dev := math.Abs(twinP95-res.P95) / res.P95
	fmt.Printf("twin p95 %.2f ms vs DES p95 %.2f ms (%.1f%% deviation)\n",
		1000*twinP95, 1000*res.P95, 100*dev)
	if res.P95 > *target {
		log.Fatalf("validation failed: simulated p95 %.2f ms exceeds the %.0f ms target — the twin was optimistic here; consider -max with more headroom",
			1000*res.P95, 1000**target)
	}
	fmt.Printf("provisioning decision validated: %d servers\n", chosen)
}

// traceFromSpec generates the workload from a spec. The explicitly-set
// -seed overrides the spec's own seed.
func traceFromSpec(ref string, seed int64, workers int) (*dcmodel.Trace, error) {
	s, err := spec.Resolve(ref)
	if err != nil {
		return nil, err
	}
	var opts spec.Options
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			opts.Seed = seed
		}
	})
	c, err := s.Compile(opts)
	if err != nil {
		return nil, err
	}
	return c.Generate(workers)
}

func readTrace(path string) (*dcmodel.Trace, error) {
	if path == "-" {
		return dcmodel.ReadTraceCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".dct") {
		return dcmodel.ReadTraceBinary(f)
	}
	return dcmodel.ReadTraceCSV(f)
}
