// Command provision runs the SQS-style two-phase datacenter sizing
// pipeline: characterize a workload trace online (bounded-memory empirical
// models), then simulate server-farm configurations and report the
// smallest farm meeting a p95 latency target.
//
// Usage:
//
//	gfstrace -requests 8000 -rate 200 | provision -target 0.05
//	provision -in trace.csv -target 0.1 -max 64
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"dcmodel/internal/sqs"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("provision: ")
	var (
		in      = flag.String("in", "-", "input trace (CSV; '-' for stdin)")
		target  = flag.Float64("target", 0.05, "p95 response-time target (seconds)")
		maxSrv  = flag.Int("max", 64, "largest farm size to consider")
		tasks   = flag.Int("tasks", 20000, "tasks simulated per candidate")
		samples = flag.Int("samples", 10000, "characterization sample budget")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Seed(*seed),
		cliflag.Min("max", *maxSrv, 1),
		cliflag.Min("tasks", *tasks, 1),
		cliflag.Min("samples", *samples, 1),
		cliflag.PositiveFloat("target", *target),
	)

	var (
		tr  *dcmodel.Trace
		err error
	)
	if *in == "-" {
		tr, err = dcmodel.ReadTraceCSV(os.Stdin)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			tr, err = dcmodel.ReadTraceCSV(f)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(*seed))
	c, err := sqs.NewCharacterizer(*samples, r)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.ObserveTrace(tr); err != nil {
		log.Fatal(err)
	}
	m, err := c.Model()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("characterized %d tasks: rate %.2f/s, mean service %.3f ms (budget %d samples)\n",
		c.Observed(), m.Rate, 1000*m.MeanService, *samples)

	fmt.Printf("\n%-8s | %-10s | %-10s | %-10s | %-10s\n", "servers", "util", "mean ms", "p95 ms", "p99 ms")
	minServers := int(m.Rate*m.MeanService) + 1
	chosen := -1
	for k := minServers; k <= *maxSrv; k++ {
		res, err := m.Evaluate(k, *tasks, r)
		if err != nil {
			continue
		}
		fmt.Printf("%-8d | %9.1f%% | %10.2f | %10.2f | %10.2f\n",
			k, 100*res.Utilization, 1000*res.MeanResponse, 1000*res.P95, 1000*res.P99)
		if chosen < 0 && res.P95 <= *target {
			chosen = k
		}
		if chosen > 0 && res.Utilization < 0.3 {
			break // comfortably provisioned; further rows add nothing
		}
	}
	if chosen < 0 {
		log.Fatalf("no configuration up to %d servers meets p95 <= %.3fs", *maxSrv, *target)
	}
	fmt.Printf("\nprovisioning decision: %d servers (smallest meeting p95 <= %.0f ms)\n",
		chosen, 1000**target)
}
