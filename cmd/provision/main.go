// Command provision sizes a server farm for a latency target with the
// closed-loop provisioning optimizer: it trains a workload model on the
// trace, compiles the model's queueing twin on every candidate platform,
// searches the configuration space — farm size, platform, DVFS operating
// point, replication — twin-first (microseconds per candidate, no
// sampling), and then validates the Pareto frontier against discrete-event
// simulations of the SQS farm: a handful of simulations total, instead of
// one per candidate.
//
// Usage:
//
//	gfstrace -requests 8000 -rate 200 | provision -target 0.05
//	provision -spec webtier -target 0.1 -max 64
//	provision -spec mapreduce -target 0.02 -strategy evolve -json
//	provision -in trace.csv -model in-breadth -target 0.1 -platforms big-core,small-core -dvfs P0,P1,P2
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("provision: ")
	var (
		in        = flag.String("in", "-", "input trace (CSV, or binary trace-v2 for .dct paths; '-' for stdin)")
		specRef   = flag.String("spec", "", "generate the workload from a spec (preset name or JSON/YAML file) instead of reading -in")
		modelName = flag.String("model", "kooza", "model behind the twin: kooza, in-breadth or in-depth")
		target    = flag.Float64("target", 0.05, "response-time target at -quantile (seconds)")
		quantile  = flag.Float64("quantile", 0.95, "SLO latency quantile: 0.5, 0.95 or 0.99")
		minSrv    = flag.Int("min", 1, "smallest farm size to consider")
		maxSrv    = flag.Int("max", 64, "largest farm size to consider")
		platforms = flag.String("platforms", "", "comma-separated candidate platforms (default big-core; catalog: big-core,small-core)")
		dvfs      = flag.String("dvfs", "", "comma-separated candidate DVFS states (default P0; catalog: P0,P1,P2)")
		maxRepl   = flag.Int("max-replicas", 1, "largest replication factor to consider")
		srvCost   = flag.Float64("server-cost", 1, "fixed per-server hourly cost")
		wattCost  = flag.Float64("watt-cost", 0.01, "hourly cost of one predicted watt")
		strategy  = flag.String("strategy", "coordinate", "search strategy: coordinate or evolve")
		tasks     = flag.Int("tasks", 20000, "tasks simulated per DES validation run")
		samples   = flag.Int("samples", 10000, "characterization sample budget of the validation runs")
		valMax    = flag.Int("validate-max", 3, "most frontier configurations to DES-validate, cheapest first")
		seed      = flag.Int64("seed", 1, "random seed (search sub-streams, validation runs and -spec generation)")
		workers   = flag.Int("workers", 0, "evaluation and -spec generation concurrency (0 = GOMAXPROCS); never changes the plan")
		jsonOut   = flag.Bool("json", false, "emit the plan as JSON (the same bytes POST /v1/provision serves)")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Seed(*seed),
		cliflag.Workers(*workers),
		cliflag.Min("min", *minSrv, 1),
		cliflag.Min("max", *maxSrv, 1),
		cliflag.Min("max-replicas", *maxRepl, 1),
		cliflag.Min("tasks", *tasks, 1),
		cliflag.Min("samples", *samples, 1),
		cliflag.Min("validate-max", *valMax, 1),
		cliflag.PositiveFloat("target", *target),
	)

	req := dcmodel.ProvisionRequest{
		Spec:  *specRef,
		Model: *modelName,
		Objective: dcmodel.ProvisionObjective{
			Quantile:      *quantile,
			TargetSeconds: *target,
			ServerCost:    *srvCost,
			WattCost:      *wattCost,
		},
		Space: dcmodel.ProvisionSpace{
			MinServers:  *minSrv,
			MaxServers:  *maxSrv,
			MaxReplicas: *maxRepl,
		},
		Strategy:        *strategy,
		Workers:         *workers,
		ValidateTasks:   *tasks,
		ValidateSamples: *samples,
		MaxValidate:     *valMax,
	}
	if *platforms != "" {
		req.Space.Platforms = strings.Split(*platforms, ",")
	}
	if *dvfs != "" {
		req.Space.DVFSStates = strings.Split(*dvfs, ",")
	}
	// An explicitly-set -seed overrides a spec's own seed; the default does
	// not (Provision applies the same explicit-seed semantics).
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			req.Seed = *seed
		}
	})
	if *specRef == "" {
		tr, err := readTrace(*in)
		if err != nil {
			cliflag.Fatal(err)
		}
		req.Trace = tr
	}

	plan, err := dcmodel.Provision(context.Background(), req)
	infeasible := errors.Is(err, dcmodel.ErrNoFeasibleConfig)
	if err != nil && !infeasible {
		cliflag.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(plan); err != nil {
			log.Fatal(err)
		}
		if infeasible {
			os.Exit(1)
		}
		return
	}
	report(plan)
	if infeasible {
		log.Fatalf("no feasible configuration: %v", err)
	}
}

// report prints the human-readable plan: the twin sweep table, the chosen
// configuration, and the DES validation verdicts.
func report(plan dcmodel.Plan) {
	qn := quantileName(plan.Objective.Quantile)
	fmt.Printf("%s provisioning search: %s <= %.0f ms, %d-%d servers, platforms %s, dvfs %s, replicas %d-%d\n",
		plan.Strategy, qn, 1000*plan.Objective.TargetSeconds,
		plan.Space.MinServers, plan.Space.MaxServers,
		strings.Join(plan.Space.Platforms, ","), strings.Join(plan.Space.DVFSStates, ","),
		plan.Space.MinReplicas, plan.Space.MaxReplicas)
	fmt.Printf("twin evaluations: %d configurations in closed form, %d DES validation runs\n",
		plan.TwinEvals, plan.DESRuns)

	chosen := plan.Chosen
	fmt.Printf("\nclosed-form twin sweep at %s @ %s, replicas %d:\n", chosen.Platform, chosen.DVFS, chosen.Replicas)
	fmt.Printf("%-8s | %-10s | %-10s | %-10s | %-10s\n", "servers", "util", "mean ms", qn+" ms", "cost/h")
	for _, e := range plan.Sweep {
		if !e.Stable {
			fmt.Printf("%-8d | %9.1f%% | %10s | %10s | %10.2f\n",
				e.Config.Servers, 100*e.BottleneckUtilization, "saturated", "-", e.CostPerHour)
			continue
		}
		fmt.Printf("%-8d | %9.1f%% | %10.2f | %10.2f | %10.2f\n",
			e.Config.Servers, 100*e.BottleneckUtilization,
			1000*e.MeanSeconds, 1000*e.QuantileSeconds, e.CostPerHour)
	}

	if !plan.Feasible {
		fmt.Printf("\nclosest miss: %d x %s @ %s, replicas %d (%s %.2f ms, bottleneck %s)\n",
			chosen.Servers, chosen.Platform, chosen.DVFS, chosen.Replicas,
			qn, 1000*plan.Predicted.QuantileSeconds, plan.Predicted.Bottleneck)
		return
	}
	fmt.Printf("\ntwin decision: %d x %s @ %s, replicas %d (%s %.2f ms <= %.0f ms, bottleneck %s, %.2f cost/h)\n",
		chosen.Servers, chosen.Platform, chosen.DVFS, chosen.Replicas,
		qn, 1000*plan.Predicted.QuantileSeconds, 1000*plan.Objective.TargetSeconds,
		plan.Predicted.Bottleneck, plan.Predicted.CostPerHour)
	if len(plan.Frontier) > 1 {
		fmt.Printf("pareto frontier: %d configurations (cheapest first)\n", len(plan.Frontier))
	}

	for _, v := range plan.Validations {
		if v.Error != "" {
			fmt.Printf("\nvalidation: DES run of %d servers failed: %s\n", v.Servers, v.Error)
			continue
		}
		fmt.Printf("\nvalidation: DES run of %d servers (%d tasks): util %.1f%%, mean %.2f ms, %s %.2f ms\n",
			v.Servers, v.Tasks, 100*v.Utilization, 1000*v.MeanSeconds, qn, 1000*v.QuantileSeconds)
		if v.Servers == chosen.Servers && v.Passed {
			dev := math.Abs(plan.Predicted.QuantileSeconds-v.QuantileSeconds) / v.QuantileSeconds
			fmt.Printf("twin %s %.2f ms vs DES %s %.2f ms (%.1f%% deviation)\n",
				qn, 1000*plan.Predicted.QuantileSeconds, qn, 1000*v.QuantileSeconds, 100*dev)
		}
	}
	if plan.Validated != nil {
		fmt.Printf("provisioning decision validated: %d servers\n", chosen.Servers)
	} else if plan.DESRuns == 0 {
		fmt.Printf("no DES validation performed (twin-only plan)\n")
	}
}

func quantileName(q float64) string {
	switch q {
	case 0.5:
		return "p50"
	case 0.99:
		return "p99"
	default:
		return "p95"
	}
}

func readTrace(path string) (*dcmodel.Trace, error) {
	if path == "-" {
		return dcmodel.ReadTraceCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".dct") {
		return dcmodel.ReadTraceBinary(f)
	}
	return dcmodel.ReadTraceCSV(f)
}
