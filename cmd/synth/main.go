// Command synth trains a workload model on a trace (or loads a saved
// model) and emits a synthetic workload generated from it.
//
// Usage:
//
//	synth -in trace.csv -model kooza -n 10000 > synthetic.csv
//	synth -model-file model.json -model in-depth -n 10000 > synthetic.csv
//	synth -in trace.csv -n 10000 -shards 8 -workers 4 > synthetic.csv
//	synth -spec webtier -n 10000 > synthetic.csv  # train on a spec-generated trace
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"

	"dcmodel"
	"dcmodel/internal/cliflag"
	"dcmodel/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synth: ")
	var (
		in        = flag.String("in", "-", "input trace (CSV, or binary trace-v2 for .dct paths; '-' for stdin)")
		specRef   = flag.String("spec", "", "generate the training trace from a workload spec (preset name or JSON/YAML file) instead of reading -in")
		modelFile = flag.String("model-file", "", "load a saved model instead of training (skips -in; -model selects the decoder)")
		modelName = flag.String("model", "kooza", "model: kooza, in-breadth or in-depth")
		n         = flag.Int("n", 4000, "number of synthetic requests")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "-", "output path ('-' for stdout; .dct writes binary trace-v2)")
		replayIt  = flag.Bool("replay", false, "replay the synthetic workload on the default platform before writing (fills timing)")
		shards    = flag.Int("shards", 1, "partition synthesis into this many independently-seeded shards")
		workers   = flag.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS, 1 = serial); needs -shards > 1")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Workers(*workers),
		cliflag.Shards(*shards),
		cliflag.Seed(*seed),
		cliflag.Min("n", *n, 1),
	)
	approach, err := dcmodel.ParseApproach(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	var m dcmodel.Model
	if *modelFile != "" {
		f, err := os.Open(*modelFile)
		if err != nil {
			log.Fatal(err)
		}
		m, err = dcmodel.LoadModel(f, approach)
		f.Close()
		if err != nil {
			cliflag.Fatal(err)
		}
	} else {
		var tr *dcmodel.Trace
		if *specRef != "" {
			tr, err = traceFromSpec(*specRef, *seed, *workers)
		} else {
			tr, err = readTrace(*in)
		}
		if err != nil {
			cliflag.Fatal(err)
		}
		m, err = dcmodel.Train(tr, approach)
		if err != nil {
			cliflag.Fatal(err)
		}
	}

	// Bulk generation rides the batch path (byte-identical to scalar
	// Synthesize at the same seed, sharded or not).
	var synth *dcmodel.Trace
	if *shards > 1 {
		synth, err = dcmodel.SynthesizeSharded(m.SynthesizeBatch, *n, *shards, *workers, *seed)
	} else {
		synth, err = m.SynthesizeBatch(*n, rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		cliflag.Fatal(err)
	}
	label := m.Approach().String()
	if *modelFile != "" {
		label += " (loaded)"
	}
	writeOut(synth, *out, label, *replayIt)
}

// writeOut optionally replays the workload for timing, then writes it.
func writeOut(synth *dcmodel.Trace, out, label string, replayIt bool) {
	var err error
	if replayIt {
		synth, err = dcmodel.Replay(synth, dcmodel.DefaultPlatform())
		if err != nil {
			log.Fatal(err)
		}
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(out, ".dct") {
		err = dcmodel.WriteTraceBinary(w, synth)
	} else {
		err = dcmodel.WriteTraceCSV(w, synth)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "synth: wrote %d synthetic requests (%s model)\n", synth.Len(), label)
}

// traceFromSpec generates the training trace from a workload spec. The
// explicitly-set -seed overrides the spec's seed; the spec's own request
// count is kept (the -n flag sizes the synthetic output, not the training
// input).
func traceFromSpec(ref string, seed int64, workers int) (*dcmodel.Trace, error) {
	s, err := spec.Resolve(ref)
	if err != nil {
		return nil, err
	}
	var opts spec.Options
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			opts.Seed = seed
		}
	})
	c, err := s.Compile(opts)
	if err != nil {
		return nil, err
	}
	return c.Generate(workers)
}

func readTrace(path string) (*dcmodel.Trace, error) {
	if path == "-" {
		return dcmodel.ReadTraceCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".dct") {
		return dcmodel.ReadTraceBinary(f)
	}
	return dcmodel.ReadTraceCSV(f)
}
