// Command traceview renders the span trees served by dcmodeld's
// GET /v1/traces as ASCII waterfalls: one row per span, indented by tree
// depth, with a bar showing where the span sits inside its request.
//
// Usage:
//
//	traceview -url http://localhost:8080        # fetch /v1/traces live
//	traceview -in traces.json                   # render a saved dump
//	curl -s http://localhost:8080/v1/traces | traceview -in -
//	traceview -url http://localhost:8080 -limit 3 -width 48
//
// Each waterfall is scaled to the root span's interval, so a queued
// request shows its queue.wait stage eating the left of the bar and a
// degraded replay shows the replay stage stretching to the right.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"dcmodel/internal/cliflag"
	"dcmodel/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")
	var (
		url   = flag.String("url", "", "dcmodeld base URL to fetch /v1/traces from (e.g. http://localhost:8080)")
		in    = flag.String("in", "", "saved /v1/traces JSON to render instead of fetching (- = stdin)")
		width = flag.Int("width", 64, "waterfall bar width in columns")
		limit = flag.Int("limit", 0, "render at most this many traces, newest last (0 = all)")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Min("width", *width, 8),
		cliflag.Min("limit", *limit, 0),
	)
	if (*url == "") == (*in == "") {
		cliflag.Check("exactly one of -url and -in is required")
	}

	var body io.ReadCloser
	switch {
	case *in == "-":
		body = os.Stdin
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			cliflag.Fatal(err)
		}
		body = f
	default:
		resp, err := http.Get(strings.TrimSuffix(*url, "/") + "/v1/traces")
		if err != nil {
			cliflag.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			cliflag.Fatal(fmt.Errorf("GET %s/v1/traces: %s", *url, resp.Status))
		}
		body = resp.Body
	}
	defer body.Close()

	var dump obs.TraceDump
	if err := json.NewDecoder(body).Decode(&dump); err != nil {
		cliflag.Fatal(fmt.Errorf("decoding trace dump: %w", err))
	}
	os.Stdout.WriteString(Render(&dump, *width, *limit))
}

// Render formats a trace dump as waterfalls. width is the bar width in
// columns; limit keeps only the last N traces (0 = all).
func Render(dump *obs.TraceDump, width, limit int) string {
	var b strings.Builder
	if !dump.Enabled {
		b.WriteString("tracing disabled (start dcmodeld with -trace-every N)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "sampling 1/%d: %d started, %d sampled, %d held (cap %d)\n",
		dump.SampleEvery, dump.Started, dump.Sampled, dump.Held, dump.Capacity)
	traces := dump.Traces
	if limit > 0 && len(traces) > limit {
		fmt.Fprintf(&b, "(showing last %d of %d)\n", limit, len(traces))
		traces = traces[len(traces)-limit:]
	}
	for _, tree := range traces {
		b.WriteByte('\n')
		renderTree(&b, tree, width)
	}
	return b.String()
}

func renderTree(b *strings.Builder, tree *obs.TreeDump, width int) {
	if tree == nil || tree.Root == nil {
		return
	}
	fmt.Fprintf(b, "trace %d: %s  %.3fms  (%d spans, depth %d)\n",
		tree.TraceID, tree.Root.Name, tree.Root.DurationMS, tree.Spans, tree.Depth)
	// Left-column width: longest indented name among all spans.
	label := 0
	var measure func(n *obs.NodeDump, depth int)
	measure = func(n *obs.NodeDump, depth int) {
		if l := 2*depth + len(n.Name); l > label {
			label = l
		}
		for _, c := range n.Children {
			measure(c, depth+1)
		}
	}
	measure(tree.Root, 0)
	var walk func(n *obs.NodeDump, depth int)
	walk = func(n *obs.NodeDump, depth int) {
		name := strings.Repeat("  ", depth) + n.Name
		fmt.Fprintf(b, "  %-*s |%s| %9.3fms", label, name, bar(n, tree.Root, width), n.DurationMS)
		for _, a := range n.Annotations {
			fmt.Fprintf(b, "  %s", a.Message)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(tree.Root, 0)
}

// bar draws a span's interval scaled into the root's, '=' for the span
// and '.' for the rest of the request. A zero-length root (or span)
// still gets one '=' cell so every row is visible.
func bar(n, root *obs.NodeDump, width int) string {
	total := root.End - root.Start
	start, end := 0, width
	if total > 0 {
		start = int(float64(width) * (n.Start - root.Start) / total)
		end = int(float64(width) * (n.End - root.Start) / total)
	}
	if start < 0 {
		start = 0
	}
	if end > width {
		end = width
	}
	if end <= start {
		end = start + 1
		if end > width {
			start, end = width-1, width
		}
	}
	return strings.Repeat(".", start) + strings.Repeat("=", end-start) + strings.Repeat(".", width-end)
}
