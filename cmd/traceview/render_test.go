package main

import (
	"strings"
	"testing"

	"dcmodel/internal/obs"
)

func sampleDump() *obs.TraceDump {
	root := &obs.NodeDump{
		SpanID: 1, Name: "http:replay", Start: 10, End: 10.1, DurationMS: 100,
	}
	wait := &obs.NodeDump{
		SpanID: 2, ParentID: 1, Name: "queue.wait", Start: 10, End: 10.05, DurationMS: 50,
	}
	rep := &obs.NodeDump{
		SpanID: 3, ParentID: 1, Name: "replay", Start: 10.05, End: 10.1, DurationMS: 50,
		Annotations: []obs.AnnotationDump{{Time: 10.05, Message: "requests=400"}},
	}
	root.Children = []*obs.NodeDump{wait, rep}
	return &obs.TraceDump{
		Enabled: true, SampleEvery: 1000, Capacity: 128,
		Started: 5000, Sampled: 5, Held: 1,
		Traces: []*obs.TreeDump{{TraceID: 7, Spans: 3, Depth: 2, Root: root}},
	}
}

func TestRenderWaterfall(t *testing.T) {
	out := Render(sampleDump(), 16, 0)
	if !strings.Contains(out, "sampling 1/1000: 5000 started, 5 sampled, 1 held (cap 128)") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "trace 7: http:replay  100.000ms  (3 spans, depth 2)") {
		t.Fatalf("trace header missing:\n%s", out)
	}
	// The root bar fills the width; the two stages split it left/right.
	if !strings.Contains(out, "|================|") {
		t.Fatalf("root bar wrong:\n%s", out)
	}
	if !strings.Contains(out, "|========........|") || !strings.Contains(out, "|........========|") {
		t.Fatalf("stage bars wrong:\n%s", out)
	}
	// Children are indented and annotations ride on the row.
	if !strings.Contains(out, "  queue.wait") || !strings.Contains(out, "requests=400") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}

func TestRenderLimit(t *testing.T) {
	dump := sampleDump()
	second := *dump.Traces[0]
	second.TraceID = 8
	dump.Traces = append(dump.Traces, &second)
	out := Render(dump, 16, 1)
	if !strings.Contains(out, "(showing last 1 of 2)") {
		t.Fatalf("limit note missing:\n%s", out)
	}
	if strings.Contains(out, "trace 7:") || !strings.Contains(out, "trace 8:") {
		t.Fatalf("limit kept the wrong trace:\n%s", out)
	}
}

func TestRenderDisabled(t *testing.T) {
	out := Render(&obs.TraceDump{}, 16, 0)
	if !strings.Contains(out, "tracing disabled") {
		t.Fatalf("disabled message missing:\n%s", out)
	}
}

func TestRenderZeroLengthSpans(t *testing.T) {
	// A zero-length root (instant request) must still render one cell per
	// bar rather than divide by zero or emit an empty bar.
	dump := &obs.TraceDump{
		Enabled: true, SampleEvery: 1, Started: 1, Sampled: 1, Held: 1, Capacity: 1,
		Traces: []*obs.TreeDump{{
			TraceID: 1, Spans: 2, Depth: 2,
			Root: &obs.NodeDump{
				SpanID: 1, Name: "r", Start: 5, End: 5,
				Children: []*obs.NodeDump{{SpanID: 2, ParentID: 1, Name: "s", Start: 5, End: 5}},
			},
		}},
	}
	out := Render(dump, 8, 0)
	if strings.Contains(out, "||") {
		t.Fatalf("empty bar rendered:\n%s", out)
	}
}
