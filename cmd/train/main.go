// Command train fits a workload model to a trace and prints its trained
// structure. For KOOZA the output is the regeneration of the paper's
// Figure 2: the four per-subsystem models wired by the time-dependency
// queue.
//
// Usage:
//
//	train -in trace.csv -model kooza
//	train -in trace.csv -model in-depth -o model.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dcmodel/internal/kooza"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		in        = flag.String("in", "-", "input trace (CSV; '-' for stdin)")
		modelName = flag.String("model", "kooza", "model: kooza, in-breadth or in-depth")
		regions   = flag.Int("regions", 32, "storage LBN-region states (kooza/in-breadth)")
		cpuStates = flag.Int("cpustates", 8, "CPU utilization-level states (kooza/in-breadth)")
		hier      = flag.Bool("hier", false, "hierarchical storage model (kooza)")
		pca       = flag.Bool("pca", false, "also print the PCA feature-space analysis")
		out       = flag.String("o", "", "save the trained model as JSON to this path")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Min("regions", *regions, 2),
		cliflag.Min("cpustates", *cpuStates, 2),
	)
	approach, err := dcmodel.ParseApproach(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := readTrace(*in)
	if err != nil {
		log.Fatal(err)
	}
	if *pca {
		rep, err := kooza.FeatureAnalysis(tr)
		if err != nil {
			cliflag.Fatal(err)
		}
		fmt.Print(rep.Render())
		fmt.Println()
	}

	opts := []dcmodel.TrainOption{
		dcmodel.WithStorageRegions(*regions),
		dcmodel.WithCPUStates(*cpuStates),
	}
	if *hier {
		opts = append(opts, dcmodel.WithKoozaOptions(dcmodel.KoozaOptions{
			StorageRegions: *regions,
			CPUStates:      *cpuStates,
			Hierarchical:   true,
		}))
	}
	m, err := dcmodel.Train(tr, approach, opts...)
	if err != nil {
		cliflag.Fatal(err)
	}
	fmt.Print(m.Characterize())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			cliflag.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "train: saved %s model to %s\n", m.Approach(), *out)
	}
}

func readTrace(path string) (*dcmodel.Trace, error) {
	if path == "-" {
		return dcmodel.ReadTraceCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dcmodel.ReadTraceCSV(f)
}
