// Command train fits a workload model to a trace and prints its trained
// structure. For KOOZA the output is the regeneration of the paper's
// Figure 2: the four per-subsystem models wired by the time-dependency
// queue.
//
// Usage:
//
//	train -in trace.csv -model kooza
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dcmodel/internal/kooza"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		in        = flag.String("in", "-", "input trace (CSV; '-' for stdin)")
		modelName = flag.String("model", "kooza", "model: kooza, inbreadth or indepth")
		regions   = flag.Int("regions", 32, "storage LBN-region states (kooza/inbreadth)")
		cpuStates = flag.Int("cpustates", 8, "CPU utilization-level states (kooza/inbreadth)")
		hier      = flag.Bool("hier", false, "hierarchical storage model (kooza)")
		pca       = flag.Bool("pca", false, "also print the PCA feature-space analysis")
		out       = flag.String("o", "", "save the trained KOOZA model as JSON to this path")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Min("regions", *regions, 2),
		cliflag.Min("cpustates", *cpuStates, 2),
	)

	tr, err := readTrace(*in)
	if err != nil {
		log.Fatal(err)
	}
	if *pca {
		rep, err := kooza.FeatureAnalysis(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Render())
		fmt.Println()
	}
	switch *modelName {
	case "kooza":
		m, err := dcmodel.TrainKooza(tr, dcmodel.KoozaOptions{
			StorageRegions: *regions,
			CPUStates:      *cpuStates,
			Hierarchical:   *hier,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(m.Describe())
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := kooza.Save(f, m); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "train: saved model to %s\n", *out)
		}
	case "inbreadth":
		m, err := dcmodel.TrainInBreadth(tr, dcmodel.InBreadthOptions{
			StorageRegions: *regions,
			CPUStates:      *cpuStates,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("in-breadth model: %d parameters, trained on %d requests\n", m.NumParams(), m.TrainedOn)
		fmt.Printf("  storage: %d regions, seq=%.2f, read=%.2f\n", m.Storage.Regions, m.Storage.SeqProb, m.Storage.ReadProb)
		fmt.Printf("  cpu: %d levels over [%.4f, %.4f]\n", m.CPU.Chain.N, m.CPU.Lo, m.CPU.Hi)
		fmt.Printf("  memory: %d banks, read=%.2f\n", m.Memory.Banks, m.Memory.ReadProb)
		fmt.Printf("  spans/request: %v\n", m.SpansPerRequest)
	case "indepth":
		m, err := dcmodel.TrainInDepth(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("in-depth model: %d parameters, trained on %d requests\n", m.NumParams(), m.TrainedOn)
		for _, c := range m.Classes {
			fmt.Printf("  class %q (weight %.3f): %d phases\n", c.Name, c.Weight, len(c.Phases))
			pred, err := m.PredictMeanLatency(c.Name)
			if err == nil {
				fmt.Printf("    predicted no-contention latency: %.3f ms\n", 1000*pred)
			}
		}
	default:
		log.Fatalf("unknown model %q (want kooza, inbreadth or indepth)", *modelName)
	}
}

func readTrace(path string) (*dcmodel.Trace, error) {
	if path == "-" {
		return dcmodel.ReadTraceCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dcmodel.ReadTraceCSV(f)
}
