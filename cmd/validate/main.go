// Command validate runs the paper's Table 2 pipeline end-to-end: simulate
// (or load) a GFS workload trace, train KOOZA on it, synthesize an equal
// number of requests, replay them on the same simulated platform, and
// print the original-vs-synthetic comparison of request features and
// latency.
//
// Usage:
//
//	validate -requests 4000 -rate 20          # simulate + validate
//	validate -in trace.csv -n 4000            # validate against a trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dcmodel"
	"dcmodel/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	var (
		in       = flag.String("in", "", "input trace CSV (empty = simulate)")
		requests = flag.Int("requests", 4000, "requests to simulate when -in is empty")
		rate     = flag.Float64("rate", 20, "arrival rate for simulation")
		n        = flag.Int("n", 0, "synthetic requests (0 = same as training trace)")
		seed     = flag.Int64("seed", 1, "random seed")
		describe = flag.Bool("describe", false, "also print the trained model structure (Figure 2)")
	)
	flag.Parse()
	cliflag.Check(
		cliflag.Seed(*seed),
		cliflag.Min("requests", *requests, 1),
		cliflag.Min("n", *n, 0),
		cliflag.PositiveFloat("rate", *rate),
	)

	var (
		tr  *dcmodel.Trace
		err error
	)
	if *in == "" {
		tr, err = dcmodel.Simulate(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
			RunConfig: dcmodel.RunConfig{
				Mix:      dcmodel.Table2Mix(),
				Requests: *requests,
				Seed:     *seed,
			},
			Rate: *rate,
		})
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			tr, err = dcmodel.ReadTraceCSV(f)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	count := *n
	if count == 0 {
		count = tr.Len()
	}
	res, err := dcmodel.Validate(tr, count, dcmodel.DefaultPlatform(), dcmodel.KoozaOptions{}, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	if *describe {
		fmt.Println()
		fmt.Print(res.Model.Describe())
	}
}
