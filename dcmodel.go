// Package dcmodel is a datacenter workload modeling toolkit: a from-scratch
// Go implementation of the modeling ecosystem cross-examined in
// "Cross-Examination of Datacenter Workload Modeling Techniques"
// (Delimitrou & Kozyrakis, ICDCS 2011 workshops).
//
// The toolkit provides:
//
//   - A GFS-like application simulator (SimulateGFS) that generates
//     ground-truth workload traces with the paper's Figure 1 request
//     structure: network -> CPU -> memory -> storage -> CPU -> network.
//   - Three trainable workload models: the in-breadth approach (four
//     independent per-subsystem models), the in-depth approach (a
//     request-flow queueing model), and KOOZA, the paper's combined
//     approach (per-subsystem Markov models + a network queueing model +
//     a time-dependency queue).
//   - A replay engine that executes original or synthetic workloads on a
//     simulated server platform and measures latency.
//   - A cross-examination harness regenerating the paper's Table 1, and a
//     validation pipeline regenerating Table 2.
//
// Quick start:
//
//	tr, _ := dcmodel.SimulateGFS(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
//		Mix: dcmodel.Table2Mix(), Rate: 20, Requests: 4000,
//	}, 1)
//	model, _ := dcmodel.TrainKooza(tr, dcmodel.KoozaOptions{})
//	synth, _ := model.Synthesize(4000, rand.New(rand.NewSource(2)))
//	timed, _ := dcmodel.Replay(synth, dcmodel.DefaultPlatform())
package dcmodel

import (
	"fmt"
	"math/rand"

	"dcmodel/internal/crossexam"
	"dcmodel/internal/gfs"
	"dcmodel/internal/hw"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/replay"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// Trace schema re-exports.
type (
	// Trace is an ordered collection of traced requests.
	Trace = trace.Trace
	// Request is one traced user request.
	Request = trace.Request
	// Span is one per-subsystem phase of a request.
	Span = trace.Span
	// Subsystem identifies a system part (network, cpu, memory, storage).
	Subsystem = trace.Subsystem
	// Op is a read/write operation type.
	Op = trace.Op
)

// Subsystem and operation constants.
const (
	Network = trace.Network
	CPU     = trace.CPU
	Memory  = trace.Memory
	Storage = trace.Storage

	OpNone  = trace.OpNone
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Model re-exports.
type (
	// KoozaModel is the paper's combined model.
	KoozaModel = kooza.Model
	// KoozaOptions configures KOOZA training.
	KoozaOptions = kooza.Options
	// InBreadthModel is the per-subsystem baseline.
	InBreadthModel = inbreadth.Model
	// InBreadthOptions configures in-breadth training.
	InBreadthOptions = inbreadth.Options
	// InDepthModel is the request-flow baseline.
	InDepthModel = indepth.Model
)

// Workload re-exports.
type (
	// Mix is a weighted set of request classes.
	Mix = workload.Mix
	// ClassSpec describes one request class.
	ClassSpec = workload.ClassSpec
	// Arrivals generates request arrival instants.
	Arrivals = workload.Arrivals
)

// Hardware and platform re-exports.
type (
	// Server bundles one machine's subsystem hardware models.
	Server = hw.Server
	// Platform describes the replay hardware.
	Platform = replay.Platform
)

// GFS simulator re-exports.
type (
	// GFSConfig describes the simulated GFS cluster.
	GFSConfig = gfs.Config
	// GFSCluster is a constructed cluster (advanced use).
	GFSCluster = gfs.Cluster
)

// Cross-examination re-exports.
type (
	// Approach wraps one modeling approach for cross-examination.
	Approach = crossexam.Approach
	// Scores is the measured Table 1 scorecard of one approach.
	Scores = crossexam.Scores
)

// Table2Mix returns the paper's two validation request classes (64 KB
// read, 4 MB write).
func Table2Mix() *Mix { return workload.Table2Mix() }

// WebMix returns a heavy-tailed read/write object mix.
func WebMix() *Mix { return workload.WebMix() }

// DefaultGFSConfig returns the single-chunkserver cluster configuration of
// the paper's preliminary experiments.
func DefaultGFSConfig() GFSConfig { return gfs.DefaultConfig() }

// DefaultPlatform returns the replay platform matching the default GFS
// chunkserver hardware.
func DefaultPlatform() Platform {
	return Platform{NewServer: gfs.DefaultServerHW}
}

// GFSRun drives a GFS simulation.
type GFSRun struct {
	// Mix is the request-class mix (required).
	Mix *Mix
	// Rate is the Poisson arrival rate in requests/second; ignored when
	// Arrivals is set.
	Rate float64
	// Arrivals optionally overrides the arrival process.
	Arrivals Arrivals
	// Requests is the number of requests to simulate (required).
	Requests int
}

// SimulateGFS builds a cluster from cfg, runs the workload and returns the
// resulting trace. The seed makes the run reproducible.
func SimulateGFS(cfg GFSConfig, run GFSRun, seed int64) (*Trace, error) {
	cluster, err := gfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	arrivals := run.Arrivals
	if arrivals == nil {
		if run.Rate <= 0 {
			return nil, fmt.Errorf("dcmodel: run needs a positive Rate or an Arrivals process")
		}
		arrivals = workload.Poisson{Rate: run.Rate}
	}
	return cluster.Run(gfs.RunConfig{
		Mix:      run.Mix,
		Arrivals: arrivals,
		Requests: run.Requests,
	}, rand.New(rand.NewSource(seed)))
}

// GFSClosedRun drives a closed-loop (interactive) GFS simulation.
type GFSClosedRun struct {
	// Mix is the request-class mix (required).
	Mix *Mix
	// Users is the closed population size.
	Users int
	// MeanThink is the mean exponential think time (seconds).
	MeanThink float64
	// Requests is the number of requests to complete.
	Requests int
}

// SimulateGFSClosed builds a cluster from cfg and runs a closed-loop
// workload: Users concurrent users issuing, thinking and reissuing — the
// interactive-population shape of closed queueing analyses.
func SimulateGFSClosed(cfg GFSConfig, run GFSClosedRun, seed int64) (*Trace, error) {
	cluster, err := gfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return cluster.RunClosed(gfs.ClosedRunConfig{
		Mix:       run.Mix,
		Users:     run.Users,
		MeanThink: run.MeanThink,
		Requests:  run.Requests,
	}, rand.New(rand.NewSource(seed)))
}

// TrainKooza fits the paper's combined model to a trace.
func TrainKooza(tr *Trace, opts KoozaOptions) (*KoozaModel, error) {
	return kooza.Train(tr, opts)
}

// TrainInBreadth fits the per-subsystem baseline to a trace.
func TrainInBreadth(tr *Trace, opts InBreadthOptions) (*InBreadthModel, error) {
	return inbreadth.Train(tr, opts)
}

// TrainInDepth fits the request-flow baseline to a trace.
func TrainInDepth(tr *Trace) (*InDepthModel, error) {
	return indepth.Train(tr)
}

// Replay executes a workload on the platform and returns the re-timed
// trace.
func Replay(tr *Trace, p Platform) (*Trace, error) {
	return replay.Run(tr, p)
}

// CrossExamine scores the three standard approaches (trained on tr) on the
// Table 1 criteria using n synthetic requests each.
func CrossExamine(tr *Trace, n int, p Platform, seed int64) ([]Scores, error) {
	ib, err := inbreadth.Train(tr, inbreadth.Options{})
	if err != nil {
		return nil, fmt.Errorf("dcmodel: in-breadth: %w", err)
	}
	id, err := indepth.Train(tr)
	if err != nil {
		return nil, fmt.Errorf("dcmodel: in-depth: %w", err)
	}
	kz, err := kooza.Train(tr, kooza.Options{})
	if err != nil {
		return nil, fmt.Errorf("dcmodel: kooza: %w", err)
	}
	approaches := []Approach{
		{Name: "in-breadth", Synthesize: ib.Synthesize, NumParams: ib.NumParams(), Knobs: 3},
		{Name: "in-depth", Synthesize: id.Synthesize, NumParams: id.NumParams(), Knobs: 1, SelfTimed: true},
		{Name: "KOOZA", Synthesize: kz.Synthesize, NumParams: kz.NumParams(), Knobs: 5},
	}
	return crossexam.Evaluate(tr, approaches, n, p, rand.New(rand.NewSource(seed)))
}

// RenderScores renders the Table 1 regeneration (qualitative matrix plus
// the measured scorecard).
func RenderScores(scores []Scores) string { return crossexam.Render(scores) }
