// Package dcmodel is a datacenter workload modeling toolkit: a from-scratch
// Go implementation of the modeling ecosystem cross-examined in
// "Cross-Examination of Datacenter Workload Modeling Techniques"
// (Delimitrou & Kozyrakis, ICDCS 2011 workshops).
//
// The toolkit provides:
//
//   - A GFS-like application simulator (SimulateGFS) that generates
//     ground-truth workload traces with the paper's Figure 1 request
//     structure: network -> CPU -> memory -> storage -> CPU -> network.
//   - Three trainable workload models: the in-breadth approach (four
//     independent per-subsystem models), the in-depth approach (a
//     request-flow queueing model), and KOOZA, the paper's combined
//     approach (per-subsystem Markov models + a network queueing model +
//     a time-dependency queue).
//   - A replay engine that executes original or synthetic workloads on a
//     simulated server platform and measures latency.
//   - A cross-examination harness regenerating the paper's Table 1, and a
//     validation pipeline regenerating Table 2.
//
// Quick start:
//
//	tr, _ := dcmodel.SimulateGFS(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
//		Mix: dcmodel.Table2Mix(), Rate: 20, Requests: 4000,
//	}, 1)
//	model, _ := dcmodel.TrainKooza(tr, dcmodel.KoozaOptions{})
//	synth, _ := model.Synthesize(4000, rand.New(rand.NewSource(2)))
//	timed, _ := dcmodel.Replay(synth, dcmodel.DefaultPlatform())
package dcmodel

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/crossexam"
	"dcmodel/internal/gfs"
	"dcmodel/internal/hw"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/par"
	"dcmodel/internal/prand"
	"dcmodel/internal/replay"
	"dcmodel/internal/serve"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// Trace schema re-exports.
type (
	// Trace is an ordered collection of traced requests.
	Trace = trace.Trace
	// Request is one traced user request.
	Request = trace.Request
	// Span is one per-subsystem phase of a request.
	Span = trace.Span
	// Subsystem identifies a system part (network, cpu, memory, storage).
	Subsystem = trace.Subsystem
	// Op is a read/write operation type.
	Op = trace.Op
)

// Subsystem and operation constants.
const (
	Network = trace.Network
	CPU     = trace.CPU
	Memory  = trace.Memory
	Storage = trace.Storage

	OpNone  = trace.OpNone
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Model re-exports.
type (
	// KoozaModel is the paper's combined model.
	KoozaModel = kooza.Model
	// KoozaOptions configures KOOZA training.
	KoozaOptions = kooza.Options
	// InBreadthModel is the per-subsystem baseline.
	InBreadthModel = inbreadth.Model
	// InBreadthOptions configures in-breadth training.
	InBreadthOptions = inbreadth.Options
	// InDepthModel is the request-flow baseline.
	InDepthModel = indepth.Model
)

// Workload re-exports.
type (
	// Mix is a weighted set of request classes.
	Mix = workload.Mix
	// ClassSpec describes one request class.
	ClassSpec = workload.ClassSpec
	// Arrivals generates request arrival instants.
	Arrivals = workload.Arrivals
)

// Hardware and platform re-exports.
type (
	// Server bundles one machine's subsystem hardware models.
	Server = hw.Server
	// Platform describes the replay hardware.
	Platform = replay.Platform
)

// GFS simulator re-exports.
type (
	// GFSConfig describes the simulated GFS cluster.
	GFSConfig = gfs.Config
	// GFSCluster is a constructed cluster (advanced use).
	GFSCluster = gfs.Cluster
)

// Cross-examination re-exports.
type (
	// Approach wraps one modeling approach for cross-examination.
	Approach = crossexam.Approach
	// Scores is the measured Table 1 scorecard of one approach.
	Scores = crossexam.Scores
)

// Table2Mix returns the paper's two validation request classes (64 KB
// read, 4 MB write).
func Table2Mix() *Mix { return workload.Table2Mix() }

// WebMix returns a heavy-tailed read/write object mix.
func WebMix() *Mix { return workload.WebMix() }

// DefaultGFSConfig returns the single-chunkserver cluster configuration of
// the paper's preliminary experiments.
func DefaultGFSConfig() GFSConfig { return gfs.DefaultConfig() }

// DefaultPlatform returns the replay platform matching the default GFS
// chunkserver hardware.
func DefaultPlatform() Platform {
	return Platform{NewServer: gfs.DefaultServerHW}
}

// GFSRun drives a GFS simulation.
type GFSRun struct {
	// Mix is the request-class mix (required).
	Mix *Mix
	// Rate is the Poisson arrival rate in requests/second; ignored when
	// Arrivals is set.
	Rate float64
	// Arrivals optionally overrides the arrival process.
	Arrivals Arrivals
	// Requests is the number of requests to simulate (required). In
	// sharded mode this is the total across all shards.
	Requests int
	// Shards, when > 1, partitions the client population into that many
	// independent cluster partitions, each with its own SplitMix64-derived
	// rand stream (see gfs.SimulateSharded). The merged trace depends only
	// on (cfg, run, Shards, seed) — never on Workers.
	Shards int
	// Workers bounds how many shards simulate concurrently: 0 selects
	// runtime.GOMAXPROCS(0), 1 is the serial fallback. Only consulted
	// when Shards > 1.
	Workers int
}

// SimulateGFS builds a cluster from cfg, runs the workload and returns the
// resulting trace. The seed makes the run reproducible: with Shards <= 1
// the run is the classic single-threaded simulation; with Shards > 1 the
// sharded engine partitions clients across cluster partitions and the
// output is byte-identical for any Workers value.
func SimulateGFS(cfg GFSConfig, run GFSRun, seed int64) (*Trace, error) {
	arrivals := run.Arrivals
	if arrivals == nil {
		if run.Rate <= 0 {
			return nil, fmt.Errorf("dcmodel: run needs a positive Rate or an Arrivals process")
		}
		arrivals = workload.Poisson{Rate: run.Rate}
	}
	rc := gfs.RunConfig{
		Mix:      run.Mix,
		Arrivals: arrivals,
		Requests: run.Requests,
	}
	if run.Shards > 1 {
		return gfs.SimulateSharded(cfg, rc, run.Shards, run.Workers, seed)
	}
	cluster, err := gfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return cluster.Run(rc, rand.New(rand.NewSource(seed)))
}

// GFSClosedRun drives a closed-loop (interactive) GFS simulation.
type GFSClosedRun struct {
	// Mix is the request-class mix (required).
	Mix *Mix
	// Users is the closed population size (total across shards).
	Users int
	// MeanThink is the mean exponential think time (seconds).
	MeanThink float64
	// Requests is the number of requests to complete (total across
	// shards).
	Requests int
	// Shards, when > 1, partitions the user population across that many
	// independent cluster partitions (see gfs.SimulateShardedClosed).
	Shards int
	// Workers bounds shard concurrency (0 = GOMAXPROCS, 1 = serial); only
	// consulted when Shards > 1.
	Workers int
}

// SimulateGFSClosed builds a cluster from cfg and runs a closed-loop
// workload: Users concurrent users issuing, thinking and reissuing — the
// interactive-population shape of closed queueing analyses. With Shards >
// 1 the users are partitioned across independent cluster partitions and
// the merged trace is byte-identical for any Workers value.
func SimulateGFSClosed(cfg GFSConfig, run GFSClosedRun, seed int64) (*Trace, error) {
	rc := gfs.ClosedRunConfig{
		Mix:       run.Mix,
		Users:     run.Users,
		MeanThink: run.MeanThink,
		Requests:  run.Requests,
	}
	if run.Shards > 1 {
		return gfs.SimulateShardedClosed(cfg, rc, run.Shards, run.Workers, seed)
	}
	cluster, err := gfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return cluster.RunClosed(rc, rand.New(rand.NewSource(seed)))
}

// TrainKooza fits the paper's combined model to a trace.
func TrainKooza(tr *Trace, opts KoozaOptions) (*KoozaModel, error) {
	return kooza.Train(tr, opts)
}

// TrainInBreadth fits the per-subsystem baseline to a trace.
func TrainInBreadth(tr *Trace, opts InBreadthOptions) (*InBreadthModel, error) {
	return inbreadth.Train(tr, opts)
}

// TrainInDepth fits the request-flow baseline to a trace.
func TrainInDepth(tr *Trace) (*InDepthModel, error) {
	return indepth.Train(tr)
}

// Replay executes a workload on the platform and returns the re-timed
// trace.
func Replay(tr *Trace, p Platform) (*Trace, error) {
	return replay.Run(tr, p)
}

// CrossExamOptions configures the parallel cross-examination.
type CrossExamOptions struct {
	// Workers bounds how many approach chains (train → synthesize →
	// replay → score) run concurrently: 0 selects runtime.GOMAXPROCS(0),
	// 1 is the serial fallback. Every scorecard field except the
	// wall-clock Scalability throughput is independent of Workers.
	Workers int
	// SkipThroughput zeroes the wall-clock Scalability measurement so the
	// returned Scores are bit-identical across runs and worker counts.
	SkipThroughput bool
}

// CrossExamine scores the three standard approaches (trained on tr) on the
// Table 1 criteria using n synthetic requests each, running the approach
// chains on up to GOMAXPROCS workers.
func CrossExamine(tr *Trace, n int, p Platform, seed int64) ([]Scores, error) {
	return CrossExamineOpts(tr, n, p, seed, CrossExamOptions{})
}

// CrossExamineOpts is CrossExamine with explicit parallelism options. Each
// approach's whole chain — training included — runs as one task of the
// worker pool, with per-approach rand streams derived from seed via
// SplitMix64.
func CrossExamineOpts(tr *Trace, n int, p Platform, seed int64, opts CrossExamOptions) ([]Scores, error) {
	approaches := []Approach{
		{Name: "in-breadth", Knobs: 3, Setup: func(a *Approach) error {
			ib, err := inbreadth.Train(tr, inbreadth.Options{})
			if err != nil {
				return fmt.Errorf("dcmodel: in-breadth: %w", err)
			}
			a.Synthesize, a.NumParams = ib.Synthesize, ib.NumParams()
			return nil
		}},
		{Name: "in-depth", Knobs: 1, SelfTimed: true, Setup: func(a *Approach) error {
			id, err := indepth.Train(tr)
			if err != nil {
				return fmt.Errorf("dcmodel: in-depth: %w", err)
			}
			a.Synthesize, a.NumParams = id.Synthesize, id.NumParams()
			return nil
		}},
		{Name: "KOOZA", Knobs: 5, Setup: func(a *Approach) error {
			kz, err := kooza.Train(tr, kooza.Options{})
			if err != nil {
				return fmt.Errorf("dcmodel: kooza: %w", err)
			}
			a.Synthesize, a.NumParams = kz.Synthesize, kz.NumParams()
			return nil
		}},
	}
	return crossexam.Evaluate(tr, approaches, n, p, crossexam.Options{
		Seed:           seed,
		Workers:        opts.Workers,
		SkipThroughput: opts.SkipThroughput,
	})
}

// SynthesizeSharded fans one model's synthesis across shards: shard s
// generates its share of the n requests with the rand stream
// prand.Derive(seed, s), and the shard streams are stitched end-to-end on
// the time axis (each shard's timeline is offset by the end of the
// previous shard's, plus one mean interarrival gap). The result depends
// only on (n, shards, seed) — workers merely bounds concurrency — at the
// cost of resetting the model's Markov-walk state at the shards-1 stitch
// boundaries. synthesize must be safe for concurrent use with distinct
// *rand.Rand instances, which all trained models in this module are.
func SynthesizeSharded(synthesize func(n int, r *rand.Rand) (*Trace, error), n, shards, workers int, seed int64) (*Trace, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dcmodel: need >= 1 shard, got %d", shards)
	}
	if n < shards {
		return nil, fmt.Errorf("dcmodel: %d requests cannot cover %d shards", n, shards)
	}
	quota := make([]int, shards)
	base, extra := n/shards, n%shards
	for s := range quota {
		quota[s] = base
		if s < extra {
			quota[s]++
		}
	}
	parts := make([]*Trace, shards)
	err := par.Do(shards, workers, func(s int) error {
		tr, err := synthesize(quota[s], prand.New(seed, uint64(s)))
		if err != nil {
			return fmt.Errorf("dcmodel: shard %d: %w", s, err)
		}
		if tr.Len() != quota[s] {
			return fmt.Errorf("dcmodel: shard %d synthesized %d requests, want %d", s, tr.Len(), quota[s])
		}
		parts[s] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := &Trace{Requests: make([]Request, 0, n)}
	var offset float64
	for _, part := range parts {
		var end float64
		for _, req := range part.Requests {
			req.Arrival += offset
			for i := range req.Spans {
				req.Spans[i].Start += offset
				if e := req.Spans[i].Start + req.Spans[i].Duration; e > end {
					end = e
				}
			}
			if req.Arrival > end {
				end = req.Arrival
			}
			req.ID = int64(len(merged.Requests))
			merged.Requests = append(merged.Requests, req)
		}
		// Advance by the shard's span plus one mean gap so streams do not
		// overlap at the stitch point.
		span := end - offset
		offset = end + span/float64(part.Len())
	}
	sort.SliceStable(merged.Requests, func(i, j int) bool {
		return merged.Requests[i].Arrival < merged.Requests[j].Arrival
	})
	for i := range merged.Requests {
		merged.Requests[i].ID = int64(i)
	}
	return merged, nil
}

// RenderScores renders the Table 1 regeneration (qualitative matrix plus
// the measured scorecard).
func RenderScores(scores []Scores) string { return crossexam.Render(scores) }

// Model-serving daemon re-exports (cmd/dcmodeld is a thin wrapper over
// these; embedders can run the same server in-process).
type (
	// ModelServer is the long-running serving engine behind dcmodeld: a
	// sliding ingest window, online-trained warm models with chi-square
	// drift detection, and a bounded work queue with backpressure.
	ModelServer = serve.Server
	// ServeConfig tunes a ModelServer.
	ServeConfig = serve.Config
)

// DefaultServeConfig returns the daemon defaults (8192-request window,
// 64-deep work queue, 30 s staleness retrain, p < 0.001 drift trigger).
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// NewServer builds a ModelServer from cfg; zero-valued fields take the
// DefaultServeConfig values. Callers must Close it (or drive it through
// Serve/ListenAndServe, which close on context cancellation).
func NewServer(cfg ServeConfig) (*ModelServer, error) { return serve.New(cfg) }
