// Package dcmodel is a datacenter workload modeling toolkit: a from-scratch
// Go implementation of the modeling ecosystem cross-examined in
// "Cross-Examination of Datacenter Workload Modeling Techniques"
// (Delimitrou & Kozyrakis, ICDCS 2011 workshops).
//
// The toolkit provides:
//
//   - A GFS-like application simulator (SimulateGFS) that generates
//     ground-truth workload traces with the paper's Figure 1 request
//     structure: network -> CPU -> memory -> storage -> CPU -> network.
//   - Three trainable workload models: the in-breadth approach (four
//     independent per-subsystem models), the in-depth approach (a
//     request-flow queueing model), and KOOZA, the paper's combined
//     approach (per-subsystem Markov models + a network queueing model +
//     a time-dependency queue).
//   - A replay engine that executes original or synthetic workloads on a
//     simulated server platform and measures latency.
//   - A cross-examination harness regenerating the paper's Table 1, and a
//     validation pipeline regenerating Table 2.
//
// Quick start:
//
//	tr, _ := dcmodel.Simulate(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
//		RunConfig: dcmodel.RunConfig{Mix: dcmodel.Table2Mix(), Requests: 4000, Seed: 1},
//		Rate:      20,
//	})
//	model, _ := dcmodel.Train(tr, dcmodel.Kooza)
//	synth, _ := model.Synthesize(4000, rand.New(rand.NewSource(2)))
//	timed, _ := dcmodel.Replay(synth, dcmodel.DefaultPlatform())
//
// To study the workload under failures, arm a fault scenario on the run:
//
//	run.Faults = &dcmodel.FaultConfig{MTBF: 3600, MTTR: 120, Seed: 7}
//
// and the simulator injects chunkserver/rack outages, with per-request
// retry and failover annotations in the resulting trace.
package dcmodel

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/crossexam"
	"dcmodel/internal/fault"
	"dcmodel/internal/gfs"
	"dcmodel/internal/hw"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/par"
	"dcmodel/internal/prand"
	"dcmodel/internal/replay"
	"dcmodel/internal/serve"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// Trace schema re-exports.
type (
	// Trace is an ordered collection of traced requests.
	Trace = trace.Trace
	// Request is one traced user request.
	Request = trace.Request
	// Span is one per-subsystem phase of a request.
	Span = trace.Span
	// Subsystem identifies a system part (network, cpu, memory, storage).
	Subsystem = trace.Subsystem
	// Op is a read/write operation type.
	Op = trace.Op
)

// Subsystem and operation constants.
const (
	Network = trace.Network
	CPU     = trace.CPU
	Memory  = trace.Memory
	Storage = trace.Storage

	OpNone  = trace.OpNone
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Model re-exports.
type (
	// KoozaModel is the paper's combined model.
	KoozaModel = kooza.Model
	// KoozaOptions configures KOOZA training.
	KoozaOptions = kooza.Options
	// InBreadthModel is the per-subsystem baseline.
	InBreadthModel = inbreadth.Model
	// InBreadthOptions configures in-breadth training.
	InBreadthOptions = inbreadth.Options
	// InDepthModel is the request-flow baseline.
	InDepthModel = indepth.Model
)

// Workload re-exports.
type (
	// Mix is a weighted set of request classes.
	Mix = workload.Mix
	// ClassSpec describes one request class.
	ClassSpec = workload.ClassSpec
	// Arrivals generates request arrival instants.
	Arrivals = workload.Arrivals
)

// Hardware and platform re-exports.
type (
	// Server bundles one machine's subsystem hardware models.
	Server = hw.Server
	// Platform describes the replay hardware.
	Platform = replay.Platform
)

// GFS simulator re-exports.
type (
	// GFSConfig describes the simulated GFS cluster.
	GFSConfig = gfs.Config
	// GFSCluster is a constructed cluster (advanced use).
	GFSCluster = gfs.Cluster
)

// Cross-examination re-exports.
type (
	// Scores is the measured Table 1 scorecard of one approach.
	Scores = crossexam.Scores
)

// Fault-injection re-exports.
type (
	// FaultConfig describes a deterministic failure/repair scenario:
	// per-chunkserver MTBF/MTTR, optional correlated rack failures, and
	// the client-side timeout/backoff recovery parameters. Arm it via
	// RunConfig.Faults or Platform.Faults.
	FaultConfig = fault.Config
	// FaultSchedule is a realized, seed-stable failure history (advanced
	// use: inspecting or pre-computing outage intervals).
	FaultSchedule = fault.Schedule
)

// NewFaultSchedule realizes cfg into the deterministic failure history for
// servers chunkservers on SplitMix64 sub-stream stream. The simulator and
// replay engine construct their own schedules internally; this constructor
// is for tools that want to inspect the same timelines.
func NewFaultSchedule(cfg FaultConfig, servers int, stream uint64) (*FaultSchedule, error) {
	return fault.NewSchedule(cfg, servers, stream)
}

// Table2Mix returns the paper's two validation request classes (64 KB
// read, 4 MB write).
func Table2Mix() *Mix { return workload.Table2Mix() }

// WebMix returns a heavy-tailed read/write object mix.
func WebMix() *Mix { return workload.WebMix() }

// DefaultGFSConfig returns the single-chunkserver cluster configuration of
// the paper's preliminary experiments.
func DefaultGFSConfig() GFSConfig { return gfs.DefaultConfig() }

// DefaultPlatform returns the replay platform matching the default GFS
// chunkserver hardware.
func DefaultPlatform() Platform {
	return Platform{NewServer: gfs.DefaultServerHW}
}

// RunConfig holds the knobs every simulation run shares — open or closed
// loop. GFSRun and GFSClosedRun embed it, so the common fields read and
// write identically on both.
type RunConfig struct {
	// Mix is the request-class mix (required).
	Mix *Mix
	// Requests is the number of requests to simulate (required). In
	// sharded mode this is the total across all shards.
	Requests int
	// Seed makes the run reproducible: it drives the workload rand
	// stream. An armed fault scenario has its own Seed, kept separate so
	// the same workload can be rerun under different failure histories.
	Seed int64
	// Shards, when > 1, partitions the client population into that many
	// independent cluster partitions, each with its own SplitMix64-derived
	// rand stream (see gfs.SimulateSharded). The merged trace depends only
	// on (cfg, run, Shards, Seed) — never on Workers.
	Shards int
	// Workers bounds how many shards simulate concurrently: 0 selects
	// runtime.GOMAXPROCS(0), 1 is the serial fallback. Only consulted
	// when Shards > 1.
	Workers int
	// Faults, when non-nil, arms a deterministic failure/repair scenario:
	// chunkservers (and optionally whole racks) go down and come back per
	// the scenario's MTBF/MTTR, and clients recover by timeout, backoff
	// and replica failover. The trace's Retries/FailedOver annotations
	// record the recovery work. Nil reproduces the fault-free simulation
	// byte for byte.
	Faults *FaultConfig
}

// GFSRun drives an open-loop GFS simulation: requests arrive per Rate (or
// the explicit Arrivals process) regardless of completions.
type GFSRun struct {
	RunConfig
	// Rate is the Poisson arrival rate in requests/second; ignored when
	// Arrivals is set.
	Rate float64
	// Arrivals optionally overrides the arrival process.
	Arrivals Arrivals
}

// Simulate builds a cluster from cfg, runs the open-loop workload and
// returns the resulting trace. run.Seed makes the run reproducible: with
// Shards <= 1 the run is the classic single-threaded simulation; with
// Shards > 1 the sharded engine partitions clients across cluster
// partitions and the output is byte-identical for any Workers value —
// with or without run.Faults armed.
func Simulate(cfg GFSConfig, run GFSRun) (*Trace, error) {
	arrivals := run.Arrivals
	if arrivals == nil {
		if run.Rate <= 0 {
			return nil, fmt.Errorf("dcmodel: run needs a positive Rate or an Arrivals process: %w", ErrBadConfig)
		}
		arrivals = workload.Poisson{Rate: run.Rate}
	}
	rc := gfs.RunConfig{
		Mix:      run.Mix,
		Arrivals: arrivals,
		Requests: run.Requests,
		Faults:   run.Faults,
	}
	if run.Shards > 1 {
		return gfs.SimulateSharded(cfg, rc, run.Shards, run.Workers, run.Seed)
	}
	cluster, err := gfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return cluster.Run(rc, rand.New(rand.NewSource(run.Seed)))
}

// GFSClosedRun drives a closed-loop (interactive) GFS simulation: Users
// concurrent users issue a request, wait for it, think, and reissue.
type GFSClosedRun struct {
	RunConfig
	// Users is the closed population size (total across shards).
	Users int
	// MeanThink is the mean exponential think time (seconds).
	MeanThink float64
}

// SimulateClosed builds a cluster from cfg and runs a closed-loop
// workload — the interactive-population shape of closed queueing analyses.
// With Shards > 1 the users are partitioned across independent cluster
// partitions and the merged trace is byte-identical for any Workers value,
// with or without run.Faults armed.
func SimulateClosed(cfg GFSConfig, run GFSClosedRun) (*Trace, error) {
	rc := gfs.ClosedRunConfig{
		Mix:       run.Mix,
		Users:     run.Users,
		MeanThink: run.MeanThink,
		Requests:  run.Requests,
		Faults:    run.Faults,
	}
	if run.Shards > 1 {
		return gfs.SimulateShardedClosed(cfg, rc, run.Shards, run.Workers, run.Seed)
	}
	cluster, err := gfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return cluster.RunClosed(rc, rand.New(rand.NewSource(run.Seed)))
}

// Replay executes a workload on the platform and returns the re-timed
// trace.
func Replay(tr *Trace, p Platform) (*Trace, error) {
	return replay.Run(tr, p)
}

// CrossExamOptions configures a cross-examination run.
type CrossExamOptions struct {
	// Requests is how many synthetic requests each approach synthesizes
	// and replays (required).
	Requests int
	// Seed makes the run reproducible; each approach chain gets its own
	// SplitMix64-derived rand stream.
	Seed int64
	// Workers bounds how many approach chains (train → synthesize →
	// replay → score) run concurrently: 0 selects runtime.GOMAXPROCS(0),
	// 1 is the serial fallback. Every scorecard field except the
	// wall-clock Scalability throughput is independent of Workers.
	Workers int
	// SkipThroughput zeroes the wall-clock Scalability measurement so the
	// returned Scores are bit-identical across runs and worker counts.
	SkipThroughput bool
}

// CrossExamine scores the three standard approaches (trained on tr) on the
// Table 1 criteria, replaying each approach's synthetic workload on p.
// Each approach's whole chain — training included — runs as one task of
// the worker pool.
func CrossExamine(tr *Trace, p Platform, opts CrossExamOptions) ([]Scores, error) {
	if opts.Requests <= 0 {
		return nil, fmt.Errorf("dcmodel: cross-examination needs a positive Requests count: %w", ErrBadConfig)
	}
	approaches := make([]crossexam.Approach, 0, 3)
	for _, a := range []Approach{InBreadth, InDepth, Kooza} {
		approaches = append(approaches, crossexamApproach(tr, a, p))
	}
	return crossexam.Evaluate(tr, approaches, opts.Requests, p, crossexam.Options{
		Seed:           opts.Seed,
		Workers:        opts.Workers,
		SkipThroughput: opts.SkipThroughput,
	})
}

// crossexamApproach wraps one modeling approach — trained through the same
// Train facade users call — as a cross-examination entrant. Knobs counts
// the user-tunable training knobs of each approach (the paper's
// "flexibility" axis); the in-depth model times its own arrivals. Setup
// also lowers the trained model to its analytical twin on the same
// platform, so the scorecard carries the twin-vs-simulation deviation
// column next to the simulated fidelity proxies.
func crossexamApproach(tr *Trace, a Approach, p Platform) crossexam.Approach {
	knobs := map[Approach]int{InBreadth: 3, InDepth: 1, Kooza: 5}[a]
	return crossexam.Approach{
		Name:      a.String(),
		Knobs:     knobs,
		SelfTimed: a == InDepth,
		Setup: func(ca *crossexam.Approach) error {
			m, err := Train(tr, a)
			if err != nil {
				return fmt.Errorf("dcmodel: %s: %w", a, err)
			}
			// Cross-examination synthesizes whole traces, so it rides the
			// batch path (byte-identical to scalar at the same seed).
			ca.Synthesize, ca.NumParams = m.SynthesizeBatch, m.NumParams()
			tw, err := BuildTwin(m, p)
			if err != nil {
				return fmt.Errorf("dcmodel: %s twin: %w", a, err)
			}
			ca.Twin = tw
			return nil
		},
	}
}

// SynthesizeSharded fans one model's synthesis across shards: shard s
// generates its share of the n requests with the rand stream
// prand.Derive(seed, s), and the shard streams are stitched end-to-end on
// the time axis (each shard's timeline is offset by the end of the
// previous shard's, plus one mean interarrival gap). The result depends
// only on (n, shards, seed) — workers merely bounds concurrency — at the
// cost of resetting the model's Markov-walk state at the shards-1 stitch
// boundaries. synthesize must be safe for concurrent use with distinct
// *rand.Rand instances, which all trained models in this module are.
func SynthesizeSharded(synthesize func(n int, r *rand.Rand) (*Trace, error), n, shards, workers int, seed int64) (*Trace, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dcmodel: need >= 1 shard, got %d", shards)
	}
	if n < shards {
		return nil, fmt.Errorf("dcmodel: %d requests cannot cover %d shards", n, shards)
	}
	quota := make([]int, shards)
	base, extra := n/shards, n%shards
	for s := range quota {
		quota[s] = base
		if s < extra {
			quota[s]++
		}
	}
	parts := make([]*Trace, shards)
	err := par.Do(shards, workers, func(s int) error {
		tr, err := synthesize(quota[s], prand.New(seed, uint64(s)))
		if err != nil {
			return fmt.Errorf("dcmodel: shard %d: %w", s, err)
		}
		if tr.Len() != quota[s] {
			return fmt.Errorf("dcmodel: shard %d synthesized %d requests, want %d", s, tr.Len(), quota[s])
		}
		parts[s] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := &Trace{Requests: make([]Request, 0, n)}
	var offset float64
	for _, part := range parts {
		var end float64
		for _, req := range part.Requests {
			req.Arrival += offset
			for i := range req.Spans {
				req.Spans[i].Start += offset
				if e := req.Spans[i].Start + req.Spans[i].Duration; e > end {
					end = e
				}
			}
			if req.Arrival > end {
				end = req.Arrival
			}
			req.ID = int64(len(merged.Requests))
			merged.Requests = append(merged.Requests, req)
		}
		// Advance by the shard's span plus one mean gap so streams do not
		// overlap at the stitch point.
		span := end - offset
		offset = end + span/float64(part.Len())
	}
	sort.SliceStable(merged.Requests, func(i, j int) bool {
		return merged.Requests[i].Arrival < merged.Requests[j].Arrival
	})
	for i := range merged.Requests {
		merged.Requests[i].ID = int64(i)
	}
	return merged, nil
}

// RenderScores renders the Table 1 regeneration (qualitative matrix plus
// the measured scorecard).
func RenderScores(scores []Scores) string { return crossexam.Render(scores) }

// RenderScoresComparison renders the fault-regime cross-examination: the
// healthy baseline scorecard next to a degraded regime's, one delta per
// measured criterion (see CrossExamine with a Platform whose Faults field
// is armed, and Simulate with RunConfig.Faults).
func RenderScoresComparison(healthy, degraded []Scores) string {
	return crossexam.RenderComparison(healthy, degraded)
}

// Model-serving daemon re-exports (cmd/dcmodeld is a thin wrapper over
// these; embedders can run the same server in-process).
type (
	// ModelServer is the long-running serving engine behind dcmodeld: a
	// sliding ingest window, online-trained warm models with chi-square
	// drift detection, and a bounded work queue with backpressure.
	ModelServer = serve.Server
	// ServeConfig tunes a ModelServer.
	ServeConfig = serve.Config
)

// DefaultServeConfig returns the daemon defaults (8192-request window,
// 64-deep work queue, 30 s staleness retrain, p < 0.001 drift trigger).
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// NewServer builds a ModelServer from cfg; zero-valued fields take the
// DefaultServeConfig values. Callers must Close it (or drive it through
// Serve/ListenAndServe, which close on context cancellation).
func NewServer(cfg ServeConfig) (*ModelServer, error) { return serve.New(cfg) }
