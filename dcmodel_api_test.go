package dcmodel

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestTrainFacadeAllApproaches: the unified Train entry point produces a
// working Model for each approach, and the interface surface (Approach,
// Synthesize, Characterize, NumParams) is coherent.
func TestTrainFacadeAllApproaches(t *testing.T) {
	tr := simulate(t, 1500, 20, 61)
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		m, err := Train(tr, a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if m.Approach() != a {
			t.Errorf("%s: Approach() = %s", a, m.Approach())
		}
		if m.NumParams() <= 0 {
			t.Errorf("%s: NumParams() = %d", a, m.NumParams())
		}
		if !strings.Contains(m.Characterize(), "model") {
			t.Errorf("%s: Characterize() = %q", a, m.Characterize())
		}
		synth, err := m.Synthesize(300, rand.New(rand.NewSource(62)))
		if err != nil {
			t.Fatalf("%s: synthesize: %v", a, err)
		}
		if synth.Len() != 300 {
			t.Errorf("%s: synthesized %d requests", a, synth.Len())
		}
	}
}

// TestModelSaveLoadRoundTrip: Model.Save + LoadModel is behaviorally
// lossless for every approach — the loaded model synthesizes the identical
// trace for the same seed.
func TestModelSaveLoadRoundTrip(t *testing.T) {
	tr := simulate(t, 1500, 20, 63)
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		m, err := Train(tr, a)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", a, err)
		}
		loaded, err := LoadModel(&buf, a)
		if err != nil {
			t.Fatalf("%s: load: %v", a, err)
		}
		if loaded.Approach() != a {
			t.Errorf("%s: loaded Approach() = %s", a, loaded.Approach())
		}
		want, err := m.Synthesize(250, rand.New(rand.NewSource(64)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Synthesize(250, rand.New(rand.NewSource(64)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: loaded model synthesizes differently", a)
		}
	}
}

// TestTrainOptionsReachTrainers: shared options change the trained model
// for the approaches that consume them.
func TestTrainOptionsReachTrainers(t *testing.T) {
	tr := simulate(t, 1500, 20, 65)
	narrow, err := Train(tr, Kooza, WithStorageRegions(8))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Train(tr, Kooza, WithStorageRegions(64))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.NumParams() >= wide.NumParams() {
		t.Errorf("8-region model has %d params, 64-region has %d — knob not applied",
			narrow.NumParams(), wide.NumParams())
	}
	// The full-struct override wins over earlier shared options.
	hier, err := Train(tr, Kooza, WithStorageRegions(64),
		WithKoozaOptions(KoozaOptions{Hierarchical: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hier.Characterize(), "hierarchical") {
		t.Error("WithKoozaOptions override did not reach the trainer")
	}
}

// TestDeprecatedWrappersStillWork: the pre-redesign entry points keep
// their exact behavior (same seed, same output as the new spellings).
func TestDeprecatedWrappersStillWork(t *testing.T) {
	run := GFSRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 300},
		Rate:      20,
	}
	oldTr, err := SimulateGFS(DefaultGFSConfig(), run, 66)
	if err != nil {
		t.Fatal(err)
	}
	run.Seed = 66
	newTr, err := Simulate(DefaultGFSConfig(), run)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldTr, newTr) {
		t.Error("SimulateGFS(run, seed) != Simulate(run{Seed})")
	}

	crun := GFSClosedRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 200},
		Users:     4, MeanThink: 0.02,
	}
	oldC, err := SimulateGFSClosed(DefaultGFSConfig(), crun, 67)
	if err != nil {
		t.Fatal(err)
	}
	crun.Seed = 67
	newC, err := SimulateClosed(DefaultGFSConfig(), crun)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldC, newC) {
		t.Error("SimulateGFSClosed(run, seed) != SimulateClosed(run{Seed})")
	}

	if _, err := TrainKooza(oldTr, KoozaOptions{}); err != nil {
		t.Error(err)
	}
	if _, err := TrainInBreadth(oldTr, InBreadthOptions{}); err != nil {
		t.Error(err)
	}
	if _, err := TrainInDepth(oldTr); err != nil {
		t.Error(err)
	}
}

// TestCrossExamineOptsWrapperMatches: the deprecated positional spelling
// and the options-struct spelling agree bit for bit (throughput skipped so
// the scorecards are deterministic).
func TestCrossExamineOptsWrapperMatches(t *testing.T) {
	tr := simulate(t, 1200, 20, 68)
	oldScores, err := CrossExamineOpts(tr, 400, DefaultPlatform(), 69,
		CrossExamOptions{SkipThroughput: true})
	if err != nil {
		t.Fatal(err)
	}
	newScores, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{
		Requests: 400, Seed: 69, SkipThroughput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldScores, newScores) {
		t.Error("CrossExamineOpts and CrossExamine disagree")
	}
}

func TestParseApproach(t *testing.T) {
	cases := map[string]Approach{
		"kooza": Kooza, "KOOZA": Kooza,
		"in-breadth": InBreadth, "inbreadth": InBreadth, "In-Breadth": InBreadth,
		"in-depth": InDepth, "indepth": InDepth,
	}
	for s, want := range cases {
		got, err := ParseApproach(s)
		if err != nil || got != want {
			t.Errorf("ParseApproach(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseApproach("markov"); err == nil {
		t.Error("unknown approach accepted")
	}
	for _, a := range []Approach{Kooza, InBreadth, InDepth} {
		back, err := ParseApproach(a.String())
		if err != nil || back != a {
			t.Errorf("String/Parse round trip broken for %v", a)
		}
	}
}

// TestSentinelErrors: the facade's error values flow out of real failures
// and are matchable with errors.Is.
func TestSentinelErrors(t *testing.T) {
	if _, err := Train(&Trace{}, Kooza); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("training on empty trace: got %v, want ErrEmptyTrace", err)
	}
	if _, err := Train(nil, Approach(99)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown approach: got %v, want ErrBadConfig", err)
	}
	var buf bytes.Buffer
	if err := (koozaTrained{&KoozaModel{}}).Save(&buf); !errors.Is(err, ErrModelNotTrained) {
		t.Errorf("saving untrained model: got %v, want ErrModelNotTrained", err)
	}
	if _, err := CrossExamine(&Trace{}, DefaultPlatform(), CrossExamOptions{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("cross-exam without Requests: got %v, want ErrBadConfig", err)
	}
	run := GFSRun{RunConfig: RunConfig{Mix: Table2Mix(), Requests: 10}}
	if _, err := Simulate(DefaultGFSConfig(), run); !errors.Is(err, ErrBadConfig) {
		t.Errorf("simulate without rate: got %v, want ErrBadConfig", err)
	}
}

// TestSimulateWithFaultsFacade: arming RunConfig.Faults through the facade
// yields an annotated trace, deterministically, and stays worker-count
// independent in sharded mode.
func TestSimulateWithFaultsFacade(t *testing.T) {
	cfg := DefaultGFSConfig()
	cfg.Chunkservers = 4
	cfg.Replication = 3
	run := GFSRun{
		RunConfig: RunConfig{
			Mix:      Table2Mix(),
			Requests: 600,
			Seed:     70,
			Faults:   &FaultConfig{MTBF: 2, MTTR: 0.5, Seed: 7},
		},
		Rate: 40,
	}
	tr, err := Simulate(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	annotated := 0
	for _, r := range tr.Requests {
		if r.Retries > 0 {
			annotated++
		}
	}
	if annotated == 0 {
		t.Fatal("no retry annotations under MTBF 2s / MTTR 0.5s")
	}

	run.Shards, run.Workers = 4, 1
	serial, err := Simulate(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	run.Workers = 8
	parallel, err := Simulate(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("faulty sharded facade run depends on worker count")
	}

	if _, err := NewFaultSchedule(FaultConfig{MTBF: -1, MTTR: 1}, 2, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewFaultSchedule accepted a negative MTBF: %v", err)
	}
	sched, err := NewFaultSchedule(*run.Faults, cfg.Chunkservers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Servers() != cfg.Chunkservers {
		t.Errorf("schedule covers %d servers, want %d", sched.Servers(), cfg.Chunkservers)
	}
}
