package dcmodel

import (
	"reflect"
	"testing"
)

// Top-level determinism regression tests: the parallel engines must produce
// output that depends only on (config, shards, seed) — never on the worker
// count or goroutine scheduling. Workers=1 is the serial reference.

func TestShardedSimulateGFSDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Trace {
		tr, err := Simulate(DefaultGFSConfig(), GFSRun{
			RunConfig: RunConfig{Mix: Table2Mix(), Requests: 800,
				Seed: 21, Shards: 8, Workers: workers},
			Rate: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sharded open-loop trace differs between Workers=1 and Workers=8")
	}
	if serial.Len() != 800 {
		t.Fatalf("requests = %d", serial.Len())
	}
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSimulateGFSClosedDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Trace {
		tr, err := SimulateClosed(DefaultGFSConfig(), GFSClosedRun{
			RunConfig: RunConfig{Mix: Table2Mix(), Requests: 600,
				Seed: 22, Shards: 4, Workers: workers},
			Users:     8,
			MeanThink: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sharded closed-loop trace differs between Workers=1 and Workers=8")
	}
	if serial.Len() != 600 {
		t.Fatalf("requests = %d", serial.Len())
	}
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossExamineDeterministicAcrossWorkers(t *testing.T) {
	tr := simulate(t, 1200, 20, 23)
	run := func(workers int) []Scores {
		scores, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{
			Requests:       600,
			Seed:           24,
			Workers:        workers,
			SkipThroughput: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return scores
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != 3 || len(parallel) != 3 {
		t.Fatalf("scores = %d vs %d, want 3", len(serial), len(parallel))
	}
	for i := range serial {
		// Scores is all comparable scalars: demand bit-identity, not just
		// approximate agreement.
		if serial[i] != parallel[i] {
			t.Errorf("approach %s: Scores differ between Workers=1 and Workers=8:\nserial:   %+v\nparallel: %+v",
				serial[i].Name, serial[i], parallel[i])
		}
	}
}

// TestSameSeedEndToEnd runs the whole pipeline twice with the same seeds —
// sharded simulation, training and synthesis for all three approaches —
// and demands identical output. This is the audit that no stage draws from
// a global or time-seeded rand source.
func TestSameSeedEndToEnd(t *testing.T) {
	type result struct {
		trace      *Trace
		ib, id, kz *Trace
	}
	run := func() result {
		tr, err := Simulate(DefaultGFSConfig(), GFSRun{
			RunConfig: RunConfig{Mix: Table2Mix(), Requests: 1000,
				Seed: 25, Shards: 4, Workers: 0},
			Rate: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		ibm, err := TrainInBreadth(tr, InBreadthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		idm, err := TrainInDepth(tr)
		if err != nil {
			t.Fatal(err)
		}
		kzm, err := TrainKooza(tr, KoozaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var res result
		res.trace = tr
		if res.ib, err = SynthesizeSharded(ibm.Synthesize, 400, 4, 0, 26); err != nil {
			t.Fatal(err)
		}
		if res.id, err = SynthesizeSharded(idm.Synthesize, 400, 4, 0, 27); err != nil {
			t.Fatal(err)
		}
		if res.kz, err = SynthesizeSharded(kzm.Synthesize, 400, 4, 0, 28); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Error("same-seed sharded simulation traces differ")
	}
	if !reflect.DeepEqual(a.ib, b.ib) {
		t.Error("same-seed in-breadth synthesis differs")
	}
	if !reflect.DeepEqual(a.id, b.id) {
		t.Error("same-seed in-depth synthesis differs")
	}
	if !reflect.DeepEqual(a.kz, b.kz) {
		t.Error("same-seed KOOZA synthesis differs")
	}
}

func TestSynthesizeShardedInvariants(t *testing.T) {
	tr := simulate(t, 1000, 20, 29)
	m, err := TrainKooza(tr, KoozaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SynthesizeSharded(m.Synthesize, 500, 5, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SynthesizeSharded(m.Synthesize, 500, 5, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sharded synthesis differs between Workers=1 and Workers=8")
	}
	if serial.Len() != 500 {
		t.Fatalf("requests = %d", serial.Len())
	}
	for i := 1; i < serial.Len(); i++ {
		if serial.Requests[i].Arrival < serial.Requests[i-1].Arrival {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	for i, r := range serial.Requests {
		if r.ID != int64(i) {
			t.Fatalf("request %d has ID %d, want dense IDs", i, r.ID)
		}
	}
	if _, err := SynthesizeSharded(m.Synthesize, 500, 0, 1, 30); err == nil {
		t.Error("zero shards should fail")
	}
	if _, err := SynthesizeSharded(m.Synthesize, 3, 5, 1, 30); err == nil {
		t.Error("fewer requests than shards should fail")
	}
}
