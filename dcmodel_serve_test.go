package dcmodel

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServerFacade smoke-tests the embeddable daemon through the public
// API: build a server, ingest a simulated trace programmatically, and
// query it over HTTP exactly as cmd/dcmodeld clients would.
func TestServerFacade(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.PollInterval = time.Hour
	cfg.RetrainInterval = time.Hour
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr, err := Simulate(DefaultGFSConfig(), GFSRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 200, Seed: 1},
		Rate:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	retrained, reason, err := s.Ingest(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !retrained || reason == "" {
		t.Fatalf("ingest: retrained=%v reason=%q, want a cold retrain", retrained, reason)
	}
	kz, ib, id, trainedOn := s.Models()
	if kz == nil || ib == nil || id == nil || trainedOn != 200 {
		t.Fatalf("Models() = (%v,%v,%v,%d), want three warm models trained on 200", kz, ib, id, trainedOn)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/synthesize?n=50&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status = %d: %s", resp.StatusCode, body)
	}
	synth, err := ReadTraceCSV(bytes.NewReader(body))
	if err != nil || synth.Len() != 50 {
		t.Fatalf("synthesize body: err=%v len=%d, want 50", err, synth.Len())
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Warm bool `json:"warm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hz.Warm {
		t.Fatal("healthz reports a cold daemon after ingest")
	}
}
