package dcmodel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dcmodel/internal/core"
)

// End-to-end integration tests of the public API: the full pipelines the
// paper's evaluation runs, with Table 2-style bounded-deviation assertions.

func simulate(t *testing.T, n int, rate float64, seed int64) *Trace {
	t.Helper()
	tr, err := Simulate(DefaultGFSConfig(), GFSRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: n, Seed: seed},
		Rate:      rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimulateGFSValidTrace(t *testing.T) {
	tr := simulate(t, 1000, 20, 1)
	if tr.Len() != 1000 {
		t.Fatalf("trace has %d requests", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Classes()) != 2 {
		t.Fatalf("classes = %v", tr.Classes())
	}
}

func TestSimulateGFSErrors(t *testing.T) {
	if _, err := Simulate(DefaultGFSConfig(), GFSRun{RunConfig: RunConfig{Mix: Table2Mix(), Requests: 10, Seed: 1}}); err == nil {
		t.Error("missing rate should fail")
	}
	bad := DefaultGFSConfig()
	bad.Chunkservers = 0
	if _, err := Simulate(bad, GFSRun{RunConfig: RunConfig{Mix: Table2Mix(), Requests: 10, Seed: 1}, Rate: 1}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestValidatePipelineMatchesTable2Bounds(t *testing.T) {
	// The headline reproduction: synthetic features within ~1%, latency
	// within single-digit percent (the paper reports <= 1% and <= 6.6%).
	tr := simulate(t, 4000, 20, 2)
	res, err := Validate(tr, 4000, DefaultPlatform(), KoozaOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Sizes are deterministic per class: deviation ~0. Utilization is
		// stochastic: allow a slightly wider margin than the paper's 1%.
		if d := row.FeatureDeviation(); d > 0.10 {
			t.Errorf("class %s feature deviation %.1f%%, want small", row.Class, 100*d)
		}
		if d := row.LatencyDeviation(); d > 0.10 {
			t.Errorf("class %s latency deviation %.1f%%, want <= 10%%", row.Class, 100*d)
		}
		if row.MemOpOrig != row.MemOpSynth || row.StorOpOrig != row.StorOpSynth {
			t.Errorf("class %s operation types differ", row.Class)
		}
	}
	out := res.Render()
	for _, want := range []string{"Table 2", "original", "synthetic", "variation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if res.Model == nil || !strings.Contains(res.Model.Describe(), "KOOZA") {
		t.Error("validation should expose the trained model")
	}
}

func TestSimulateGFSClosedFacade(t *testing.T) {
	tr, err := SimulateClosed(DefaultGFSConfig(), GFSClosedRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 500, Seed: 12},
		Users:     4, MeanThink: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("requests = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateClosed(DefaultGFSConfig(), GFSClosedRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 10, Seed: 12},
	}); err == nil {
		t.Error("zero users should fail")
	}
	bad := DefaultGFSConfig()
	bad.Files = 0
	if _, err := SimulateClosed(bad, GFSClosedRun{
		RunConfig: RunConfig{Mix: Table2Mix(), Requests: 10, Seed: 12},
		Users:     1,
	}); err == nil {
		t.Error("bad config should fail")
	}
}

func TestCrossExaminePipeline(t *testing.T) {
	tr := simulate(t, 2000, 20, 4)
	scores, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{Requests: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	var kz, ib, id Scores
	for _, s := range scores {
		switch s.Name {
		case "KOOZA":
			kz = s
		case "in-breadth":
			ib = s
		case "in-depth":
			id = s
		}
	}
	if kz.Completeness <= ib.Completeness || kz.Completeness <= id.Completeness {
		t.Errorf("KOOZA completeness %g should dominate ib %g and id %g",
			kz.Completeness, ib.Completeness, id.Completeness)
	}
	out := RenderScores(scores)
	if !strings.Contains(out, "KOOZA") || !strings.Contains(out, "Table 1") {
		t.Error("rendered scorecard incomplete")
	}
}

func TestTrainAllApproaches(t *testing.T) {
	tr := simulate(t, 1500, 20, 6)
	if _, err := TrainKooza(tr, KoozaOptions{}); err != nil {
		t.Error(err)
	}
	if _, err := TrainInBreadth(tr, InBreadthOptions{}); err != nil {
		t.Error(err)
	}
	if _, err := TrainInDepth(tr); err != nil {
		t.Error(err)
	}
}

func TestCorePackageAliasesKooza(t *testing.T) {
	tr := simulate(t, 800, 20, 7)
	m, err := core.Train(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var km *KoozaModel = m // the alias must be the same type
	if km.TrainedOn != 800 {
		t.Errorf("core model TrainedOn = %d", km.TrainedOn)
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	tr := simulate(t, 200, 20, 8)
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteTraceCSV(&csvBuf, tr); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadTraceCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV.Len() != tr.Len() {
		t.Error("csv round trip lost requests")
	}
	if err := WriteTraceJSON(&jsonBuf, tr); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadTraceJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Len() != tr.Len() {
		t.Error("json round trip lost requests")
	}
}

func TestReplayFacade(t *testing.T) {
	tr := simulate(t, 300, 20, 9)
	re, err := Replay(tr, DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tr.Len() {
		t.Error("replay lost requests")
	}
}

func TestSynthesizeViaFacadeDeterministic(t *testing.T) {
	tr := simulate(t, 1000, 20, 10)
	m, err := TrainKooza(tr, KoozaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Synthesize(100, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Synthesize(100, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i].Arrival != b.Requests[i].Arrival {
			t.Fatal("same seed should reproduce synthesis")
		}
	}
}
