package dcmodel

// This file collects every deprecated facade wrapper in one place. Each
// wrapper is a thin, behavior-identical shim over its replacement and will
// be removed in a future major revision. Migration table:
//
//	Deprecated                  Replacement
//	--------------------------  ----------------------------------------------
//	SimulateGFS(cfg, run, s)    Simulate(cfg, run) with run.Seed = s
//	SimulateGFSClosed(c, r, s)  SimulateClosed(c, r) with r.Seed = s
//	TrainKooza(tr, opts)        Train(tr, Kooza, WithKoozaOptions(opts))
//	TrainInBreadth(tr, opts)    Train(tr, InBreadth, WithInBreadthOptions(opts))
//	TrainInDepth(tr)            Train(tr, InDepth)
//	CrossExamineOpts(...)       CrossExamine(tr, p, CrossExamOptions{...})
//	TraceRequests(tr, n)        RecordRequests(tr, n, rec) with a TraceRecorder
//	WhatIf(m, p, q)             BuildTwin(m, p) then tw.WhatIf(q); for
//	                            sizing searches, Provision(ctx, req)
//
// The Train shims return the concrete model types (*KoozaModel, ...);
// Train returns the common Model interface. Callers that need
// approach-specific surface can keep the shims or type-assert Train's
// result.

import "dcmodel/internal/dapper"

// SimulateGFS is the pre-RunConfig spelling of Simulate.
//
// Deprecated: use Simulate and set run.Seed instead of passing seed
// positionally.
func SimulateGFS(cfg GFSConfig, run GFSRun, seed int64) (*Trace, error) {
	run.Seed = seed
	return Simulate(cfg, run)
}

// SimulateGFSClosed is the pre-RunConfig spelling of SimulateClosed.
//
// Deprecated: use SimulateClosed and set run.Seed instead of passing seed
// positionally.
func SimulateGFSClosed(cfg GFSConfig, run GFSClosedRun, seed int64) (*Trace, error) {
	run.Seed = seed
	return SimulateClosed(cfg, run)
}

// TrainKooza fits the paper's combined model to a trace and returns the
// concrete model type.
//
// Deprecated: use Train(tr, Kooza, ...) for the common Model interface;
// keep TrainKooza only when KOOZA-specific surface is needed.
func TrainKooza(tr *Trace, opts KoozaOptions) (*KoozaModel, error) {
	m, err := Train(tr, Kooza, WithKoozaOptions(opts))
	if err != nil {
		return nil, err
	}
	return m.(koozaTrained).Model, nil
}

// TrainInBreadth fits the per-subsystem baseline to a trace.
//
// Deprecated: use Train(tr, InBreadth, ...) for the common Model interface.
func TrainInBreadth(tr *Trace, opts InBreadthOptions) (*InBreadthModel, error) {
	m, err := Train(tr, InBreadth, WithInBreadthOptions(opts))
	if err != nil {
		return nil, err
	}
	return m.(inBreadthTrained).Model, nil
}

// TrainInDepth fits the request-flow baseline to a trace.
//
// Deprecated: use Train(tr, InDepth) for the common Model interface.
func TrainInDepth(tr *Trace) (*InDepthModel, error) {
	m, err := Train(tr, InDepth)
	if err != nil {
		return nil, err
	}
	return m.(inDepthTrained).Model, nil
}

// CrossExamineOpts is the pre-options-struct spelling of CrossExamine.
//
// Deprecated: use CrossExamine with CrossExamOptions{Requests: n, Seed:
// seed, ...}.
func CrossExamineOpts(tr *Trace, n int, p Platform, seed int64, opts CrossExamOptions) ([]Scores, error) {
	opts.Requests, opts.Seed = n, seed
	return CrossExamine(tr, p, opts)
}

// WhatIf is the one-shot convenience over BuildTwin: compile the model's
// twin on the platform and answer a single query.
//
// Deprecated: use BuildTwin once and reuse the twin for repeated queries;
// for provisioning searches use Provision, which drives the same twin
// through the optimizer with DES validation. Kept behavior-identical for
// existing callers.
func WhatIf(m Model, p Platform, q WhatIfQuery) (WhatIfAnswer, error) {
	tw, err := BuildTwin(m, p)
	if err != nil {
		return WhatIfAnswer{}, err
	}
	return tw.WhatIf(q)
}

// TraceRequests replays a workload through a 1-in-sampleEvery sampling
// tracer and returns it; call Trees on the result for the sampled trees.
//
// Deprecated: use RecordRequests with a TraceRecorder (e.g. a
// *TraceCollector) — the Recorder seam composes with rings, tees and
// samplers where the tracer-shaped return value cannot. Kept
// behavior-identical for existing callers.
func TraceRequests(tr *Trace, sampleEvery int) (*Tracer, error) {
	return dapper.TraceWorkload(tr, sampleEvery)
}
