package dcmodel

import (
	"dcmodel/internal/errs"
	"dcmodel/internal/queueing"
	"dcmodel/internal/trace"
)

// Sentinel errors, for errors.Is branching instead of message matching.
// Internal packages wrap these with %w-formatted context; the values here
// are the same ones they wrap, so errors.Is works across the facade.
var (
	// ErrBadConfig marks a cluster, fault-scenario, platform or server
	// configuration that fails validation before any work starts. CLI
	// tools translate it into a usage-style exit (exit code 2).
	ErrBadConfig = errs.ErrBadConfig

	// ErrEmptyTrace marks an operation — training, replay, serving ingest
	// — that needs a non-empty trace.
	ErrEmptyTrace = trace.ErrEmptyTrace

	// ErrNoFeasibleConfig marks a provisioning search (Provision, the
	// optimize strategies, /v1/provision) that exhausted its configuration
	// space without meeting the objective. The Plan returned alongside it
	// still carries the audit trail and best-effort evaluations.
	ErrNoFeasibleConfig = errs.ErrNoFeasibleConfig

	// ErrModelNotTrained marks an operation that needs a trained model
	// when none is available: saving an untrained model, or querying the
	// serving daemon before the first ingest has warmed a generation.
	// Servers translate it into 503 Service Unavailable.
	ErrModelNotTrained = errs.ErrModelNotTrained

	// ErrTwinUnsupported marks a Model implementation the analytical-twin
	// compiler does not know: BuildTwin handles the toolkit's three
	// approaches; foreign implementations get this.
	ErrTwinUnsupported = errs.ErrTwinUnsupported

	// ErrUnstable marks a queueing system whose offered load meets or
	// exceeds capacity (utilization >= 1), so no steady state exists.
	// Note the what-if path reports saturation in-band instead
	// (WhatIfAnswer.Stable == false); this sentinel surfaces from the
	// lower-level queueing solvers.
	ErrUnstable = queueing.ErrUnstable
)
