// Incast: the TCP/IP-incast-style many-to-one effect the paper says a
// multi-machine workload model must be able to replicate ("the model can
// replicate effects like the TCP/IP incast problem, or other events
// involving multiple machines servicing the same request").
//
// The request stream comes from the shipped "incast" scenario preset: its
// aggregator client paces fixed-size striped reads at a steady rate, so
// the study isolates the per-request fan-out effect. Each request fans
// out to k chunkservers, every server returns a block of the response,
// and all responses serialize through the client's single network link.
// As the stripe width k grows at a fixed total response size, per-server
// disk time shrinks but the synchronized burst at the client link grows —
// latency first improves (parallel disks) and then collapses into the
// link bottleneck, the incast signature.
//
// Run with: go run ./examples/incast
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dcmodel/internal/hw"
	"dcmodel/internal/prand"
	"dcmodel/internal/spec"
	"dcmodel/internal/stats"
)

// stripedRead simulates one striped request at time t and returns its
// completion time. Each of the k servers seeks and reads size/k bytes in
// parallel; the k responses then serialize through the client link (a
// shared resource with availability time tracked by linkFree).
func stripedRead(t float64, size int64, servers []*hw.Server, client *hw.Network, linkFree *float64, r *rand.Rand) float64 {
	k := len(servers)
	per := size / int64(k)
	// Parallel server phase: all servers start at t; the stripe is ready
	// when the slowest server finishes.
	ready := make([]float64, k)
	for i, s := range servers {
		lbn := r.Int63n(s.Disk.NumBlocks - 1024)
		ready[i] = t + s.Disk.Access(lbn, per)
	}
	// Synchronized responses serialize through the client link in arrival
	// order (the incast queue).
	order := append([]float64(nil), ready...)
	sortFloats(order)
	done := t
	for _, at := range order {
		start := at
		if *linkFree > start {
			start = *linkFree
		}
		*linkFree = start + client.TransferTime(per)
		done = *linkFree
	}
	return done - t
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func main() {
	log.SetFlags(0)
	const requests = 300

	// Draw the aggregator stream — arrival pacing and striped-read sizes —
	// from the shipped incast preset, scaled up to the study's 8 MiB
	// responses (the preset's shape; a bigger payload sharpens the knee).
	s, err := spec.Preset("incast")
	if err != nil {
		log.Fatal(err)
	}
	c, err := s.Compile(spec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var agg *spec.CompiledClient
	for i := range c.Clients {
		if c.Clients[i].Name == "aggregator" {
			agg = &c.Clients[i]
		}
	}
	if agg == nil {
		log.Fatal("incast preset lost its aggregator client")
	}
	const sizeScale = 32 // preset strips 256 KiB; study stripes 8 MiB
	r := prand.New(c.Seed, 0)
	times := agg.Arrivals.Times(requests, r)
	sizes := make([]int64, requests)
	for i := range sizes {
		class := agg.Mix.Classes[agg.Mix.Pick(r)]
		sizes[i] = int64(class.Size.Rand(r)) * sizeScale
	}

	client := &hw.Network{Latency: 100e-6, Bandwidth: 125e6} // 1 GbE client link

	fmt.Printf("Incast study: striped %d MiB reads from the incast preset, 1 GbE client link\n", sizes[0]>>20)
	fmt.Printf("%-8s | %-12s | %-12s | %-14s\n", "stripe", "mean ms", "p99 ms", "link-bound %")
	var prevMean float64
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		servers := make([]*hw.Server, k)
		for i := range servers {
			servers[i] = hw.DefaultServer()
			servers[i].Disk.TransferRate = 200e6
		}
		var linkFree float64
		lat := make([]float64, requests)
		rr := prand.New(c.Seed, uint64(k))
		// Stretch the preset's pacing 10x so requests stay isolated: the
		// study measures per-request fan-out, not queueing between requests.
		for i := 0; i < requests; i++ {
			lat[i] = stripedRead(times[i]*10, sizes[i], servers, client, &linkFree, rr)
		}
		mean := stats.Mean(lat)
		// Fraction of the latency explained by the serialized link alone.
		linkTime := float64(sizes[0])/client.Bandwidth + float64(k)*client.Latency
		fmt.Printf("%-8d | %12.2f | %12.2f | %13.0f%%\n",
			k, 1000*mean, 1000*stats.Quantile(lat, 0.99), 100*linkTime/mean)
		if k > 1 && mean > prevMean*3 {
			fmt.Println("          ^ incast collapse: synchronized responses overwhelm the client link")
		}
		prevMean = mean
	}
	fmt.Println("\nreading the table: small stripes are disk-bound (parallelism helps);")
	fmt.Println("wide stripes serialize at the client link and add per-server latency,")
	fmt.Println("so latency flattens at the link bound — the incast signature a")
	fmt.Println("multi-machine model with job/task identifiers can reproduce.")
}
