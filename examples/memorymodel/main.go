// Memorymodel: Moro et al.'s approach to memory characterization — treat
// the sequence of memory references (virtual page numbers) as a series of
// floating-point numbers and train an Ergodic Continuous Hidden Markov
// Model (ECHMM) on it, then use the model to categorize memory activity
// and generate synthetic traces.
//
// The experiment builds a phased reference stream (a working-set regime
// switcher: hot pages, a streaming scan, and a cold random region),
// fits (a) a Gaussian-emission HMM and (b) a quantized first-order Markov
// chain, and compares how well each reproduces the stream — Moro et al.'s
// claim is that the continuous HMM is "significantly more accurate in
// determining the memory behavior of a workload".
//
// Run with: go run ./examples/memorymodel
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dcmodel/internal/markov"
	"dcmodel/internal/stats"
)

// referenceStream emulates three memory regimes: a hot working set around
// page 1000, sequential scans through 50000-70000, and cold random access
// across 0-200000.
func referenceStream(n int, r *rand.Rand) []float64 {
	out := make([]float64, n)
	regime := 0
	scan := 50000.0
	for i := range out {
		if r.Float64() < 0.01 {
			regime = r.Intn(3)
		}
		switch regime {
		case 0: // hot working set
			out[i] = 1000 + 50*r.NormFloat64()
		case 1: // streaming scan
			scan += 10
			if scan > 70000 {
				scan = 50000
			}
			out[i] = scan + 5*r.NormFloat64()
		default: // cold random
			out[i] = 200000 * r.Float64()
		}
	}
	return out
}

// quantizedChainLogLik fits a k-state quantized chain and scores a held-out
// stream (per reference).
func quantizedChainLogLik(train, held []float64, k int) (float64, int, error) {
	lo, hi := stats.Min(train), stats.Max(train)
	quant := func(xs []float64) []int {
		out := make([]int, len(xs))
		for i, x := range xs {
			s := int(float64(k) * (x - lo) / (hi - lo + 1))
			if s < 0 {
				s = 0
			}
			if s >= k {
				s = k - 1
			}
			out[i] = s
		}
		return out
	}
	chain, err := markov.Train([][]int{quant(train)}, k, 0.01)
	if err != nil {
		return 0, 0, err
	}
	ll := chain.LogLikelihood(quant(held)) / float64(len(held))
	return ll, chain.NumParams(), nil
}

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewSource(1))
	train := referenceStream(8000, r)
	held := referenceStream(4000, r)

	fmt.Println("Memory-reference modeling (Moro et al.): ECHMM vs quantized Markov chain")
	fmt.Printf("stream: %d training references, mean page %.0f, std %.0f\n\n",
		len(train), stats.Mean(train), stats.StdDev(train))

	// (a) ECHMM: Gaussian-emission HMM with one state per regime.
	hmm, err := markov.NewGaussianHMM(3, train, r)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmm.Fit(train, 100); err != nil {
		log.Fatal(err)
	}
	hmmLL, err := hmm.LogLikelihood(held)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ECHMM (3 Gaussian states):")
	for s := 0; s < 3; s++ {
		fmt.Printf("  state %d: mean page %8.0f, std %8.0f\n", s, hmm.Mu[s], hmm.Sigma[s])
	}
	fmt.Printf("  held-out log-likelihood: %.3f per reference, %d parameters\n\n",
		hmmLL, hmm.NumParams())

	// (b) Quantized chains at several resolutions.
	fmt.Println("quantized Markov chains:")
	fmt.Printf("  %-8s | %-22s | %-8s\n", "states", "held-out loglik/ref*", "params")
	for _, k := range []int{3, 8, 32} {
		ll, params, err := quantizedChainLogLik(train, held, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8d | %22.3f | %-8d\n", k, ll, params)
	}
	fmt.Println("  * discrete log-mass; comparable across chain sizes, not with the")
	fmt.Println("    continuous ECHMM density directly")

	// Synthetic regeneration: regime occupancy of the HMM's synthetic
	// stream vs the original (the categorize-then-generate use).
	synth, states := hmm.Sample(8000, r)
	fmt.Printf("\nsynthetic stream: mean page %.0f (original %.0f), std %.0f (original %.0f)\n",
		stats.Mean(synth), stats.Mean(train), stats.StdDev(synth), stats.StdDev(train))
	occ := make([]int, 3)
	for _, s := range states {
		occ[s]++
	}
	fmt.Printf("regime occupancy of the synthetic stream: %v\n", occ)
	path := hmm.Viterbi(train)
	occTrain := make([]int, 3)
	for _, s := range path {
		occTrain[s]++
	}
	fmt.Printf("regime occupancy decoded from the original: %v\n", occTrain)
	fmt.Println("\nthe ECHMM both categorizes the activity (Viterbi regimes) and")
	fmt.Println("regenerates a stream with matching page statistics — the two uses")
	fmt.Println("Moro et al. propose.")
}
