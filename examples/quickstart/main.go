// Quickstart: the full KOOZA pipeline on a simulated GFS workload.
//
//  1. Simulate a GFS chunkserver serving the paper's two validation
//     request classes (64 KB reads, 4 MB writes).
//  2. Train a KOOZA model: storage/CPU/memory Markov models, a network
//     queueing model, and the time-dependency queue.
//  3. Synthesize an equal number of requests from the model.
//  4. Replay the synthetic workload on the same simulated platform.
//  5. Compare request features and latency (the paper's Table 2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dcmodel"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate the original workload.
	tr, err := dcmodel.Simulate(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
		RunConfig: dcmodel.RunConfig{Mix: dcmodel.Table2Mix(), Requests: 4000, Seed: 1},
		Rate:      20,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Summarize()
	fmt.Printf("simulated %d requests over %.1fs (mean latency %.2f ms)\n\n",
		s.Requests, s.Duration, 1000*s.MeanLatency)

	// 2-5. Train, synthesize, replay, compare — the Table 2 pipeline.
	res, err := dcmodel.Validate(tr, tr.Len(), dcmodel.DefaultPlatform(), dcmodel.KoozaOptions{}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	// The trained model structure (the paper's Figure 2).
	fmt.Println()
	fmt.Print(res.Model.Describe())

	for _, row := range res.Rows {
		if d := row.FeatureDeviation(); d > 0.10 {
			log.Fatalf("class %s feature deviation %.1f%% — model did not converge", row.Class, 100*d)
		}
		if d := row.LatencyDeviation(); d > 0.10 {
			log.Fatalf("class %s latency deviation %.1f%% — model did not converge", row.Class, 100*d)
		}
	}
	fmt.Println("\nquickstart OK: synthetic workload matches the original within tolerance")
}
