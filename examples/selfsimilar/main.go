// Selfsimilar: Feitelson-style network-workload characterization.
//
// Three arrival processes with the same nominal rate — Poisson, a 2-state
// MMPP, and a self-similar ON/OFF superposition — are generated from
// declarative arrival specs (the exact processes `-arrivals` selects in
// the CLI tools and presets select in scenarios) and characterized the
// way the network-modeling literature prescribes: distribution fitting of
// interarrivals via the Kolmogorov-Smirnov test, burstiness (index of
// dispersion for counts, peak-to-mean), and self-similarity (Hurst
// exponent by R/S and aggregate-variance). It shows why Sengupta et al.
// warn that real traffic "diverges from the commonly-used Poisson
// distribution".
//
// Run with: go run ./examples/selfsimilar
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dcmodel/internal/spec"
	"dcmodel/internal/stats"
	"dcmodel/internal/workload"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewSource(1))
	const n = 40000
	const rate = 50.0

	// The canonical processes at one nominal rate, built exactly as the
	// spec engine builds them — no hand-tuned parameter drift.
	arrivals := func(process string) workload.Arrivals {
		arr, err := spec.BuildArrivals(spec.ArrivalSpec{Process: process, Rate: rate})
		if err != nil {
			log.Fatal(err)
		}
		return arr
	}
	sources := []struct {
		name  string
		times []float64
	}{
		{"poisson", arrivals("poisson").Times(n, r)},
		{"mmpp", arrivals("mmpp").Times(n, r)},
		{"self-similar", arrivals("selfsimilar").Times(n, r)},
	}

	fmt.Println("Arrival-process characterization (Feitelson methodology)")
	fmt.Printf("%-13s | %-9s | %-22s | %-7s | %-7s | %-8s | %-8s | %-8s\n",
		"process", "rate r/s", "best interarrival fit", "KS", "SCV", "IDC@1s", "Hurst RS", "Hurst AV")
	for _, src := range sources {
		gaps := workload.Interarrivals(src.times)
		fit, err := stats.FitBest(gaps)
		if err != nil {
			log.Fatal(err)
		}
		anal, err := stats.AnalyzeSelfSimilarity(src.times, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		measRate := float64(len(src.times)) / src.times[len(src.times)-1]
		fmt.Printf("%-13s | %9.1f | %-22s | %7.4f | %7.2f | %8.2f | %8.2f | %8.2f\n",
			src.name, measRate, stats.DescribeDist(fit.Dist), fit.KS,
			stats.SquaredCoefVar(gaps), anal.IDCShort, anal.HurstRS, anal.HurstAggVar)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - Poisson: exponential fit, SCV ~ 1, IDC ~ 1, Hurst ~ 0.5 (no structure).")
	fmt.Println("  - MMPP: bursty (SCV, IDC > 1) but short-range dependent.")
	fmt.Println("  - Self-similar: heavy-tailed ON/OFF periods push the Hurst")
	fmt.Println("    exponent well above 0.5 — long-range dependence that a")
	fmt.Println("    Poisson network model would completely miss.")

	// Kolmogorov-Smirnov rejection of the Poisson assumption.
	fmt.Println("\nKS test of each process against an exponential interarrival model:")
	for _, src := range sources {
		gaps := workload.Interarrivals(src.times)
		expFit, err := stats.FitExponential(gaps)
		if err != nil {
			log.Fatal(err)
		}
		res := stats.KSTest(gaps, expFit)
		verdict := "consistent with Poisson"
		if res.P < 0.01 {
			verdict = "REJECTED (not Poisson)"
		}
		fmt.Printf("  %-13s D=%.4f p=%.4g -> %s\n", src.name, res.Statistic, res.P, verdict)
	}
}
