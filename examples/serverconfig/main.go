// Serverconfig: the paper's headline use case — "evaluating different
// server configurations without access to real DC application
// source-code" (§5), here the small-core-vs-big-core efficiency question
// of Reddi et al. ("Web Search Using Mobile Cores").
//
// A KOOZA model is trained on a trace of the original system; the
// synthetic workload it generates is then replayed on two candidate
// platforms — a big-core server and a mobile-core server with a slower
// CPU — and each is scored on p99 latency (the QoS constraint) and energy
// per request (the efficiency objective). The decision taken from the
// synthetic workload is checked against the decision the original trace
// would give.
//
// Run with: go run ./examples/serverconfig
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dcmodel"
	"dcmodel/internal/hw"
	"dcmodel/internal/power"
	"dcmodel/internal/stats"
)

// smallCoreHW is the mobile-core platform: 1/3 the clock of the default
// chunkserver CPU, everything else equal.
func smallCoreHW() *hw.Server {
	s := dcmodel.DefaultPlatform().NewServer()
	s.CPU.Frequency /= 3
	return s
}

type configCandidate struct {
	name     string
	platform dcmodel.Platform
	pw       power.ServerPower
}

type verdict struct {
	p99   float64
	jReq  float64
	meets bool
}

func evaluate(tr *dcmodel.Trace, c configCandidate, slo float64) (verdict, error) {
	timed, err := dcmodel.Replay(tr, c.platform)
	if err != nil {
		return verdict{}, err
	}
	lat := timed.Latencies()
	b, err := power.Energy(timed, 0, c.pw)
	if err != nil {
		return verdict{}, err
	}
	p99 := stats.Quantile(lat, 0.99)
	return verdict{p99: p99, jReq: b.JoulesPerRequest, meets: p99 <= slo}, nil
}

func pick(results map[string]verdict, order []string) string {
	best := ""
	for _, name := range order {
		v := results[name]
		if !v.meets {
			continue
		}
		if best == "" || v.jReq < results[best].jReq {
			best = name
		}
	}
	return best
}

func main() {
	log.SetFlags(0)
	const sloSeconds = 0.080 // p99 <= 80 ms

	// The original application trace (this is all a model user has).
	orig, err := dcmodel.Simulate(dcmodel.DefaultGFSConfig(), dcmodel.GFSRun{
		RunConfig: dcmodel.RunConfig{Mix: dcmodel.Table2Mix(), Requests: 6000, Seed: 1},
		Rate:      20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Model it and generate the synthetic stand-in workload.
	model, err := dcmodel.TrainKooza(orig, dcmodel.KoozaOptions{})
	if err != nil {
		log.Fatal(err)
	}
	synth, err := model.Synthesize(orig.Len(), rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}

	candidates := []configCandidate{
		{
			name:     "big-core",
			platform: dcmodel.DefaultPlatform(),
			pw:       power.BigCoreServer(),
		},
		{
			name:     "small-core",
			platform: dcmodel.Platform{NewServer: smallCoreHW},
			pw:       power.SmallCoreServer(),
		},
	}
	order := []string{"big-core", "small-core"}

	fmt.Printf("Server-configuration study (QoS: p99 <= %.0f ms; objective: min J/request)\n\n", 1000*sloSeconds)
	fmt.Printf("%-12s | %-10s | %-12s | %-12s | %-6s\n", "config", "workload", "p99 ms", "J/request", "QoS")
	synthResults := make(map[string]verdict)
	origResults := make(map[string]verdict)
	for _, c := range candidates {
		for _, w := range []struct {
			name string
			tr   *dcmodel.Trace
			into map[string]verdict
		}{
			{"synthetic", synth, synthResults},
			{"original", orig, origResults},
		} {
			v, err := evaluate(w.tr, c, sloSeconds)
			if err != nil {
				log.Fatal(err)
			}
			w.into[c.name] = v
			qos := "meets"
			if !v.meets {
				qos = "FAILS"
			}
			fmt.Printf("%-12s | %-10s | %12.2f | %12.2f | %-6s\n",
				c.name, w.name, 1000*v.p99, v.jReq, qos)
		}
	}
	synthPick := pick(synthResults, order)
	origPick := pick(origResults, order)
	fmt.Printf("\ndecision from the synthetic (model-generated) workload: %s\n", synthPick)
	fmt.Printf("decision from the original workload:                    %s\n", origPick)
	if synthPick == origPick && synthPick != "" {
		fmt.Println("=> the model-driven configuration study reaches the same decision")
	} else {
		fmt.Println("=> WARNING: decisions diverge")
	}
}
