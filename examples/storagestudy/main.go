// Storagestudy: the paper's §5 applicability case — "the storage model
// used in KOOZA has been effectively applied in storage system studies
// like SSD caching ... evaluation".
//
// The experiment sizes an SSD cache for a GFS-like object store WITHOUT
// access to the original application: an in-breadth storage model is
// trained on the original I/O trace, a synthetic I/O stream is generated
// from it, and both streams are run through the same SSD-cache simulator
// across a sweep of cache sizes. The study succeeds if the synthetic
// stream reproduces the original's hit-rate curve and therefore leads to
// the same provisioning decision (the smallest cache reaching the target
// hit rate).
//
// Run with: go run ./examples/storagestudy
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dcmodel"
	"dcmodel/internal/inbreadth"
)

// ssdCache is a simple LRU block cache over LBNs.
type ssdCache struct {
	capacity int
	index    map[int64]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent
}

type lruNode struct {
	lbn        int64
	prev, next *lruNode
}

func newSSDCache(capacityBlocks int) *ssdCache {
	return &ssdCache{capacity: capacityBlocks, index: make(map[int64]*lruNode)}
}

// access touches one block and reports whether it hit.
func (c *ssdCache) access(lbn int64) bool {
	if n, ok := c.index[lbn]; ok {
		c.moveToFront(n)
		return true
	}
	n := &lruNode{lbn: lbn}
	c.index[lbn] = n
	c.pushFront(n)
	if len(c.index) > c.capacity {
		evict := c.tail
		c.unlink(evict)
		delete(c.index, evict.lbn)
	}
	return false
}

func (c *ssdCache) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *ssdCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *ssdCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// hitRate runs an I/O stream through a cache of the given size and returns
// the block-level hit rate.
func hitRate(ios []inbreadth.IOEvent, capacityBlocks int) float64 {
	cache := newSSDCache(capacityBlocks)
	var hits, total int64
	for _, io := range ios {
		blocks := (io.Bytes + 4095) / 4096
		for b := int64(0); b < blocks; b++ {
			total++
			if cache.access(io.LBN + b) {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func main() {
	log.SetFlags(0)

	// Original application: a skewed-popularity object store.
	cfg := dcmodel.DefaultGFSConfig()
	cfg.Files = 8
	cfg.PopularitySkew = 1.1
	cfg.SegmentBytes = 256 << 10 // hot/cold 256 KiB segments
	cfg.SegmentSkew = 1.0
	tr, err := dcmodel.Simulate(cfg, dcmodel.GFSRun{
		RunConfig: dcmodel.RunConfig{Mix: dcmodel.WebMix(), Requests: 12000, Seed: 1},
		Rate:      50,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Model the storage behavior without the application.
	model, err := dcmodel.TrainInBreadth(tr, dcmodel.InBreadthOptions{StorageRegions: 64})
	if err != nil {
		log.Fatal(err)
	}
	orig := inbreadth.IOStreamFromTrace(tr)
	synth := model.GenerateIOStream(len(orig), rand.New(rand.NewSource(2)))

	// Sweep SSD cache sizes and compare hit-rate curves.
	const targetHitRate = 0.5
	sizesMiB := []int{64, 128, 256, 512, 1024, 2048, 4096}
	fmt.Println("SSD cache sizing study (LRU block cache, 4 KiB blocks)")
	fmt.Printf("%-12s | %-12s | %-12s | %-8s\n", "Cache MiB", "orig hit%", "synth hit%", "diff")
	origPick, synthPick := -1, -1
	for _, mib := range sizesMiB {
		blocks := mib * 256 // 4 KiB blocks per MiB
		ho := hitRate(orig, blocks)
		hs := hitRate(synth, blocks)
		fmt.Printf("%-12d | %11.1f%% | %11.1f%% | %7.1f%%\n", mib, 100*ho, 100*hs, 100*math.Abs(ho-hs))
		if origPick < 0 && ho >= targetHitRate {
			origPick = mib
		}
		if synthPick < 0 && hs >= targetHitRate {
			synthPick = mib
		}
	}
	fmt.Printf("\nprovisioning decision (smallest cache with >= %.0f%% hit rate):\n", 100*targetHitRate)
	fmt.Printf("  using the original trace:  %d MiB\n", origPick)
	fmt.Printf("  using the synthetic model: %d MiB\n", synthPick)
	if origPick == synthPick && origPick > 0 {
		fmt.Println("  => the model-driven study reaches the same design decision")
	} else {
		fmt.Println("  => WARNING: decisions diverge; the model needs more detail")
	}
}
