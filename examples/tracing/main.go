// Tracing: the two Google in-depth data-collection infrastructures the
// paper reviews, applied to a simulated GFS workload.
//
// Dapper-style request tracing samples 1 of every N requests and records
// each as a tree of nested spans with annotations; GWP-style continuous
// profiling samples across the whole cluster to surface aggregate trends
// (per-subsystem busy fractions, hottest request classes, arrival rate)
// with adaptive sampling.
//
// Run with: go run ./examples/tracing
package main

import (
	"fmt"
	"log"

	"dcmodel"
	"dcmodel/internal/dapper"
	"dcmodel/internal/gwp"
	"dcmodel/internal/trace"
)

func main() {
	log.SetFlags(0)

	cfg := dcmodel.DefaultGFSConfig()
	cfg.Chunkservers = 4
	tr, err := dcmodel.Simulate(cfg, dcmodel.GFSRun{
		RunConfig: dcmodel.RunConfig{Mix: dcmodel.Table2Mix(), Requests: 5000, Seed: 1},
		Rate:      40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ---- Dapper: sampled request trees ----
	// RecordWorkload drives the Recorder seam: any sink implementing
	// dapper.Recorder works here (a Collector, an obs.TraceRing, a Tee of
	// both); the daemon uses the same seam for its live /v1/traces view.
	var collector dapper.Collector
	started, sampled, err := dapper.RecordWorkload(tr, 1000, &collector) // 1-in-1000, as the paper quotes
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dapper-style tracing: %d requests seen, %d recorded (1/%d sampling)\n\n",
		started, sampled, 1000)
	if trees := collector.Trees(); len(trees) > 0 {
		fmt.Println("one sampled trace tree:")
		fmt.Print(trees[0].Render())
	}

	// ---- GWP: cluster-wide profiling ----
	profile, err := gwp.Collect(tr, gwp.Options{Period: 0.002, MaxSamples: 50000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGWP-style profile: %.1fs of activity, %d samples (period %.1f ms, adapted=%v)\n",
		profile.Duration, profile.Samples, 1000*profile.EffectivePeriod, profile.Adapted)
	fmt.Printf("arrival rate: %.1f req/s\n\n", profile.ArrivalRate)
	fmt.Printf("%-8s | %-8s | %-8s | %-8s | %-8s\n", "server", "net busy", "cpu busy", "mem busy", "disk busy")
	for _, m := range profile.Machines {
		fmt.Printf("%-8d | %7.2f%% | %7.2f%% | %7.2f%% | %7.2f%%\n", m.Server,
			100*m.Busy[trace.Network], 100*m.Busy[trace.CPU],
			100*m.Busy[trace.Memory], 100*m.Busy[trace.Storage])
	}
	fmt.Println("\nhottest request classes:")
	for _, c := range profile.Classes {
		fmt.Printf("  %-10s %5d requests, mean I/O %8.0f B, mean latency %7.2f ms, cpu %5.2f%%\n",
			c.Class, c.Requests, c.MeanBytes, 1000*c.MeanLatency, 100*c.MeanUtil)
	}
	// ---- Pinpoint-style anomaly detection on densely sampled traces ----
	dense, err := dapper.TraceWorkload(tr, 1) // full capture for the study
	if err != nil {
		log.Fatal(err)
	}
	allTrees, err := dense.Trees()
	if err != nil {
		log.Fatal(err)
	}
	anomalies, err := dapper.Detect(allTrees, dapper.DetectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPinpoint-style anomaly scan over %d traces: %d flagged\n", len(allTrees), len(anomalies))
	for i, a := range anomalies {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(anomalies)-3)
			break
		}
		fmt.Printf("  [%s] trace %d: %s\n", a.Kind, a.Tree.Root.Span.Trace, a.Detail)
	}

	fmt.Println("\nthe paper's point: these tools capture structure and hotspots, but")
	fmt.Println("only the annotations carry subsystem features — a workload MODEL")
	fmt.Println("(KOOZA) is still needed to regenerate the workload elsewhere.")
}
