// Webtier: the in-depth modeling tradition on a 3-tier web application
// (Liu et al.), plus Joo et al.'s lesson that user-behavior modeling
// matters.
//
// Part 1 builds the web -> app -> db queueing model both analytically
// (open Jackson network) and by discrete-event simulation, and shows they
// agree — the in-depth strength: accurate latency/throughput prediction.
//
// Part 2 drives the same tiers with two request streams of identical mean
// rate: an infinite-source constant stream and the "webtier" scenario
// preset's browsers client — phased self-similar traffic over a diurnal
// cycle with a flash crowd. The tail latencies differ sharply — Joo et
// al.'s conclusion that "the accuracy of the model in capturing user
// behavior ... [is] instrumental for the fidelity of the observed
// results".
//
// Part 3 closes the loop with a Yaksha-style PI admission controller
// keeping the db tier's response time at a target under overload.
//
// Run with: go run ./examples/webtier
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dcmodel/internal/prand"
	"dcmodel/internal/queueing"
	"dcmodel/internal/spec"
	"dcmodel/internal/stats"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewSource(1))

	// ---- Part 1: analytic vs simulated 3-tier model ----
	const lambda = 40.0
	mus := []float64{200, 90, 60}
	names := []string{"web", "app", "db"}
	net, err := queueing.TandemNetwork(names, mus, []int{1, 1, 1}, lambda)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := net.Solve()
	if err != nil {
		log.Fatal(err)
	}
	cfg := queueing.Config{
		Stations: []queueing.Station{
			{Name: "web", Servers: 1, Service: stats.Exponential{Rate: mus[0]}},
			{Name: "app", Servers: 1, Service: stats.Exponential{Rate: mus[1]}},
			{Name: "db", Servers: 1, Service: stats.Exponential{Rate: mus[2]}},
		},
		Classes:      []queueing.Class{{Name: "req", Weight: 1, Path: []int{0, 1, 2}}},
		Interarrival: stats.Exponential{Rate: lambda},
		NumJobs:      60000,
		Warmup:       6000,
	}
	sim, err := queueing.Simulate(cfg, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Part 1 — 3-tier model: analytic (Jackson) vs discrete-event simulation")
	fmt.Printf("%-6s | %-12s | %-12s\n", "tier", "rho analytic", "rho simulated")
	for i := range names {
		fmt.Printf("%-6s | %12.3f | %12.3f\n", names[i], sol.Nodes[i].Utilization, sim.Stations[i].Utilization)
	}
	fmt.Printf("mean response: analytic %.2f ms, simulated %.2f ms\n\n",
		1000*sol.MeanResponse, 1000*stats.Mean(sim.Responses()))

	// ---- Part 2: infinite source vs the webtier preset's browsers ----
	// The preset's browsers client is self-similar traffic modulated by a
	// diurnal phase schedule (night/morning/peak/flash-crowd/evening).
	preset, err := spec.Preset("webtier")
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := preset.Compile(spec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var browsers *spec.CompiledClient
	for i := range compiled.Clients {
		if compiled.Clients[i].Name == "browsers" {
			browsers = &compiled.Clients[i]
		}
	}
	if browsers == nil {
		log.Fatal("webtier preset lost its browsers client")
	}
	browserTimes := browsers.Arrivals.Times(4000, prand.New(compiled.Seed, 0))
	meanRate := float64(len(browserTimes)) / browserTimes[len(browserTimes)-1]
	runWith := func(arrivalTimes []float64) []float64 {
		c := cfg
		c.Interarrival = nil
		c.NumJobs = len(arrivalTimes)
		if c.NumJobs > 40000 {
			c.NumJobs = 40000
		}
		c.Warmup = c.NumJobs / 10
		c.Interarrival = newGapDist(arrivalTimes)
		res, err := queueing.Simulate(c, rand.New(rand.NewSource(2)))
		if err != nil {
			log.Fatal(err)
		}
		return res.Responses()
	}
	steady, err := spec.BuildArrivals(spec.ArrivalSpec{Process: "deterministic", Rate: meanRate})
	if err != nil {
		log.Fatal(err)
	}
	infTimes := steady.Times(len(browserTimes), r)
	infResp := runWith(infTimes)
	browserResp := runWith(browserTimes)
	fmt.Println("Part 2 — identical mean load, different user models (Joo et al.)")
	fmt.Printf("%-18s | %-10s | %-10s | %-10s\n", "workload", "mean ms", "p95 ms", "p99 ms")
	for _, row := range []struct {
		name string
		resp []float64
	}{
		{"infinite-source", infResp},
		{"diurnal browsers", browserResp},
	} {
		fmt.Printf("%-18s | %10.2f | %10.2f | %10.2f\n", row.name,
			1000*stats.Mean(row.resp),
			1000*stats.Quantile(row.resp, 0.95),
			1000*stats.Quantile(row.resp, 0.99))
	}
	idcInf := stats.IndexOfDispersion(infTimes, 1)
	idcBrowsers := stats.IndexOfDispersion(browserTimes, 1)
	fmt.Printf("burstiness (IDC@1s): infinite-source %.2f vs diurnal browsers %.2f\n\n", idcInf, idcBrowsers)

	// ---- Part 3: PI admission control under overload ----
	ctl, err := queueing.NewPIController(0.05, 0.02, 0.05) // 50 ms target
	if err != nil {
		log.Fatal(err)
	}
	offered := 80.0 // above the db tier's 60/s capacity
	fmt.Println("Part 3 — Yaksha-style PI admission control (db capacity 60/s, offered 80/s)")
	var admitted, resp float64
	for i := 0; i < 300; i++ {
		admitted = offered * ctl.Admission()
		if admitted >= 60 {
			resp = 1 // saturated
		} else {
			q, err := queueing.NewMM1(admitted, 60)
			if err != nil {
				log.Fatal(err)
			}
			resp = q.MeanResponse()
		}
		ctl.Observe(resp)
	}
	fmt.Printf("steady state: admission %.2f, admitted %.1f req/s, db response %.1f ms (target 50 ms)\n",
		ctl.Admission(), admitted, 1000*resp)
}

// gapDist replays a fixed arrival-time list as an interarrival
// "distribution": Rand returns the successive recorded gaps (cycling if
// exhausted), so the simulator sees exactly the traced arrival process.
type gapDist struct {
	gaps []float64
	i    int
}

func newGapDist(times []float64) *gapDist {
	gaps := make([]float64, 0, len(times))
	prev := 0.0
	for _, t := range times {
		gaps = append(gaps, t-prev)
		prev = t
	}
	return &gapDist{gaps: gaps}
}

func (g *gapDist) Name() string      { return "trace" }
func (g *gapDist) Params() []float64 { return []float64{float64(len(g.gaps))} }
func (g *gapDist) Mean() float64     { return stats.Mean(g.gaps) }
func (g *gapDist) Var() float64      { return stats.Variance(g.gaps) }
func (g *gapDist) PDF(float64) float64 {
	return 0
}
func (g *gapDist) CDF(x float64) float64 {
	var n float64
	for _, v := range g.gaps {
		if v <= x {
			n++
		}
	}
	return n / float64(len(g.gaps))
}
func (g *gapDist) Quantile(p float64) float64 { return stats.Quantile(g.gaps, p) }
func (g *gapDist) Rand(*rand.Rand) float64 {
	v := g.gaps[g.i%len(g.gaps)]
	g.i++
	return v
}
