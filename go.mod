module dcmodel

go 1.22
