package dcmodel

import (
	"math/rand"
	"testing"

	"dcmodel/internal/stats"
	"dcmodel/internal/workload"
)

// The Table 2 validation uses deterministic request sizes; these tests
// stress the pipeline on workloads with *distributions* of sizes, where
// matching means is not enough — the synthetic feature distributions must
// match the originals' shape (two-sample KS).

func heavyTrace(t *testing.T, mix *Mix, n int, seed int64) *Trace {
	t.Helper()
	cfg := DefaultGFSConfig()
	tr, err := Simulate(cfg, GFSRun{RunConfig: RunConfig{Mix: mix, Requests: n, Seed: seed}, Rate: 25})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestKoozaOnWebMixDistributions(t *testing.T) {
	tr := heavyTrace(t, WebMix(), 4000, 30)
	m, err := TrainKooza(tr, KoozaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := m.Synthesize(4000, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range tr.Classes() {
		o := tr.ByClass(class).SpanFeature(Storage, func(s Span) float64 { return float64(s.Bytes) })
		sy := synth.ByClass(class).SpanFeature(Storage, func(s Span) float64 { return float64(s.Bytes) })
		if len(sy) == 0 {
			t.Fatalf("class %s missing", class)
		}
		ks := stats.KSTest2(o, sy)
		if ks.Statistic > 0.06 {
			t.Errorf("class %s size-distribution KS = %g, want small", class, ks.Statistic)
		}
		// Tail fidelity: p99 sizes within 15%.
		if d := stats.RelError(stats.Quantile(o, 0.99), stats.Quantile(sy, 0.99)); d > 0.15 {
			t.Errorf("class %s p99 size deviation %g", class, d)
		}
	}
	// Latency distribution after replay: medians within 10%, p95 within 20%.
	timed, err := Replay(synth, DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	oLat, sLat := tr.Latencies(), timed.Latencies()
	if d := stats.RelError(stats.Median(oLat), stats.Median(sLat)); d > 0.10 {
		t.Errorf("median latency deviation %g", d)
	}
	if d := stats.RelError(stats.Quantile(oLat, 0.95), stats.Quantile(sLat, 0.95)); d > 0.20 {
		t.Errorf("p95 latency deviation %g", d)
	}
}

func TestKoozaOnOLTPMix(t *testing.T) {
	tr := heavyTrace(t, workload.OLTPMix(), 4000, 32)
	if got := len(tr.Classes()); got != 3 {
		t.Fatalf("classes = %d", got)
	}
	res, err := Validate(tr, 4000, DefaultPlatform(), KoozaOptions{}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if d := row.LatencyDeviation(); d > 0.15 {
			t.Errorf("class %s latency deviation %g", row.Class, d)
		}
		if row.StorOpOrig != row.StorOpSynth {
			t.Errorf("class %s storage op flipped", row.Class)
		}
	}
	// The log-append class must stay highly sequential in synthesis.
	m := res.Model
	logClass, err := m.Class("logAppend")
	if err != nil {
		t.Fatal(err)
	}
	if logClass.Storage.SeqProb < 0.7 {
		t.Errorf("logAppend sequentiality = %g, want high", logClass.Storage.SeqProb)
	}
	pageClass, err := m.Class("pageRead")
	if err != nil {
		t.Fatal(err)
	}
	if pageClass.Storage.SeqProb > 0.2 {
		t.Errorf("pageRead sequentiality = %g, want low", pageClass.Storage.SeqProb)
	}
}

func TestCrossExamineOnWebMix(t *testing.T) {
	// The Table 1 shape must hold on a heavy-tailed workload too.
	tr := heavyTrace(t, WebMix(), 2500, 34)
	scores, err := CrossExamine(tr, DefaultPlatform(), CrossExamOptions{Requests: 2500, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Scores{}
	for _, s := range scores {
		byName[s.Name] = s
	}
	kz := byName["KOOZA"]
	if kz.Completeness <= byName["in-breadth"].Completeness ||
		kz.Completeness <= byName["in-depth"].Completeness {
		t.Errorf("KOOZA completeness %g not dominant on WebMix", kz.Completeness)
	}
}
