// Package cliflag is the shared post-flag.Parse validation layer of the
// cmd/* tools. Every command rejects nonsensical flag values — negative
// worker counts, zero shards, non-positive seeds — with a non-zero exit
// and a one-line usage hint, instead of silently clamping or failing deep
// inside an engine with an unrelated error.
package cliflag

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dcmodel/internal/errs"
)

// Problem describes one invalid flag value; an empty string means valid.
type Problem = string

// Workers validates a -workers value: 0 selects GOMAXPROCS, >= 1 is a
// bound, negative is rejected.
func Workers(v int) Problem {
	if v < 0 {
		return fmt.Sprintf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", v)
	}
	return ""
}

// Shards validates a -shards value: at least one shard.
func Shards(v int) Problem {
	if v < 1 {
		return fmt.Sprintf("-shards must be >= 1, got %d", v)
	}
	return ""
}

// Seed validates a -seed value: seeds are positive so every documented
// reproduction command has a meaningful SplitMix64-derived stream family.
func Seed(v int64) Problem {
	if v < 1 {
		return fmt.Sprintf("-seed must be a positive integer, got %d", v)
	}
	return ""
}

// Min validates an integer flag against an inclusive lower bound.
func Min(name string, v, min int) Problem {
	if v < min {
		return fmt.Sprintf("-%s must be >= %d, got %d", name, min, v)
	}
	return ""
}

// PositiveFloat validates a float flag that must be strictly positive.
func PositiveFloat(name string, v float64) Problem {
	if !(v > 0) { // rejects NaN too
		return fmt.Sprintf("-%s must be > 0, got %g", name, v)
	}
	return ""
}

// exit is swapped out by tests.
var exit = os.Exit

// Check aggregates validations: if any problem is non-empty it prints
// each to stderr, prints the one-line usage hint, and exits 2.
func Check(problems ...Problem) {
	var bad []string
	for _, p := range problems {
		if p != "" {
			bad = append(bad, p)
		}
	}
	if len(bad) == 0 {
		return
	}
	prog := filepath.Base(os.Args[0])
	for _, p := range bad {
		fmt.Fprintf(os.Stderr, "%s: %s\n", prog, p)
	}
	fmt.Fprintf(os.Stderr, "usage: run '%s -h' for the flag summary\n", prog)
	exit(2)
}

// Fatal reports a runtime error and exits with a code chosen by error
// class (via errors.Is on the toolkit's sentinel errors) rather than by
// message matching: configuration mistakes exit 2 like flag errors, so
// scripts can tell "fix your invocation" from "the run itself failed"
// (exit 1).
func Fatal(err error) {
	prog := filepath.Base(os.Args[0])
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	if errors.Is(err, errs.ErrBadConfig) {
		fmt.Fprintf(os.Stderr, "usage: run '%s -h' for the flag summary\n", prog)
		exit(2)
	}
	exit(1)
}
