package cliflag

import (
	"math"
	"testing"
)

func TestValidators(t *testing.T) {
	cases := []struct {
		name string
		got  Problem
		ok   bool
	}{
		{"workers 0", Workers(0), true},
		{"workers 8", Workers(8), true},
		{"workers -1", Workers(-1), false},
		{"shards 1", Shards(1), true},
		{"shards 0", Shards(0), false},
		{"shards -3", Shards(-3), false},
		{"seed 1", Seed(1), true},
		{"seed max", Seed(math.MaxInt64), true},
		{"seed 0", Seed(0), false},
		{"seed -5", Seed(-5), false},
		{"min ok", Min("n", 4, 1), true},
		{"min bad", Min("n", 0, 1), false},
		{"posfloat ok", PositiveFloat("rate", 0.5), true},
		{"posfloat zero", PositiveFloat("rate", 0), false},
		{"posfloat neg", PositiveFloat("rate", -2), false},
		{"posfloat nan", PositiveFloat("rate", math.NaN()), false},
	}
	for _, c := range cases {
		if c.ok && c.got != "" {
			t.Errorf("%s: unexpected problem %q", c.name, c.got)
		}
		if !c.ok && c.got == "" {
			t.Errorf("%s: invalid value accepted", c.name)
		}
	}
}

func TestCheckExitsOnlyOnProblems(t *testing.T) {
	exited := -1
	orig := exit
	exit = func(code int) { exited = code }
	defer func() { exit = orig }()

	Check("", "", "")
	if exited != -1 {
		t.Fatalf("Check exited (%d) on all-valid input", exited)
	}
	Check("", Workers(-1))
	if exited != 2 {
		t.Fatalf("Check exit code = %d, want 2", exited)
	}
}
