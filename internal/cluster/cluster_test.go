package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dcmodel/internal/fault"
	"dcmodel/internal/trace"
)

// testCluster is a coordinator plus n real workers on loopback HTTP.
type testCluster struct {
	coord   *Coordinator
	front   *httptest.Server
	workers []*httptest.Server
}

func startCluster(t *testing.T, n int, mutate func(*CoordinatorConfig)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		tc.workers = append(tc.workers, srv)
		urls[i] = srv.URL
	}
	cfg := CoordinatorConfig{Workers: urls}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

// ingestChunk POSTs one request slice to the coordinator in trace-v2
// binary form and fails the test on any non-200 or short count.
func ingestChunk(t *testing.T, url string, reqs []trace.Request) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, &trace.Trace{Requests: reqs}); err != nil {
		t.Error(err)
		return
	}
	resp, err := http.Post(url+"/v1/ingest", trace.ContentTypeV2, &buf)
	if err != nil {
		t.Error(err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ingest status %d: %s", resp.StatusCode, body)
		return
	}
	var out struct {
		Ingested int `json:"ingested"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Errorf("ingest response: %v", err)
		return
	}
	if out.Ingested != len(reqs) {
		t.Errorf("ingested %d of %d requests", out.Ingested, len(reqs))
	}
}

// mergedModel triggers a merge and fetches the coordinator's global
// model bytes.
func mergedModel(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/v1/merge", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d", resp.StatusCode)
	}
	resp, err = http.Get(url + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// getBody is a GET helper returning status and body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// chunks splits a request slice into k contiguous chunks.
func chunks(reqs []trace.Request, k int) [][]trace.Request {
	out := make([][]trace.Request, 0, k)
	per := (len(reqs) + k - 1) / k
	for i := 0; i < len(reqs); i += per {
		end := i + per
		if end > len(reqs) {
			end = len(reqs)
		}
		out = append(out, reqs[i:end])
	}
	return out
}

// TestClusterMergeMatchesSingleNode is the acceptance test's determinism
// half: for every worker count, a trace ingested through the cluster via
// concurrent interleaved bodies merges to a model byte-identical to one
// model trained on the whole trace in order.
func TestClusterMergeMatchesSingleNode(t *testing.T) {
	tr := testTrace(t, 2400, 13)
	want := modelBytes(t, DefaultModelConfig(), tr.Requests)

	for _, n := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			tc := startCluster(t, n, nil)
			var wg sync.WaitGroup
			for _, chunk := range chunks(tr.Requests, 6) {
				wg.Add(1)
				go func(reqs []trace.Request) {
					defer wg.Done()
					ingestChunk(t, tc.front.URL, reqs)
				}(chunk)
			}
			wg.Wait()
			got := mergedModel(t, tc.front.URL)
			if !bytes.Equal(got, want) {
				t.Fatal("cluster-merged model differs from single-node training")
			}

			// Every worker now holds the replicated global model and
			// answers queries identically at a fixed seed.
			var first []byte
			for i, ws := range tc.workers {
				code, body := getBody(t, ws.URL+"/v1/synthesize?n=200&seed=9&format=binary")
				if code != http.StatusOK {
					t.Fatalf("worker %d synthesize status %d", i, code)
				}
				if first == nil {
					first = body
				} else if !bytes.Equal(first, body) {
					t.Fatalf("worker %d synthesized a different trace than worker 0", i)
				}
			}
			// And the coordinator's routed query matches too.
			code, body := getBody(t, tc.front.URL+"/v1/synthesize?n=200&seed=9&format=binary")
			if code != http.StatusOK {
				t.Fatalf("coordinator synthesize status %d", code)
			}
			if !bytes.Equal(first, body) {
				t.Fatal("coordinator-routed synthesis differs from direct worker query")
			}
		})
	}
}

// TestClusterCSVIngest pins the CSV ingest path end to end.
func TestClusterCSVIngest(t *testing.T) {
	tr := testTrace(t, 300, 21)
	want := modelBytes(t, DefaultModelConfig(), tr.Requests)
	tc := startCluster(t, 2, nil)

	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.front.URL+"/v1/ingest", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv ingest status %d", resp.StatusCode)
	}
	if got := mergedModel(t, tc.front.URL); !bytes.Equal(got, want) {
		t.Fatal("csv-ingested model differs from single-node training")
	}
}

// faultClock is an injectable manual clock for deterministic kills.
type faultClock struct{ bits atomic.Uint64 }

func (c *faultClock) now() float64  { return math.Float64frombits(c.bits.Load()) }
func (c *faultClock) set(v float64) { c.bits.Store(math.Float64bits(v)) }

// TestClusterKillMidRun is the acceptance test's fault half: a worker
// killed by the armed fault schedule mid-ingest loses nothing — its
// routed requests are re-replicated from the coordinator's log and the
// final merged model stays byte-identical to single-node training.
func TestClusterKillMidRun(t *testing.T) {
	tr := testTrace(t, 2400, 17)
	want := modelBytes(t, DefaultModelConfig(), tr.Requests)

	fcfg := &fault.Config{MTBF: 30, MTTR: 1e9, Seed: 1}
	// Rebuild the coordinator's schedule to find the first kill time.
	sched, err := fault.NewSchedule(fcfg.WithDefaults(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim, tKill := -1, math.Inf(1)
	for i := 0; i < 3; i++ {
		if next := sched.NextFailure(i, 0); next < tKill {
			victim, tKill = i, next
		}
	}
	afterKill := tKill + 1e-3
	down := 0
	for i := 0; i < 3; i++ {
		if sched.DownAt(i, afterKill) {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("expected exactly 1 worker down just after t=%.3f, got %d", tKill, down)
	}

	clock := &faultClock{}
	tc := startCluster(t, 3, func(cfg *CoordinatorConfig) {
		cfg.Faults = fcfg
		cfg.FaultClock = clock.now
	})

	half := len(tr.Requests) / 2
	for _, chunk := range chunks(tr.Requests[:half], 3) {
		ingestChunk(t, tc.front.URL, chunk)
	}
	clock.set(afterKill) // the schedule now holds the victim down
	for _, chunk := range chunks(tr.Requests[half:], 3) {
		ingestChunk(t, tc.front.URL, chunk)
	}

	if got := mergedModel(t, tc.front.URL); !bytes.Equal(got, want) {
		t.Fatal("merged model after a mid-run kill differs from single-node training")
	}

	code, body := getBody(t, tc.front.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var stats ClusterStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workers[victim].Up {
		t.Errorf("victim worker %d still marked up", victim)
	}
	if stats.Redistributed == 0 {
		t.Error("no requests were re-replicated; the kill never bit")
	}
	up := 0
	for _, w := range stats.Workers {
		if w.Up {
			up++
		}
	}
	if up != 2 {
		t.Errorf("workers up = %d, want 2", up)
	}

	// The survivors still serve queries after the kill.
	code, _ = getBody(t, tc.front.URL+"/v1/synthesize?n=50&seed=3")
	if code != http.StatusOK {
		t.Fatalf("post-kill synthesize status %d", code)
	}
}

// TestClusterTotalLossDegrades pins the breaker-style floor: with every
// worker dead the coordinator absorbs ingest into its own shard and
// answers queries from the merged model itself — still byte-identical,
// still zero dropped requests.
func TestClusterTotalLossDegrades(t *testing.T) {
	tr := testTrace(t, 600, 23)
	want := modelBytes(t, DefaultModelConfig(), tr.Requests)

	// MTBF small enough that the only worker dies almost immediately.
	fcfg := &fault.Config{MTBF: 5, MTTR: 1e9, Seed: 2}
	sched, err := fault.NewSchedule(fcfg.WithDefaults(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	afterKill := sched.NextFailure(0, 0) + 1e-3

	clock := &faultClock{}
	tc := startCluster(t, 1, func(cfg *CoordinatorConfig) {
		cfg.Faults = fcfg
		cfg.FaultClock = clock.now
	})

	half := len(tr.Requests) / 2
	ingestChunk(t, tc.front.URL, tr.Requests[:half])
	clock.set(afterKill)
	ingestChunk(t, tc.front.URL, tr.Requests[half:])

	if got := mergedModel(t, tc.front.URL); !bytes.Equal(got, want) {
		t.Fatal("degraded-mode model differs from single-node training")
	}

	code, body := getBody(t, tc.front.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var hz struct {
		WorkersUp int  `json:"workers_up"`
		Degraded  bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.WorkersUp != 0 || !hz.Degraded {
		t.Fatalf("healthz = %+v, want 0 workers up and degraded", hz)
	}

	// Queries are answered locally from the merged model.
	code, _ = getBody(t, tc.front.URL+"/v1/characterize")
	if code != http.StatusOK {
		t.Fatalf("degraded characterize status %d", code)
	}
	code, _ = getBody(t, tc.front.URL+"/v1/synthesize?n=50&seed=5")
	if code != http.StatusOK {
		t.Fatalf("degraded synthesize status %d", code)
	}
}

// TestWorkerEndpoints walks one worker's HTTP surface directly.
func TestWorkerEndpoints(t *testing.T) {
	w, err := NewWorker(WorkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	tr := testTrace(t, 200, 29)

	// Queries 503 before a model is replicated.
	code, _ := getBody(t, srv.URL+"/v1/synthesize?n=10")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("pre-install synthesize status %d, want 503", code)
	}

	// Ingest CSV directly.
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker ingest status %d", resp.StatusCode)
	}
	if got := w.ShardRequests(); got != int64(len(tr.Requests)) {
		t.Fatalf("shard requests = %d, want %d", got, len(tr.Requests))
	}

	// Pull the shard model and install it back as the global replica.
	code, blob := getBody(t, srv.URL+"/v1/model")
	if code != http.StatusOK {
		t.Fatalf("model pull status %d", code)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/model", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(GenerationHeader, "7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model install status %d", resp.StatusCode)
	}
	if got := w.Generation(); got != 7 {
		t.Fatalf("generation = %d, want 7", got)
	}

	// Now the worker serves queries, stamped with the generation.
	resp, err = http.Get(srv.URL + "/v1/characterize")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(GenerationHeader); got != "7" {
		t.Fatalf("characterize generation header = %q, want 7", got)
	}

	// Reset clears the shard but not the installed replica.
	resp, err = http.Post(srv.URL+"/v1/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := w.ShardRequests(); got != 0 {
		t.Fatalf("shard requests after reset = %d, want 0", got)
	}
	code, _ = getBody(t, srv.URL+"/v1/synthesize?n=10")
	if code != http.StatusOK {
		t.Fatalf("post-reset synthesize status %d, want 200", code)
	}

	// Corrupt installs are rejected.
	resp, err = http.Post(srv.URL+"/v1/model", ContentTypeModel, strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage install status %d, want 400", resp.StatusCode)
	}

	// Metrics render.
	code, metrics := getBody(t, srv.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(metrics), "dcmodel_cluster_worker_ingested_total") {
		t.Fatalf("metrics missing worker counters (status %d)", code)
	}
}
