package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dcmodel/internal/errs"
	"dcmodel/internal/fault"
	"dcmodel/internal/obs"
	"dcmodel/internal/trace"
)

// QueueDepthHeader lets workers piggyback their in-flight load on ingest
// responses; the coordinator's queue-depth routing scorer consumes it
// without extra RPCs.
const QueueDepthHeader = "X-Dcmodel-Queue-Depth"

// routeBatchSize bounds how many decoded requests are routed under one
// lock acquisition, so concurrent ingest bodies interleave at batch
// granularity (the determinism contract makes the interleaving
// unobservable in the merged model).
const routeBatchSize = 256

// CoordinatorConfig configures the cluster coordinator (the master
// role).
type CoordinatorConfig struct {
	// Workers lists worker base URLs (e.g. http://10.0.0.7:9071). At
	// least one is required.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring
	// (0 selects DefaultVNodes).
	VNodes int
	// Scorers pick the query-serving worker; nil selects all built-in
	// scorers (ParseScorers("")).
	Scorers []Scorer
	// MergeEvery triggers an automatic merge+replicate cycle after this
	// many routed requests (0 selects 4096; negative disables automatic
	// merges — /v1/merge and lazy query merges still work).
	MergeEvery int
	// Model is the shared quantization config, replicated to workers'
	// expectations.
	Model ModelConfig
	// Faults arms a kill schedule over the workers: a worker whose
	// schedule says "down" at delivery time is treated exactly like a
	// crashed process (re-routing, re-replication, reset on rejoin).
	Faults *fault.Config
	// FaultClock returns elapsed seconds on the fault timeline; nil
	// uses wall-clock time since construction. Tests inject a manual
	// clock to make kills deterministic.
	FaultClock func() float64
	// Cooldown is how long a transport-dead worker stays excluded
	// before the next delivery probes it again (half-open), in seconds.
	// 0 selects 1s.
	Cooldown float64
	// Client performs worker RPCs; nil selects a 30s-timeout client.
	Client *http.Client
	// MaxSynth caps one /v1/synthesize response.
	MaxSynth int
	// Obs arms live request tracing (sampled span trees on /v1/traces),
	// mirroring the single-node daemon.
	Obs *obs.Options
}

// withDefaults fills zero fields.
func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	c.Model = c.Model.withDefaults()
	if c.Scorers == nil {
		c.Scorers, _ = ParseScorers("")
	}
	if c.MergeEvery == 0 {
		c.MergeEvery = 4096
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.MaxSynth == 0 {
		c.MaxSynth = 100000
	}
	return c
}

// member is the coordinator's view of one worker. All fields are guarded
// by Coordinator.routeMu.
type member struct {
	url string
	// up reports the transport view: false after a failed delivery
	// until a successful half-open probe.
	up bool
	// downUntil is the elapsed time before which no probe is attempted.
	downUntil float64
	// log holds every request delivered to this worker since its shard
	// was last (re)set — the re-replication source when it dies. This
	// is the GFS master's chunk-location log, at request granularity.
	log []trace.Request
	// generation is the merge generation last installed on the worker.
	generation int64
	// queueDepth is the worker's last piggybacked in-flight load.
	queueDepth int64
}

// Coordinator fronts the cluster: it consistent-hash-routes ingested
// request streams to worker shards, assembles the exactly-merged global
// model, replicates it to every worker, and routes queries to the best
// worker by the configured scorers — or serves them itself from the
// merged model when no worker is up (breaker-style degradation).
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	sched  *fault.Schedule
	client *http.Client
	start  time.Time

	// routeMu serializes routing, membership changes and merges: the
	// exactly-once accounting (log append before delivery, redistribute
	// on death, reset on rejoin) needs one writer.
	routeMu     sync.Mutex
	members     []*member
	local       *Model // coordinator's own shard: requests absorbed while no worker was up
	global      *Model // last merged global model
	globalBytes []byte
	generation  int64
	sinceMerge  int

	reg           *obs.Registry
	routed        *obs.LabeledCounter
	deaths        *obs.LabeledCounter
	queryRouted   *obs.LabeledCounter
	redistributed *obs.Counter
	degraded      *obs.Counter
	merges        *obs.Counter
	spanner       *obs.Spanner
	traces        *obs.TraceRing

	mux *http.ServeMux
}

// NewCoordinator builds a coordinator over cfg.Workers.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) < 1 {
		return nil, fmt.Errorf("cluster: coordinator needs >= 1 worker: %w", errs.ErrBadConfig)
	}
	ring, err := NewRing(len(cfg.Workers), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	local, err := NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   ring,
		client: cfg.Client,
		start:  time.Now(),
		local:  local,
	}
	if cfg.Faults != nil {
		fc := cfg.Faults.WithDefaults()
		if c.sched, err = fault.NewSchedule(fc, len(cfg.Workers), 0); err != nil {
			return nil, err
		}
	}
	for _, u := range cfg.Workers {
		c.members = append(c.members, &member{url: u, up: true})
	}

	c.reg = obs.NewRegistry()
	c.routed = c.reg.LabeledCounter("dcmodel_cluster_routed_total", "Requests routed to each worker shard.", "worker")
	c.deaths = c.reg.LabeledCounter("dcmodel_cluster_worker_deaths_total", "Times each worker was marked down.", "worker")
	c.queryRouted = c.reg.LabeledCounter("dcmodel_cluster_query_routed_total", "Queries routed to each worker.", "worker")
	c.redistributed = c.reg.Counter("dcmodel_cluster_redistributed_total", "Requests re-replicated from a dead worker's routing log.")
	c.degraded = c.reg.Counter("dcmodel_cluster_degraded_total", "Requests absorbed by the coordinator itself with no worker up.")
	c.merges = c.reg.Counter("dcmodel_cluster_merges_total", "Merge+replicate cycles completed.")
	c.reg.OnScrape(func(set func(name string, v float64)) {
		c.routeMu.Lock()
		up := 0
		for _, m := range c.members {
			if m.up {
				up++
			}
		}
		gen := c.generation
		c.routeMu.Unlock()
		set("dcmodel_cluster_workers_up", float64(up))
		set("dcmodel_cluster_generation", float64(gen))
	})
	if cfg.Obs != nil {
		o := cfg.Obs.WithDefaults()
		c.traces = obs.NewTraceRing(o.TraceCapacity)
		if c.spanner, err = obs.NewSpanner(o.SampleEvery, obs.Tee(c.traces, o.Recorder)); err != nil {
			return nil, err
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", c.handleIngest)
	mux.HandleFunc("/v1/merge", c.handleMerge)
	mux.HandleFunc("/v1/model", c.handleModel)
	mux.HandleFunc("/v1/synthesize", c.handleQuery("synthesize"))
	mux.HandleFunc("/v1/characterize", c.handleQuery("characterize"))
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/v1/traces", c.handleTraces)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) { c.reg.WriteText(w) })
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Generation returns the current merge generation.
func (c *Coordinator) Generation() int64 {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	return c.generation
}

// WorkersUp returns how many workers the coordinator considers routable.
func (c *Coordinator) WorkersUp() int {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	n := 0
	t := c.elapsed()
	for i, m := range c.members {
		if m.up && !c.faultDown(i, t) {
			n++
		}
	}
	return n
}

// elapsed returns the fault-timeline position in seconds.
func (c *Coordinator) elapsed() float64 {
	if c.cfg.FaultClock != nil {
		return c.cfg.FaultClock()
	}
	return time.Since(c.start).Seconds()
}

// faultDown reports whether the armed schedule holds worker i down at t.
func (c *Coordinator) faultDown(i int, t float64) bool {
	return c.sched != nil && c.sched.DownAt(i, t)
}

// usable reports whether worker i can receive deliveries at elapsed t,
// attempting a half-open revive of transport-dead workers whose cooldown
// has passed. Fault-scheduled deaths are only OBSERVED here; reapLocked
// performs the kill (and the log redistribution that must accompany it).
// Callers hold routeMu.
func (c *Coordinator) usable(i int, t float64) bool {
	m := c.members[i]
	if c.faultDown(i, t) {
		return false
	}
	if m.up {
		return true
	}
	if t < m.downUntil {
		return false
	}
	// Half-open probe: a rejoining worker is reset before it is routed
	// to again — its pre-death shard was already re-replicated to the
	// survivors, so reusing it would double-count.
	if err := c.post(m.url+"/v1/reset", "", nil); err != nil {
		m.downUntil = t + c.cfg.Cooldown
		return false
	}
	m.up = true
	m.log = nil
	m.generation = 0
	m.queueDepth = 0
	return true
}

// reapLocked executes the armed fault schedule: every up worker the
// schedule holds down at elapsed t is killed and its routing log
// re-replicated to the survivors. Callers hold routeMu and must call
// this before trusting membership on a write path (routing or merging).
func (c *Coordinator) reapLocked(t float64) {
	if c.sched == nil {
		return
	}
	var orphans []trace.Request
	for i, m := range c.members {
		if m.up && c.faultDown(i, t) {
			c.kill(i, c.sched.NextUp(i, t))
			orphans = append(orphans, c.takeLog(i)...)
		}
	}
	if len(orphans) > 0 {
		c.redistributed.Add(int64(len(orphans)))
		c.redistributeLocked(orphans)
	}
}

// kill marks worker i down until downUntil and returns nothing; the
// caller redistributes its log. Callers hold routeMu.
func (c *Coordinator) kill(i int, downUntil float64) {
	m := c.members[i]
	if !m.up {
		return
	}
	m.up = false
	m.downUntil = downUntil
	c.deaths.Add(1, strconv.Itoa(i))
}

// takeLog detaches and returns worker i's routing log. Callers hold
// routeMu.
func (c *Coordinator) takeLog(i int) []trace.Request {
	m := c.members[i]
	log := m.log
	m.log = nil
	return log
}

// routeBatch routes a decoded request batch: owner assignment by
// consistent hash over usable workers, log append BEFORE delivery, and
// on a failed delivery the dead worker's whole log is redistributed to
// the survivors (or absorbed locally when none remain). It returns how
// many of the batch's requests were absorbed by the coordinator itself.
func (c *Coordinator) routeBatch(batch []trace.Request, span *obs.LiveSpan) int {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()

	degraded := 0
	pending := batch
	for len(pending) > 0 {
		t := c.elapsed()
		c.reapLocked(t)
		// Partition the pending requests by ring owner among usable
		// workers; unroutable requests train the coordinator's own
		// shard (breaker-style degradation).
		buckets := make(map[int][]trace.Request)
		for _, req := range pending {
			owner := c.ring.OwnerExcluding(Key(req.ID, req.Class), func(w int) bool { return !c.usable(w, t) })
			if owner < 0 {
				c.local.Observe(req)
				c.degraded.Inc()
				degraded++
				continue
			}
			buckets[owner] = append(buckets[owner], req)
		}
		pending = nil
		for owner, reqs := range buckets {
			m := c.members[owner]
			// Log append precedes delivery: if the POST fails (or times
			// out ambiguously) the worker is marked down and the log —
			// including this batch — is re-replicated, so an
			// acknowledged-but-unrecorded delivery cannot happen.
			m.log = append(m.log, reqs...)
			child := span.Child(fmt.Sprintf("route:worker-%d", owner))
			err := c.deliver(m, reqs)
			if err != nil {
				child.Annotate("dead: %v", err)
				child.End()
				c.kill(owner, c.elapsed()+c.cfg.Cooldown)
				orphans := c.takeLog(owner)
				c.redistributed.Add(int64(len(orphans)))
				pending = append(pending, orphans...)
				continue
			}
			child.Annotate("n=%d", len(reqs))
			child.End()
			c.routed.Add(int64(len(reqs)), strconv.Itoa(owner))
			c.sinceMerge += len(reqs)
		}
	}
	if c.cfg.MergeEvery > 0 && c.sinceMerge >= c.cfg.MergeEvery {
		// Best-effort: a failed merge leaves the previous generation
		// serving and the next cycle retries.
		_ = c.mergeLocked()
	}
	return degraded
}

// deliver POSTs one request batch to a worker in trace-v2 binary form.
// Callers hold routeMu.
func (c *Coordinator) deliver(m *member, reqs []trace.Request) error {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, &trace.Trace{Requests: reqs}); err != nil {
		return err
	}
	resp, err := c.client.Post(m.url+"/v1/ingest", trace.ContentTypeV2, &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker returned %d", resp.StatusCode)
	}
	if qd := resp.Header.Get(QueueDepthHeader); qd != "" {
		if v, err := strconv.ParseInt(qd, 10, 64); err == nil {
			m.queueDepth = v
		}
	}
	return nil
}

// post is a bodyless-or-blob POST helper returning an error on any
// non-200.
func (c *Coordinator) post(url, contentType string, body []byte) error {
	resp, err := c.client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %d", url, resp.StatusCode)
	}
	return nil
}

// mergeLocked assembles the global model from the coordinator's own
// shard plus every usable worker's shard, bumps the generation, and
// replicates the merged model to the workers. A worker dying mid-merge
// restarts the assembly after its log is redistributed, so every
// generation counts every request exactly once. Callers hold routeMu.
func (c *Coordinator) mergeLocked() error {
	for {
		t := c.elapsed()
		c.reapLocked(t)
		global, err := NewModel(c.cfg.Model)
		if err != nil {
			return err
		}
		if err := global.Merge(c.local); err != nil {
			return err
		}
		died := false
		for i := range c.members {
			if !c.usable(i, t) {
				continue
			}
			shard, err := c.pullModel(c.members[i].url)
			if err != nil {
				c.kill(i, c.elapsed()+c.cfg.Cooldown)
				c.redeliverLocked(i)
				died = true
				break
			}
			if err := global.Merge(shard); err != nil {
				return err
			}
		}
		if died {
			continue
		}
		blob, err := global.MarshalBinary()
		if err != nil {
			return err
		}
		c.generation++
		c.global, c.globalBytes = global, blob
		c.sinceMerge = 0
		c.merges.Inc()
		for i, m := range c.members {
			if !c.usable(i, t) {
				continue
			}
			if err := c.postModel(m.url, blob, c.generation); err != nil {
				// Its shard is already inside this generation; the
				// redistribution only affects the NEXT one, which is
				// rebuilt from scratch — still exactly once.
				c.kill(i, c.elapsed()+c.cfg.Cooldown)
				c.redeliverLocked(i)
				continue
			}
			m.generation = c.generation
		}
		return nil
	}
}

// redeliverLocked re-replicates a dead worker's routing log to the
// survivors. Callers hold routeMu.
func (c *Coordinator) redeliverLocked(dead int) {
	orphans := c.takeLog(dead)
	if len(orphans) == 0 {
		return
	}
	c.redistributed.Add(int64(len(orphans)))
	c.redistributeLocked(orphans)
}

// redistributeLocked routes orphaned requests to the surviving workers,
// absorbing them locally when none remain. Callers hold routeMu.
func (c *Coordinator) redistributeLocked(orphans []trace.Request) {
	pending := orphans
	for len(pending) > 0 {
		t := c.elapsed()
		buckets := make(map[int][]trace.Request)
		for _, req := range pending {
			owner := c.ring.OwnerExcluding(Key(req.ID, req.Class), func(w int) bool { return !c.usable(w, t) })
			if owner < 0 {
				c.local.Observe(req)
				c.degraded.Inc()
				continue
			}
			buckets[owner] = append(buckets[owner], req)
		}
		pending = nil
		for owner, reqs := range buckets {
			m := c.members[owner]
			m.log = append(m.log, reqs...)
			if err := c.deliver(m, reqs); err != nil {
				c.kill(owner, c.elapsed()+c.cfg.Cooldown)
				next := c.takeLog(owner)
				c.redistributed.Add(int64(len(next)))
				pending = append(pending, next...)
				continue
			}
			c.routed.Add(int64(len(reqs)), strconv.Itoa(owner))
		}
	}
}

// pullModel fetches and decodes one worker's shard model.
func (c *Coordinator) pullModel(url string) (*Model, error) {
	resp, err := c.client.Get(url + "/v1/model")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s/v1/model returned %d", url, resp.StatusCode)
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxModelBytes+1))
	if err != nil {
		return nil, err
	}
	if len(blob) > maxModelBytes {
		return nil, fmt.Errorf("%s shard model exceeds %d bytes", url, maxModelBytes)
	}
	return UnmarshalModel(blob)
}

// postModel replicates the merged model to one worker.
func (c *Coordinator) postModel(url string, blob []byte, generation int64) error {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/model", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentTypeModel)
	req.Header.Set(GenerationHeader, strconv.FormatInt(generation, 10))
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/v1/model returned %d", url, resp.StatusCode)
	}
	return nil
}

// handleIngest decodes a CSV or trace-v2 body and routes it across the
// worker shards.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	span := c.spanner.StartRequest("cluster:ingest", 0)
	dec := trace.NewRequestReader(io.LimitReader(r.Body, maxIngestBytes), r.Header.Get("Content-Type"))
	total, degraded := 0, 0
	batch := make([]trace.Request, 0, routeBatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		degraded += c.routeBatch(batch, span)
		total += len(batch)
		batch = batch[:0]
	}
	for {
		req, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			span.Annotate("decode error: %v", err)
			span.Finish()
			httpError(w, http.StatusBadRequest, "decode: %v", err)
			return
		}
		batch = append(batch, req)
		if len(batch) == routeBatchSize {
			flush()
		}
	}
	flush()
	span.Annotate("requests=%d degraded=%d", total, degraded)
	span.Finish()
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":         total,
		"routed":           total - degraded,
		"absorbed_locally": degraded,
	})
}

// handleMerge runs an explicit merge+replicate cycle.
func (c *Coordinator) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	c.routeMu.Lock()
	err := c.mergeLocked()
	gen := c.generation
	var reqs int64
	if c.global != nil {
		reqs = c.global.Requests()
	}
	c.routeMu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "merge: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "requests": reqs})
}

// handleModel serves the merged global model bytes.
func (c *Coordinator) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	c.routeMu.Lock()
	if c.global == nil {
		_ = c.mergeLocked()
	}
	blob, gen := c.globalBytes, c.generation
	c.routeMu.Unlock()
	if blob == nil {
		httpError(w, http.StatusServiceUnavailable, "%v: no merged model yet", errs.ErrModelNotTrained)
		return
	}
	w.Header().Set("Content-Type", ContentTypeModel)
	w.Header().Set(GenerationHeader, strconv.FormatInt(gen, 10))
	w.Write(blob)
}

// pickWorker scores the usable workers for a query and returns the best
// index, or -1 when none is usable. Callers hold routeMu.
func (c *Coordinator) pickWorker(key uint64, t float64) int {
	owner := c.ring.OwnerExcluding(key, func(w int) bool { return !c.usable(w, t) })
	if owner < 0 {
		return -1
	}
	best, bestScore := -1, 0.0
	for i, m := range c.members {
		if !c.usable(i, t) {
			continue
		}
		info := WorkerInfo{
			Index:         i,
			QueueDepth:    m.queueDepth,
			GenerationLag: c.generation - m.generation,
			OwnsKey:       i == owner,
		}
		score := 0.0
		for _, s := range c.cfg.Scorers {
			score += s.Score(info)
		}
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// handleQuery routes /v1/synthesize and /v1/characterize to the
// best-scoring worker, or answers locally from the merged model when no
// worker is up — the cluster's analogue of the single-node breaker
// staying on the last good model.
func (c *Coordinator) handleQuery(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		n, seed, format, err := synthParams(r, c.cfg.MaxSynth)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		c.routeMu.Lock()
		if c.generation == 0 {
			_ = c.mergeLocked()
		}
		t := c.elapsed()
		pick := c.pickWorker(Key(seed, endpoint), t)
		var target string
		if pick >= 0 {
			target = c.members[pick].url
		}
		global := c.global
		gen := c.generation
		c.routeMu.Unlock()

		if target != "" {
			c.queryRouted.Add(1, strconv.Itoa(pick))
			if c.proxy(w, target+r.URL.Path+"?"+r.URL.RawQuery) {
				return
			}
			// The pick died under us; fall through to the local answer
			// rather than failing the query. The next routing pass will
			// mark it down.
		}
		if global == nil || global.Requests() == 0 {
			httpError(w, http.StatusServiceUnavailable, "%v: ingest a trace first", errs.ErrModelNotTrained)
			return
		}
		c.degraded.Inc()
		w.Header().Set(GenerationHeader, strconv.FormatInt(gen, 10))
		switch endpoint {
		case "characterize":
			writeJSON(w, http.StatusOK, global.Characterize())
		default:
			tr, err := global.Synthesize(n, rand.New(rand.NewSource(seed)))
			if err != nil {
				httpError(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			writeTrace(w, tr, format)
		}
	}
}

// proxy forwards a GET and streams the response; false means the
// upstream was unreachable and the caller should answer locally.
func (c *Coordinator) proxy(w http.ResponseWriter, url string) bool {
	resp, err := c.client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// WorkerView is one worker's row in the cluster stats.
type WorkerView struct {
	URL        string `json:"url"`
	Up         bool   `json:"up"`
	Generation int64  `json:"generation"`
	QueueDepth int64  `json:"queue_depth"`
	Logged     int    `json:"logged_requests"`
}

// ClusterStats is the /v1/stats answer.
type ClusterStats struct {
	Workers       []WorkerView `json:"workers"`
	Generation    int64        `json:"generation"`
	Redistributed int64        `json:"redistributed_total"`
	Degraded      int64        `json:"degraded_total"`
	LocalRequests int64        `json:"local_requests"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	c.routeMu.Lock()
	stats := ClusterStats{
		Generation:    c.generation,
		Redistributed: c.redistributed.Value(),
		Degraded:      c.degraded.Value(),
		LocalRequests: c.local.Requests(),
	}
	for _, m := range c.members {
		stats.Workers = append(stats.Workers, WorkerView{
			URL:        m.url,
			Up:         m.up,
			Generation: m.generation,
			QueueDepth: m.queueDepth,
			Logged:     len(m.log),
		})
	}
	c.routeMu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

func (c *Coordinator) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	dump := obs.TraceDump{Traces: []*obs.TreeDump{}}
	if c.spanner != nil {
		dump.Enabled = true
		dump.SampleEvery = c.spanner.SampleEvery()
		dump.Capacity = c.traces.Cap()
		dump.Started, dump.Sampled = c.spanner.Stats()
		for _, t := range c.traces.Snapshot() {
			if td := obs.DumpTree(t); td != nil {
				dump.Traces = append(dump.Traces, td)
			}
		}
		dump.Held = len(dump.Traces)
	}
	writeJSON(w, http.StatusOK, dump)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	up := c.WorkersUp()
	c.routeMu.Lock()
	gen := c.generation
	c.routeMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"workers_up": up,
		"degraded":   up == 0,
		"generation": gen,
	})
}
