package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dcmodel/internal/errs"
	"dcmodel/internal/markov"
	"dcmodel/internal/trace"
)

// The cluster's global model is deliberately restricted to the family of
// models whose sufficient statistics merge EXACTLY: integer counts (class
// mix, histogram buckets, Markov transition counts) and order-independent
// reductions (max over arrival times). Integer addition in float64/int64
// is exact and commutative, so however a trace is partitioned across
// workers, and in whatever order the partial models are merged, the
// merged model is bit-for-bit identical to one model fed the whole trace
// — the determinism contract the acceptance tests pin byte-for-byte.
// Anything that would break exactness (float sums, clustering, quantile
// sketches) is excluded by construction; the per-shard serve daemons keep
// owning the richer KOOZA/in-breadth/in-depth models.

// Histogram geometry of the mergeable model. All histograms are
// fixed-bucket integer counts, so they merge by element-wise addition.
const (
	numSubsystems = 4
	// maxPhases caps the request phase-length histogram; longer requests
	// count in the top bucket.
	maxPhases = 32
	// sizeBuckets is the log2 bucket count for span byte sizes: bucket 0
	// holds zero-byte spans, bucket k holds [2^(k-1), 2^k).
	sizeBuckets = 48
	// durBuckets is the log2 bucket count for span durations in
	// nanoseconds (bucket 47 reaches ~2^46 ns, about 20 hours).
	durBuckets = 48
	// utilBuckets divides CPU utilization [0,1] evenly.
	utilBuckets = 16
	// bankBuckets counts DRAM banks; larger bank IDs clamp to the top.
	bankBuckets = 64
	// opKinds covers trace.OpNone/OpRead/OpWrite.
	opKinds = 3
)

// ModelConfig fixes the quantization every shard must share: merging is
// only exact when all shards bucket identically.
type ModelConfig struct {
	// StorageRegions is the storage Markov state count.
	StorageRegions int `json:"storage_regions"`
	// DiskBlocks is the fixed LBN address-space size mapped onto the
	// regions. Fixed (not inferred per shard) for the same reason the
	// serving daemon fixes it: every shard must share one quantization.
	DiskBlocks int64 `json:"disk_blocks"`
	// Smoothing is the Laplace smoothing applied when counts are
	// normalized into chains.
	Smoothing float64 `json:"smoothing"`
}

// DefaultModelConfig matches the serving daemon's defaults.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{StorageRegions: 32, DiskBlocks: 128 << 20, Smoothing: 0.01}
}

// withDefaults fills zero fields.
func (c ModelConfig) withDefaults() ModelConfig {
	d := DefaultModelConfig()
	if c.StorageRegions <= 0 {
		c.StorageRegions = d.StorageRegions
	}
	if c.DiskBlocks <= 0 {
		c.DiskBlocks = d.DiskBlocks
	}
	if c.Smoothing <= 0 {
		c.Smoothing = d.Smoothing
	}
	return c
}

// Model is the exactly-mergeable workload model trained by cluster
// workers and assembled by the coordinator. It is not safe for concurrent
// use; the worker guards its shard with a lock, and installed (replicated)
// models are treated as immutable.
type Model struct {
	cfg             ModelConfig
	blocksPerRegion int64

	requests   int64
	maxArrival float64
	classes    map[string]int64

	// phase chains the subsystem sequence of a request (KOOZA's
	// time-dependency structure); storage chains the LBN region walk.
	phase   *markov.Accumulator
	storage *markov.Accumulator

	phaseLen [maxPhases + 1]int64
	sizes    [numSubsystems][sizeBuckets]int64
	durs     [numSubsystems][durBuckets]int64
	ops      [numSubsystems][opKinds]int64
	util     [utilBuckets]int64
	banks    [bankBuckets]int64
}

// NewModel returns an empty model under cfg (zero fields defaulted).
func NewModel(cfg ModelConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.StorageRegions < 2 {
		return nil, fmt.Errorf("cluster: need >= 2 storage regions, got %d: %w", cfg.StorageRegions, errs.ErrBadConfig)
	}
	phase, err := markov.NewAccumulator(numSubsystems, cfg.Smoothing)
	if err != nil {
		return nil, err
	}
	storage, err := markov.NewAccumulator(cfg.StorageRegions, cfg.Smoothing)
	if err != nil {
		return nil, err
	}
	bpr := cfg.DiskBlocks / int64(cfg.StorageRegions)
	if bpr < 1 {
		bpr = 1
	}
	return &Model{
		cfg:             cfg,
		blocksPerRegion: bpr,
		classes:         make(map[string]int64),
		phase:           phase,
		storage:         storage,
	}, nil
}

// Config returns the model's (defaulted) quantization config.
func (m *Model) Config() ModelConfig { return m.cfg }

// Requests returns how many requests the model has absorbed.
func (m *Model) Requests() int64 { return m.requests }

// regionOf maps an LBN into the fixed storage quantization.
func (m *Model) regionOf(lbn int64) int {
	if lbn < 0 {
		return 0
	}
	st := int(lbn / m.blocksPerRegion)
	if st >= m.cfg.StorageRegions {
		st = m.cfg.StorageRegions - 1
	}
	return st
}

// log2Bucket maps a non-negative value into a log2 histogram: 0 for v<=0,
// else 1+floor(log2(v)), clamped to buckets-1.
func log2Bucket(v int64, buckets int) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // == 1+floor(log2 v)
	if b >= buckets {
		b = buckets - 1
	}
	return b
}

// Observe folds one request into the model's counts.
func (m *Model) Observe(req trace.Request) {
	m.requests++
	m.classes[req.Class]++
	if req.Arrival > m.maxArrival {
		m.maxArrival = req.Arrival
	}
	np := len(req.Spans)
	if np > maxPhases {
		np = maxPhases
	}
	m.phaseLen[np]++

	var phaseSeq [maxPhases]int
	var storageSeq [maxPhases]int
	pn, sn := 0, 0
	for _, sp := range req.Spans {
		sub := int(sp.Subsystem)
		if sub < 0 || sub >= numSubsystems {
			sub = 0
		}
		if pn < maxPhases {
			phaseSeq[pn] = sub
			pn++
		}
		m.sizes[sub][log2Bucket(sp.Bytes, sizeBuckets)]++
		ns := int64(sp.Duration * 1e9)
		m.durs[sub][log2Bucket(ns, durBuckets)]++
		op := int(sp.Op)
		if op < 0 || op >= opKinds {
			op = 0
		}
		m.ops[sub][op]++
		switch sp.Subsystem {
		case trace.CPU:
			u := sp.Util
			if u < 0 {
				u = 0
			}
			b := int(u * utilBuckets)
			if b >= utilBuckets {
				b = utilBuckets - 1
			}
			m.util[b]++
		case trace.Memory:
			b := sp.Bank
			if b < 0 {
				b = 0
			}
			if b >= bankBuckets {
				b = bankBuckets - 1
			}
			m.banks[b]++
		case trace.Storage:
			if sn < maxPhases {
				storageSeq[sn] = m.regionOf(sp.LBN)
				sn++
			}
		}
	}
	if pn > 0 {
		// States are in range by construction, so Observe cannot fail.
		_ = m.phase.Observe(phaseSeq[:pn])
	}
	if sn > 0 {
		_ = m.storage.Observe(storageSeq[:sn])
	}
}

// ObserveTrace folds a whole trace into the model.
func (m *Model) ObserveTrace(tr *trace.Trace) {
	for i := range tr.Requests {
		m.Observe(tr.Requests[i])
	}
}

// Merge folds other's counts into m. Both models must share one
// quantization config; merging is element-wise addition of counts plus a
// max over arrival horizons, so it is exact and order-independent (see
// the package comment and markov.Accumulator.Merge).
func (m *Model) Merge(other *Model) error {
	if other == nil {
		return nil
	}
	if other.cfg != m.cfg {
		return fmt.Errorf("cluster: merge config mismatch %+v vs %+v: %w", m.cfg, other.cfg, errs.ErrBadConfig)
	}
	if err := m.phase.Merge(other.phase); err != nil {
		return err
	}
	if err := m.storage.Merge(other.storage); err != nil {
		return err
	}
	m.requests += other.requests
	if other.maxArrival > m.maxArrival {
		m.maxArrival = other.maxArrival
	}
	for class, n := range other.classes {
		m.classes[class] += n
	}
	for i := range m.phaseLen {
		m.phaseLen[i] += other.phaseLen[i]
	}
	for s := 0; s < numSubsystems; s++ {
		for i := range m.sizes[s] {
			m.sizes[s][i] += other.sizes[s][i]
		}
		for i := range m.durs[s] {
			m.durs[s][i] += other.durs[s][i]
		}
		for i := range m.ops[s] {
			m.ops[s][i] += other.ops[s][i]
		}
	}
	for i := range m.util {
		m.util[i] += other.util[i]
	}
	for i := range m.banks {
		m.banks[i] += other.banks[i]
	}
	return nil
}

// Model wire format.
const (
	modelMagic   = "DCLM"
	modelVersion = 1
	// maxModelClasses bounds the class dictionary accepted when
	// unmarshaling, and maxClassNameBytes one class label.
	maxModelClasses   = 1 << 16
	maxClassNameBytes = 1 << 10
	// maxAccBlobBytes bounds one embedded accumulator blob.
	maxAccBlobBytes = 64 << 20
)

// MarshalBinary serializes the model deterministically: classes are
// emitted in sorted order and every count in a fixed little-endian
// layout, so byte-identity of two marshaled models is exactly
// count-identity — the form the cluster's determinism contract is proven
// in.
func (m *Model) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = append(buf, modelMagic...)
	buf = append(buf, modelVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.cfg.StorageRegions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.cfg.DiskBlocks))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.cfg.Smoothing))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.requests))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.maxArrival))

	classes := make([]string, 0, len(m.classes))
	for c := range m.classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(classes)))
	for _, c := range classes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c)))
		buf = append(buf, c...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.classes[c]))
	}

	for _, acc := range []*markov.Accumulator{m.phase, m.storage} {
		blob, err := acc.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}

	appendCounts := func(counts []int64) {
		for _, v := range counts {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	appendCounts(m.phaseLen[:])
	for s := 0; s < numSubsystems; s++ {
		appendCounts(m.sizes[s][:])
		appendCounts(m.durs[s][:])
		appendCounts(m.ops[s][:])
	}
	appendCounts(m.util[:])
	appendCounts(m.banks[:])
	return buf, nil
}

// UnmarshalModel reconstructs a Model from MarshalBinary output. Defects
// are errors, never panics.
func UnmarshalModel(data []byte) (*Model, error) {
	r := byteReader{data: data}
	magic, err := r.bytes(len(modelMagic))
	if err != nil || string(magic) != modelMagic {
		return nil, fmt.Errorf("cluster: bad model magic")
	}
	ver, err := r.byte()
	if err != nil || ver != modelVersion {
		return nil, fmt.Errorf("cluster: unsupported model version")
	}
	regions, err := r.u32()
	if err != nil {
		return nil, err
	}
	diskBlocks, err := r.u64()
	if err != nil {
		return nil, err
	}
	smoothBits, err := r.u64()
	if err != nil {
		return nil, err
	}
	cfg := ModelConfig{
		StorageRegions: int(regions),
		DiskBlocks:     int64(diskBlocks),
		Smoothing:      math.Float64frombits(smoothBits),
	}
	if cfg.StorageRegions < 2 || cfg.StorageRegions > 1<<12 || cfg.DiskBlocks < 1 ||
		!(cfg.Smoothing >= 0) || math.IsInf(cfg.Smoothing, 0) {
		return nil, fmt.Errorf("cluster: model config %+v invalid: %w", cfg, errs.ErrBadConfig)
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	reqs, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.requests = int64(reqs)
	if m.requests < 0 {
		return nil, fmt.Errorf("cluster: model request count overflows")
	}
	arrBits, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.maxArrival = math.Float64frombits(arrBits)
	if math.IsNaN(m.maxArrival) || m.maxArrival < 0 {
		return nil, fmt.Errorf("cluster: model arrival horizon %g invalid", m.maxArrival)
	}

	nClasses, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nClasses > maxModelClasses {
		return nil, fmt.Errorf("cluster: model has %d classes, max %d", nClasses, maxModelClasses)
	}
	for i := uint32(0); i < nClasses; i++ {
		nameLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nameLen > maxClassNameBytes {
			return nil, fmt.Errorf("cluster: class name of %d bytes exceeds the %d-byte limit", nameLen, maxClassNameBytes)
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		count, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.classes[string(name)] = int64(count)
	}

	for _, dst := range []**markov.Accumulator{&m.phase, &m.storage} {
		blobLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if blobLen > maxAccBlobBytes {
			return nil, fmt.Errorf("cluster: accumulator blob of %d bytes exceeds the limit", blobLen)
		}
		blob, err := r.bytes(int(blobLen))
		if err != nil {
			return nil, err
		}
		if *dst, err = markov.UnmarshalAccumulator(blob); err != nil {
			return nil, err
		}
	}
	if m.phase.N() != numSubsystems || m.storage.N() != cfg.StorageRegions {
		return nil, fmt.Errorf("cluster: embedded accumulator dimensions disagree with the model config")
	}

	readCounts := func(counts []int64) error {
		for i := range counts {
			v, err := r.u64()
			if err != nil {
				return err
			}
			counts[i] = int64(v)
			if counts[i] < 0 {
				return fmt.Errorf("cluster: histogram count overflows")
			}
		}
		return nil
	}
	if err := readCounts(m.phaseLen[:]); err != nil {
		return nil, err
	}
	for s := 0; s < numSubsystems; s++ {
		if err := readCounts(m.sizes[s][:]); err != nil {
			return nil, err
		}
		if err := readCounts(m.durs[s][:]); err != nil {
			return nil, err
		}
		if err := readCounts(m.ops[s][:]); err != nil {
			return nil, err
		}
	}
	if err := readCounts(m.util[:]); err != nil {
		return nil, err
	}
	if err := readCounts(m.banks[:]); err != nil {
		return nil, err
	}
	if !r.done() {
		return nil, fmt.Errorf("cluster: %d trailing bytes after model", r.remaining())
	}
	return m, nil
}

// byteReader is a bounds-checked cursor over a model blob.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("cluster: model blob truncated at byte %d", r.off)
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *byteReader) done() bool     { return r.off == len(r.data) }
func (r *byteReader) remaining() int { return len(r.data) - r.off }
