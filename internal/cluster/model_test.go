package cluster

import (
	"bytes"
	"math/rand"
	"testing"

	"dcmodel/internal/spec"
	"dcmodel/internal/trace"
)

// testTrace generates a deterministic preset workload trace.
func testTrace(t *testing.T, requests int, seed int64) *trace.Trace {
	t.Helper()
	sp, err := spec.Resolve("webtier")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := sp.Compile(spec.Options{Requests: requests, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := compiled.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// modelBytes trains one model on the given requests and marshals it.
func modelBytes(t *testing.T, cfg ModelConfig, reqs []trace.Request) []byte {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		m.Observe(reqs[i])
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestModelMergeExactness is the determinism contract at model level: a
// trace partitioned across K shard models (by the routing hash), with the
// shards merged in shuffled order, yields a model byte-identical to one
// model fed the whole trace in order.
func TestModelMergeExactness(t *testing.T) {
	tr := testTrace(t, 3000, 7)
	cfg := DefaultModelConfig()
	want := modelBytes(t, cfg, tr.Requests)

	for _, shards := range []int{1, 2, 3, 5, 8} {
		ring, err := NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]*Model, shards)
		for i := range parts {
			if parts[i], err = NewModel(cfg); err != nil {
				t.Fatal(err)
			}
		}
		for i := range tr.Requests {
			req := tr.Requests[i]
			parts[ring.Owner(Key(req.ID, req.Class))].Observe(req)
		}
		merged, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		order := rand.New(rand.NewSource(int64(shards))).Perm(shards)
		for _, i := range order {
			if err := merged.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := merged.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%d-shard merge differs from the single-model bytes", shards)
		}
	}
}

func TestModelMergeConfigMismatch(t *testing.T) {
	a, err := NewModel(ModelConfig{StorageRegions: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(ModelConfig{StorageRegions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched quantizations succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge = %v, want no-op", err)
	}
}

func TestModelMarshalRoundTrip(t *testing.T) {
	tr := testTrace(t, 500, 3)
	cfg := DefaultModelConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveTrace(tr)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("marshal -> unmarshal -> marshal is not a fixed point")
	}
	if back.Requests() != m.Requests() {
		t.Fatalf("round-tripped requests = %d, want %d", back.Requests(), m.Requests())
	}
}

func TestUnmarshalModelRejectsCorruption(t *testing.T) {
	tr := testTrace(t, 200, 5)
	m, err := NewModel(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveTrace(tr)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:3],
		"magic":     append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)/2],
		"trailing":  append(append([]byte{}, blob...), 0),
	}
	for name, data := range cases {
		if _, err := UnmarshalModel(data); err == nil {
			t.Errorf("%s blob accepted", name)
		}
	}
}

// TestSynthesizeDeterministic pins that synthesis is a pure function of
// (model bytes, seed) and yields structurally valid traces.
func TestSynthesizeDeterministic(t *testing.T) {
	tr := testTrace(t, 2000, 11)
	m, err := NewModel(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveTrace(tr)

	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	copyM, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}

	a, err := m.Synthesize(500, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := copyM.Synthesize(500, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("synthesized trace invalid: %v", err)
	}
	var ab, bb bytes.Buffer
	if err := trace.WriteBinary(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("same model bytes + same seed produced different traces")
	}
}

func TestSynthesizeUntrained(t *testing.T) {
	m, err := NewModel(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Synthesize(10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("untrained synthesis succeeded")
	}
}

func TestCharacterizeShares(t *testing.T) {
	tr := testTrace(t, 1000, 9)
	m, err := NewModel(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveTrace(tr)
	sum := m.Characterize()
	if sum.Requests != int64(len(tr.Requests)) {
		t.Fatalf("summary requests = %d, want %d", sum.Requests, len(tr.Requests))
	}
	var total float64
	for _, cs := range sum.Classes {
		total += cs.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("class shares sum to %g, want 1", total)
	}
	if sum.Rate <= 0 {
		t.Fatalf("rate = %g, want > 0", sum.Rate)
	}
}
