// Package cluster scales the serving daemon past one process: a
// coordinator/worker topology deliberately mirroring the paper's own GFS
// master/chunkserver structure. The coordinator fronts /v1/ingest,
// consistent-hash-routes request streams to N window shards over HTTP,
// and each worker trains its shard online with markov.Accumulator
// sufficient statistics. Because every model statistic is an exactly
// mergeable count (markov.Accumulator.Merge sums integer-valued
// transition counts), the coordinator can assemble a global model that is
// byte-identical regardless of routing interleaving and worker count —
// the cluster's determinism contract — and replicate it to every worker
// so any node answers /v1/synthesize and /v1/characterize.
//
// Failure handling mirrors the single-node daemon's breaker: a worker
// that stops answering (or is killed by an armed internal/fault schedule)
// is marked down, its hash ranges fall clockwise to the survivors, and
// the requests it had absorbed are re-replicated from the coordinator's
// routing log — so a mid-run kill loses nothing. After a cooldown the
// next delivery is the half-open probe; a rejoining worker is reset
// before it is routed to again, keeping the exactly-once accounting.
package cluster

import (
	"fmt"
	"sort"

	"dcmodel/internal/prand"
)

// DefaultVNodes is the default virtual-node count per worker: enough that
// removing one worker spreads its load across all survivors instead of
// dumping it on a single clockwise neighbor.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over worker indices 0..workers-1. Each
// worker owns vnodes points on the ring; a key is owned by the worker of
// the first point clockwise from the key's hash. The ring is immutable
// after construction — membership changes are expressed at lookup time
// with an exclusion predicate, so "worker down" re-routes exactly the
// dead worker's ranges (the consistent-hashing property) without
// rebuilding anything.
type Ring struct {
	hashes  []uint64 // sorted vnode positions
	owners  []int    // owners[i] is the worker owning hashes[i]
	workers int
}

// NewRing builds a ring of `workers` workers with `vnodes` virtual nodes
// each (0 selects DefaultVNodes).
func NewRing(workers, vnodes int) (*Ring, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: ring needs >= 1 worker, got %d", workers)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs >= 1 vnode per worker, got %d", vnodes)
	}
	r := &Ring{
		hashes:  make([]uint64, 0, workers*vnodes),
		owners:  make([]int, 0, workers*vnodes),
		workers: workers,
	}
	type point struct {
		h uint64
		w int
	}
	pts := make([]point, 0, workers*vnodes)
	for w := 0; w < workers; w++ {
		base := prand.Mix(uint64(w) + 1)
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{h: prand.Mix(base + uint64(v)), w: w})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].w < pts[j].w // deterministic collision order
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.w)
	}
	return r, nil
}

// Workers returns the worker count the ring was built over.
func (r *Ring) Workers() int { return r.workers }

// Owner returns the worker owning key: the worker of the first vnode at
// or clockwise after the key's position.
func (r *Ring) Owner(key uint64) int {
	return r.owners[r.firstAt(key)]
}

// OwnerExcluding returns the owner of key among workers for which
// excluded reports false, walking clockwise past vnodes of excluded
// workers — the dead-worker re-route. It returns -1 when every worker is
// excluded.
func (r *Ring) OwnerExcluding(key uint64, excluded func(worker int) bool) int {
	start := r.firstAt(key)
	n := len(r.hashes)
	for i := 0; i < n; i++ {
		w := r.owners[(start+i)%n]
		if !excluded(w) {
			return w
		}
	}
	return -1
}

// firstAt returns the index of the first vnode at or after key, wrapping
// past the top of the hash space.
func (r *Ring) firstAt(key uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// Key maps a request identity to its ring position. Class participates so
// two client streams replaying the same dense ID space spread
// differently; the SplitMix64 finalizer disperses the dense IDs.
func Key(id int64, class string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(class); i++ {
		h = (h ^ uint64(class[i])) * fnvPrime
	}
	return prand.Mix(h ^ prand.Mix(uint64(id)))
}
