package cluster

import (
	"testing"
)

func TestRingBalance(t *testing.T) {
	const workers, keys = 5, 100000
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, workers)
	for i := 0; i < keys; i++ {
		counts[r.Owner(Key(int64(i), "web"))]++
	}
	for w, n := range counts {
		share := float64(n) / keys
		if share < 0.5/workers || share > 2.0/workers {
			t.Errorf("worker %d owns %.1f%% of keys; want within [%.1f%%, %.1f%%]",
				w, 100*share, 50.0/workers, 200.0/workers)
		}
	}
}

// TestRingConsistency pins the consistent-hashing property: excluding one
// worker moves exactly that worker's keys and nothing else.
func TestRingConsistency(t *testing.T) {
	const workers, keys = 5, 20000
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const dead = 2
	moved := 0
	for i := 0; i < keys; i++ {
		k := Key(int64(i), "api")
		before := r.Owner(k)
		after := r.OwnerExcluding(k, func(w int) bool { return w == dead })
		if after == dead {
			t.Fatalf("key %d still routed to the excluded worker", i)
		}
		if before != dead && after != before {
			t.Fatalf("key %d moved from live worker %d to %d", i, before, after)
		}
		if before == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the excluded worker; test is vacuous")
	}
}

func TestRingOwnerExcludingAllDead(t *testing.T) {
	r, err := NewRing(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.OwnerExcluding(42, func(int) bool { return true }); got != -1 {
		t.Fatalf("all-excluded lookup = %d, want -1", got)
	}
	if got := r.OwnerExcluding(42, func(w int) bool { return w != 1 }); got != 1 {
		t.Fatalf("only worker 1 alive, lookup = %d", got)
	}
}

func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing(4, 16)
	b, _ := NewRing(4, 16)
	for i := 0; i < 1000; i++ {
		k := Key(int64(i), "batch")
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("two identically built rings disagree on key %d", i)
		}
	}
}

func TestRingRejectsBadShape(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewRing(3, -1); err == nil {
		t.Error("negative vnodes accepted")
	}
}

// TestKeyClassSpreads pins that the class participates in the key: the
// same dense ID space lands differently per class.
func TestKeyClassSpreads(t *testing.T) {
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if Key(int64(i), "web") == Key(int64(i), "batch") {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d/%d keys collide across classes", same, n)
	}
}
