package cluster

import (
	"fmt"
	"strings"

	"dcmodel/internal/errs"
)

// WorkerInfo is the routing-time view of one live worker a Scorer judges:
// the coordinator fills it from its passive state (no extra RPCs on the
// query path).
type WorkerInfo struct {
	// Index is the worker's slot in the coordinator's worker list.
	Index int
	// QueueDepth is the worker's last-reported in-flight ingest/query
	// load.
	QueueDepth int64
	// GenerationLag is how many merge generations behind the
	// coordinator's global model the worker's installed replica is
	// (0 = fully fresh).
	GenerationLag int64
	// OwnsKey reports whether the worker owns the query's hash-ring
	// position (shard affinity).
	OwnsKey bool
}

// Scorer scores a candidate worker for one routed query; higher is
// better. Scorers are additive: the coordinator sums every configured
// scorer and routes to the best total (ties break to the lowest worker
// index, keeping routing deterministic for a fixed cluster state).
//
// This is the pluggable request-routing seam (cf. BLIS --routing-scorers):
// new policies implement Scorer and register in ParseScorers.
type Scorer interface {
	// Name is the flag-facing identifier.
	Name() string
	// Score judges one candidate.
	Score(w WorkerInfo) float64
}

// queueDepthScorer prefers idle workers: each queued request costs one
// point.
type queueDepthScorer struct{}

func (queueDepthScorer) Name() string { return "queue-depth" }
func (queueDepthScorer) Score(w WorkerInfo) float64 {
	return -float64(w.QueueDepth)
}

// stalenessScorer prefers workers serving the freshest replicated model:
// each merge generation of lag costs two points, so a fully fresh worker
// beats one queued request of load.
type stalenessScorer struct{}

func (stalenessScorer) Name() string { return "model-staleness" }
func (stalenessScorer) Score(w WorkerInfo) float64 {
	return -2 * float64(w.GenerationLag)
}

// affinityScorer prefers the hash-ring owner of the query key, keeping
// repeat queries (same seed/shard) on one node's warm caches. The bonus
// of 0.5 breaks ties between otherwise equal workers without overriding
// a real load or staleness difference.
type affinityScorer struct{}

func (affinityScorer) Name() string { return "shard-affinity" }
func (affinityScorer) Score(w WorkerInfo) float64 {
	if w.OwnsKey {
		return 0.5
	}
	return 0
}

// Scorers returns the built-in scorer set for a -routing-scorers value:
// a comma-separated subset of queue-depth, model-staleness and
// shard-affinity. The empty string selects all three.
func ParseScorers(list string) ([]Scorer, error) {
	if strings.TrimSpace(list) == "" {
		return []Scorer{queueDepthScorer{}, stalenessScorer{}, affinityScorer{}}, nil
	}
	var out []Scorer
	seen := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if seen[name] {
			return nil, fmt.Errorf("cluster: routing scorer %q listed twice: %w", name, errs.ErrBadConfig)
		}
		seen[name] = true
		switch name {
		case "queue-depth":
			out = append(out, queueDepthScorer{})
		case "model-staleness":
			out = append(out, stalenessScorer{})
		case "shard-affinity":
			out = append(out, affinityScorer{})
		default:
			return nil, fmt.Errorf("cluster: unknown routing scorer %q (want queue-depth, model-staleness or shard-affinity): %w", name, errs.ErrBadConfig)
		}
	}
	return out, nil
}

// ScorerNames renders a scorer list back to its flag form.
func ScorerNames(scorers []Scorer) string {
	names := make([]string, len(scorers))
	for i, s := range scorers {
		names[i] = s.Name()
	}
	return strings.Join(names, ",")
}
