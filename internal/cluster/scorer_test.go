package cluster

import (
	"errors"
	"testing"

	"dcmodel/internal/errs"
)

func TestParseScorers(t *testing.T) {
	all, err := ParseScorers("")
	if err != nil {
		t.Fatal(err)
	}
	if got := ScorerNames(all); got != "queue-depth,model-staleness,shard-affinity" {
		t.Fatalf("default scorer set = %q", got)
	}
	one, err := ParseScorers(" shard-affinity ")
	if err != nil {
		t.Fatal(err)
	}
	if got := ScorerNames(one); got != "shard-affinity" {
		t.Fatalf("single scorer = %q", got)
	}
	if _, err := ParseScorers("queue-depth,queue-depth"); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("duplicate scorer error = %v, want ErrBadConfig", err)
	}
	if _, err := ParseScorers("round-robin"); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("unknown scorer error = %v, want ErrBadConfig", err)
	}
}

func TestScorerPreferences(t *testing.T) {
	scorers, err := ParseScorers("")
	if err != nil {
		t.Fatal(err)
	}
	total := func(w WorkerInfo) float64 {
		var s float64
		for _, sc := range scorers {
			s += sc.Score(w)
		}
		return s
	}
	idle := WorkerInfo{Index: 0}
	busy := WorkerInfo{Index: 1, QueueDepth: 5}
	if total(idle) <= total(busy) {
		t.Error("queue-depth scorer does not prefer the idle worker")
	}
	fresh := WorkerInfo{Index: 0}
	stale := WorkerInfo{Index: 1, GenerationLag: 3}
	if total(fresh) <= total(stale) {
		t.Error("staleness scorer does not prefer the fresh worker")
	}
	owner := WorkerInfo{Index: 0, OwnsKey: true}
	other := WorkerInfo{Index: 1}
	if total(owner) <= total(other) {
		t.Error("affinity scorer does not prefer the shard owner")
	}
	// One queued request must not override a fully fresh model: the
	// staleness penalty (2/generation) dominates the queue penalty (1).
	freshBusy := WorkerInfo{Index: 0, QueueDepth: 1}
	staleIdle := WorkerInfo{Index: 1, GenerationLag: 1}
	if total(freshBusy) <= total(staleIdle) {
		t.Error("fresh-but-busy should beat stale-but-idle at these weights")
	}
}
