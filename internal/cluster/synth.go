package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/errs"
	"dcmodel/internal/markov"
	"dcmodel/internal/trace"
)

// Synthesis from the merged model. The model holds only exactly-mergeable
// sufficient statistics, so synthesis reconstructs spans from them: class
// mix by counts, phase walk from the subsystem chain, per-subsystem span
// sizes/durations from the log2 histograms (uniform within the chosen
// bucket), storage LBNs from the region chain (uniform within the
// region), CPU utilization and DRAM banks from their histograms, and
// Poisson arrivals at the observed aggregate rate. The output is
// deterministic for a given (model bytes, seed): any node holding the
// replicated global model synthesizes the identical trace.

// synthesizer is the frozen sampling state derived from a model.
type synthesizer struct {
	m          *Model
	classes    []string
	classCum   []int64
	classTotal int64
	phase      *markov.Chain
	storage    *markov.Chain // nil when no storage spans were observed
	rate       float64
}

// newSynthesizer freezes the model's counts into sampling form.
func (m *Model) newSynthesizer() (*synthesizer, error) {
	if m.requests == 0 {
		return nil, errs.ErrModelNotTrained
	}
	s := &synthesizer{m: m}
	s.classes = make([]string, 0, len(m.classes))
	for c := range m.classes {
		s.classes = append(s.classes, c)
	}
	sort.Strings(s.classes)
	s.classCum = make([]int64, len(s.classes))
	for i, c := range s.classes {
		s.classTotal += m.classes[c]
		s.classCum[i] = s.classTotal
	}
	var err error
	if s.phase, err = m.phase.Chain(); err != nil {
		return nil, fmt.Errorf("cluster: phase chain: %w", err)
	}
	if m.storage.Sequences() > 0 {
		if s.storage, err = m.storage.Chain(); err != nil {
			return nil, fmt.Errorf("cluster: storage chain: %w", err)
		}
	}
	s.rate = 1000 // requests/s fallback for a single-instant trace
	if m.maxArrival > 0 {
		s.rate = float64(m.requests) / m.maxArrival
	}
	return s, nil
}

// cumPick draws an index from a cumulative int64 count vector.
func cumPick(cum []int64, total int64, r *rand.Rand) int {
	if total <= 0 {
		return 0
	}
	u := r.Int63n(total)
	return sort.Search(len(cum), func(i int) bool { return cum[i] > u })
}

// histPick draws a bucket index proportional to counts; ok reports
// whether the histogram holds any mass.
func histPick(counts []int64, r *rand.Rand) (bucket int, ok bool) {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	u := r.Int63n(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if u < cum {
			return i, true
		}
	}
	return len(counts) - 1, true
}

// log2Sample draws a value from a log2 bucket: bucket 0 is exactly 0,
// bucket k is uniform over [2^(k-1), 2^k).
func log2Sample(bucket int, r *rand.Rand) int64 {
	if bucket <= 0 {
		return 0
	}
	lo := int64(1) << (bucket - 1)
	return lo + r.Int63n(lo)
}

// Synthesize generates n requests from the model. The draw sequence is a
// fixed function of (model counts, seed), independent of how the model
// was assembled.
func (m *Model) Synthesize(n int, rng *rand.Rand) (*trace.Trace, error) {
	s, err := m.newSynthesizer()
	if err != nil {
		return nil, err
	}
	return s.synthesize(n, rng)
}

func (s *synthesizer) synthesize(n int, rng *rand.Rand) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: synthesize needs n >= 1, got %d: %w", n, errs.ErrBadConfig)
	}
	m := s.m
	out := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	var clock float64
	for i := 0; i < n; i++ {
		clock += rng.ExpFloat64() / s.rate
		req := trace.Request{
			ID:      int64(i),
			Class:   s.classes[cumPick(s.classCum, s.classTotal, rng)],
			Arrival: clock,
		}
		nPhases, _ := histPick(m.phaseLen[:], rng)
		start := clock
		phaseState, storageState := -1, -1
		for p := 0; p < nPhases; p++ {
			if phaseState < 0 {
				phaseState = s.phase.Start(rng)
			} else {
				phaseState = s.phase.Step(phaseState, rng)
			}
			sub := trace.Subsystem(phaseState)
			sp := trace.Span{Subsystem: sub, Start: start}
			if b, ok := histPick(m.durs[phaseState][:], rng); ok {
				sp.Duration = float64(log2Sample(b, rng)) / 1e9
			}
			if b, ok := histPick(m.sizes[phaseState][:], rng); ok {
				sp.Bytes = log2Sample(b, rng)
			}
			if b, ok := histPick(m.ops[phaseState][:], rng); ok {
				sp.Op = trace.Op(b)
			}
			switch sub {
			case trace.CPU:
				if b, ok := histPick(m.util[:], rng); ok {
					sp.Util = (float64(b) + rng.Float64()) / utilBuckets
				}
			case trace.Memory:
				if b, ok := histPick(m.banks[:], rng); ok {
					sp.Bank = b
				}
			case trace.Storage:
				region := 0
				if s.storage != nil {
					if storageState < 0 {
						storageState = s.storage.Start(rng)
					} else {
						storageState = s.storage.Step(storageState, rng)
					}
					region = storageState
				}
				sp.LBN = int64(region)*m.blocksPerRegion + rng.Int63n(m.blocksPerRegion)
			}
			start += sp.Duration
			req.Spans = append(req.Spans, sp)
		}
		out.Requests = append(out.Requests, req)
	}
	return out, nil
}

// ClassShare is one class's slice of the merged mix.
type ClassShare struct {
	Class string  `json:"class"`
	Count int64   `json:"count"`
	Share float64 `json:"share"`
}

// Summary is the /v1/characterize answer of a cluster node: the headline
// statistics of the merged global model.
type Summary struct {
	Requests           int64            `json:"requests"`
	Rate               float64          `json:"rate_rps"`
	ArrivalHorizon     float64          `json:"arrival_horizon_s"`
	Classes            []ClassShare     `json:"classes"`
	Spans              map[string]int64 `json:"spans"`
	PhaseTransitions   int64            `json:"phase_transitions"`
	StorageTransitions int64            `json:"storage_transitions"`
	StorageRegions     int              `json:"storage_regions"`
}

// Characterize summarizes the model.
func (m *Model) Characterize() Summary {
	s := Summary{
		Requests:           m.requests,
		ArrivalHorizon:     m.maxArrival,
		Spans:              make(map[string]int64, numSubsystems),
		PhaseTransitions:   m.phase.Transitions(),
		StorageTransitions: m.storage.Transitions(),
		StorageRegions:     m.cfg.StorageRegions,
	}
	if m.maxArrival > 0 {
		s.Rate = float64(m.requests) / m.maxArrival
	}
	classes := make([]string, 0, len(m.classes))
	var total int64
	for c, n := range m.classes {
		classes = append(classes, c)
		total += n
	}
	sort.Strings(classes)
	for _, c := range classes {
		share := 0.0
		if total > 0 {
			share = float64(m.classes[c]) / float64(total)
		}
		s.Classes = append(s.Classes, ClassShare{Class: c, Count: m.classes[c], Share: share})
	}
	for sub := 0; sub < numSubsystems; sub++ {
		var n int64
		for _, c := range m.durs[sub] {
			n += c
		}
		s.Spans[trace.Subsystem(sub).String()] = n
	}
	return s
}
