package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"dcmodel/internal/errs"
	"dcmodel/internal/obs"
	"dcmodel/internal/trace"
)

// Wire constants shared by coordinator and workers.
const (
	// ContentTypeModel tags a marshaled cluster model on the wire.
	ContentTypeModel = "application/x-dcmodel-model-v1"
	// GenerationHeader carries the merge generation of a replicated
	// model (coordinator -> worker) and of an installed replica
	// (worker -> clients).
	GenerationHeader = "X-Dcmodel-Generation"
	// maxModelBytes bounds a model blob accepted over the wire.
	maxModelBytes = 256 << 20
	// maxIngestBytes bounds one ingest body.
	maxIngestBytes = 1 << 30
)

// WorkerConfig configures one cluster worker (the chunkserver role).
type WorkerConfig struct {
	// Model is the shared quantization config; it must match the
	// coordinator's exactly or shard models will refuse to merge.
	Model ModelConfig
	// MaxInflight caps concurrent ingest bodies; excess requests get
	// 429 with Retry-After, same as the single-node daemon's full
	// queue.
	MaxInflight int
	// MaxSynth caps one /v1/synthesize response.
	MaxSynth int
}

// withDefaults fills zero fields.
func (c WorkerConfig) withDefaults() WorkerConfig {
	c.Model = c.Model.withDefaults()
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.MaxSynth == 0 {
		c.MaxSynth = 100000
	}
	return c
}

// installedModel is one immutable replicated global model.
type installedModel struct {
	model      *Model
	generation int64
}

// Worker is one cluster data node: it trains its shard of the request
// stream online and serves queries from the last replicated global
// model, so any node in the cluster answers /v1/synthesize and
// /v1/characterize identically.
type Worker struct {
	cfg WorkerConfig

	// mu serializes shard training, marshal and reset — the
	// markov.Accumulator concurrency contract.
	mu    sync.Mutex
	shard *Model

	// installed holds the replicated global model; replaced whole on
	// install, never mutated, so query paths read it lock-free.
	installed atomic.Pointer[installedModel]

	inflight atomic.Int64

	reg      *obs.Registry
	ingested *obs.Counter
	rejected *obs.Counter
	resets   *obs.Counter
	installs *obs.Counter
	queries  *obs.LabeledCounter
	mux      *http.ServeMux
}

// NewWorker builds a worker (zero config fields defaulted).
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxInflight < 1 {
		return nil, fmt.Errorf("cluster: worker max inflight %d < 1: %w", cfg.MaxInflight, errs.ErrBadConfig)
	}
	shard, err := NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	w := &Worker{cfg: cfg, shard: shard}
	w.reg = obs.NewRegistry()
	w.ingested = w.reg.Counter("dcmodel_cluster_worker_ingested_total", "Requests absorbed into the shard model.")
	w.rejected = w.reg.Counter("dcmodel_cluster_worker_rejected_total", "Ingest bodies rejected with 429 at the inflight cap.")
	w.resets = w.reg.Counter("dcmodel_cluster_worker_resets_total", "Shard resets (rejoin protocol).")
	w.installs = w.reg.Counter("dcmodel_cluster_worker_installs_total", "Replicated global models installed.")
	w.queries = w.reg.LabeledCounter("dcmodel_cluster_worker_queries_total", "Queries served from the installed replica.", "endpoint")
	w.reg.OnScrape(func(set func(name string, v float64)) {
		set("dcmodel_cluster_worker_inflight", float64(w.inflight.Load()))
		set("dcmodel_cluster_worker_shard_requests", float64(w.ShardRequests()))
		set("dcmodel_cluster_worker_generation", float64(w.Generation()))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", w.handleIngest)
	mux.HandleFunc("/v1/model", w.handleModel)
	mux.HandleFunc("/v1/reset", w.handleReset)
	mux.HandleFunc("/v1/synthesize", w.handleSynthesize)
	mux.HandleFunc("/v1/characterize", w.handleCharacterize)
	mux.HandleFunc("/v1/stats", w.handleStats)
	mux.HandleFunc("/healthz", w.handleHealthz)
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) { w.reg.WriteText(rw) })
	w.mux = mux
	return w, nil
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler { return w.mux }

// ShardRequests returns how many requests the shard model has absorbed.
func (w *Worker) ShardRequests() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shard.Requests()
}

// Generation returns the merge generation of the installed replica (0
// before the first replication).
func (w *Worker) Generation() int64 {
	if im := w.installed.Load(); im != nil {
		return im.generation
	}
	return 0
}

// QueueDepth returns the worker's current in-flight ingest count — the
// signal the queue-depth routing scorer consumes.
func (w *Worker) QueueDepth() int64 { return w.inflight.Load() }

// handleIngest absorbs a CSV or trace-v2 body into the shard model.
func (w *Worker) handleIngest(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(rw, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if n := w.inflight.Add(1); n > int64(w.cfg.MaxInflight) {
		w.inflight.Add(-1)
		w.rejected.Inc()
		rw.Header().Set("Retry-After", "1")
		httpError(rw, http.StatusTooManyRequests, "worker ingest at capacity")
		return
	}
	defer w.inflight.Add(-1)

	dec := trace.NewRequestReader(io.LimitReader(r.Body, maxIngestBytes), r.Header.Get("Content-Type"))
	var batch []trace.Request
	for {
		req, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			httpError(rw, http.StatusBadRequest, "decode: %v", err)
			return
		}
		batch = append(batch, req)
	}
	w.mu.Lock()
	for i := range batch {
		w.shard.Observe(batch[i])
	}
	total := w.shard.Requests()
	w.mu.Unlock()
	w.ingested.Add(int64(len(batch)))
	writeJSON(rw, http.StatusOK, map[string]any{"ingested": len(batch), "shard_requests": total})
}

// handleModel serves the shard model (GET, coordinator merge pull) and
// installs a replicated global model (POST, coordinator push).
func (w *Worker) handleModel(rw http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.mu.Lock()
		blob, err := w.shard.MarshalBinary()
		w.mu.Unlock()
		if err != nil {
			httpError(rw, http.StatusInternalServerError, "marshal shard: %v", err)
			return
		}
		rw.Header().Set("Content-Type", ContentTypeModel)
		rw.Write(blob)
	case http.MethodPost:
		blob, err := io.ReadAll(io.LimitReader(r.Body, maxModelBytes+1))
		if err != nil {
			httpError(rw, http.StatusBadRequest, "read model: %v", err)
			return
		}
		if len(blob) > maxModelBytes {
			httpError(rw, http.StatusRequestEntityTooLarge, "model blob exceeds %d bytes", maxModelBytes)
			return
		}
		m, err := UnmarshalModel(blob)
		if err != nil {
			httpError(rw, http.StatusBadRequest, "unmarshal model: %v", err)
			return
		}
		gen, _ := strconv.ParseInt(r.Header.Get(GenerationHeader), 10, 64)
		w.installed.Store(&installedModel{model: m, generation: gen})
		w.installs.Inc()
		writeJSON(rw, http.StatusOK, map[string]any{"installed": true, "generation": gen, "requests": m.Requests()})
	default:
		httpError(rw, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// handleReset discards the shard model — the coordinator resets a
// rejoining worker before routing to it again so requests already
// re-replicated to the survivors are never double-counted.
func (w *Worker) handleReset(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(rw, http.StatusMethodNotAllowed, "POST only")
		return
	}
	fresh, err := NewModel(w.cfg.Model)
	if err != nil {
		httpError(rw, http.StatusInternalServerError, "reset: %v", err)
		return
	}
	w.mu.Lock()
	w.shard = fresh
	w.mu.Unlock()
	w.resets.Inc()
	writeJSON(rw, http.StatusOK, map[string]any{"reset": true})
}

// replica returns the installed global model or fails the request.
func (w *Worker) replica(rw http.ResponseWriter) *installedModel {
	im := w.installed.Load()
	if im == nil {
		httpError(rw, http.StatusServiceUnavailable, "%v: no replicated model installed yet", errs.ErrModelNotTrained)
		return nil
	}
	return im
}

// handleSynthesize generates a trace from the installed replica. Output
// is deterministic in (model bytes, seed), so every node of a converged
// cluster returns the identical trace.
func (w *Worker) handleSynthesize(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		httpError(rw, http.StatusMethodNotAllowed, "GET or POST")
		return
	}
	n, seed, format, err := synthParams(r, w.cfg.MaxSynth)
	if err != nil {
		httpError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	im := w.replica(rw)
	if im == nil {
		return
	}
	tr, err := im.model.Synthesize(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		httpError(rw, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.queries.Add(1, "synthesize")
	rw.Header().Set(GenerationHeader, strconv.FormatInt(im.generation, 10))
	writeTrace(rw, tr, format)
}

// handleCharacterize summarizes the installed replica.
func (w *Worker) handleCharacterize(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(rw, http.StatusMethodNotAllowed, "GET only")
		return
	}
	im := w.replica(rw)
	if im == nil {
		return
	}
	w.queries.Add(1, "characterize")
	rw.Header().Set(GenerationHeader, strconv.FormatInt(im.generation, 10))
	writeJSON(rw, http.StatusOK, im.model.Characterize())
}

// WorkerStats is the /v1/stats answer — the passive signals the
// coordinator's routing scorers consume.
type WorkerStats struct {
	QueueDepth    int64 `json:"queue_depth"`
	ShardRequests int64 `json:"shard_requests"`
	Generation    int64 `json:"generation"`
	Ingested      int64 `json:"ingested_total"`
	Rejected      int64 `json:"rejected_total"`
	Resets        int64 `json:"resets_total"`
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(rw, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(rw, http.StatusOK, WorkerStats{
		QueueDepth:    w.QueueDepth(),
		ShardRequests: w.ShardRequests(),
		Generation:    w.Generation(),
		Ingested:      w.ingested.Value(),
		Rejected:      w.rejected.Value(),
		Resets:        w.resets.Value(),
	})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]any{
		"ok":   true,
		"warm": w.installed.Load() != nil,
	})
}

// httpError writes a JSON error body, mirroring the serving daemon.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// synthParams parses the shared /v1/synthesize query surface.
func synthParams(r *http.Request, maxSynth int) (n int, seed int64, format string, err error) {
	n = 1000
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err = strconv.Atoi(v); err != nil {
			return 0, 0, "", fmt.Errorf("bad n %q", v)
		}
	}
	if n < 1 || n > maxSynth {
		return 0, 0, "", fmt.Errorf("n must be in [1, %d], got %d", maxSynth, n)
	}
	seed = 1
	if v := r.URL.Query().Get("seed"); v != "" {
		if seed, err = strconv.ParseInt(v, 10, 64); err != nil || seed < 1 {
			return 0, 0, "", fmt.Errorf("bad seed %q: need a positive integer", v)
		}
	}
	format = r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	if format != "csv" && format != "json" && format != "binary" {
		return 0, 0, "", fmt.Errorf("format must be csv, json or binary, got %q", format)
	}
	return n, seed, format, nil
}

// writeTrace renders a synthesized trace in the requested format.
func writeTrace(w http.ResponseWriter, tr *trace.Trace, format string) {
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteJSON(w, tr)
	case "binary":
		w.Header().Set("Content-Type", trace.ContentTypeV2)
		trace.WriteBinary(w, tr)
	default:
		w.Header().Set("Content-Type", "text/csv")
		trace.WriteCSV(w, tr)
	}
}
