// Package core re-exports the paper's primary contribution — the KOOZA
// combined workload model — under the canonical layout's core package.
// See dcmodel/internal/kooza for the implementation.
package core

import (
	"dcmodel/internal/kooza"
)

// Re-exported KOOZA types.
type (
	// Model is a trained KOOZA workload model.
	Model = kooza.Model
	// Options configures KOOZA training.
	Options = kooza.Options
	// ClassModel is the per-class model bundle.
	ClassModel = kooza.ClassModel
	// StorageModel is the storage Markov model.
	StorageModel = kooza.StorageModel
	// CPUModel is the processor Markov model.
	CPUModel = kooza.CPUModel
	// MemoryModel is the memory Markov model.
	MemoryModel = kooza.MemoryModel
	// NetworkModel is the arrival-process queueing model.
	NetworkModel = kooza.NetworkModel
)

// Train fits a KOOZA model to a trace.
var Train = kooza.Train
