// Package crossexam is the quantitative harness behind the paper's Table 1:
// it trains the three modeling approaches (in-breadth, in-depth, KOOZA) on
// the same trace, synthesizes workloads from each, and scores them on
// measurable proxies of the table's seven criteria — request features,
// time dependencies, configurability, fine granularity, scalability,
// ease-of-use and completeness — alongside the paper's qualitative
// check-marks.
package crossexam

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"dcmodel/internal/par"
	"dcmodel/internal/prand"
	"dcmodel/internal/replay"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/twin"
)

// Approach wraps one modeling approach for evaluation.
type Approach struct {
	// Name labels the approach ("in-breadth", "in-depth", "KOOZA").
	Name string
	// Setup, when non-nil, runs inside the approach's worker before
	// synthesis — typically model training, filling in Synthesize and
	// NumParams — so the expensive train stage of every approach's
	// train→synth→replay→score chain participates in the fan-out.
	Setup func(a *Approach) error
	// Synthesize generates n synthetic requests. It must be safe for
	// concurrent use with distinct *rand.Rand instances (trained models
	// are read-only after Train).
	Synthesize func(n int, r *rand.Rand) (*trace.Trace, error)
	// NumParams is the trained model's parameter count (ease-of-use).
	NumParams int
	// Knobs is the number of configurable detail knobs (configurability).
	Knobs int
	// SelfTimed marks approaches whose synthetic spans already carry
	// durations (in-depth); others are replayed on the platform.
	SelfTimed bool
	// Twin, when non-nil (typically filled by Setup alongside Synthesize),
	// is the approach's analytical queueing twin. Evaluate scores its
	// closed-form mean response at the trained operating point against the
	// discrete-event result as TwinDeviation; approaches without a twin
	// report -1 there.
	Twin *twin.Twin
}

// Options configures Evaluate.
type Options struct {
	// Seed is the master seed. Approach i synthesizes with its own
	// rand stream derived via SplitMix64 (prand.Derive(Seed, i)), so the
	// scorecard is a fixed function of (trace, approaches, n, Seed) —
	// independent of Workers and of goroutine scheduling.
	Seed int64
	// Workers bounds how many approach chains run concurrently: <= 0
	// selects runtime.GOMAXPROCS(0), 1 is the serial fallback.
	Workers int
	// SkipThroughput zeroes the wall-clock Scalability measurement (the
	// only non-deterministic scorecard entry), making the returned Scores
	// bit-identical across runs and worker counts.
	SkipThroughput bool
}

// Scores is the measured scorecard of one approach. The JSON field tags
// are a stable wire contract: the dcmodeld /v1/characterize response, the
// crossexam -json output and any recorded scorecard artifacts (in the
// snake_case style of the bench2json records) all share this one encoding.
type Scores struct {
	Name string `json:"name"`
	// RequestFeatures is 1 - mean two-sample-KS distance over the
	// subsystem feature distributions (1 = perfect).
	RequestFeatures float64 `json:"request_features"`
	// TimeDependencies is the fraction of synthetic requests whose phase
	// order matches the original class's order.
	TimeDependencies float64 `json:"time_dependencies"`
	// Configurability is the detail-knob count.
	Configurability int `json:"configurability"`
	// FineGranularity is the per-class feature fidelity (1 - mean KS of
	// per-class storage sizes).
	FineGranularity float64 `json:"fine_granularity"`
	// Scalability is the synthesis throughput in requests/second.
	Scalability float64 `json:"scalability_req_per_s"`
	// EaseOfUse is the model parameter count (lower = simpler).
	EaseOfUse int `json:"ease_of_use_params"`
	// LatencyFidelity is 1 - mean per-class relative latency error
	// (clamped at 0).
	LatencyFidelity float64 `json:"latency_fidelity"`
	// Completeness is the geometric mean of RequestFeatures,
	// TimeDependencies and LatencyFidelity.
	Completeness float64 `json:"completeness"`
	// TwinDeviation is the relative gap between the analytical twin's
	// closed-form mean response and the discrete-event mean latency of the
	// same synthetic workload: |analytical - simulated| / simulated
	// (lower = the twin tracks the simulator more closely). -1 when the
	// approach carries no twin or its operating point is saturated.
	TwinDeviation float64 `json:"twin_deviation"`
}

// Evaluate scores every approach against the original trace. n synthetic
// requests are generated per approach; non-self-timed approaches are
// replayed on the platform for latency measurement.
//
// Each approach's full setup→synth→replay→score chain runs as one task of
// a bounded worker pool (opts.Workers goroutines; 1 = serial fallback)
// with its own SplitMix64-derived rand stream, and results are merged in
// approach order — so every Scores field except the wall-clock Scalability
// measurement is independent of the worker count (set opts.SkipThroughput
// for fully bit-identical scorecards).
func Evaluate(orig *trace.Trace, approaches []Approach, n int, platform replay.Platform, opts Options) ([]Scores, error) {
	if orig == nil || orig.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if n < 1 {
		return nil, fmt.Errorf("crossexam: n must be positive, got %d", n)
	}
	modal := modalPhasesByClass(orig)
	out := make([]Scores, len(approaches))
	err := par.Do(len(approaches), opts.Workers, func(i int) error {
		a := approaches[i]
		if a.Setup != nil {
			if err := a.Setup(&a); err != nil {
				return fmt.Errorf("crossexam: %s setup: %w", a.Name, err)
			}
		}
		if a.Synthesize == nil {
			return fmt.Errorf("crossexam: approach %q has no synthesizer", a.Name)
		}
		r := prand.New(opts.Seed, uint64(i))
		start := time.Now()
		synth, err := a.Synthesize(n, r)
		if err != nil {
			return fmt.Errorf("crossexam: %s synthesize: %w", a.Name, err)
		}
		elapsed := time.Since(start).Seconds()
		s := Scores{
			Name:            a.Name,
			Configurability: a.Knobs,
			EaseOfUse:       a.NumParams,
		}
		if elapsed > 0 && !opts.SkipThroughput {
			s.Scalability = float64(n) / elapsed
		}
		s.RequestFeatures = featureScore(orig, synth)
		s.TimeDependencies = timeDepScore(synth, modal)
		s.FineGranularity = granularityScore(orig, synth)
		timed := synth
		if !a.SelfTimed {
			timed, err = replay.Run(synth, platform)
			if err != nil {
				return fmt.Errorf("crossexam: %s replay: %w", a.Name, err)
			}
		}
		s.LatencyFidelity = latencyScore(orig, timed)
		s.Completeness = geoMean3(s.RequestFeatures, s.TimeDependencies, s.LatencyFidelity)
		s.TwinDeviation = twinDeviation(a.Twin, timed)
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// featureScore is 1 - mean KS over the pooled subsystem feature
// distributions.
func featureScore(orig, synth *trace.Trace) float64 {
	features := []struct {
		sub trace.Subsystem
		f   func(trace.Span) float64
	}{
		{trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) }},
		{trace.Storage, func(s trace.Span) float64 { return float64(s.LBN) }},
		{trace.Memory, func(s trace.Span) float64 { return float64(s.Bytes) }},
		{trace.CPU, func(s trace.Span) float64 { return s.Util }},
		{trace.Network, func(s trace.Span) float64 { return float64(s.Bytes) }},
	}
	var total float64
	for _, ft := range features {
		o := orig.SpanFeature(ft.sub, ft.f)
		sy := synth.SpanFeature(ft.sub, ft.f)
		if len(o) == 0 {
			continue
		}
		if len(sy) == 0 {
			total += 1 // feature entirely missing
			continue
		}
		total += stats.KSTest2(o, sy).Statistic
	}
	return clamp01(1 - total/float64(5))
}

// modalPhasesByClass returns each class's most common phase sequence.
func modalPhasesByClass(tr *trace.Trace) map[string][]trace.Subsystem {
	out := make(map[string][]trace.Subsystem)
	counts := make(map[string]map[string]int)
	seqs := make(map[string]map[string][]trace.Subsystem)
	for _, r := range tr.Requests {
		p := r.Phases()
		key := fmt.Sprint(p)
		if counts[r.Class] == nil {
			counts[r.Class] = make(map[string]int)
			seqs[r.Class] = make(map[string][]trace.Subsystem)
		}
		counts[r.Class][key]++
		seqs[r.Class][key] = p
	}
	for class, m := range counts {
		bestKey, bestN := "", -1
		for k, n := range m {
			if n > bestN || (n == bestN && k < bestKey) {
				bestKey, bestN = k, n
			}
		}
		out[class] = seqs[class][bestKey]
	}
	return out
}

// timeDepScore is the fraction of synthetic requests whose phase order
// matches the original order for their class (class-blind approaches are
// matched against every original class; they must match all to score).
func timeDepScore(synth *trace.Trace, modal map[string][]trace.Subsystem) float64 {
	if synth.Len() == 0 {
		return 0
	}
	var matches float64
	for _, r := range synth.Requests {
		want, ok := modal[r.Class]
		if !ok {
			// Class-blind synthetic stream: require a match against all
			// original class orders (they must agree for credit).
			allMatch := len(modal) > 0
			for _, w := range modal {
				if !phasesEqual(r.Phases(), w) {
					allMatch = false
					break
				}
			}
			if allMatch {
				matches++
			}
			continue
		}
		if phasesEqual(r.Phases(), want) {
			matches++
		}
	}
	return matches / float64(synth.Len())
}

func phasesEqual(a, b []trace.Subsystem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// granularityScore is 1 - mean per-class KS on storage I/O sizes: can the
// model reproduce a *specific* class's subsystem behavior (fine-tuning a
// model to a part of the system)?
func granularityScore(orig, synth *trace.Trace) float64 {
	classes := orig.Classes()
	if len(classes) == 0 {
		return 0
	}
	var total float64
	for _, class := range classes {
		o := orig.ByClass(class).SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })
		sClass := synth.ByClass(class)
		var sy []float64
		if sClass.Len() > 0 {
			sy = sClass.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })
		} else {
			// Class-blind model: only its pooled stream is available.
			sy = synth.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })
		}
		if len(o) == 0 {
			continue
		}
		if len(sy) == 0 {
			total += 1
			continue
		}
		total += stats.KSTest2(o, sy).Statistic
	}
	return clamp01(1 - total/float64(len(classes)))
}

// latencyScore is 1 - mean per-class relative error of mean latency.
func latencyScore(orig, timed *trace.Trace) float64 {
	classes := orig.Classes()
	var total float64
	var counted int
	for _, class := range classes {
		o := stats.Mean(orig.ByClass(class).Latencies())
		sClass := timed.ByClass(class)
		var s float64
		if sClass.Len() > 0 {
			s = stats.Mean(sClass.Latencies())
		} else {
			s = stats.Mean(timed.Latencies())
		}
		if o == 0 {
			continue
		}
		total += stats.RelError(o, s)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return clamp01(1 - total/float64(counted))
}

// twinDeviation cross-examines the closed-form path against the
// discrete-event one: the twin answers its baseline what-if (trained load,
// trained layout — the zero Query) and the relative gap to the mean latency
// the simulator actually produced is the score. -1 marks "no twin to
// compare" (nil twin, saturated operating point, or a degenerate
// discrete-event result) and renders as n/a.
func twinDeviation(tw *twin.Twin, timed *trace.Trace) float64 {
	if tw == nil {
		return -1
	}
	ans, err := tw.WhatIf(twin.Query{})
	if err != nil || !ans.Stable {
		return -1
	}
	des := stats.Mean(timed.Latencies())
	if des <= 0 {
		return -1
	}
	return math.Abs(ans.MeanResponseSeconds-des) / des
}

func geoMean3(a, b, c float64) float64 {
	if a <= 0 || b <= 0 || c <= 0 {
		return 0
	}
	return math.Cbrt(a * b * c)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// QualRow is one row of the paper's qualitative Table 1.
type QualRow struct {
	Name  string
	Marks []string // one per column of Columns()
}

// Columns returns the criteria columns of Table 1.
func Columns() []string {
	return []string{
		"Request Features", "Time Dependencies", "Configurability",
		"Fine Granularity", "Scalability", "Ease-of-Use", "Completeness",
	}
}

// QualitativeTable reproduces the paper's Table 1 check-marks
// (reconstructed from the paper's prose and table).
func QualitativeTable() []QualRow {
	return []QualRow{
		{Name: "In-breadth", Marks: []string{"X", "", "", "X", "", "f(Model Complexity)", ""}},
		{Name: "In-depth", Marks: []string{"", "X", "X", "", "X", "X", ""}},
		{Name: "KOOZA", Marks: []string{"X", "X", "X", "X", "X", "X (four simple models)", "X"}},
	}
}

// DeriveQualitative converts measured scores into Table 1 check-marks:
// a criterion is checked when its proxy clears the threshold that
// separates the approaches empirically. Ease-of-use follows the paper's
// annotation style (checked when the parameter count stays small, or
// reported as a function of model complexity otherwise).
func DeriveQualitative(scores []Scores) []QualRow {
	rows := make([]QualRow, 0, len(scores))
	var minParams int
	for i, s := range scores {
		if i == 0 || s.EaseOfUse < minParams {
			minParams = s.EaseOfUse
		}
	}
	for _, s := range scores {
		mark := func(ok bool) string {
			if ok {
				return "X"
			}
			return ""
		}
		ease := "f(Model Complexity)"
		if s.EaseOfUse <= 10*minParams {
			ease = "X"
		}
		rows = append(rows, QualRow{
			Name: s.Name,
			Marks: []string{
				mark(s.RequestFeatures >= 0.8),
				mark(s.TimeDependencies >= 0.8),
				mark(s.Configurability >= 2),
				mark(s.FineGranularity >= 0.8),
				mark(s.Scalability >= 1e4),
				ease,
				mark(s.Completeness >= 0.8),
			},
		})
	}
	return rows
}

// fmtDeviation formats a twin deviation for the scorecard tables: the -1
// "no twin" sentinel renders as n/a rather than a misleading number.
func fmtDeviation(d float64) string {
	if d < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", d)
}

// Render formats the quantitative scorecard plus the qualitative matrix as
// the Table 1 regeneration.
func Render(scores []Scores) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Qualitative comparison (paper):\n")
	fmt.Fprintf(&b, "%-12s", "Model")
	for _, c := range Columns() {
		fmt.Fprintf(&b, " | %-18s", c)
	}
	b.WriteByte('\n')
	for _, row := range QualitativeTable() {
		fmt.Fprintf(&b, "%-12s", row.Name)
		for _, m := range row.Marks {
			fmt.Fprintf(&b, " | %-18s", m)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nQuantitative cross-examination (measured proxies):\n")
	fmt.Fprintf(&b, "%-12s | %-8s | %-8s | %-5s | %-8s | %-12s | %-8s | %-8s | %-8s | %-8s\n",
		"Model", "Features", "TimeDeps", "Knobs", "FineGran", "Synth req/s", "Params", "LatFid", "Complete", "TwinDev")
	for _, s := range scores {
		fmt.Fprintf(&b, "%-12s | %8.3f | %8.3f | %5d | %8.3f | %12.0f | %8d | %8.3f | %8.3f | %8s\n",
			s.Name, s.RequestFeatures, s.TimeDependencies, s.Configurability,
			s.FineGranularity, s.Scalability, s.EaseOfUse, s.LatencyFidelity, s.Completeness,
			fmtDeviation(s.TwinDeviation))
	}
	fmt.Fprintf(&b, "\nCheck-marks derived from the measured proxies:\n")
	fmt.Fprintf(&b, "%-12s", "Model")
	for _, c := range Columns() {
		fmt.Fprintf(&b, " | %-18s", c)
	}
	b.WriteByte('\n')
	for _, row := range DeriveQualitative(scores) {
		fmt.Fprintf(&b, "%-12s", row.Name)
		for _, m := range row.Marks {
			fmt.Fprintf(&b, " | %-18s", m)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
