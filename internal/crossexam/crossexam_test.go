package crossexam

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/inbreadth"
	"dcmodel/internal/indepth"
	"dcmodel/internal/kooza"
	"dcmodel/internal/replay"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// buildApproaches trains the three models and wraps them for evaluation.
func buildApproaches(t *testing.T, tr *trace.Trace) []Approach {
	t.Helper()
	ib, err := inbreadth.Train(tr, inbreadth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := indepth.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	kz, err := kooza.Train(tr, kooza.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return []Approach{
		{Name: "in-breadth", Synthesize: ib.Synthesize, NumParams: ib.NumParams(), Knobs: 3},
		{Name: "in-depth", Synthesize: id.Synthesize, NumParams: id.NumParams(), Knobs: 1, SelfTimed: true},
		{Name: "KOOZA", Synthesize: kz.Synthesize, NumParams: kz.NumParams(), Knobs: 5},
	}
}

func TestEvaluateReproducesTable1Shape(t *testing.T) {
	tr := gfsTrace(t, 3000, 900)
	approaches := buildApproaches(t, tr)
	scores, err := Evaluate(tr, approaches, 3000,
		replay.Platform{NewServer: gfs.DefaultServerHW}, Options{Seed: 901})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	byName := map[string]Scores{}
	for _, s := range scores {
		byName[s.Name] = s
	}
	ib, id, kz := byName["in-breadth"], byName["in-depth"], byName["KOOZA"]

	// Request features: in-breadth and KOOZA good, in-depth poor.
	if ib.RequestFeatures < 0.8 {
		t.Errorf("in-breadth features = %g, want high", ib.RequestFeatures)
	}
	if kz.RequestFeatures < 0.9 {
		t.Errorf("KOOZA features = %g, want high", kz.RequestFeatures)
	}
	if id.RequestFeatures > ib.RequestFeatures || id.RequestFeatures > kz.RequestFeatures {
		t.Errorf("in-depth features %g should be the worst (ib %g, kooza %g)",
			id.RequestFeatures, ib.RequestFeatures, kz.RequestFeatures)
	}

	// Time dependencies: in-depth and KOOZA capture the order, in-breadth
	// cannot.
	if id.TimeDependencies < 0.99 || kz.TimeDependencies < 0.99 {
		t.Errorf("in-depth/KOOZA time deps = %g/%g, want ~1", id.TimeDependencies, kz.TimeDependencies)
	}
	if ib.TimeDependencies > 0.01 {
		t.Errorf("in-breadth time deps = %g, want ~0", ib.TimeDependencies)
	}

	// Fine granularity: KOOZA best; in-depth worst (featureless).
	if kz.FineGranularity < 0.9 {
		t.Errorf("KOOZA granularity = %g", kz.FineGranularity)
	}
	if id.FineGranularity > kz.FineGranularity {
		t.Errorf("in-depth granularity %g above KOOZA %g", id.FineGranularity, kz.FineGranularity)
	}
	if ib.FineGranularity > kz.FineGranularity {
		t.Errorf("in-breadth granularity %g above KOOZA %g (per-class structure lost)", ib.FineGranularity, kz.FineGranularity)
	}

	// Completeness: KOOZA must dominate both baselines — the paper's
	// headline claim.
	if kz.Completeness <= ib.Completeness || kz.Completeness <= id.Completeness {
		t.Errorf("KOOZA completeness %g should dominate (ib %g, id %g)",
			kz.Completeness, ib.Completeness, id.Completeness)
	}
	// KOOZA latency fidelity must be high (Table 2: <= 6.6% deviation).
	if kz.LatencyFidelity < 0.85 {
		t.Errorf("KOOZA latency fidelity = %g", kz.LatencyFidelity)
	}
	// All synthesis rates positive.
	for _, s := range scores {
		if s.Scalability <= 0 {
			t.Errorf("%s scalability = %g", s.Name, s.Scalability)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	tr := gfsTrace(t, 300, 902)
	approaches := buildApproaches(t, tr)
	opts := Options{Seed: 1}
	platform := replay.Platform{NewServer: gfs.DefaultServerHW}
	if _, err := Evaluate(nil, approaches, 10, platform, opts); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Evaluate(tr, approaches, 0, platform, opts); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Evaluate(tr, []Approach{{Name: "x"}}, 10, platform, opts); err == nil {
		t.Error("missing synthesizer should fail")
	}
	failing := []Approach{{Name: "boom", Setup: func(*Approach) error {
		return errors.New("train exploded")
	}}}
	for _, workers := range []int{1, 4} {
		if _, err := Evaluate(tr, failing, 10, platform, Options{Seed: 1, Workers: workers}); err == nil || !strings.Contains(err.Error(), "train exploded") {
			t.Errorf("workers=%d: setup error not propagated: %v", workers, err)
		}
	}
}

// TestEvaluateDeterministicAcrossWorkers is the determinism regression of
// the parallel engine: serial (workers=1) and parallel (workers=8) runs of
// the same seed must return bit-identical Scores.
func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	tr := gfsTrace(t, 1200, 907)
	platform := replay.Platform{NewServer: gfs.DefaultServerHW}
	run := func(workers int) []Scores {
		t.Helper()
		scores, err := Evaluate(tr, buildApproaches(t, tr), 1200, platform,
			Options{Seed: 908, Workers: workers, SkipThroughput: true})
		if err != nil {
			t.Fatal(err)
		}
		return scores
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("score counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		// Scores contains only comparable scalar fields, so == is a
		// bit-identity check.
		if serial[i] != parallel[i] {
			t.Errorf("%s: serial %+v != parallel %+v", serial[i].Name, serial[i], parallel[i])
		}
	}
}

// TestEvaluateSetupRunsInWorker verifies the lazy-training hook: Setup
// fills in the synthesizer and parameter count inside the fan-out, and the
// reported EaseOfUse reflects the trained model.
func TestEvaluateSetupRunsInWorker(t *testing.T) {
	tr := gfsTrace(t, 800, 909)
	lazy := []Approach{{
		Name:  "lazy-kooza",
		Knobs: 5,
		Setup: func(a *Approach) error {
			kz, err := kooza.Train(tr, kooza.Options{})
			if err != nil {
				return err
			}
			a.Synthesize = kz.Synthesize
			a.NumParams = kz.NumParams()
			return nil
		},
	}}
	scores, err := Evaluate(tr, lazy, 800,
		replay.Platform{NewServer: gfs.DefaultServerHW}, Options{Seed: 910, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].EaseOfUse == 0 {
		t.Error("EaseOfUse not taken from the Setup-trained model")
	}
	if scores[0].Completeness <= 0 {
		t.Error("lazy-trained approach scored zero completeness")
	}
}

func TestQualitativeTable(t *testing.T) {
	rows := QualitativeTable()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	cols := Columns()
	for _, row := range rows {
		if len(row.Marks) != len(cols) {
			t.Errorf("row %s has %d marks, want %d", row.Name, len(row.Marks), len(cols))
		}
	}
	// KOOZA checks every column.
	kz := rows[2]
	for i, m := range kz.Marks {
		if !strings.HasPrefix(m, "X") {
			t.Errorf("KOOZA column %s not checked", cols[i])
		}
	}
}

func TestDeriveQualitativeMatchesPaperShape(t *testing.T) {
	tr := gfsTrace(t, 2500, 905)
	approaches := buildApproaches(t, tr)
	scores, err := Evaluate(tr, approaches, 2500,
		replay.Platform{NewServer: gfs.DefaultServerHW}, Options{Seed: 906})
	if err != nil {
		t.Fatal(err)
	}
	derived := DeriveQualitative(scores)
	byName := map[string]QualRow{}
	for _, row := range derived {
		byName[row.Name] = row
	}
	cols := Columns()
	colIdx := func(name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	features := colIdx("Request Features")
	timedeps := colIdx("Time Dependencies")
	complete := colIdx("Completeness")
	// The load-bearing cells of the paper's matrix must emerge from the
	// measurements alone.
	if byName["in-breadth"].Marks[features] != "X" {
		t.Error("in-breadth should earn the request-features check")
	}
	if byName["in-breadth"].Marks[timedeps] == "X" {
		t.Error("in-breadth must not earn time dependencies")
	}
	if byName["in-depth"].Marks[features] == "X" {
		t.Error("in-depth must not earn request features")
	}
	if byName["in-depth"].Marks[timedeps] != "X" {
		t.Error("in-depth should earn time dependencies")
	}
	kz := byName["KOOZA"]
	if kz.Marks[features] != "X" || kz.Marks[timedeps] != "X" || kz.Marks[complete] != "X" {
		t.Errorf("KOOZA should check features/timedeps/completeness: %v", kz.Marks)
	}
	if byName["in-breadth"].Marks[complete] == "X" || byName["in-depth"].Marks[complete] == "X" {
		t.Error("baselines must not earn completeness")
	}
}

func TestRender(t *testing.T) {
	tr := gfsTrace(t, 500, 903)
	approaches := buildApproaches(t, tr)
	scores, err := Evaluate(tr, approaches, 500,
		replay.Platform{NewServer: gfs.DefaultServerHW}, Options{Seed: 904})
	if err != nil {
		t.Fatal(err)
	}
	out := Render(scores)
	for _, want := range []string{"Table 1", "In-breadth", "In-depth", "KOOZA", "Completeness", "TimeDeps"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
