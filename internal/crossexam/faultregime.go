package crossexam

import (
	"fmt"
	"strings"
)

// Comparison criteria: the measured proxies that can move between regimes.
// The structural columns (knobs, parameter count) are fixed properties of
// the approaches and the wall-clock throughput is non-deterministic, so
// none of them belongs in a regime delta.
var comparisonCriteria = []struct {
	name string
	get  func(Scores) float64
}{
	{"Features", func(s Scores) float64 { return s.RequestFeatures }},
	{"TimeDeps", func(s Scores) float64 { return s.TimeDependencies }},
	{"FineGran", func(s Scores) float64 { return s.FineGranularity }},
	{"LatFid", func(s Scores) float64 { return s.LatencyFidelity }},
	{"Complete", func(s Scores) float64 { return s.Completeness }},
	{"TwinDev", func(s Scores) float64 { return s.TwinDeviation }},
}

// RenderComparison formats the fault-regime cross-examination: the measured
// proxies of the healthy baseline next to the degraded regime's, with
// deltas, one Table-1-style row per approach. Approaches are matched by
// name; a baseline row with no degraded counterpart is skipped. Render (the
// healthy Table 1 regeneration) is untouched — this is an additional report
// for traces and platforms with a fault scenario armed.
func RenderComparison(healthy, degraded []Scores) string {
	byName := make(map[string]Scores, len(degraded))
	for _, s := range degraded {
		byName[s.Name] = s
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-regime cross-examination (healthy -> degraded):\n")
	fmt.Fprintf(&b, "%-12s", "Model")
	for _, c := range comparisonCriteria {
		fmt.Fprintf(&b, " | %-25s", c.name)
	}
	b.WriteByte('\n')
	for _, h := range healthy {
		d, ok := byName[h.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s", h.Name)
		for _, c := range comparisonCriteria {
			hv, dv := c.get(h), c.get(d)
			if hv < 0 || dv < 0 {
				// The -1 "no twin" sentinel has no meaningful delta.
				fmt.Fprintf(&b, " | %6s -> %6s (%6s)", "n/a", "n/a", "n/a")
				continue
			}
			fmt.Fprintf(&b, " | %6.3f -> %6.3f (%+.3f)", hv, dv, dv-hv)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
