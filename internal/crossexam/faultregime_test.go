package crossexam

import (
	"math/rand"
	"strings"
	"testing"

	"dcmodel/internal/fault"
	"dcmodel/internal/gfs"
	"dcmodel/internal/replay"
	"dcmodel/internal/trace"
)

// TestEvaluateDegradedPlatform: an armed fault scenario on the replay
// platform lowers latency fidelity (requeues stretch latencies) without
// touching the synthesis-side criteria, and the degraded evaluation stays
// deterministic across worker counts.
func TestEvaluateDegradedPlatform(t *testing.T) {
	tr := gfsTrace(t, 1500, 911)
	// The identity approach replays the original requests, isolating the
	// platform's contribution to the scorecard.
	identity := func() []Approach {
		return []Approach{{
			Name:  "identity",
			Knobs: 1,
			Synthesize: func(n int, r *rand.Rand) (*trace.Trace, error) {
				if n > tr.Len() {
					n = tr.Len()
				}
				out := &trace.Trace{Requests: append([]trace.Request(nil), tr.Requests[:n]...)}
				return out, nil
			},
			NumParams: 1,
		}}
	}
	healthyPlatform := replay.Platform{NewServer: gfs.DefaultServerHW}
	degradedPlatform := replay.Platform{
		NewServer: gfs.DefaultServerHW,
		Faults:    &fault.Config{MTBF: 2, MTTR: 0.5, Seed: 9},
	}
	opts := Options{Seed: 912, SkipThroughput: true}
	healthy, err := Evaluate(tr, identity(), 1500, healthyPlatform, opts)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Evaluate(tr, identity(), 1500, degradedPlatform, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, d := healthy[0], degraded[0]
	if d.RequestFeatures != h.RequestFeatures || d.TimeDependencies != h.TimeDependencies ||
		d.FineGranularity != h.FineGranularity {
		t.Errorf("degraded replay moved synthesis-side criteria: healthy %+v degraded %+v", h, d)
	}
	if d.LatencyFidelity >= h.LatencyFidelity {
		t.Errorf("degraded latency fidelity %g not below healthy %g", d.LatencyFidelity, h.LatencyFidelity)
	}

	opts.Workers = 8
	again, err := Evaluate(tr, identity(), 1500, degradedPlatform, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != d {
		t.Errorf("degraded evaluation depends on worker count: %+v vs %+v", again[0], d)
	}
}

func TestRenderComparison(t *testing.T) {
	healthy := []Scores{
		{Name: "in-breadth", RequestFeatures: 0.9, TimeDependencies: 0.0, FineGranularity: 0.8, LatencyFidelity: 0.7, Completeness: 0.0},
		{Name: "KOOZA", RequestFeatures: 0.95, TimeDependencies: 1.0, FineGranularity: 0.9, LatencyFidelity: 0.9, Completeness: 0.95},
		{Name: "orphan", RequestFeatures: 0.5},
	}
	degraded := []Scores{
		{Name: "in-breadth", RequestFeatures: 0.9, TimeDependencies: 0.0, FineGranularity: 0.8, LatencyFidelity: 0.4, Completeness: 0.0},
		{Name: "KOOZA", RequestFeatures: 0.95, TimeDependencies: 1.0, FineGranularity: 0.9, LatencyFidelity: 0.6, Completeness: 0.8},
	}
	out := RenderComparison(healthy, degraded)
	for _, want := range []string{
		"Fault-regime cross-examination",
		"in-breadth", "KOOZA",
		"LatFid", "Complete",
		"0.700 ->  0.400 (-0.300)", // in-breadth latency fidelity delta
		"0.950 ->  0.800 (-0.150)", // KOOZA completeness delta
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "orphan") {
		t.Error("baseline row without a degraded counterpart was rendered")
	}
	if n := strings.Count(out, "\n"); n != 4 {
		t.Errorf("comparison has %d lines, want 4 (title, header, 2 rows)", n)
	}
}
