package crossexam

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files under testdata/")

// goldenScores is a fixed scorecard (no wall-clock, no rand) so the golden
// bytes pin the Render formatting itself.
func goldenScores() []Scores {
	return []Scores{
		{
			Name: "in-breadth", RequestFeatures: 0.941, TimeDependencies: 0.002,
			Configurability: 3, FineGranularity: 0.858, Scalability: 1.25e6,
			EaseOfUse: 5120, LatencyFidelity: 0.612, Completeness: 0.104,
			TwinDeviation: 0.183,
		},
		{
			Name: "in-depth", RequestFeatures: 0.389, TimeDependencies: 1,
			Configurability: 1, FineGranularity: 0.402, Scalability: 2.5e6,
			EaseOfUse: 23, LatencyFidelity: 0.951, Completeness: 0.717,
			TwinDeviation: -1,
		},
		{
			Name: "KOOZA", RequestFeatures: 0.973, TimeDependencies: 1,
			Configurability: 5, FineGranularity: 0.955, Scalability: 9.8e5,
			EaseOfUse: 5200, LatencyFidelity: 0.957, Completeness: 0.976,
			TwinDeviation: 0.047,
		},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/crossexam/ -run Golden -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file (re-run with -update if intentional)\n got:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestRenderGolden(t *testing.T) {
	checkGolden(t, "render.golden", Render(goldenScores()))
}

func TestQualitativeTableGolden(t *testing.T) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", strings.Join(Columns(), " | "))
	for _, row := range QualitativeTable() {
		fmt.Fprintf(&b, "%s: %s\n", row.Name, strings.Join(row.Marks, " | "))
	}
	checkGolden(t, "qualitative.golden", b.String())
}
