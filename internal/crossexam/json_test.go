package crossexam

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestScoresJSONTagsStable pins the wire contract of Scores: the field
// tags are shared by /v1/characterize, crossexam -json and any recorded
// artifacts, so a renamed tag is a breaking change this test must catch.
func TestScoresJSONTagsStable(t *testing.T) {
	want := []string{
		"completeness",
		"configurability",
		"ease_of_use_params",
		"fine_granularity",
		"latency_fidelity",
		"name",
		"request_features",
		"scalability_req_per_s",
		"time_dependencies",
		"twin_deviation",
	}
	typ := reflect.TypeOf(Scores{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		tag := typ.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Errorf("field %s has no stable json tag", typ.Field(i).Name)
			continue
		}
		got = append(got, tag)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Scores json tags = %v, want %v", got, want)
	}

	// Round trip preserves every value exactly.
	in := Scores{
		Name: "KOOZA", RequestFeatures: 0.9, TimeDependencies: 0.8,
		Configurability: 5, FineGranularity: 0.7, Scalability: 12345,
		EaseOfUse: 42, LatencyFidelity: 0.6, Completeness: 0.75,
		TwinDeviation: 0.05,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Scores
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}
