package dapper

import (
	"fmt"
	"sort"
	"strings"

	"dcmodel/internal/stats"
)

// Path-based anomaly detection in the style of Pinpoint (which the paper
// groups with Dapper and Magpie): group sampled trace trees by their path
// signature, then flag trees on rare paths (possible failures or
// mis-routing) and latency outliers within their path group — the "error
// detection" study the paper says only in-depth data enables.

// AnomalyKind classifies a flagged tree.
type AnomalyKind int

// Anomaly kinds.
const (
	// RarePath marks trees whose path signature is seen in fewer than
	// RarePathShare of the sampled population.
	RarePath AnomalyKind = iota
	// LatencyOutlier marks trees far above their path group's typical
	// latency.
	LatencyOutlier
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	switch k {
	case RarePath:
		return "rare-path"
	case LatencyOutlier:
		return "latency-outlier"
	default:
		return fmt.Sprintf("anomaly(%d)", int(k))
	}
}

// Anomaly is one flagged trace tree.
type Anomaly struct {
	Kind AnomalyKind
	// Tree is the flagged trace.
	Tree *Tree
	// Path is the tree's path signature.
	Path string
	// Detail explains the flag.
	Detail string
}

// DetectorOptions configures detection.
type DetectorOptions struct {
	// RarePathShare: paths below this share are flagged. Default 0.01.
	RarePathShare float64
	// OutlierIQRs: latency above p75 + OutlierIQRs*(p75-p25) within the
	// path group is flagged. Default 3.
	OutlierIQRs float64
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.RarePathShare <= 0 {
		o.RarePathShare = 0.01
	}
	if o.OutlierIQRs <= 0 {
		o.OutlierIQRs = 3
	}
	return o
}

// PathSignature renders a tree's structure as a canonical string (span
// names in depth-first order).
func PathSignature(t *Tree) string {
	var parts []string
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n == nil {
			return
		}
		parts = append(parts, fmt.Sprintf("%d:%s", depth, n.Span.Name))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return strings.Join(parts, ">")
}

// Detect flags anomalous trees. It needs a reasonable population (>= 20
// trees) to establish path and latency baselines.
func Detect(trees []*Tree, opts DetectorOptions) ([]Anomaly, error) {
	if len(trees) < 20 {
		return nil, fmt.Errorf("dapper: need >= 20 trees to detect anomalies, got %d", len(trees))
	}
	opts = opts.withDefaults()
	groups := make(map[string][]*Tree)
	for _, t := range trees {
		sig := PathSignature(t)
		groups[sig] = append(groups[sig], t)
	}
	var out []Anomaly
	sigs := make([]string, 0, len(groups))
	for sig := range groups {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		group := groups[sig]
		share := float64(len(group)) / float64(len(trees))
		if share < opts.RarePathShare {
			for _, t := range group {
				out = append(out, Anomaly{
					Kind: RarePath, Tree: t, Path: sig,
					Detail: fmt.Sprintf("path share %.3f%% (%d of %d)", 100*share, len(group), len(trees)),
				})
			}
			continue
		}
		// Latency outliers within the (common-path) group.
		lats := make([]float64, len(group))
		for i, t := range group {
			lats[i] = t.Latency()
		}
		p25 := stats.Quantile(lats, 0.25)
		p75 := stats.Quantile(lats, 0.75)
		iqr := p75 - p25
		threshold := p75 + opts.OutlierIQRs*iqr
		if iqr <= 0 {
			continue
		}
		for _, t := range group {
			if l := t.Latency(); l > threshold {
				out = append(out, Anomaly{
					Kind: LatencyOutlier, Tree: t, Path: sig,
					Detail: fmt.Sprintf("latency %.3fms above p75+%.0f*IQR = %.3fms",
						1000*l, opts.OutlierIQRs, 1000*threshold),
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Tree.Root.Span.Start < out[j].Tree.Root.Span.Start
	})
	return out, nil
}
