package dapper

import (
	"math/rand"
	"strings"
	"testing"

	"dcmodel/internal/trace"
)

// makeTrees builds n normal trees with a common path and controlled
// latencies.
func makeTrees(n int, r *rand.Rand) []*Tree {
	trees := make([]*Tree, 0, n)
	for i := 0; i < n; i++ {
		req := trace.Request{
			ID: int64(i), Class: "read", Arrival: float64(i),
			Spans: []trace.Span{
				{Subsystem: trace.Network, Start: float64(i), Duration: 0.001},
				{Subsystem: trace.Storage, Start: float64(i) + 0.001, Duration: 0.008 + 0.002*r.Float64()},
				{Subsystem: trace.Network, Start: float64(i) + 0.010, Duration: 0.001},
			},
		}
		trees = append(trees, FromRequest(req))
	}
	return trees
}

func TestDetectRarePath(t *testing.T) {
	r := rand.New(rand.NewSource(170))
	trees := makeTrees(500, r)
	// One request takes a deviant path (an extra retry phase).
	odd := trace.Request{
		ID: 9999, Class: "read", Arrival: 600,
		Spans: []trace.Span{
			{Subsystem: trace.Network, Start: 600, Duration: 0.001},
			{Subsystem: trace.Storage, Start: 600.001, Duration: 0.008},
			{Subsystem: trace.Storage, Start: 600.009, Duration: 0.008},
			{Subsystem: trace.Network, Start: 600.017, Duration: 0.001},
		},
	}
	trees = append(trees, FromRequest(odd))
	anomalies, err := Detect(trees, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rare []Anomaly
	for _, a := range anomalies {
		if a.Kind == RarePath {
			rare = append(rare, a)
		}
	}
	if len(rare) != 1 {
		t.Fatalf("rare-path anomalies = %d, want 1", len(rare))
	}
	if rare[0].Tree.Root.Span.Trace != TraceID(odd.ID+1) {
		t.Error("wrong tree flagged")
	}
	if !strings.Contains(rare[0].Detail, "path share") {
		t.Errorf("detail = %q", rare[0].Detail)
	}
	if rare[0].Kind.String() != "rare-path" {
		t.Errorf("kind string = %q", rare[0].Kind)
	}
}

func TestDetectLatencyOutlier(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	trees := makeTrees(500, r)
	// Same path, pathological latency (a stuck disk).
	slow := trace.Request{
		ID: 8888, Class: "read", Arrival: 700,
		Spans: []trace.Span{
			{Subsystem: trace.Network, Start: 700, Duration: 0.001},
			{Subsystem: trace.Storage, Start: 700.001, Duration: 0.5},
			{Subsystem: trace.Network, Start: 700.501, Duration: 0.001},
		},
	}
	trees = append(trees, FromRequest(slow))
	anomalies, err := Detect(trees, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var outliers []Anomaly
	for _, a := range anomalies {
		if a.Kind == LatencyOutlier {
			outliers = append(outliers, a)
		}
	}
	if len(outliers) != 1 {
		t.Fatalf("latency outliers = %d, want 1", len(outliers))
	}
	if outliers[0].Tree.Root.Span.Trace != TraceID(slow.ID+1) {
		t.Error("wrong tree flagged")
	}
}

func TestDetectCleanPopulation(t *testing.T) {
	r := rand.New(rand.NewSource(172))
	trees := makeTrees(300, r)
	anomalies, err := Detect(trees, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) != 0 {
		t.Errorf("clean population flagged %d anomalies: %+v", len(anomalies), anomalies[0])
	}
}

func TestDetectErrors(t *testing.T) {
	r := rand.New(rand.NewSource(173))
	if _, err := Detect(makeTrees(5, r), DetectorOptions{}); err == nil {
		t.Error("tiny population should fail")
	}
}

func TestPathSignature(t *testing.T) {
	r := rand.New(rand.NewSource(174))
	trees := makeTrees(2, r)
	if PathSignature(trees[0]) != PathSignature(trees[1]) {
		t.Error("identical structures should share a signature")
	}
	if !strings.Contains(PathSignature(trees[0]), "phase:storage") {
		t.Errorf("signature = %q", PathSignature(trees[0]))
	}
}
