package dapper

import (
	"fmt"
	"strings"

	"dcmodel/internal/trace"
)

// Bridge between Dapper trace trees and the flat per-subsystem schema of
// internal/trace. Converting a request into a tree models what an
// instrumented application would report; converting back shows the paper's
// criticism of tracing infrastructures in action: the tree preserves
// control flow and timing but "lack[s] the ability to model and recreate
// the characteristics of a workload apart from its network traffic" — the
// subsystem features (sizes, LBNs, banks) survive only as annotations.

const phasePrefix = "phase:"

// FromRequest builds the trace tree an instrumented server would emit for
// one request: a root span covering the whole request with one child span
// per subsystem phase, annotated with the phase's features.
func FromRequest(r trace.Request) *Tree {
	root := &Node{Span: &Span{
		Trace: TraceID(r.ID + 1), ID: 1,
		Name: "request:" + r.Class, Server: r.Server,
		Start: r.Arrival, End: r.Arrival + r.Latency(),
	}}
	tree := &Tree{Root: root, Count: 1}
	for i, s := range r.Spans {
		child := &Node{Span: &Span{
			Trace: root.Span.Trace, ID: SpanID(i + 2), Parent: root.Span.ID,
			Name: phasePrefix + s.Subsystem.String(), Server: r.Server,
			Start: s.Start, End: s.End(),
		}}
		child.Span.Annotations = featureAnnotations(s)
		root.Children = append(root.Children, child)
		tree.Count++
	}
	return tree
}

func featureAnnotations(s trace.Span) []Annotation {
	var out []Annotation
	switch s.Subsystem {
	case trace.Network:
		out = append(out, Annotation{Time: s.Start, Message: fmt.Sprintf("bytes=%d", s.Bytes)})
	case trace.CPU:
		out = append(out, Annotation{Time: s.Start, Message: fmt.Sprintf("util=%.4f bytes=%d", s.Util, s.Bytes)})
	case trace.Memory:
		out = append(out, Annotation{Time: s.Start, Message: fmt.Sprintf("bank=%d bytes=%d op=%s", s.Bank, s.Bytes, s.Op)})
	case trace.Storage:
		out = append(out, Annotation{Time: s.Start, Message: fmt.Sprintf("lbn=%d bytes=%d op=%s", s.LBN, s.Bytes, s.Op)})
	}
	return out
}

// ToRequest reconstructs a flat request from a phase tree. Only control
// flow and timing survive: subsystem features are zero, exactly the
// information an in-depth tracing tool retains for modeling.
func ToRequest(t *Tree) (trace.Request, error) {
	if t.Root == nil || t.Root.Span == nil {
		return trace.Request{}, fmt.Errorf("dapper: empty tree")
	}
	root := t.Root.Span
	class := strings.TrimPrefix(root.Name, "request:")
	req := trace.Request{
		ID:      int64(root.Trace) - 1,
		Class:   class,
		Server:  root.Server,
		Arrival: root.Start,
	}
	for _, c := range t.Root.Children {
		name := c.Span.Name
		if !strings.HasPrefix(name, phasePrefix) {
			return trace.Request{}, fmt.Errorf("dapper: unexpected child span %q", name)
		}
		sub, err := trace.ParseSubsystem(strings.TrimPrefix(name, phasePrefix))
		if err != nil {
			return trace.Request{}, err
		}
		req.Spans = append(req.Spans, trace.Span{
			Subsystem: sub,
			Start:     c.Span.Start,
			Duration:  c.Span.Duration(),
		})
	}
	return req, nil
}

// RecordWorkload replays a whole workload trace through deterministic
// 1-in-sampleEvery head sampling, the way a deployed Dapper samples
// production traffic, and delivers each sampled request's span tree
// (FromRequest, features as annotations) to rec. It returns how many
// requests were seen and how many were recorded — the tracing overhead
// proxy the paper quotes (1 out of 1000 requests for <1.5% overhead).
func RecordWorkload(tr *trace.Trace, sampleEvery int, rec Recorder) (started, sampled int64, err error) {
	if sampleEvery < 1 {
		return 0, 0, fmt.Errorf("dapper: sampleEvery must be >= 1, got %d", sampleEvery)
	}
	if rec == nil {
		return 0, 0, fmt.Errorf("dapper: RecordWorkload needs a Recorder")
	}
	if tr == nil {
		return 0, 0, fmt.Errorf("dapper: RecordWorkload needs a trace")
	}
	for _, r := range tr.Requests {
		started++
		if (started-1)%int64(sampleEvery) != 0 {
			continue
		}
		sampled++
		rec.Record(FromRequest(r))
	}
	return started, sampled, nil
}

// TraceWorkload replays a whole workload trace through a sampling tracer
// and returns the tracer. sampleEvery keeps 1 of every N requests.
//
// Deprecated: use RecordWorkload with a Recorder (e.g. a *Collector) —
// the tracer-shaped spelling is kept behavior-identical for existing
// callers, but new instrumentation should target the Recorder seam so
// collectors, ring buffers and samplers compose.
func TraceWorkload(tr *trace.Trace, sampleEvery int) (*Tracer, error) {
	t, err := NewTracer(sampleEvery)
	if err != nil {
		return nil, err
	}
	for _, r := range tr.Requests {
		root, sampled := t.StartTrace("request:"+r.Class, r.Arrival, r.Server)
		if sampled {
			for _, s := range r.Spans {
				child := root.Child(phasePrefix+s.Subsystem.String(), s.Start, r.Server)
				for _, a := range featureAnnotations(s) {
					child.Annotate(a.Time, a.Message)
				}
				child.Finish(s.End())
			}
		}
		root.Finish(r.Arrival + r.Latency())
	}
	return t, nil
}
