// Package dapper is a lightweight distributed-tracing substrate in the
// style of Google's Dapper, which the paper describes as the archetypal
// in-depth data-collection infrastructure: requests are traced "the moment
// [they arrive] in the front-end server and until the response is sent to
// the originating client", using "trees of nested RPCs, spans (i.e. tree
// nodes) and annotations", with 1-out-of-N sampling for low overhead and a
// unique global identifier tying every message to its originating request.
//
// The tracer here provides exactly those mechanisms — trace trees of
// nested spans with annotations, deterministic 1/N head sampling, and
// overhead accounting — plus a bridge to the flat per-subsystem trace
// schema the modeling packages consume.
package dapper

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TraceID is the unique global identifier of one request's trace tree.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// Annotation is a timestamped note attached to a span (Dapper's
// application annotations).
type Annotation struct {
	Time    float64
	Message string
}

// Span is one node of a trace tree: a timed operation on one server,
// possibly nested under a parent span.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // 0 for the root span
	// Name identifies the operation, e.g. "gfs.Read" or "rpc:disk.io".
	Name string
	// Server is the machine the span executed on.
	Server int
	// Start and End bound the span in seconds.
	Start, End float64
	// Annotations holds the span's timestamped notes.
	Annotations []Annotation
}

// Duration returns the span length.
func (s *Span) Duration() float64 { return s.End - s.Start }

// Tracer collects sampled trace trees. It applies deterministic head
// sampling: every SampleEvery-th trace is recorded, the rest are counted
// but dropped (Dapper records 1 in 1024 by default; the paper quotes
// sampling 1 out of 1000 requests for <1.5% overhead).
type Tracer struct {
	// SampleEvery keeps 1 of every SampleEvery traces (1 = keep all).
	SampleEvery int

	nextTrace TraceID
	nextSpan  SpanID
	started   int64
	sampled   int64
	spans     map[TraceID][]*Span
	open      map[SpanID]*Span
}

// NewTracer returns a tracer keeping 1 of every sampleEvery traces.
func NewTracer(sampleEvery int) (*Tracer, error) {
	if sampleEvery < 1 {
		return nil, fmt.Errorf("dapper: sampleEvery must be >= 1, got %d", sampleEvery)
	}
	return &Tracer{
		SampleEvery: sampleEvery,
		spans:       make(map[TraceID][]*Span),
		open:        make(map[SpanID]*Span),
	}, nil
}

// ActiveSpan is a started, not-yet-finished span.
type ActiveSpan struct {
	t    *Tracer
	span *Span
	// sampled indicates whether this trace is being recorded; unsampled
	// spans are no-ops, mirroring Dapper's negligible-overhead path.
	sampled bool
}

// StartTrace begins a new trace with a root span. The boolean reports
// whether the trace was sampled; unsampled traces return a no-op span.
func (t *Tracer) StartTrace(name string, at float64, server int) (*ActiveSpan, bool) {
	t.started++
	t.nextTrace++
	sampled := (t.started-1)%int64(t.SampleEvery) == 0
	if !sampled {
		return &ActiveSpan{t: t}, false
	}
	t.sampled++
	t.nextSpan++
	s := &Span{Trace: t.nextTrace, ID: t.nextSpan, Name: name, Server: server, Start: at, End: at}
	t.spans[s.Trace] = append(t.spans[s.Trace], s)
	t.open[s.ID] = s
	return &ActiveSpan{t: t, span: s, sampled: true}, true
}

// Child starts a nested span (an outgoing RPC or a local phase).
func (a *ActiveSpan) Child(name string, at float64, server int) *ActiveSpan {
	if !a.sampled {
		return &ActiveSpan{t: a.t}
	}
	t := a.t
	t.nextSpan++
	s := &Span{
		Trace: a.span.Trace, ID: t.nextSpan, Parent: a.span.ID,
		Name: name, Server: server, Start: at, End: at,
	}
	t.spans[s.Trace] = append(t.spans[s.Trace], s)
	t.open[s.ID] = s
	return &ActiveSpan{t: t, span: s, sampled: true}
}

// Annotate attaches a timestamped message to the span.
func (a *ActiveSpan) Annotate(at float64, message string) {
	if !a.sampled {
		return
	}
	a.span.Annotations = append(a.span.Annotations, Annotation{Time: at, Message: message})
}

// Finish closes the span at the given time. Finishing before the start
// time clamps to the start.
func (a *ActiveSpan) Finish(at float64) {
	if !a.sampled {
		return
	}
	if at < a.span.Start {
		at = a.span.Start
	}
	a.span.End = at
	delete(a.t.open, a.span.ID)
}

// Sampled reports whether this span's trace is being recorded.
func (a *ActiveSpan) Sampled() bool { return a.sampled }

// SamplingStats reports traces started vs recorded — the tracer's
// effective overhead proxy.
func (t *Tracer) SamplingStats() (started, sampled int64) { return t.started, t.sampled }

// Recorder consumes assembled trace trees. It is the single
// instrumentation seam shared by everything that emits Dapper-style
// traces: the GFS simulator (gfs.RunConfig.Recorder), the replay engine
// (replay.Platform.Recorder) and the serving daemon's live pipeline
// tracer all deliver finished trees to a Recorder, and collectors —
// in-memory lists, ring buffers, sampling or teeing decorators — compose
// behind it.
//
// A Recorder wired into a concurrent producer (the sharded simulator, the
// daemon) must be safe for concurrent Record calls; Collector and the
// obs-package recorders are.
type Recorder interface {
	// Record delivers one finished trace tree. Implementations must not
	// mutate the tree; producers hand over ownership and do not touch it
	// again.
	Record(*Tree)
}

// Collector is the simplest Recorder: a concurrency-safe in-memory list
// of every recorded tree, in arrival order.
type Collector struct {
	mu    sync.Mutex
	trees []*Tree
}

// Record appends the tree.
func (c *Collector) Record(t *Tree) {
	c.mu.Lock()
	c.trees = append(c.trees, t)
	c.mu.Unlock()
}

// Trees returns a copy of the recorded trees, in arrival order.
func (c *Collector) Trees() []*Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Tree(nil), c.trees...)
}

// Len reports how many trees have been recorded.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.trees)
}

// Node is one node of an assembled trace tree.
type Node struct {
	Span     *Span
	Children []*Node
}

// Tree is one request's assembled trace.
type Tree struct {
	Root *Node
	// Count is the number of spans in the tree.
	Count int
}

// Depth returns the maximum nesting depth (root = 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.Children {
		if d := depth(c); d > best {
			best = d
		}
	}
	return best + 1
}

// Latency returns the root span's duration.
func (t *Tree) Latency() float64 {
	if t.Root == nil || t.Root.Span == nil {
		return 0
	}
	return t.Root.Span.Duration()
}

// Trees assembles every recorded trace into a tree, ordered by root start
// time. Traces with open spans or a missing root are skipped with an
// error.
func (t *Tracer) Trees() ([]*Tree, error) {
	if len(t.open) > 0 {
		return nil, fmt.Errorf("dapper: %d spans still open", len(t.open))
	}
	var out []*Tree
	for _, spans := range t.spans {
		byID := make(map[SpanID]*Node, len(spans))
		for _, s := range spans {
			byID[s.ID] = &Node{Span: s}
		}
		var root *Node
		for _, s := range spans {
			n := byID[s.ID]
			if s.Parent == 0 {
				if root != nil {
					return nil, fmt.Errorf("dapper: trace %d has multiple roots", s.Trace)
				}
				root = n
				continue
			}
			parent, ok := byID[s.Parent]
			if !ok {
				return nil, fmt.Errorf("dapper: trace %d span %d has unknown parent %d", s.Trace, s.ID, s.Parent)
			}
			parent.Children = append(parent.Children, n)
		}
		if root == nil {
			return nil, fmt.Errorf("dapper: trace with no root span")
		}
		sortChildren(root)
		out = append(out, &Tree{Root: root, Count: len(spans)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Root.Span.Start < out[j].Root.Span.Start })
	return out, nil
}

func sortChildren(n *Node) {
	sort.Slice(n.Children, func(i, j int) bool {
		a, b := n.Children[i].Span, n.Children[j].Span
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	for _, c := range n.Children {
		sortChildren(c)
	}
}

// Render formats a tree as an indented span listing (the Dapper UI's
// waterfall, in ASCII).
func (t *Tree) Render() string {
	var b strings.Builder
	renderNode(&b, t.Root, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, indent int) {
	if n == nil {
		return
	}
	fmt.Fprintf(b, "%s%s [server %d] %.4f..%.4f (%.4f ms)",
		strings.Repeat("  ", indent), n.Span.Name, n.Span.Server,
		n.Span.Start, n.Span.End, 1000*n.Span.Duration())
	for _, a := range n.Span.Annotations {
		fmt.Fprintf(b, " {%.4f: %s}", a.Time, a.Message)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, indent+1)
	}
}
