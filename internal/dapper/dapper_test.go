package dapper

import (
	"math"
	"strings"
	"testing"

	"dcmodel/internal/trace"
)

func TestTracerBasics(t *testing.T) {
	tr, err := NewTracer(1)
	if err != nil {
		t.Fatal(err)
	}
	root, sampled := tr.StartTrace("request:read", 0, 0)
	if !sampled || !root.Sampled() {
		t.Fatal("sampleEvery=1 should sample everything")
	}
	rpc := root.Child("rpc:chunkserver.Read", 0.001, 1)
	rpc.Annotate(0.002, "bytes=65536")
	disk := rpc.Child("phase:storage", 0.002, 1)
	disk.Finish(0.009)
	rpc.Finish(0.010)
	root.Finish(0.011)

	trees, err := tr.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	tree := trees[0]
	if tree.Count != 3 || tree.Depth() != 3 {
		t.Errorf("count=%d depth=%d, want 3/3", tree.Count, tree.Depth())
	}
	if tree.Latency() != 0.011 {
		t.Errorf("latency = %g", tree.Latency())
	}
	rendered := tree.Render()
	for _, want := range []string{"request:read", "rpc:chunkserver.Read", "phase:storage", "bytes=65536"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

func TestTracerSampling(t *testing.T) {
	tr, err := NewTracer(10)
	if err != nil {
		t.Fatal(err)
	}
	var kept int
	for i := 0; i < 100; i++ {
		root, sampled := tr.StartTrace("r", float64(i), 0)
		if sampled {
			kept++
			child := root.Child("c", float64(i), 0)
			child.Finish(float64(i) + 0.5)
		} else {
			// Unsampled spans must be harmless no-ops.
			c := root.Child("c", float64(i), 0)
			c.Annotate(float64(i), "dropped")
			c.Finish(float64(i))
		}
		root.Finish(float64(i) + 1)
	}
	if kept != 10 {
		t.Errorf("kept %d of 100, want 10", kept)
	}
	started, sampled := tr.SamplingStats()
	if started != 100 || sampled != 10 {
		t.Errorf("stats = %d/%d", started, sampled)
	}
	trees, err := tr.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 10 {
		t.Errorf("trees = %d", len(trees))
	}
	// Trees are ordered by start time.
	for i := 1; i < len(trees); i++ {
		if trees[i].Root.Span.Start < trees[i-1].Root.Span.Start {
			t.Fatal("trees not ordered by start")
		}
	}
}

func TestTracerErrors(t *testing.T) {
	if _, err := NewTracer(0); err == nil {
		t.Error("sampleEvery=0 should fail")
	}
	tr, err := NewTracer(1)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := tr.StartTrace("r", 0, 0)
	child := root.Child("c", 1, 0)
	_ = child // left open
	if _, err := tr.Trees(); err == nil {
		t.Error("open span should fail assembly")
	}
	child.Finish(2)
	root.Finish(3)
	if _, err := tr.Trees(); err != nil {
		t.Errorf("closed spans should assemble: %v", err)
	}
	// Finish before start clamps.
	r2, _ := tr.StartTrace("r2", 10, 0)
	r2.Finish(5)
	trees, err := tr.Trees()
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range trees {
		if tree.Root.Span.Name == "r2" && tree.Root.Span.Duration() != 0 {
			t.Error("finish-before-start should clamp to zero duration")
		}
	}
}

func sampleRequest() trace.Request {
	return trace.Request{
		ID: 7, Class: "read64K", Server: 2, Arrival: 1.0,
		Spans: []trace.Span{
			{Subsystem: trace.Network, Start: 1.0, Duration: 0.001, Bytes: 256},
			{Subsystem: trace.CPU, Start: 1.001, Duration: 0.0001, Util: 0.02, Bytes: 256},
			{Subsystem: trace.Memory, Start: 1.0011, Duration: 0.0001, Op: trace.OpRead, Bytes: 16384, Bank: 3},
			{Subsystem: trace.Storage, Start: 1.0012, Duration: 0.006, Op: trace.OpRead, Bytes: 65536, LBN: 42},
			{Subsystem: trace.CPU, Start: 1.0072, Duration: 0.0001, Util: 0.02, Bytes: 65536},
			{Subsystem: trace.Network, Start: 1.0073, Duration: 0.0005, Bytes: 65536},
		},
	}
}

func TestFromRequestToRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	tree := FromRequest(req)
	if tree.Count != 7 || tree.Depth() != 2 {
		t.Errorf("tree count=%d depth=%d", tree.Count, tree.Depth())
	}
	back, err := ToRequest(tree)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != req.ID || back.Class != req.Class || back.Server != req.Server {
		t.Errorf("identity lost: %+v", back)
	}
	if len(back.Spans) != len(req.Spans) {
		t.Fatalf("spans = %d", len(back.Spans))
	}
	for i, s := range back.Spans {
		if s.Subsystem != req.Spans[i].Subsystem {
			t.Errorf("span %d subsystem %v", i, s.Subsystem)
		}
		if math.Abs(s.Start-req.Spans[i].Start) > 1e-12 ||
			math.Abs(s.Duration-req.Spans[i].Duration) > 1e-12 {
			t.Errorf("span %d timing lost", i)
		}
		// The paper's criticism: features do not survive the tree.
		if s.Bytes != 0 || s.LBN != 0 || s.Util != 0 {
			t.Errorf("span %d unexpectedly carries features", i)
		}
	}
	// Features survive only as annotations.
	rendered := tree.Render()
	if !strings.Contains(rendered, "lbn=42") || !strings.Contains(rendered, "bank=3") {
		t.Errorf("annotations missing:\n%s", rendered)
	}
}

func TestToRequestErrors(t *testing.T) {
	if _, err := ToRequest(&Tree{}); err == nil {
		t.Error("empty tree should fail")
	}
	bad := FromRequest(sampleRequest())
	bad.Root.Children[0].Span.Name = "rpc:oops"
	if _, err := ToRequest(bad); err == nil {
		t.Error("non-phase child should fail")
	}
	bad2 := FromRequest(sampleRequest())
	bad2.Root.Children[0].Span.Name = "phase:bogus"
	if _, err := ToRequest(bad2); err == nil {
		t.Error("unknown subsystem should fail")
	}
}

func TestMultipleRootsRejected(t *testing.T) {
	tr, err := NewTracer(1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tr.StartTrace("a", 0, 0)
	a.Finish(1)
	// Forge a second root in the same trace.
	tr.spans[a.span.Trace] = append(tr.spans[a.span.Trace], &Span{
		Trace: a.span.Trace, ID: 999, Parent: 0, Name: "b",
	})
	if _, err := tr.Trees(); err == nil {
		t.Error("multiple roots should fail")
	}
	// Unknown parent.
	tr2, _ := NewTracer(1)
	b, _ := tr2.StartTrace("a", 0, 0)
	b.Finish(1)
	tr2.spans[b.span.Trace] = append(tr2.spans[b.span.Trace], &Span{
		Trace: b.span.Trace, ID: 1000, Parent: 555, Name: "orphan",
	})
	if _, err := tr2.Trees(); err == nil {
		t.Error("orphan span should fail")
	}
}
