// External test package: these tests drive the exported Recorder seam
// against the GFS simulator, which itself imports dapper — keeping them
// in package dapper would create a test-only import cycle.
package dapper_test

import (
	"math/rand"
	"testing"

	"dcmodel/internal/dapper"
	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsWorkload(t *testing.T, requests int, seed int64) *trace.Trace {
	t.Helper()
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: requests,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceWorkloadOnGFS(t *testing.T) {
	tr := gfsWorkload(t, 1000, 1)
	tracer, err := dapper.TraceWorkload(tr, 100) // Dapper-style sparse sampling
	if err != nil {
		t.Fatal(err)
	}
	started, sampled := tracer.SamplingStats()
	if started != 1000 || sampled != 10 {
		t.Fatalf("sampling stats %d/%d", started, sampled)
	}
	trees, err := tracer.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 10 {
		t.Fatalf("trees = %d", len(trees))
	}
	for _, tree := range trees {
		if tree.Count != 7 {
			t.Errorf("GFS tree has %d spans, want 7 (root + 6 phases)", tree.Count)
		}
		back, err := dapper.ToRequest(tree)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Spans) != 6 {
			t.Errorf("reconstructed %d spans", len(back.Spans))
		}
	}
}

// TestRecordWorkloadMatchesTraceWorkload pins the deprecated wrapper's
// contract: RecordWorkload into a Collector samples the same requests
// and produces the same trees as TraceWorkload.
func TestRecordWorkloadMatchesTraceWorkload(t *testing.T) {
	tr := gfsWorkload(t, 500, 2)

	var c dapper.Collector
	started, sampled, err := dapper.RecordWorkload(tr, 100, &c)
	if err != nil {
		t.Fatal(err)
	}
	if started != 500 || sampled != 5 {
		t.Fatalf("RecordWorkload stats %d/%d, want 500/5", started, sampled)
	}
	if c.Len() != 5 {
		t.Fatalf("collector holds %d trees", c.Len())
	}

	tracer, err := dapper.TraceWorkload(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	old, err := tracer.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != c.Len() {
		t.Fatalf("tree counts diverge: %d vs %d", len(old), c.Len())
	}
	for i, tree := range c.Trees() {
		if tree.Root.Span.Trace != old[i].Root.Span.Trace {
			t.Fatalf("tree %d: trace %d vs %d", i, tree.Root.Span.Trace, old[i].Root.Span.Trace)
		}
		if tree.Count != old[i].Count {
			t.Fatalf("tree %d: %d spans vs %d", i, tree.Count, old[i].Count)
		}
		if got, want := tree.Render(), old[i].Render(); got != want {
			t.Fatalf("tree %d renders differently:\n%s\nvs\n%s", i, got, want)
		}
	}
}

func TestRecordWorkloadValidation(t *testing.T) {
	var c dapper.Collector
	tr := &trace.Trace{}
	if _, _, err := dapper.RecordWorkload(tr, 0, &c); err == nil {
		t.Fatal("sampleEvery=0 accepted")
	}
	if _, _, err := dapper.RecordWorkload(tr, 1, nil); err == nil {
		t.Fatal("nil recorder accepted")
	}
	if _, _, err := dapper.RecordWorkload(nil, 1, &c); err == nil {
		t.Fatal("nil trace accepted")
	}
}

// TestGFSRecorderSeam: wiring a Recorder into the simulator must deliver
// one tree per generated request, in arrival order, without touching the
// workload's random stream — the trace with a recorder attached is
// identical to the trace without one.
func TestGFSRecorderSeam(t *testing.T) {
	run := func(rec dapper.Recorder) *trace.Trace {
		c, err := gfs.NewCluster(gfs.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := c.Run(gfs.RunConfig{
			Mix:      workload.Table2Mix(),
			Arrivals: workload.Poisson{Rate: 20},
			Requests: 200,
			Recorder: rec,
		}, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	var col dapper.Collector
	with := run(&col)
	without := run(nil)

	if col.Len() != with.Len() {
		t.Fatalf("recorded %d trees for %d requests", col.Len(), with.Len())
	}
	for i, tree := range col.Trees() {
		if got, want := int64(tree.Root.Span.Trace)-1, with.Requests[i].ID; got != want {
			t.Fatalf("tree %d out of arrival order: request ID %d, want %d", i, got, want)
		}
	}
	if len(with.Requests) != len(without.Requests) {
		t.Fatalf("recorder perturbed the run: %d vs %d requests", len(with.Requests), len(without.Requests))
	}
	for i := range with.Requests {
		a, b := with.Requests[i], without.Requests[i]
		if a.ID != b.ID || a.Class != b.Class || a.Arrival != b.Arrival || a.Latency() != b.Latency() {
			t.Fatalf("request %d diverged with recorder attached:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// TestGFSClosedLoopRecorderSeam covers the closed-loop path too.
func TestGFSClosedLoopRecorderSeam(t *testing.T) {
	var col dapper.Collector
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.RunClosed(gfs.ClosedRunConfig{
		Mix:      workload.Table2Mix(),
		Users:    4,
		Requests: 100,
		Recorder: &col,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != tr.Len() {
		t.Fatalf("recorded %d trees for %d requests", col.Len(), tr.Len())
	}
}
