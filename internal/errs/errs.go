// Package errs holds the sentinel error values shared across the toolkit,
// so command-line tools and the serving daemon can branch on error class
// with errors.Is instead of matching message strings. The facade package
// dcmodel re-exports these values; internal packages wrap them with
// %w-formatted context.
package errs

import "errors"

// ErrBadConfig marks an invalid configuration: a cluster, fault scenario,
// platform or server config that fails validation before any work starts.
// CLI tools translate it into a usage-style exit (exit code 2).
var ErrBadConfig = errors.New("invalid configuration")

// ErrModelNotTrained marks an operation that needs a trained model when
// none is available yet — e.g. querying the serving daemon before the
// first ingest has warmed a model generation. Servers translate it into
// 503 Service Unavailable.
var ErrModelNotTrained = errors.New("model not trained")

// ErrTwinUnsupported marks a model that cannot be lowered to an
// analytical twin: the twin compiler knows the toolkit's three approaches;
// a foreign Model implementation passed to dcmodel.BuildTwin gets this.
var ErrTwinUnsupported = errors.New("model has no analytical twin")
