// Package errs holds the sentinel error values shared across the toolkit,
// so command-line tools and the serving daemon can branch on error class
// with errors.Is instead of matching message strings. The facade package
// dcmodel re-exports these values; internal packages wrap them with
// %w-formatted context.
package errs

import "errors"

// ErrBadConfig marks an invalid configuration: a cluster, fault scenario,
// platform or server config that fails validation before any work starts.
// CLI tools translate it into a usage-style exit (exit code 2).
var ErrBadConfig = errors.New("invalid configuration")

// ErrModelNotTrained marks an operation that needs a trained model when
// none is available yet — e.g. querying the serving daemon before the
// first ingest has warmed a model generation. Servers translate it into
// 503 Service Unavailable.
var ErrModelNotTrained = errors.New("model not trained")

// ErrTwinUnsupported marks a model that cannot be lowered to an
// analytical twin: the twin compiler knows the toolkit's three approaches;
// a foreign Model implementation passed to dcmodel.BuildTwin gets this.
var ErrTwinUnsupported = errors.New("model has no analytical twin")

// ErrNoFeasibleConfig marks a provisioning search that exhausted its
// configuration space without a configuration meeting the objective —
// either the twin found nothing stable under the SLO within the bounds,
// or DES validation rejected every Pareto-frontier candidate. It is a
// result, not a defect: the returned Plan still carries the audit trail.
// Unwrapping rule: wrap with %w-formatted context (like the other
// sentinels) so errors.Is(err, ErrNoFeasibleConfig) holds across layers;
// never wrap it together with ErrBadConfig — a search that could not
// start is a configuration error, a search that finished empty is this.
var ErrNoFeasibleConfig = errors.New("no feasible configuration")
