// Package fault is the deterministic fault-injection engine of the
// toolkit: it generates seed-stable failure/repair timelines for a set of
// servers and answers point-in-time availability queries against them.
//
// Each server alternates between an UP state (exponentially distributed
// with mean MTBF) and a DOWN state (exponentially distributed with mean
// MTTR) — a two-state Markov-modulated process, the classic availability
// model. On top of the independent per-server processes, servers can be
// grouped into racks sharing a second failure/repair process (power or
// top-of-rack-switch failures): a server is down whenever its own process
// OR its rack's process is down, which correlates failures within a rack.
//
// Every timeline is a fixed function of (Config, server index) alone: each
// per-server and per-rack process draws from its own SplitMix64 stream
// derived from Config.Seed via internal/prand, and intervals are extended
// lazily but cached, so queries in any order — from any number of worker
// goroutines partitioned over shards — observe one immutable failure
// history. That property is what keeps the sharded GFS simulation
// byte-identical for any worker count with faults armed.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dcmodel/internal/errs"
	"dcmodel/internal/prand"
)

// Config describes a fault scenario. The zero value (and a nil *Config)
// means no faults.
type Config struct {
	// MTBF is the mean time between failures of one server, in seconds
	// (exponential UP-state holding time). Required (> 0).
	MTBF float64 `json:"mtbf"`
	// MTTR is the mean time to repair of one server, in seconds
	// (exponential DOWN-state holding time). Required (> 0).
	MTTR float64 `json:"mttr"`
	// RackSize, when > 1, groups servers into racks of this many
	// consecutive indices sharing a correlated failure process.
	RackSize int `json:"rack_size,omitempty"`
	// RackMTBF is the mean time between whole-rack failures (seconds).
	// Defaults to 8x MTBF when RackSize > 1.
	RackMTBF float64 `json:"rack_mtbf,omitempty"`
	// RackMTTR is the mean time to repair a rack (seconds). Defaults to
	// MTTR when RackSize > 1.
	RackMTTR float64 `json:"rack_mttr,omitempty"`
	// Timeout is the client-observed timeout before a request attempt
	// against a down server is abandoned, in seconds. Defaults to 10 ms.
	Timeout float64 `json:"timeout,omitempty"`
	// Backoff is the base of the client's exponential retry backoff, in
	// seconds (attempt k waits Backoff * 2^k after its timeout). Defaults
	// to 2 ms.
	Backoff float64 `json:"backoff,omitempty"`
	// RereplBytes is the number of bytes the master re-replicates on a
	// detected chunk failover (background traffic on the surviving
	// replica). Defaults to 1 MiB; negative disables re-replication.
	RereplBytes int64 `json:"rerepl_bytes,omitempty"`
	// Seed selects the failure-history stream family. Defaults to 1.
	Seed int64 `json:"seed,omitempty"`
}

// Defaults for the optional knobs.
const (
	DefaultTimeout     = 10e-3
	DefaultBackoff     = 2e-3
	DefaultRereplBytes = 1 << 20
)

// WithDefaults returns a copy of c with the optional zero fields filled.
func (c Config) WithDefaults() Config {
	if c.RackSize > 1 {
		if c.RackMTBF <= 0 {
			c.RackMTBF = 8 * c.MTBF
		}
		if c.RackMTTR <= 0 {
			c.RackMTTR = c.MTTR
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.RereplBytes == 0 {
		c.RereplBytes = DefaultRereplBytes
	}
	if c.RereplBytes < 0 {
		c.RereplBytes = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the scenario. All defects wrap errs.ErrBadConfig so
// callers can branch with errors.Is.
func (c Config) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("fault: %s: %w", fmt.Sprintf(format, args...), errs.ErrBadConfig)
	}
	if !(c.MTBF > 0) {
		return bad("MTBF must be > 0 seconds, got %g", c.MTBF)
	}
	if !(c.MTTR > 0) {
		return bad("MTTR must be > 0 seconds, got %g", c.MTTR)
	}
	if c.RackSize < 0 {
		return bad("RackSize must be >= 0, got %d", c.RackSize)
	}
	if c.RackMTBF < 0 || c.RackMTTR < 0 {
		return bad("rack MTBF/MTTR must be >= 0, got %g/%g", c.RackMTBF, c.RackMTTR)
	}
	if c.Timeout < 0 {
		return bad("Timeout must be >= 0 seconds, got %g", c.Timeout)
	}
	if c.Backoff < 0 {
		return bad("Backoff must be >= 0 seconds, got %g", c.Backoff)
	}
	if c.Seed < 0 {
		return bad("Seed must be >= 0, got %d", c.Seed)
	}
	return nil
}

// Interval is one contiguous downtime window [Start, End).
type Interval struct {
	Start float64
	End   float64
}

// process is one lazily extended two-state (up/down) renewal process. All
// fields are guarded by mu; the generated prefix is immutable, so cached
// queries never change their answer when the timeline is extended.
type process struct {
	mu   sync.Mutex
	r    *rand.Rand
	mtbf float64
	mttr float64
	// downs is the generated downtime prefix, ordered and disjoint.
	downs []Interval
	// horizon is the time up to which the timeline is fully generated:
	// every down interval starting before horizon is already in downs.
	horizon float64
}

func newProcess(mtbf, mttr float64, r *rand.Rand) *process {
	return &process{r: r, mtbf: mtbf, mttr: mttr}
}

// extend generates the timeline until the horizon passes t. Callers hold mu.
func (p *process) extend(t float64) {
	for p.horizon <= t {
		up := p.r.ExpFloat64() * p.mtbf
		down := p.r.ExpFloat64() * p.mttr
		start := p.horizon + up
		p.downs = append(p.downs, Interval{Start: start, End: start + down})
		p.horizon = start + down
	}
}

// query returns whether the process is down at time t and, if it is, the
// end of the enclosing downtime interval.
func (p *process) query(t float64) (down bool, until float64) {
	if t < 0 {
		return false, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extend(t)
	// Binary search for the first interval ending after t.
	lo, hi := 0, len(p.downs)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.downs[mid].End <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.downs) && p.downs[lo].Start <= t {
		return true, p.downs[lo].End
	}
	return false, 0
}

// nextDown returns the start of the earliest downtime interval ending
// after t — t itself when t is inside one. extend guarantees such an
// interval always exists in the generated prefix.
func (p *process) nextDown(t float64) float64 {
	if t < 0 {
		t = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extend(t)
	lo, hi := 0, len(p.downs)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.downs[mid].End <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if iv := p.downs[lo]; iv.Start > t {
		return iv.Start
	}
	return t
}

// intervals returns a copy of the downtime prefix generated up to horizon.
func (p *process) intervals(horizon float64) []Interval {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extend(horizon)
	out := make([]Interval, 0, len(p.downs))
	for _, iv := range p.downs {
		if iv.Start >= horizon {
			break
		}
		out = append(out, iv)
	}
	return out
}

// Schedule is the materialized failure history of a set of servers under
// one scenario. It is safe for concurrent use; all answers are a fixed
// function of (Config, stream, server index, time).
type Schedule struct {
	cfg     Config
	servers []*process
	racks   []*process // nil when RackSize <= 1
}

// streams per entity: server i draws from sub-stream 2i, rack j from
// sub-stream 2j+1 of the schedule's stream family, so adding racks never
// perturbs server histories.
func entityRand(seed int64, stream uint64, entity uint64) *rand.Rand {
	return prand.New(prand.Derive(seed, stream), entity)
}

// NewSchedule builds the failure history of `servers` servers under cfg.
// The stream parameter partitions one Config into independent families
// (e.g. one per simulation shard): histories are a fixed function of
// (cfg, stream, server index) — never of query order or worker count.
// cfg is validated and defaulted; nil-scenario callers should not build a
// Schedule at all.
func NewSchedule(cfg Config, servers int, stream uint64) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if servers < 1 {
		return nil, fmt.Errorf("fault: need >= 1 server, got %d: %w", servers, errs.ErrBadConfig)
	}
	cfg = cfg.WithDefaults()
	s := &Schedule{cfg: cfg, servers: make([]*process, servers)}
	for i := range s.servers {
		s.servers[i] = newProcess(cfg.MTBF, cfg.MTTR, entityRand(cfg.Seed, stream, uint64(2*i)))
	}
	if cfg.RackSize > 1 {
		nRacks := (servers + cfg.RackSize - 1) / cfg.RackSize
		s.racks = make([]*process, nRacks)
		for j := range s.racks {
			s.racks[j] = newProcess(cfg.RackMTBF, cfg.RackMTTR, entityRand(cfg.Seed, stream, uint64(2*j+1)))
		}
	}
	return s, nil
}

// Config returns the defaulted scenario the schedule was built from.
func (s *Schedule) Config() Config { return s.cfg }

// Servers returns the number of servers covered.
func (s *Schedule) Servers() int { return len(s.servers) }

// rackOf returns the rack process of a server, or nil.
func (s *Schedule) rackOf(server int) *process {
	if s.racks == nil {
		return nil
	}
	return s.racks[server/s.cfg.RackSize]
}

// DownAt reports whether the server is down at time t (its own process or
// its rack's). Out-of-range servers are reported up, so callers replaying
// traces with more servers than the schedule covers degrade gracefully.
func (s *Schedule) DownAt(server int, t float64) bool {
	if server < 0 || server >= len(s.servers) {
		return false
	}
	if down, _ := s.servers[server].query(t); down {
		return true
	}
	if rk := s.rackOf(server); rk != nil {
		if down, _ := rk.query(t); down {
			return true
		}
	}
	return false
}

// NextUp returns the earliest time >= t at which the server is up. If the
// server is up at t, it returns t.
func (s *Schedule) NextUp(server int, t float64) float64 {
	if server < 0 || server >= len(s.servers) {
		return t
	}
	rk := s.rackOf(server)
	for {
		moved := false
		if down, until := s.servers[server].query(t); down {
			t, moved = until, true
		}
		if rk != nil {
			if down, until := rk.query(t); down {
				t, moved = until, true
			}
		}
		if !moved {
			return t
		}
	}
}

// NextFailure returns the earliest time >= t at which the server is down —
// t itself when it is already down, +Inf for out-of-range servers. A finite
// answer always exists: the failure processes alternate forever.
func (s *Schedule) NextFailure(server int, t float64) float64 {
	if server < 0 || server >= len(s.servers) {
		return math.Inf(1)
	}
	next := s.servers[server].nextDown(t)
	if rk := s.rackOf(server); rk != nil {
		if rn := rk.nextDown(t); rn < next {
			next = rn
		}
	}
	return next
}

// Downtime returns the server's own downtime intervals starting before the
// horizon (rack failures excluded) — the raw material for availability
// reports and tests.
func (s *Schedule) Downtime(server int, horizon float64) []Interval {
	if server < 0 || server >= len(s.servers) {
		return nil
	}
	return s.servers[server].intervals(horizon)
}
