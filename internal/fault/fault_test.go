package fault

import (
	"errors"
	"math"
	"sync"
	"testing"

	"dcmodel/internal/errs"
)

func scenario() Config {
	return Config{MTBF: 10, MTTR: 0.5, Seed: 7}
}

// TestScheduleDeterministic: two schedules from the same (cfg, stream) give
// identical histories, regardless of query order or concurrency.
func TestScheduleDeterministic(t *testing.T) {
	const servers, horizon = 8, 500.0
	a, err := NewSchedule(scenario(), servers, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(scenario(), servers, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Query b concurrently and out of order first, then compare the full
	// interval lists: lazy extension must not depend on query order.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				srv := (i*7 + w) % servers
				tm := math.Mod(float64(i)*13.7+float64(w)*101, horizon)
				b.DownAt(srv, tm)
				b.NextUp(srv, tm)
			}
		}(w)
	}
	wg.Wait()
	for srv := 0; srv < servers; srv++ {
		ia := a.Downtime(srv, horizon)
		ib := b.Downtime(srv, horizon)
		if len(ia) != len(ib) {
			t.Fatalf("server %d: %d vs %d intervals", srv, len(ia), len(ib))
		}
		for k := range ia {
			if ia[k] != ib[k] {
				t.Fatalf("server %d interval %d: %+v vs %+v", srv, k, ia[k], ib[k])
			}
		}
	}
}

// TestStreamsIndependent: distinct streams of one scenario give distinct
// histories (the per-shard isolation property).
func TestStreamsIndependent(t *testing.T) {
	a, _ := NewSchedule(scenario(), 1, 0)
	b, _ := NewSchedule(scenario(), 1, 1)
	ia, ib := a.Downtime(0, 1000), b.Downtime(0, 1000)
	if len(ia) == 0 || len(ib) == 0 {
		t.Fatal("expected downtime in 1000s at MTBF 10s")
	}
	if len(ia) == len(ib) && ia[0] == ib[0] {
		t.Fatal("streams 0 and 1 produced the same first interval")
	}
}

// TestAvailabilityBallpark: long-run unavailability approaches
// MTTR/(MTBF+MTTR).
func TestAvailabilityBallpark(t *testing.T) {
	cfg := Config{MTBF: 5, MTTR: 1, Seed: 11}
	s, err := NewSchedule(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 200000.0
	var down float64
	for _, iv := range s.Downtime(0, horizon) {
		end := math.Min(iv.End, horizon)
		down += end - iv.Start
	}
	got := down / horizon
	want := cfg.MTTR / (cfg.MTBF + cfg.MTTR)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("unavailability %.4f, want %.4f +- 0.02", got, want)
	}
}

// TestNextUp: NextUp lands strictly outside every down window.
func TestNextUp(t *testing.T) {
	s, err := NewSchedule(Config{MTBF: 2, MTTR: 1, RackSize: 2, Seed: 3}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for srv := 0; srv < 4; srv++ {
		for i := 0; i < 500; i++ {
			tm := float64(i) * 0.37
			up := s.NextUp(srv, tm)
			if up < tm {
				t.Fatalf("NextUp(%d, %g) = %g went backwards", srv, tm, up)
			}
			if s.DownAt(srv, up) {
				t.Fatalf("server %d still down at NextUp time %g", srv, up)
			}
		}
	}
}

// TestRackCorrelation: with racks armed, a rack failure takes down every
// server of the rack at once.
func TestRackCorrelation(t *testing.T) {
	cfg := Config{MTBF: 1e9, MTTR: 1, RackSize: 4, RackMTBF: 10, RackMTTR: 2, Seed: 5}
	s, err := NewSchedule(cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Per-server MTBF is effectively infinite, so any downtime is rack
	// downtime; scan for an instant where server 0 is down and check its
	// whole rack shares it while the other rack does not necessarily.
	found := false
	for i := 0; i < 100000 && !found; i++ {
		tm := float64(i) * 0.01
		if s.DownAt(0, tm) {
			found = true
			for srv := 0; srv < 4; srv++ {
				if !s.DownAt(srv, tm) {
					t.Fatalf("rack failure at t=%g missed server %d", tm, srv)
				}
			}
		}
	}
	if !found {
		t.Fatal("no rack failure observed in 1000s at rack MTBF 10s")
	}
}

func TestValidate(t *testing.T) {
	cases := []Config{
		{},                  // zero MTBF/MTTR
		{MTBF: -1, MTTR: 1}, // negative MTBF
		{MTBF: 1, MTTR: 0},  // zero MTTR
		{MTBF: 1, MTTR: 1, Seed: -4},
		{MTBF: 1, MTTR: 1, Timeout: -1},
		{MTBF: 1, MTTR: 1, RackSize: -2},
	}
	for i, c := range cases {
		err := c.Validate()
		if err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		if !errors.Is(err, errs.ErrBadConfig) {
			t.Fatalf("case %d: error %v does not wrap ErrBadConfig", i, err)
		}
	}
	if err := scenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if _, err := NewSchedule(scenario(), 0, 0); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("0 servers: %v", err)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{MTBF: 10, MTTR: 1, RackSize: 4}.WithDefaults()
	if c.Timeout != DefaultTimeout || c.Backoff != DefaultBackoff || c.RereplBytes != DefaultRereplBytes {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.RackMTBF != 80 || c.RackMTTR != 1 || c.Seed != 1 {
		t.Fatalf("rack/seed defaults not applied: %+v", c)
	}
	if d := (Config{MTBF: 1, MTTR: 1, RereplBytes: -1}).WithDefaults(); d.RereplBytes != 0 {
		t.Fatalf("negative RereplBytes should disable, got %d", d.RereplBytes)
	}
}
