package gfs

import (
	"math/rand"
	"testing"

	"dcmodel/internal/queueing"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func TestRunClosedBasics(t *testing.T) {
	c := testCluster(t, DefaultConfig())
	tr, err := c.RunClosed(ClosedRunConfig{
		Mix: workload.Table2Mix(), Users: 4, MeanThink: 0.05, Requests: 1000,
	}, rand.New(rand.NewSource(420)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("requests = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Closed loop: at most Users requests in flight at any instant
	// (checked by sampling instants against the full request set).
	for i := 0; i < 200; i++ {
		r := tr.Requests[i*5]
		inFlight := 0
		at := r.Arrival + r.Latency()/2
		for _, q := range tr.Requests {
			if q.Arrival <= at && at < q.Arrival+q.Latency() {
				inFlight++
			}
		}
		if inFlight > 4 {
			t.Fatalf("%d requests in flight at %g, population is 4", inFlight, at)
		}
	}
}

func TestRunClosedErrors(t *testing.T) {
	c := testCluster(t, DefaultConfig())
	r := rand.New(rand.NewSource(421))
	cases := []ClosedRunConfig{
		{Users: 1, Requests: 10},
		{Mix: workload.Table2Mix(), Users: 0, Requests: 10},
		{Mix: workload.Table2Mix(), Users: 1, MeanThink: -1, Requests: 10},
		{Mix: workload.Table2Mix(), Users: 1, Requests: 0},
	}
	for i, rc := range cases {
		if _, err := c.RunClosed(rc, r); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunClosedThroughputScalesWithUsers(t *testing.T) {
	run := func(users int) float64 {
		c := testCluster(t, DefaultConfig())
		tr, err := c.RunClosed(ClosedRunConfig{
			Mix: workload.Table2Mix(), Users: users, MeanThink: 0.05, Requests: 2000,
		}, rand.New(rand.NewSource(422)))
		if err != nil {
			t.Fatal(err)
		}
		last := tr.Requests[tr.Len()-1]
		return float64(tr.Len()) / (last.Arrival + last.Latency())
	}
	x1, x4 := run(1), run(4)
	if x4 <= 1.5*x1 {
		t.Errorf("throughput with 4 users (%g) not clearly above 1 user (%g)", x4, x1)
	}
}

func TestRunClosedMatchesMVA(t *testing.T) {
	// Cross-validate the two substrates: the closed-loop GFS simulation
	// against exact MVA, with per-subsystem demands measured from a
	// single-user run.
	const think = 0.05
	measure := func() []queueing.MVAStation {
		c := testCluster(t, DefaultConfig())
		tr, err := c.RunClosed(ClosedRunConfig{
			Mix: workload.Table2Mix(), Users: 1, MeanThink: think, Requests: 2000,
		}, rand.New(rand.NewSource(423)))
		if err != nil {
			t.Fatal(err)
		}
		// Per-request demand per subsystem.
		demand := make(map[trace.Subsystem]float64)
		for _, r := range tr.Requests {
			for _, s := range r.Spans {
				demand[s.Subsystem] += s.Duration
			}
		}
		stations := []queueing.MVAStation{{Name: "think", Demand: think, Delay: true}}
		for _, sub := range trace.Subsystems() {
			stations = append(stations, queueing.MVAStation{
				Name:   sub.String(),
				Demand: demand[sub] / float64(tr.Len()),
			})
		}
		return stations
	}
	stations := measure()
	res, err := queueing.MVA(stations, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, users := range []int{2, 8} {
		c := testCluster(t, DefaultConfig())
		tr, err := c.RunClosed(ClosedRunConfig{
			Mix: workload.Table2Mix(), Users: users, MeanThink: think, Requests: 4000,
		}, rand.New(rand.NewSource(424)))
		if err != nil {
			t.Fatal(err)
		}
		last := tr.Requests[tr.Len()-1]
		measured := float64(tr.Len()) / (last.Arrival + last.Latency())
		predicted := res[users-1].Throughput
		if d := stats.RelError(predicted, measured); d > 0.2 {
			t.Errorf("users=%d: measured X=%g vs MVA %g (dev %g)", users, measured, predicted, d)
		}
	}
}
