package gfs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"dcmodel/internal/fault"
	"dcmodel/internal/prand"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// faultScenario returns an aggressive scenario: outages are frequent and
// long relative to the run, so retries and failovers are plentiful.
func faultScenario() *fault.Config {
	return &fault.Config{MTBF: 2, MTTR: 0.5, RackSize: 2, Seed: 13}
}

func faultyCfg() Config {
	cfg := DefaultConfig()
	cfg.Chunkservers = 4
	cfg.Replication = 3
	cfg.Files = 8
	return cfg
}

func faultyRC(n int) RunConfig {
	rc := openRC(n)
	rc.Faults = faultScenario()
	return rc
}

// TestFaultyShardedByteIdentical is the acceptance determinism check:
// with faults armed, SimulateSharded must be byte-identical across worker
// counts — the failure histories are a function of the shard, never of
// the goroutine that simulates it.
func TestFaultyShardedByteIdentical(t *testing.T) {
	encode := func(workers int) []byte {
		tr, err := SimulateSharded(faultyCfg(), faultyRC(600), 6, workers, 42)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1 := encode(1)
	for _, workers := range []int{4, 16} {
		if got := encode(workers); !bytes.Equal(w1, got) {
			t.Fatalf("faulty sharded trace with %d workers differs from serial run", workers)
		}
	}
}

func TestFaultyShardedClosedByteIdentical(t *testing.T) {
	rc := ClosedRunConfig{
		Mix:       workload.Table2Mix(),
		Users:     12,
		MeanThink: 0.05,
		Requests:  400,
		Faults:    faultScenario(),
	}
	serial, err := SimulateShardedClosed(faultyCfg(), rc, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SimulateShardedClosed(faultyCfg(), rc, 4, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("faulty sharded closed trace differs between worker counts")
	}
}

// TestFaultAnnotations: an aggressive scenario produces retried and
// failed-over requests, every request still completes, and the trace stays
// structurally valid.
func TestFaultAnnotations(t *testing.T) {
	cluster, err := NewCluster(faultyCfg())
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	tr, err := cluster.Run(faultyRC(n), prand.New(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("got %d requests, want %d: faults must delay requests, not drop them", tr.Len(), n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("faulty trace fails validation: %v", err)
	}
	var retried, failedOver int
	for _, r := range tr.Requests {
		if r.Retries > 0 {
			retried++
		}
		if r.FailedOver {
			failedOver++
		}
		if r.FailedOver && r.Retries == 0 {
			t.Fatalf("request %d failed over without a retry", r.ID)
		}
		if len(r.Spans) == 0 {
			t.Fatalf("request %d completed without spans", r.ID)
		}
	}
	if retried == 0 {
		t.Fatal("no retries under MTBF 2s / MTTR 0.5s — fault injection is not firing")
	}
	if failedOver == 0 {
		t.Fatal("no failovers with replication 3 under aggressive faults")
	}
}

// TestFaultsOffMatchesLegacy: arming a nil scenario is exactly the healthy
// simulator — same draws, same spans, no annotations.
func TestFaultsOffMatchesLegacy(t *testing.T) {
	run := func(rc RunConfig) *trace.Trace {
		cluster, err := NewCluster(faultyCfg())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := cluster.Run(rc, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	healthy := run(openRC(300))
	for _, r := range healthy.Requests {
		if r.Retries != 0 || r.FailedOver {
			t.Fatalf("healthy run annotated request %d", r.ID)
		}
	}
	// A fault scenario with astronomically rare failures must still leave
	// the workload byte-identical: fault handling draws nothing from the
	// workload stream.
	quiet := openRC(300)
	quiet.Faults = &fault.Config{MTBF: 1e12, MTTR: 1e-3, Seed: 1}
	if !reflect.DeepEqual(run(quiet), healthy) {
		t.Fatal("arming a quiescent fault scenario perturbed the workload")
	}
}

// TestFaultLatencyInflation: the degraded regime must show the
// timeout-inflated tail the healthy cluster never has.
func TestFaultLatencyInflation(t *testing.T) {
	run := func(faults *fault.Config) float64 {
		cluster, err := NewCluster(faultyCfg())
		if err != nil {
			t.Fatal(err)
		}
		rc := openRC(500)
		rc.Faults = faults
		tr, err := cluster.Run(rc, prand.New(11, 0))
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for _, r := range tr.Requests {
			if l := r.Latency(); l > worst {
				worst = l
			}
		}
		return worst
	}
	healthy := run(nil)
	faulty := run(&fault.Config{MTBF: 1, MTTR: 0.8, Seed: 13})
	if faulty <= healthy {
		t.Fatalf("worst-case latency %.4fs with faults vs %.4fs healthy: no tail inflation", faulty, healthy)
	}
}

func TestRunRejectsBadFaultConfig(t *testing.T) {
	cluster, err := NewCluster(faultyCfg())
	if err != nil {
		t.Fatal(err)
	}
	rc := openRC(10)
	rc.Faults = &fault.Config{MTBF: -1, MTTR: 1}
	if _, err := cluster.Run(rc, prand.New(1, 0)); err == nil {
		t.Fatal("negative MTBF accepted")
	}
}
