// Package gfs simulates a GFS-like distributed file system: a master
// holding the chunk namespace and placement, and chunkservers built on the
// parametric hardware models of internal/hw. It stands in for the
// proprietary traces the paper trains on: every executed request follows
// exactly the structure of the paper's Figure 1 —
//
//	network in -> CPU (verify) -> memory (metadata/buffer) ->
//	storage I/O -> CPU (aggregate) -> network out
//
// — and is emitted as a trace.Request whose spans carry the features the
// four per-subsystem models train on.
package gfs

import (
	"fmt"
	"math"
	"math/rand"

	"dcmodel/internal/dapper"
	"dcmodel/internal/fault"
	"dcmodel/internal/hw"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// DefaultChunkSize is the GFS chunk size (64 MiB).
const DefaultChunkSize = 64 << 20

// Config describes the simulated cluster.
type Config struct {
	// Chunkservers is the number of chunkservers (>= 1).
	Chunkservers int
	// ChunkSize is the chunk size in bytes (default 64 MiB).
	ChunkSize int64
	// Files is the number of files in the namespace.
	Files int
	// FileSize is the per-file size in bytes.
	FileSize int64
	// Replication is the number of replicas per chunk (writes touch all
	// replicas; reads go to the primary). Default 1; capped at the number
	// of chunkservers.
	Replication int
	// PopularitySkew is the Zipf skew of file popularity (0 = uniform).
	PopularitySkew float64
	// SegmentBytes, when positive, quantizes request offsets to a grid of
	// segments of this size, drawn by a Zipf popularity of skew
	// SegmentSkew — hot/cold data within files (block-level reuse). Zero
	// keeps offsets uniformly random.
	SegmentBytes int64
	// SegmentSkew is the Zipf skew of segment popularity (used when
	// SegmentBytes > 0; 0.8 if unset).
	SegmentSkew float64
	// CacheHitProb is the probability a read is served from the
	// chunkserver's page cache: the request skips the storage phase and
	// the memory phase carries the full payload — branching control flow
	// (two time-dependency queues per read class).
	CacheHitProb float64
	// NewServer builds the hardware model of one chunkserver. Defaults to
	// DefaultServerHW.
	NewServer func() *hw.Server
}

// DefaultServerHW returns the chunkserver hardware the validation
// experiments use: 10 GbE network, a 200 MB/s disk, a 2.4 GHz core with
// GFS-like per-byte processing cost, and DDR3-class memory. The constants
// are chosen so that the paper's two validation requests (64 KB read, 4 MB
// write) land in the paper's latency and CPU-utilization ballpark
// (~11 ms / ~2 % and ~17 ms / ~5 %).
func DefaultServerHW() *hw.Server {
	s := hw.DefaultServer()
	s.Net.Bandwidth = 1.25e9 // 10 GbE
	s.Net.Latency = 100e-6
	s.Disk.TransferRate = 400e6
	s.CPU.Frequency = 2.4e9
	s.CPU.BaseCycles = 200e3
	s.CPU.CyclesPerByte = 0.4
	return s
}

// DefaultConfig returns a small single-server cluster matching the paper's
// preliminary single-chunkserver experiments.
func DefaultConfig() Config {
	return Config{
		Chunkservers:   1,
		ChunkSize:      DefaultChunkSize,
		Files:          64,
		FileSize:       256 << 20,
		Replication:    1,
		PopularitySkew: 0.8,
	}
}

// chunk is one placed chunk: its primary/replica servers and the LBN
// extent it occupies on each.
type chunk struct {
	servers []int   // replica servers; servers[0] is the primary
	lbn     []int64 // starting LBN of the chunk's extent per replica
}

// Master is the GFS master: the file -> chunk -> (server, extent) mapping.
type Master struct {
	chunkSize int64
	files     [][]int // file -> chunk ids
	chunks    []chunk
}

// Lookup resolves (file, offset) to the chunk's primary server and the LBN
// of the offset on that server.
func (m *Master) Lookup(file int, offset int64) (server int, lbn int64, err error) {
	if file < 0 || file >= len(m.files) {
		return 0, 0, fmt.Errorf("gfs: file %d out of range", file)
	}
	ci := offset / m.chunkSize
	if ci < 0 || int(ci) >= len(m.files[file]) {
		return 0, 0, fmt.Errorf("gfs: offset %d beyond file %d", offset, file)
	}
	ch := m.chunks[m.files[file][ci]]
	blockOff := (offset % m.chunkSize) / 4096
	return ch.servers[0], ch.lbn[0] + blockOff, nil
}

// Replicas returns the replica servers of the chunk containing (file,
// offset), including the primary first.
func (m *Master) Replicas(file int, offset int64) ([]int, []int64, error) {
	if file < 0 || file >= len(m.files) {
		return nil, nil, fmt.Errorf("gfs: file %d out of range", file)
	}
	ci := offset / m.chunkSize
	if ci < 0 || int(ci) >= len(m.files[file]) {
		return nil, nil, fmt.Errorf("gfs: offset %d beyond file %d", offset, file)
	}
	ch := m.chunks[m.files[file][ci]]
	blockOff := (offset % m.chunkSize) / 4096
	lbns := make([]int64, len(ch.lbn))
	for i, l := range ch.lbn {
		lbns[i] = l + blockOff
	}
	return ch.servers, lbns, nil
}

// Chunks returns the number of placed chunks.
func (m *Master) Chunks() int { return len(m.chunks) }

// Cluster is a simulated GFS deployment.
type Cluster struct {
	cfg     Config
	master  *Master
	servers []*chunkserver
	pop     popularity
	segPop  popularity // nil when SegmentBytes == 0
}

type popularity interface {
	Rand(r *rand.Rand) float64
}

type uniformPop struct{ n int }

func (u uniformPop) Rand(r *rand.Rand) float64 { return float64(1 + r.Intn(u.n)) }

// chunkserver holds one server's hardware and per-subsystem availability
// times (flow-shop contention model: each subsystem serves requests FIFO).
type chunkserver struct {
	hw     *hw.Server
	freeAt [4]float64 // indexed by trace.Subsystem
	// nextAlloc is the next free LBN for chunk placement.
	nextAlloc int64
}

// NewCluster validates cfg, places all chunks and returns the cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Chunkservers < 1 {
		return nil, fmt.Errorf("gfs: need >= 1 chunkserver, got %d", cfg.Chunkservers)
	}
	if cfg.ChunkSize <= 0 {
		return nil, fmt.Errorf("gfs: chunk size must be positive, got %d", cfg.ChunkSize)
	}
	if cfg.Files < 1 {
		return nil, fmt.Errorf("gfs: need >= 1 file, got %d", cfg.Files)
	}
	if cfg.FileSize < cfg.ChunkSize {
		return nil, fmt.Errorf("gfs: file size %d below chunk size %d", cfg.FileSize, cfg.ChunkSize)
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > cfg.Chunkservers {
		cfg.Replication = cfg.Chunkservers
	}
	if cfg.PopularitySkew < 0 {
		return nil, fmt.Errorf("gfs: popularity skew must be non-negative, got %g", cfg.PopularitySkew)
	}
	newServer := cfg.NewServer
	if newServer == nil {
		newServer = DefaultServerHW
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Chunkservers; i++ {
		srv := newServer()
		if err := srv.Validate(); err != nil {
			return nil, fmt.Errorf("gfs: server %d: %w", i, err)
		}
		c.servers = append(c.servers, &chunkserver{hw: srv})
	}
	// Place chunks round-robin with contiguous per-server extents.
	m := &Master{chunkSize: cfg.ChunkSize}
	chunksPerFile := int((cfg.FileSize + cfg.ChunkSize - 1) / cfg.ChunkSize)
	blocksPerChunk := cfg.ChunkSize / 4096
	next := 0
	for f := 0; f < cfg.Files; f++ {
		var ids []int
		for k := 0; k < chunksPerFile; k++ {
			ch := chunk{}
			for rep := 0; rep < cfg.Replication; rep++ {
				s := (next + rep) % cfg.Chunkservers
				srv := c.servers[s]
				if srv.nextAlloc+blocksPerChunk > srv.hw.Disk.NumBlocks {
					return nil, fmt.Errorf("gfs: server %d disk full after %d chunks", s, len(m.chunks))
				}
				ch.servers = append(ch.servers, s)
				ch.lbn = append(ch.lbn, srv.nextAlloc)
				srv.nextAlloc += blocksPerChunk
			}
			next++
			ids = append(ids, len(m.chunks))
			m.chunks = append(m.chunks, ch)
		}
		m.files = append(m.files, ids)
	}
	c.master = m
	if cfg.PopularitySkew > 0 && cfg.Files > 1 {
		c.pop = newZipfPop(cfg.PopularitySkew, cfg.Files)
	} else {
		c.pop = uniformPop{n: cfg.Files}
	}
	if cfg.SegmentBytes < 0 {
		return nil, fmt.Errorf("gfs: segment size must be non-negative, got %d", cfg.SegmentBytes)
	}
	if cfg.CacheHitProb < 0 || cfg.CacheHitProb > 1 {
		return nil, fmt.Errorf("gfs: cache hit probability %g outside [0,1]", cfg.CacheHitProb)
	}
	if cfg.SegmentBytes > 0 {
		nsegs := int(cfg.FileSize / cfg.SegmentBytes)
		if nsegs < 1 {
			nsegs = 1
		}
		skew := cfg.SegmentSkew
		if skew <= 0 {
			skew = 0.8
		}
		c.segPop = newZipfPop(skew, nsegs)
	}
	return c, nil
}

// Master exposes the cluster's master (read-only use).
func (c *Cluster) Master() *Master { return c.master }

// Servers returns the number of chunkservers.
func (c *Cluster) Servers() int { return len(c.servers) }

// RunConfig drives a simulation run.
type RunConfig struct {
	// Mix is the request-class mix.
	Mix *workload.Mix
	// Arrivals generates request arrival times.
	Arrivals workload.Arrivals
	// Requests is the number of requests to execute.
	Requests int
	// Faults, when non-nil, arms the fault-injection engine: chunkservers
	// fail and recover on Markov-modulated timelines, clients time out,
	// retry with exponential backoff and fail over to surviving replicas,
	// and the master re-replicates chunks lost to down replicas. Nil keeps
	// the healthy-cluster behavior bit for bit.
	Faults *fault.Config
	// FaultStream selects the failure-history sub-stream when Faults is
	// armed. The sharded drivers set it to the shard index so every shard
	// sees an independent failure history regardless of worker count;
	// plain Run callers normally leave it zero.
	FaultStream uint64
	// Recorder, when non-nil, receives one dapper span tree per executed
	// request, in execution order — the shared tracing seam (see
	// dapper.Recorder). Recording reads finished requests only and draws
	// nothing from the workload rand stream, so arming it perturbs no
	// simulation draws; wrap it with obs.SampleEvery to keep a fraction.
	Recorder dapper.Recorder
}

// classState tracks per-(class, server) sequential-I/O state.
type classState struct {
	lastLBN int64
	lastEnd int64
	valid   bool
}

// Run executes the workload and returns the resulting trace, sorted by
// arrival. The cluster's hardware state persists across calls; use Reset
// to rewind it.
func (c *Cluster) Run(rc RunConfig, r *rand.Rand) (*trace.Trace, error) {
	if rc.Mix == nil {
		return nil, fmt.Errorf("gfs: run needs a request mix")
	}
	if rc.Arrivals == nil {
		return nil, fmt.Errorf("gfs: run needs an arrival process")
	}
	if rc.Requests < 1 {
		return nil, fmt.Errorf("gfs: run needs >= 1 request, got %d", rc.Requests)
	}
	sched, err := c.schedule(rc.Faults, rc.FaultStream)
	if err != nil {
		return nil, err
	}
	arrivals := rc.Arrivals.Times(rc.Requests, r)
	tr := &trace.Trace{Requests: make([]trace.Request, 0, rc.Requests)}
	states := make(map[[2]int]*classState)
	for i := 0; i < rc.Requests; i++ {
		classIdx := rc.Mix.Pick(r)
		class := rc.Mix.Classes[classIdx]
		req, err := c.execute(int64(i), arrivals[i], classIdx, class, states, r, sched)
		if err != nil {
			return nil, err
		}
		tr.Requests = append(tr.Requests, req)
		if rc.Recorder != nil {
			rc.Recorder.Record(dapper.FromRequest(req))
		}
	}
	return tr, nil
}

// schedule materializes the failure history for a run, or nil when faults
// are disabled. The schedule depends only on (cfg, stream) — never on the
// workload rand stream — so arming faults perturbs no workload draws.
func (c *Cluster) schedule(cfg *fault.Config, stream uint64) (*fault.Schedule, error) {
	if cfg == nil {
		return nil, nil
	}
	sched, err := fault.NewSchedule(*cfg, len(c.servers), stream)
	if err != nil {
		return nil, fmt.Errorf("gfs: %w", err)
	}
	return sched, nil
}

// maxFaultAttempts bounds the retry loop of one request; past it the
// client gives up on fault handling and executes against the current
// replica regardless — a termination backstop far above any realistic
// retry count.
const maxFaultAttempts = 256

// retryBackoff is the client's exponential backoff before attempt k+1,
// with the exponent capped so pathological schedules cannot overflow.
func retryBackoff(base float64, attempt int) float64 {
	if attempt > 16 {
		attempt = 16
	}
	return base * float64(int64(1)<<uint(attempt))
}

// execute runs one request through a chunkserver following the Figure 1
// phase structure. With a fault schedule armed, the client times out on a
// down replica, backs off exponentially and fails over to the next replica
// of the chunk; a replica that dies before the data phases complete costs
// the attempt. The healthy path (sched == nil) is bit-identical to the
// fault-free simulator: fault handling draws nothing from r.
func (c *Cluster) execute(id int64, arrival float64, classIdx int, class workload.ClassSpec, states map[[2]int]*classState, r *rand.Rand, sched *fault.Schedule) (trace.Request, error) {
	size := int64(class.Size.Rand(r))
	if size < 1 {
		size = 1
	}
	// Choose the target file and offset.
	file := int(c.pop.Rand(r)) - 1
	if file < 0 {
		file = 0
	}
	if file >= c.cfg.Files {
		file = c.cfg.Files - 1
	}
	maxOff := c.cfg.FileSize - size
	if maxOff < 0 {
		maxOff = 0
	}
	var offset int64
	if c.segPop != nil {
		// Hot/cold segments: draw a popular segment, then align to it.
		seg := int64(c.segPop.Rand(r)) - 1
		offset = seg * c.cfg.SegmentBytes
		if offset > maxOff {
			offset = maxOff
		}
	} else {
		offset = int64(r.Float64() * float64(maxOff))
	}
	servers, lbns, err := c.master.Replicas(file, offset)
	if err != nil {
		return trace.Request{}, err
	}
	// Spatial locality: continue sequentially from this class's previous
	// I/O on this server with probability SequentialProb. The decision is
	// drawn once per request against the primary's state, so the draw
	// sequence matches the fault-free simulator exactly; on failover it is
	// applied to the serving replica's own state.
	seqWanted := false
	if st := states[[2]int{classIdx, servers[0]}]; st != nil && st.valid {
		seqWanted = r.Float64() < class.SequentialProb
	}
	// Page-cache hit: reads served from memory skip the storage phase.
	hit := false
	if class.Op == trace.OpRead && c.cfg.CacheHitProb > 0 {
		hit = r.Float64() < c.cfg.CacheHitProb
	}

	req := trace.Request{ID: id, Class: class.Name, Server: servers[0], Arrival: arrival}
	var fcfg fault.Config
	if sched != nil {
		fcfg = sched.Config()
	}
	now := arrival
	rep, attempt := 0, 0
	for {
		tgt := servers[rep]
		if sched != nil && sched.DownAt(tgt, now) {
			// Replica refused the connection: time out, back off, fail
			// over to the next replica of the chunk.
			now += fcfg.Timeout + retryBackoff(fcfg.Backoff, attempt)
			attempt++
			req.Retries++
			rep = (rep + 1) % len(servers)
			if attempt%len(servers) == 0 {
				// Every replica was down at its attempt instant: jump to
				// the earliest recovery instead of spinning on backoff.
				up := math.Inf(1)
				for _, s := range servers {
					if u := sched.NextUp(s, now); u < up {
						up = u
					}
				}
				now = maxf(now, up)
			}
			if attempt >= maxFaultAttempts {
				sched = nil
			}
			continue
		}

		srv := c.servers[tgt]
		key := [2]int{classIdx, tgt}
		st := states[key]
		if st == nil {
			st = &classState{}
			states[key] = st
		}
		lbn := lbns[rep]
		if seqWanted && st.valid {
			lbn = st.lastEnd
			if lbn >= srv.hw.Disk.NumBlocks {
				lbn = lbns[rep]
			}
		}
		blocks := (size + 4095) / 4096
		st.lastLBN = lbn
		st.lastEnd = lbn + blocks
		st.valid = true

		// Snapshot for mid-attempt failure rollback: a lost attempt's spans
		// are discarded and the (down) server's queues rewound, so the work
		// dissipates with the crash.
		saved := srv.freeAt
		spanBase := len(req.Spans)
		tryStart := now
		var cpuBusy float64
		end := now

		// Phase 1: network in. Writes carry the payload in; reads carry a
		// small header.
		inBytes := int64(256)
		if class.Op == trace.OpWrite {
			inBytes = size
		}
		end = c.span(srv, &req, trace.Network, end, srv.hw.Net.TransferTime(inBytes), func(s *trace.Span) {
			s.Bytes = inBytes
		})

		// Phase 2: CPU verify (header-scale processing). CPU spans record
		// the bytes processed so a replay engine can recompute their
		// durations.
		d := srv.hw.CPU.Time(256)
		cpuBusy += d
		end = c.span(srv, &req, trace.CPU, end, d, func(s *trace.Span) {
			s.Bytes = 256
		})

		// Phase 3: memory metadata/buffer access. Access size scales with
		// the request (buffer descriptors, checksum pages), capped at
		// 256 KiB; a cache hit serves the whole payload from memory.
		memBytes := size / 4
		if memBytes < 4096 {
			memBytes = 4096
		}
		if memBytes > 256<<10 {
			memBytes = 256 << 10
		}
		bank := int(lbn) % srv.hw.Mem.Banks
		row := (lbn * 4096) / srv.hw.Mem.RowBytes
		if hit {
			memBytes = size
			// Cached data has no accompanying storage span; use the same
			// row convention the replay engine applies to storage-less
			// requests.
			row = 0
		}
		d = srv.hw.Mem.Access(bank, row, memBytes)
		memOp := class.Op
		end = c.span(srv, &req, trace.Memory, end, d, func(s *trace.Span) {
			s.Op = memOp
			s.Bytes = memBytes
			s.Bank = bank
		})

		// Phase 4: storage I/O on the serving replica (skipped on a cache
		// hit).
		if !hit {
			d = srv.hw.Disk.Access(lbn, size)
			end = c.span(srv, &req, trace.Storage, end, d, func(s *trace.Span) {
				s.Op = class.Op
				s.Bytes = size
				s.LBN = lbn
			})
		}

		// Mid-attempt failure: the replica dying before the data phases
		// complete loses the attempt. Once the payload is durably stored,
		// the request is considered served — a crash during the final
		// aggregate/ack phases does not cost a retry.
		if sched != nil {
			if fail := sched.NextFailure(tgt, tryStart); fail < end {
				req.Spans = req.Spans[:spanBase]
				srv.freeAt = saved
				now = fail + fcfg.Timeout + retryBackoff(fcfg.Backoff, attempt)
				attempt++
				req.Retries++
				rep = (rep + 1) % len(servers)
				if attempt >= maxFaultAttempts {
					sched = nil
				}
				continue
			}
		}
		now = end

		// Writes propagate to replicas: their disks and networks are kept
		// busy, delaying later requests there, but the client is
		// acknowledged after the slowest replica write (series pipeline).
		// Down replicas are skipped; the master re-replicates their chunk
		// from the serving copy afterwards.
		var rereplBytes int64
		if class.Op == trace.OpWrite {
			for k := 1; k < len(servers); k++ {
				ri := (rep + k) % len(servers)
				if sched != nil && sched.DownAt(servers[ri], now) {
					rereplBytes += fcfg.RereplBytes
					continue
				}
				rsrv := c.servers[servers[ri]]
				net := rsrv.hw.Net.TransferTime(size)
				disk := rsrv.hw.Disk.Access(lbns[ri], size)
				start := maxf(now, rsrv.freeAt[trace.Network])
				rsrv.freeAt[trace.Network] = start + net
				dstart := maxf(start+net, rsrv.freeAt[trace.Storage])
				rsrv.freeAt[trace.Storage] = dstart + disk
				if end := dstart + disk; end > now {
					now = end
				}
			}
		}

		// Phase 5: CPU aggregate (checksum + copy of the payload).
		d = srv.hw.CPU.Time(size)
		cpuBusy += d
		now = c.span(srv, &req, trace.CPU, now, d, func(s *trace.Span) {
			s.Bytes = size
		})

		// Phase 6: network out. Reads return the payload; writes return an
		// ack.
		outBytes := int64(256)
		if class.Op == trace.OpRead {
			outBytes = size
		}
		now = c.span(srv, &req, trace.Network, now, srv.hw.Net.TransferTime(outBytes), func(s *trace.Span) {
			s.Bytes = outBytes
		})

		req.Server = tgt
		req.FailedOver = rep != 0
		if req.FailedOver {
			// A read or write served off-primary means the primary's copy
			// is suspect: the master re-replicates the chunk too.
			rereplBytes += fcfg.RereplBytes
		}
		if sched != nil && rereplBytes > 0 {
			// Master-triggered re-replication: background chunk read and
			// transfer queued on the serving replica behind this request.
			// It emits no spans (it is master traffic, not client work) but
			// delays later requests there — the degraded-mode load the
			// healthy simulator never shows.
			srv.freeAt[trace.Network] += srv.hw.Net.TransferTime(rereplBytes)
			srv.freeAt[trace.Storage] += srv.hw.Disk.Access(lbn, rereplBytes)
		}

		// Per-request CPU utilization: busy CPU time over the request's
		// residence time, the quantity the paper's processor model
		// captures. Retry and timeout delays count toward residence, so
		// faulty-regime CPU utilization sinks as tails inflate.
		latency := now - arrival
		util := 0.0
		if latency > 0 {
			util = cpuBusy / latency
		}
		if util > 1 {
			util = 1
		}
		for i := range req.Spans {
			if req.Spans[i].Subsystem == trace.CPU {
				req.Spans[i].Util = util
			}
		}
		return req, nil
	}
}

// span appends a span in the given subsystem, applying FIFO contention on
// that subsystem (flow-shop model), and returns the span's end time.
func (c *Cluster) span(srv *chunkserver, req *trace.Request, sub trace.Subsystem, ready, dur float64, fill func(*trace.Span)) float64 {
	start := maxf(ready, srv.freeAt[sub])
	s := trace.Span{Subsystem: sub, Start: start, Duration: dur}
	if fill != nil {
		fill(&s)
	}
	req.Spans = append(req.Spans, s)
	srv.freeAt[sub] = start + dur
	return start + dur
}

// ClosedRunConfig drives a closed-loop (interactive) simulation: a fixed
// population of users each issue a request, wait for its completion, think
// for an exponential time, and repeat — the workload shape of the
// closed-queueing-network analyses (MVA) in the in-depth literature.
type ClosedRunConfig struct {
	// Mix is the request-class mix.
	Mix *workload.Mix
	// Users is the closed population size (>= 1).
	Users int
	// MeanThink is the mean exponential think time between a user's
	// completion and next request (0 = no think time).
	MeanThink float64
	// Requests is the total number of requests to complete.
	Requests int
	// Faults, when non-nil, arms the fault-injection engine (see
	// RunConfig.Faults).
	Faults *fault.Config
	// FaultStream selects the failure-history sub-stream (see
	// RunConfig.FaultStream).
	FaultStream uint64
	// Recorder receives one dapper span tree per completed request (see
	// RunConfig.Recorder).
	Recorder dapper.Recorder
}

// RunClosed executes the closed-loop workload and returns the trace. The
// trace's Arrival fields are the instants users issued their requests.
func (c *Cluster) RunClosed(rc ClosedRunConfig, r *rand.Rand) (*trace.Trace, error) {
	if rc.Mix == nil {
		return nil, fmt.Errorf("gfs: closed run needs a request mix")
	}
	if rc.Users < 1 {
		return nil, fmt.Errorf("gfs: closed run needs >= 1 user, got %d", rc.Users)
	}
	if rc.MeanThink < 0 {
		return nil, fmt.Errorf("gfs: negative think time %g", rc.MeanThink)
	}
	if rc.Requests < 1 {
		return nil, fmt.Errorf("gfs: closed run needs >= 1 request, got %d", rc.Requests)
	}
	sched, err := c.schedule(rc.Faults, rc.FaultStream)
	if err != nil {
		return nil, err
	}
	think := func() float64 {
		if rc.MeanThink == 0 {
			return 0
		}
		return r.ExpFloat64() * rc.MeanThink
	}
	// Users ready to issue, as a typed min-heap over (ready time, user
	// index): O(log U) per request instead of a linear scan, with the same
	// lowest-index-wins tie-break the scan had.
	ready := make(userHeap, rc.Users)
	for i := range ready {
		ready[i] = userReady{at: think(), user: i}
	}
	ready.init()
	tr := &trace.Trace{Requests: make([]trace.Request, 0, rc.Requests)}
	states := make(map[[2]int]*classState)
	for i := 0; i < rc.Requests; i++ {
		// Pop the earliest-ready user.
		next := ready[0]
		issue := next.at
		classIdx := rc.Mix.Pick(r)
		class := rc.Mix.Classes[classIdx]
		req, err := c.execute(int64(i), issue, classIdx, class, states, r, sched)
		if err != nil {
			return nil, err
		}
		tr.Requests = append(tr.Requests, req)
		if rc.Recorder != nil {
			rc.Recorder.Record(dapper.FromRequest(req))
		}
		ready.replaceMin(userReady{at: issue + req.Latency() + think(), user: next.user})
	}
	return tr, nil
}

// userReady is one closed-loop user's next issue instant.
type userReady struct {
	at   float64
	user int
}

// userHeap is a typed binary min-heap of users keyed by (ready time, user
// index) — a total order, so the pop sequence exactly matches the linear
// earliest-ready scan (lowest index wins ties) it replaces.
type userHeap []userReady

func (h userHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].user < h[j].user
}

func (h userHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// replaceMin swaps the root for e and restores heap order: the closed loop
// always reinserts the user it just popped, so pop+push fuse into one
// sift-down with no slice traffic.
func (h userHeap) replaceMin(e userReady) {
	h[0] = e
	h.down(0)
}

func (h userHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// Reset rewinds all chunkserver hardware and availability state.
func (c *Cluster) Reset() {
	for _, s := range c.servers {
		s.hw.Reset()
		s.freeAt = [4]float64{}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// newZipfPop adapts stats.Zipf as a popularity source.
func newZipfPop(skew float64, n int) popularity {
	return zipfPop{z: newZipf(skew, n)}
}
