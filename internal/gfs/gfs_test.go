package gfs

import (
	"math/rand"
	"reflect"
	"testing"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runTrace(t *testing.T, c *Cluster, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := c.Run(RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewClusterValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no servers", func(c *Config) { c.Chunkservers = 0 }},
		{"zero chunk", func(c *Config) { c.ChunkSize = 0 }},
		{"no files", func(c *Config) { c.Files = 0 }},
		{"small file", func(c *Config) { c.FileSize = 1 }},
		{"negative skew", func(c *Config) { c.PopularitySkew = -1 }},
		{"negative segment", func(c *Config) { c.SegmentBytes = -1 }},
		{"bad cache prob", func(c *Config) { c.CacheHitProb = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewCluster(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := NewCluster(DefaultConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestNewClusterDiskCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Files = 100000 // 100k x 256 MiB >> 512 GiB
	if _, err := NewCluster(cfg); err == nil {
		t.Error("overfull disk should fail placement")
	}
}

func TestMasterLookup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chunkservers = 4
	c := testCluster(t, cfg)
	m := c.Master()
	if m.Chunks() != cfg.Files*int(cfg.FileSize/cfg.ChunkSize) {
		t.Errorf("chunks = %d", m.Chunks())
	}
	srv, lbn, err := m.Lookup(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if srv < 0 || srv >= 4 || lbn < 0 {
		t.Errorf("lookup = %d, %d", srv, lbn)
	}
	// Offsets inside the same chunk resolve to the same server and
	// consecutive LBNs.
	srv2, lbn2, err := m.Lookup(0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if srv2 != srv || lbn2 != lbn+2 {
		t.Errorf("intra-chunk lookup: (%d,%d) vs (%d,%d)", srv2, lbn2, srv, lbn)
	}
	if _, _, err := m.Lookup(-1, 0); err == nil {
		t.Error("bad file should fail")
	}
	if _, _, err := m.Lookup(0, cfg.FileSize*2); err == nil {
		t.Error("bad offset should fail")
	}
	if _, _, err := m.Replicas(99999, 0); err == nil {
		t.Error("bad file should fail replicas")
	}
	if _, _, err := m.Replicas(0, -cfg.ChunkSize); err == nil {
		t.Error("negative offset should fail replicas")
	}
}

func TestRunProducesFigure1Structure(t *testing.T) {
	c := testCluster(t, DefaultConfig())
	tr := runTrace(t, c, 200, 400)
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	want := []trace.Subsystem{
		trace.Network, trace.CPU, trace.Memory, trace.Storage, trace.CPU, trace.Network,
	}
	for _, r := range tr.Requests {
		if !reflect.DeepEqual(r.Phases(), want) {
			t.Fatalf("request %d phases = %v, want %v", r.ID, r.Phases(), want)
		}
		// Spans are causally ordered.
		for i := 1; i < len(r.Spans); i++ {
			if r.Spans[i].Start+1e-12 < r.Spans[i-1].End() {
				t.Fatalf("request %d span %d starts before previous ends", r.ID, i)
			}
		}
	}
}

func TestRunTable2Features(t *testing.T) {
	// The two validation classes must carry the paper's Table 2 features:
	// request size on the network, memory size/type, storage size/type.
	c := testCluster(t, DefaultConfig())
	tr := runTrace(t, c, 500, 401)
	reads := tr.ByClass("read64K")
	writes := tr.ByClass("write4M")
	if reads.Len() == 0 || writes.Len() == 0 {
		t.Fatal("both classes should appear")
	}
	for _, r := range reads.Requests {
		st := r.SpansIn(trace.Storage)[0]
		if st.Bytes != 64<<10 || st.Op != trace.OpRead {
			t.Fatalf("read storage span = %+v", st)
		}
		mem := r.SpansIn(trace.Memory)[0]
		if mem.Bytes != 16<<10 || mem.Op != trace.OpRead {
			t.Fatalf("read memory span = %+v (want 16K read)", mem)
		}
		// Response network span carries the payload.
		net := r.SpansIn(trace.Network)
		if net[1].Bytes != 64<<10 {
			t.Fatalf("read network out = %d", net[1].Bytes)
		}
	}
	for _, w := range writes.Requests {
		st := w.SpansIn(trace.Storage)[0]
		if st.Bytes != 4<<20 || st.Op != trace.OpWrite {
			t.Fatalf("write storage span = %+v", st)
		}
		mem := w.SpansIn(trace.Memory)[0]
		if mem.Bytes != 256<<10 || mem.Op != trace.OpWrite {
			t.Fatalf("write memory span = %+v (want 256K write)", mem)
		}
		net := w.SpansIn(trace.Network)
		if net[0].Bytes != 4<<20 {
			t.Fatalf("write network in = %d", net[0].Bytes)
		}
	}
}

func TestRunLatencyBallpark(t *testing.T) {
	// Latencies should land in the paper's order of magnitude
	// (milliseconds to tens of milliseconds).
	c := testCluster(t, DefaultConfig())
	tr := runTrace(t, c, 1000, 402)
	readLat := stats.Mean(tr.ByClass("read64K").Latencies())
	writeLat := stats.Mean(tr.ByClass("write4M").Latencies())
	if readLat < 0.001 || readLat > 0.05 {
		t.Errorf("64K read latency = %g s, want ~0.01", readLat)
	}
	if writeLat < 0.005 || writeLat > 0.1 {
		t.Errorf("4M write latency = %g s, want ~0.02", writeLat)
	}
	if writeLat <= readLat {
		t.Errorf("write %g should exceed read %g", writeLat, readLat)
	}
	// CPU utilization per request: a few percent, write above read.
	readUtil := stats.Mean(tr.ByClass("read64K").SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util }))
	writeUtil := stats.Mean(tr.ByClass("write4M").SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util }))
	if readUtil <= 0 || readUtil > 0.2 {
		t.Errorf("read CPU util = %g, want small positive", readUtil)
	}
	if writeUtil <= readUtil {
		t.Errorf("write util %g should exceed read util %g", writeUtil, readUtil)
	}
}

func TestSequentialityLowersStorageTime(t *testing.T) {
	mkMix := func(seq float64) *workload.Mix {
		m, err := workload.NewMix([]workload.ClassSpec{{
			Name: "r", Weight: 1, Op: trace.OpRead,
			Size:           stats.Deterministic{Value: 64 << 10},
			SequentialProb: seq,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(seq float64) float64 {
		c := testCluster(t, DefaultConfig())
		tr, err := c.Run(RunConfig{
			Mix:      mkMix(seq),
			Arrivals: workload.Poisson{Rate: 10},
			Requests: 800,
		}, rand.New(rand.NewSource(403)))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(tr.SpanFeature(trace.Storage, func(s trace.Span) float64 { return s.Duration }))
	}
	random := run(0)
	sequential := run(0.95)
	if sequential >= random*0.7 {
		t.Errorf("sequential storage time %g not clearly below random %g", sequential, random)
	}
}

func TestReplicationSlowsWrites(t *testing.T) {
	run := func(replication int) float64 {
		cfg := DefaultConfig()
		cfg.Chunkservers = 3
		cfg.Replication = replication
		c := testCluster(t, cfg)
		tr := runTrace(t, c, 400, 404)
		return stats.Mean(tr.ByClass("write4M").Latencies())
	}
	r1 := run(1)
	r3 := run(3)
	if r3 <= r1 {
		t.Errorf("3-way replicated writes %g not slower than unreplicated %g", r3, r1)
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	c1 := testCluster(t, DefaultConfig())
	c2 := testCluster(t, DefaultConfig())
	tr1 := runTrace(t, c1, 300, 405)
	tr2 := runTrace(t, c2, 300, 405)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("same seed should reproduce the trace exactly")
	}
}

func TestRunErrors(t *testing.T) {
	c := testCluster(t, DefaultConfig())
	r := rand.New(rand.NewSource(1))
	if _, err := c.Run(RunConfig{Arrivals: workload.Poisson{Rate: 1}, Requests: 1}, r); err == nil {
		t.Error("nil mix should fail")
	}
	if _, err := c.Run(RunConfig{Mix: workload.Table2Mix(), Requests: 1}, r); err == nil {
		t.Error("nil arrivals should fail")
	}
	if _, err := c.Run(RunConfig{Mix: workload.Table2Mix(), Arrivals: workload.Poisson{Rate: 1}}, r); err == nil {
		t.Error("zero requests should fail")
	}
}

func TestResetRewindsState(t *testing.T) {
	c := testCluster(t, DefaultConfig())
	tr1 := runTrace(t, c, 100, 406)
	c.Reset()
	tr2 := runTrace(t, c, 100, 406)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("reset + same seed should reproduce the trace")
	}
}

func TestCacheHitsSkipStorage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheHitProb = 0.5
	c := testCluster(t, cfg)
	tr := runTrace(t, c, 2000, 409)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	reads := tr.ByClass("read64K")
	var hits, misses int
	var hitLat, missLat float64
	for _, r := range reads.Requests {
		if len(r.SpansIn(trace.Storage)) == 0 {
			hits++
			hitLat += r.Latency()
			// The memory phase carries the full payload on a hit.
			if mem := r.SpansIn(trace.Memory); mem[0].Bytes != 64<<10 {
				t.Fatalf("hit memory bytes = %d, want full payload", mem[0].Bytes)
			}
		} else {
			misses++
			missLat += r.Latency()
		}
	}
	frac := float64(hits) / float64(reads.Len())
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("hit fraction = %g, want ~0.5", frac)
	}
	if hitLat/float64(hits) >= missLat/float64(misses)/3 {
		t.Errorf("hits (%g) should be far faster than misses (%g)",
			hitLat/float64(hits), missLat/float64(misses))
	}
	// Writes are unaffected by the cache.
	for _, w := range tr.ByClass("write4M").Requests {
		if len(w.SpansIn(trace.Storage)) != 1 {
			t.Fatal("write lost its storage phase")
		}
	}
}

func TestMultiServerSpreadsLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chunkservers = 4
	cfg.PopularitySkew = 0 // uniform
	c := testCluster(t, cfg)
	tr := runTrace(t, c, 2000, 407)
	counts := make([]int, 4)
	for _, r := range tr.Requests {
		counts[r.Server]++
	}
	for s, n := range counts {
		if n < 300 {
			t.Errorf("server %d got %d requests, want roughly balanced", s, n)
		}
	}
}

func TestPopularitySkewConcentratesFiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chunkservers = 8
	cfg.Files = 64
	cfg.PopularitySkew = 1.2
	c := testCluster(t, cfg)
	tr := runTrace(t, c, 2000, 408)
	counts := make(map[int]int)
	for _, r := range tr.Requests {
		counts[r.Server]++
	}
	// Skewed popularity over round-robin-placed files: the busiest server
	// should clearly exceed the average load. Under uniform popularity the
	// max is ~250 with a multinomial sd of ~15, so 1.2x the mean (300) is
	// >3 sd above uniform while the skewed statistic lands at 310-335
	// across seeds.
	var maxN int
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 2000/8*6/5 {
		t.Errorf("max server load %d not skewed above mean %d", maxN, 2000/8)
	}
}
