package gfs

import (
	"math/rand"

	"dcmodel/internal/stats"
)

// zipfPop draws file ranks from a Zipf popularity distribution.
type zipfPop struct {
	z *stats.Zipf
}

func (p zipfPop) Rand(r *rand.Rand) float64 { return p.z.Rand(r) }

func newZipf(skew float64, n int) *stats.Zipf { return stats.NewZipf(skew, n) }
