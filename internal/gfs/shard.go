package gfs

import (
	"fmt"
	"sort"

	"dcmodel/internal/par"
	"dcmodel/internal/prand"
	"dcmodel/internal/trace"
)

// Sharded simulation: the client population is partitioned into shards,
// each shard driving its own replica of the configured cluster — the
// "multiple instances of the model" scaling route the paper describes for
// multi-server scenarios. Shard s simulates its share of the requests with
// an independent rand stream derived from the top-level seed via SplitMix64
// (prand.Derive(seed, s)); shard traces are merged by arrival time with a
// deterministic tie-break and request IDs reassigned in merge order.
//
// Because every shard's randomness, hardware state and request quota are
// fixed functions of (cfg, rc, shards, seed) — never of the worker count —
// a parallel run is byte-identical to a serial (workers=1) run of the same
// decomposition. Workers only bounds how many shards execute concurrently.

// shardQuota splits total into counts: base everywhere plus one extra for
// the first total%shards shards.
func shardQuota(total, shards int) []int {
	out := make([]int, shards)
	base, extra := total/shards, total%shards
	for s := range out {
		out[s] = base
		if s < extra {
			out[s]++
		}
	}
	return out
}

// mergeShards flattens per-shard traces (ordered by shard index) into one
// trace sorted by arrival, breaking ties by shard index then per-shard
// order, and reassigns request IDs densely in merge order. Server IDs are
// offset so shard s's servers occupy [s*serversPerShard, (s+1)*serversPerShard).
func mergeShards(shards []*trace.Trace, serversPerShard int) *trace.Trace {
	total := 0
	for _, tr := range shards {
		if tr != nil {
			total += tr.Len()
		}
	}
	merged := &trace.Trace{Requests: make([]trace.Request, 0, total)}
	for s, tr := range shards {
		if tr == nil {
			continue
		}
		for _, req := range tr.Requests {
			req.Server += s * serversPerShard
			merged.Requests = append(merged.Requests, req)
		}
	}
	// Within a shard requests are already in issue order; a stable sort on
	// arrival therefore keeps the (shard, local order) tie-break.
	sort.SliceStable(merged.Requests, func(i, j int) bool {
		return merged.Requests[i].Arrival < merged.Requests[j].Arrival
	})
	for i := range merged.Requests {
		merged.Requests[i].ID = int64(i)
	}
	return merged
}

// SimulateSharded runs rc across `shards` independent cluster partitions on
// up to `workers` goroutines (workers<=0 = GOMAXPROCS, 1 = serial) and
// returns the merged trace. rc.Requests is the total across all shards;
// each shard's client partition drives its own instance of rc.Arrivals, so
// the merged stream is the superposition of `shards` independent arrival
// processes. The output depends only on (cfg, rc, shards, seed).
func SimulateSharded(cfg Config, rc RunConfig, shards, workers int, seed int64) (*trace.Trace, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gfs: need >= 1 shard, got %d", shards)
	}
	if rc.Requests < shards {
		return nil, fmt.Errorf("gfs: %d requests cannot cover %d shards", rc.Requests, shards)
	}
	quota := shardQuota(rc.Requests, shards)
	traces := make([]*trace.Trace, shards)
	err := par.Do(shards, workers, func(s int) error {
		cluster, err := NewCluster(cfg)
		if err != nil {
			return fmt.Errorf("gfs: shard %d: %w", s, err)
		}
		src := rc
		src.Requests = quota[s]
		// Each shard's failure history comes from its own sub-stream, so
		// faulty output is a fixed function of (cfg, rc, shards, seed) —
		// independent of the worker count, exactly like the workload draws.
		src.FaultStream = uint64(s)
		tr, err := cluster.Run(src, prand.New(seed, uint64(s)))
		if err != nil {
			return fmt.Errorf("gfs: shard %d: %w", s, err)
		}
		traces[s] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(traces, cfg.Chunkservers), nil
}

// SimulateMulti is the heterogeneous sibling of SimulateSharded: partition
// s runs its own RunConfig rcs[s] (its own mix, arrival process, request
// count) against an independent instance of the configured cluster, and
// the partition traces merge exactly like shards. Each partition's rand
// and fault sub-streams are keyed by its index, never by the worker
// count, so the merged trace is a fixed function of (cfg, rcs, seed). The
// spec engine uses this to compose multi-client scenarios.
func SimulateMulti(cfg Config, rcs []RunConfig, workers int, seed int64) (*trace.Trace, error) {
	if len(rcs) == 0 {
		return nil, fmt.Errorf("gfs: need >= 1 run config")
	}
	traces := make([]*trace.Trace, len(rcs))
	err := par.Do(len(rcs), workers, func(s int) error {
		if rcs[s].Requests < 1 {
			return fmt.Errorf("gfs: partition %d: need >= 1 request, got %d", s, rcs[s].Requests)
		}
		cluster, err := NewCluster(cfg)
		if err != nil {
			return fmt.Errorf("gfs: partition %d: %w", s, err)
		}
		src := rcs[s]
		src.FaultStream = uint64(s)
		tr, err := cluster.Run(src, prand.New(seed, uint64(s)))
		if err != nil {
			return fmt.Errorf("gfs: partition %d: %w", s, err)
		}
		traces[s] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(traces, cfg.Chunkservers), nil
}

// SimulateShardedClosed is the closed-loop counterpart of SimulateSharded:
// rc.Users and rc.Requests are totals, partitioned across the shards (every
// shard keeps at least one user; shards is capped at rc.Users).
func SimulateShardedClosed(cfg Config, rc ClosedRunConfig, shards, workers int, seed int64) (*trace.Trace, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gfs: need >= 1 shard, got %d", shards)
	}
	if rc.Users < 1 {
		return nil, fmt.Errorf("gfs: closed run needs >= 1 user, got %d", rc.Users)
	}
	if shards > rc.Users {
		shards = rc.Users
	}
	if rc.Requests < shards {
		return nil, fmt.Errorf("gfs: %d requests cannot cover %d shards", rc.Requests, shards)
	}
	users := shardQuota(rc.Users, shards)
	quota := shardQuota(rc.Requests, shards)
	traces := make([]*trace.Trace, shards)
	err := par.Do(shards, workers, func(s int) error {
		cluster, err := NewCluster(cfg)
		if err != nil {
			return fmt.Errorf("gfs: shard %d: %w", s, err)
		}
		src := rc
		src.Users = users[s]
		src.Requests = quota[s]
		src.FaultStream = uint64(s)
		tr, err := cluster.RunClosed(src, prand.New(seed, uint64(s)))
		if err != nil {
			return fmt.Errorf("gfs: shard %d: %w", s, err)
		}
		traces[s] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(traces, cfg.Chunkservers), nil
}
