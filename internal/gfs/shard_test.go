package gfs

import (
	"reflect"
	"sort"
	"testing"

	"dcmodel/internal/prand"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func shardCfg() Config {
	cfg := DefaultConfig()
	cfg.Chunkservers = 2
	cfg.Files = 8
	return cfg
}

func openRC(n int) RunConfig {
	return RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}
}

// TestShardedParallelMatchesSerial is the core determinism regression: for
// a fixed seed and shard count, a run on 8 workers must be byte-identical
// to the serial (workers=1) run.
func TestShardedParallelMatchesSerial(t *testing.T) {
	serial, err := SimulateSharded(shardCfg(), openRC(600), 6, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SimulateSharded(shardCfg(), openRC(600), 6, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sharded trace differs from serial run of the same decomposition")
	}
	if serial.Len() != 600 {
		t.Fatalf("merged trace has %d requests, want 600", serial.Len())
	}
}

func TestShardedClosedParallelMatchesSerial(t *testing.T) {
	rc := ClosedRunConfig{
		Mix:       workload.Table2Mix(),
		Users:     10,
		MeanThink: 0.05,
		Requests:  400,
	}
	serial, err := SimulateShardedClosed(shardCfg(), rc, 5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SimulateShardedClosed(shardCfg(), rc, 5, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sharded closed trace differs from serial run")
	}
	if serial.Len() != 400 {
		t.Fatalf("merged trace has %d requests, want 400", serial.Len())
	}
}

// TestShardedMergeInvariants checks the merge contract: arrivals
// non-decreasing, IDs dense in merge order, servers offset per shard, and
// every request structurally valid.
func TestShardedMergeInvariants(t *testing.T) {
	const shards = 4
	cfg := shardCfg()
	tr, err := SimulateSharded(cfg, openRC(500), shards, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Arrival < tr.Requests[j].Arrival
	}) {
		t.Error("merged trace not sorted by arrival")
	}
	for i, r := range tr.Requests {
		if r.ID != int64(i) {
			t.Fatalf("request %d has ID %d, want dense merge-order IDs", i, r.ID)
		}
		if r.Server < 0 || r.Server >= shards*cfg.Chunkservers {
			t.Fatalf("request %d on server %d, want < %d", i, r.Server, shards*cfg.Chunkservers)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// All shard partitions must actually be exercised.
	seen := map[int]bool{}
	for _, r := range tr.Requests {
		seen[r.Server/cfg.Chunkservers] = true
	}
	if len(seen) != shards {
		t.Errorf("only %d of %d shard partitions executed requests", len(seen), shards)
	}
}

// TestShardedSingleShardMatchesPlainRun pins the sharded seeding scheme:
// one shard is exactly a plain Run with the shard-0 derived stream.
func TestShardedSingleShardMatchesPlainRun(t *testing.T) {
	sharded, err := SimulateSharded(shardCfg(), openRC(200), 1, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(shardCfg())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cluster.Run(openRC(200), prand.New(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	// The merge reassigns IDs in arrival order; align before comparing.
	plainSorted := &trace.Trace{Requests: append([]trace.Request(nil), plain.Requests...)}
	sort.SliceStable(plainSorted.Requests, func(i, j int) bool {
		return plainSorted.Requests[i].Arrival < plainSorted.Requests[j].Arrival
	})
	for i := range plainSorted.Requests {
		plainSorted.Requests[i].ID = int64(i)
	}
	if !reflect.DeepEqual(sharded, plainSorted) {
		t.Fatal("single-shard sharded run differs from plain run with the derived stream")
	}
}

func TestShardedSeedsDisjoint(t *testing.T) {
	a, err := SimulateSharded(shardCfg(), openRC(300), 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSharded(shardCfg(), openRC(300), 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical sharded traces")
	}
}

func TestShardedErrors(t *testing.T) {
	if _, err := SimulateSharded(shardCfg(), openRC(100), 0, 1, 1); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := SimulateSharded(shardCfg(), openRC(3), 8, 1, 1); err == nil {
		t.Error("fewer requests than shards should fail")
	}
	bad := shardCfg()
	bad.Files = 0
	if _, err := SimulateSharded(bad, openRC(100), 2, 2, 1); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := SimulateShardedClosed(shardCfg(), ClosedRunConfig{
		Mix: workload.Table2Mix(), Users: 0, Requests: 10,
	}, 2, 1, 1); err == nil {
		t.Error("closed run with 0 users should fail")
	}
}
