// Package gwp is a Google-Wide-Profiling-style continuous profiler for
// workload traces: where Dapper follows single requests in depth, GWP
// samples across machines to surface aggregate trends — "high-level events
// like job arrival rate, and task sizes and low-level system information
// like CPU utilization" — with adaptive sampling to bound collection
// overhead while "ensuring no critical information loss".
//
// Collect performs whole-machine sampling (per-subsystem busy fractions at
// periodic instants) and per-process collection (per-request-class
// profiles), adapting the sampling period when the configured sample
// budget would be exceeded.
package gwp

import (
	"fmt"
	"sort"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Options configures collection.
type Options struct {
	// Period is the base sampling period in seconds. Default 0.01.
	Period float64
	// MaxSamples bounds the total sampling instants; when the trace
	// duration would produce more, the period is stretched (adaptive
	// sampling). Default 10000.
	MaxSamples int
}

func (o Options) withDefaults() Options {
	if o.Period <= 0 {
		o.Period = 0.01
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 10000
	}
	return o
}

// MachineProfile is the whole-machine sample aggregate of one server.
type MachineProfile struct {
	Server int
	// Busy is the sampled busy fraction per subsystem.
	Busy map[trace.Subsystem]float64
	// Samples is the number of sampling instants.
	Samples int
}

// ClassProfile is the per-process (per request class) aggregate.
type ClassProfile struct {
	Class string
	// Requests is the class's request count.
	Requests int
	// MeanBytes is the mean storage I/O size.
	MeanBytes float64
	// MeanLatency is the mean end-to-end latency.
	MeanLatency float64
	// MeanUtil is the mean per-request CPU utilization.
	MeanUtil float64
}

// Profile is the collected result.
type Profile struct {
	// Duration is the profiled time span.
	Duration float64
	// EffectivePeriod is the (possibly adapted) sampling period used.
	EffectivePeriod float64
	// Adapted reports whether the period was stretched to fit MaxSamples.
	Adapted bool
	// Samples is the number of sampling instants.
	Samples int
	// Machines holds one profile per server, ordered by server id.
	Machines []MachineProfile
	// Classes holds per-class profiles, hottest (most requests) first.
	Classes []ClassProfile
	// ArrivalRate is the measured request arrival rate.
	ArrivalRate float64
}

// interval is a closed-open busy interval.
type interval struct{ start, end float64 }

// Collect profiles the trace.
func Collect(tr *trace.Trace, opts Options) (*Profile, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	opts = opts.withDefaults()
	// Gather per-(server, subsystem) busy intervals and the duration.
	var duration float64
	busy := make(map[int]map[trace.Subsystem][]interval)
	maxServer := 0
	for _, r := range tr.Requests {
		if r.Server > maxServer {
			maxServer = r.Server
		}
		if end := r.Arrival + r.Latency(); end > duration {
			duration = end
		}
		m := busy[r.Server]
		if m == nil {
			m = make(map[trace.Subsystem][]interval)
			busy[r.Server] = m
		}
		for _, s := range r.Spans {
			m[s.Subsystem] = append(m[s.Subsystem], interval{s.Start, s.End()})
		}
	}
	if duration <= 0 {
		return nil, fmt.Errorf("gwp: trace has zero duration")
	}
	period := opts.Period
	adapted := false
	if int(duration/period) > opts.MaxSamples {
		period = duration / float64(opts.MaxSamples)
		adapted = true
	}
	nSamples := int(duration / period)
	if nSamples < 1 {
		nSamples = 1
	}
	p := &Profile{
		Duration:        duration,
		EffectivePeriod: period,
		Adapted:         adapted,
		Samples:         nSamples,
	}
	// Whole-machine sampling.
	for server := 0; server <= maxServer; server++ {
		mp := MachineProfile{Server: server, Busy: make(map[trace.Subsystem]float64), Samples: nSamples}
		for _, sub := range trace.Subsystems() {
			ivs := merged(busy[server][sub])
			var hits int
			idx := 0
			for k := 0; k < nSamples; k++ {
				t := (float64(k) + 0.5) * period
				for idx < len(ivs) && ivs[idx].end <= t {
					idx++
				}
				if idx < len(ivs) && ivs[idx].start <= t {
					hits++
				}
			}
			mp.Busy[sub] = float64(hits) / float64(nSamples)
		}
		p.Machines = append(p.Machines, mp)
	}
	// Per-process collection.
	for _, class := range tr.Classes() {
		sub := tr.ByClass(class)
		cp := ClassProfile{
			Class:       class,
			Requests:    sub.Len(),
			MeanBytes:   stats.Mean(sub.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })),
			MeanLatency: stats.Mean(sub.Latencies()),
			MeanUtil:    stats.Mean(sub.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util })),
		}
		p.Classes = append(p.Classes, cp)
	}
	sort.SliceStable(p.Classes, func(i, j int) bool { return p.Classes[i].Requests > p.Classes[j].Requests })
	if gaps := tr.Interarrivals(); len(gaps) > 0 {
		if m := stats.Mean(gaps); m > 0 {
			p.ArrivalRate = 1 / m
		}
	}
	return p, nil
}

// merged sorts and merges overlapping intervals.
func merged(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// ExactBusyFraction computes the true busy fraction of one server's
// subsystem from the trace intervals — the ground truth the sampled
// estimate converges to.
func ExactBusyFraction(tr *trace.Trace, server int, sub trace.Subsystem) float64 {
	var ivs []interval
	var duration float64
	for _, r := range tr.Requests {
		if end := r.Arrival + r.Latency(); end > duration {
			duration = end
		}
		if r.Server != server {
			continue
		}
		for _, s := range r.Spans {
			if s.Subsystem == sub {
				ivs = append(ivs, interval{s.Start, s.End()})
			}
		}
	}
	if duration <= 0 {
		return 0
	}
	var busyTime float64
	for _, iv := range merged(ivs) {
		busyTime += iv.end - iv.start
	}
	return busyTime / duration
}
