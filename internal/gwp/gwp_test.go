package gwp

import (
	"math"
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsTrace(t *testing.T, servers, n int, seed int64) *trace.Trace {
	t.Helper()
	cfg := gfs.DefaultConfig()
	cfg.Chunkservers = servers
	c, err := gfs.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 30},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCollectBasics(t *testing.T) {
	tr := gfsTrace(t, 1, 2000, 1000)
	p, err := Collect(tr, Options{Period: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Machines) != 1 {
		t.Fatalf("machines = %d", len(p.Machines))
	}
	if len(p.Classes) != 2 {
		t.Fatalf("classes = %d", len(p.Classes))
	}
	if p.ArrivalRate < 25 || p.ArrivalRate > 35 {
		t.Errorf("arrival rate = %g, want ~30", p.ArrivalRate)
	}
	// Classes sorted by request count, hottest first.
	if p.Classes[0].Requests < p.Classes[1].Requests {
		t.Error("classes not sorted by heat")
	}
	for _, c := range p.Classes {
		if c.MeanLatency <= 0 || c.MeanBytes <= 0 || c.MeanUtil <= 0 {
			t.Errorf("class %s has empty aggregates: %+v", c.Class, c)
		}
	}
}

func TestSampledBusyMatchesExact(t *testing.T) {
	// GWP's validity criterion: the sampled busy fraction converges to
	// the true busy-time fraction.
	tr := gfsTrace(t, 1, 3000, 1001)
	p, err := Collect(tr, Options{Period: 0.0005, MaxSamples: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range trace.Subsystems() {
		exact := ExactBusyFraction(tr, 0, sub)
		sampled := p.Machines[0].Busy[sub]
		if math.Abs(exact-sampled) > 0.02 {
			t.Errorf("%s: sampled %g vs exact %g", sub, sampled, exact)
		}
	}
	// Storage should be the busiest subsystem on this workload.
	busy := p.Machines[0].Busy
	if busy[trace.Storage] < busy[trace.CPU] || busy[trace.Storage] < busy[trace.Memory] {
		t.Errorf("storage not dominant: %v", busy)
	}
}

func TestAdaptiveSampling(t *testing.T) {
	tr := gfsTrace(t, 1, 2000, 1002)
	p, err := Collect(tr, Options{Period: 1e-7, MaxSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Adapted {
		t.Error("period should have been adapted")
	}
	if p.Samples > 500 {
		t.Errorf("samples = %d exceeds budget", p.Samples)
	}
	if p.EffectivePeriod <= 1e-7 {
		t.Error("effective period should be stretched")
	}
	// Even adapted sampling should keep the busy estimate in the right
	// ballpark ("no critical information loss").
	exact := ExactBusyFraction(tr, 0, trace.Storage)
	if math.Abs(p.Machines[0].Busy[trace.Storage]-exact) > 0.1 {
		t.Errorf("adapted estimate too far off: %g vs %g", p.Machines[0].Busy[trace.Storage], exact)
	}
}

func TestCollectMultiServer(t *testing.T) {
	tr := gfsTrace(t, 4, 3000, 1003)
	p, err := Collect(tr, Options{Period: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Machines) != 4 {
		t.Fatalf("machines = %d", len(p.Machines))
	}
	for i, m := range p.Machines {
		if m.Server != i {
			t.Errorf("machine order wrong at %d", i)
		}
		if m.Busy[trace.Storage] <= 0 {
			t.Errorf("server %d has no storage activity", i)
		}
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect(nil, Options{}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Collect(&trace.Trace{}, Options{}); err == nil {
		t.Error("empty trace should fail")
	}
	zero := &trace.Trace{Requests: []trace.Request{{ID: 1}}}
	if _, err := Collect(zero, Options{}); err == nil {
		t.Error("zero-duration trace should fail")
	}
}

func TestExactBusyFractionEdges(t *testing.T) {
	if got := ExactBusyFraction(&trace.Trace{}, 0, trace.CPU); got != 0 {
		t.Errorf("empty exact fraction = %g", got)
	}
	// Overlapping spans merge: two half-overlapping 1s spans over a 2s
	// trace = 1.5s busy / 2s.
	tr := &trace.Trace{Requests: []trace.Request{
		{ID: 1, Arrival: 0, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 0, Duration: 1},
			{Subsystem: trace.Network, Start: 1.9, Duration: 0.1},
		}},
		{ID: 2, Arrival: 0.5, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 0.5, Duration: 1},
		}},
	}}
	got := ExactBusyFraction(tr, 0, trace.CPU)
	if math.Abs(got-0.75) > 1e-9 {
		t.Errorf("merged busy fraction = %g, want 0.75", got)
	}
}
