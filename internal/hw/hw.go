// Package hw provides the parametric server-hardware models that both the
// GFS application simulator and the replay engine are layered on: a disk
// with positional seek state, a banked DRAM with row buffers, a CPU with a
// cycles-per-byte cost model, and a network link.
//
// The models are deterministic given their inputs and internal state;
// workload-level variability comes from the request streams driving them.
// Sharing one hardware substrate between trace generation and replay is
// what lets the validation experiments compare original and synthetic
// workloads on an equal platform (the paper measures both on the same
// system).
package hw

import (
	"fmt"
	"math"
)

// Disk models a mechanical disk: distance-dependent seek, rotational
// latency, and a sequential transfer rate. The head position persists
// across accesses, so spatial locality in the LBN stream directly shows up
// in access times — the property the storage Markov model must reproduce.
type Disk struct {
	// NumBlocks is the LBN address-space size.
	NumBlocks int64
	// BlockSize is the bytes per LBN.
	BlockSize int64
	// MinSeek is the track-to-track seek time (seconds).
	MinSeek float64
	// MaxSeek is the full-stroke seek time (seconds).
	MaxSeek float64
	// RotationalLatency is the average rotational delay (seconds).
	RotationalLatency float64
	// TransferRate is the sequential throughput in bytes/second.
	TransferRate float64

	head int64
}

// DefaultDisk returns a 7200rpm-class disk: 0.5-8 ms seek, 4.17 ms average
// rotation, 120 MB/s transfer, 512 GiB of 4 KiB blocks.
func DefaultDisk() *Disk {
	return &Disk{
		NumBlocks:         128 << 20, // 128 Mi blocks x 4 KiB = 512 GiB
		BlockSize:         4096,
		MinSeek:           0.0005,
		MaxSeek:           0.008,
		RotationalLatency: 0.00417,
		TransferRate:      120e6,
	}
}

// Validate reports a configuration error, if any.
func (d *Disk) Validate() error {
	switch {
	case d.NumBlocks <= 0:
		return fmt.Errorf("hw: disk needs positive NumBlocks, got %d", d.NumBlocks)
	case d.BlockSize <= 0:
		return fmt.Errorf("hw: disk needs positive BlockSize, got %d", d.BlockSize)
	case d.MinSeek < 0 || d.MaxSeek < d.MinSeek:
		return fmt.Errorf("hw: disk seek range [%g, %g] invalid", d.MinSeek, d.MaxSeek)
	case d.RotationalLatency < 0:
		return fmt.Errorf("hw: disk rotational latency %g negative", d.RotationalLatency)
	case d.TransferRate <= 0:
		return fmt.Errorf("hw: disk needs positive TransferRate, got %g", d.TransferRate)
	}
	return nil
}

// SeekTime returns the head-movement time from the current position to lbn
// using the standard square-root seek curve, without moving the head.
func (d *Disk) SeekTime(lbn int64) float64 {
	dist := lbn - d.head
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := float64(dist) / float64(d.NumBlocks)
	return d.MinSeek + (d.MaxSeek-d.MinSeek)*math.Sqrt(frac)
}

// Access performs an I/O of size bytes starting at lbn and returns its
// service time. The head moves to the end of the accessed range.
// Sequential accesses (lbn == current head) skip seek and rotation.
func (d *Disk) Access(lbn, bytes int64) float64 {
	if lbn < 0 {
		lbn = 0
	}
	if lbn >= d.NumBlocks {
		lbn = d.NumBlocks - 1
	}
	var t float64
	if lbn != d.head {
		t += d.SeekTime(lbn) + d.RotationalLatency
	}
	if bytes < 0 {
		bytes = 0
	}
	t += float64(bytes) / d.TransferRate
	blocks := (bytes + d.BlockSize - 1) / d.BlockSize
	d.head = lbn + blocks
	if d.head >= d.NumBlocks {
		d.head = d.NumBlocks - 1
	}
	return t
}

// Head returns the current head position (for tests and introspection).
func (d *Disk) Head() int64 { return d.head }

// Reset returns the head to block 0.
func (d *Disk) Reset() { d.head = 0 }

// Memory models banked DRAM with per-bank open rows: an access to the open
// row of a bank is a row hit, anything else pays the row-miss penalty.
type Memory struct {
	// Banks is the number of DRAM banks.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int64
	// HitLatency and MissLatency are per-access latencies (seconds).
	HitLatency, MissLatency float64
	// Bandwidth is the transfer throughput in bytes/second.
	Bandwidth float64

	openRows []int64
}

// DefaultMemory returns a DDR3-class memory: 8 banks, 8 KiB rows, 25/60 ns
// hit/miss latency, 12.8 GB/s.
func DefaultMemory() *Memory {
	return &Memory{
		Banks:       8,
		RowBytes:    8192,
		HitLatency:  25e-9,
		MissLatency: 60e-9,
		Bandwidth:   12.8e9,
	}
}

// Validate reports a configuration error, if any.
func (m *Memory) Validate() error {
	switch {
	case m.Banks <= 0:
		return fmt.Errorf("hw: memory needs positive Banks, got %d", m.Banks)
	case m.RowBytes <= 0:
		return fmt.Errorf("hw: memory needs positive RowBytes, got %d", m.RowBytes)
	case m.HitLatency < 0 || m.MissLatency < m.HitLatency:
		return fmt.Errorf("hw: memory latencies [%g, %g] invalid", m.HitLatency, m.MissLatency)
	case m.Bandwidth <= 0:
		return fmt.Errorf("hw: memory needs positive Bandwidth, got %g", m.Bandwidth)
	}
	return nil
}

// Access reads or writes bytes at the given bank and row, returning the
// access time. The bank's open row is updated.
func (m *Memory) Access(bank int, row int64, bytes int64) float64 {
	if m.openRows == nil {
		m.openRows = make([]int64, m.Banks)
		for i := range m.openRows {
			m.openRows[i] = -1
		}
	}
	if bank < 0 {
		bank = 0
	}
	bank %= m.Banks
	lat := m.MissLatency
	if m.openRows[bank] == row {
		lat = m.HitLatency
	}
	m.openRows[bank] = row
	if bytes < 0 {
		bytes = 0
	}
	return lat + float64(bytes)/m.Bandwidth
}

// Reset closes all rows.
func (m *Memory) Reset() { m.openRows = nil }

// CPU models a core with a fixed frequency and a cycles cost model: each
// request phase costs a base cycle count plus cycles per byte processed.
type CPU struct {
	// Frequency is the clock in Hz.
	Frequency float64
	// BaseCycles is the fixed per-phase overhead.
	BaseCycles float64
	// CyclesPerByte is the data-dependent processing cost.
	CyclesPerByte float64
}

// DefaultCPU returns a 2.4 GHz core with 50k base cycles and 1 cycle/byte
// (checksum/copy-class processing).
func DefaultCPU() *CPU {
	return &CPU{Frequency: 2.4e9, BaseCycles: 50e3, CyclesPerByte: 1}
}

// Validate reports a configuration error, if any.
func (c *CPU) Validate() error {
	switch {
	case c.Frequency <= 0:
		return fmt.Errorf("hw: cpu needs positive Frequency, got %g", c.Frequency)
	case c.BaseCycles < 0 || c.CyclesPerByte < 0:
		return fmt.Errorf("hw: cpu cycle costs must be non-negative")
	}
	return nil
}

// Time returns the service time of a phase processing the given bytes.
func (c *CPU) Time(bytes int64) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return (c.BaseCycles + c.CyclesPerByte*float64(bytes)) / c.Frequency
}

// Network models a full-duplex link with a fixed one-way latency and a
// bandwidth; transfers are store-and-forward.
type Network struct {
	// Latency is the one-way propagation + protocol latency (seconds).
	Latency float64
	// Bandwidth is the link throughput in bytes/second.
	Bandwidth float64
}

// DefaultNetwork returns a 1 GbE-class datacenter link: 100 us latency,
// 125 MB/s.
func DefaultNetwork() *Network {
	return &Network{Latency: 100e-6, Bandwidth: 125e6}
}

// Validate reports a configuration error, if any.
func (n *Network) Validate() error {
	switch {
	case n.Latency < 0:
		return fmt.Errorf("hw: network latency %g negative", n.Latency)
	case n.Bandwidth <= 0:
		return fmt.Errorf("hw: network needs positive Bandwidth, got %g", n.Bandwidth)
	}
	return nil
}

// TransferTime returns the time to move bytes across the link.
func (n *Network) TransferTime(bytes int64) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return n.Latency + float64(bytes)/n.Bandwidth
}

// Server bundles the four subsystem models of one machine.
type Server struct {
	Disk *Disk
	Mem  *Memory
	CPU  *CPU
	Net  *Network
}

// DefaultServer returns a server with all default subsystem models.
func DefaultServer() *Server {
	return &Server{
		Disk: DefaultDisk(),
		Mem:  DefaultMemory(),
		CPU:  DefaultCPU(),
		Net:  DefaultNetwork(),
	}
}

// Validate validates every subsystem model.
func (s *Server) Validate() error {
	if s.Disk == nil || s.Mem == nil || s.CPU == nil || s.Net == nil {
		return fmt.Errorf("hw: server needs all four subsystem models")
	}
	if err := s.Disk.Validate(); err != nil {
		return err
	}
	if err := s.Mem.Validate(); err != nil {
		return err
	}
	if err := s.CPU.Validate(); err != nil {
		return err
	}
	return s.Net.Validate()
}

// Reset clears all stateful components (disk head, open rows).
func (s *Server) Reset() {
	s.Disk.Reset()
	s.Mem.Reset()
}
