package hw

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestDiskSequentialVsRandom(t *testing.T) {
	d := DefaultDisk()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// First access from head 0 to far LBN pays seek + rotation.
	far := d.Access(d.NumBlocks/2, 4096)
	d.Reset()
	// Access at the head position is pure transfer.
	seq := d.Access(0, 4096)
	if far <= seq {
		t.Errorf("random access %g not slower than sequential %g", far, seq)
	}
	approx(t, seq, 4096/d.TransferRate, 1e-12, "sequential transfer time")
}

func TestDiskSeekCurveMonotone(t *testing.T) {
	d := DefaultDisk()
	prev := -1.0
	for _, dist := range []int64{1, 10, 1000, 1 << 20, d.NumBlocks - 1} {
		s := d.SeekTime(dist)
		if s <= prev {
			t.Errorf("seek time to %d = %g not increasing", dist, s)
		}
		prev = s
	}
	if d.SeekTime(0) != 0 {
		t.Error("zero-distance seek should be free")
	}
	approx(t, d.SeekTime(d.NumBlocks), d.MaxSeek, 1e-6, "full-stroke seek")
}

func TestDiskHeadAdvances(t *testing.T) {
	d := DefaultDisk()
	d.Access(100, 8192) // 2 blocks at 4 KiB
	if d.Head() != 102 {
		t.Errorf("head = %d, want 102", d.Head())
	}
	// Next sequential access from 102 pays no seek.
	tSeq := d.Access(102, 4096)
	approx(t, tSeq, 4096/d.TransferRate, 1e-12, "sequential after advance")
	// Clamping: out-of-range LBN.
	d.Access(d.NumBlocks+5, 4096)
	if d.Head() >= d.NumBlocks {
		t.Error("head should clamp inside the address space")
	}
	d.Access(-5, -100)
	if d.Head() < 0 {
		t.Error("head should not go negative")
	}
}

func TestDiskValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Disk)
	}{
		{"blocks", func(d *Disk) { d.NumBlocks = 0 }},
		{"blocksize", func(d *Disk) { d.BlockSize = 0 }},
		{"seek", func(d *Disk) { d.MaxSeek = d.MinSeek - 1 }},
		{"rot", func(d *Disk) { d.RotationalLatency = -1 }},
		{"rate", func(d *Disk) { d.TransferRate = 0 }},
	}
	for _, tt := range tests {
		d := DefaultDisk()
		tt.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
	}
}

func TestMemoryRowHitVsMiss(t *testing.T) {
	m := DefaultMemory()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	first := m.Access(0, 7, 64) // cold: row miss
	hit := m.Access(0, 7, 64)   // same row: hit
	miss := m.Access(0, 9, 64)  // new row: miss
	if hit >= first || hit >= miss {
		t.Errorf("row hit %g not faster than misses %g/%g", hit, first, miss)
	}
	approx(t, hit, m.HitLatency+64/m.Bandwidth, 1e-15, "hit latency")
	approx(t, miss, m.MissLatency+64/m.Bandwidth, 1e-15, "miss latency")
}

func TestMemoryBanksIndependent(t *testing.T) {
	m := DefaultMemory()
	m.Access(0, 7, 64)
	// Different bank, same row number: its own open row, so a miss.
	miss := m.Access(1, 7, 64)
	approx(t, miss, m.MissLatency+64/m.Bandwidth, 1e-15, "other bank miss")
	// Back to bank 0 row 7: still open.
	hit := m.Access(0, 7, 64)
	approx(t, hit, m.HitLatency+64/m.Bandwidth, 1e-15, "bank 0 retained row")
	// Bank wrap-around and negatives are clamped.
	m.Access(m.Banks+3, 1, 64)
	m.Access(-1, 1, -64)
	m.Reset()
	cold := m.Access(0, 7, 64)
	approx(t, cold, m.MissLatency+64/m.Bandwidth, 1e-15, "reset closes rows")
}

func TestMemoryValidate(t *testing.T) {
	tests := []func(*Memory){
		func(m *Memory) { m.Banks = 0 },
		func(m *Memory) { m.RowBytes = 0 },
		func(m *Memory) { m.MissLatency = m.HitLatency - 1 },
		func(m *Memory) { m.Bandwidth = 0 },
	}
	for i, mutate := range tests {
		m := DefaultMemory()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCPUTimeLinear(t *testing.T) {
	c := DefaultCPU()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	base := c.Time(0)
	approx(t, base, c.BaseCycles/c.Frequency, 1e-18, "base time")
	t1 := c.Time(1 << 20)
	approx(t, t1-base, float64(1<<20)*c.CyclesPerByte/c.Frequency, 1e-15, "per-byte time")
	if c.Time(-5) != base {
		t.Error("negative bytes should clamp to base")
	}
	bad := &CPU{Frequency: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero frequency should fail")
	}
	bad2 := &CPU{Frequency: 1, BaseCycles: -1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative cycles should fail")
	}
}

func TestNetworkTransferTime(t *testing.T) {
	n := DefaultNetwork()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, n.TransferTime(0), n.Latency, 1e-15, "latency only")
	approx(t, n.TransferTime(125_000_000), n.Latency+1, 1e-9, "1s of bandwidth")
	if n.TransferTime(-1) != n.Latency {
		t.Error("negative bytes should clamp")
	}
	if err := (&Network{Latency: -1, Bandwidth: 1}).Validate(); err == nil {
		t.Error("negative latency should fail")
	}
	if err := (&Network{Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestServerValidateAndReset(t *testing.T) {
	s := DefaultServer()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Disk.Access(1000, 4096)
	s.Mem.Access(0, 3, 64)
	s.Reset()
	if s.Disk.Head() != 0 {
		t.Error("reset should rewind the disk head")
	}
	missing := &Server{}
	if err := missing.Validate(); err == nil {
		t.Error("missing subsystems should fail")
	}
	bad := DefaultServer()
	bad.Net.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid subsystem should fail server validation")
	}
	bad2 := DefaultServer()
	bad2.Disk.NumBlocks = 0
	if err := bad2.Validate(); err == nil {
		t.Error("invalid disk should fail server validation")
	}
	bad3 := DefaultServer()
	bad3.Mem.Banks = 0
	if err := bad3.Validate(); err == nil {
		t.Error("invalid memory should fail server validation")
	}
	bad4 := DefaultServer()
	bad4.CPU.Frequency = 0
	if err := bad4.Validate(); err == nil {
		t.Error("invalid cpu should fail server validation")
	}
}
