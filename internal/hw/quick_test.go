package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: disk access times are always positive for positive transfers,
// and a sequential re-access is never slower than a far random access of
// the same size.
func TestDiskAccessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := DefaultDisk()
		for i := 0; i < 50; i++ {
			lbn := r.Int63n(d.NumBlocks - 1024)
			bytes := int64(1 + r.Intn(1<<20))
			if d.Access(lbn, bytes) <= 0 {
				return false
			}
			if d.Head() < 0 || d.Head() >= d.NumBlocks {
				return false
			}
			// Sequential continuation vs far seek.
			seq := d.Access(d.Head(), 4096)
			far := d.Access((d.Head()+d.NumBlocks/2)%d.NumBlocks, 4096)
			if seq > far {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: memory access times are positive, and a repeated access to
// the same (bank, row) is never slower than the first.
func TestMemoryAccessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := DefaultMemory()
		for i := 0; i < 100; i++ {
			bank := r.Intn(m.Banks)
			row := r.Int63n(1 << 20)
			bytes := int64(1 + r.Intn(1<<16))
			first := m.Access(bank, row, bytes)
			again := m.Access(bank, row, bytes)
			if first <= 0 || again <= 0 || again > first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: CPU and network costs are monotone in bytes.
func TestCostMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := DefaultCPU()
		n := DefaultNetwork()
		a := r.Int63n(1 << 24)
		b := a + r.Int63n(1<<24) + 1
		return c.Time(a) <= c.Time(b) && n.TransferTime(a) <= n.TransferTime(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
