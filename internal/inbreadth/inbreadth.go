// Package inbreadth implements the in-breadth modeling approach the paper
// surveys: four per-subsystem models (storage, CPU, memory, network)
// trained independently on the whole trace, with no notion of requests,
// classes or the order in which subsystems are exercised.
//
// Its strength is system-centric fidelity: each subsystem's marginal
// feature distributions are captured well, and each model can be used on
// its own for subsystem studies (e.g. the storage model for SSD-caching
// evaluation). Its documented weakness is "its inability to capture the
// time dependencies of a request as it progresses through the system",
// which "can result in invalid stressing of the system" — when forced to
// emit whole requests, it must assume an arbitrary phase order and
// uncorrelated per-subsystem features.
package inbreadth

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/kooza"
	"dcmodel/internal/markov"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Options configures training; the subsystem models reuse KOOZA's
// quantization parameters so comparisons are apples-to-apples.
type Options struct {
	// StorageRegions, CPUStates and Smoothing mirror kooza.Options.
	StorageRegions int
	CPUStates      int
	Smoothing      float64
	// DiskBlocks is the LBN address-space size (0 = infer).
	DiskBlocks int64
}

// Model is a trained in-breadth model: the four subsystem models, global
// (class-blind), plus the marginal span-count statistics needed to emit
// event streams.
type Model struct {
	// Storage, CPU and Memory are the three Markov subsystem models,
	// trained on the union of all classes.
	Storage *kooza.StorageModel
	CPU     *kooza.CPUModel
	Memory  *kooza.MemoryModel
	// Interarrival is the fitted arrival-process distribution.
	Interarrival stats.Dist
	// NetBytes is the marginal network-transfer-size distribution (all
	// network spans pooled).
	NetBytes *stats.Empirical
	// CPUBytes is the marginal CPU-processing-size distribution.
	CPUBytes *stats.Empirical
	// SpansPerRequest holds the mean number of spans per subsystem per
	// request, the only structural statistic an in-breadth model retains.
	SpansPerRequest map[trace.Subsystem]float64
	// TrainedOn is the number of training requests.
	TrainedOn int
	opts      Options
}

// Train fits the four subsystem models independently from the trace.
func Train(tr *trace.Trace, opts Options) (*Model, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("inbreadth: invalid training trace: %w", err)
	}
	kopts := kooza.Options{
		StorageRegions: opts.StorageRegions,
		CPUStates:      opts.CPUStates,
		Smoothing:      opts.Smoothing,
		DiskBlocks:     opts.DiskBlocks,
	}
	// Train via a single-class KOOZA pass over a class-erased copy: the
	// in-breadth model is exactly KOOZA's subsystem models with the class
	// structure and phase queue discarded.
	erased := &trace.Trace{Requests: make([]trace.Request, tr.Len())}
	copy(erased.Requests, tr.Requests)
	for i := range erased.Requests {
		erased.Requests[i].Class = "all"
	}
	km, err := kooza.Train(erased, kopts)
	if err != nil {
		return nil, fmt.Errorf("inbreadth: %w", err)
	}
	cm := km.Classes[0]
	m := &Model{
		Storage:         cm.Storage,
		CPU:             cm.CPU,
		Memory:          cm.Memory,
		Interarrival:    km.Network.Interarrival,
		SpansPerRequest: make(map[trace.Subsystem]float64),
		TrainedOn:       tr.Len(),
		opts:            opts,
	}
	var netBytes, cpuBytes []float64
	for _, r := range tr.Requests {
		for _, s := range r.Spans {
			switch s.Subsystem {
			case trace.Network:
				netBytes = append(netBytes, float64(s.Bytes))
			case trace.CPU:
				cpuBytes = append(cpuBytes, float64(s.Bytes))
			}
			m.SpansPerRequest[s.Subsystem] += 1 / float64(tr.Len())
		}
	}
	if m.NetBytes, err = stats.NewEmpirical(netBytes); err != nil {
		return nil, fmt.Errorf("inbreadth: network sizes: %w", err)
	}
	if m.CPUBytes, err = stats.NewEmpirical(cpuBytes); err != nil {
		return nil, fmt.Errorf("inbreadth: cpu sizes: %w", err)
	}
	return m, nil
}

// NumParams reports the model complexity.
func (m *Model) NumParams() int {
	return m.Storage.NumParams() + m.CPU.NumParams() + m.Memory.NumParams() +
		len(m.Interarrival.Params()) + len(m.SpansPerRequest)
}

// assumedOrder is the arbitrary serial phase order the model must assume
// when asked for whole requests — it has no structural information, which
// is precisely the weakness the cross-examination quantifies.
var assumedOrder = []trace.Subsystem{trace.Storage, trace.Memory, trace.CPU, trace.Network}

// Synthesize emits n whole requests. Per-subsystem features come from the
// subsystem models (good marginals); the phase order is the assumed
// constant order and per-request cross-subsystem correlations are absent.
//
// A trained Model is read-only; concurrent Synthesize calls are safe as
// long as each call gets its own *rand.Rand.
func (m *Model) Synthesize(n int, r *rand.Rand) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("inbreadth: synthesize needs n >= 1, got %d", n)
	}
	st := newWalker(m, r)
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	// The per-request span counts are a model constant, so the span slices
	// can be carved from an arena instead of growing one heap slice per
	// request.
	counts := make([]int, len(assumedOrder))
	var total int
	for j, sub := range assumedOrder {
		counts[j] = int(m.SpansPerRequest[sub] + 0.5)
		total += counts[j]
	}
	var arena trace.SpanArena
	var now float64
	for i := 0; i < n; i++ {
		gap := m.Interarrival.Rand(r)
		if gap < 0 {
			gap = 0
		}
		now += gap
		req := trace.Request{ID: int64(i), Class: "all", Arrival: now}
		req.Spans = arena.Take(total)
		for j, sub := range assumedOrder {
			for k := 0; k < counts[j]; k++ {
				req.Spans = append(req.Spans, st.span(sub, now, r))
			}
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// synthSlabRequests mirrors kooza's batch granularity: each span-arena
// reservation covers this many requests at once.
const synthSlabRequests = 4096

// SynthesizeBatch is the batch flavor of Synthesize: same draw order, same
// seed in, byte-identical trace out. The per-request span count is a model
// constant here, so each arena reservation covers a whole slab of requests
// exactly, and the Interarrival interface dispatch is hoisted out of the
// loop.
func (m *Model) SynthesizeBatch(n int, r *rand.Rand) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("inbreadth: synthesize needs n >= 1, got %d", n)
	}
	st := newWalker(m, r)
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	counts := make([]int, len(assumedOrder))
	var total int
	for j, sub := range assumedOrder {
		counts[j] = int(m.SpansPerRequest[sub] + 0.5)
		total += counts[j]
	}
	var arena trace.SpanArena
	inter := m.Interarrival
	var now float64
	for i := 0; i < n; i++ {
		if i%synthSlabRequests == 0 {
			slab := n - i
			if slab > synthSlabRequests {
				slab = synthSlabRequests
			}
			arena.Reserve(slab * total)
		}
		gap := inter.Rand(r)
		if gap < 0 {
			gap = 0
		}
		now += gap
		req := trace.Request{ID: int64(i), Class: "all", Arrival: now}
		req.Spans = arena.Take(total)
		for j, sub := range assumedOrder {
			for k := 0; k < counts[j]; k++ {
				req.Spans = append(req.Spans, st.span(sub, now, r))
			}
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// walker carries the Markov walk state across the synthetic stream.
type walker struct {
	m            *Model
	storageState int
	cpuState     int
	memBank      int
	lastEnd      int64
	hasLast      bool
}

func newWalker(m *Model, r *rand.Rand) *walker {
	w := &walker{m: m}
	if m.Storage.Chain != nil {
		w.storageState = m.Storage.Chain.Start(r)
	}
	w.cpuState = m.CPU.Chain.Start(r)
	w.memBank = m.Memory.Chain.Start(r)
	return w
}

func (w *walker) span(sub trace.Subsystem, start float64, r *rand.Rand) trace.Span {
	s := trace.Span{Subsystem: sub, Start: start}
	switch sub {
	case trace.Network:
		s.Bytes = int64(w.m.NetBytes.Rand(r))
	case trace.CPU:
		s.Bytes = int64(w.m.CPUBytes.Rand(r))
		s.Util = w.nextUtil(r)
	case trace.Memory:
		w.memBank = w.m.Memory.Chain.Step(w.memBank, r)
		s.Bank = w.memBank
		s.Bytes = int64(w.m.Memory.Sizes.Rand(r))
		if r.Float64() < w.m.Memory.ReadProb {
			s.Op = trace.OpRead
		} else {
			s.Op = trace.OpWrite
		}
	case trace.Storage:
		lbn, bytes := w.nextIO(r)
		s.LBN = lbn
		s.Bytes = bytes
		if r.Float64() < w.m.Storage.ReadProb {
			s.Op = trace.OpRead
		} else {
			s.Op = trace.OpWrite
		}
	}
	if s.Bytes < 0 {
		s.Bytes = 0
	}
	return s
}

func (w *walker) nextUtil(r *rand.Rand) float64 {
	c := w.m.CPU
	w.cpuState = c.Chain.Step(w.cpuState, r)
	if c.Levels[w.cpuState] == nil {
		mid := c.Lo + (c.Hi-c.Lo)*(float64(w.cpuState)+0.5)/float64(c.Chain.N)
		return clamp01(mid)
	}
	return clamp01(c.Levels[w.cpuState].Rand(r))
}

func (w *walker) nextIO(r *rand.Rand) (int64, int64) {
	s := w.m.Storage
	bytes := int64(s.Sizes.Rand(r))
	if bytes < 1 {
		bytes = 1
	}
	if w.hasLast && r.Float64() < s.SeqProb {
		lbn := w.lastEnd
		w.lastEnd = lbn + (bytes+4095)/4096
		return lbn, bytes
	}
	w.storageState = s.Chain.Step(w.storageState, r)
	lbn := w.sampleLBN(w.storageState, r)
	w.hasLast = true
	w.lastEnd = lbn + (bytes+4095)/4096
	return lbn, bytes
}

func (w *walker) sampleLBN(state int, r *rand.Rand) int64 {
	s := w.m.Storage
	if state >= 0 && state < len(s.StateLBNs) && s.StateLBNs[state] != nil {
		lbn := int64(s.StateLBNs[state].Rand(r))
		if lbn < 0 {
			lbn = 0
		}
		return lbn
	}
	lo := int64(state) * s.BlocksPerRegion
	return lo + int64(r.Float64()*float64(s.BlocksPerRegion))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// IOEvent is one storage I/O of a standalone storage stream.
type IOEvent struct {
	LBN   int64
	Bytes int64
	Op    trace.Op
}

// GenerateIOStream emits a standalone storage I/O stream — the in-breadth
// strength: a single subsystem model reused for storage studies (the SSD
// caching / defragmentation use cases of the paper's §5).
func (m *Model) GenerateIOStream(n int, r *rand.Rand) []IOEvent {
	w := newWalker(m, r)
	out := make([]IOEvent, n)
	for i := range out {
		lbn, bytes := w.nextIO(r)
		op := trace.OpWrite
		if r.Float64() < m.Storage.ReadProb {
			op = trace.OpRead
		}
		out[i] = IOEvent{LBN: lbn, Bytes: bytes, Op: op}
	}
	return out
}

// GenerateUtilSeries emits a standalone CPU-utilization series (Abrahao-
// style synthetic utilization patterns).
func (m *Model) GenerateUtilSeries(n int, r *rand.Rand) []float64 {
	w := newWalker(m, r)
	out := make([]float64, n)
	for i := range out {
		out[i] = w.nextUtil(r)
	}
	return out
}

// IOStreamFromTrace extracts the original storage stream in time order,
// for like-for-like comparison with GenerateIOStream.
func IOStreamFromTrace(tr *trace.Trace) []IOEvent {
	type tio struct {
		start float64
		ev    IOEvent
	}
	var tmp []tio
	for _, r := range tr.Requests {
		for _, s := range r.SpansIn(trace.Storage) {
			tmp = append(tmp, tio{s.Start, IOEvent{LBN: s.LBN, Bytes: s.Bytes, Op: s.Op}})
		}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].start < tmp[j].start })
	out := make([]IOEvent, len(tmp))
	for i, x := range tmp {
		out[i] = x.ev
	}
	return out
}

// Chains exposes the three Markov chains (introspection / scorecard).
func (m *Model) Chains() []*markov.Chain {
	return []*markov.Chain{m.Storage.Chain, m.CPU.Chain, m.Memory.Chain}
}
