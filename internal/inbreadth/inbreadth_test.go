package inbreadth

import (
	"math"
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrainBasics(t *testing.T) {
	tr := gfsTrace(t, 2000, 700)
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainedOn != 2000 {
		t.Errorf("TrainedOn = %d", m.TrainedOn)
	}
	if m.Storage == nil || m.CPU == nil || m.Memory == nil {
		t.Fatal("missing subsystem models")
	}
	// Structural stats: GFS requests have 2 network, 2 cpu, 1 memory, 1
	// storage span.
	if math.Abs(m.SpansPerRequest[trace.Network]-2) > 0.01 ||
		math.Abs(m.SpansPerRequest[trace.Storage]-1) > 0.01 {
		t.Errorf("spans per request = %v", m.SpansPerRequest)
	}
	if m.NumParams() <= 0 {
		t.Error("NumParams should be positive")
	}
	if len(m.Chains()) != 3 {
		t.Error("Chains should expose the three Markov chains")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Train(&trace.Trace{}, Options{}); err == nil {
		t.Error("empty trace should fail")
	}
	bad := &trace.Trace{Requests: []trace.Request{{ID: 1, Arrival: -1}}}
	if _, err := Train(bad, Options{}); err == nil {
		t.Error("invalid trace should fail")
	}
}

func TestSynthesizeMarginalsGoodStructureLost(t *testing.T) {
	// The in-breadth signature: pooled (marginal) feature distributions
	// match well, but the phase structure and per-class correlations are
	// lost.
	tr := gfsTrace(t, 3000, 701)
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := m.Synthesize(3000, rand.New(rand.NewSource(702)))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pooled storage sizes: KS distance small.
	o := tr.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })
	sy := synth.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) })
	if ks := stats.KSTest2(o, sy).Statistic; ks > 0.05 {
		t.Errorf("pooled storage-size KS = %g, want small", ks)
	}
	// Pooled utilization close.
	ou := stats.Mean(tr.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util }))
	su := stats.Mean(synth.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util }))
	if dev := stats.RelError(ou, su); dev > 0.2 {
		t.Errorf("pooled util deviation %g", dev)
	}
	// Structure lost: phase order differs from the GFS order.
	gfsOrder := []trace.Subsystem{
		trace.Network, trace.CPU, trace.Memory, trace.Storage, trace.CPU, trace.Network,
	}
	var matches int
	for _, r := range synth.Requests {
		p := r.Phases()
		if len(p) == len(gfsOrder) {
			same := true
			for i := range p {
				if p[i] != gfsOrder[i] {
					same = false
					break
				}
			}
			if same {
				matches++
			}
		}
	}
	if matches > 0 {
		t.Errorf("%d synthetic requests matched the GFS phase order; the class-blind model should not know it", matches)
	}
	// Per-request correlation lost: original 4M storage requests always
	// carry 4M network-out; synthetic pairs are independent.
	var correlated, total int
	for _, r := range synth.Requests {
		var st, nt int64
		for _, s := range r.Spans {
			if s.Subsystem == trace.Storage {
				st = s.Bytes
			}
			if s.Subsystem == trace.Network && s.Bytes > nt {
				nt = s.Bytes
			}
		}
		if st == 4<<20 {
			total++
			if nt == 4<<20 {
				correlated++
			}
		}
	}
	if total > 10 && float64(correlated)/float64(total) > 0.9 {
		t.Error("cross-subsystem sizes should not be strongly correlated in the class-blind model")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tr := gfsTrace(t, 500, 703)
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Synthesize(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestGenerateIOStream(t *testing.T) {
	tr := gfsTrace(t, 3000, 704)
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(705))
	ios := m.GenerateIOStream(5000, r)
	if len(ios) != 5000 {
		t.Fatalf("stream length %d", len(ios))
	}
	orig := IOStreamFromTrace(tr)
	if len(orig) != 3000 {
		t.Fatalf("original stream length %d", len(orig))
	}
	// Size distribution preserved.
	sizeOf := func(evs []IOEvent) []float64 {
		out := make([]float64, len(evs))
		for i, e := range evs {
			out[i] = float64(e.Bytes)
		}
		return out
	}
	if ks := stats.KSTest2(sizeOf(orig), sizeOf(ios)).Statistic; ks > 0.05 {
		t.Errorf("IO size KS = %g", ks)
	}
	// Read fraction preserved.
	readFrac := func(evs []IOEvent) float64 {
		var n int
		for _, e := range evs {
			if e.Op == trace.OpRead {
				n++
			}
		}
		return float64(n) / float64(len(evs))
	}
	if d := math.Abs(readFrac(orig) - readFrac(ios)); d > 0.05 {
		t.Errorf("read fraction differs by %g", d)
	}
	// Sequentiality preserved (rough).
	seqFrac := func(evs []IOEvent) float64 {
		var seq int
		var prevEnd int64 = -1
		for _, e := range evs {
			if prevEnd >= 0 && e.LBN == prevEnd {
				seq++
			}
			prevEnd = e.LBN + (e.Bytes+4095)/4096
		}
		return float64(seq) / float64(len(evs)-1)
	}
	if d := math.Abs(seqFrac(orig) - seqFrac(ios)); d > 0.1 {
		t.Errorf("sequential fraction differs by %g", d)
	}
}

func TestGenerateUtilSeries(t *testing.T) {
	tr := gfsTrace(t, 2000, 706)
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	series := m.GenerateUtilSeries(4000, rand.New(rand.NewSource(707)))
	if len(series) != 4000 {
		t.Fatalf("series length %d", len(series))
	}
	orig := tr.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util })
	if dev := stats.RelError(stats.Mean(orig), stats.Mean(series)); dev > 0.2 {
		t.Errorf("util series mean deviation %g", dev)
	}
	for _, u := range series {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %g outside [0,1]", u)
		}
	}
}
