package inbreadth

import (
	"fmt"
	"math"

	"dcmodel/internal/hw"
)

// Gulati-style I/O load modeling: characterize a storage workload by its
// I/O features — "seek distance (i.e. randomness), I/O sizes, read:write
// ratio, and number of outstanding I/Os" — and predict the expected
// latency to service I/O requests on a given device. Useful for VM
// migration and consolidation decisions without replaying the workload.

// IOFeatures is the Gulati-style characterization of an I/O stream.
type IOFeatures struct {
	// Count is the number of I/Os characterized.
	Count int
	// MeanBytes is the mean I/O size.
	MeanBytes float64
	// ReadRatio is the fraction of reads.
	ReadRatio float64
	// SeqFraction is the fraction of I/Os that continue exactly at the
	// previous I/O's end (the randomness complement).
	SeqFraction float64
	// MeanSeekBlocks is the mean absolute LBN distance of non-sequential
	// I/Os.
	MeanSeekBlocks float64
	// MeanSqrtSeekFrac is E[sqrt(distance/NumBlocks)] of non-sequential
	// I/Os for a given address-space size; stored as E[sqrt(distance)] and
	// normalized at prediction time.
	meanSqrtSeek float64
}

// CharacterizeIO extracts IOFeatures from an I/O stream in issue order.
func CharacterizeIO(ios []IOEvent) (IOFeatures, error) {
	if len(ios) == 0 {
		return IOFeatures{}, fmt.Errorf("inbreadth: empty I/O stream")
	}
	f := IOFeatures{Count: len(ios)}
	var prevEnd int64 = -1
	var seq, reads int
	var seekSum, sqrtSum float64
	var seeks int
	for _, io := range ios {
		f.MeanBytes += float64(io.Bytes)
		if io.Op.String() == "read" {
			reads++
		}
		if prevEnd >= 0 {
			if io.LBN == prevEnd {
				seq++
			} else {
				d := float64(io.LBN - prevEnd)
				if d < 0 {
					d = -d
				}
				seekSum += d
				sqrtSum += math.Sqrt(d)
				seeks++
			}
		}
		prevEnd = io.LBN + (io.Bytes+4095)/4096
	}
	f.MeanBytes /= float64(len(ios))
	f.ReadRatio = float64(reads) / float64(len(ios))
	if len(ios) > 1 {
		f.SeqFraction = float64(seq) / float64(len(ios)-1)
	}
	if seeks > 0 {
		f.MeanSeekBlocks = seekSum / float64(seeks)
		f.meanSqrtSeek = sqrtSum / float64(seeks)
	}
	return f, nil
}

// PredictMeanLatency predicts the mean per-I/O service time of the
// characterized workload on the given disk, without replaying it:
// sequential I/Os pay transfer only; random I/Os add the expected seek
// (from the device's seek curve at the observed seek-distance profile)
// plus rotational latency.
func (f IOFeatures) PredictMeanLatency(d *hw.Disk) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	transfer := f.MeanBytes / d.TransferRate
	// Seek curve: MinSeek + (MaxSeek-MinSeek) * sqrt(dist/NumBlocks);
	// E[seek] uses E[sqrt(dist)] / sqrt(NumBlocks).
	expSeek := d.MinSeek + (d.MaxSeek-d.MinSeek)*f.meanSqrtSeek/math.Sqrt(float64(d.NumBlocks))
	random := expSeek + d.RotationalLatency + transfer
	sequential := transfer
	return f.SeqFraction*sequential + (1-f.SeqFraction)*random, nil
}

// MeasureMeanLatency replays the I/O stream on a fresh copy of the disk
// model and returns the measured mean service time — the ground truth the
// prediction is validated against.
func MeasureMeanLatency(ios []IOEvent, d *hw.Disk) (float64, error) {
	if len(ios) == 0 {
		return 0, fmt.Errorf("inbreadth: empty I/O stream")
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	disk := *d // copy: head state stays local
	disk.Reset()
	var total float64
	for _, io := range ios {
		total += disk.Access(io.LBN, io.Bytes)
	}
	return total / float64(len(ios)), nil
}
