package inbreadth

import (
	"math/rand"
	"testing"

	"dcmodel/internal/hw"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

func TestCharacterizeIO(t *testing.T) {
	ios := []IOEvent{
		{LBN: 0, Bytes: 4096, Op: trace.OpRead},
		{LBN: 1, Bytes: 4096, Op: trace.OpRead},     // sequential
		{LBN: 1000, Bytes: 8192, Op: trace.OpWrite}, // seek 998
	}
	f, err := CharacterizeIO(ios)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count != 3 {
		t.Errorf("count = %d", f.Count)
	}
	if f.ReadRatio < 0.6 || f.ReadRatio > 0.7 {
		t.Errorf("read ratio = %g, want 2/3", f.ReadRatio)
	}
	if f.SeqFraction != 0.5 {
		t.Errorf("seq fraction = %g, want 0.5", f.SeqFraction)
	}
	if f.MeanSeekBlocks != 998 {
		t.Errorf("mean seek = %g, want 998", f.MeanSeekBlocks)
	}
	if _, err := CharacterizeIO(nil); err == nil {
		t.Error("empty stream should fail")
	}
}

func randomIOs(n int, seqProb float64, r *rand.Rand, disk *hw.Disk) []IOEvent {
	out := make([]IOEvent, n)
	var prevEnd int64
	for i := range out {
		var lbn int64
		if i > 0 && r.Float64() < seqProb {
			lbn = prevEnd
		} else {
			lbn = r.Int63n(disk.NumBlocks - 1024)
		}
		bytes := int64(4096 * (1 + r.Intn(16)))
		out[i] = IOEvent{LBN: lbn, Bytes: bytes, Op: trace.OpRead}
		prevEnd = lbn + (bytes+4095)/4096
	}
	return out
}

func TestPredictMatchesMeasured(t *testing.T) {
	// The Gulati-style analytic prediction must track the device
	// simulation across the randomness spectrum.
	disk := hw.DefaultDisk()
	r := rand.New(rand.NewSource(1300))
	for _, seq := range []float64{0, 0.3, 0.7, 0.95} {
		ios := randomIOs(5000, seq, r, disk)
		f, err := CharacterizeIO(ios)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := f.PredictMeanLatency(disk)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := MeasureMeanLatency(ios, disk)
		if err != nil {
			t.Fatal(err)
		}
		if d := stats.RelError(meas, pred); d > 0.1 {
			t.Errorf("seq=%.2f: predicted %g vs measured %g (dev %g)", seq, pred, meas, d)
		}
	}
}

func TestPredictOrdersWorkloads(t *testing.T) {
	// Random workloads must predict slower than sequential ones — the
	// consolidation-decision ordering Gulati et al. need.
	disk := hw.DefaultDisk()
	r := rand.New(rand.NewSource(1301))
	seqIOs := randomIOs(2000, 0.95, r, disk)
	rndIOs := randomIOs(2000, 0, r, disk)
	fs, err := CharacterizeIO(seqIOs)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := CharacterizeIO(rndIOs)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := fs.PredictMeanLatency(disk)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fr.PredictMeanLatency(disk)
	if err != nil {
		t.Fatal(err)
	}
	if ps >= pr {
		t.Errorf("sequential prediction %g not below random %g", ps, pr)
	}
}

func TestPredictFromGFSModelStream(t *testing.T) {
	// End-to-end: characterize the synthetic stream of a trained storage
	// model and predict latency on a different disk — the model-driven
	// device-evaluation workflow.
	tr := gfsTrace(t, 3000, 1302)
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1303))
	synth := m.GenerateIOStream(3000, r)
	orig := IOStreamFromTrace(tr)
	slowDisk := hw.DefaultDisk()
	slowDisk.TransferRate = 60e6
	fo, err := CharacterizeIO(orig)
	if err != nil {
		t.Fatal(err)
	}
	fsyn, err := CharacterizeIO(synth)
	if err != nil {
		t.Fatal(err)
	}
	po, err := fo.PredictMeanLatency(slowDisk)
	if err != nil {
		t.Fatal(err)
	}
	psyn, err := fsyn.PredictMeanLatency(slowDisk)
	if err != nil {
		t.Fatal(err)
	}
	if d := stats.RelError(po, psyn); d > 0.1 {
		t.Errorf("synthetic prediction deviates %g (%g vs %g)", d, psyn, po)
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := MeasureMeanLatency(nil, hw.DefaultDisk()); err == nil {
		t.Error("empty stream should fail")
	}
	bad := hw.DefaultDisk()
	bad.TransferRate = 0
	if _, err := MeasureMeanLatency([]IOEvent{{LBN: 1, Bytes: 4096}}, bad); err == nil {
		t.Error("invalid disk should fail")
	}
	f := IOFeatures{}
	if _, err := f.PredictMeanLatency(bad); err == nil {
		t.Error("invalid disk should fail prediction")
	}
}
