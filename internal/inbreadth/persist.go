package inbreadth

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dcmodel/internal/errs"
	"dcmodel/internal/kooza"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Model persistence, following the kooza pattern: everything is plain data
// or an empirical distribution except the fitted interarrival Dist, which
// is stored as a (family, parameters) spec.

// distSpec is the serialized form of a parametric distribution.
type distSpec struct {
	Name   string    `json:"name"`
	Params []float64 `json:"params"`
}

// modelJSON is the serialized model envelope.
type modelJSON struct {
	Version         int                         `json:"version"`
	Storage         *kooza.StorageModel         `json:"storage"`
	CPU             *kooza.CPUModel             `json:"cpu"`
	Memory          *kooza.MemoryModel          `json:"memory"`
	Interarrival    distSpec                    `json:"interarrival"`
	NetBytes        *stats.Empirical            `json:"net_bytes"`
	CPUBytes        *stats.Empirical            `json:"cpu_bytes"`
	SpansPerRequest map[trace.Subsystem]float64 `json:"spans_per_request"`
	TrainedOn       int                         `json:"trained_on"`
	Opts            Options                     `json:"opts"`
}

// persistVersion guards against loading incompatible files.
const persistVersion = 1

// Save writes the model as JSON.
func Save(w io.Writer, m *Model) error {
	if m == nil || m.Storage == nil || m.Interarrival == nil {
		return fmt.Errorf("inbreadth: cannot save model: %w", errs.ErrModelNotTrained)
	}
	env := modelJSON{
		Version: persistVersion,
		Storage: m.Storage,
		CPU:     m.CPU,
		Memory:  m.Memory,
		Interarrival: distSpec{
			Name:   m.Interarrival.Name(),
			Params: m.Interarrival.Params(),
		},
		NetBytes:        m.NetBytes,
		CPUBytes:        m.CPUBytes,
		SpansPerRequest: m.SpansPerRequest,
		TrainedOn:       m.TrainedOn,
		Opts:            m.opts,
	}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("inbreadth: encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save and refreezes its Markov chains so
// synthesis from the loaded model is bit-identical to the fresh one.
func Load(r io.Reader) (*Model, error) {
	var env modelJSON
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("inbreadth: decode model: %w", err)
	}
	if env.Version != persistVersion {
		return nil, fmt.Errorf("inbreadth: model version %d, want %d", env.Version, persistVersion)
	}
	inter, err := stats.DistFromSpec(env.Interarrival.Name, env.Interarrival.Params)
	if err != nil {
		return nil, fmt.Errorf("inbreadth: interarrival spec: %w", err)
	}
	m := &Model{
		Storage:         env.Storage,
		CPU:             env.CPU,
		Memory:          env.Memory,
		Interarrival:    inter,
		NetBytes:        env.NetBytes,
		CPUBytes:        env.CPUBytes,
		SpansPerRequest: env.SpansPerRequest,
		TrainedOn:       env.TrainedOn,
		opts:            env.Opts,
	}
	if err := m.validateLoaded(); err != nil {
		return nil, err
	}
	if m.Storage.Chain != nil {
		m.Storage.Chain.Freeze()
	}
	if m.Storage.Hier != nil {
		m.Storage.Hier.Freeze()
	}
	m.CPU.Chain.Freeze()
	m.Memory.Chain.Freeze()
	return m, nil
}

// validateLoaded checks the structural invariants synthesis needs.
func (m *Model) validateLoaded() error {
	if m.Storage == nil || m.CPU == nil || m.Memory == nil {
		return fmt.Errorf("inbreadth: loaded model missing subsystem models")
	}
	if m.Storage.Chain == nil && m.Storage.Hier == nil {
		return fmt.Errorf("inbreadth: loaded storage model has no chain")
	}
	if m.CPU.Chain == nil || m.Memory.Chain == nil {
		return fmt.Errorf("inbreadth: loaded model missing cpu/memory chain")
	}
	if m.NetBytes == nil || m.CPUBytes == nil || m.Storage.Sizes == nil {
		return fmt.Errorf("inbreadth: loaded model missing feature distributions")
	}
	if len(m.SpansPerRequest) == 0 {
		return fmt.Errorf("inbreadth: loaded model has no span-count statistics")
	}
	return nil
}

// Describe renders the trained model's structure: four independent
// subsystem models and nothing else — no classes, no phase ordering.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "in-breadth model (trained on %d requests, %d parameters)\n", m.TrainedOn, m.NumParams())
	fmt.Fprintf(&b, "interarrival ~ %s\n", stats.DescribeDist(m.Interarrival))
	fmt.Fprintf(&b, "storage Markov model: %d LBN regions, seq=%.2f, read=%.2f, mean I/O %.0f B\n",
		m.Storage.Regions, m.Storage.SeqProb, m.Storage.ReadProb, m.Storage.Sizes.Mean())
	fmt.Fprintf(&b, "cpu Markov model: %d utilization levels; mean processed %.0f B\n",
		m.CPU.Chain.N, m.CPUBytes.Mean())
	fmt.Fprintf(&b, "memory Markov model: %d banks\n", m.Memory.Chain.N)
	fmt.Fprintf(&b, "network: mean transfer %.0f B\n", m.NetBytes.Mean())
	fmt.Fprintf(&b, "mean spans/request:")
	for _, sub := range trace.Subsystems() {
		fmt.Fprintf(&b, " %s=%.2f", sub, m.SpansPerRequest[sub])
	}
	b.WriteString("\n(no cross-subsystem structure: phase order is assumed, not learned)\n")
	return b.String()
}
