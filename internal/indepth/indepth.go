// Package indepth implements the in-depth modeling approach the paper
// surveys: a request-flow model in the style of Liu et al.'s 3-tier
// queueing model and Meisner et al.'s SQS. It traces each request through
// the system — fitting the arrival process and per-phase service-time
// distributions — and can therefore reproduce control flow and latency on
// the platform it was trained on.
//
// Its documented weakness is the mirror image of in-breadth's: "although
// accurate in capturing user behavior patterns, it does not capture the
// features of the workload in various subsystems" — synthetic requests
// carry no sizes, LBNs or banks, which blocks per-subsystem studies and
// any replay on a different platform.
package indepth

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// ClassModel is the per-class request-flow model: the phase path and the
// fitted per-phase service-time distributions.
type ClassModel struct {
	// Name is the request-class label.
	Name string
	// Weight is the class's share of the request stream.
	Weight float64
	// Phases is the per-request path through the subsystems.
	Phases []trace.Subsystem
	// Service holds one empirical service-time distribution per phase.
	Service []*stats.Empirical
}

// Model is a trained in-depth model.
type Model struct {
	// Interarrival is the fitted arrival-process distribution.
	Interarrival stats.Dist
	// FitKS is the KS distance of the winning arrival fit.
	FitKS float64
	// Classes holds the per-class flow models.
	Classes []*ClassModel
	// TrainedOn is the number of training requests.
	TrainedOn int
}

// Train fits the in-depth model: the arrival process plus, per class, the
// modal phase path and per-phase service times.
func Train(tr *trace.Trace) (*Model, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("indepth: invalid training trace: %w", err)
	}
	sorted := &trace.Trace{Requests: append([]trace.Request(nil), tr.Requests...)}
	sorted.SortByArrival()
	gaps := sorted.Interarrivals()
	if len(gaps) < 2 {
		return nil, fmt.Errorf("indepth: need >= 3 requests, got %d", tr.Len())
	}
	best, err := stats.FitBest(gaps)
	if err != nil {
		return nil, fmt.Errorf("indepth: arrival fit: %w", err)
	}
	m := &Model{Interarrival: best.Dist, FitKS: best.KS, TrainedOn: tr.Len()}
	for _, name := range sorted.Classes() {
		sub := sorted.ByClass(name)
		cm, err := trainClass(name, sub, float64(sub.Len())/float64(sorted.Len()))
		if err != nil {
			return nil, fmt.Errorf("indepth: class %q: %w", name, err)
		}
		m.Classes = append(m.Classes, cm)
	}
	return m, nil
}

func trainClass(name string, tr *trace.Trace, weight float64) (*ClassModel, error) {
	// Modal phase sequence.
	counts := make(map[string]int)
	seqs := make(map[string][]trace.Subsystem)
	for _, r := range tr.Requests {
		p := r.Phases()
		if len(p) == 0 {
			continue
		}
		key := fmt.Sprint(p)
		counts[key]++
		seqs[key] = p
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no spans")
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	phases := seqs[keys[0]]
	cm := &ClassModel{Name: name, Weight: weight, Phases: phases}
	// Per-phase service times from the requests matching the modal path.
	perPhase := make([][]float64, len(phases))
	for _, r := range tr.Requests {
		if len(r.Spans) != len(phases) {
			continue
		}
		match := true
		for i, s := range r.Spans {
			if s.Subsystem != phases[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for i, s := range r.Spans {
			perPhase[i] = append(perPhase[i], s.Duration)
		}
	}
	cm.Service = make([]*stats.Empirical, len(phases))
	for i, vals := range perPhase {
		if len(vals) == 0 {
			return nil, fmt.Errorf("phase %d has no service samples", i)
		}
		emp, err := stats.NewEmpirical(vals)
		if err != nil {
			return nil, err
		}
		cm.Service[i] = emp
	}
	return cm, nil
}

// NumParams reports the model complexity — deliberately small: the
// simplicity that makes the in-depth technique "appealing for large-scale
// experiments".
func (m *Model) NumParams() int {
	n := len(m.Interarrival.Params())
	for _, c := range m.Classes {
		n += 1 + len(c.Phases) + len(c.Service)
	}
	return n
}

// Synthesize emits n requests: arrivals from the fitted process, phase
// paths from the class models, and span durations resampled from the
// fitted service-time distributions, queued through the same per-subsystem
// FIFO stations the system exhibits (this is a queueing model: request
// arrival plus contention is exactly what it emulates). Spans carry NO
// features — the approach does not model them.
//
// A trained Model is read-only (the FIFO-station state is per call);
// concurrent Synthesize calls are safe as long as each call gets its own
// *rand.Rand.
func (m *Model) Synthesize(n int, r *rand.Rand) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("indepth: synthesize needs n >= 1, got %d", n)
	}
	if len(m.Classes) == 0 {
		return nil, fmt.Errorf("indepth: model has no classes")
	}
	weights := make([]float64, len(m.Classes))
	var wsum float64
	for i, c := range m.Classes {
		weights[i] = c.Weight
		wsum += c.Weight
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("indepth: class weights sum to zero")
	}
	classAlias, err := stats.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("indepth: class weights: %w", err)
	}
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	var arena trace.SpanArena
	var now float64
	var freeAt [4]float64 // per-subsystem FIFO stations
	for i := 0; i < n; i++ {
		gap := m.Interarrival.Rand(r)
		if gap < 0 {
			gap = 0
		}
		now += gap
		c := m.Classes[classAlias.Draw(r)]
		req := trace.Request{ID: int64(i), Class: c.Name, Arrival: now}
		req.Spans = arena.Take(len(c.Phases))
		t := now
		for p, sub := range c.Phases {
			dur := c.Service[p].Rand(r)
			if dur < 0 {
				dur = 0
			}
			start := t
			if int(sub) < len(freeAt) && freeAt[sub] > start {
				start = freeAt[sub]
			}
			req.Spans = append(req.Spans, trace.Span{Subsystem: sub, Start: start, Duration: dur})
			if int(sub) < len(freeAt) {
				freeAt[sub] = start + dur
			}
			t = start + dur
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// synthSlabRequests mirrors kooza's batch granularity: each span-arena
// reservation covers this many requests at once.
const synthSlabRequests = 4096

// SynthesizeBatch is the batch flavor of Synthesize: same draw order, same
// seed in, byte-identical trace out, with the span arena reserved a slab of
// requests at a time sized by the widest class phase path.
func (m *Model) SynthesizeBatch(n int, r *rand.Rand) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("indepth: synthesize needs n >= 1, got %d", n)
	}
	if len(m.Classes) == 0 {
		return nil, fmt.Errorf("indepth: model has no classes")
	}
	weights := make([]float64, len(m.Classes))
	var wsum float64
	for i, c := range m.Classes {
		weights[i] = c.Weight
		wsum += c.Weight
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("indepth: class weights sum to zero")
	}
	classAlias, err := stats.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("indepth: class weights: %w", err)
	}
	maxPhases := 0
	for _, c := range m.Classes {
		if len(c.Phases) > maxPhases {
			maxPhases = len(c.Phases)
		}
	}
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	var arena trace.SpanArena
	inter := m.Interarrival
	var now float64
	var freeAt [4]float64 // per-subsystem FIFO stations
	for i := 0; i < n; i++ {
		if i%synthSlabRequests == 0 {
			slab := n - i
			if slab > synthSlabRequests {
				slab = synthSlabRequests
			}
			arena.Reserve(slab * maxPhases)
		}
		gap := inter.Rand(r)
		if gap < 0 {
			gap = 0
		}
		now += gap
		c := m.Classes[classAlias.Draw(r)]
		req := trace.Request{ID: int64(i), Class: c.Name, Arrival: now}
		req.Spans = arena.Take(len(c.Phases))
		t := now
		for p, sub := range c.Phases {
			dur := c.Service[p].Rand(r)
			if dur < 0 {
				dur = 0
			}
			start := t
			if int(sub) < len(freeAt) && freeAt[sub] > start {
				start = freeAt[sub]
			}
			req.Spans = append(req.Spans, trace.Span{Subsystem: sub, Start: start, Duration: dur})
			if int(sub) < len(freeAt) {
				freeAt[sub] = start + dur
			}
			t = start + dur
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// PredictMeanLatency returns the model's analytic latency prediction for a
// class: the sum of its mean per-phase service times (no-contention
// approximation).
func (m *Model) PredictMeanLatency(class string) (float64, error) {
	for _, c := range m.Classes {
		if c.Name != class {
			continue
		}
		var sum float64
		for _, s := range c.Service {
			sum += s.Mean()
		}
		return sum, nil
	}
	return 0, fmt.Errorf("indepth: unknown class %q", class)
}
