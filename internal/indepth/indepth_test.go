package indepth

import (
	"math/rand"
	"reflect"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrainBasics(t *testing.T) {
	tr := gfsTrace(t, 2000, 800)
	m, err := Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 {
		t.Fatalf("classes = %d", len(m.Classes))
	}
	want := []trace.Subsystem{
		trace.Network, trace.CPU, trace.Memory, trace.Storage, trace.CPU, trace.Network,
	}
	for _, c := range m.Classes {
		if !reflect.DeepEqual(c.Phases, want) {
			t.Errorf("class %s phases = %v", c.Name, c.Phases)
		}
		if len(c.Service) != len(want) {
			t.Errorf("class %s has %d service fits", c.Name, len(c.Service))
		}
	}
	// The in-depth model is deliberately simple: far fewer parameters
	// than a KOOZA model would carry.
	if m.NumParams() > 50 {
		t.Errorf("in-depth params = %d, expected a small count", m.NumParams())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Train(&trace.Trace{}); err == nil {
		t.Error("empty trace should fail")
	}
	bad := &trace.Trace{Requests: []trace.Request{{ID: 1, Arrival: -1}}}
	if _, err := Train(bad); err == nil {
		t.Error("invalid trace should fail")
	}
	short := &trace.Trace{Requests: []trace.Request{{ID: 1}, {ID: 2, Arrival: 1}}}
	if _, err := Train(short); err == nil {
		t.Error("too-short trace should fail")
	}
}

func TestSynthesizeLatencyGoodFeaturesMissing(t *testing.T) {
	// The in-depth signature: per-class latency is reproduced well (it
	// resamples observed service times) but the spans carry no features.
	tr := gfsTrace(t, 3000, 801)
	m, err := Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := m.Synthesize(3000, rand.New(rand.NewSource(802)))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, class := range tr.Classes() {
		o := stats.Mean(tr.ByClass(class).Latencies())
		s := stats.Mean(synth.ByClass(class).Latencies())
		if dev := stats.RelError(o, s); dev > 0.1 {
			t.Errorf("class %s latency deviation %g (%g vs %g)", class, dev, o, s)
		}
	}
	// Features absent.
	for _, r := range synth.Requests {
		for _, s := range r.Spans {
			if s.Bytes != 0 || s.LBN != 0 || s.Util != 0 {
				t.Fatalf("in-depth synthetic span carries features: %+v", s)
			}
		}
	}
	// Phase structure preserved.
	want := []trace.Subsystem{
		trace.Network, trace.CPU, trace.Memory, trace.Storage, trace.CPU, trace.Network,
	}
	for _, r := range synth.Requests {
		if !reflect.DeepEqual(r.Phases(), want) {
			t.Fatalf("synthetic phases = %v", r.Phases())
		}
	}
}

func TestPredictMeanLatency(t *testing.T) {
	// Use a lightly loaded trace: the analytic prediction ignores
	// queueing, so it is only accurate when contention is negligible.
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 2},
		Requests: 2000,
	}, rand.New(rand.NewSource(803)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range tr.Classes() {
		pred, err := m.PredictMeanLatency(class)
		if err != nil {
			t.Fatal(err)
		}
		// At low load (no queueing) the sum of phase services is close to
		// the true latency.
		o := stats.Mean(tr.ByClass(class).Latencies())
		if dev := stats.RelError(o, pred); dev > 0.2 {
			t.Errorf("class %s predicted %g vs %g (dev %g)", class, pred, o, dev)
		}
	}
	if _, err := m.PredictMeanLatency("nope"); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tr := gfsTrace(t, 500, 804)
	m, err := Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	if _, err := m.Synthesize(0, r); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := (&Model{Interarrival: m.Interarrival}).Synthesize(5, r); err == nil {
		t.Error("no classes should fail")
	}
	zeroW := &Model{Interarrival: m.Interarrival, Classes: []*ClassModel{{Name: "x"}}}
	if _, err := zeroW.Synthesize(5, r); err == nil {
		t.Error("zero weights should fail")
	}
}

func TestArrivalRatePreserved(t *testing.T) {
	tr := gfsTrace(t, 3000, 805)
	m, err := Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := m.Synthesize(3000, rand.New(rand.NewSource(806)))
	if err != nil {
		t.Fatal(err)
	}
	origRate := 1 / stats.Mean(tr.Interarrivals())
	synthRate := 1 / stats.Mean(synth.Interarrivals())
	if dev := stats.RelError(origRate, synthRate); dev > 0.1 {
		t.Errorf("arrival rate deviation %g", dev)
	}
}
