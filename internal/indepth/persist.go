package indepth

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dcmodel/internal/errs"
	"dcmodel/internal/stats"
)

// Model persistence, following the kooza pattern: the per-class flow
// models are plain data; the fitted interarrival Dist is stored as a
// (family, parameters) spec.

// distSpec is the serialized form of a parametric distribution.
type distSpec struct {
	Name   string    `json:"name"`
	Params []float64 `json:"params"`
}

// modelJSON is the serialized model envelope.
type modelJSON struct {
	Version      int           `json:"version"`
	Interarrival distSpec      `json:"interarrival"`
	FitKS        float64       `json:"fit_ks"`
	Classes      []*ClassModel `json:"classes"`
	TrainedOn    int           `json:"trained_on"`
}

// persistVersion guards against loading incompatible files.
const persistVersion = 1

// Save writes the model as JSON.
func Save(w io.Writer, m *Model) error {
	if m == nil || m.Interarrival == nil || len(m.Classes) == 0 {
		return fmt.Errorf("indepth: cannot save model: %w", errs.ErrModelNotTrained)
	}
	env := modelJSON{
		Version: persistVersion,
		Interarrival: distSpec{
			Name:   m.Interarrival.Name(),
			Params: m.Interarrival.Params(),
		},
		FitKS:     m.FitKS,
		Classes:   m.Classes,
		TrainedOn: m.TrainedOn,
	}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("indepth: encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var env modelJSON
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("indepth: decode model: %w", err)
	}
	if env.Version != persistVersion {
		return nil, fmt.Errorf("indepth: model version %d, want %d", env.Version, persistVersion)
	}
	inter, err := stats.DistFromSpec(env.Interarrival.Name, env.Interarrival.Params)
	if err != nil {
		return nil, fmt.Errorf("indepth: interarrival spec: %w", err)
	}
	m := &Model{
		Interarrival: inter,
		FitKS:        env.FitKS,
		Classes:      env.Classes,
		TrainedOn:    env.TrainedOn,
	}
	if err := m.validateLoaded(); err != nil {
		return nil, err
	}
	return m, nil
}

// validateLoaded checks the structural invariants synthesis needs.
func (m *Model) validateLoaded() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("indepth: loaded model has no classes")
	}
	for _, c := range m.Classes {
		if c == nil {
			return fmt.Errorf("indepth: loaded model has a nil class")
		}
		if len(c.Phases) != len(c.Service) {
			return fmt.Errorf("indepth: class %q has %d phases but %d service distributions",
				c.Name, len(c.Phases), len(c.Service))
		}
		for i, svc := range c.Service {
			if svc == nil {
				return fmt.Errorf("indepth: class %q phase %d has no service distribution", c.Name, i)
			}
		}
	}
	return nil
}

// Describe renders the trained model's structure: the fitted arrival
// process and each class's phase path with per-phase mean service times.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "in-depth model (trained on %d requests, %d parameters)\n", m.TrainedOn, m.NumParams())
	fmt.Fprintf(&b, "arrival process ~ %s (KS=%.4f)\n", stats.DescribeDist(m.Interarrival), m.FitKS)
	for _, c := range m.Classes {
		phases := make([]string, len(c.Phases))
		for i, p := range c.Phases {
			phases[i] = fmt.Sprintf("%s(%.2gms)", p, 1e3*c.Service[i].Mean())
		}
		fmt.Fprintf(&b, "class %q (weight %.3f): %s\n", c.Name, c.Weight, strings.Join(phases, " -> "))
	}
	b.WriteString("(request-flow model: captures time dependencies, not per-subsystem features)\n")
	return b.String()
}
