package indepth

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := gfsTrace(t, 1500, 920)
	m, err := Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Synthesize(400, rand.New(rand.NewSource(921)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Synthesize(400, rand.New(rand.NewSource(921)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("loaded model synthesizes differently")
	}
	if loaded.NumParams() != m.NumParams() {
		t.Errorf("params %d vs %d", loaded.NumParams(), m.NumParams())
	}
	if loaded.FitKS != m.FitKS || loaded.TrainedOn != m.TrainedOn {
		t.Error("metadata lost")
	}
	if !strings.Contains(loaded.Describe(), "in-depth model") {
		t.Error("describe broken after load")
	}
}

func TestSaveErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("nil model should fail")
	}
	if err := Save(&buf, &Model{}); err == nil {
		t.Error("untrained model should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"interarrival":{"name":"bogus"}}`)); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"interarrival":{"name":"exponential","params":[2]}}`)); err == nil {
		t.Error("no classes should fail")
	}
	broken := `{"version":1,"interarrival":{"name":"exponential","params":[2]},` +
		`"classes":[{"Name":"x","Phases":[0,1],"Service":[null]}]}`
	if _, err := Load(strings.NewReader(broken)); err == nil {
		t.Error("phase/service mismatch should fail")
	}
}
