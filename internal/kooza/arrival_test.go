package kooza

import (
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func mmppTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.MMPP2{Rate: [2]float64{60, 4}, Hold: [2]float64{1, 2}},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSemiMarkovArrivalsCaptureBurstiness(t *testing.T) {
	tr := mmppTrace(t, 6000, 650)
	origIDC := stats.IndexOfDispersion(tr.Arrivals(), 1)
	if origIDC < 3 {
		t.Fatalf("MMPP trace IDC = %g, expected bursty input", origIDC)
	}
	synthIDC := func(opts Options, seed int64) float64 {
		m := trainOn(t, tr, opts)
		synth, err := m.Synthesize(6000, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return stats.IndexOfDispersion(synth.Arrivals(), 1)
	}
	renewal := synthIDC(Options{}, 651)
	semiMarkov := synthIDC(Options{ArrivalStates: 4}, 652)
	// The renewal model flattens the bursts; the semi-Markov refinement
	// must recover a clearly larger share of the original dispersion.
	if semiMarkov <= renewal*1.5 {
		t.Errorf("semi-Markov IDC %g not clearly above renewal %g (original %g)",
			semiMarkov, renewal, origIDC)
	}
	if stats.RelError(origIDC, semiMarkov) >= stats.RelError(origIDC, renewal) {
		t.Errorf("semi-Markov IDC %g not closer to original %g than renewal %g",
			semiMarkov, origIDC, renewal)
	}
}

func TestSemiMarkovArrivalsPreserveRate(t *testing.T) {
	tr := mmppTrace(t, 5000, 653)
	m := trainOn(t, tr, Options{ArrivalStates: 4})
	if m.Network.GapChain == nil || len(m.Network.GapStates) != 4 {
		t.Fatal("gap chain not trained")
	}
	synth, err := m.Synthesize(5000, rand.New(rand.NewSource(654)))
	if err != nil {
		t.Fatal(err)
	}
	origRate := 1 / stats.Mean(tr.Interarrivals())
	synthRate := 1 / stats.Mean(synth.Interarrivals())
	if d := stats.RelError(origRate, synthRate); d > 0.1 {
		t.Errorf("rate deviation %g (%g vs %g)", d, synthRate, origRate)
	}
	// Gap marginal distribution matches (two-sample KS).
	ks := stats.KSTest2(tr.Interarrivals(), synth.Interarrivals())
	if ks.Statistic > 0.05 {
		t.Errorf("gap-distribution KS = %g", ks.Statistic)
	}
	// The refinement costs parameters (the paper's trade-off).
	renewal := trainOn(t, tr, Options{})
	if m.NumParams() <= renewal.NumParams() {
		t.Error("semi-Markov model should cost more parameters")
	}
}

func TestArrivalStatesValidation(t *testing.T) {
	// Tiny traces cannot support many arrival states.
	tiny := &trace.Trace{}
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tiny, err = c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: 6,
	}, rand.New(rand.NewSource(655)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(tiny, Options{ArrivalStates: 8}); err == nil {
		t.Error("too few gaps for the requested arrival states should fail")
	}
	// Default (0) means renewal.
	o := Options{}.withDefaults()
	if o.ArrivalStates != 1 {
		t.Errorf("default arrival states = %d, want 1", o.ArrivalStates)
	}
}
