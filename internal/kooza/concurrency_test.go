package kooza

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/prand"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// TestConcurrentSynthesis trains one model and synthesizes from 16
// goroutines simultaneously — the read-only-after-Train contract the
// parallel cross-examination engine relies on. Run under -race this is the
// shared-mutable-state detector; in any mode it asserts that concurrent
// synthesis with derived streams reproduces the serial output of each
// stream exactly (no cross-goroutine interference).
func TestConcurrentSynthesis(t *testing.T) {
	cluster, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cluster.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: 600,
	}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const n = 200
	// Serial references, one per derived stream.
	want := make([]*trace.Trace, goroutines)
	for g := 0; g < goroutines; g++ {
		ref, err := m.Synthesize(n, prand.New(77, uint64(g)))
		if err != nil {
			t.Fatal(err)
		}
		want[g] = ref
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	got := make([]*trace.Trace, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			out, err := m.Synthesize(n, prand.New(77, uint64(g)))
			if err != nil {
				errs[g] = err
				return
			}
			got[g] = out
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(got[g], want[g]) {
			t.Fatalf("goroutine %d: concurrent synthesis diverged from serial reference", g)
		}
	}
}
