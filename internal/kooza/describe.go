package kooza

import (
	"fmt"
	"strings"

	"dcmodel/internal/stats"
)

// Describe renders the trained model's structure — the regeneration of the
// paper's Figure 2: the four per-subsystem models of each class wired by
// its time-dependency queue.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "KOOZA model (trained on %d requests, %d parameters)\n", m.TrainedOn, m.NumParams())
	fmt.Fprintf(&b, "Network queueing model: interarrival ~ %s (KS=%.4f), rate=%.2f req/s\n",
		stats.DescribeDist(m.Network.Interarrival), m.Network.FitKS, m.Network.Rate)
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "\nclass %q (weight %.3f)\n", c.Name, c.Weight)
		for qi, q := range c.Queues {
			phases := make([]string, len(q.Phases))
			for i, p := range q.Phases {
				phases[i] = p.String()
			}
			label := "time-dependency queue"
			if len(c.Queues) > 1 {
				label = fmt.Sprintf("time-dependency queue %d (%.1f%%)", qi+1, 100*q.Weight)
			}
			fmt.Fprintf(&b, "  %s: %s\n", label, strings.Join(phases, " -> "))
		}
		switch {
		case c.Storage.Hier != nil:
			fmt.Fprintf(&b, "  storage Markov model: hierarchical, %d regions in %d groups, seq=%.2f, read=%.2f, mean I/O %.0f B\n",
				c.Storage.Regions, len(c.Storage.Hier.Members), c.Storage.SeqProb, c.Storage.ReadProb, c.Storage.Sizes.Mean())
		default:
			fmt.Fprintf(&b, "  storage Markov model: %d LBN regions, seq=%.2f, read=%.2f, mean I/O %.0f B\n",
				c.Storage.Regions, c.Storage.SeqProb, c.Storage.ReadProb, c.Storage.Sizes.Mean())
			fmt.Fprintf(&b, "    active regions: %s\n", activeStates(c.Storage.Chain.Visits))
		}
		fmt.Fprintf(&b, "  cpu Markov model: %d utilization levels over [%.4f, %.4f]\n",
			c.CPU.Chain.N, c.CPU.Lo, c.CPU.Hi)
		fmt.Fprintf(&b, "    active levels: %s\n", activeStates(c.CPU.Chain.Visits))
		fmt.Fprintf(&b, "  memory Markov model: %d banks, read=%.2f, mean access %.0f B\n",
			c.Memory.Banks, c.Memory.ReadProb, c.Memory.Sizes.Mean())
		fmt.Fprintf(&b, "  network sizes: in %.0f B, out %.0f B (means)\n",
			c.NetIn.Mean(), c.NetOut.Mean())
	}
	return b.String()
}

// activeStates summarizes which chain states were visited during training.
func activeStates(visits []int64) string {
	var total int64
	for _, v := range visits {
		total += v
	}
	if total == 0 {
		return "(none)"
	}
	var parts []string
	for i, v := range visits {
		if v == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d:%.0f%%", i, 100*float64(v)/float64(total)))
		if len(parts) >= 12 {
			parts = append(parts, "...")
			break
		}
	}
	return strings.Join(parts, " ")
}
