package kooza

import (
	"fmt"
	"sort"
	"strings"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Feature-space analysis: the paper proposes reducing "the dimensionality
// of feature-space, to the ones necessary for a representative and
// succinct model, using techniques like PCA, SVD, sampling, or regression
// analysis" (§4). FeatureAnalysis builds the per-request feature matrix,
// runs PCA, and reports how many dimensions the workload actually has and
// which raw features load on them — guidance for choosing model detail.

// FeatureNames lists the per-request features, in matrix column order.
var FeatureNames = []string{
	"interarrival", "net_in_bytes", "net_out_bytes",
	"cpu_util", "mem_bytes", "mem_bank",
	"storage_bytes", "storage_lbn",
}

// FeatureMatrix builds the per-request feature matrix of a trace (one row
// per request, columns per FeatureNames). Requests lacking a subsystem
// contribute zeros for its features.
func FeatureMatrix(tr *trace.Trace) (*stats.Matrix, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	sorted := &trace.Trace{Requests: append([]trace.Request(nil), tr.Requests...)}
	sorted.SortByArrival()
	m := stats.NewMatrix(sorted.Len(), len(FeatureNames))
	prev := 0.0
	for i, r := range sorted.Requests {
		row := m.Row(i)
		row[0] = r.Arrival - prev
		prev = r.Arrival
		nets := r.SpansIn(trace.Network)
		if len(nets) > 0 {
			row[1] = float64(nets[0].Bytes)
			row[2] = float64(nets[len(nets)-1].Bytes)
		}
		if cpus := r.SpansIn(trace.CPU); len(cpus) > 0 {
			row[3] = cpus[0].Util
		}
		if mems := r.SpansIn(trace.Memory); len(mems) > 0 {
			row[4] = float64(mems[0].Bytes)
			row[5] = float64(mems[0].Bank)
		}
		if stors := r.SpansIn(trace.Storage); len(stors) > 0 {
			row[6] = float64(stors[0].Bytes)
			row[7] = float64(stors[0].LBN)
		}
	}
	return m, nil
}

// FeatureReport summarizes the PCA of a trace's feature space.
type FeatureReport struct {
	// Components95 is the number of principal components covering 95% of
	// the (standardized) feature variance — the workload's effective
	// dimensionality.
	Components95 int
	// ExplainedVariance holds the per-component variance ratios.
	ExplainedVariance []float64
	// Loadings maps each leading component (up to Components95) to the
	// raw features with |loading| >= 0.3, strongest first.
	Loadings [][]string
}

// FeatureAnalysis builds the feature matrix and runs standardized PCA.
func FeatureAnalysis(tr *trace.Trace) (*FeatureReport, error) {
	m, err := FeatureMatrix(tr)
	if err != nil {
		return nil, err
	}
	pca, err := stats.FitPCA(m, stats.PCAOptions{Standardize: true})
	if err != nil {
		return nil, fmt.Errorf("kooza: feature pca: %w", err)
	}
	rep := &FeatureReport{
		Components95:      pca.ComponentsFor(0.95),
		ExplainedVariance: pca.ExplainedVarianceRatio(),
	}
	for c := 0; c < rep.Components95; c++ {
		type loading struct {
			name string
			abs  float64
		}
		var ls []loading
		for f, name := range FeatureNames {
			v := pca.Components.At(f, c)
			if v < 0 {
				v = -v
			}
			if v >= 0.3 {
				ls = append(ls, loading{name: name, abs: v})
			}
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i].abs > ls[j].abs })
		names := make([]string, len(ls))
		for i, l := range ls {
			names[i] = l.name
		}
		rep.Loadings = append(rep.Loadings, names)
	}
	return rep, nil
}

// Render formats the report.
func (r *FeatureReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "feature-space analysis (PCA over %d features):\n", len(FeatureNames))
	fmt.Fprintf(&b, "  effective dimensionality (95%% variance): %d\n", r.Components95)
	for c, names := range r.Loadings {
		fmt.Fprintf(&b, "  PC%d (%.1f%%): %s\n", c+1, 100*r.ExplainedVariance[c], strings.Join(names, ", "))
	}
	return b.String()
}
