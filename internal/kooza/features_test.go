package kooza

import (
	"strings"
	"testing"

	"dcmodel/internal/trace"
)

func TestFeatureMatrix(t *testing.T) {
	tr := gfsTrace(t, 500, 620)
	m, err := FeatureMatrix(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 500 || m.Cols != len(FeatureNames) {
		t.Fatalf("matrix %dx%d", m.Rows, m.Cols)
	}
	// Interarrival column is non-negative; first is the first arrival.
	for i := 0; i < m.Rows; i++ {
		if m.At(i, 0) < 0 {
			t.Fatalf("negative interarrival at row %d", i)
		}
	}
	// Storage bytes column holds only the two class sizes.
	for i := 0; i < m.Rows; i++ {
		b := m.At(i, 6)
		if b != 64<<10 && b != 4<<20 {
			t.Fatalf("unexpected storage bytes %g", b)
		}
	}
	if _, err := FeatureMatrix(nil); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := FeatureMatrix(&trace.Trace{}); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestFeatureAnalysis(t *testing.T) {
	tr := gfsTrace(t, 2000, 621)
	rep, err := FeatureAnalysis(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The two-class workload is strongly correlated across subsystems
	// (size features move together), so the effective dimensionality is
	// well below the 8 raw features.
	if rep.Components95 >= len(FeatureNames) {
		t.Errorf("components for 95%% = %d, want < %d", rep.Components95, len(FeatureNames))
	}
	if rep.Components95 < 1 {
		t.Error("at least one component required")
	}
	// The first component should load on the correlated size features.
	if len(rep.Loadings) == 0 || len(rep.Loadings[0]) < 2 {
		t.Fatalf("loadings = %v", rep.Loadings)
	}
	joined := strings.Join(rep.Loadings[0], " ")
	if !strings.Contains(joined, "bytes") {
		t.Errorf("first component does not load on size features: %v", rep.Loadings[0])
	}
	out := rep.Render()
	if !strings.Contains(out, "effective dimensionality") || !strings.Contains(out, "PC1") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
