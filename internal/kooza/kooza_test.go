package kooza

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/replay"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func trainOn(t *testing.T, tr *trace.Trace, opts Options) *Model {
	t.Helper()
	m, err := Train(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainBasics(t *testing.T) {
	tr := gfsTrace(t, 2000, 600)
	m := trainOn(t, tr, Options{})
	if len(m.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(m.Classes))
	}
	if m.TrainedOn != 2000 {
		t.Errorf("TrainedOn = %d", m.TrainedOn)
	}
	if m.Network.Rate < 15 || m.Network.Rate > 25 {
		t.Errorf("network rate = %g, want ~20", m.Network.Rate)
	}
	// Poisson arrivals: the KS-selected family should be exponential-like.
	name := m.Network.Interarrival.Name()
	if name != "exponential" && name != "gamma" && name != "weibull" {
		t.Errorf("arrival fit = %s, want exponential-like", name)
	}
	// Phase queue matches Figure 1.
	want := []trace.Subsystem{
		trace.Network, trace.CPU, trace.Memory, trace.Storage, trace.CPU, trace.Network,
	}
	for _, c := range m.Classes {
		if !reflect.DeepEqual(c.Phases, want) {
			t.Errorf("class %s phases = %v", c.Name, c.Phases)
		}
		if c.Weight < 0.3 || c.Weight > 0.7 {
			t.Errorf("class %s weight = %g, want ~0.5", c.Name, c.Weight)
		}
	}
	// Class lookup.
	if _, err := m.Class("read64K"); err != nil {
		t.Error(err)
	}
	if _, err := m.Class("nope"); err == nil {
		t.Error("unknown class should fail")
	}
	if m.NumParams() <= 0 {
		t.Error("NumParams should be positive")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Train(&trace.Trace{}, Options{}); err == nil {
		t.Error("empty trace should fail")
	}
	bad := &trace.Trace{Requests: []trace.Request{{ID: 1, Arrival: -1}}}
	if _, err := Train(bad, Options{}); err == nil {
		t.Error("invalid trace should fail")
	}
	two := &trace.Trace{Requests: []trace.Request{{ID: 1}, {ID: 2, Arrival: 1}}}
	if _, err := Train(two, Options{}); err == nil {
		t.Error("too-short trace should fail")
	}
	// Requests without storage spans cannot train the storage model.
	noSpans := &trace.Trace{Requests: []trace.Request{
		{ID: 1, Arrival: 0, Spans: []trace.Span{{Subsystem: trace.CPU, Util: 0.1}}},
		{ID: 2, Arrival: 1, Spans: []trace.Span{{Subsystem: trace.CPU, Util: 0.2}}},
		{ID: 3, Arrival: 2, Spans: []trace.Span{{Subsystem: trace.CPU, Util: 0.3}}},
	}}
	if _, err := Train(noSpans, Options{}); err == nil {
		t.Error("trace without storage spans should fail")
	}
}

func TestSynthesizeFeatureFidelity(t *testing.T) {
	// Table 2's request-feature comparison: synthetic features should
	// match the original within ~1%.
	tr := gfsTrace(t, 3000, 601)
	m := trainOn(t, tr, Options{})
	synth, err := m.Synthesize(3000, rand.New(rand.NewSource(602)))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatalf("synthetic trace invalid: %v", err)
	}
	for _, class := range tr.Classes() {
		ot := tr.ByClass(class)
		st := synth.ByClass(class)
		if st.Len() == 0 {
			t.Fatalf("class %s missing from synthetic trace", class)
		}
		// Deterministic request sizes must be exact.
		origSize := stats.Mean(ot.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) }))
		synthSize := stats.Mean(st.SpanFeature(trace.Storage, func(s trace.Span) float64 { return float64(s.Bytes) }))
		if dev := stats.RelError(origSize, synthSize); dev > 0.001 {
			t.Errorf("class %s storage size deviation %g", class, dev)
		}
		origMem := stats.Mean(ot.SpanFeature(trace.Memory, func(s trace.Span) float64 { return float64(s.Bytes) }))
		synthMem := stats.Mean(st.SpanFeature(trace.Memory, func(s trace.Span) float64 { return float64(s.Bytes) }))
		if dev := stats.RelError(origMem, synthMem); dev > 0.001 {
			t.Errorf("class %s memory size deviation %g", class, dev)
		}
		// Modeled CPU utilization close to the original (a few percent
		// relative).
		origUtil := stats.Mean(ot.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util }))
		synthUtil := stats.Mean(st.SpanFeature(trace.CPU, func(s trace.Span) float64 { return s.Util }))
		if dev := stats.RelError(origUtil, synthUtil); dev > 0.15 {
			t.Errorf("class %s cpu util deviation %g (%g vs %g)", class, dev, origUtil, synthUtil)
		}
		// Operation mix preserved.
		origReads := readFrac(ot)
		synthReads := readFrac(st)
		if math.Abs(origReads-synthReads) > 0.05 {
			t.Errorf("class %s read fraction %g vs %g", class, origReads, synthReads)
		}
	}
	// Arrival rate preserved.
	origRate := 1 / stats.Mean(tr.Interarrivals())
	synthRate := 1 / stats.Mean(synth.Interarrivals())
	if dev := stats.RelError(origRate, synthRate); dev > 0.1 {
		t.Errorf("arrival rate deviation %g", dev)
	}
}

func readFrac(tr *trace.Trace) float64 {
	ops := tr.SpanFeature(trace.Storage, func(s trace.Span) float64 {
		if s.Op == trace.OpRead {
			return 1
		}
		return 0
	})
	return stats.Mean(ops)
}

func TestReplayedLatencyFidelity(t *testing.T) {
	// Table 2's performance comparison: replaying the synthetic workload
	// on the original platform should match the original latencies within
	// a few percent per class (the paper reports <= 6.6%).
	tr := gfsTrace(t, 4000, 603)
	m := trainOn(t, tr, Options{})
	synth, err := m.Synthesize(4000, rand.New(rand.NewSource(604)))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := replay.Run(synth, replay.Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range tr.Classes() {
		orig := stats.Mean(tr.ByClass(class).Latencies())
		got := stats.Mean(replayed.ByClass(class).Latencies())
		if dev := stats.RelError(orig, got); dev > 0.15 {
			t.Errorf("class %s latency deviation %g (%g vs %g)", class, dev, orig, got)
		}
	}
}

func TestStorageLocalityPreserved(t *testing.T) {
	// The synthetic LBN stream must reproduce the original's spatial
	// locality: similar sequential fraction and similar region occupancy.
	tr := gfsTrace(t, 3000, 605)
	m := trainOn(t, tr, Options{})
	synth, err := m.Synthesize(3000, rand.New(rand.NewSource(606)))
	if err != nil {
		t.Fatal(err)
	}
	seqFrac := func(tr *trace.Trace, class string) float64 {
		sub := tr.ByClass(class)
		var prevEnd int64 = -1
		var seq, total int
		for _, r := range sub.Requests {
			for _, s := range r.SpansIn(trace.Storage) {
				if prevEnd >= 0 {
					total++
					if s.LBN == prevEnd {
						seq++
					}
				}
				prevEnd = s.LBN + (s.Bytes+4095)/4096
			}
		}
		if total == 0 {
			return 0
		}
		return float64(seq) / float64(total)
	}
	for _, class := range tr.Classes() {
		o, s := seqFrac(tr, class), seqFrac(synth, class)
		if math.Abs(o-s) > 0.1 {
			t.Errorf("class %s sequential fraction %g vs %g", class, o, s)
		}
	}
}

func TestHierarchicalStorageModel(t *testing.T) {
	tr := gfsTrace(t, 2000, 607)
	m := trainOn(t, tr, Options{Hierarchical: true})
	for _, c := range m.Classes {
		if c.Storage.Hier == nil || c.Storage.Chain != nil {
			t.Fatal("hierarchical option should build the two-level model")
		}
	}
	synth, err := m.Synthesize(1000, rand.New(rand.NewSource(608)))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Describe(), "hierarchical") {
		t.Error("describe should mention the hierarchical storage model")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.StorageRegions != 32 || o.CPUStates != 8 || o.Smoothing != 0.01 || o.HierGroups != 8 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{StorageRegions: 4, CPUStates: 2, Smoothing: -1}.withDefaults()
	if o2.StorageRegions != 4 || o2.CPUStates != 2 || o2.Smoothing != 0 {
		t.Errorf("custom = %+v", o2)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tr := gfsTrace(t, 500, 609)
	m := trainOn(t, tr, Options{})
	r := rand.New(rand.NewSource(1))
	if _, err := m.Synthesize(0, r); err == nil {
		t.Error("n=0 should fail")
	}
	empty := &Model{Network: m.Network}
	if _, err := empty.Synthesize(10, r); err == nil {
		t.Error("no classes should fail")
	}
	zeroW := &Model{Network: m.Network, Classes: []*ClassModel{{Name: "x", Weight: 0}}}
	if _, err := zeroW.Synthesize(10, r); err == nil {
		t.Error("zero weights should fail")
	}
}

func TestDescribe(t *testing.T) {
	tr := gfsTrace(t, 800, 610)
	m := trainOn(t, tr, Options{})
	d := m.Describe()
	for _, want := range []string{
		"KOOZA model", "Network queueing model", "time-dependency queue",
		"storage Markov model", "cpu Markov model", "memory Markov model",
		"network -> cpu -> memory -> storage -> cpu -> network",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("describe missing %q:\n%s", want, d)
		}
	}
}

func TestModelComplexityGrowsWithDetail(t *testing.T) {
	// The paper's detail/complexity trade-off: more states => more
	// parameters.
	tr := gfsTrace(t, 1000, 611)
	coarse := trainOn(t, tr, Options{StorageRegions: 8, CPUStates: 4})
	fine := trainOn(t, tr, Options{StorageRegions: 64, CPUStates: 16})
	if fine.NumParams() <= coarse.NumParams() {
		t.Errorf("fine model params %d not above coarse %d", fine.NumParams(), coarse.NumParams())
	}
}

func TestSynthesizeDeterministicSeed(t *testing.T) {
	tr := gfsTrace(t, 800, 612)
	m := trainOn(t, tr, Options{})
	s1, err := m.Synthesize(200, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Synthesize(200, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("same seed should reproduce synthesis")
	}
}

func TestMultiServerInstancing(t *testing.T) {
	cfg := gfs.DefaultConfig()
	cfg.Chunkservers = 4
	cfg.PopularitySkew = 0
	c, err := gfs.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 50},
		Requests: 3000,
	}, rand.New(rand.NewSource(613)))
	if err != nil {
		t.Fatal(err)
	}
	m := trainOn(t, tr, Options{})
	synth, err := m.Synthesize(3000, rand.New(rand.NewSource(614)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, r := range synth.Requests {
		counts[r.Server]++
	}
	if len(counts) != 4 {
		t.Fatalf("synthetic servers = %v, want 4 servers", counts)
	}
	for s, n := range counts {
		if n < 3000/4/2 {
			t.Errorf("server %d got %d synthetic requests, want balanced", s, n)
		}
	}
}
