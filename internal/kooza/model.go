// Package kooza implements the paper's primary contribution: KOOZA, a
// modular, primarily in-breadth workload model with the ability to capture
// an application's time dependencies.
//
// The model of one workload comprises four simple per-subsystem models —
// Markov chains for storage (over Logical Block Ranges), processor (over
// CPU-utilization levels) and memory (over DRAM banks), and a queueing
// model for the network (the arrival rate of user requests) — plus a
// configurable per-class time-dependency queue recording the order in
// which the subsystems become active (the paper's Figure 2).
//
// Training consumes traces from the corresponding subsystems; synthesis
// walks the time-dependency queue and emits requests whose per-subsystem
// features are drawn from the four models. Latency is obtained by replaying
// the synthetic workload on the same (simulated) platform as the original.
package kooza

import (
	"fmt"

	"dcmodel/internal/markov"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Options configures training.
type Options struct {
	// StorageRegions is the number of Logical Block Range states of the
	// storage Markov model. Default 32.
	StorageRegions int
	// CPUStates is the number of utilization-level states of the
	// processor Markov model. Default 8.
	CPUStates int
	// Smoothing is the Laplace pseudo-count used when training the Markov
	// chains. Default 0.01 (just enough to keep the chains irreducible without distorting rare-state occupancy).
	Smoothing float64
	// Hierarchical switches the storage model to the two-level
	// (region-group over regions) hierarchical representation the paper
	// describes as the refinement of the simple chain.
	Hierarchical bool
	// HierGroups is the number of top-level groups of the hierarchical
	// storage model. Default 8.
	HierGroups int
	// DiskBlocks is the LBN address-space size used to map LBNs to
	// regions; 0 infers it from the trace (max LBN observed).
	DiskBlocks int64
	// ArrivalStates selects the network queueing model's detail: 1 (the
	// default) fits a renewal process (i.i.d. interarrivals, the paper's
	// "simple queueing model"); >1 fits a semi-Markov arrival model with
	// that many gap states (hierarchical refinement capturing bursty,
	// MMPP-like correlation in the arrival stream).
	ArrivalStates int
}

func (o Options) withDefaults() Options {
	if o.StorageRegions <= 0 {
		o.StorageRegions = 32
	}
	if o.CPUStates <= 0 {
		o.CPUStates = 8
	}
	if o.Smoothing < 0 {
		o.Smoothing = 0
	} else if o.Smoothing == 0 {
		o.Smoothing = 0.01
	}
	if o.HierGroups <= 0 {
		o.HierGroups = 8
	}
	if o.ArrivalStates <= 0 {
		o.ArrivalStates = 1
	}
	return o
}

// StorageModel is the storage Markov model: a chain over LBN-range states
// with per-state LBN distributions, a sequentiality probability, and the
// request size/type mix — the I/O features of Sankar et al. and Gulati et
// al.
type StorageModel struct {
	// Chain is the flat region chain (nil when Hier is set).
	Chain *markov.Chain
	// Hier is the hierarchical variant (nil when Chain is set).
	Hier *markov.Hierarchical
	// Regions is the number of LBN-range states.
	Regions int
	// BlocksPerRegion maps LBNs to states: state = LBN / BlocksPerRegion.
	BlocksPerRegion int64
	// StateLBNs holds the within-region empirical LBN distribution per
	// state (nil for states never observed).
	StateLBNs []*stats.Empirical
	// SeqProb is the probability an I/O continues exactly where the
	// previous one ended (spatial locality).
	SeqProb float64
	// Sizes is the I/O size distribution.
	Sizes *stats.Empirical
	// ReadProb is the fraction of read I/Os.
	ReadProb float64
}

// NumParams reports the model complexity (scorecard input).
func (m *StorageModel) NumParams() int {
	n := 2 // SeqProb, ReadProb
	if m.Chain != nil {
		n += m.Chain.NumParams()
	}
	if m.Hier != nil {
		n += m.Hier.NumParams()
	}
	return n
}

// CPUModel is the processor Markov model: a chain over utilization-level
// states with per-state empirical utilization values. Levels decouple the
// model from absolute utilization (the paper's answer to CPU models being
// "a reflection of the platform").
type CPUModel struct {
	Chain *markov.Chain
	// Levels holds the empirical utilization values per state.
	Levels []*stats.Empirical
	// Lo and Hi are the quantization range.
	Lo, Hi float64
}

// NumParams reports the model complexity.
func (m *CPUModel) NumParams() int { return m.Chain.NumParams() + 2 }

// stateOf quantizes a utilization into a level.
func (m *CPUModel) stateOf(util float64) int {
	n := m.Chain.N
	if m.Hi <= m.Lo {
		return 0
	}
	s := int(float64(n) * (util - m.Lo) / (m.Hi - m.Lo))
	if s < 0 {
		return 0
	}
	if s >= n {
		return n - 1
	}
	return s
}

// MemoryModel is the memory Markov model: a chain over DRAM banks with the
// access size/type mix.
type MemoryModel struct {
	Chain *markov.Chain
	// Banks is the number of bank states.
	Banks int
	// Sizes is the access-size distribution.
	Sizes *stats.Empirical
	// ReadProb is the fraction of read accesses.
	ReadProb float64
}

// NumParams reports the model complexity.
func (m *MemoryModel) NumParams() int { return m.Chain.NumParams() + 1 }

// NetworkModel is the queueing model of request arrivals: the fitted
// interarrival distribution (selected by Kolmogorov-Smirnov distance over
// the parametric families) and the implied arrival rate. With
// ArrivalStates > 1 it additionally carries a semi-Markov gap model: a
// chain over gap regimes with per-regime empirical gap distributions,
// capturing burst correlation a renewal model cannot.
type NetworkModel struct {
	// Interarrival is the fitted interarrival-time distribution.
	Interarrival stats.Dist
	// FitKS is the KS distance of the winning fit.
	FitKS float64
	// Rate is the mean arrival rate (1 / mean interarrival).
	Rate float64
	// GapChain and GapStates implement the semi-Markov refinement (nil
	// for the renewal model): GapChain transitions between gap regimes,
	// GapStates holds each regime's empirical gaps.
	GapChain  *markov.Chain
	GapStates []*stats.Empirical
}

// NumParams reports the model complexity.
func (m *NetworkModel) NumParams() int {
	n := len(m.Interarrival.Params()) + 1
	if m.GapChain != nil {
		n += m.GapChain.NumParams()
	}
	return n
}

// PhaseQueue is one observed control-flow path of a class: a
// time-dependency queue with its empirical share of the class's requests.
// Most applications have a single dominant path; branching control flow
// (e.g. cache hit vs. miss) yields several.
type PhaseQueue struct {
	// Phases is the subsystem order of this path.
	Phases []trace.Subsystem
	// Weight is the path's share within the class.
	Weight float64
	// CPUBytes holds, per CPU phase position in Phases, the distribution
	// of bytes processed (used by replay to recompute CPU service times).
	CPUBytes []*stats.Empirical
}

// ClassModel aggregates the per-subsystem models of one request class plus
// its time-dependency queue(s).
type ClassModel struct {
	// Name is the request-class label.
	Name string
	// Weight is the class's share of the request stream.
	Weight float64
	// Phases is the modal (most frequent) time-dependency queue — the
	// order in which the subsystem models become active for a typical
	// request of this class.
	Phases []trace.Subsystem
	// Queues holds every retained control-flow path with its weight,
	// modal first. Synthesis draws a path per request.
	Queues []PhaseQueue
	// Storage, CPU and Memory are the three Markov models.
	Storage *StorageModel
	CPU     *CPUModel
	Memory  *MemoryModel
	// NetIn and NetOut are the request/response transfer sizes.
	NetIn, NetOut *stats.Empirical
	// ServerWeights is the empirical distribution of servers that
	// executed this class (multi-server instancing).
	ServerWeights map[int]float64
}

// NumParams reports the model complexity.
func (c *ClassModel) NumParams() int {
	n := 1 + c.Storage.NumParams() + c.CPU.NumParams() + c.Memory.NumParams() + 2
	for _, q := range c.Queues {
		n += len(q.Phases) + 1
	}
	return n
}

// Model is a trained KOOZA workload model.
type Model struct {
	// Classes holds one ClassModel per request class.
	Classes []*ClassModel
	// Network is the shared arrival-process model.
	Network *NetworkModel
	// Opts records the training options used.
	Opts Options
	// TrainedOn is the number of training requests.
	TrainedOn int
}

// NumParams reports the total model complexity, the "ease-of-use /
// complexity" input of the cross-examination scorecard.
func (m *Model) NumParams() int {
	n := m.Network.NumParams()
	for _, c := range m.Classes {
		n += c.NumParams()
	}
	return n
}

// Class returns the class model with the given name, or an error.
func (m *Model) Class(name string) (*ClassModel, error) {
	for _, c := range m.Classes {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("kooza: unknown class %q", name)
}
