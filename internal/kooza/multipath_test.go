package kooza

import (
	"math"
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/replay"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

// cachedTrace simulates a GFS chunkserver with a page cache: reads branch
// into a hit path (no storage phase) and a miss path.
func cachedTrace(t *testing.T, hitProb float64, n int, seed int64) *trace.Trace {
	t.Helper()
	cfg := gfs.DefaultConfig()
	cfg.CacheHitProb = hitProb
	c, err := gfs.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pathShare(tr *trace.Trace, class string, withStorage bool) float64 {
	sub := tr.ByClass(class)
	if sub.Len() == 0 {
		return 0
	}
	var match int
	for _, r := range sub.Requests {
		has := len(r.SpansIn(trace.Storage)) > 0
		if has == withStorage {
			match++
		}
	}
	return float64(match) / float64(sub.Len())
}

func TestMultiQueueTrainingCapturesBranches(t *testing.T) {
	tr := cachedTrace(t, 0.6, 4000, 660)
	// Sanity: the read class really branches.
	if share := pathShare(tr, "read64K", false); share < 0.5 || share > 0.7 {
		t.Fatalf("hit share = %g, want ~0.6", share)
	}
	m := trainOn(t, tr, Options{})
	read, err := m.Class("read64K")
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Queues) != 2 {
		t.Fatalf("read class queues = %d, want 2 (hit and miss paths)", len(read.Queues))
	}
	// Modal queue is the hit path (5 phases, no storage) at ~60%.
	modal := read.Queues[0]
	if len(modal.Phases) != 5 {
		t.Errorf("modal queue has %d phases, want 5 (cache hit)", len(modal.Phases))
	}
	if math.Abs(modal.Weight-0.6) > 0.05 {
		t.Errorf("modal queue weight = %g, want ~0.6", modal.Weight)
	}
	// Writes keep a single queue.
	write, err := m.Class("write4M")
	if err != nil {
		t.Fatal(err)
	}
	if len(write.Queues) != 1 {
		t.Errorf("write class queues = %d, want 1", len(write.Queues))
	}
}

func TestMultiQueueSynthesisReproducesBranchMix(t *testing.T) {
	tr := cachedTrace(t, 0.6, 4000, 661)
	m := trainOn(t, tr, Options{})
	synth, err := m.Synthesize(4000, rand.New(rand.NewSource(662)))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatal(err)
	}
	origHit := pathShare(tr, "read64K", false)
	synthHit := pathShare(synth, "read64K", false)
	if math.Abs(origHit-synthHit) > 0.05 {
		t.Errorf("hit-path share: orig %g vs synth %g", origHit, synthHit)
	}
}

func TestMultiQueueLatencyBimodality(t *testing.T) {
	// The cache makes read latency bimodal (sub-ms hits, multi-ms
	// misses); the synthetic workload must reproduce the bimodality, not
	// just the mean.
	tr := cachedTrace(t, 0.5, 5000, 663)
	m := trainOn(t, tr, Options{})
	synth, err := m.Synthesize(5000, rand.New(rand.NewSource(664)))
	if err != nil {
		t.Fatal(err)
	}
	timed, err := replay.Run(synth, replay.Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	origLat := tr.ByClass("read64K").Latencies()
	synthLat := timed.ByClass("read64K").Latencies()
	// Both modes present: p25 (hits) and p90 (misses) each within 25%.
	for _, q := range []float64{0.25, 0.9} {
		o := stats.Quantile(origLat, q)
		s := stats.Quantile(synthLat, q)
		if d := stats.RelError(o, s); d > 0.25 {
			t.Errorf("read latency q%.0f: orig %g vs synth %g (dev %g)", 100*q, o, s, d)
		}
	}
	// The modes differ by an order of magnitude in the original; confirm
	// the synthetic preserves the gap.
	origGap := stats.Quantile(origLat, 0.9) / stats.Quantile(origLat, 0.25)
	synthGap := stats.Quantile(synthLat, 0.9) / stats.Quantile(synthLat, 0.25)
	if origGap < 3 {
		t.Fatalf("test premise broken: original gap %g", origGap)
	}
	if synthGap < origGap/2 {
		t.Errorf("bimodality lost: orig gap %g vs synth %g", origGap, synthGap)
	}
	// Mean still tracks.
	if d := stats.RelError(stats.Mean(origLat), stats.Mean(synthLat)); d > 0.15 {
		t.Errorf("mean read latency deviation %g", d)
	}
}

func TestRareBranchesBelowThresholdDropped(t *testing.T) {
	// A 0.1% branch is below phaseQueueMinShare and must be folded away.
	tr := cachedTrace(t, 0.001, 3000, 665)
	m := trainOn(t, tr, Options{})
	read, err := m.Class("read64K")
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Queues) != 1 {
		t.Errorf("queues = %d, want rare branch dropped", len(read.Queues))
	}
	// Weights always sum to 1.
	var sum float64
	for _, q := range read.Queues {
		sum += q.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("queue weights sum to %g", sum)
	}
}
