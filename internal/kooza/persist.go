package kooza

import (
	"encoding/json"
	"fmt"
	"io"

	"dcmodel/internal/errs"
	"dcmodel/internal/markov"
	"dcmodel/internal/stats"
)

// Model persistence: a trained KOOZA model serializes to JSON so it can be
// trained once and reused across studies (train on the production system,
// synthesize in the lab). Everything in the model is either plain data or
// an empirical distribution (serialized as its sample); the one interface
// value — the fitted interarrival distribution — is stored as a
// (family, parameters) spec.

// distSpec is the serialized form of a parametric distribution.
type distSpec struct {
	Name   string    `json:"name"`
	Params []float64 `json:"params"`
}

// networkJSON mirrors NetworkModel with the interface field replaced.
type networkJSON struct {
	Interarrival distSpec           `json:"interarrival"`
	FitKS        float64            `json:"fit_ks"`
	Rate         float64            `json:"rate"`
	GapChain     *markov.Chain      `json:"gap_chain,omitempty"`
	GapStates    []*stats.Empirical `json:"gap_states,omitempty"`
}

// modelJSON is the serialized model envelope.
type modelJSON struct {
	Version   int           `json:"version"`
	Classes   []*ClassModel `json:"classes"`
	Network   networkJSON   `json:"network"`
	Opts      Options       `json:"opts"`
	TrainedOn int           `json:"trained_on"`
}

// persistVersion guards against loading incompatible files.
const persistVersion = 1

// Save writes the model as JSON.
func Save(w io.Writer, m *Model) error {
	if m == nil || m.Network == nil {
		return fmt.Errorf("kooza: cannot save model: %w", errs.ErrModelNotTrained)
	}
	env := modelJSON{
		Version: persistVersion,
		Classes: m.Classes,
		Network: networkJSON{
			Interarrival: distSpec{
				Name:   m.Network.Interarrival.Name(),
				Params: m.Network.Interarrival.Params(),
			},
			FitKS:     m.Network.FitKS,
			Rate:      m.Network.Rate,
			GapChain:  m.Network.GapChain,
			GapStates: m.Network.GapStates,
		},
		Opts:      m.Opts,
		TrainedOn: m.TrainedOn,
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("kooza: encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var env modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("kooza: decode model: %w", err)
	}
	if env.Version != persistVersion {
		return nil, fmt.Errorf("kooza: model version %d, want %d", env.Version, persistVersion)
	}
	inter, err := stats.DistFromSpec(env.Network.Interarrival.Name, env.Network.Interarrival.Params)
	if err != nil {
		return nil, fmt.Errorf("kooza: interarrival spec: %w", err)
	}
	m := &Model{
		Classes: env.Classes,
		Network: &NetworkModel{
			Interarrival: inter,
			FitKS:        env.Network.FitKS,
			Rate:         env.Network.Rate,
			GapChain:     env.Network.GapChain,
			GapStates:    env.Network.GapStates,
		},
		Opts:      env.Opts,
		TrainedOn: env.TrainedOn,
	}
	if err := m.validateLoaded(); err != nil {
		return nil, err
	}
	m.freezeChains()
	return m, nil
}

// Refreeze rebuilds the O(1) alias tables of every Markov chain in the
// model. Load calls it automatically; long-running servers that assemble or
// mutate a model's transition matrices out-of-band (e.g. the online
// training loop swapping in updated chains) call it before serving the
// model, after which the model must be treated as read-only.
func (m *Model) Refreeze() { m.freezeChains() }

// freezeChains rebuilds the O(1) alias tables of every Markov chain in the
// model. JSON only carries the exported probability matrices, so a loaded
// chain arrives unfrozen; freezing here makes synthesis from a loaded model
// bit-identical to synthesis from the freshly trained one.
func (m *Model) freezeChains() {
	if m.Network.GapChain != nil {
		m.Network.GapChain.Freeze()
	}
	for _, c := range m.Classes {
		if c.Storage.Chain != nil {
			c.Storage.Chain.Freeze()
		}
		if c.Storage.Hier != nil {
			c.Storage.Hier.Freeze()
		}
		c.CPU.Chain.Freeze()
		c.Memory.Chain.Freeze()
	}
}

// validateLoaded checks the structural invariants a loaded model needs for
// synthesis to be safe.
func (m *Model) validateLoaded() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("kooza: loaded model has no classes")
	}
	for _, c := range m.Classes {
		if c == nil {
			return fmt.Errorf("kooza: loaded model has a nil class")
		}
		if c.Storage == nil || c.CPU == nil || c.Memory == nil {
			return fmt.Errorf("kooza: class %q missing subsystem models", c.Name)
		}
		if c.Storage.Chain == nil && c.Storage.Hier == nil {
			return fmt.Errorf("kooza: class %q storage model has no chain", c.Name)
		}
		if c.CPU.Chain == nil || c.Memory.Chain == nil {
			return fmt.Errorf("kooza: class %q missing cpu/memory chain", c.Name)
		}
		if len(c.Queues) == 0 {
			return fmt.Errorf("kooza: class %q has no time-dependency queue", c.Name)
		}
		if c.NetIn == nil || c.NetOut == nil || c.Storage.Sizes == nil || c.Memory.Sizes == nil {
			return fmt.Errorf("kooza: class %q missing feature distributions", c.Name)
		}
	}
	if m.Network.GapChain != nil && len(m.Network.GapStates) != m.Network.GapChain.N {
		return fmt.Errorf("kooza: gap chain has %d states but %d gap distributions",
			m.Network.GapChain.N, len(m.Network.GapStates))
	}
	return nil
}
