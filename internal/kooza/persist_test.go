package kooza

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := gfsTrace(t, 2000, 670)
	m := trainOn(t, tr, Options{ArrivalStates: 3})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model is behaviorally identical: same seed, same
	// synthetic trace.
	a, err := m.Synthesize(500, rand.New(rand.NewSource(671)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Synthesize(500, rand.New(rand.NewSource(671)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("loaded model synthesizes differently")
	}
	if loaded.NumParams() != m.NumParams() {
		t.Errorf("params %d vs %d", loaded.NumParams(), m.NumParams())
	}
	if loaded.Network.Interarrival.Name() != m.Network.Interarrival.Name() {
		t.Error("interarrival family lost")
	}
	if loaded.TrainedOn != m.TrainedOn {
		t.Error("metadata lost")
	}
	// Describe still works on the loaded model.
	if !strings.Contains(loaded.Describe(), "KOOZA model") {
		t.Error("describe broken after load")
	}
}

func TestSaveLoadHierarchical(t *testing.T) {
	tr := gfsTrace(t, 1200, 672)
	m := trainOn(t, tr, Options{Hierarchical: true})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := loaded.Synthesize(300, rand.New(rand.NewSource(673)))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("nil model should fail")
	}
	if err := Save(&buf, &Model{}); err == nil {
		t.Error("untrained model should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"network":{"interarrival":{"name":"bogus"}}}`)); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"network":{"interarrival":{"name":"exponential","params":[2]}}}`)); err == nil {
		t.Error("no classes should fail")
	}
	// Structurally broken class.
	broken := `{"version":1,"classes":[{"Name":"x"}],` +
		`"network":{"interarrival":{"name":"exponential","params":[2]}}}`
	if _, err := Load(strings.NewReader(broken)); err == nil {
		t.Error("class without subsystem models should fail")
	}
}
