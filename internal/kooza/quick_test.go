package kooza

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any seed and any reasonable option set, synthesis from a
// trained model produces a structurally valid trace with the trained
// classes, ascending arrivals and the learned phase queues.
func TestSynthesisValidityProperty(t *testing.T) {
	tr := gfsTrace(t, 1200, 640)
	optSets := []Options{
		{},
		{StorageRegions: 8, CPUStates: 4},
		{Hierarchical: true, HierGroups: 4},
		{StorageRegions: 64, CPUStates: 16, Smoothing: 0.2},
	}
	models := make([]*Model, len(optSets))
	for i, o := range optSets {
		models[i] = trainOn(t, tr, o)
	}
	classes := make(map[string]bool)
	for _, c := range tr.Classes() {
		classes[c] = true
	}
	f := func(seed int64, pick uint8) bool {
		m := models[int(pick)%len(models)]
		synth, err := m.Synthesize(200, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if synth.Validate() != nil {
			return false
		}
		prev := -1.0
		for _, r := range synth.Requests {
			if !classes[r.Class] {
				return false
			}
			if r.Arrival < prev {
				return false
			}
			prev = r.Arrival
			cm, err := m.Class(r.Class)
			if err != nil {
				return false
			}
			if len(r.Spans) != len(cm.Phases) {
				return false
			}
			for i, s := range r.Spans {
				if s.Subsystem != cm.Phases[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: training is deterministic — the same trace and options yield
// byte-identical synthesis for the same seed.
func TestTrainDeterminismProperty(t *testing.T) {
	tr := gfsTrace(t, 800, 641)
	f := func(seed int64) bool {
		m1, err := Train(tr, Options{})
		if err != nil {
			return false
		}
		m2, err := Train(tr, Options{})
		if err != nil {
			return false
		}
		s1, err := m1.Synthesize(50, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		s2, err := m2.Synthesize(50, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for i := range s1.Requests {
			a, b := s1.Requests[i], s2.Requests[i]
			if a.Arrival != b.Arrival || a.Class != b.Class || len(a.Spans) != len(b.Spans) {
				return false
			}
			for j := range a.Spans {
				if a.Spans[j] != b.Spans[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: the trained storage model's sequentiality estimate lands in
// [0, 1] and tracks the configured class locality ordering.
func TestSeqProbOrderingProperty(t *testing.T) {
	tr := gfsTrace(t, 2000, 642)
	m := trainOn(t, tr, Options{})
	read, err := m.Class("read64K")
	if err != nil {
		t.Fatal(err)
	}
	write, err := m.Class("write4M")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*ClassModel{read, write} {
		if c.Storage.SeqProb < 0 || c.Storage.SeqProb > 1 {
			t.Fatalf("seq prob %g outside [0,1]", c.Storage.SeqProb)
		}
	}
	// Table2Mix configures writes far more sequential (0.7) than reads
	// (0.05).
	if write.Storage.SeqProb <= read.Storage.SeqProb {
		t.Errorf("write seq %g not above read seq %g", write.Storage.SeqProb, read.Storage.SeqProb)
	}
}
