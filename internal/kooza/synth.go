package kooza

import (
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Synthesize generates n synthetic requests from the model: arrivals come
// from the network queueing model, each request's class is drawn from the
// class weights, and the request's spans follow the class's
// time-dependency queue with features emitted by the four subsystem
// models. Span durations are zero — the synthetic workload describes what
// to do, not how long it takes; timing comes from replaying it on a
// (simulated) platform.
//
// A trained Model is read-only: Synthesize keeps all walk state in
// per-call walkers and never mutates the model, so concurrent Synthesize
// calls on one Model are safe as long as each call gets its own
// *rand.Rand (see prand.New for derived streams).
func (m *Model) Synthesize(n int, r *rand.Rand) (*trace.Trace, error) {
	classAlias, walkers, gapState, err := m.synthSetup(n, r)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	var arena trace.SpanArena
	var now float64
	for i := 0; i < n; i++ {
		var gap float64
		if gapState >= 0 {
			// Semi-Markov arrivals: walk the gap-regime chain.
			gapState = m.Network.GapChain.Step(gapState, r)
			gap = m.Network.GapStates[gapState].Rand(r)
		} else {
			gap = m.Network.Interarrival.Rand(r)
		}
		if gap < 0 {
			gap = 0
		}
		now += gap
		ci := classAlias.Draw(r)
		req := walkers[ci].next(int64(i), now, r, &arena)
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// synthSetup validates the model and builds the per-call sampling state
// shared by Synthesize and SynthesizeBatch: the class alias table, one
// walker per class (walker construction consumes RNG — chain Start draws —
// in class order), and the initial gap-regime state (-1 when arrivals come
// from the fitted interarrival distribution instead of the semi-Markov gap
// chain).
func (m *Model) synthSetup(n int, r *rand.Rand) (stats.Alias, []*classWalker, int, error) {
	if n < 1 {
		return stats.Alias{}, nil, 0, fmt.Errorf("kooza: synthesize needs n >= 1, got %d", n)
	}
	if len(m.Classes) == 0 {
		return stats.Alias{}, nil, 0, fmt.Errorf("kooza: model has no classes")
	}
	// Class picker: one alias build per call, then O(1) per request.
	weights := make([]float64, len(m.Classes))
	var wsum float64
	for i, c := range m.Classes {
		weights[i] = c.Weight
		wsum += c.Weight
	}
	if wsum <= 0 {
		return stats.Alias{}, nil, 0, fmt.Errorf("kooza: class weights sum to zero")
	}
	classAlias, err := stats.NewAlias(weights)
	if err != nil {
		return stats.Alias{}, nil, 0, fmt.Errorf("kooza: class weights: %w", err)
	}
	// Per-class walker state.
	walkers := make([]*classWalker, len(m.Classes))
	for i, c := range m.Classes {
		walkers[i] = newClassWalker(c, r)
	}
	gapState := -1
	if m.Network.GapChain != nil {
		gapState = m.Network.GapChain.Start(r)
	}
	return classAlias, walkers, gapState, nil
}

// synthSlabRequests is the granularity of the batch path's span-arena
// reservations: one contiguous reservation covers this many requests'
// spans, bounding both allocation count and the memory held per slab.
const synthSlabRequests = 4096

// SynthesizeBatch is the batch flavor of Synthesize: same draw order, same
// seed in, byte-identical trace out — but the span arena is reserved a slab
// of requests at a time (thousands of spans per reservation instead of one
// chunk per ~170 spans) and the arrival-process branch is hoisted out of
// the request loop. Use it for bulk generation; Synthesize remains for
// one-off or incremental draws.
func (m *Model) SynthesizeBatch(n int, r *rand.Rand) (*trace.Trace, error) {
	classAlias, walkers, gapState, err := m.synthSetup(n, r)
	if err != nil {
		return nil, err
	}
	// The widest phase path any class (or queue variant) can emit bounds
	// the spans one request can take from the arena.
	maxPhases := 0
	for _, c := range m.Classes {
		p := len(c.Phases)
		for qi := range c.Queues {
			if len(c.Queues[qi].Phases) > p {
				p = len(c.Queues[qi].Phases)
			}
		}
		if p > maxPhases {
			maxPhases = p
		}
	}
	tr := &trace.Trace{Requests: make([]trace.Request, 0, n)}
	var arena trace.SpanArena
	var now float64
	useGapChain := gapState >= 0
	gapChain := m.Network.GapChain
	gapStates := m.Network.GapStates
	inter := m.Network.Interarrival
	for i := 0; i < n; i++ {
		if i%synthSlabRequests == 0 {
			slab := n - i
			if slab > synthSlabRequests {
				slab = synthSlabRequests
			}
			arena.Reserve(slab * maxPhases)
		}
		var gap float64
		if useGapChain {
			// Semi-Markov arrivals: walk the gap-regime chain.
			gapState = gapChain.Step(gapState, r)
			gap = gapStates[gapState].Rand(r)
		} else {
			gap = inter.Rand(r)
		}
		if gap < 0 {
			gap = 0
		}
		now += gap
		ci := classAlias.Draw(r)
		tr.Requests = append(tr.Requests, walkers[ci].next(int64(i), now, r, &arena))
	}
	return tr, nil
}

// classWalker carries the Markov walk state of one class across requests.
type classWalker struct {
	c *ClassModel
	// storageState is the current LBN-region state.
	storageState int
	// cpuState is the current utilization level.
	cpuState int
	// memBank is the current bank state.
	memBank int
	// lastEnd is the block after the previous synthetic I/O (sequential
	// continuation).
	lastEnd int64
	hasLast bool
	// servers and serverAlias implement the server-instancing draw.
	servers     []int
	serverAlias stats.Alias
	// queueAlias implements the per-request control-flow-path draw.
	queueAlias stats.Alias
}

func newClassWalker(c *ClassModel, r *rand.Rand) *classWalker {
	w := &classWalker{c: c}
	if c.Storage.Chain != nil {
		w.storageState = c.Storage.Chain.Start(r)
	}
	w.cpuState = c.CPU.Chain.Start(r)
	w.memBank = c.Memory.Chain.Start(r)
	// Stable server order for determinism.
	for s := range c.ServerWeights {
		w.servers = append(w.servers, s)
	}
	sort.Ints(w.servers)
	if len(w.servers) > 0 {
		sw := make([]float64, len(w.servers))
		for i, s := range w.servers {
			sw[i] = c.ServerWeights[s]
		}
		w.serverAlias = stats.MustAlias(sw)
	}
	if len(c.Queues) > 0 {
		qw := make([]float64, len(c.Queues))
		for i, q := range c.Queues {
			qw[i] = q.Weight
		}
		w.queueAlias = stats.MustAlias(qw)
	}
	return w
}

func (w *classWalker) pickQueue(r *rand.Rand) *PhaseQueue {
	if w.queueAlias.Empty() {
		return nil
	}
	return &w.c.Queues[w.queueAlias.Draw(r)]
}

func (w *classWalker) pickServer(r *rand.Rand) int {
	if w.serverAlias.Empty() {
		return 0
	}
	return w.servers[w.serverAlias.Draw(r)]
}

// next synthesizes one request, carving its span slice from the arena.
func (w *classWalker) next(id int64, arrival float64, r *rand.Rand, arena *trace.SpanArena) trace.Request {
	c := w.c
	req := trace.Request{
		ID:      id,
		Class:   c.Name,
		Server:  w.pickServer(r),
		Arrival: arrival,
	}
	queue := w.pickQueue(r)
	phases := c.Phases
	var queueCPUBytes []*stats.Empirical
	if queue != nil {
		phases = queue.Phases
		queueCPUBytes = queue.CPUBytes
	}
	req.Spans = arena.Take(len(phases))
	var (
		sawNetwork int
		sawCPU     int
		cpuUtil    = w.nextCPUUtil(r)
	)
	for _, phase := range phases {
		span := trace.Span{Subsystem: phase, Start: arrival}
		switch phase {
		case trace.Network:
			if sawNetwork == 0 {
				span.Bytes = int64(c.NetIn.Rand(r))
			} else {
				span.Bytes = int64(c.NetOut.Rand(r))
			}
			sawNetwork++
		case trace.CPU:
			span.Util = cpuUtil
			if sawCPU < len(queueCPUBytes) && queueCPUBytes[sawCPU] != nil {
				span.Bytes = int64(queueCPUBytes[sawCPU].Rand(r))
			}
			sawCPU++
		case trace.Memory:
			w.memBank = c.Memory.Chain.Step(w.memBank, r)
			span.Bank = w.memBank
			span.Bytes = int64(c.Memory.Sizes.Rand(r))
			span.Op = opFromProb(c.Memory.ReadProb, r)
		case trace.Storage:
			lbn, bytes := w.nextIO(r)
			span.LBN = lbn
			span.Bytes = bytes
			span.Op = opFromProb(c.Storage.ReadProb, r)
		}
		if span.Bytes < 0 {
			span.Bytes = 0
		}
		req.Spans = append(req.Spans, span)
	}
	return req
}

// nextCPUUtil advances the utilization-level chain and emits a value from
// the level's empirical distribution.
func (w *classWalker) nextCPUUtil(r *rand.Rand) float64 {
	c := w.c.CPU
	w.cpuState = c.Chain.Step(w.cpuState, r)
	state := w.cpuState
	if c.Levels[state] == nil {
		// Never-observed level (reachable only through smoothing): fall
		// back to the level midpoint.
		n := c.Chain.N
		mid := c.Lo + (c.Hi-c.Lo)*(float64(state)+0.5)/float64(n)
		return clampUtil(mid)
	}
	return clampUtil(c.Levels[state].Rand(r))
}

// nextIO advances the storage chain and emits (LBN, size).
func (w *classWalker) nextIO(r *rand.Rand) (int64, int64) {
	s := w.c.Storage
	bytes := int64(s.Sizes.Rand(r))
	if bytes < 1 {
		bytes = 1
	}
	// Sequential continuation reproduces spatial locality.
	if w.hasLast && r.Float64() < s.SeqProb {
		lbn := w.lastEnd
		w.lastEnd = lbn + (bytes+4095)/4096
		return lbn, bytes
	}
	if s.Chain != nil {
		w.storageState = s.Chain.Step(w.storageState, r)
	} else {
		// Hierarchical one-step walk: simulate a length-2 fragment so the
		// walk continues from the current state's group.
		seq := s.Hier.Simulate(2, r)
		w.storageState = seq[len(seq)-1]
	}
	lbn := w.sampleLBN(w.storageState, r)
	w.hasLast = true
	w.lastEnd = lbn + (bytes+4095)/4096
	return lbn, bytes
}

func (w *classWalker) sampleLBN(state int, r *rand.Rand) int64 {
	s := w.c.Storage
	if state >= 0 && state < len(s.StateLBNs) && s.StateLBNs[state] != nil {
		lbn := int64(s.StateLBNs[state].Rand(r))
		if lbn < 0 {
			lbn = 0
		}
		return lbn
	}
	// Unobserved region: uniform within the region.
	lo := int64(state) * s.BlocksPerRegion
	return lo + int64(r.Float64()*float64(s.BlocksPerRegion))
}

func opFromProb(readProb float64, r *rand.Rand) trace.Op {
	if r.Float64() < readProb {
		return trace.OpRead
	}
	return trace.OpWrite
}

func clampUtil(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
