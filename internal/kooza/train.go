package kooza

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcmodel/internal/markov"
	"dcmodel/internal/stats"
	"dcmodel/internal/trace"
)

// Train fits a KOOZA model to a trace: one ClassModel per request class
// (four subsystem models plus the time-dependency queue), and the shared
// network arrival model. Each subsystem model is trained purely from the
// spans of the corresponding subsystem, as the paper prescribes ("each one
// of the four models is trained using traces from the corresponding
// subsystem"); the time-dependency queue is extracted from the complete
// round trip of the requests.
func Train(tr *trace.Trace, opts Options) (*Model, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("kooza: invalid training trace: %w", err)
	}
	opts = opts.withDefaults()
	sorted := &trace.Trace{Requests: append([]trace.Request(nil), tr.Requests...)}
	sorted.SortByArrival()

	// Network model: fit the interarrival distribution by KS selection.
	gaps := sorted.Interarrivals()
	if len(gaps) < 2 {
		return nil, fmt.Errorf("kooza: need >= 3 requests to fit the arrival process, got %d", tr.Len())
	}
	best, err := stats.FitBest(gaps)
	if err != nil {
		return nil, fmt.Errorf("kooza: arrival fit: %w", err)
	}
	meanGap := stats.Mean(gaps)
	rate := 0.0
	if meanGap > 0 {
		rate = 1 / meanGap
	}
	model := &Model{
		Network:   &NetworkModel{Interarrival: best.Dist, FitKS: best.KS, Rate: rate},
		Opts:      opts,
		TrainedOn: tr.Len(),
	}
	if opts.ArrivalStates > 1 {
		if err := trainGapChain(model.Network, gaps, opts); err != nil {
			return nil, fmt.Errorf("kooza: arrival gap chain: %w", err)
		}
	}

	for _, name := range sorted.Classes() {
		sub := sorted.ByClass(name)
		cm, err := trainClass(name, sub, float64(sub.Len())/float64(sorted.Len()), opts)
		if err != nil {
			return nil, fmt.Errorf("kooza: class %q: %w", name, err)
		}
		model.Classes = append(model.Classes, cm)
	}
	return model, nil
}

// trainGapChain fits the semi-Markov arrival refinement: gap regimes are
// found by k-means clustering of log-gaps (burst and idle gaps separate
// into modes, as in an MMPP), then a Markov chain over regimes is trained
// with per-regime empirical gaps.
func trainGapChain(nm *NetworkModel, gaps []float64, opts Options) error {
	k := opts.ArrivalStates
	if len(gaps) < 4*k {
		return fmt.Errorf("need >= %d gaps for %d arrival states, got %d", 4*k, k, len(gaps))
	}
	logs := stats.NewMatrix(len(gaps), 1)
	const floor = 1e-9
	for i, g := range gaps {
		if g < floor {
			g = floor
		}
		logs.Set(i, 0, math.Log(g))
	}
	// Deterministic seeding keeps Train reproducible.
	km, err := stats.KMeans(logs, k, rand.New(rand.NewSource(1)), 100)
	if err != nil {
		return err
	}
	seq := km.Assign
	perState := make([][]float64, k)
	for i, s := range seq {
		perState[s] = append(perState[s], gaps[i])
	}
	chain, err := markov.Train([][]int{seq}, k, opts.Smoothing)
	if err != nil {
		return err
	}
	states := make([]*stats.Empirical, k)
	for s, vals := range perState {
		if len(vals) == 0 {
			// Equal-frequency binning can starve a state on tied data;
			// fall back to the pooled gaps.
			vals = gaps
		}
		emp, err := stats.NewEmpirical(vals)
		if err != nil {
			return err
		}
		states[s] = emp
	}
	nm.GapChain = chain
	nm.GapStates = states
	return nil
}

func trainClass(name string, tr *trace.Trace, weight float64, opts Options) (*ClassModel, error) {
	cm := &ClassModel{Name: name, Weight: weight}

	// Time-dependency queues: every retained control-flow path of the
	// class, modal first.
	queues, err := phaseQueues(tr)
	if err != nil {
		return nil, err
	}
	cm.Queues = queues
	cm.Phases = queues[0].Phases

	// Server instancing weights.
	cm.ServerWeights = make(map[int]float64)
	for _, r := range tr.Requests {
		cm.ServerWeights[r.Server] += 1 / float64(tr.Len())
	}

	var trainErr error
	must := func(e error, what string) {
		if e != nil && trainErr == nil {
			trainErr = fmt.Errorf("%s: %w", what, e)
		}
	}

	cm.Storage, trainErr = trainStorage(tr, opts)
	if trainErr != nil {
		return nil, trainErr
	}
	cm.CPU, trainErr = trainCPU(tr, opts)
	if trainErr != nil {
		return nil, trainErr
	}
	cm.Memory, trainErr = trainMemory(tr, opts)
	if trainErr != nil {
		return nil, trainErr
	}

	// Network transfer sizes: first and last network span of each request.
	var inBytes, outBytes []float64
	// CPU processing amounts per queue, per CPU phase position.
	queueIdx := make(map[string]int, len(queues))
	for qi, q := range queues {
		queueIdx[fmt.Sprint(q.Phases)] = qi
	}
	cpuBytes := make([][][]float64, len(queues))
	for qi, q := range queues {
		numCPU := 0
		for _, p := range q.Phases {
			if p == trace.CPU {
				numCPU++
			}
		}
		cpuBytes[qi] = make([][]float64, numCPU)
	}
	for _, r := range tr.Requests {
		nets := r.SpansIn(trace.Network)
		if len(nets) > 0 {
			inBytes = append(inBytes, float64(nets[0].Bytes))
			outBytes = append(outBytes, float64(nets[len(nets)-1].Bytes))
		}
		qi, ok := queueIdx[fmt.Sprint(r.Phases())]
		if !ok {
			continue // below-threshold path; not modeled
		}
		for i, s := range r.SpansIn(trace.CPU) {
			if i < len(cpuBytes[qi]) {
				cpuBytes[qi][i] = append(cpuBytes[qi][i], float64(s.Bytes))
			}
		}
	}
	var e error
	cm.NetIn, e = stats.NewEmpirical(inBytes)
	must(e, "network-in sizes")
	cm.NetOut, e = stats.NewEmpirical(outBytes)
	must(e, "network-out sizes")
	for qi := range queues {
		cm.Queues[qi].CPUBytes = make([]*stats.Empirical, len(cpuBytes[qi]))
		for i, vals := range cpuBytes[qi] {
			if len(vals) == 0 {
				continue
			}
			cm.Queues[qi].CPUBytes[i], e = stats.NewEmpirical(vals)
			must(e, "cpu processing sizes")
		}
	}
	if trainErr != nil {
		return nil, trainErr
	}
	return cm, nil
}

// phaseQueueMinShare is the smallest per-class share a control-flow path
// needs to be retained as its own time-dependency queue.
const phaseQueueMinShare = 0.005

// phaseQueues returns the class's retained phase sequences with weights,
// most frequent first.
func phaseQueues(tr *trace.Trace) ([]PhaseQueue, error) {
	counts := make(map[string]int)
	seqs := make(map[string][]trace.Subsystem)
	total := 0
	for _, r := range tr.Requests {
		p := r.Phases()
		if len(p) == 0 {
			continue
		}
		key := fmt.Sprint(p)
		counts[key]++
		seqs[key] = p
		total++
	}
	if total == 0 {
		return nil, fmt.Errorf("time-dependency queue: no spans in class")
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var queues []PhaseQueue
	var kept float64
	for i, k := range keys {
		share := float64(counts[k]) / float64(total)
		if i > 0 && share < phaseQueueMinShare {
			break
		}
		queues = append(queues, PhaseQueue{Phases: seqs[k], Weight: share})
		kept += share
	}
	// Renormalize over the retained paths.
	for i := range queues {
		queues[i].Weight /= kept
	}
	return queues, nil
}

func trainStorage(tr *trace.Trace, opts Options) (*StorageModel, error) {
	// Collect the storage span stream in time order.
	type io struct {
		start float64
		lbn   int64
		bytes int64
		op    trace.Op
	}
	var ios []io
	for _, r := range tr.Requests {
		for _, s := range r.SpansIn(trace.Storage) {
			ios = append(ios, io{start: s.Start, lbn: s.LBN, bytes: s.Bytes, op: s.Op})
		}
	}
	if len(ios) == 0 {
		return nil, fmt.Errorf("storage model: no storage spans")
	}
	sort.Slice(ios, func(i, j int) bool { return ios[i].start < ios[j].start })

	diskBlocks := opts.DiskBlocks
	if diskBlocks <= 0 {
		var maxLBN int64
		for _, x := range ios {
			if x.lbn > maxLBN {
				maxLBN = x.lbn
			}
		}
		diskBlocks = maxLBN + 1
	}
	blocksPerRegion := diskBlocks / int64(opts.StorageRegions)
	if blocksPerRegion < 1 {
		blocksPerRegion = 1
	}
	m := &StorageModel{
		Regions:         opts.StorageRegions,
		BlocksPerRegion: blocksPerRegion,
		StateLBNs:       make([]*stats.Empirical, opts.StorageRegions),
	}
	stateOf := func(lbn int64) int {
		s := int(lbn / blocksPerRegion)
		if s < 0 {
			return 0
		}
		if s >= opts.StorageRegions {
			return opts.StorageRegions - 1
		}
		return s
	}
	seq := make([]int, len(ios))
	perState := make([][]float64, opts.StorageRegions)
	sizes := make([]float64, len(ios))
	var reads, seqRuns int
	var prevEnd int64 = -1
	for i, x := range ios {
		st := stateOf(x.lbn)
		seq[i] = st
		perState[st] = append(perState[st], float64(x.lbn))
		sizes[i] = float64(x.bytes)
		if x.op == trace.OpRead {
			reads++
		}
		if prevEnd >= 0 && x.lbn == prevEnd {
			seqRuns++
		}
		prevEnd = x.lbn + (x.bytes+4095)/4096
	}
	if len(ios) > 1 {
		m.SeqProb = float64(seqRuns) / float64(len(ios)-1)
	}
	m.ReadProb = float64(reads) / float64(len(ios))
	var err error
	if opts.Hierarchical {
		groups := make([]int, opts.StorageRegions)
		per := (opts.StorageRegions + opts.HierGroups - 1) / opts.HierGroups
		for i := range groups {
			g := i / per
			if g >= opts.HierGroups {
				g = opts.HierGroups - 1
			}
			groups[i] = g
		}
		// Dense groups are guaranteed only when regions >= groups.
		if opts.StorageRegions < opts.HierGroups {
			for i := range groups {
				groups[i] = i
			}
		}
		m.Hier, err = markov.TrainHierarchical([][]int{seq}, opts.StorageRegions, groups, opts.Smoothing)
	} else {
		m.Chain, err = markov.Train([][]int{seq}, opts.StorageRegions, opts.Smoothing)
	}
	if err != nil {
		return nil, fmt.Errorf("storage chain: %w", err)
	}
	for st, vals := range perState {
		if len(vals) > 0 {
			emp, err := stats.NewEmpirical(vals)
			if err != nil {
				return nil, err
			}
			m.StateLBNs[st] = emp
		}
	}
	m.Sizes, err = stats.NewEmpirical(sizes)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func trainCPU(tr *trace.Trace, opts Options) (*CPUModel, error) {
	var utils []float64
	for _, r := range tr.Requests {
		for _, s := range r.SpansIn(trace.CPU) {
			utils = append(utils, s.Util)
		}
	}
	if len(utils) == 0 {
		return nil, fmt.Errorf("cpu model: no cpu spans")
	}
	lo, hi := stats.Min(utils), stats.Max(utils)
	if hi <= lo {
		hi = lo + 1e-9
	}
	m := &CPUModel{Lo: lo, Hi: hi, Levels: make([]*stats.Empirical, opts.CPUStates)}
	// Quantize and train the level chain.
	n := opts.CPUStates
	stateOf := func(u float64) int {
		s := int(float64(n) * (u - lo) / (hi - lo))
		if s < 0 {
			return 0
		}
		if s >= n {
			return n - 1
		}
		return s
	}
	seq := make([]int, len(utils))
	perState := make([][]float64, n)
	for i, u := range utils {
		s := stateOf(u)
		seq[i] = s
		perState[s] = append(perState[s], u)
	}
	chain, err := markov.Train([][]int{seq}, n, opts.Smoothing)
	if err != nil {
		return nil, fmt.Errorf("cpu chain: %w", err)
	}
	m.Chain = chain
	for s, vals := range perState {
		if len(vals) > 0 {
			emp, err := stats.NewEmpirical(vals)
			if err != nil {
				return nil, err
			}
			m.Levels[s] = emp
		}
	}
	return m, nil
}

func trainMemory(tr *trace.Trace, opts Options) (*MemoryModel, error) {
	type access struct {
		start float64
		bank  int
		bytes int64
		op    trace.Op
	}
	var accs []access
	maxBank := 0
	for _, r := range tr.Requests {
		for _, s := range r.SpansIn(trace.Memory) {
			accs = append(accs, access{start: s.Start, bank: s.Bank, bytes: s.Bytes, op: s.Op})
			if s.Bank > maxBank {
				maxBank = s.Bank
			}
		}
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("memory model: no memory spans")
	}
	sort.Slice(accs, func(i, j int) bool { return accs[i].start < accs[j].start })
	banks := maxBank + 1
	m := &MemoryModel{Banks: banks}
	seq := make([]int, len(accs))
	sizes := make([]float64, len(accs))
	var reads int
	for i, a := range accs {
		b := a.bank
		if b < 0 {
			b = 0
		}
		seq[i] = b
		sizes[i] = float64(a.bytes)
		if a.op == trace.OpRead {
			reads++
		}
	}
	m.ReadProb = float64(reads) / float64(len(accs))
	chain, err := markov.Train([][]int{seq}, banks, opts.Smoothing)
	if err != nil {
		return nil, fmt.Errorf("memory chain: %w", err)
	}
	m.Chain = chain
	m.Sizes, err = stats.NewEmpirical(sizes)
	if err != nil {
		return nil, err
	}
	return m, nil
}
