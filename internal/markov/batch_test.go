package markov

import (
	"math/rand"
	"testing"
)

// TestStepNMatchesScalar pins the batch contract: same seed, StepN is
// byte-identical to N scalar Step calls, on frozen and unfrozen chains.
func TestStepNMatchesScalar(t *testing.T) {
	seq := make([]int, 5000)
	r := rand.New(rand.NewSource(1))
	for i := 1; i < len(seq); i++ {
		seq[i] = (seq[i-1] + r.Intn(5) - 2 + 16) % 16
	}
	c, err := Train([][]int{seq}, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	unfrozen := &Chain{N: c.N, Trans: c.Trans, Initial: c.Initial, Visits: c.Visits}

	for name, ch := range map[string]*Chain{"frozen": c, "unfrozen": unfrozen} {
		r1 := rand.New(rand.NewSource(11))
		state := ch.Start(r1)
		want := make([]int, 3000)
		for i := range want {
			state = ch.Step(state, r1)
			want[i] = state
		}
		finalScalar := state

		r2 := rand.New(rand.NewSource(11))
		got := make([]int, 3000)
		finalBatch := ch.StepN(ch.Start(r2), r2, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s step %d: StepN %d, scalar %d", name, i, got[i], want[i])
			}
		}
		if finalBatch != finalScalar {
			t.Fatalf("%s final state: StepN %d, scalar %d", name, finalBatch, finalScalar)
		}
		if r1.Float64() != r2.Float64() {
			t.Fatalf("%s: RNG streams diverged after the batch", name)
		}
	}
}
