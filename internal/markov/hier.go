package markov

import (
	"fmt"
	"math/rand"

	"dcmodel/internal/stats"
)

// Hierarchical is a two-level Markov model: a top-level chain over groups
// and one sub-chain per group over the member states. The paper notes that
// "in order to convey more detailed information on one or multiple aspects
// of the workload, the simple Markov Chain can be substituted by a
// corresponding hierarchical representation"; for storage this is a chain
// over coarse LBN regions with per-region chains over fine ranges.
type Hierarchical struct {
	// Groups maps each state to its group index.
	Groups []int
	// Top is the chain over group indices.
	Top *Chain
	// Sub holds one chain per group; Sub[g] is defined over local indices
	// 0..len(Members[g])-1.
	Sub []*Chain
	// Members lists the states of each group, in local-index order.
	Members [][]int

	local []int // state -> local index within its group
}

// TrainHierarchical trains a two-level model from state sequences, a state
// count and a state-to-group mapping (length n, group indices must be dense
// 0..G-1).
func TrainHierarchical(seqs [][]int, n int, groups []int, smoothing float64) (*Hierarchical, error) {
	if len(groups) != n {
		return nil, fmt.Errorf("markov: groups length %d, want %d", len(groups), n)
	}
	ngroups := 0
	for _, g := range groups {
		if g < 0 {
			return nil, fmt.Errorf("markov: negative group index %d", g)
		}
		if g+1 > ngroups {
			ngroups = g + 1
		}
	}
	if ngroups == 0 {
		return nil, ErrNoData
	}
	members := make([][]int, ngroups)
	local := make([]int, n)
	for s, g := range groups {
		local[s] = len(members[g])
		members[g] = append(members[g], s)
	}
	for g, m := range members {
		if len(m) == 0 {
			return nil, fmt.Errorf("markov: group %d has no states", g)
		}
	}
	// Project sequences to group sequences for the top chain and to
	// per-group local sequences for the sub-chains. A sub-sequence breaks
	// whenever the walk leaves the group.
	topSeqs := make([][]int, 0, len(seqs))
	subSeqs := make([][][]int, ngroups)
	for _, seq := range seqs {
		if len(seq) == 0 {
			continue
		}
		top := make([]int, len(seq))
		for i, s := range seq {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("markov: state %d out of range 0..%d", s, n-1)
			}
			top[i] = groups[s]
		}
		topSeqs = append(topSeqs, top)
		start := 0
		for i := 1; i <= len(seq); i++ {
			if i == len(seq) || groups[seq[i]] != groups[seq[start]] {
				g := groups[seq[start]]
				run := make([]int, i-start)
				for k := start; k < i; k++ {
					run[k-start] = local[seq[k]]
				}
				subSeqs[g] = append(subSeqs[g], run)
				start = i
			}
		}
	}
	top, err := Train(topSeqs, ngroups, smoothing)
	if err != nil {
		return nil, fmt.Errorf("markov: top-level chain: %w", err)
	}
	subs := make([]*Chain, ngroups)
	for g := range subs {
		sub, err := Train(subSeqs[g], len(members[g]), smoothing)
		if err != nil {
			// Group never visited: uniform chain.
			sub = uniformChain(len(members[g]))
		}
		subs[g] = sub
	}
	return &Hierarchical{Groups: groups, Top: top, Sub: subs, Members: members, local: local}, nil
}

func uniformChain(n int) *Chain {
	c := &Chain{
		N:       n,
		Trans:   stats.NewMatrix(n, n),
		Initial: make([]float64, n),
		Visits:  make([]int64, n),
	}
	for i := 0; i < n; i++ {
		row := c.Trans.Row(i)
		for j := range row {
			row[j] = 1 / float64(n)
		}
		c.Initial[i] = 1 / float64(n)
	}
	c.Freeze()
	return c
}

// Freeze rebuilds the alias tables of the top chain and every sub-chain.
// TrainHierarchical produces frozen chains already; this exists for models
// reconstructed from serialized form.
func (h *Hierarchical) Freeze() {
	h.Top.Freeze()
	for _, s := range h.Sub {
		s.Freeze()
	}
}

// Simulate generates a state sequence of the given length: the top chain
// chooses the group trajectory and each group's sub-chain chooses states
// within the group.
func (h *Hierarchical) Simulate(length int, r *rand.Rand) []int {
	if length <= 0 {
		return nil
	}
	out := make([]int, length)
	g := h.Top.Start(r)
	loc := h.Sub[g].Start(r)
	out[0] = h.Members[g][loc]
	for i := 1; i < length; i++ {
		ng := h.Top.Step(g, r)
		if ng == g {
			loc = h.Sub[g].Step(loc, r)
		} else {
			g = ng
			loc = h.Sub[g].Start(r)
		}
		out[i] = h.Members[g][loc]
	}
	return out
}

// NumParams returns the total free-parameter count of the hierarchy.
func (h *Hierarchical) NumParams() int {
	total := h.Top.NumParams()
	for _, s := range h.Sub {
		total += s.NumParams()
	}
	return total
}

// GroupOf returns the group of a state.
func (h *Hierarchical) GroupOf(state int) int { return h.Groups[state] }
