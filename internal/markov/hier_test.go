package markov

import (
	"math"
	"math/rand"
	"testing"
)

// groupedWalk produces a sequence over 6 states in 2 groups ({0,1,2} and
// {3,4,5}) that stays inside a group for a while then hops.
func groupedWalk(n int, r *rand.Rand) []int {
	seq := make([]int, n)
	cur := 0
	for i := range seq {
		seq[i] = cur
		if r.Float64() < 0.05 {
			// Hop to the other group.
			if cur < 3 {
				cur = 3 + r.Intn(3)
			} else {
				cur = r.Intn(3)
			}
		} else {
			// Stay in the group.
			if cur < 3 {
				cur = r.Intn(3)
			} else {
				cur = 3 + r.Intn(3)
			}
		}
	}
	return seq
}

func TestTrainHierarchical(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	seq := groupedWalk(20000, r)
	groups := []int{0, 0, 0, 1, 1, 1}
	h, err := TrainHierarchical([][]int{seq}, 6, groups, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rowsStochastic(t, h.Top.Trans)
	for _, sub := range h.Sub {
		rowsStochastic(t, sub.Trans)
	}
	// Top chain should be sticky (~0.95 self-transition).
	if h.Top.Trans.At(0, 0) < 0.9 || h.Top.Trans.At(1, 1) < 0.9 {
		t.Errorf("top chain not sticky: %v", h.Top.Trans.Data)
	}
	if h.GroupOf(4) != 1 {
		t.Errorf("GroupOf(4) = %d, want 1", h.GroupOf(4))
	}
}

func TestHierarchicalSimulatePreservesLocality(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	seq := groupedWalk(20000, r)
	groups := []int{0, 0, 0, 1, 1, 1}
	h, err := TrainHierarchical([][]int{seq}, 6, groups, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	synth := h.Simulate(20000, r)
	if len(synth) != 20000 {
		t.Fatalf("simulate length %d", len(synth))
	}
	// Group-switch rate of original and synthetic should match (~5%).
	switchRate := func(s []int) float64 {
		var switches int
		for i := 1; i < len(s); i++ {
			if groups[s[i]] != groups[s[i-1]] {
				switches++
			}
		}
		return float64(switches) / float64(len(s)-1)
	}
	origRate, synthRate := switchRate(seq), switchRate(synth)
	if math.Abs(origRate-synthRate) > 0.01 {
		t.Errorf("group switch rate: orig %g vs synth %g", origRate, synthRate)
	}
	for _, s := range synth {
		if s < 0 || s >= 6 {
			t.Fatalf("state %d out of range", s)
		}
	}
}

func TestHierarchicalErrors(t *testing.T) {
	if _, err := TrainHierarchical([][]int{{0}}, 2, []int{0}, 0); err == nil {
		t.Error("groups length mismatch should fail")
	}
	if _, err := TrainHierarchical([][]int{{0}}, 2, []int{0, -1}, 0); err == nil {
		t.Error("negative group should fail")
	}
	if _, err := TrainHierarchical([][]int{{0, 3}}, 2, []int{0, 1}, 0); err == nil {
		t.Error("out-of-range state should fail")
	}
	// Dense-group requirement: group 1 empty.
	if _, err := TrainHierarchical([][]int{{0, 1}}, 2, []int{0, 2}, 0); err == nil {
		t.Error("empty group should fail")
	}
}

func TestHierarchicalSimulateZero(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	seq := groupedWalk(1000, r)
	h, err := TrainHierarchical([][]int{seq}, 6, []int{0, 0, 0, 1, 1, 1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Simulate(0, r) != nil {
		t.Error("zero-length simulate should be nil")
	}
}

func TestHierarchicalNumParams(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	seq := groupedWalk(1000, r)
	h, err := TrainHierarchical([][]int{seq}, 6, []int{0, 0, 0, 1, 1, 1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := h.Top.NumParams() + h.Sub[0].NumParams() + h.Sub[1].NumParams()
	if got := h.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	// A flat 6-state chain has more parameters than the hierarchy — the
	// complexity reduction the paper's hierarchical refinement targets.
	flat, _ := Train([][]int{seq}, 6, 0.1)
	if h.NumParams() >= flat.NumParams() {
		t.Errorf("hierarchy params %d not below flat %d", h.NumParams(), flat.NumParams())
	}
}
