package markov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dcmodel/internal/stats"
)

// GaussianHMM is a hidden Markov model with scalar Gaussian emissions,
// the "Ergodic Continuous Hidden Markov Model" (ECHMM) that Moro et al.
// train on memory-reference streams (virtual page numbers as floating-point
// series) to characterize memory activity and generate synthetic traces.
type GaussianHMM struct {
	// N is the number of hidden states.
	N int
	// Trans is the row-stochastic transition matrix.
	Trans *stats.Matrix
	// Initial is the initial state distribution.
	Initial []float64
	// Mu and Sigma are the per-state emission mean and standard deviation.
	Mu, Sigma []float64
	// LogLik is the final per-observation average log-likelihood after
	// fitting.
	LogLik float64
	// Iters is the number of Baum-Welch iterations performed.
	Iters int

	// rowAlias and initAlias are the frozen alias tables for the hidden
	// transitions, built by Freeze once Fit converges (EM rewrites Trans
	// every iteration, so they cannot be built earlier).
	rowAlias  stats.AliasMatrix
	initAlias stats.Alias
}

// Freeze builds the alias tables that make Sample's hidden-state draws
// O(1). Fit calls it after the final EM iteration; models reconstructed
// from serialized parameters must call it again. The model must be treated
// as read-only afterwards.
func (h *GaussianHMM) Freeze() {
	h.rowAlias = stats.MustAliasMatrix(h.Trans.Data, h.N, h.N)
	h.initAlias = stats.MustAlias(h.Initial)
}

const sigmaFloor = 1e-6

// NewGaussianHMM returns an HMM with n states initialized for Baum-Welch:
// uniform transitions perturbed by r, and emission parameters spread across
// the observed range of obs.
func NewGaussianHMM(n int, obs []float64, r *rand.Rand) (*GaussianHMM, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: hmm needs at least one state, got %d", n)
	}
	if len(obs) < 2*n {
		return nil, fmt.Errorf("markov: hmm with %d states needs >= %d observations, got %d", n, 2*n, len(obs))
	}
	h := &GaussianHMM{
		N:       n,
		Trans:   stats.NewMatrix(n, n),
		Initial: make([]float64, n),
		Mu:      make([]float64, n),
		Sigma:   make([]float64, n),
	}
	lo, hi := stats.Min(obs), stats.Max(obs)
	if hi == lo {
		hi = lo + 1
	}
	sd := stats.StdDev(obs)
	if sd < sigmaFloor {
		sd = 1
	}
	for i := 0; i < n; i++ {
		h.Initial[i] = 1 / float64(n)
		row := h.Trans.Row(i)
		var sum float64
		for j := range row {
			row[j] = 1 + 0.1*r.Float64()
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		// Spread means over the data range (quantile-like placement).
		h.Mu[i] = lo + (hi-lo)*(float64(i)+0.5)/float64(n)
		h.Sigma[i] = sd / float64(n)
		if h.Sigma[i] < sigmaFloor {
			h.Sigma[i] = sigmaFloor
		}
	}
	return h, nil
}

func (h *GaussianHMM) emission(state int, x float64) float64 {
	s := h.Sigma[state]
	z := (x - h.Mu[state]) / s
	return math.Exp(-z*z/2) / (s * math.Sqrt(2*math.Pi))
}

// Fit runs Baum-Welch (EM) on obs for at most maxIter iterations with
// per-step scaling for numerical stability. It returns an error if the
// forward pass degenerates (all emission densities underflow).
func (h *GaussianHMM) Fit(obs []float64, maxIter int) error {
	tn := len(obs)
	if tn == 0 {
		return ErrNoData
	}
	if maxIter < 1 {
		maxIter = 50
	}
	n := h.N
	alpha := stats.NewMatrix(tn, n)
	beta := stats.NewMatrix(tn, n)
	scale := make([]float64, tn)
	gamma := stats.NewMatrix(tn, n)
	xi := stats.NewMatrix(n, n)
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		h.Iters = iter + 1
		// Forward with scaling.
		var ll float64
		for t := 0; t < tn; t++ {
			arow := alpha.Row(t)
			if t == 0 {
				for i := 0; i < n; i++ {
					arow[i] = h.Initial[i] * h.emission(i, obs[0])
				}
			} else {
				prev := alpha.Row(t - 1)
				for j := 0; j < n; j++ {
					var s float64
					for i := 0; i < n; i++ {
						s += prev[i] * h.Trans.At(i, j)
					}
					arow[j] = s * h.emission(j, obs[t])
				}
			}
			var c float64
			for _, v := range arow {
				c += v
			}
			if c <= 0 || math.IsNaN(c) {
				return errors.New("markov: hmm forward pass underflow")
			}
			scale[t] = c
			for i := range arow {
				arow[i] /= c
			}
			ll += math.Log(c)
		}
		h.LogLik = ll / float64(tn)
		// Backward with the same scaling.
		brow := beta.Row(tn - 1)
		for i := range brow {
			brow[i] = 1
		}
		for t := tn - 2; t >= 0; t-- {
			brow := beta.Row(t)
			next := beta.Row(t + 1)
			for i := 0; i < n; i++ {
				var s float64
				for j := 0; j < n; j++ {
					s += h.Trans.At(i, j) * h.emission(j, obs[t+1]) * next[j]
				}
				brow[i] = s / scale[t+1]
			}
		}
		// Gamma and xi accumulators.
		for i := range xi.Data {
			xi.Data[i] = 0
		}
		for t := 0; t < tn; t++ {
			arow, brow, grow := alpha.Row(t), beta.Row(t), gamma.Row(t)
			var sum float64
			for i := 0; i < n; i++ {
				grow[i] = arow[i] * brow[i]
				sum += grow[i]
			}
			if sum > 0 {
				for i := range grow {
					grow[i] /= sum
				}
			}
			if t < tn-1 {
				next := beta.Row(t + 1)
				var denom float64
				vals := make([]float64, n*n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						v := arow[i] * h.Trans.At(i, j) * h.emission(j, obs[t+1]) * next[j]
						vals[i*n+j] = v
						denom += v
					}
				}
				if denom > 0 {
					for k, v := range vals {
						xi.Data[k] += v / denom
					}
				}
			}
		}
		// M step.
		for i := 0; i < n; i++ {
			h.Initial[i] = gamma.At(0, i)
		}
		for i := 0; i < n; i++ {
			var gsum float64
			for t := 0; t < tn-1; t++ {
				gsum += gamma.At(t, i)
			}
			row := h.Trans.Row(i)
			if gsum > 0 {
				for j := 0; j < n; j++ {
					row[j] = xi.At(i, j) / gsum
				}
			}
			// Renormalize against accumulated error.
			var rs float64
			for _, v := range row {
				rs += v
			}
			if rs > 0 {
				for j := range row {
					row[j] /= rs
				}
			}
		}
		for i := 0; i < n; i++ {
			var wsum, msum float64
			for t := 0; t < tn; t++ {
				g := gamma.At(t, i)
				wsum += g
				msum += g * obs[t]
			}
			if wsum > 0 {
				h.Mu[i] = msum / wsum
				var vsum float64
				for t := 0; t < tn; t++ {
					d := obs[t] - h.Mu[i]
					vsum += gamma.At(t, i) * d * d
				}
				h.Sigma[i] = math.Sqrt(vsum / wsum)
				if h.Sigma[i] < sigmaFloor {
					h.Sigma[i] = sigmaFloor
				}
			}
		}
		if h.LogLik-prevLL < 1e-7 && iter > 0 {
			break
		}
		prevLL = h.LogLik
	}
	h.Freeze()
	return nil
}

// LogLikelihood returns the per-observation average log-likelihood of obs
// under the model (scaled forward pass), without modifying the model.
func (h *GaussianHMM) LogLikelihood(obs []float64) (float64, error) {
	tn := len(obs)
	if tn == 0 {
		return 0, ErrNoData
	}
	n := h.N
	alpha := make([]float64, n)
	next := make([]float64, n)
	var ll float64
	for t := 0; t < tn; t++ {
		if t == 0 {
			for i := 0; i < n; i++ {
				alpha[i] = h.Initial[i] * h.emission(i, obs[0])
			}
		} else {
			for j := 0; j < n; j++ {
				var s float64
				for i := 0; i < n; i++ {
					s += alpha[i] * h.Trans.At(i, j)
				}
				next[j] = s * h.emission(j, obs[t])
			}
			copy(alpha, next)
		}
		var c float64
		for _, v := range alpha {
			c += v
		}
		if c <= 0 {
			return 0, errors.New("markov: hmm likelihood underflow")
		}
		for i := range alpha {
			alpha[i] /= c
		}
		ll += math.Log(c)
	}
	return ll / float64(tn), nil
}

// Viterbi returns the most likely hidden-state path for obs.
func (h *GaussianHMM) Viterbi(obs []float64) []int {
	tn := len(obs)
	if tn == 0 {
		return nil
	}
	n := h.N
	delta := stats.NewMatrix(tn, n)
	psi := make([][]int, tn)
	for t := range psi {
		psi[t] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		delta.Set(0, i, math.Log(h.Initial[i]+1e-300)+math.Log(h.emission(i, obs[0])+1e-300))
	}
	for t := 1; t < tn; t++ {
		for j := 0; j < n; j++ {
			best, bestI := math.Inf(-1), 0
			for i := 0; i < n; i++ {
				v := delta.At(t-1, i) + math.Log(h.Trans.At(i, j)+1e-300)
				if v > best {
					best, bestI = v, i
				}
			}
			delta.Set(t, j, best+math.Log(h.emission(j, obs[t])+1e-300))
			psi[t][j] = bestI
		}
	}
	path := make([]int, tn)
	best, bestI := math.Inf(-1), 0
	for i := 0; i < n; i++ {
		if v := delta.At(tn-1, i); v > best {
			best, bestI = v, i
		}
	}
	path[tn-1] = bestI
	for t := tn - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path
}

// Sample generates a synthetic observation sequence (and its hidden path)
// of the given length.
func (h *GaussianHMM) Sample(length int, r *rand.Rand) (obs []float64, states []int) {
	if length <= 0 {
		return nil, nil
	}
	obs = make([]float64, length)
	states = make([]int, length)
	frozen := h.rowAlias.Rows() == h.N
	var s int
	if frozen {
		s = h.initAlias.Draw(r)
	} else {
		s = sampleIndex(h.Initial, r)
	}
	for t := 0; t < length; t++ {
		if t > 0 {
			if frozen {
				s = h.rowAlias.Draw(s, r)
			} else {
				s = sampleIndex(h.Trans.Row(s), r)
			}
		}
		states[t] = s
		obs[t] = h.Mu[s] + h.Sigma[s]*r.NormFloat64()
	}
	return obs, states
}

// NumParams returns the free-parameter count of the HMM.
func (h *GaussianHMM) NumParams() int {
	return h.N*(h.N-1) + (h.N - 1) + 2*h.N
}
