package markov

import (
	"math"
	"math/rand"
	"testing"
)

// twoRegimeSeries generates a series that alternates between two clearly
// separated Gaussian regimes with sticky dynamics.
func twoRegimeSeries(n int, r *rand.Rand) ([]float64, []int) {
	obs := make([]float64, n)
	states := make([]int, n)
	s := 0
	for i := 0; i < n; i++ {
		if r.Float64() < 0.05 {
			s = 1 - s
		}
		states[i] = s
		if s == 0 {
			obs[i] = 10 + r.NormFloat64()
		} else {
			obs[i] = 50 + 2*r.NormFloat64()
		}
	}
	return obs, states
}

func TestGaussianHMMFitRecoversRegimes(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	obs, _ := twoRegimeSeries(4000, r)
	h, err := NewGaussianHMM(2, obs, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Fit(obs, 100); err != nil {
		t.Fatal(err)
	}
	rowsStochastic(t, h.Trans)
	// Means should land near 10 and 50 (order unknown).
	lo, hi := h.Mu[0], h.Mu[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-10) > 1.5 || math.Abs(hi-50) > 1.5 {
		t.Errorf("emission means = %v, want ~{10, 50}", h.Mu)
	}
	// Dynamics should be sticky (~0.95 self-transition).
	if h.Trans.At(0, 0) < 0.85 || h.Trans.At(1, 1) < 0.85 {
		t.Errorf("transitions not sticky: %v", h.Trans.Data)
	}
}

func TestGaussianHMMViterbi(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	obs, truth := twoRegimeSeries(2000, r)
	h, err := NewGaussianHMM(2, obs, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Fit(obs, 100); err != nil {
		t.Fatal(err)
	}
	path := h.Viterbi(obs)
	if len(path) != len(obs) {
		t.Fatalf("viterbi length %d", len(path))
	}
	// Accuracy up to label permutation.
	var agree int
	for i := range path {
		if path[i] == truth[i] {
			agree++
		}
	}
	acc := float64(agree) / float64(len(path))
	if acc < 0.5 {
		acc = 1 - acc
	}
	if acc < 0.97 {
		t.Errorf("viterbi accuracy %g, want > 0.97", acc)
	}
}

func TestGaussianHMMSampleStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	obs, _ := twoRegimeSeries(4000, r)
	h, err := NewGaussianHMM(2, obs, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Fit(obs, 100); err != nil {
		t.Fatal(err)
	}
	synth, states := h.Sample(20000, r)
	if len(synth) != 20000 || len(states) != 20000 {
		t.Fatal("sample lengths wrong")
	}
	// Synthetic series should land in the same regimes: overall mean close.
	origMean := mean(obs)
	synthMean := mean(synth)
	if math.Abs(origMean-synthMean) > 3 {
		t.Errorf("synthetic mean %g vs original %g", synthMean, origMean)
	}
}

func TestGaussianHMMLikelihoodImproves(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	obs, _ := twoRegimeSeries(2000, r)
	h, err := NewGaussianHMM(2, obs, r)
	if err != nil {
		t.Fatal(err)
	}
	ll0, err := h.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Fit(obs, 100); err != nil {
		t.Fatal(err)
	}
	ll1, err := h.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	if ll1 <= ll0 {
		t.Errorf("fit did not improve likelihood: %g -> %g", ll0, ll1)
	}
	// A wrong-regime model scores worse than the fitted one.
	bad, _ := NewGaussianHMM(2, obs, r)
	for i := range bad.Mu {
		bad.Mu[i] = -100
	}
	llBad, err := bad.LogLikelihood(obs)
	if err == nil && llBad >= ll1 {
		t.Errorf("bad model likelihood %g >= fitted %g", llBad, ll1)
	}
}

func TestGaussianHMMErrors(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	if _, err := NewGaussianHMM(0, []float64{1, 2}, r); err == nil {
		t.Error("zero states should fail")
	}
	if _, err := NewGaussianHMM(3, []float64{1, 2}, r); err == nil {
		t.Error("too few observations should fail")
	}
	h, err := NewGaussianHMM(2, []float64{1, 2, 3, 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Fit(nil, 10); err == nil {
		t.Error("fit on empty obs should fail")
	}
	if _, err := h.LogLikelihood(nil); err == nil {
		t.Error("likelihood of empty obs should fail")
	}
	if h.Viterbi(nil) != nil {
		t.Error("viterbi of empty obs should be nil")
	}
	if obs, states := h.Sample(0, r); obs != nil || states != nil {
		t.Error("zero-length sample should be nil")
	}
}

func TestGaussianHMMNumParams(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	h, err := NewGaussianHMM(3, make([]float64, 10), r)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.NumParams(); got != 3*2+2+6 {
		t.Errorf("NumParams = %d, want 14", got)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
