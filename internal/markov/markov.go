// Package markov provides the Markov-model substrate used by KOOZA's
// storage, processor and memory models: discrete-time Markov chains trained
// from state sequences, hierarchical (two-level) chains implementing the
// paper's "hierarchical representation" refinement, and Gaussian-emission
// hidden Markov models (the ECHMM approach of Moro et al. for memory
// reference streams).
package markov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dcmodel/internal/stats"
)

// ErrNoData is returned when training is attempted on empty input.
var ErrNoData = errors.New("markov: no training data")

// Chain is a discrete-time Markov chain over states 0..N-1.
//
// The paper prefers Markov models for the storage, processor and memory
// subsystems "because we want to capture the sequence of states and the
// probabilities of switching between them".
type Chain struct {
	// N is the number of states.
	N int
	// Trans is the row-stochastic transition matrix (N x N).
	Trans *stats.Matrix
	// Initial is the initial state distribution.
	Initial []float64
	// Visits[i] is the number of training observations of state i,
	// retained for model-complexity reporting.
	Visits []int64

	// rowAlias holds the frozen per-row alias tables of Trans and
	// initAlias the one for Initial, making Step and Start O(1) in N.
	// They are built by Freeze (called from Train); chains deserialized
	// or assembled by hand fall back to a linear scan until frozen.
	rowAlias  stats.AliasMatrix
	initAlias stats.Alias
}

// Freeze builds the per-row alias tables that make Step and Start O(1)
// draws. Train calls it automatically; it must be re-invoked on chains
// reconstructed from serialized form (the tables are derived state and are
// not persisted). After Freeze the chain must be treated as read-only.
func (c *Chain) Freeze() {
	c.rowAlias = stats.MustAliasMatrix(c.Trans.Data, c.N, c.N)
	c.initAlias = stats.MustAlias(c.Initial)
}

// Train estimates a Chain with n states from one or more state sequences.
// smoothing is an additive (Laplace) pseudo-count applied to every
// transition, which keeps the chain irreducible when some transitions are
// unobserved; 0 disables smoothing (rows with no observations fall back to
// uniform).
func Train(seqs [][]int, n int, smoothing float64) (*Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	if smoothing < 0 {
		return nil, fmt.Errorf("markov: smoothing must be non-negative, got %g", smoothing)
	}
	var total int
	for _, s := range seqs {
		total += len(s)
	}
	if total == 0 {
		return nil, ErrNoData
	}
	counts := stats.NewMatrix(n, n)
	initial := make([]float64, n)
	visits := make([]int64, n)
	for _, seq := range seqs {
		if len(seq) == 0 {
			continue
		}
		for i, s := range seq {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("markov: state %d out of range 0..%d", s, n-1)
			}
			visits[s]++
			if i == 0 {
				initial[s]++
			} else {
				counts.Data[seq[i-1]*n+s]++
			}
		}
	}
	c := &Chain{N: n, Trans: stats.NewMatrix(n, n), Initial: initial, Visits: visits}
	var initTotal float64
	for _, v := range initial {
		initTotal += v
	}
	// Smoothing also applies to the initial distribution, so a smoothed
	// chain assigns positive likelihood to any start state.
	initDenom := initTotal + smoothing*float64(n)
	for i := range initial {
		initial[i] = (initial[i] + smoothing) / initDenom
	}
	for i := 0; i < n; i++ {
		row := counts.Row(i)
		var rowSum float64
		for _, v := range row {
			rowSum += v
		}
		out := c.Trans.Row(i)
		denom := rowSum + smoothing*float64(n)
		if denom == 0 {
			// Unvisited state: uniform fallback.
			for j := range out {
				out[j] = 1 / float64(n)
			}
			continue
		}
		for j := range out {
			out[j] = (row[j] + smoothing) / denom
		}
	}
	c.Freeze()
	return c, nil
}

// Step draws the successor of state using r: O(1) via the frozen alias
// table, or a linear scan over the row for unfrozen chains.
func (c *Chain) Step(state int, r *rand.Rand) int {
	if c.rowAlias.Rows() == c.N {
		return c.rowAlias.Draw(state, r)
	}
	return sampleIndex(c.Trans.Row(state), r)
}

// StepN draws len(out) successive states starting after state, writing each
// visited state to out and returning the final one. It consumes exactly one
// variate per step in Step's order, so same seed gives a sequence
// byte-identical to len(out) scalar Step calls — but the frozen path runs
// the whole walk inside stats.AliasMatrix.WalkN with the table fields
// hoisted out of the loop.
func (c *Chain) StepN(state int, r *rand.Rand, out []int) int {
	if c.rowAlias.Rows() == c.N {
		return c.rowAlias.WalkN(state, r, out)
	}
	for i := range out {
		state = sampleIndex(c.Trans.Row(state), r)
		out[i] = state
	}
	return state
}

// Start draws an initial state using r.
func (c *Chain) Start(r *rand.Rand) int {
	if !c.initAlias.Empty() {
		return c.initAlias.Draw(r)
	}
	return sampleIndex(c.Initial, r)
}

// Simulate generates a state sequence of the given length starting from the
// initial distribution.
func (c *Chain) Simulate(length int, r *rand.Rand) []int {
	if length <= 0 {
		return nil
	}
	out := make([]int, length)
	out[0] = c.Start(r)
	for i := 1; i < length; i++ {
		out[i] = c.Step(out[i-1], r)
	}
	return out
}

// Stationary returns the stationary distribution of the chain by power
// iteration. It fails if the iteration does not converge (e.g. a periodic
// chain without smoothing).
func (c *Chain) Stationary() ([]float64, error) {
	pi := make([]float64, c.N)
	for i := range pi {
		pi[i] = 1 / float64(c.N)
	}
	next := make([]float64, c.N)
	for iter := 0; iter < 100000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < c.N; i++ {
			pii := pi[i]
			if pii == 0 {
				continue
			}
			row := c.Trans.Row(i)
			for j, p := range row {
				next[j] += pii * p
			}
		}
		var diff float64
		for j := range pi {
			diff += math.Abs(next[j] - pi[j])
		}
		copy(pi, next)
		if diff < 1e-12 {
			return pi, nil
		}
	}
	return nil, errors.New("markov: stationary distribution did not converge")
}

// LogLikelihood returns the log-likelihood of a state sequence under the
// chain (using the initial distribution for the first state). Impossible
// transitions yield -Inf.
func (c *Chain) LogLikelihood(seq []int) float64 {
	if len(seq) == 0 {
		return 0
	}
	ll := math.Log(c.Initial[seq[0]] + 0)
	for i := 1; i < len(seq); i++ {
		ll += math.Log(c.Trans.At(seq[i-1], seq[i]))
	}
	return ll
}

// NumParams returns the number of free parameters of the chain
// (N*(N-1) transition probabilities plus N-1 initial probabilities), the
// model-complexity measure used by the cross-examination scorecard.
func (c *Chain) NumParams() int { return c.N*(c.N-1) + (c.N - 1) }

// TotalVariation returns the total-variation distance between the
// transition rows of c and other, averaged over rows weighted by c's visit
// counts. It quantifies how far apart two trained chains are and is used to
// verify that a chain re-trained on synthetic output matches the original.
func (c *Chain) TotalVariation(other *Chain) (float64, error) {
	if other.N != c.N {
		return 0, fmt.Errorf("markov: state-count mismatch %d vs %d", c.N, other.N)
	}
	var totalVisits float64
	for _, v := range c.Visits {
		totalVisits += float64(v)
	}
	if totalVisits == 0 {
		return 0, ErrNoData
	}
	var tv float64
	for i := 0; i < c.N; i++ {
		w := float64(c.Visits[i]) / totalVisits
		if w == 0 {
			continue
		}
		var rowTV float64
		a, b := c.Trans.Row(i), other.Trans.Row(i)
		for j := range a {
			rowTV += math.Abs(a[j] - b[j])
		}
		tv += w * rowTV / 2
	}
	return tv, nil
}

// sampleIndex draws an index from the (normalized) weights.
func sampleIndex(weights []float64, r *rand.Rand) int {
	u := r.Float64()
	var cum float64
	for i, w := range weights {
		cum += w
		if u <= cum {
			return i
		}
	}
	return len(weights) - 1
}
