package markov

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchChain trains a chain over n states from a random-walk sequence, the
// shape of the storage/CPU/memory chains the synthesis hot loop steps.
func benchChain(b *testing.B, n int) *Chain {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	seq := make([]int, 20000)
	for i := 1; i < len(seq); i++ {
		seq[i] = (seq[i-1] + r.Intn(5) - 2 + n) % n
	}
	c, err := Train([][]int{seq}, n, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkChainStep times one Markov transition draw — the innermost
// operation of every synthesis loop. With frozen alias tables this is O(1)
// and 0 allocs/op at any state count.
func BenchmarkChainStep(b *testing.B) {
	for _, n := range []int{8, 32, 128, 1024} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			c := benchChain(b, n)
			r := rand.New(rand.NewSource(2))
			state := c.Start(r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state = c.Step(state, r)
			}
			_ = state
		})
	}
}

// BenchmarkChainStepN times the batched walk: per-step cost of StepN over
// a 1024-step batch, the batch path SynthesizeBatch rides.
func BenchmarkChainStepN(b *testing.B) {
	for _, n := range []int{8, 32, 128, 1024} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			c := benchChain(b, n)
			r := rand.New(rand.NewSource(2))
			state := c.Start(r)
			out := make([]int, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(out) {
				state = c.StepN(state, r, out)
			}
			_ = state
		})
	}
}

func BenchmarkChainSimulate(b *testing.B) {
	c := benchChain(b, 32)
	r := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Simulate(1000, r)
	}
}

func BenchmarkHMMSample(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	obs := make([]float64, 2000)
	for i := range obs {
		obs[i] = float64(i%7) + 0.1*r.NormFloat64()
	}
	h, err := NewGaussianHMM(4, obs, r)
	if err != nil {
		b.Fatal(err)
	}
	if err := h.Fit(obs, 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sample(100, r)
	}
}
