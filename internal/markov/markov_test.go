package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcmodel/internal/stats"
)

func rowsStochastic(t *testing.T, m *stats.Matrix) {
	t.Helper()
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 {
				t.Fatalf("negative transition probability in row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g, want 1", i, sum)
		}
	}
}

func TestTrainBasic(t *testing.T) {
	// Deterministic cycle 0 -> 1 -> 2 -> 0.
	seq := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	c, err := Train([][]int{seq}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rowsStochastic(t, c.Trans)
	if c.Trans.At(0, 1) != 1 || c.Trans.At(1, 2) != 1 || c.Trans.At(2, 0) != 1 {
		t.Errorf("cycle transitions not learned: %v", c.Trans.Data)
	}
	if c.Initial[0] != 1 {
		t.Errorf("initial = %v, want state 0", c.Initial)
	}
	if c.Visits[0] != 4 || c.Visits[1] != 3 {
		t.Errorf("visits = %v", c.Visits)
	}
}

func TestTrainSmoothing(t *testing.T) {
	seq := []int{0, 1, 0, 1}
	c, err := Train([][]int{seq}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rowsStochastic(t, c.Trans)
	// Smoothing gives unseen transitions positive mass.
	if c.Trans.At(0, 2) <= 0 {
		t.Error("smoothed unseen transition should be positive")
	}
	// State 2 unvisited: uniform row via smoothing.
	for j := 0; j < 3; j++ {
		if math.Abs(c.Trans.At(2, j)-1.0/3) > 1e-12 {
			t.Errorf("unvisited state row = %v", c.Trans.Row(2))
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 3, 0); err == nil {
		t.Error("no data should fail")
	}
	if _, err := Train([][]int{{0, 5}}, 3, 0); err == nil {
		t.Error("out-of-range state should fail")
	}
	if _, err := Train([][]int{{0}}, 0, 0); err == nil {
		t.Error("zero states should fail")
	}
	if _, err := Train([][]int{{0}}, 2, -1); err == nil {
		t.Error("negative smoothing should fail")
	}
}

func TestTrainRowsStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		seq := make([]int, 50+r.Intn(100))
		for i := range seq {
			seq[i] = r.Intn(n)
		}
		c, err := Train([][]int{seq}, n, r.Float64())
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var sum float64
			for _, v := range c.Trans.Row(i) {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	seq := make([]int, 5000)
	for i := 1; i < len(seq); i++ {
		// Sticky random walk over 4 states.
		if r.Float64() < 0.7 {
			seq[i] = seq[i-1]
		} else {
			seq[i] = r.Intn(4)
		}
	}
	c, err := Train([][]int{seq}, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary sums to %g", sum)
	}
	// pi P = pi.
	for j := 0; j < 4; j++ {
		var v float64
		for i := 0; i < 4; i++ {
			v += pi[i] * c.Trans.At(i, j)
		}
		if math.Abs(v-pi[j]) > 1e-9 {
			t.Errorf("stationary not a fixed point at %d: %g vs %g", j, v, pi[j])
		}
	}
}

func TestSimulateVisitsMatchStationary(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	// Two-state chain with known stationary: P(0->1)=0.1, P(1->0)=0.3 →
	// pi = (0.75, 0.25).
	c := &Chain{
		N:       2,
		Trans:   stats.NewMatrix(2, 2),
		Initial: []float64{1, 0},
		Visits:  []int64{1, 1},
	}
	c.Trans.Set(0, 0, 0.9)
	c.Trans.Set(0, 1, 0.1)
	c.Trans.Set(1, 0, 0.3)
	c.Trans.Set(1, 1, 0.7)
	seq := c.Simulate(200000, r)
	var ones int
	for _, s := range seq {
		ones += s
	}
	frac := float64(ones) / float64(len(seq))
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("simulated occupancy of state 1 = %g, want 0.25", frac)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.75) > 1e-9 {
		t.Errorf("stationary = %v, want [0.75 0.25]", pi)
	}
}

func TestSimulateLengths(t *testing.T) {
	c, _ := Train([][]int{{0, 1, 0, 1}}, 2, 0.5)
	if c.Simulate(0, rand.New(rand.NewSource(1))) != nil {
		t.Error("zero-length simulate should be nil")
	}
	if got := len(c.Simulate(17, rand.New(rand.NewSource(1)))); got != 17 {
		t.Errorf("simulate length = %d, want 17", got)
	}
}

func TestLogLikelihood(t *testing.T) {
	c, _ := Train([][]int{{0, 1, 2, 0, 1, 2, 0}}, 3, 0)
	// The training cycle is certain under the model.
	if ll := c.LogLikelihood([]int{0, 1, 2, 0}); ll != 0 {
		t.Errorf("loglik of certain path = %g, want 0", ll)
	}
	if ll := c.LogLikelihood([]int{0, 0}); !math.IsInf(ll, -1) {
		t.Errorf("impossible path loglik = %g, want -Inf", ll)
	}
	if ll := c.LogLikelihood(nil); ll != 0 {
		t.Errorf("empty path loglik = %g, want 0", ll)
	}
}

func TestRetrainRecoversChain(t *testing.T) {
	// Train a chain, simulate, re-train on the synthetic sequence: the two
	// chains must be close in total variation. This is the core invariant
	// the Markov subsystem models rely on.
	r := rand.New(rand.NewSource(82))
	orig := make([]int, 20000)
	for i := 1; i < len(orig); i++ {
		switch orig[i-1] {
		case 0:
			if r.Float64() < 0.8 {
				orig[i] = 0
			} else {
				orig[i] = 1
			}
		case 1:
			orig[i] = r.Intn(3)
		default:
			if r.Float64() < 0.5 {
				orig[i] = 0
			} else {
				orig[i] = 2
			}
		}
	}
	c1, err := Train([][]int{orig}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	synth := c1.Simulate(20000, r)
	c2, err := Train([][]int{synth}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := c1.TotalVariation(c2)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.02 {
		t.Errorf("retrained chain TV distance = %g, want < 0.02", tv)
	}
}

func TestTotalVariationErrors(t *testing.T) {
	a, _ := Train([][]int{{0, 1}}, 2, 0.1)
	b, _ := Train([][]int{{0, 1, 2}}, 3, 0.1)
	if _, err := a.TotalVariation(b); err == nil {
		t.Error("state-count mismatch should fail")
	}
}

func TestNumParams(t *testing.T) {
	c, _ := Train([][]int{{0, 1, 0}}, 4, 0.1)
	if got := c.NumParams(); got != 4*3+3 {
		t.Errorf("NumParams = %d, want 15", got)
	}
}
