package markov

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Merge folds other's accumulated counts into a: transition counts,
// initial-state counts, visit counts and the transition/sequence totals
// are summed element-wise. Both accumulators must have the same state
// count and smoothing. other is left untouched; a nil other is a no-op.
//
// Merge is exact, not approximate: every count is an integer-valued
// float64 (Observe only ever adds 1), and integer addition in float64 is
// exact and order-independent far past any realistic count, so
//
//	Merge(a1, ..., ak).Chain() == one accumulator fed all sequences
//
// bit for bit, regardless of how the sequences were partitioned across
// the accumulators or the order the partial accumulators are merged in.
// This is the determinism contract the cluster coordinator's model merge
// is built on (see internal/cluster): shard ingest any way you like,
// merge in any order, and the global model is byte-identical.
//
// Like Observe and Reset, Merge is not safe for concurrent use on either
// receiver or argument; callers serialize access per accumulator.
// Independent accumulators may be fed from independent goroutines — that
// is the intended sharded-ingest pattern.
func (a *Accumulator) Merge(other *Accumulator) error {
	if other == nil {
		return nil
	}
	if other.n != a.n {
		return fmt.Errorf("markov: merge state-count mismatch %d vs %d", a.n, other.n)
	}
	if other.smoothing != a.smoothing {
		return fmt.Errorf("markov: merge smoothing mismatch %g vs %g", a.smoothing, other.smoothing)
	}
	for i, v := range other.counts {
		a.counts[i] += v
	}
	for i, v := range other.initial {
		a.initial[i] += v
	}
	for i, v := range other.visits {
		a.visits[i] += v
	}
	a.trans += other.trans
	a.seqs += other.seqs
	return nil
}

// accumulator wire format: magic, version, state count, then the raw
// sufficient statistics. Counts are serialized as IEEE-754 bit patterns,
// so marshaling is lossless and byte-identity of two marshaled
// accumulators is exactly count-identity.
const (
	accMagic   = "DCMA"
	accVersion = 1
	// accMaxStates bounds the state count accepted when unmarshaling, so
	// a corrupt header cannot demand a multi-gigabyte allocation. The
	// largest chain in the toolkit (storage regions) is a few hundred
	// states.
	accMaxStates = 1 << 12
)

// MarshalBinary serializes the accumulator's sufficient statistics in a
// deterministic little-endian layout: two accumulators marshal to the
// same bytes if and only if they hold the same counts. The frozen-chain
// derived state is not included (Chain() rebuilds it).
func (a *Accumulator) MarshalBinary() ([]byte, error) {
	n := a.n
	size := len(accMagic) + 1 + 4 + 8 + // header, version, n, smoothing
		8*n*n + 8*n + 8*n + 8 + 8 // counts, initial, visits, trans, seqs
	buf := make([]byte, 0, size)
	buf = append(buf, accMagic...)
	buf = append(buf, accVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.smoothing))
	for _, v := range a.counts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range a.initial {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range a.visits {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.trans))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.seqs))
	return buf, nil
}

// UnmarshalAccumulator reconstructs an accumulator from MarshalBinary
// output. Every defect — wrong magic, truncated body, absurd state count
// — is an error, never a panic.
func UnmarshalAccumulator(data []byte) (*Accumulator, error) {
	head := len(accMagic) + 1 + 4 + 8
	if len(data) < head {
		return nil, fmt.Errorf("markov: accumulator blob truncated at %d bytes", len(data))
	}
	if string(data[:len(accMagic)]) != accMagic {
		return nil, fmt.Errorf("markov: bad accumulator magic %q", data[:len(accMagic)])
	}
	if v := data[len(accMagic)]; v != accVersion {
		return nil, fmt.Errorf("markov: unsupported accumulator version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(data[len(accMagic)+1:]))
	if n < 1 || n > accMaxStates {
		return nil, fmt.Errorf("markov: accumulator state count %d outside [1, %d]", n, accMaxStates)
	}
	smoothing := math.Float64frombits(binary.LittleEndian.Uint64(data[len(accMagic)+5:]))
	if !(smoothing >= 0) || math.IsInf(smoothing, 0) {
		return nil, fmt.Errorf("markov: accumulator smoothing %g invalid", smoothing)
	}
	want := head + 8*n*n + 8*n + 8*n + 16
	if len(data) != want {
		return nil, fmt.Errorf("markov: accumulator blob is %d bytes, want %d for %d states", len(data), want, n)
	}
	a, err := NewAccumulator(n, smoothing)
	if err != nil {
		return nil, err
	}
	off := head
	read := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	for i := range a.counts {
		a.counts[i] = math.Float64frombits(read())
	}
	for i := range a.initial {
		a.initial[i] = math.Float64frombits(read())
	}
	for i := range a.visits {
		a.visits[i] = int64(read())
	}
	a.trans = int64(read())
	a.seqs = int64(read())
	for i, v := range a.counts {
		if math.IsNaN(v) || v < 0 {
			return nil, fmt.Errorf("markov: accumulator count[%d] = %g invalid", i, v)
		}
	}
	for i, v := range a.initial {
		if math.IsNaN(v) || v < 0 {
			return nil, fmt.Errorf("markov: accumulator initial[%d] = %g invalid", i, v)
		}
	}
	return a, nil
}
