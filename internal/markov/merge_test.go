package markov

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// randomSeqs generates count random state sequences over n states.
func randomSeqs(r *rand.Rand, count, n int) [][]int {
	seqs := make([][]int, count)
	for i := range seqs {
		seq := make([]int, 1+r.Intn(12))
		for j := range seq {
			seq[j] = r.Intn(n)
		}
		seqs[i] = seq
	}
	return seqs
}

// TestAccumulatorMergeExactness pins the exactness property the cluster
// merge is built on: K accumulators fed disjoint partitions of a sequence
// set, merged in any order, hold byte-identical counts — and produce a
// byte-identical Chain — to one accumulator fed every sequence. Each
// shard accumulator is fed from its own goroutine (the intended
// concurrent-shards pattern), which under -race also pins that
// independent accumulators share no state.
func TestAccumulatorMergeExactness(t *testing.T) {
	const (
		states    = 16
		smoothing = 0.01
		rounds    = 20
	)
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(round + 1)))
		seqs := randomSeqs(r, 200+r.Intn(400), states)
		shards := 1 + r.Intn(7)

		// Reference: one accumulator fed the concatenated sequence list.
		ref, err := NewAccumulator(states, smoothing)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range seqs {
			if err := ref.Observe(s); err != nil {
				t.Fatal(err)
			}
		}

		// Sharded: partition round-robin, feed each shard concurrently.
		parts := make([]*Accumulator, shards)
		for i := range parts {
			if parts[i], err = NewAccumulator(states, smoothing); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := i; j < len(seqs); j += shards {
					if err := parts[i].Observe(seqs[j]); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()

		// Merge in a shuffled order: exactness must not depend on it.
		merged, err := NewAccumulator(states, smoothing)
		if err != nil {
			t.Fatal(err)
		}
		order := r.Perm(shards)
		for _, i := range order {
			if err := merged.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}

		refBytes, err := ref.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		mergedBytes, err := merged.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBytes, mergedBytes) {
			t.Fatalf("round %d: merged accumulator (%d shards, order %v) differs from single-fed reference", round, shards, order)
		}
		if merged.Transitions() != ref.Transitions() || merged.Sequences() != ref.Sequences() {
			t.Fatalf("round %d: totals diverged: trans %d vs %d, seqs %d vs %d",
				round, merged.Transitions(), ref.Transitions(), merged.Sequences(), ref.Sequences())
		}
		refChain, err := ref.Chain()
		if err != nil {
			t.Fatal(err)
		}
		mergedChain, err := merged.Chain()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < states; i++ {
			a, b := refChain.Trans.Row(i), mergedChain.Trans.Row(i)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("round %d: chain row %d col %d: %v != %v", round, i, j, a[j], b[j])
				}
			}
		}
		for i := range refChain.Initial {
			if refChain.Initial[i] != mergedChain.Initial[i] {
				t.Fatalf("round %d: initial[%d]: %v != %v", round, i, refChain.Initial[i], mergedChain.Initial[i])
			}
		}
	}
}

func TestAccumulatorMergeMismatch(t *testing.T) {
	a, _ := NewAccumulator(4, 0.01)
	b, _ := NewAccumulator(5, 0.01)
	if err := a.Merge(b); err == nil {
		t.Fatal("state-count mismatch merged without error")
	}
	c, _ := NewAccumulator(4, 0.5)
	if err := a.Merge(c); err == nil {
		t.Fatal("smoothing mismatch merged without error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestAccumulatorMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, err := NewAccumulator(9, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range randomSeqs(r, 100, 9) {
		if err := a.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAccumulator(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("marshal -> unmarshal -> marshal is not the identity")
	}
	if back.N() != a.N() || back.Transitions() != a.Transitions() || back.Sequences() != a.Sequences() {
		t.Fatal("round-tripped accumulator lost totals")
	}
}

func TestUnmarshalAccumulatorRejectsCorruption(t *testing.T) {
	a, _ := NewAccumulator(3, 0)
	_ = a.Observe([]int{0, 1, 2})
	blob, _ := a.MarshalBinary()
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:8],
		"magic":     append([]byte("XXXX"), blob[4:]...),
		"version":   func() []byte { b := append([]byte(nil), blob...); b[4] = 99; return b }(),
		"truncated": blob[:len(blob)-3],
		"oversized": append(append([]byte(nil), blob...), 0),
		"hugeN": func() []byte {
			b := append([]byte(nil), blob...)
			b[5], b[6], b[7], b[8] = 0xff, 0xff, 0xff, 0x7f
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := UnmarshalAccumulator(data); err == nil {
			t.Errorf("%s: corrupt blob unmarshaled without error", name)
		}
	}
}
