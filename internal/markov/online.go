package markov

import (
	"fmt"

	"dcmodel/internal/stats"
)

// Accumulator gathers Markov transition counts incrementally, one state
// sequence at a time, so a long-running process can keep a model's
// sufficient statistics warm without retaining the raw observations. It is
// the online counterpart of Train: Chain() normalizes the accumulated
// counts into a frozen Chain at any point, and Drift compares the counts
// against a previously served chain to detect distribution shift.
//
// Concurrency contract: an Accumulator is not safe for concurrent use —
// Observe, Reset, Merge, Chain and MarshalBinary on one accumulator must
// be serialized by the caller (the serving daemon guards its drift
// accumulator with the ingest lock; the cluster worker guards its shard
// with the shard lock). Independent accumulators carry no shared state,
// so feeding K accumulators from K goroutines is safe and is the
// intended sharded-ingest pattern: Merge then folds them into one exact
// global count set (see Merge for the exactness contract, pinned by the
// -race stress test in merge_test.go).
type Accumulator struct {
	n         int
	smoothing float64
	counts    []float64 // n*n transition counts, row-major
	initial   []float64
	visits    []int64
	trans     int64
	seqs      int64
}

// NewAccumulator returns an empty accumulator over n states with the given
// Laplace smoothing (applied when the counts are normalized into a Chain).
func NewAccumulator(n int, smoothing float64) (*Accumulator, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	if smoothing < 0 {
		return nil, fmt.Errorf("markov: smoothing must be non-negative, got %g", smoothing)
	}
	return &Accumulator{
		n:         n,
		smoothing: smoothing,
		counts:    make([]float64, n*n),
		initial:   make([]float64, n),
		visits:    make([]int64, n),
	}, nil
}

// N returns the state count.
func (a *Accumulator) N() int { return a.n }

// Observe folds one state sequence into the counts. An empty sequence is a
// no-op; out-of-range states are rejected without mutating the counts.
func (a *Accumulator) Observe(seq []int) error {
	for _, s := range seq {
		if s < 0 || s >= a.n {
			return fmt.Errorf("markov: state %d out of range 0..%d", s, a.n-1)
		}
	}
	for i, s := range seq {
		a.visits[s]++
		if i == 0 {
			a.initial[s]++
		} else {
			a.counts[seq[i-1]*a.n+s]++
			a.trans++
		}
	}
	if len(seq) > 0 {
		a.seqs++
	}
	return nil
}

// Transitions returns the number of transitions observed since the last
// Reset — the sample size a drift decision is based on.
func (a *Accumulator) Transitions() int64 { return a.trans }

// Sequences returns the number of non-empty sequences observed.
func (a *Accumulator) Sequences() int64 { return a.seqs }

// Reset zeroes the counts, starting a fresh observation window.
func (a *Accumulator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	for i := range a.initial {
		a.initial[i] = 0
	}
	for i := range a.visits {
		a.visits[i] = 0
	}
	a.trans, a.seqs = 0, 0
}

// Chain normalizes the accumulated counts into a frozen Chain, exactly as
// Train would have produced from the same sequences (same smoothing, same
// uniform fallback for unvisited rows). The accumulator keeps its counts
// and can continue observing; this is the periodic-refreeze hook of the
// online-training loop.
func (a *Accumulator) Chain() (*Chain, error) {
	var total int64
	for _, v := range a.visits {
		total += v
	}
	if total == 0 {
		return nil, ErrNoData
	}
	n := a.n
	c := &Chain{
		N:       n,
		Trans:   stats.NewMatrix(n, n),
		Initial: make([]float64, n),
		Visits:  append([]int64(nil), a.visits...),
	}
	var initTotal float64
	for _, v := range a.initial {
		initTotal += v
	}
	initDenom := initTotal + a.smoothing*float64(n)
	for i := range c.Initial {
		c.Initial[i] = (a.initial[i] + a.smoothing) / initDenom
	}
	for i := 0; i < n; i++ {
		row := a.counts[i*n : (i+1)*n]
		var rowSum float64
		for _, v := range row {
			rowSum += v
		}
		out := c.Trans.Row(i)
		denom := rowSum + a.smoothing*float64(n)
		if denom == 0 {
			for j := range out {
				out[j] = 1 / float64(n)
			}
			continue
		}
		for j := range out {
			out[j] = (row[j] + a.smoothing) / denom
		}
	}
	c.Freeze()
	return c, nil
}

// driftMinExpected is the smallest expected cell count a chi-square cell
// contributes with; rows whose total is below minRow are skipped entirely
// (the classic >= 5-per-cell rule is the caller's choice via minRow).
const driftMinExpected = 1e-9

// Drift runs a chi-square goodness-of-fit test of the accumulator's
// observed transition counts against the transition rows of a previously
// trained (served) chain: row by row, observed counts are tested against
// rowTotal * served probability, and the per-row statistics are pooled.
// Rows with fewer than minRow observed transitions are skipped (too little
// data to judge). A small returned P means the freshly observed stream is
// unlikely to come from the served chain — the staleness trigger that
// forces a retrain in the online-training loop.
func Drift(served *Chain, a *Accumulator, minRow float64) (stats.ChiSquareResult, error) {
	if served == nil {
		return stats.ChiSquareResult{}, fmt.Errorf("markov: drift needs a served chain")
	}
	if served.N != a.n {
		return stats.ChiSquareResult{}, fmt.Errorf("markov: state-count mismatch %d vs %d", served.N, a.n)
	}
	if minRow < 1 {
		minRow = 1
	}
	n := a.n
	var stat float64
	df := 0
	for i := 0; i < n; i++ {
		row := a.counts[i*n : (i+1)*n]
		var rowTotal float64
		for _, v := range row {
			rowTotal += v
		}
		if rowTotal < minRow {
			continue
		}
		p := served.Trans.Row(i)
		for j, obs := range row {
			exp := rowTotal * p[j]
			if exp < driftMinExpected {
				if obs > 0 {
					// A transition the served chain considers (near-)
					// impossible was observed: maximal evidence of drift.
					stat += obs * obs / driftMinExpected
				}
				continue
			}
			diff := obs - exp
			stat += diff * diff / exp
		}
		df += n - 1
	}
	if df == 0 {
		return stats.ChiSquareResult{P: 1}, nil
	}
	return stats.ChiSquareResult{
		Statistic: stat,
		DF:        df,
		P:         stats.ChiSquareSF(stat, float64(df)),
	}, nil
}
