package markov

import (
	"math"
	"math/rand"
	"testing"
)

// TestAccumulatorMatchesTrain checks that incremental accumulation
// normalizes to exactly the chain batch Train produces from the same
// sequences.
func TestAccumulatorMatchesTrain(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 5
	seqs := make([][]int, 20)
	for i := range seqs {
		seq := make([]int, 3+r.Intn(40))
		for j := range seq {
			seq[j] = r.Intn(n)
		}
		seqs[i] = seq
	}
	for _, smoothing := range []float64{0, 0.01, 1} {
		batch, err := Train(seqs, n, smoothing)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		acc, err := NewAccumulator(n, smoothing)
		if err != nil {
			t.Fatalf("NewAccumulator: %v", err)
		}
		for _, seq := range seqs {
			if err := acc.Observe(seq); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		online, err := acc.Chain()
		if err != nil {
			t.Fatalf("Chain: %v", err)
		}
		for i := 0; i < n; i++ {
			if d := math.Abs(online.Initial[i] - batch.Initial[i]); d > 1e-12 {
				t.Fatalf("smoothing=%g initial[%d]: online %g vs batch %g", smoothing, i, online.Initial[i], batch.Initial[i])
			}
			for j := 0; j < n; j++ {
				if d := math.Abs(online.Trans.At(i, j) - batch.Trans.At(i, j)); d > 1e-12 {
					t.Fatalf("smoothing=%g trans[%d,%d]: online %g vs batch %g", smoothing, i, j, online.Trans.At(i, j), batch.Trans.At(i, j))
				}
			}
			if online.Visits[i] != batch.Visits[i] {
				t.Fatalf("visits[%d]: online %d vs batch %d", i, online.Visits[i], batch.Visits[i])
			}
		}
		// The online chain must be frozen: Step must agree with the batch
		// chain under the same rand stream.
		ra, rb := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
		for k := 0; k < 200; k++ {
			s := k % n
			if got, want := online.Step(s, ra), batch.Step(s, rb); got != want {
				t.Fatalf("Step(%d) diverged: %d vs %d", s, got, want)
			}
		}
	}
}

func TestAccumulatorRejectsBadStates(t *testing.T) {
	acc, err := NewAccumulator(3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Observe([]int{0, 3}); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if acc.Transitions() != 0 {
		t.Fatalf("rejected sequence mutated counts: %d transitions", acc.Transitions())
	}
	if _, err := acc.Chain(); err != ErrNoData {
		t.Fatalf("empty accumulator Chain() = %v, want ErrNoData", err)
	}
	if _, err := NewAccumulator(0, 0); err == nil {
		t.Fatal("NewAccumulator(0) accepted")
	}
	if _, err := NewAccumulator(2, -1); err == nil {
		t.Fatal("negative smoothing accepted")
	}
}

// simulateInto feeds sequences drawn from chain into the accumulator.
func simulateInto(t *testing.T, acc *Accumulator, c *Chain, seqs, length int, r *rand.Rand) {
	t.Helper()
	for i := 0; i < seqs; i++ {
		if err := acc.Observe(c.Simulate(length, r)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDrift checks the chi-square drift trigger: a stream drawn from the
// served chain itself must not trip it, while a distribution-shifted
// stream must.
func TestDrift(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 4
	// Served regime: strong 0->1->2->3->0 cycle.
	cycle := make([][]int, 50)
	for i := range cycle {
		seq := make([]int, 60)
		for j := range seq {
			seq[j] = j % n
		}
		cycle[i] = seq
	}
	served, err := Train(cycle, n, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	same, err := NewAccumulator(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	simulateInto(t, same, served, 40, 80, r)
	res, err := Drift(served, same, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Fatalf("in-distribution stream flagged as drift: p=%g stat=%g df=%d", res.P, res.Statistic, res.DF)
	}

	// Shifted regime: reversed cycle 3->2->1->0.
	shifted, err := NewAccumulator(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		seq := make([]int, 80)
		for j := range seq {
			seq[j] = (n - 1) - j%n
		}
		if err := shifted.Observe(seq); err != nil {
			t.Fatal(err)
		}
	}
	res, err = Drift(served, shifted, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("shifted stream not flagged: p=%g stat=%g df=%d", res.P, res.Statistic, res.DF)
	}

	// Mismatched state counts are an error, not a panic.
	wrong, _ := NewAccumulator(n+1, 0.01)
	if _, err := Drift(served, wrong, 5); err == nil {
		t.Fatal("state-count mismatch accepted")
	}
	if _, err := Drift(nil, same, 5); err == nil {
		t.Fatal("nil served chain accepted")
	}
}

// TestDriftResetClearsWindow verifies Reset starts a fresh observation
// window (the post-retrain state of the serving loop).
func TestDriftResetClearsWindow(t *testing.T) {
	acc, err := NewAccumulator(3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Observe([]int{0, 1, 2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if acc.Transitions() != 4 || acc.Sequences() != 1 {
		t.Fatalf("got %d transitions / %d sequences, want 4 / 1", acc.Transitions(), acc.Sequences())
	}
	acc.Reset()
	if acc.Transitions() != 0 || acc.Sequences() != 0 {
		t.Fatal("Reset left counts behind")
	}
	if _, err := acc.Chain(); err != ErrNoData {
		t.Fatalf("post-Reset Chain() = %v, want ErrNoData", err)
	}
}
