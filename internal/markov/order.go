package markov

import (
	"fmt"
	"math/rand"
)

// Higher-order Markov chains via state-space expansion: an order-k chain
// over n states is a first-order chain over n^k composite states. This is
// the "additional detail increases the model's complexity" axis of the
// paper's trade-off, made concrete: parameters grow as n^(k+1).

// OrderK is an order-k Markov chain over n base states.
type OrderK struct {
	// N is the base state count; K the order.
	N, K int
	// Chain is the expanded first-order chain over N^K composite states.
	Chain *Chain
}

// TrainOrderK trains an order-k chain from state sequences. n^k composite
// states are allocated; keep n and k small (n^k <= 1<<20 enforced).
func TrainOrderK(seqs [][]int, n, k int, smoothing float64) (*OrderK, error) {
	if k < 1 {
		return nil, fmt.Errorf("markov: order must be >= 1, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	expanded := 1
	for i := 0; i < k; i++ {
		expanded *= n
		if expanded > 1<<20 {
			return nil, fmt.Errorf("markov: order-%d chain over %d states needs %d composite states (> 2^20)", k, n, expanded)
		}
	}
	// Project each sequence onto composite states: the composite at
	// position t encodes (s_{t-k+1}, ..., s_t).
	var projected [][]int
	for _, seq := range seqs {
		if len(seq) < k {
			continue
		}
		for _, s := range seq {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("markov: state %d out of range 0..%d", s, n-1)
			}
		}
		comp := make([]int, 0, len(seq)-k+1)
		cur := 0
		for i, s := range seq {
			cur = (cur*n + s) % expanded
			if i >= k-1 {
				comp = append(comp, cur)
			}
		}
		projected = append(projected, comp)
	}
	chain, err := Train(projected, expanded, smoothing)
	if err != nil {
		return nil, err
	}
	return &OrderK{N: n, K: k, Chain: chain}, nil
}

// Simulate generates a base-state sequence of the given length.
func (o *OrderK) Simulate(length int, r *rand.Rand) []int {
	if length <= 0 {
		return nil
	}
	out := make([]int, 0, length)
	comp := o.Chain.Start(r)
	// Decode the initial composite state into its k base states.
	prefix := make([]int, o.K)
	c := comp
	for i := o.K - 1; i >= 0; i-- {
		prefix[i] = c % o.N
		c /= o.N
	}
	for _, s := range prefix {
		out = append(out, s)
		if len(out) == length {
			return out
		}
	}
	for len(out) < length {
		comp = o.Chain.Step(comp, r)
		out = append(out, comp%o.N)
	}
	return out
}

// NumParams returns the expanded chain's parameter count.
func (o *OrderK) NumParams() int { return o.Chain.NumParams() }

// LogLikelihood scores a base-state sequence under the model.
func (o *OrderK) LogLikelihood(seq []int) float64 {
	if len(seq) < o.K {
		return 0
	}
	expanded := o.Chain.N
	comp := make([]int, 0, len(seq)-o.K+1)
	cur := 0
	for i, s := range seq {
		cur = (cur*o.N + s) % expanded
		if i >= o.K-1 {
			comp = append(comp, cur)
		}
	}
	return o.Chain.LogLikelihood(comp)
}
