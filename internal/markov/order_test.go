package markov

import (
	"math"
	"math/rand"
	"testing"
)

// secondOrderSeq generates a sequence whose next state depends on the last
// TWO states: after (0,1) always 2; after (1,1) always 0; otherwise
// uniform. A first-order chain cannot capture this.
func secondOrderSeq(n int, r *rand.Rand) []int {
	seq := make([]int, n)
	seq[0], seq[1] = r.Intn(3), r.Intn(3)
	for i := 2; i < n; i++ {
		a, b := seq[i-2], seq[i-1]
		switch {
		case a == 0 && b == 1:
			seq[i] = 2
		case a == 1 && b == 1:
			seq[i] = 0
		default:
			seq[i] = r.Intn(3)
		}
	}
	return seq
}

func TestTrainOrderKCapturesSecondOrderStructure(t *testing.T) {
	r := rand.New(rand.NewSource(130))
	seq := secondOrderSeq(30000, r)
	o2, err := TrainOrderK([][]int{seq}, 3, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := TrainOrderK([][]int{seq}, 3, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The order-2 model must explain the data strictly better.
	test := secondOrderSeq(5000, r)
	ll2 := o2.LogLikelihood(test) / float64(len(test))
	ll1 := o1.LogLikelihood(test) / float64(len(test))
	if ll2 <= ll1 {
		t.Errorf("order-2 loglik %g not above order-1 %g", ll2, ll1)
	}
	// The simulated order-2 stream reproduces the deterministic rule.
	synth := o2.Simulate(30000, r)
	var rule, ruleTotal int
	for i := 2; i < len(synth); i++ {
		if synth[i-2] == 0 && synth[i-1] == 1 {
			ruleTotal++
			if synth[i] == 2 {
				rule++
			}
		}
	}
	if ruleTotal == 0 {
		t.Fatal("pattern (0,1) never appeared in simulation")
	}
	if frac := float64(rule) / float64(ruleTotal); frac < 0.95 {
		t.Errorf("order-2 simulation obeys the rule %g of the time, want ~1", frac)
	}
	// Parameter growth: order-2 over 3 states = 9 composite states.
	if o2.NumParams() <= o1.NumParams() {
		t.Error("order-2 must cost more parameters")
	}
}

func TestTrainOrderKErrors(t *testing.T) {
	if _, err := TrainOrderK([][]int{{0, 1}}, 2, 0, 0.1); err == nil {
		t.Error("order 0 should fail")
	}
	if _, err := TrainOrderK([][]int{{0, 1}}, 0, 1, 0.1); err == nil {
		t.Error("zero states should fail")
	}
	if _, err := TrainOrderK([][]int{{0, 1}}, 100, 4, 0.1); err == nil {
		t.Error("state-space explosion should fail")
	}
	if _, err := TrainOrderK([][]int{{0, 9}}, 3, 2, 0.1); err == nil {
		t.Error("out-of-range state should fail")
	}
	// Sequences shorter than k contribute nothing; all-short input fails.
	if _, err := TrainOrderK([][]int{{0}}, 3, 2, 0.1); err == nil {
		t.Error("all-too-short sequences should fail")
	}
}

func TestOrderKSimulateEdges(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	seq := secondOrderSeq(1000, r)
	o, err := TrainOrderK([][]int{seq}, 3, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Simulate(0, r) != nil {
		t.Error("zero-length simulate should be nil")
	}
	if got := o.Simulate(1, r); len(got) != 1 {
		t.Errorf("length-1 simulate = %v", got)
	}
	long := o.Simulate(500, r)
	if len(long) != 500 {
		t.Errorf("simulate length %d", len(long))
	}
	for _, s := range long {
		if s < 0 || s >= 3 {
			t.Fatalf("state %d out of range", s)
		}
	}
	if ll := o.LogLikelihood([]int{0}); ll != 0 {
		t.Errorf("too-short loglik = %g, want 0", ll)
	}
}

func TestOrderKEqualsOrder1(t *testing.T) {
	// k=1 must reduce exactly to the plain chain.
	r := rand.New(rand.NewSource(132))
	seq := make([]int, 5000)
	for i := 1; i < len(seq); i++ {
		if r.Float64() < 0.8 {
			seq[i] = seq[i-1]
		} else {
			seq[i] = r.Intn(4)
		}
	}
	o, err := TrainOrderK([][]int{seq}, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Train([][]int{seq}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(o.Chain.Trans.At(i, j)-plain.Trans.At(i, j)) > 1e-12 {
				t.Fatalf("k=1 transition (%d,%d) differs", i, j)
			}
		}
	}
}
