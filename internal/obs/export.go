package obs

import "dcmodel/internal/dapper"

// The JSON schema of GET /v1/traces, shared with cmd/traceview. Span and
// parent IDs are carried explicitly so consumers can re-resolve the tree
// (and well-formedness tests can assert every parent exists).

// AnnotationDump is one timestamped span annotation.
type AnnotationDump struct {
	Time    float64 `json:"time"`
	Message string  `json:"message"`
}

// NodeDump is one span of a dumped trace tree.
type NodeDump struct {
	SpanID      uint64           `json:"span_id"`
	ParentID    uint64           `json:"parent_id,omitempty"` // 0 for the root
	Name        string           `json:"name"`
	Server      int              `json:"server"`
	Start       float64          `json:"start"`
	End         float64          `json:"end"`
	DurationMS  float64          `json:"duration_ms"`
	Annotations []AnnotationDump `json:"annotations,omitempty"`
	Children    []*NodeDump      `json:"children,omitempty"`
}

// TreeDump is one request's dumped trace tree.
type TreeDump struct {
	TraceID uint64    `json:"trace_id"`
	Spans   int       `json:"spans"`
	Depth   int       `json:"depth"`
	Root    *NodeDump `json:"root"`
}

// TraceDump is the full GET /v1/traces response body.
type TraceDump struct {
	Enabled     bool        `json:"enabled"`
	SampleEvery int         `json:"sample_every,omitempty"`
	Capacity    int         `json:"capacity,omitempty"`
	Started     int64       `json:"started"`
	Sampled     int64       `json:"sampled"`
	Held        int         `json:"held"`
	Traces      []*TreeDump `json:"traces"`
}

// DumpTree converts an assembled dapper tree into the wire schema.
func DumpTree(t *dapper.Tree) *TreeDump {
	if t == nil || t.Root == nil || t.Root.Span == nil {
		return nil
	}
	return &TreeDump{
		TraceID: uint64(t.Root.Span.Trace),
		Spans:   t.Count,
		Depth:   t.Depth(),
		Root:    dumpNode(t.Root),
	}
}

func dumpNode(n *dapper.Node) *NodeDump {
	s := n.Span
	d := &NodeDump{
		SpanID:     uint64(s.ID),
		ParentID:   uint64(s.Parent),
		Name:       s.Name,
		Server:     s.Server,
		Start:      s.Start,
		End:        s.End,
		DurationMS: 1000 * s.Duration(),
	}
	for _, a := range s.Annotations {
		d.Annotations = append(d.Annotations, AnnotationDump{Time: a.Time, Message: a.Message})
	}
	for _, c := range n.Children {
		d.Children = append(d.Children, dumpNode(c))
	}
	return d
}
