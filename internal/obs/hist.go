package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Histogram is a fixed-bucket cumulative histogram.
//
// Bucket semantics: the bounds are the inclusive upper bounds of the
// finite buckets, ascending. Observe(v) increments the first bucket
// whose bound is >= v; any v strictly greater than the last bound —
// +Inf included — lands in the implicit +Inf overflow bucket rendered
// last. NaN and negative observations are dropped entirely: they
// increment no bucket and contribute to neither the rendered _sum nor
// _count, so a defective measurement (an unstarted timer, a reversed
// clock) can never skew a latency distribution.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	n      int64
}

// NewHistogram returns a histogram over the given ascending bucket
// bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one value (see the type comment for the bucket,
// overflow, NaN and negative rules).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// snapshot copies the counters under the lock.
func (h *Histogram) snapshot() (counts []int64, sum float64, n int64) {
	h.mu.Lock()
	counts = append([]int64(nil), h.counts...)
	sum, n = h.sum, h.n
	h.mu.Unlock()
	return counts, sum, n
}

// writeBlocks renders the cumulative bucket lines plus _sum and _count,
// with labels (possibly empty) spliced into every series.
func (h *Histogram) writeBlocks(w io.Writer, name, labels string) {
	counts, sum, n := h.snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, bound, cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, n)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, n)
}

// HistogramVec is a histogram family keyed by one label; each distinct
// label value is one histogram, created on first use.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	lazy              bool
	mu                sync.Mutex
	hists             map[string]*Histogram
}

// HistogramVec registers a histogram family keyed by label over the
// given ascending bucket bounds.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{
		name: name, help: help, label: label,
		bounds: append([]float64(nil), bounds...),
		hists:  make(map[string]*Histogram),
	}
	r.register(v)
	return v
}

// Lazy makes the family render nothing — not even its HELP/TYPE header —
// until it holds at least one series. New families added next to a
// byte-pinned exposition must be lazy so an idle scrape stays identical;
// the default (header always) matches the classic exposition style.
// Returns the receiver for chaining at registration.
func (v *HistogramVec) Lazy() *HistogramVec {
	v.lazy = true
	return v
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	h := v.hists[value]
	if h == nil {
		h = NewHistogram(v.bounds)
		v.hists[value] = h
	}
	v.mu.Unlock()
	return h
}

// Observe records one value on the series for the given label value.
func (v *HistogramVec) Observe(value string, x float64) { v.With(value).Observe(x) }

func (v *HistogramVec) render(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.hists))
	for k := range v.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hists := make([]*Histogram, len(keys))
	for i, k := range keys {
		hists[i] = v.hists[k]
	}
	v.mu.Unlock()
	if v.lazy && len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for i, k := range keys {
		hists[i].writeBlocks(w, v.name, fmt.Sprintf("%s=%q", v.label, k))
	}
}
