package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketSemantics pins the documented bucket contract:
// inclusive upper bounds, values past the last bound (including +Inf) in
// the overflow bucket, NaN and negative observations dropped entirely
// (no bucket, no _sum, no _count).
func TestHistogramBucketSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 10})

	h.Observe(1)    // inclusive: lands in le="1"
	h.Observe(1.5)  // le="10"
	h.Observe(10)   // inclusive: le="10"
	h.Observe(10.1) // overflow: le="+Inf" only
	h.Observe(math.Inf(1))

	h.Observe(math.NaN()) // dropped
	h.Observe(-0.001)     // dropped
	h.Observe(math.Inf(-1))

	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (NaN/negative must be dropped)", got)
	}
	counts, sum, n := h.snapshot()
	if want := []int64{1, 2, 2}; len(counts) != 3 || counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Fatalf("bucket counts = %v, want %v", counts, want)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	if !math.IsInf(sum, 1) {
		t.Fatalf("sum = %g, want +Inf (the +Inf observation is counted, in overflow)", sum)
	}
}

func TestHistogramRendering(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(100)

	var b strings.Builder
	h.writeBlocks(&b, "x_seconds", "k=\"v\"")
	want := "x_seconds_bucket{k=\"v\",le=\"0.5\"} 1\n" +
		"x_seconds_bucket{k=\"v\",le=\"2\"} 2\n" +
		"x_seconds_bucket{k=\"v\",le=\"+Inf\"} 3\n" +
		"x_seconds_sum{k=\"v\"} 101.25\n" +
		"x_seconds_count{k=\"v\"} 3\n"
	if got := b.String(); got != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", got, want)
	}

	// Unlabeled rendering drops the braces on _sum/_count.
	b.Reset()
	h.writeBlocks(&b, "x_seconds", "")
	if !strings.Contains(b.String(), "x_seconds_sum 101.25\n") ||
		!strings.Contains(b.String(), "x_seconds_count 3\n") {
		t.Fatalf("unlabeled rendering:\n%s", b.String())
	}
}

func TestHistogramVecLazy(t *testing.T) {
	reg := NewRegistry()
	eager := reg.HistogramVec("eager_seconds", "Eager.", "k", []float64{1})
	lazy := reg.HistogramVec("lazy_seconds", "Lazy.", "k", []float64{1}).Lazy()

	var b strings.Builder
	reg.WriteText(&b)
	if !strings.Contains(b.String(), "# TYPE eager_seconds histogram") {
		t.Fatalf("eager empty vec must still render its header:\n%s", b.String())
	}
	if strings.Contains(b.String(), "lazy_seconds") {
		t.Fatalf("lazy empty vec must render nothing:\n%s", b.String())
	}

	eager.Observe("a", 0.5)
	lazy.Observe("a", 0.5)
	b.Reset()
	reg.WriteText(&b)
	if !strings.Contains(b.String(), "lazy_seconds_bucket{k=\"a\",le=\"1\"} 1\n") {
		t.Fatalf("lazy vec with a series must render:\n%s", b.String())
	}
}
