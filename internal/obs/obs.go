// Package obs is the unified observability substrate of the serving
// stack: a stdlib-only, concurrency-safe metrics registry with
// Prometheus-exposition rendering, a live Dapper-style span tracer with
// deterministic 1/N head sampling and ring-buffer collection, per-stage
// wall/alloc accounting, and the single place in the module allowed to
// import net/http/pprof.
//
// The package exists because per-stage latency attribution — not endpoint
// totals — is what makes a serving system tunable: hierarchical
// performance analysis attributes time level by level, and the paper's
// archetypal in-depth collection substrate (Dapper) does exactly that for
// request flows. internal/serve builds its /metrics and /v1/traces
// endpoints on this package; the facade exposes it through
// dcmodel.ServeConfig.Obs and the WithObserver training option.
//
// Three layers:
//
//   - Registry: named metric families (Counter, Gauge, LabeledCounter,
//     HistogramVec) registered once and rendered in registration order,
//     byte-compatible with the hand-rolled exposition it replaced.
//   - Spanner / TraceRing: a concurrency-safe live tracer that
//     head-samples 1 of every N requests, builds each sampled request's
//     dapper span tree, and delivers finished trees to any
//     dapper.Recorder; TraceRing keeps the most recent trees for
//     GET /v1/traces, and SampleEvery / Tee compose recorders.
//   - Stage / RegisterPprof: per-stage wall-clock and allocation
//     accounting surfaced as histograms, and the /debug/pprof/ mount.
package obs
