package obs

import (
	"sync"

	"dcmodel/internal/dapper"
)

// Options is the public observability configuration of the serving
// daemon (dcmodel.ServeConfig.Obs). The zero value keeps the daemon's
// output byte-identical to a daemon without the obs layer: no tracing,
// no stage histograms, no pprof.
type Options struct {
	// SampleEvery arms live span tracing, keeping 1 of every N pipeline
	// requests (ingest/synthesize/characterize/replay) as a span tree
	// served by GET /v1/traces. 0 disables tracing.
	SampleEvery int
	// TraceCapacity bounds the sampled-tree ring buffer (default 128).
	TraceCapacity int
	// Recorder, when non-nil, additionally receives every sampled tree,
	// tee'd with the ring buffer — the shared dapper.Recorder seam, for
	// embedders that stream traces elsewhere.
	Recorder dapper.Recorder
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// DefaultOptions returns the recommended production observability
// settings: 1-in-1024 trace sampling (Dapper's default rate), a
// 128-tree ring, pprof off.
func DefaultOptions() Options {
	return Options{SampleEvery: 1024, TraceCapacity: 128}
}

// defaultTraceCapacity fills the zero TraceCapacity.
const defaultTraceCapacity = 128

// WithDefaults fills zero fields with the defaults that have them.
func (o Options) WithDefaults() Options {
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = defaultTraceCapacity
	}
	return o
}

// Observer is the facade-level instrumentation bundle consumed by
// dcmodel.WithObserver: training (and any other observed operation)
// records one span tree per operation to Recorder and per-stage
// wall/alloc histograms to Registry. Either destination may be nil to
// keep only the other. The zero Observer (and a nil *Observer) observes
// nothing.
type Observer struct {
	// Registry receives the stage histograms dcmodel_stage_seconds and
	// dcmodel_stage_alloc_bytes (registered lazily on first use).
	Registry *Registry
	// Recorder receives one span tree per observed operation.
	Recorder dapper.Recorder

	once    sync.Once
	spanner *Spanner
	seconds *HistogramVec
	alloc   *HistogramVec
}

// StageSecondsBuckets are the wall-clock bucket bounds of observer and
// daemon stage histograms, in seconds.
var StageSecondsBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// StageAllocBuckets are the allocation-delta bucket bounds of stage
// histograms, in bytes.
var StageAllocBuckets = []float64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20}

func (o *Observer) init() {
	o.once.Do(func() {
		if o.Recorder != nil {
			// Sampling is the producer's business here: every observed
			// operation was asked for explicitly, so record them all.
			o.spanner, _ = NewSpanner(1, o.Recorder)
		}
		if o.Registry != nil {
			o.seconds = o.Registry.HistogramVec("dcmodel_stage_seconds",
				"Observed operation stage wall time.", "stage", StageSecondsBuckets).Lazy()
			o.alloc = o.Registry.HistogramVec("dcmodel_stage_alloc_bytes",
				"Observed operation stage heap allocation (approximate, process-wide).", "stage", StageAllocBuckets).Lazy()
		}
	})
}

// StartSpan begins one observed operation's trace (nil-safe; returns nil
// when the observer records no spans). Finish the returned root span to
// deliver the tree.
func (o *Observer) StartSpan(name string) *LiveSpan {
	if o == nil {
		return nil
	}
	o.init()
	return o.spanner.StartRequest(name, 0)
}

// Stage starts one stage measurement under parent (which may be nil):
// a child span plus the observer's wall/alloc histograms. The returned
// function stops the stage.
func (o *Observer) Stage(parent *LiveSpan, name string) func() {
	if o == nil {
		return func() {}
	}
	o.init()
	return Stage(parent, name, o.seconds, o.alloc)
}
