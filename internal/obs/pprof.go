package obs

import (
	"net/http"
	"net/http/pprof"
)

// This file is the module's only permitted import of net/http/pprof (a
// guard test and `make obs` enforce it). The package registers handlers
// on http.DefaultServeMux as an import side effect, which a daemon with
// its own mux neither wants nor serves; mounting explicitly keeps the
// profiling surface behind one deliberate, flag-gated call.

// RegisterPprof mounts the runtime profiling handlers under
// /debug/pprof/ on mux: the index, cmdline, CPU profile, symbol and
// execution-trace endpoints, plus every runtime profile (heap,
// goroutine, block, mutex, …) served by the index.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
