package obs

import (
	"go/parser"
	"go/token"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestPprofConfinedToObs walks every Go file in the module and asserts
// net/http/pprof is imported only by internal/obs. The package registers
// handlers on http.DefaultServeMux as an import side effect; one
// deliberate, flag-gated mount point (RegisterPprof) is the whole
// contract, and a second import anywhere would silently widen the
// daemon's profiling surface. `make obs` runs the same check via go list.
func TestPprofConfinedToObs(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Skipf("module root: %v", err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "net/http/pprof" {
				continue
			}
			rel, _ := filepath.Rel(root, path)
			if filepath.ToSlash(filepath.Dir(rel)) != "internal/obs" {
				t.Errorf("%s imports net/http/pprof; only internal/obs may (mount via obs.RegisterPprof)", rel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot finds the directory holding go.mod above the test's cwd.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
