package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// family is one renderable metric family.
type family interface {
	render(w io.Writer)
}

// Registry is a concurrency-safe set of metric families rendered in the
// Prometheus plain-text exposition format. Families render in
// registration order — the registry never reorders them — so a component
// migrating from a hand-rolled exposition can reproduce its output byte
// for byte by registering in the same order it used to print.
//
// Registration is cheap and normally happens once at construction;
// observation methods (Add, Set, Observe) are safe for concurrent use
// with each other and with WriteText.
type Registry struct {
	mu        sync.Mutex
	families  []family
	snapshots []func(set func(name string, v float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// register appends a family under the registry lock.
func (r *Registry) register(f family) {
	r.mu.Lock()
	r.families = append(r.families, f)
	r.mu.Unlock()
}

// OnScrape registers a callback collected at render time. The values it
// sets are rendered after every registered family, sorted by name,
// without HELP/TYPE headers — the "bare gauge" tail for values owned by
// other components (queue depths, window occupancy) whose names may
// carry inline label syntax. Callbacks run on the scraping goroutine.
func (r *Registry) OnScrape(fn func(set func(name string, v float64))) {
	r.mu.Lock()
	r.snapshots = append(r.snapshots, fn)
	r.mu.Unlock()
}

// WriteText renders every family in registration order, then the
// OnScrape gauges sorted by name.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	snaps := append([]func(set func(name string, v float64)){}, r.snapshots...)
	r.mu.Unlock()
	for _, f := range fams {
		f.render(w)
	}
	if len(snaps) == 0 {
		return
	}
	vals := make(map[string]float64)
	for _, fn := range snaps {
		fn(func(name string, v float64) { vals[name] = v })
	}
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s %g\n", n, vals[n])
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter registers a new counter family.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
}

// Gauge is a settable float64 metric.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Gauge registers a new gauge family (initial value 0).
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.Value())
}

// labelKeySep joins label values into map keys. It sorts below every
// printable byte, so lexicographic key order equals component-wise
// value order.
const labelKeySep = "\x00"

// LabeledCounter is a counter family with a fixed set of label
// dimensions; each distinct label-value tuple is one series, created on
// first Add.
type LabeledCounter struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	vals       map[string]*atomic.Int64
}

// LabeledCounter registers a counter family keyed by labelNames.
func (r *Registry) LabeledCounter(name, help string, labelNames ...string) *LabeledCounter {
	c := &LabeledCounter{
		name: name, help: help,
		labels: append([]string(nil), labelNames...),
		vals:   make(map[string]*atomic.Int64),
	}
	r.register(c)
	return c
}

// Add increments the series identified by values (one per label name, in
// registration order) by d. It panics on a label arity mismatch — that
// is a programming error, not an observation.
func (c *LabeledCounter) Add(d int64, values ...string) {
	if len(values) != len(c.labels) {
		panic(fmt.Sprintf("obs: %s has %d labels, got %d values", c.name, len(c.labels), len(values)))
	}
	k := strings.Join(values, labelKeySep)
	c.mu.Lock()
	v := c.vals[k]
	if v == nil {
		v = new(atomic.Int64)
		c.vals[k] = v
	}
	c.mu.Unlock()
	v.Add(d)
}

// Value returns the series count (0 if the series does not exist).
func (c *LabeledCounter) Value(values ...string) int64 {
	k := strings.Join(values, labelKeySep)
	c.mu.Lock()
	defer c.mu.Unlock()
	if v := c.vals[k]; v != nil {
		return v.Load()
	}
	return 0
}

// labelString renders `l1="v1",l2="v2"` for a joined key.
func labelString(labels []string, key string) string {
	values := strings.Split(key, labelKeySep)
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, values[i])
	}
	return b.String()
}

func (c *LabeledCounter) render(w io.Writer) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = c.vals[k].Load()
	}
	c.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	for i, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", c.name, labelString(c.labels, k), counts[i])
	}
}
