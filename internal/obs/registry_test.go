package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendersInRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("z_total", "Last alphabetically, first registered.")
	g := reg.Gauge("a_gauge", "First alphabetically, second registered.")
	c.Add(2)
	c.Inc()
	g.Set(2.5)

	var b strings.Builder
	reg.WriteText(&b)
	got := b.String()
	want := "# HELP z_total Last alphabetically, first registered.\n" +
		"# TYPE z_total counter\n" +
		"z_total 3\n" +
		"# HELP a_gauge First alphabetically, second registered.\n" +
		"# TYPE a_gauge gauge\n" +
		"a_gauge 2.5\n"
	if got != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", got, want)
	}
	if c.Value() != 3 {
		t.Fatalf("counter value = %d, want 3", c.Value())
	}
	if g.Value() != 2.5 {
		t.Fatalf("gauge value = %g, want 2.5", g.Value())
	}
}

func TestLabeledCounterSortsSeries(t *testing.T) {
	reg := NewRegistry()
	c := reg.LabeledCounter("req_total", "Requests.", "handler", "code")
	c.Add(1, "synthesize", "429")
	c.Add(2, "ingest", "200")
	c.Add(3, "synthesize", "200")

	var b strings.Builder
	reg.WriteText(&b)
	want := "# HELP req_total Requests.\n" +
		"# TYPE req_total counter\n" +
		"req_total{handler=\"ingest\",code=\"200\"} 2\n" +
		"req_total{handler=\"synthesize\",code=\"200\"} 3\n" +
		"req_total{handler=\"synthesize\",code=\"429\"} 1\n"
	if got := b.String(); got != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", got, want)
	}
	if v := c.Value("synthesize", "200"); v != 3 {
		t.Fatalf("series value = %d, want 3", v)
	}
	if v := c.Value("missing", "000"); v != 0 {
		t.Fatalf("missing series value = %d, want 0", v)
	}
}

func TestLabeledCounterArityPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.LabeledCounter("x_total", "X.", "one", "two")
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong arity did not panic")
		}
	}()
	c.Add(1, "only-one")
}

func TestOnScrapeTailSortedAfterFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.").Inc()
	reg.OnScrape(func(set func(name string, v float64)) {
		set("zz_gauge", 2)
		set("aa_gauge", 1)
		set("mm_gauge{label=\"x\"}", 1.5)
	})
	var b strings.Builder
	reg.WriteText(&b)
	want := "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n" +
		"aa_gauge 1\nmm_gauge{label=\"x\"} 1.5\nzz_gauge 2\n"
	if got := b.String(); got != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers every instrument kind while scraping;
// run under -race this is the concurrency-safety contract of the package.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "C.")
	g := reg.Gauge("g", "G.")
	lc := reg.LabeledCounter("lc_total", "LC.", "k")
	hv := reg.HistogramVec("h_seconds", "H.", "k", []float64{0.1, 1})
	reg.OnScrape(func(set func(string, float64)) { set("tail", 1) })

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				lc.Add(1, "a")
				hv.Observe("a", float64(i)/500)
				if i%100 == 0 {
					var b strings.Builder
					reg.WriteText(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.Value(), 8*500)
	}
	if lc.Value("a") != 8*500 {
		t.Fatalf("labeled = %d, want %d", lc.Value("a"), 8*500)
	}
	if hv.With("a").Count() != 8*500 {
		t.Fatalf("histogram count = %d, want %d", hv.With("a").Count(), 8*500)
	}
}
