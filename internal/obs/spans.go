package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcmodel/internal/dapper"
)

// Spanner is the live tracer of the serving pipeline: it head-samples 1
// of every SampleEvery requests deterministically (request 1, N+1,
// 2N+1, … — no RNG, so a fixed request sequence always samples the same
// requests), builds each sampled request's dapper span tree as the
// request flows through the pipeline, and delivers the finished tree to
// a dapper.Recorder. Unsampled requests cost one atomic increment and
// allocate nothing, mirroring Dapper's negligible-overhead unsampled
// path.
//
// All methods are safe for concurrent use; spans of one trace may be
// started and ended from different goroutines (a handler and its queued
// worker) — the tree is guarded by a per-trace mutex.
type Spanner struct {
	every int64
	rec   dapper.Recorder

	// Now returns the trace clock in seconds. It defaults to wall-clock
	// seconds since the Spanner was built; tests may swap in a
	// deterministic monotone clock before traffic starts.
	Now func() float64

	started  atomic.Int64
	sampled  atomic.Int64
	nextSpan atomic.Uint64 // span IDs, unique across all traces
}

// NewSpanner returns a live tracer keeping 1 of every sampleEvery
// requests, delivering finished trees to rec.
func NewSpanner(sampleEvery int, rec dapper.Recorder) (*Spanner, error) {
	if sampleEvery < 1 {
		return nil, fmt.Errorf("obs: sampleEvery must be >= 1, got %d", sampleEvery)
	}
	if rec == nil {
		return nil, fmt.Errorf("obs: spanner needs a recorder")
	}
	epoch := time.Now()
	return &Spanner{
		every: int64(sampleEvery),
		rec:   rec,
		Now:   func() float64 { return time.Since(epoch).Seconds() },
	}, nil
}

// SampleEvery reports the sampling rate (1 of every N).
func (sp *Spanner) SampleEvery() int {
	if sp == nil {
		return 0
	}
	return int(sp.every)
}

// Stats reports requests seen vs sampled — the overhead proxy.
func (sp *Spanner) Stats() (started, sampled int64) {
	if sp == nil {
		return 0, 0
	}
	return sp.started.Load(), sp.sampled.Load()
}

// StartRequest begins a new trace with a root span, or returns nil when
// this request is not sampled (or the Spanner itself is nil — a disabled
// tracer). A nil *LiveSpan is a valid no-op span: every method on it is
// nil-safe, so instrumentation sites never branch on sampling.
func (sp *Spanner) StartRequest(name string, server int) *LiveSpan {
	if sp == nil {
		return nil
	}
	n := sp.started.Add(1)
	if (n-1)%sp.every != 0 {
		return nil
	}
	sp.sampled.Add(1)
	at := sp.Now()
	node := &dapper.Node{Span: &dapper.Span{
		Trace: dapper.TraceID(n),
		ID:    dapper.SpanID(sp.nextSpan.Add(1)),
		Name:  name, Server: server,
		Start: at, End: at,
	}}
	ls := &LiveSpan{sp: sp, node: node}
	ls.root = ls
	ls.tree = &dapper.Tree{Root: node, Count: 1}
	return ls
}

// LiveSpan is one started span of a live trace. The zero case is a nil
// pointer (unsampled trace), on which every method is a no-op.
//
// Once the root span is Finished, the tree belongs to the recorder:
// late Child/End/Annotate calls from stragglers (a queued job that
// outlived its request's deadline) are dropped, never racing the
// recorded tree.
type LiveSpan struct {
	sp   *Spanner
	root *LiveSpan // the trace's root span; owns mu, tree and done
	node *dapper.Node

	// Root-only state.
	mu   sync.Mutex
	tree *dapper.Tree
	done bool
}

// Child starts a nested span (a pipeline stage, an outgoing call) on the
// same server as its parent. Returns nil if the trace is unsampled or
// already finished.
func (l *LiveSpan) Child(name string) *LiveSpan {
	if l == nil {
		return nil
	}
	r := l.root
	at := r.sp.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return nil
	}
	node := &dapper.Node{Span: &dapper.Span{
		Trace:  l.node.Span.Trace,
		ID:     dapper.SpanID(r.sp.nextSpan.Add(1)),
		Parent: l.node.Span.ID,
		Name:   name, Server: l.node.Span.Server,
		Start: at, End: at,
	}}
	l.node.Children = append(l.node.Children, node)
	r.tree.Count++
	return &LiveSpan{sp: r.sp, root: r, node: node}
}

// Annotate attaches a timestamped formatted message to the span.
func (l *LiveSpan) Annotate(format string, args ...any) {
	if l == nil {
		return
	}
	r := l.root
	at := r.sp.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	l.node.Span.Annotations = append(l.node.Span.Annotations,
		dapper.Annotation{Time: at, Message: fmt.Sprintf(format, args...)})
}

// End closes the span at the current clock (never before its start).
// Ending a span twice keeps the later end.
func (l *LiveSpan) End() {
	if l == nil {
		return
	}
	r := l.root
	at := r.sp.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	if at > l.node.Span.End {
		l.node.Span.End = at
	}
}

// Finish closes the trace's root span and delivers the assembled tree to
// the recorder. Call it exactly once per sampled request, on the root
// span; afterwards every other span of the trace is inert.
func (l *LiveSpan) Finish() {
	if l == nil {
		return
	}
	r := l.root
	at := r.sp.Now()
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	if at > r.node.Span.End {
		r.node.Span.End = at
	}
	tree := r.tree
	r.mu.Unlock()
	r.sp.rec.Record(tree)
}

// spanKey carries a *LiveSpan through a request context.
type spanKey struct{}

// ContextWithSpan attaches a live span to the context; a nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *LiveSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the live span attached to the context, or nil.
func SpanFrom(ctx context.Context) *LiveSpan {
	s, _ := ctx.Value(spanKey{}).(*LiveSpan)
	return s
}

// TraceRing is a bounded Recorder keeping the most recent trees — the
// collection buffer behind GET /v1/traces. Recording never blocks and
// never grows: the oldest tree is evicted when the ring is full.
type TraceRing struct {
	mu       sync.Mutex
	buf      []*dapper.Tree
	next     int
	n        int
	recorded int64
}

// NewTraceRing returns a ring holding up to capacity trees (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*dapper.Tree, capacity)}
}

// Record implements dapper.Recorder.
func (r *TraceRing) Record(t *dapper.Tree) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.recorded++
	r.mu.Unlock()
}

// Snapshot returns the held trees, oldest first.
func (r *TraceRing) Snapshot() []*dapper.Tree {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*dapper.Tree, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Recorded reports how many trees have ever been recorded (including
// evicted ones).
func (r *TraceRing) Recorded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Len reports how many trees the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap reports the ring capacity.
func (r *TraceRing) Cap() int { return len(r.buf) }

// Tee fans every recorded tree out to each non-nil recorder, in order.
func Tee(recs ...dapper.Recorder) dapper.Recorder {
	kept := make([]dapper.Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return teeRecorder(kept)
}

type teeRecorder []dapper.Recorder

func (t teeRecorder) Record(tree *dapper.Tree) {
	for _, r := range t {
		r.Record(tree)
	}
}

// SampleEvery decorates rec with deterministic 1-in-every head sampling:
// trees 1, every+1, 2·every+1, … pass through, the rest are counted and
// dropped. Use it to hang a sampling tap on a full-rate producer (the
// GFS simulator's or replay engine's Recorder seam).
func SampleEvery(every int, rec dapper.Recorder) (dapper.Recorder, error) {
	if every < 1 {
		return nil, fmt.Errorf("obs: sample every must be >= 1, got %d", every)
	}
	if rec == nil {
		return nil, fmt.Errorf("obs: sampler needs a recorder")
	}
	return &sampledRecorder{every: int64(every), next: rec}, nil
}

type sampledRecorder struct {
	every int64
	seen  atomic.Int64
	next  dapper.Recorder
}

func (s *sampledRecorder) Record(t *dapper.Tree) {
	if (s.seen.Add(1)-1)%s.every != 0 {
		return
	}
	s.next.Record(t)
}
