package obs

import (
	"context"
	"sync"
	"testing"

	"dcmodel/internal/dapper"
)

// fixedClock returns a Now func yielding 1, 2, 3, … on successive calls.
func fixedClock() func() float64 {
	var mu sync.Mutex
	var t float64
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		t++
		return t
	}
}

func TestSpannerDeterministicHeadSampling(t *testing.T) {
	var c dapper.Collector
	sp, err := NewSpanner(3, &c)
	if err != nil {
		t.Fatal(err)
	}
	var sampledAt []int
	for i := 1; i <= 10; i++ {
		s := sp.StartRequest("req", 0)
		if s != nil {
			sampledAt = append(sampledAt, i)
			s.Finish()
		}
	}
	// Head sampling keeps requests 1, 4, 7, 10 — counter-based, no RNG,
	// so a fixed request sequence always samples the same requests.
	want := []int{1, 4, 7, 10}
	if len(sampledAt) != len(want) {
		t.Fatalf("sampled %v, want %v", sampledAt, want)
	}
	for i := range want {
		if sampledAt[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampledAt, want)
		}
	}
	started, sampled := sp.Stats()
	if started != 10 || sampled != 4 {
		t.Fatalf("stats = (%d, %d), want (10, 4)", started, sampled)
	}
	if c.Len() != 4 {
		t.Fatalf("collector holds %d trees, want 4", c.Len())
	}
}

func TestSpannerValidation(t *testing.T) {
	var c dapper.Collector
	if _, err := NewSpanner(0, &c); err == nil {
		t.Fatal("sampleEvery=0 accepted")
	}
	if _, err := NewSpanner(1, nil); err == nil {
		t.Fatal("nil recorder accepted")
	}
}

func TestLiveSpanTreeShape(t *testing.T) {
	var c dapper.Collector
	sp, _ := NewSpanner(1, &c)
	sp.Now = fixedClock()

	root := sp.StartRequest("http:replay", 0) // t=1
	root.Annotate("requests=%d", 42)          // t=2
	child := root.Child("replay")             // t=3
	grand := child.Child("replay.disk")       // t=4
	grand.End()                               // t=5
	child.End()                               // t=6
	root.Finish()                             // t=7

	trees := c.Trees()
	if len(trees) != 1 {
		t.Fatalf("recorded %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Count != 3 {
		t.Fatalf("tree.Count = %d, want 3", tree.Count)
	}
	r := tree.Root
	if r.Span.Name != "http:replay" || r.Span.Start != 1 || r.Span.End != 7 {
		t.Fatalf("root span = %+v", r.Span)
	}
	if len(r.Span.Annotations) != 1 || r.Span.Annotations[0].Message != "requests=42" {
		t.Fatalf("root annotations = %+v", r.Span.Annotations)
	}
	if len(r.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(r.Children))
	}
	ch := r.Children[0]
	if ch.Span.Parent != r.Span.ID || ch.Span.Start != 3 || ch.Span.End != 6 {
		t.Fatalf("child span = %+v", ch.Span)
	}
	if len(ch.Children) != 1 || ch.Children[0].Span.Parent != ch.Span.ID {
		t.Fatalf("grandchild = %+v", ch.Children)
	}
	// The root must cover its children.
	if ch.Span.Start < r.Span.Start || ch.Span.End > r.Span.End {
		t.Fatalf("root [%g,%g] does not cover child [%g,%g]",
			r.Span.Start, r.Span.End, ch.Span.Start, ch.Span.End)
	}
}

// TestLiveSpanInertAfterFinish: once the root is finished the tree
// belongs to the recorder — a straggler goroutine (a queued job that
// outlived its request's deadline) must not mutate it.
func TestLiveSpanInertAfterFinish(t *testing.T) {
	var c dapper.Collector
	sp, _ := NewSpanner(1, &c)
	root := sp.StartRequest("req", 0)
	child := root.Child("stage")
	root.Finish()

	if late := root.Child("late"); late != nil {
		t.Fatal("Child after Finish returned a live span")
	}
	child.Annotate("late annotation")
	child.End()
	root.Finish() // double Finish: must not record twice

	trees := c.Trees()
	if len(trees) != 1 {
		t.Fatalf("recorded %d trees, want 1", len(trees))
	}
	if trees[0].Count != 2 {
		t.Fatalf("tree.Count = %d, want 2 (late child dropped)", trees[0].Count)
	}
	if n := len(trees[0].Root.Children[0].Span.Annotations); n != 0 {
		t.Fatalf("late annotation survived: %d", n)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var sp *Spanner
	if sp.StartRequest("x", 0) != nil {
		t.Fatal("nil spanner sampled")
	}
	if sp.SampleEvery() != 0 {
		t.Fatal("nil spanner SampleEvery != 0")
	}
	var s *LiveSpan
	// Every method must be a no-op, not a panic.
	s.Annotate("x")
	s.End()
	s.Finish()
	if s.Child("y") != nil {
		t.Fatal("nil span produced a child")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFrom(ctx) != nil {
		t.Fatal("nil span attached to context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	var c dapper.Collector
	sp, _ := NewSpanner(1, &c)
	s := sp.StartRequest("req", 0)
	ctx := ContextWithSpan(context.Background(), s)
	if SpanFrom(ctx) != s {
		t.Fatal("span did not round-trip through context")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context returned a span")
	}
}

func TestTraceRingEviction(t *testing.T) {
	ring := NewTraceRing(3)
	if ring.Cap() != 3 {
		t.Fatalf("cap = %d", ring.Cap())
	}
	mk := func(id int64) *dapper.Tree {
		return &dapper.Tree{Root: &dapper.Node{Span: &dapper.Span{Trace: dapper.TraceID(id), ID: 1}}, Count: 1}
	}
	for id := int64(1); id <= 5; id++ {
		ring.Record(mk(id))
	}
	if ring.Len() != 3 || ring.Recorded() != 5 {
		t.Fatalf("len = %d recorded = %d, want 3 and 5", ring.Len(), ring.Recorded())
	}
	snap := ring.Snapshot()
	var got []int64
	for _, tr := range snap {
		got = append(got, int64(tr.Root.Span.Trace))
	}
	// Oldest first, the two oldest evicted.
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("snapshot trace IDs = %v, want [3 4 5]", got)
	}
}

func TestTraceRingMinimumCapacity(t *testing.T) {
	ring := NewTraceRing(0)
	if ring.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", ring.Cap())
	}
}

func TestTeeSkipsNil(t *testing.T) {
	var a, b dapper.Collector
	rec := Tee(&a, nil, &b)
	rec.Record(&dapper.Tree{Root: &dapper.Node{Span: &dapper.Span{}}, Count: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee delivered (%d, %d), want (1, 1)", a.Len(), b.Len())
	}
}

func TestSampleEveryDecorator(t *testing.T) {
	var c dapper.Collector
	rec, err := SampleEvery(4, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec.Record(&dapper.Tree{Root: &dapper.Node{Span: &dapper.Span{}}, Count: 1})
	}
	// Trees 1, 5, 9 pass.
	if c.Len() != 3 {
		t.Fatalf("decorator kept %d trees, want 3", c.Len())
	}
	if _, err := SampleEvery(0, &c); err == nil {
		t.Fatal("every=0 accepted")
	}
	if _, err := SampleEvery(1, nil); err == nil {
		t.Fatal("nil recorder accepted")
	}
}

func TestDumpTreeWellFormed(t *testing.T) {
	var c dapper.Collector
	sp, _ := NewSpanner(1, &c)
	sp.Now = fixedClock()
	root := sp.StartRequest("req", 2)
	ch := root.Child("a")
	ch.Annotate("k=%d", 1)
	ch.End()
	root.Child("b").End()
	root.Finish()

	d := DumpTree(c.Trees()[0])
	if d == nil || d.Spans != 3 || d.Depth != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Root.ParentID != 0 || d.Root.Server != 2 {
		t.Fatalf("root dump = %+v", d.Root)
	}
	ids := map[uint64]bool{d.Root.SpanID: true}
	for _, child := range d.Root.Children {
		if !ids[child.ParentID] {
			t.Fatalf("child %d has unresolved parent %d", child.SpanID, child.ParentID)
		}
		ids[child.SpanID] = true
		if child.Start < d.Root.Start || child.End > d.Root.End {
			t.Fatalf("root does not cover child: root [%g,%g], child [%g,%g]",
				d.Root.Start, d.Root.End, child.Start, child.End)
		}
	}
	if len(d.Root.Children[0].Annotations) != 1 {
		t.Fatalf("annotations lost: %+v", d.Root.Children[0])
	}
	if DumpTree(nil) != nil {
		t.Fatal("DumpTree(nil) != nil")
	}
}

// TestLiveSpanConcurrency exercises the per-tree mutex: spans of one
// trace started, annotated and finished from many goroutines while the
// root finishes concurrently. Run under -race.
func TestLiveSpanConcurrency(t *testing.T) {
	ring := NewTraceRing(8)
	sp, _ := NewSpanner(1, ring)
	for round := 0; round < 20; round++ {
		root := sp.StartRequest("req", 0)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := root.Child("stage")
				c.Annotate("note")
				c.End()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.Finish()
		}()
		wg.Wait()
	}
	if ring.Recorded() != 20 {
		t.Fatalf("recorded %d trees, want 20", ring.Recorded())
	}
}
