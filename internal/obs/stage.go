package obs

import (
	"runtime/metrics"
	"time"
)

// allocSampleName is the cumulative heap-allocation counter of
// runtime/metrics — cheap to read (no stop-the-world), monotone.
const allocSampleName = "/gc/heap/allocs:bytes"

// AllocBytes returns the process's cumulative heap allocation in bytes.
// Deltas across a stage attribute allocation to it; under concurrency
// the attribution is process-wide and therefore approximate, which is
// the usual tradeoff of allocation accounting without per-goroutine
// instrumentation — treat the histograms as a ranking signal, not an
// exact ledger.
func AllocBytes() uint64 {
	sample := []metrics.Sample{{Name: allocSampleName}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// Stage starts one pipeline-stage measurement: a child span under parent
// (nil-safe — no span is recorded for unsampled requests) plus
// wall-clock seconds and allocation-delta bytes observed on the given
// histogram families (either may be nil). The returned stop function
// ends the child span and records the histograms; it is safe to call
// from a different goroutine than the start.
func Stage(parent *LiveSpan, name string, seconds, alloc *HistogramVec) func() {
	if parent == nil && seconds == nil && alloc == nil {
		return func() {}
	}
	child := parent.Child(name)
	start := time.Now()
	var alloc0 uint64
	if alloc != nil {
		alloc0 = AllocBytes()
	}
	return func() {
		child.End()
		if seconds != nil {
			seconds.Observe(name, time.Since(start).Seconds())
		}
		if alloc != nil {
			alloc.Observe(name, float64(AllocBytes()-alloc0))
		}
	}
}
