package obs

import (
	"testing"

	"dcmodel/internal/dapper"
)

func TestAllocBytesMonotone(t *testing.T) {
	before := AllocBytes()
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 16<<10)
	}
	after := AllocBytes()
	if after < before {
		t.Fatalf("alloc counter went backwards: %d -> %d", before, after)
	}
	if after == before {
		t.Fatalf("allocating %d KiB moved the counter by zero", len(sink)*16)
	}
	_ = sink
}

func TestStageObservesHistogramsAndSpan(t *testing.T) {
	reg := NewRegistry()
	secs := reg.HistogramVec("stage_seconds", "S.", "stage", []float64{1})
	alloc := reg.HistogramVec("stage_alloc", "A.", "stage", []float64{1 << 20})

	var c dapper.Collector
	sp, _ := NewSpanner(1, &c)
	root := sp.StartRequest("req", 0)

	stop := Stage(root, "synthesize", secs, alloc)
	stop()
	root.Finish()

	if n := secs.With("synthesize").Count(); n != 1 {
		t.Fatalf("seconds count = %d, want 1", n)
	}
	if n := alloc.With("synthesize").Count(); n != 1 {
		t.Fatalf("alloc count = %d, want 1", n)
	}
	tree := c.Trees()[0]
	if tree.Count != 2 || tree.Root.Children[0].Span.Name != "synthesize" {
		t.Fatalf("stage span missing: count=%d", tree.Count)
	}
}

func TestStageAllNilIsNoop(t *testing.T) {
	stop := Stage(nil, "x", nil, nil)
	stop() // must not panic
}

func TestStageNilSpanStillObserves(t *testing.T) {
	reg := NewRegistry()
	secs := reg.HistogramVec("s_seconds", "S.", "stage", []float64{1})
	stop := Stage(nil, "x", secs, nil)
	stop()
	if n := secs.With("x").Count(); n != 1 {
		t.Fatalf("count = %d, want 1 (histograms must not require a sampled span)", n)
	}
}

func TestObserverLazyInit(t *testing.T) {
	var nilObs *Observer
	if nilObs.StartSpan("x") != nil {
		t.Fatal("nil observer produced a span")
	}
	nilObs.Stage(nil, "x")() // no-op, no panic

	reg := NewRegistry()
	var c dapper.Collector
	o := &Observer{Registry: reg, Recorder: &c}
	span := o.StartSpan("train:KOOZA")
	stop := o.Stage(span, "fit.kooza")
	stop()
	span.Finish()
	if c.Len() != 1 {
		t.Fatalf("observer recorded %d trees, want 1", c.Len())
	}
	if n := o.seconds.With("fit.kooza").Count(); n != 1 {
		t.Fatalf("stage seconds count = %d, want 1", n)
	}
}
