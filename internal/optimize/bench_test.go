package optimize

import (
	"context"
	"testing"
)

// BenchmarkProvisionSearch measures the end-to-end twin-first search:
// configs_per_sec is the sustained closed-form evaluation throughput, and
// twin_per_des is the twin-vs-DES evaluation ratio — how many closed-form
// evaluations each discrete-event validation run amortizes.
func BenchmarkProvisionSearch(b *testing.B) {
	twins := testTwins(120)
	req := Request{
		Objective: Objective{TargetSeconds: 0.05},
		Space:     wideSpace(),
		Strategy:  StrategyEvolve,
	}
	var evals, desRuns int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := Search(context.Background(), Input{Twins: twins}, req)
		if err != nil {
			b.Fatal(err)
		}
		evals += plan.TwinEvals
		desRuns += plan.DESRuns + 1 // +1: the one run Provision's DES path adds
	}
	b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "configs/sec")
	b.ReportMetric(float64(evals)/float64(desRuns), "twin_per_des")
}

// BenchmarkEvaluator measures the raw memoized closed-form evaluation.
func BenchmarkEvaluator(b *testing.B) {
	ev, err := NewEvaluator(testTwins(120), Objective{TargetSeconds: 0.05}, wideSpace())
	if err != nil {
		b.Fatal(err)
	}
	cfgs := make([]Config, 0, 24)
	for k := 1; k <= 24; k++ {
		cfgs = append(cfgs, Config{Servers: k, Platform: "big-core", DVFS: "P0", Replicas: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalBatch(cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
