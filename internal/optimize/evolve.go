package optimize

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/prand"
)

// (μ+λ) evolution strategy parameters: mu survivors breed lambda children
// per generation; the loop runs to maxGenerations or until evolvePatience
// generations pass without improving the incumbent.
const (
	evolveMu       = 8
	evolveLambda   = 24
	maxGenerations = 16
	evolvePatience = 4
)

// evolutionary is the stochastic strategy: a (μ+λ) evolution loop whose
// randomness comes entirely from SplitMix64 sub-streams keyed by
// (generation, child index). Mutation is serial and cheap; only the twin
// evaluations fan out — so the search path is a fixed function of (seed,
// space, twin) and the resulting Plan is byte-identical for any worker
// count. A caller-supplied seed population is canonicalized (sorted,
// deduplicated) before use, making the result independent of its order.
type evolutionary struct{}

func (evolutionary) Name() string { return StrategyEvolve }

func (evolutionary) Search(ctx context.Context, ev *Evaluator, seed int64, workers int, pop []Config) ([]Step, error) {
	space := ev.Space()
	parents := canonicalize(pop, space)
	if len(parents) == 0 {
		parents = seedPopulation(space)
	}
	parentEvals, err := ev.EvalBatch(parents, workers)
	if err != nil {
		return nil, err
	}
	sortEvals(parentEvals)
	parentEvals = truncate(parentEvals, evolveMu)
	best := parentEvals[0]
	steps := []Step{{Step: 0, Note: "seed population", Evaluated: len(parents), Best: best}}
	noImprove := 0
	for g := 1; g <= maxGenerations && noImprove < evolvePatience; g++ {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		children := make([]Config, 0, evolveLambda)
		for i := 0; i < evolveLambda; i++ {
			parent := parentEvals[i%len(parentEvals)].Config
			r := prand.New(seed, evolveStream(g, i))
			children = append(children, mutate(parent, r, space))
		}
		sortConfigs(children)
		children = dedupeConfigs(children)
		childEvals, err := ev.EvalBatch(children, workers)
		if err != nil {
			return nil, err
		}
		parentEvals = truncate(sortedUnion(parentEvals, childEvals), evolveMu)
		if better(parentEvals[0], best) {
			best = parentEvals[0]
			noImprove = 0
		} else {
			noImprove++
		}
		steps = append(steps, Step{
			Step: g, Note: fmt.Sprintf("generation %d", g),
			Evaluated: len(children), Best: best,
		})
	}
	return steps, nil
}

// evolveStream keys the SplitMix64 sub-stream of child i of generation g —
// a fixed function of (g, i), never of worker count or scheduling.
func evolveStream(g, i int) uint64 {
	return uint64(g)*(evolveLambda+1) + uint64(i)
}

// seedPopulation spreads mu configurations across the space: server counts
// evenly from min to max, platforms, DVFS states and replica counts
// round-robin.
func seedPopulation(space Space) []Config {
	out := make([]Config, 0, evolveMu)
	span := space.MaxServers - space.MinServers
	for i := 0; i < evolveMu; i++ {
		servers := space.MinServers
		if evolveMu > 1 {
			servers += span * i / (evolveMu - 1)
		}
		out = append(out, Config{
			Servers:  servers,
			Platform: space.Platforms[i%len(space.Platforms)],
			DVFS:     space.DVFSStates[i%len(space.DVFSStates)],
			Replicas: space.MinReplicas + i%(space.MaxReplicas-space.MinReplicas+1),
		})
	}
	sortConfigs(out)
	return dedupeConfigs(out)
}

// mutate perturbs one coordinate of the parent and clamps the child back
// onto the space.
func mutate(c Config, r *rand.Rand, space Space) Config {
	switch r.Intn(4) {
	case 0:
		span := space.MaxServers - space.MinServers
		jump := 1
		if span >= 8 {
			jump += r.Intn(span / 8)
		}
		if r.Intn(2) == 0 {
			jump = -jump
		}
		c.Servers += jump
	case 1:
		c.Platform = space.Platforms[r.Intn(len(space.Platforms))]
	case 2:
		c.DVFS = space.DVFSStates[r.Intn(len(space.DVFSStates))]
	default:
		if r.Intn(2) == 0 {
			c.Replicas--
		} else {
			c.Replicas++
		}
	}
	return clampConfig(c, space)
}

// sortEvals orders evaluations best-first by the total search order.
func sortEvals(evs []Evaluation) {
	sort.Slice(evs, func(i, j int) bool { return better(evs[i], evs[j]) })
}

// sortedUnion merges two evaluation sets, re-sorts best-first and drops
// duplicate configurations.
func sortedUnion(a, b []Evaluation) []Evaluation {
	all := make([]Evaluation, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	sortEvals(all)
	out := all[:0]
	seen := make(map[Config]bool, len(all))
	for _, e := range all {
		if !seen[e.Config] {
			seen[e.Config] = true
			out = append(out, e)
		}
	}
	return out
}

func truncate(evs []Evaluation, n int) []Evaluation {
	if len(evs) > n {
		return evs[:n]
	}
	return evs
}
