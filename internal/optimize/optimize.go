// Package optimize is the closed-loop provisioning optimizer: a
// seed-stable, parallel search over a typed configuration space — server
// count, hardware platform, DVFS operating point and replication factor —
// for the cheapest configuration meeting a latency objective.
//
// The search is twin-first: every candidate is evaluated in closed form
// against the analytical twin (microseconds, no sampling), and only the
// Pareto frontier of the feasible set is validated by discrete-event
// simulation of the SQS farm. Two interchangeable strategies implement the
// Strategy interface — deterministic coordinate descent and a (μ+λ)
// evolutionary loop on SplitMix64 sub-streams — and both share one
// determinism contract: the resulting Plan is byte-identical for any
// worker count and any ordering of the seed population.
package optimize

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dcmodel/internal/errs"
	"dcmodel/internal/gfs"
	"dcmodel/internal/hw"
	"dcmodel/internal/par"
	"dcmodel/internal/power"
	"dcmodel/internal/trace"
	"dcmodel/internal/twin"
)

// Config is one point of the configuration space. Field order is the
// canonical tie-break order of the search (servers, platform, dvfs,
// replicas); the JSON tags are a stable wire contract shared by the
// facade, cmd/provision and /v1/provision.
type Config struct {
	// Servers is the balanced farm size.
	Servers int `json:"servers"`
	// Platform names a hardware platform from the catalog (Platforms).
	Platform string `json:"platform"`
	// DVFS names a CPU operating point from power.DVFSStates.
	DVFS string `json:"dvfs"`
	// Replicas is the replication factor (1 = unreplicated).
	Replicas int `json:"replicas"`
}

// less is the canonical total order on configurations — the deterministic
// tie-break every selection step falls back to.
func (c Config) less(o Config) bool {
	if c.Servers != o.Servers {
		return c.Servers < o.Servers
	}
	if c.Platform != o.Platform {
		return c.Platform < o.Platform
	}
	if c.DVFS != o.DVFS {
		return c.DVFS < o.DVFS
	}
	return c.Replicas < o.Replicas
}

// Space bounds the search. Zero fields take the documented defaults.
type Space struct {
	// MinServers / MaxServers bound the farm size (defaults 1 and 64).
	MinServers int `json:"min_servers,omitempty"`
	MaxServers int `json:"max_servers,omitempty"`
	// Platforms lists the candidate hardware platforms by catalog name
	// (default: just "big-core").
	Platforms []string `json:"platforms,omitempty"`
	// DVFSStates lists the candidate CPU operating points by name
	// (default: just "P0", the nominal point).
	DVFSStates []string `json:"dvfs_states,omitempty"`
	// MinReplicas / MaxReplicas bound the replication factor (defaults 1
	// and MinReplicas).
	MinReplicas int `json:"min_replicas,omitempty"`
	MaxReplicas int `json:"max_replicas,omitempty"`
}

// spaceMaxServers caps MaxServers, mirroring the twin's SLO search bound.
const spaceMaxServers = 4096

func (s Space) withDefaults() Space {
	if s.MinServers <= 0 {
		s.MinServers = 1
	}
	if s.MaxServers <= 0 {
		s.MaxServers = 64
	}
	if len(s.Platforms) == 0 {
		s.Platforms = []string{"big-core"}
	}
	if len(s.DVFSStates) == 0 {
		s.DVFSStates = []string{"P0"}
	}
	if s.MinReplicas <= 0 {
		s.MinReplicas = 1
	}
	if s.MaxReplicas < s.MinReplicas {
		s.MaxReplicas = s.MinReplicas
	}
	return s
}

// SpaceDefaults returns the space with zero fields defaulted — the same
// normalization NewEvaluator applies, exported so callers compiling the
// per-platform twin table iterate the same platform list the search will.
func SpaceDefaults(s Space) Space { return s.withDefaults() }

func (s Space) validate() error {
	if s.MaxServers < s.MinServers {
		return badConfig("space max_servers %d below min_servers %d", s.MaxServers, s.MinServers)
	}
	if s.MaxServers > spaceMaxServers {
		return badConfig("space max_servers %d above the %d cap", s.MaxServers, spaceMaxServers)
	}
	for _, p := range s.Platforms {
		if _, ok := PlatformByName(p); !ok {
			return badConfig("unknown platform %q (catalog: %v)", p, platformNames())
		}
	}
	for _, d := range s.DVFSStates {
		if _, ok := power.DVFSStateByName(d); !ok {
			return badConfig("unknown dvfs state %q", d)
		}
	}
	return nil
}

// contains reports whether c lies inside the space.
func (s Space) contains(c Config) bool {
	if c.Servers < s.MinServers || c.Servers > s.MaxServers {
		return false
	}
	if c.Replicas < s.MinReplicas || c.Replicas > s.MaxReplicas {
		return false
	}
	return indexOf(s.Platforms, c.Platform) >= 0 && indexOf(s.DVFSStates, c.DVFS) >= 0
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// Objective is the fitness function: feasibility is the latency quantile
// meeting the target; among feasible configurations the hourly cost —
// Servers * (ServerCost + WattCost * predicted watts per server) — is
// minimized.
type Objective struct {
	// Quantile is the latency percentile of the SLO: 0.5, 0.95 or 0.99
	// (the three quantiles the twin reports). Default 0.95.
	Quantile float64 `json:"quantile,omitempty"`
	// TargetSeconds is the latency bound at that quantile (required).
	TargetSeconds float64 `json:"target_seconds"`
	// ServerCost is the fixed per-server hourly cost (default 1).
	ServerCost float64 `json:"server_cost,omitempty"`
	// WattCost is the hourly cost of one predicted watt (default 0.01).
	WattCost float64 `json:"watt_cost,omitempty"`
}

func (o Objective) withDefaults() Objective {
	if o.Quantile == 0 {
		o.Quantile = 0.95
	}
	if o.ServerCost == 0 {
		o.ServerCost = 1
	}
	if o.WattCost == 0 {
		o.WattCost = 0.01
	}
	return o
}

func (o Objective) validate() error {
	switch o.Quantile {
	case 0.5, 0.95, 0.99:
	default:
		return badConfig("objective quantile must be 0.5, 0.95 or 0.99, got %g", o.Quantile)
	}
	if math.IsNaN(o.TargetSeconds) || math.IsInf(o.TargetSeconds, 0) || o.TargetSeconds <= 0 {
		return badConfig("objective target must be positive and finite, got %g", o.TargetSeconds)
	}
	if o.ServerCost < 0 || o.WattCost < 0 {
		return badConfig("objective costs must be non-negative")
	}
	return nil
}

// badConfig wraps a validation failure with the shared sentinel.
func badConfig(format string, args ...any) error {
	return fmt.Errorf("optimize: "+format+": %w", append(args, errs.ErrBadConfig)...)
}

// PlatformSpec is one catalog entry: a named hardware platform with its
// power model.
type PlatformSpec struct {
	// Name is the catalog key ("big-core", "small-core").
	Name string
	// NewServer constructs the platform's hardware model.
	NewServer func() *hw.Server
	// Power is the platform's linear power model.
	Power power.ServerPower
}

// Platforms returns the hardware catalog the optimizer searches over.
// "big-core" is the default GFS chunkserver (Xeon-class, the hardware
// every other experiment in the repo runs on); "small-core" is the Reddi
// et al. mobile-core configuration: half the clock at a fraction of the
// power.
func Platforms() []PlatformSpec {
	return []PlatformSpec{
		{Name: "big-core", NewServer: gfs.DefaultServerHW, Power: power.BigCoreServer()},
		{Name: "small-core", NewServer: smallCoreServerHW, Power: power.SmallCoreServer()},
	}
}

// smallCoreServerHW is the big-core chunkserver with a 1.2 GHz mobile
// core: identical disk, memory and network, half the CPU clock.
func smallCoreServerHW() *hw.Server {
	s := gfs.DefaultServerHW()
	s.CPU.Frequency = 1.2e9
	return s
}

// PlatformByName looks a platform up in the catalog.
func PlatformByName(name string) (PlatformSpec, bool) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, true
		}
	}
	return PlatformSpec{}, false
}

func platformNames() []string {
	var names []string
	for _, p := range Platforms() {
		names = append(names, p.Name)
	}
	return names
}

// Evaluation is the closed-form assessment of one configuration: the
// twin-predicted latency, the linear-model power draw and the resulting
// hourly cost. JSON tags are part of the Plan wire contract.
type Evaluation struct {
	Config Config `json:"config"`
	// Stable is false when the twin saturates at this configuration
	// (in-band, mirroring WhatIfAnswer.Stable — never an error).
	Stable bool `json:"stable"`
	// Feasible is Stable && QuantileSeconds <= the objective target.
	Feasible bool `json:"feasible"`
	// QuantileSeconds is the predicted latency at the objective quantile
	// (0 when unstable).
	QuantileSeconds float64 `json:"quantile_seconds"`
	// MeanSeconds is the predicted mean response time (0 when unstable).
	MeanSeconds float64 `json:"mean_seconds"`
	// Bottleneck names the twin's highest-utilization station.
	Bottleneck string `json:"bottleneck"`
	// BottleneckUtilization is that station's per-server utilization.
	BottleneckUtilization float64 `json:"bottleneck_utilization"`
	// WattsPerServer is the linear-power-model draw of one server at the
	// predicted utilizations, with the DVFS power scale applied to the CPU.
	WattsPerServer float64 `json:"watts_per_server"`
	// CostPerHour is Servers * (ServerCost + WattCost*WattsPerServer).
	CostPerHour float64 `json:"cost_per_hour"`
}

// better is the search's total order on evaluations: feasible before
// stable-infeasible before unstable; cheapest first among feasible,
// closest-to-target first among infeasible, least saturated first among
// unstable; the canonical config order breaks every remaining tie. Total
// and deterministic, so selection never depends on evaluation order.
func better(a, b Evaluation) bool {
	ra, rb := evalRank(a), evalRank(b)
	if ra != rb {
		return ra < rb
	}
	switch ra {
	case 0: // feasible: cheapest, then fastest
		if a.CostPerHour != b.CostPerHour {
			return a.CostPerHour < b.CostPerHour
		}
		if a.QuantileSeconds != b.QuantileSeconds {
			return a.QuantileSeconds < b.QuantileSeconds
		}
	case 1: // stable but over target: closest to target, then cheapest
		if a.QuantileSeconds != b.QuantileSeconds {
			return a.QuantileSeconds < b.QuantileSeconds
		}
		if a.CostPerHour != b.CostPerHour {
			return a.CostPerHour < b.CostPerHour
		}
	default: // unstable: least saturated
		if a.BottleneckUtilization != b.BottleneckUtilization {
			return a.BottleneckUtilization < b.BottleneckUtilization
		}
	}
	return a.Config.less(b.Config)
}

func evalRank(e Evaluation) int {
	switch {
	case e.Feasible:
		return 0
	case e.Stable:
		return 1
	default:
		return 2
	}
}

// Evaluator answers "how good is this configuration" in closed form. It
// is safe for concurrent use; evaluations are pure functions of the
// configuration, memoized so repeated visits (and the final sweep) are
// free. The twin-vs-DES accounting behind the Plan's twin_evals/des_runs
// fields reads the memo size, which is independent of evaluation order.
type Evaluator struct {
	obj    Objective
	space  Space
	twins  map[twinKey]*twin.Twin
	powers map[string]power.ServerPower
	states map[string]power.DVFSState

	mu    sync.Mutex
	cache map[Config]Evaluation
}

type twinKey struct{ platform, dvfs string }

// NewEvaluator compiles the per-(platform, dvfs) twin table from the base
// twins (one per platform in the space) and the objective. A DVFS point
// stretches the CPU station demand by 1/FreqScale — constant scaling, so
// the station SCV is untouched and no recompilation is needed.
func NewEvaluator(baseTwins map[string]*twin.Twin, obj Objective, space Space) (*Evaluator, error) {
	obj = obj.withDefaults()
	space = space.withDefaults()
	if err := obj.validate(); err != nil {
		return nil, err
	}
	if err := space.validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{
		obj:    obj,
		space:  space,
		twins:  make(map[twinKey]*twin.Twin),
		powers: make(map[string]power.ServerPower),
		states: make(map[string]power.DVFSState),
		cache:  make(map[Config]Evaluation),
	}
	for _, name := range space.Platforms {
		base, ok := baseTwins[name]
		if !ok || base == nil {
			return nil, badConfig("no twin compiled for platform %q", name)
		}
		spec, _ := PlatformByName(name)
		e.powers[name] = spec.Power
		for _, stName := range space.DVFSStates {
			st, _ := power.DVFSStateByName(stName)
			if err := st.Validate(); err != nil {
				return nil, err
			}
			e.states[stName] = st
			e.twins[twinKey{name, stName}] = scaleCPU(base, 1/st.FreqScale)
		}
	}
	return e, nil
}

// scaleCPU returns the twin with the CPU station demand multiplied by
// factor (shallow copy; Stations is the only field rewritten).
func scaleCPU(t *twin.Twin, factor float64) *twin.Twin {
	if factor == 1 {
		return t
	}
	out := *t
	out.Stations = append([]twin.Station(nil), t.Stations...)
	for i, s := range out.Stations {
		if s.Subsystem == trace.CPU {
			out.Stations[i].Demand = s.Demand * factor
		}
	}
	return &out
}

// Space returns the evaluator's (defaulted) search space.
func (e *Evaluator) Space() Space { return e.space }

// Objective returns the evaluator's (defaulted) objective.
func (e *Evaluator) Objective() Objective { return e.obj }

// Unique returns how many distinct configurations have been evaluated.
func (e *Evaluator) Unique() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// evaluations returns every memoized evaluation in canonical config order.
func (e *Evaluator) evaluations() []Evaluation {
	e.mu.Lock()
	out := make([]Evaluation, 0, len(e.cache))
	for _, ev := range e.cache {
		out = append(out, ev)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Config.less(out[j].Config) })
	return out
}

// Eval evaluates one configuration (memoized). Errors wrap ErrBadConfig
// and mean the configuration is structurally invalid — outside the space
// or rejected at the twin boundary — never that it merely performs badly:
// saturation and missed targets are in-band (Stable/Feasible false).
func (e *Evaluator) Eval(c Config) (Evaluation, error) {
	e.mu.Lock()
	if ev, ok := e.cache[c]; ok {
		e.mu.Unlock()
		return ev, nil
	}
	e.mu.Unlock()
	if !e.space.contains(c) {
		return Evaluation{}, badConfig("config %+v outside the search space", c)
	}
	tw := e.twins[twinKey{c.Platform, c.DVFS}]
	ans, err := tw.WhatIf(twin.Query{Servers: c.Servers, Replicas: c.Replicas})
	if err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{
		Config:                c,
		Stable:                ans.Stable,
		QuantileSeconds:       quantileOf(ans, e.obj.Quantile),
		MeanSeconds:           ans.MeanResponseSeconds,
		Bottleneck:            ans.Bottleneck,
		BottleneckUtilization: ans.BottleneckUtilization,
	}
	ev.Feasible = ev.Stable && ev.QuantileSeconds <= e.obj.TargetSeconds
	ev.WattsPerServer = e.watts(c, ans)
	ev.CostPerHour = float64(c.Servers) * (e.obj.ServerCost + e.obj.WattCost*ev.WattsPerServer)
	e.mu.Lock()
	e.cache[c] = ev
	e.mu.Unlock()
	return ev, nil
}

// EvalBatch evaluates the batch on up to workers goroutines via par.Do:
// results land by index, so the output is byte-identical for any worker
// count.
func (e *Evaluator) EvalBatch(cs []Config, workers int) ([]Evaluation, error) {
	out := make([]Evaluation, len(cs))
	err := par.Do(len(cs), workers, func(i int) error {
		ev, err := e.Eval(cs[i])
		if err != nil {
			return err
		}
		out[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func quantileOf(a twin.Answer, q float64) float64 {
	switch q {
	case 0.5:
		return a.P50Seconds
	case 0.99:
		return a.P99Seconds
	default:
		return a.P95Seconds
	}
}

// watts applies the linear power model to the twin's per-station
// utilizations: each subsystem draws idle power plus (active-idle) scaled
// by its utilization, and the DVFS power scale multiplies the whole CPU
// component. Utilizations clamp at 1 so an unstable evaluation prices out
// at peak rather than beyond it.
func (e *Evaluator) watts(c Config, ans twin.Answer) float64 {
	sp := e.powers[c.Platform]
	st := e.states[c.DVFS]
	var w float64
	for _, s := range ans.Stations {
		util := s.Utilization
		if util > 1 {
			util = 1
		}
		var comp power.Component
		var scale float64 = 1
		switch s.Name {
		case trace.CPU.String():
			comp, scale = sp.CPU, st.PowerScale
		case trace.Storage.String():
			comp = sp.Disk
		case trace.Memory.String():
			comp = sp.Memory
		default:
			comp = sp.Network
		}
		w += scale * (comp.Idle + (comp.Active-comp.Idle)*util)
	}
	return w
}
