package optimize

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"dcmodel/internal/errs"
	"dcmodel/internal/gfs"
	"dcmodel/internal/sqs"
	"dcmodel/internal/trace"
	"dcmodel/internal/twin"
	"dcmodel/internal/workload"
)

// testTwins builds a synthetic per-platform twin table: a light four-station
// open network at the given arrival rate, with the small-core platform's CPU
// demand doubled (half the clock).
func testTwins(lambda float64) map[string]*twin.Twin {
	mk := func(cpuDemand float64) *twin.Twin {
		return &twin.Twin{
			Approach:   "test",
			Lambda:     lambda,
			ArrivalSCV: 1,
			Stations: []twin.Station{
				{Subsystem: trace.Network, Name: trace.Network.String(), Demand: 0.004, SCV: 1},
				{Subsystem: trace.CPU, Name: trace.CPU.String(), Demand: cpuDemand, SCV: 1},
				{Subsystem: trace.Memory, Name: trace.Memory.String(), Demand: 0.002, SCV: 1},
				{Subsystem: trace.Storage, Name: trace.Storage.String(), Demand: 0.012, SCV: 1},
			},
			Servers: 1,
			Shares:  []float64{1},
		}
	}
	return map[string]*twin.Twin{
		"big-core":   mk(0.006),
		"small-core": mk(0.012),
	}
}

func wideSpace() Space {
	return Space{
		MinServers: 1, MaxServers: 24,
		Platforms:   []string{"big-core", "small-core"},
		DVFSStates:  []string{"P0", "P1", "P2"},
		MinReplicas: 1, MaxReplicas: 2,
	}
}

func planJSON(t *testing.T, p Plan) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal plan: %v", err)
	}
	return b
}

// TestPlanByteIdenticalAcrossWorkers is the package determinism contract:
// for both strategies, the serialized Plan must not change with the worker
// count or with the order of the caller's seed population.
func TestPlanByteIdenticalAcrossWorkers(t *testing.T) {
	pop := []Config{
		{Servers: 20, Platform: "big-core", DVFS: "P0", Replicas: 1},
		{Servers: 3, Platform: "small-core", DVFS: "P2", Replicas: 2},
		{Servers: 12, Platform: "big-core", DVFS: "P1", Replicas: 1},
		{Servers: 7, Platform: "small-core", DVFS: "P0", Replicas: 2},
	}
	for _, strategy := range []string{StrategyCoordinate, StrategyEvolve} {
		var want []byte
		for _, workers := range []int{1, 4, 8} {
			for shuffle := 0; shuffle < 3; shuffle++ {
				shuffled := append([]Config(nil), pop...)
				r := rand.New(rand.NewSource(int64(shuffle + 7)))
				r.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				plan, err := Search(context.Background(), Input{Twins: testTwins(120)}, Request{
					Objective:         Objective{TargetSeconds: 0.05},
					Space:             wideSpace(),
					Strategy:          strategy,
					Seed:              42,
					Workers:           workers,
					InitialPopulation: shuffled,
				})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", strategy, workers, err)
				}
				got := planJSON(t, plan)
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Fatalf("%s: plan bytes differ at workers=%d shuffle=%d", strategy, workers, shuffle)
				}
			}
		}
	}
}

// TestStrategiesAgreeOnOptimum checks both strategies land on the same
// chosen configuration when the space has a single platform — there the
// shared polish pass makes the server count exactly the cheapest feasible
// one, independent of the search path. (On multi-platform spaces the two
// local searches may settle in different basins; only the per-strategy
// determinism is contractual there.)
func TestStrategiesAgreeOnOptimum(t *testing.T) {
	var chosen []Config
	for _, strategy := range []string{StrategyCoordinate, StrategyEvolve} {
		plan, err := Search(context.Background(), Input{Twins: testTwins(120)}, Request{
			Objective: Objective{TargetSeconds: 0.05},
			Space:     Space{MaxServers: 32},
			Strategy:  strategy,
			Seed:      1,
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if !plan.Feasible {
			t.Fatalf("%s: infeasible plan for a feasible space", strategy)
		}
		if plan.Strategy != strategy {
			t.Fatalf("plan.Strategy = %q, want %q", plan.Strategy, strategy)
		}
		chosen = append(chosen, plan.Chosen)
	}
	if chosen[0] != chosen[1] {
		t.Fatalf("strategies disagree: coordinate chose %+v, evolve chose %+v", chosen[0], chosen[1])
	}
}

// TestPlanAuditTrail checks the trail carries the search history and the
// twin-evaluation accounting.
func TestPlanAuditTrail(t *testing.T) {
	plan, err := Search(context.Background(), Input{Twins: testTwins(120)}, Request{
		Objective: Objective{TargetSeconds: 0.05},
		Space:     wideSpace(),
		Strategy:  StrategyEvolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Trail) < 2 {
		t.Fatalf("trail has %d steps, want >= 2", len(plan.Trail))
	}
	if plan.Trail[len(plan.Trail)-1].Note != "polish servers" {
		t.Fatalf("last trail step = %q, want polish servers", plan.Trail[len(plan.Trail)-1].Note)
	}
	if plan.TwinEvals <= 0 {
		t.Fatalf("TwinEvals = %d, want > 0", plan.TwinEvals)
	}
	if plan.DESRuns != 0 {
		t.Fatalf("DESRuns = %d without a DES model, want 0", plan.DESRuns)
	}
	if len(plan.Sweep) == 0 || plan.Sweep[len(plan.Sweep)-1].Config != plan.Chosen {
		t.Fatalf("sweep should end at the chosen config, got %d entries", len(plan.Sweep))
	}
	if len(plan.Frontier) == 0 || plan.Frontier[0].Config != plan.Chosen {
		t.Fatalf("frontier should start at the chosen config")
	}
}

// TestNoFeasibleConfig: an unreachable target returns the sentinel plus a
// populated best-effort plan.
func TestNoFeasibleConfig(t *testing.T) {
	plan, err := Search(context.Background(), Input{Twins: testTwins(120)}, Request{
		Objective: Objective{TargetSeconds: 1e-9},
		Space:     wideSpace(),
	})
	if !errors.Is(err, errs.ErrNoFeasibleConfig) {
		t.Fatalf("err = %v, want ErrNoFeasibleConfig", err)
	}
	if errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("ErrNoFeasibleConfig must not alias ErrBadConfig: %v", err)
	}
	if plan.Feasible {
		t.Fatal("plan.Feasible = true on an infeasible search")
	}
	if len(plan.Trail) == 0 || plan.TwinEvals == 0 {
		t.Fatal("infeasible plan should still carry the audit trail")
	}
	if plan.Chosen.Servers == 0 {
		t.Fatal("infeasible plan should still name the closest miss")
	}
}

// TestSearchValidation: structural problems wrap ErrBadConfig before any
// solver runs.
func TestSearchValidation(t *testing.T) {
	cases := []Request{
		{Objective: Objective{TargetSeconds: 0.05}, Strategy: "anneal"},
		{Objective: Objective{TargetSeconds: -1}},
		{Objective: Objective{TargetSeconds: 0.05, Quantile: 0.9}},
		{Objective: Objective{TargetSeconds: 0.05}, Space: Space{Platforms: []string{"quantum"}}},
		{Objective: Objective{TargetSeconds: 0.05}, Space: Space{DVFSStates: []string{"P9"}}},
		{Objective: Objective{TargetSeconds: 0.05}, Space: Space{MinServers: 10, MaxServers: 5}},
	}
	for i, req := range cases {
		_, err := Search(context.Background(), Input{Twins: testTwins(120)}, req)
		if !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

// TestEvalOutsideSpace: the evaluator rejects out-of-space configurations
// as ErrBadConfig rather than silently pricing them.
func TestEvalOutsideSpace(t *testing.T) {
	ev, err := NewEvaluator(testTwins(120), Objective{TargetSeconds: 0.05}, wideSpace())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ev.Eval(Config{Servers: 99, Platform: "big-core", DVFS: "P0", Replicas: 1})
	if !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

// TestEvaluationOrdering pins the search's total order: feasible beats
// stable-infeasible beats unstable, cheapest first among feasible.
func TestEvaluationOrdering(t *testing.T) {
	feasCheap := Evaluation{Config: Config{Servers: 3}, Stable: true, Feasible: true, CostPerHour: 3}
	feasDear := Evaluation{Config: Config{Servers: 5}, Stable: true, Feasible: true, CostPerHour: 5}
	stable := Evaluation{Config: Config{Servers: 2}, Stable: true, QuantileSeconds: 0.2, CostPerHour: 2}
	unstable := Evaluation{Config: Config{Servers: 1}, BottleneckUtilization: 1.4, CostPerHour: 1}
	if !better(feasCheap, feasDear) || !better(feasDear, stable) || !better(stable, unstable) {
		t.Fatal("total order violated: want feasible-cheap > feasible-dear > stable > unstable")
	}
	if better(feasDear, feasCheap) {
		t.Fatal("better is not antisymmetric")
	}
}

// TestParetoFrontier checks dominated configurations are dropped and the
// frontier is sorted cheapest-first.
func TestParetoFrontier(t *testing.T) {
	a := Evaluation{Config: Config{Servers: 3}, Feasible: true, Stable: true, CostPerHour: 3, QuantileSeconds: 0.04}
	b := Evaluation{Config: Config{Servers: 4}, Feasible: true, Stable: true, CostPerHour: 4, QuantileSeconds: 0.03}
	dominated := Evaluation{Config: Config{Servers: 5}, Feasible: true, Stable: true, CostPerHour: 5, QuantileSeconds: 0.04}
	front := pareto([]Evaluation{dominated, b, a})
	if len(front) != 2 {
		t.Fatalf("frontier has %d entries, want 2", len(front))
	}
	if front[0].Config != a.Config || front[1].Config != b.Config {
		t.Fatalf("frontier order wrong: %+v", front)
	}
}

// desModel characterizes a small simulated GFS trace into the empirical
// farm model.
func desModel(t *testing.T) (*sqs.Model, *trace.Trace) {
	t.Helper()
	cluster, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cluster.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 40},
		Requests: 1500,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDESModel(tr, Request{})
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// TestDESValidatedPlan drives the full twin-first-then-DES path and checks
// the validation accounting and its determinism.
func TestDESValidatedPlan(t *testing.T) {
	des, _ := desModel(t)
	req := Request{
		Objective: Objective{TargetSeconds: 0.2},
		Space:     Space{MaxServers: 16},
		Seed:      3,
	}
	run := func() Plan {
		plan, err := Search(context.Background(), Input{Twins: testTwins(40), DES: des}, req)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	p1, p2 := run(), run()
	if p1.Validated == nil {
		t.Fatal("plan.Validated = nil, want a passing DES run")
	}
	if p1.DESRuns < 1 || p1.DESRuns != len(p1.Validations) {
		t.Fatalf("DESRuns = %d with %d validations", p1.DESRuns, len(p1.Validations))
	}
	if !p1.Validated.Passed || p1.Validated.Servers != p1.Chosen.Servers {
		t.Fatalf("validated run %+v does not match chosen %+v", p1.Validated, p1.Chosen)
	}
	if p1.TwinEvals <= p1.DESRuns {
		t.Fatalf("twin-first contract: TwinEvals %d should dwarf DESRuns %d", p1.TwinEvals, p1.DESRuns)
	}
	if string(planJSON(t, p1)) != string(planJSON(t, p2)) {
		t.Fatal("DES-validated plan not reproducible at fixed seed")
	}
}

// TestSearchCancellation: a cancelled context stops the search between
// batches.
func TestSearchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Search(ctx, Input{Twins: testTwins(120)}, Request{
		Objective: Objective{TargetSeconds: 0.05},
		Space:     wideSpace(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRequestDefaults pins the documented zero-value behavior.
func TestRequestDefaults(t *testing.T) {
	req := Request{}.WithDefaults()
	if req.Strategy != StrategyCoordinate || req.Seed != 1 {
		t.Fatalf("defaults: strategy %q seed %d", req.Strategy, req.Seed)
	}
	if req.ValidateTasks != 20000 || req.ValidateSamples != 10000 || req.MaxValidate != 3 {
		t.Fatalf("validation defaults: %d/%d/%d", req.ValidateTasks, req.ValidateSamples, req.MaxValidate)
	}
	if req.Space.MaxServers != 64 || req.Space.Platforms[0] != "big-core" || req.Space.DVFSStates[0] != "P0" {
		t.Fatalf("space defaults: %+v", req.Space)
	}
	if req.Objective.Quantile != 0.95 || req.Objective.ServerCost != 1 || req.Objective.WattCost != 0.01 {
		t.Fatalf("objective defaults: %+v", req.Objective)
	}
}

// TestDVFSAndPlatformTradeoff: with power priced high, the optimizer should
// prefer a slower operating point (or the small-core platform) when it
// still meets a loose target — i.e. the cost model actually steers.
func TestDVFSAndPlatformTradeoff(t *testing.T) {
	plan, err := Search(context.Background(), Input{Twins: testTwins(40)}, Request{
		Objective: Objective{TargetSeconds: 1.0, WattCost: 10},
		Space:     wideSpace(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen.Platform != "small-core" || plan.Chosen.DVFS == "P0" {
		t.Fatalf("with watt-heavy pricing and a loose target, chose %+v; want small-core below P0", plan.Chosen)
	}
}
