package optimize

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dcmodel/internal/errs"
	"dcmodel/internal/prand"
	"dcmodel/internal/sqs"
	"dcmodel/internal/trace"
	"dcmodel/internal/twin"
)

// Request is the provisioning request — the one options struct shared
// verbatim (same fields, same JSON tags) by the dcmodel.Provision facade,
// cmd/provision and POST /v1/provision. Zero fields take the documented
// defaults.
type Request struct {
	// Trace is the workload to provision for (offline callers; never on
	// the wire — the daemon provisions its ingested window, and
	// cmd/provision reads -in/-spec).
	Trace *trace.Trace `json:"-"`
	// Spec generates the workload from a workload spec (preset name or
	// file path) when Trace is nil. Offline only: the daemon rejects it.
	Spec string `json:"spec,omitempty"`
	// Model selects the modeling approach behind the twin: kooza
	// (default), in-breadth or in-depth. Offline only; the daemon's
	// top-level model field selects among its warm models instead.
	Model string `json:"model,omitempty"`
	// Objective is the latency SLO and cost weights (target required).
	Objective Objective `json:"objective"`
	// Space bounds the search (zero value: 1–64 big-core P0 servers,
	// unreplicated).
	Space Space `json:"space,omitempty"`
	// Strategy picks the search algorithm: "coordinate" (default) or
	// "evolve".
	Strategy string `json:"strategy,omitempty"`
	// Seed drives every stochastic part — the evolutionary sub-streams
	// and the DES validation runs (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds evaluation concurrency (0 = GOMAXPROCS). The Plan is
	// byte-identical for any value.
	Workers int `json:"workers,omitempty"`
	// InitialPopulation optionally seeds the search. Order is irrelevant:
	// it is canonicalized before use.
	InitialPopulation []Config `json:"initial_population,omitempty"`
	// ValidateTasks is the DES task count per validation run (default
	// 20000).
	ValidateTasks int `json:"validate_tasks,omitempty"`
	// ValidateSamples is the DES characterizer sample budget (default
	// 10000; consulted by callers that build the DES model from a trace).
	ValidateSamples int `json:"validate_samples,omitempty"`
	// MaxValidate caps how many Pareto-frontier configurations are
	// DES-validated, cheapest first (default 3).
	MaxValidate int `json:"max_validate,omitempty"`
}

// WithDefaults returns the request with zero fields defaulted — the same
// normalization Search applies, exported so the facade, CLI and daemon
// report identical effective requests.
func (r Request) WithDefaults() Request {
	r.Objective = r.Objective.withDefaults()
	r.Space = r.Space.withDefaults()
	if r.Strategy == "" {
		r.Strategy = StrategyCoordinate
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.ValidateTasks <= 0 {
		r.ValidateTasks = 20000
	}
	if r.ValidateSamples <= 0 {
		r.ValidateSamples = 10000
	}
	if r.MaxValidate <= 0 {
		r.MaxValidate = 3
	}
	return r
}

// DESResult is one discrete-event validation run of a frontier
// configuration (the SQS farm simulation).
type DESResult struct {
	Servers int `json:"servers"`
	Tasks   int `json:"tasks"`
	// Utilization is the simulated per-server utilization.
	Utilization float64 `json:"utilization"`
	MeanSeconds float64 `json:"mean_seconds"`
	// QuantileSeconds is the simulated latency at the objective quantile.
	QuantileSeconds float64 `json:"quantile_seconds"`
	P95Seconds      float64 `json:"p95_seconds"`
	P99Seconds      float64 `json:"p99_seconds"`
	// ThroughputPerSec is the simulated completion rate.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Passed reports whether the run met the objective target.
	Passed bool `json:"passed"`
	// Error carries a run that could not complete (e.g. unstable under
	// the empirical service distribution), in-band.
	Error string `json:"error,omitempty"`
}

// Plan is the provisioning answer: the chosen configuration, its
// predicted and DES-validated performance, the cost, and the full search
// audit trail. Field order and JSON tags are a stable wire contract
// (served verbatim by /v1/provision). Infeasibility is reported in-band —
// Feasible false, Chosen the closest miss — alongside ErrNoFeasibleConfig
// from Search, mirroring the what-if convention that saturation is a
// result, not an error.
type Plan struct {
	// Strategy and Seed echo the search that produced the plan.
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	// Objective and Space echo the (defaulted) inputs.
	Objective Objective `json:"objective"`
	Space     Space     `json:"space"`
	// Feasible reports whether Chosen meets the objective (twin-predicted
	// and, when a DES model was supplied, DES-validated).
	Feasible bool `json:"feasible"`
	// Chosen is the selected configuration (the closest miss when
	// infeasible).
	Chosen Config `json:"chosen"`
	// Predicted is the twin evaluation of Chosen.
	Predicted Evaluation `json:"predicted"`
	// Validated is the passing DES run of Chosen (nil when validation was
	// skipped or nothing passed).
	Validated *DESResult `json:"validated,omitempty"`
	// Validations lists every DES run attempted, frontier order.
	Validations []DESResult `json:"validations,omitempty"`
	// Frontier is the cost/latency Pareto frontier of the feasible set,
	// cheapest first.
	Frontier []Evaluation `json:"frontier,omitempty"`
	// Sweep is the per-server-count sweep at the chosen platform, DVFS
	// state and replication — the PR 9 provision table, folded into the
	// plan.
	Sweep []Evaluation `json:"sweep,omitempty"`
	// Trail is the search audit trail.
	Trail []Step `json:"trail"`
	// TwinEvals counts the distinct configurations the twin evaluated
	// during the search; DESRuns counts discrete-event validation runs.
	// Their ratio is the twin-first speedup the search rides on.
	TwinEvals int `json:"twin_evals"`
	DESRuns   int `json:"des_runs"`
}

// Input bundles the compiled models a search runs against. The caller
// (facade or daemon) owns compilation, because only it knows the trained
// model types.
type Input struct {
	// Twins maps each platform name of the space to the trained model's
	// analytical twin compiled on that platform's hardware.
	Twins map[string]*twin.Twin
	// DES is the empirical SQS farm model used to validate the Pareto
	// frontier; nil skips validation (the plan is then twin-only).
	DES *sqs.Model
}

// charStream is the SplitMix64 sub-stream of the DES characterizer's
// reservoir sampling (callers building the DES model from a trace).
const charStream = 0x6368 // "ch"

// NewDESModel characterizes a trace into the empirical SQS farm model the
// frontier is validated against, on the request's seed and sample budget.
func NewDESModel(tr *trace.Trace, req Request) (*sqs.Model, error) {
	req = req.WithDefaults()
	c, err := sqs.NewCharacterizer(req.ValidateSamples, prand.New(req.Seed, charStream))
	if err != nil {
		return nil, err
	}
	if err := c.ObserveTrace(tr); err != nil {
		return nil, err
	}
	return c.Model()
}

// Search runs the provisioning search and assembles the Plan. On an
// exhausted space it returns the best-effort Plan (audit trail included)
// together with an error wrapping errs.ErrNoFeasibleConfig; on structural
// problems it returns errors wrapping errs.ErrBadConfig. ctx cancellation
// is honored between evaluation batches.
func Search(ctx context.Context, in Input, req Request) (Plan, error) {
	req = req.WithDefaults()
	strat, err := StrategyByName(req.Strategy)
	if err != nil {
		return Plan{}, err
	}
	ev, err := NewEvaluator(in.Twins, req.Objective, req.Space)
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{
		Strategy:  strat.Name(),
		Seed:      req.Seed,
		Objective: ev.Objective(),
		Space:     ev.Space(),
	}
	steps, err := strat.Search(ctx, ev, req.Seed, req.Workers, req.InitialPopulation)
	plan.Trail = steps
	if err != nil {
		return plan, err
	}
	// Polish: a final full sweep of the server coordinate at the best
	// configuration found, shared by both strategies — it guarantees the
	// chosen farm size is the exact cheapest feasible count, not just the
	// best point the strategy happened to visit.
	best := bestOf(mustEvals(ev))
	polish := coordinateCandidates(ev.Space(), best.Config, "servers")
	if len(polish) > 1 {
		if err := ctx.Err(); err != nil {
			return plan, err
		}
		evs, err := ev.EvalBatch(polish, req.Workers)
		if err != nil {
			return plan, err
		}
		if top := bestOf(evs); better(top, best) {
			best = top
		}
		plan.Trail = append(plan.Trail, Step{
			Step: len(plan.Trail), Note: "polish servers",
			Evaluated: len(polish), Best: best,
		})
	}
	plan.TwinEvals = ev.Unique()
	all := mustEvals(ev)
	feasible := make([]Evaluation, 0, len(all))
	for _, e := range all {
		if e.Feasible {
			feasible = append(feasible, e)
		}
	}
	if len(feasible) == 0 {
		plan.Chosen = best.Config
		plan.Predicted = best
		plan.Sweep = sweep(ev, best.Config, req.Workers)
		return plan, fmt.Errorf("optimize: no configuration in the space meets %s <= %gs: %w",
			quantileName(plan.Objective.Quantile), plan.Objective.TargetSeconds, errs.ErrNoFeasibleConfig)
	}
	plan.Frontier = pareto(feasible)

	// DES validation of the frontier only, cheapest first. Each run's
	// rand stream is keyed by the configuration fingerprint, so the
	// verdicts do not depend on how many candidates were tried before.
	chosen := plan.Frontier[0]
	if in.DES != nil {
		validated := false
		for _, cand := range plan.Frontier {
			if len(plan.Validations) >= req.MaxValidate {
				break
			}
			res := validateDES(in.DES, ev.Objective(), cand.Config, req)
			plan.Validations = append(plan.Validations, res)
			if res.Passed {
				chosen = cand
				v := res
				plan.Validated = &v
				validated = true
				break
			}
		}
		plan.DESRuns = len(plan.Validations)
		if !validated {
			plan.Chosen = chosen.Config
			plan.Predicted = chosen
			plan.Sweep = sweep(ev, chosen.Config, req.Workers)
			return plan, fmt.Errorf("optimize: DES validation rejected all %d frontier candidates tried: %w",
				len(plan.Validations), errs.ErrNoFeasibleConfig)
		}
	}
	plan.Feasible = true
	plan.Chosen = chosen.Config
	plan.Predicted = chosen
	plan.Sweep = sweep(ev, chosen.Config, req.Workers)
	return plan, nil
}

// mustEvals reads the evaluator memo; the error-free variant is safe
// because every entry was already evaluated successfully.
func mustEvals(ev *Evaluator) []Evaluation { return ev.evaluations() }

// pareto filters the feasible set down to its cost/latency Pareto
// frontier and sorts it cheapest-first.
func pareto(feasible []Evaluation) []Evaluation {
	var front []Evaluation
	for _, e := range feasible {
		dominated := false
		for _, o := range feasible {
			if o.Config == e.Config {
				continue
			}
			if o.CostPerHour <= e.CostPerHour && o.QuantileSeconds <= e.QuantileSeconds &&
				(o.CostPerHour < e.CostPerHour || o.QuantileSeconds < e.QuantileSeconds) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, e)
		}
	}
	sort.Slice(front, func(i, j int) bool { return better(front[i], front[j]) })
	return front
}

// validateDES runs one discrete-event validation of a configuration's
// server count against the empirical farm model. The run seed derives
// from the configuration fingerprint, never from attempt order.
func validateDES(m *sqs.Model, obj Objective, c Config, req Request) DESResult {
	r := rand.New(rand.NewSource(prand.Derive(req.Seed, fingerprint(c))))
	out := DESResult{Servers: c.Servers, Tasks: req.ValidateTasks}
	res, err := m.Evaluate(c.Servers, req.ValidateTasks, r)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Utilization = res.Utilization
	out.MeanSeconds = res.MeanResponse
	out.P95Seconds = res.P95
	out.P99Seconds = res.P99
	out.ThroughputPerSec = res.Throughput
	switch obj.Quantile {
	case 0.5:
		out.QuantileSeconds = res.MeanResponse // DES reports no p50; mean is the closest stand-in
	case 0.99:
		out.QuantileSeconds = res.P99
	default:
		out.QuantileSeconds = res.P95
	}
	out.Passed = out.QuantileSeconds <= obj.TargetSeconds
	return out
}

// fingerprint hashes a configuration into a SplitMix64 stream key (FNV-1a
// over the canonical field order).
func fingerprint(c Config) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	mix(fmt.Sprintf("%d", c.Servers))
	mix(c.Platform)
	mix(c.DVFS)
	mix(fmt.Sprintf("%d", c.Replicas))
	return h
}

// sweepCap bounds the sweep table length (it ends at the chosen count).
const sweepCap = 64

// sweep evaluates every server count up to the chosen configuration's —
// the PR 9 provision table — at the chosen platform, DVFS state and
// replication. All entries are memo hits or cheap twin calls; errors are
// impossible for in-space configs that already evaluated, so a defective
// entry is simply skipped.
func sweep(ev *Evaluator, chosen Config, workers int) []Evaluation {
	space := ev.Space()
	start := space.MinServers
	if chosen.Servers-start+1 > sweepCap {
		start = chosen.Servers - sweepCap + 1
	}
	var cands []Config
	for k := start; k <= chosen.Servers; k++ {
		c := chosen
		c.Servers = k
		cands = append(cands, c)
	}
	evs, err := ev.EvalBatch(cands, workers)
	if err != nil {
		return nil
	}
	return evs
}

func quantileName(q float64) string {
	switch q {
	case 0.5:
		return "p50"
	case 0.99:
		return "p99"
	default:
		return "p95"
	}
}
