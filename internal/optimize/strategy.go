package optimize

import (
	"context"
)

// Step is one entry of a Plan's audit trail: what the strategy did, how
// many twin evaluations it asked for, and the best evaluation known after
// the step.
type Step struct {
	Step int `json:"step"`
	// Note labels the step ("coordinate servers", "generation 3",
	// "polish servers", "validate").
	Note string `json:"note"`
	// Evaluated is the number of twin evaluations the step requested
	// (memo hits included — the count depends only on the search path).
	Evaluated int `json:"evaluated"`
	// Best is the best evaluation found so far.
	Best Evaluation `json:"best"`
}

// Strategy is one interchangeable search algorithm. Implementations must
// honor the package determinism contract: for a fixed (evaluator, space,
// seed) the returned steps — and the set of configurations evaluated —
// must not depend on opts.Workers or on the order of any caller-supplied
// population. ctx is checked between batches; a cancelled search returns
// ctx.Err().
type Strategy interface {
	// Name is the strategy's stable wire name.
	Name() string
	// Search explores the space and returns the audit trail. The best
	// configuration is read from the evaluator's memo afterwards, so a
	// strategy only has to explore, not to report.
	Search(ctx context.Context, ev *Evaluator, seed int64, workers int, pop []Config) ([]Step, error)
}

// StrategyByName resolves a wire name ("coordinate", "evolve"; "" defaults
// to coordinate).
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "", StrategyCoordinate:
		return coordinateDescent{}, nil
	case StrategyEvolve:
		return evolutionary{}, nil
	default:
		return nil, badConfig("unknown strategy %q (want %s or %s)", name, StrategyCoordinate, StrategyEvolve)
	}
}

// Strategy wire names.
const (
	StrategyCoordinate = "coordinate"
	StrategyEvolve     = "evolve"
)

// maxDescentPasses bounds the coordinate-descent outer loop; each pass
// strictly improves the incumbent, so the bound only guards pathological
// objectives.
const maxDescentPasses = 32

// coordinateDescent is the deterministic strategy: starting from the most
// generous configuration (MaxServers on the first platform), it sweeps one
// coordinate at a time — batch-evaluating every value of that coordinate
// with the others held fixed — and moves to the best, repeating until a
// full pass moves nothing. It uses no randomness at all; the seed is
// ignored.
type coordinateDescent struct{}

func (coordinateDescent) Name() string { return StrategyCoordinate }

func (coordinateDescent) Search(ctx context.Context, ev *Evaluator, seed int64, workers int, pop []Config) ([]Step, error) {
	space := ev.Space()
	cur := Config{
		Servers:  space.MaxServers,
		Platform: space.Platforms[0],
		DVFS:     space.DVFSStates[0],
		Replicas: space.MinReplicas,
	}
	if len(pop) > 0 {
		// A seeded population starts the descent from its best member
		// (canonicalized, so the start is order-independent).
		seeds := canonicalize(pop, space)
		if len(seeds) > 0 {
			evs, err := ev.EvalBatch(seeds, workers)
			if err != nil {
				return nil, err
			}
			cur = bestOf(evs).Config
		}
	}
	best, err := ev.Eval(cur)
	if err != nil {
		return nil, err
	}
	var steps []Step
	coords := []string{"servers", "platform", "dvfs", "replicas"}
	for pass := 0; pass < maxDescentPasses; pass++ {
		moved := false
		for _, coord := range coords {
			if err := ctx.Err(); err != nil {
				return steps, err
			}
			cands := coordinateCandidates(space, cur, coord)
			if len(cands) < 2 {
				continue
			}
			evs, err := ev.EvalBatch(cands, workers)
			if err != nil {
				return nil, err
			}
			top := bestOf(evs)
			if top.Config != cur {
				cur, moved = top.Config, true
			}
			if better(top, best) {
				best = top
			}
			steps = append(steps, Step{
				Step: len(steps), Note: "coordinate " + coord,
				Evaluated: len(cands), Best: best,
			})
		}
		if !moved {
			break
		}
	}
	return steps, nil
}

// coordinateCandidates enumerates cur with every value of one coordinate.
func coordinateCandidates(space Space, cur Config, coord string) []Config {
	var out []Config
	switch coord {
	case "servers":
		for k := space.MinServers; k <= space.MaxServers; k++ {
			c := cur
			c.Servers = k
			out = append(out, c)
		}
	case "platform":
		for _, p := range space.Platforms {
			c := cur
			c.Platform = p
			out = append(out, c)
		}
	case "dvfs":
		for _, d := range space.DVFSStates {
			c := cur
			c.DVFS = d
			out = append(out, c)
		}
	case "replicas":
		for r := space.MinReplicas; r <= space.MaxReplicas; r++ {
			c := cur
			c.Replicas = r
			out = append(out, c)
		}
	}
	return out
}

// bestOf selects by the total evaluation order (deterministic for any
// slice ordering, since better is total).
func bestOf(evs []Evaluation) Evaluation {
	best := evs[0]
	for _, e := range evs[1:] {
		if better(e, best) {
			best = e
		}
	}
	return best
}

// canonicalize clamps a caller-supplied population into the space, sorts
// it into canonical config order and drops duplicates — the step that
// makes every downstream decision independent of the order the caller
// listed the population in.
func canonicalize(pop []Config, space Space) []Config {
	out := make([]Config, 0, len(pop))
	for _, c := range pop {
		if c = clampConfig(c, space); space.contains(c) {
			out = append(out, c)
		}
	}
	sortConfigs(out)
	return dedupeConfigs(out)
}

// clampConfig pulls a configuration onto the nearest point of the space:
// numeric coordinates clamp to their bounds; unknown platform or DVFS
// names fall to the first listed.
func clampConfig(c Config, space Space) Config {
	if c.Servers < space.MinServers {
		c.Servers = space.MinServers
	}
	if c.Servers > space.MaxServers {
		c.Servers = space.MaxServers
	}
	if c.Replicas < space.MinReplicas {
		c.Replicas = space.MinReplicas
	}
	if c.Replicas > space.MaxReplicas {
		c.Replicas = space.MaxReplicas
	}
	if indexOf(space.Platforms, c.Platform) < 0 {
		c.Platform = space.Platforms[0]
	}
	if indexOf(space.DVFSStates, c.DVFS) < 0 {
		c.DVFS = space.DVFSStates[0]
	}
	return c
}

func sortConfigs(cs []Config) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].less(cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func dedupeConfigs(cs []Config) []Config {
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || c != cs[i-1] {
			out = append(out, c)
		}
	}
	return out
}
