// Package par is the worker-pool primitive shared by the parallel engines:
// a bounded, index-ordered fan-out over a fixed task count.
//
// Determinism contract: Do never communicates values between tasks — each
// task writes only to its own index of the caller's result slice — so the
// output of a Do fan-out is independent of the worker count and of
// goroutine scheduling. Workers=1 runs the tasks inline on the calling
// goroutine (the serial fallback), which is also the byte-identical
// reference for any Workers>1 run.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Do runs fn(0), …, fn(n-1) on at most workers goroutines and returns the
// lowest-indexed error, or nil. workers <= 0 selects runtime.GOMAXPROCS(0);
// workers == 1 runs serially on the calling goroutine and stops at the
// first error. With workers > 1 every task runs even when an earlier index
// fails (tasks must not depend on each other), and the lowest-indexed
// error is still the one reported, keeping error reporting deterministic.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
