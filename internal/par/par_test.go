package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDoRunsAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		out := make([]int, 50)
		if err := Do(len(out), workers, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestDoReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := Do(20, workers, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

func TestDoSerialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int64
	err := Do(10, 1, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("serial ran %d tasks after error at index 2, want 3", got)
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	if err := Do(64, workers, func(int) error {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		active.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds workers %d", p, workers)
	}
}
