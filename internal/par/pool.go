package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the long-lived counterpart of Do: a fixed set of worker
// goroutines draining a bounded job queue. It is the admission-control
// primitive of the serving daemon — TrySubmit never blocks, so a caller
// holding an HTTP request can translate a full queue directly into
// backpressure (429) instead of queueing unboundedly.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	mu      sync.RWMutex
	closed  bool
	queued  atomic.Int64
	running atomic.Int64
	done    atomic.Int64
}

// NewPool starts a pool with the given worker count and queue depth.
// workers <= 0 selects runtime.GOMAXPROCS(0); depth < 0 is treated as 0
// (jobs are admitted only when a worker is free to take them).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.queued.Add(-1)
				p.running.Add(1)
				job()
				p.running.Add(-1)
				p.done.Add(1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues job if the queue has room and the pool is still open,
// reporting whether the job was admitted. It never blocks.
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		p.queued.Add(1)
		return true
	default:
		return false
	}
}

// Depth returns the number of admitted jobs not yet picked up by a worker.
func (p *Pool) Depth() int { return int(p.queued.Load()) }

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Completed returns the number of jobs that have finished.
func (p *Pool) Completed() int64 { return p.done.Load() }

// Close drains the pool: it stops admitting new jobs, runs everything
// already queued, and returns once the last job has finished. Close is
// idempotent and safe to race with TrySubmit — a submit that loses the
// race is simply rejected.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
