package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverythingAdmitted checks every admitted job runs exactly
// once and Close waits for all of them.
func TestPoolRunsEverythingAdmitted(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	admitted := 0
	for i := 0; i < 200; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) {
			admitted++
		} else {
			// Full queue is legitimate; retry until admitted so the count
			// assertion below stays exact.
			for !p.TrySubmit(func() { ran.Add(1) }) {
				time.Sleep(time.Millisecond)
			}
			admitted++
		}
	}
	p.Close()
	if got := ran.Load(); got != int64(admitted) {
		t.Fatalf("ran %d of %d admitted jobs", got, admitted)
	}
	if p.Completed() != int64(admitted) {
		t.Fatalf("Completed() = %d, want %d", p.Completed(), admitted)
	}
}

// TestPoolBackpressure checks the queue bound is enforced: with all
// workers blocked and the queue full, TrySubmit must refuse.
func TestPoolBackpressure(t *testing.T) {
	const workers, depth = 2, 3
	p := NewPool(workers, depth)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(workers)
	for i := 0; i < workers; i++ {
		if !p.TrySubmit(func() { started.Done(); <-release }) {
			t.Fatal("initial blocking job rejected")
		}
	}
	started.Wait() // both workers now blocked
	for i := 0; i < depth; i++ {
		if !p.TrySubmit(func() {}) {
			t.Fatalf("queue slot %d rejected while under depth", i)
		}
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit admitted beyond queue depth")
	}
	if got := p.Depth(); got != depth {
		t.Fatalf("Depth() = %d, want %d", got, depth)
	}
	if got := p.Running(); got != workers {
		t.Fatalf("Running() = %d, want %d", got, workers)
	}
	close(release)
	p.Close()
}

// TestPoolCloseRejectsAndIsIdempotent checks post-Close submits are
// refused (not panicking) and double Close is safe, including when racing
// submitters.
func TestPoolCloseRejectsAndIsIdempotent(t *testing.T) {
	p := NewPool(2, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.TrySubmit(func() {})
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	p.Close()
	p.Close() // idempotent
	close(stop)
	wg.Wait()
	if p.TrySubmit(func() { t.Error("job ran after Close") }) {
		t.Fatal("TrySubmit accepted after Close")
	}
}
