package power

import (
	"fmt"

	"dcmodel/internal/trace"
)

// DVFS policy evaluation in the style of Huang et al.: use the workload's
// CPU-utilization pattern to decide when to drop to a low-power mode —
// "during processor stalls due to long off-chip activities" (batch I/O) —
// and quantify the energy benefit against the performance cost.

// DVFSPolicy drops the CPU to a low-power state during a request's
// off-chip (storage and network) phases when the request's CPU utilization
// is below the threshold.
type DVFSPolicy struct {
	// UtilThreshold: requests with CPU utilization below this are run with
	// the CPU in the low state during their non-CPU phases.
	UtilThreshold float64
	// LowFactor scales CPU idle power in the low state (e.g. 0.3 means
	// the low state draws 30% of normal idle power).
	LowFactor float64
	// SwitchPenalty is the time cost of each mode switch (seconds),
	// charged twice per downshifted request (enter + exit).
	SwitchPenalty float64
}

// Validate reports a configuration error, if any.
func (p DVFSPolicy) Validate() error {
	switch {
	case p.UtilThreshold < 0 || p.UtilThreshold > 1:
		return fmt.Errorf("power: dvfs threshold %g outside [0,1]", p.UtilThreshold)
	case p.LowFactor < 0 || p.LowFactor > 1:
		return fmt.Errorf("power: dvfs low factor %g outside [0,1]", p.LowFactor)
	case p.SwitchPenalty < 0:
		return fmt.Errorf("power: dvfs switch penalty %g negative", p.SwitchPenalty)
	}
	return nil
}

// DVFSResult quantifies a policy's effect on one server.
type DVFSResult struct {
	// BaselineCPUJ and PolicyCPUJ are the CPU energies without and with
	// the policy.
	BaselineCPUJ, PolicyCPUJ float64
	// SavingsFraction is 1 - PolicyCPUJ/BaselineCPUJ.
	SavingsFraction float64
	// Downshifted is the number of requests run in the low mode.
	Downshifted int
	// AddedLatency is the total switch-penalty time added.
	AddedLatency float64
}

// EvaluateDVFS computes the CPU energy of a server under the policy: idle
// power is paid for the whole trace, CPU-active power during CPU spans,
// and during a downshifted request's off-chip phases the idle draw is
// scaled by LowFactor.
func EvaluateDVFS(tr *trace.Trace, server int, cpu Component, p DVFSPolicy) (DVFSResult, error) {
	if tr == nil || tr.Len() == 0 {
		return DVFSResult{}, trace.ErrEmptyTrace
	}
	if err := cpu.Validate(); err != nil {
		return DVFSResult{}, err
	}
	if err := p.Validate(); err != nil {
		return DVFSResult{}, err
	}
	var duration float64
	var cpuBusy []interval
	var lowIntervals []interval
	res := DVFSResult{}
	for _, r := range tr.Requests {
		if end := r.Arrival + r.Latency(); end > duration {
			duration = end
		}
		if r.Server != server {
			continue
		}
		var util float64
		for _, s := range r.Spans {
			if s.Subsystem == trace.CPU {
				cpuBusy = append(cpuBusy, interval{s.Start, s.End()})
				util = s.Util
			}
		}
		if util >= p.UtilThreshold {
			continue
		}
		// Downshift during the request's off-chip phases.
		res.Downshifted++
		res.AddedLatency += 2 * p.SwitchPenalty
		for _, s := range r.Spans {
			if s.Subsystem == trace.Storage || s.Subsystem == trace.Network {
				lowIntervals = append(lowIntervals, interval{s.Start, s.End()})
			}
		}
	}
	if duration <= 0 {
		return DVFSResult{}, fmt.Errorf("power: trace has zero duration")
	}
	var busyTime float64
	for _, iv := range merge(cpuBusy) {
		busyTime += iv.end - iv.start
	}
	// Low-power time excludes instants the CPU is actually busy (another
	// request may be computing while this one waits on I/O).
	lowTime := subtractTime(merge(lowIntervals), merge(cpuBusy))
	res.BaselineCPUJ = cpu.Idle*duration + (cpu.Active-cpu.Idle)*busyTime
	res.PolicyCPUJ = res.BaselineCPUJ - cpu.Idle*(1-p.LowFactor)*lowTime
	if res.BaselineCPUJ > 0 {
		res.SavingsFraction = 1 - res.PolicyCPUJ/res.BaselineCPUJ
	}
	return res, nil
}

// subtractTime returns the total length of a-minus-b for merged interval
// lists a and b.
func subtractTime(a, b []interval) float64 {
	var total float64
	j := 0
	for _, iv := range a {
		start := iv.start
		for j < len(b) && b[j].end <= start {
			j++
		}
		k := j
		for start < iv.end {
			if k >= len(b) || b[k].start >= iv.end {
				total += iv.end - start
				break
			}
			if b[k].start > start {
				total += b[k].start - start
			}
			if b[k].end > start {
				start = b[k].end
			}
			if start >= iv.end {
				break
			}
			k++
		}
	}
	return total
}
