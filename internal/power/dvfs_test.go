package power

import (
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func TestSubtractTime(t *testing.T) {
	tests := []struct {
		name string
		a, b []interval
		want float64
	}{
		{"disjoint", []interval{{0, 2}}, []interval{{5, 6}}, 2},
		{"contained", []interval{{0, 10}}, []interval{{3, 5}}, 8},
		{"covering", []interval{{3, 5}}, []interval{{0, 10}}, 0},
		{"partial overlap", []interval{{0, 4}}, []interval{{2, 6}}, 2},
		{"multi", []interval{{0, 10}}, []interval{{1, 2}, {4, 5}}, 8},
		{"empty b", []interval{{1, 3}}, nil, 2},
		{"empty a", nil, []interval{{1, 3}}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := subtractTime(tt.a, tt.b); got != tt.want {
				t.Errorf("subtractTime = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestEvaluateDVFSHandComputed(t *testing.T) {
	// One request: cpu 1s, storage 4s, over a 10s window.
	tr := &trace.Trace{Requests: []trace.Request{
		{ID: 1, Arrival: 0, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 0, Duration: 1, Util: 0.05},
			{Subsystem: trace.Storage, Start: 1, Duration: 4},
		}},
		{ID: 2, Arrival: 9.5, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 9.5, Duration: 0.5, Util: 0.9},
		}},
	}}
	cpu := Component{Idle: 10, Active: 20}
	policy := DVFSPolicy{UtilThreshold: 0.1, LowFactor: 0.5, SwitchPenalty: 0.001}
	res, err := EvaluateDVFS(tr, 0, cpu, policy)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: idle 10W*10s + extra 10W*1.5s busy = 115 J.
	approx(t, res.BaselineCPUJ, 115, 1e-9, "baseline")
	// Request 1 downshifts during its 4s storage phase: saves
	// idle*(1-0.5)*4 = 20 J.
	approx(t, res.PolicyCPUJ, 95, 1e-9, "policy energy")
	approx(t, res.SavingsFraction, 20.0/115, 1e-9, "savings")
	if res.Downshifted != 1 {
		t.Errorf("downshifted = %d, want 1 (request 2 is above threshold)", res.Downshifted)
	}
	approx(t, res.AddedLatency, 0.002, 1e-12, "switch penalty")
}

func TestEvaluateDVFSValidation(t *testing.T) {
	tr := handTrace()
	cpu := Component{Idle: 10, Active: 20}
	if _, err := EvaluateDVFS(nil, 0, cpu, DVFSPolicy{}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := EvaluateDVFS(tr, 0, Component{Idle: 5, Active: 1}, DVFSPolicy{}); err == nil {
		t.Error("bad component should fail")
	}
	bads := []DVFSPolicy{
		{UtilThreshold: -1},
		{UtilThreshold: 2},
		{UtilThreshold: 0.5, LowFactor: 2},
		{UtilThreshold: 0.5, LowFactor: 0.5, SwitchPenalty: -1},
	}
	for i, p := range bads {
		if _, err := EvaluateDVFS(tr, 0, cpu, p); err == nil {
			t.Errorf("policy %d should fail validation", i)
		}
	}
}

func TestEvaluateDVFSOnGFS(t *testing.T) {
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: 2000,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cpu := BigCoreServer().CPU
	// GFS requests are I/O dominated with low CPU utilization: an
	// aggressive threshold downshifts nearly everything and saves real
	// energy.
	res, err := EvaluateDVFS(tr, 0, cpu, DVFSPolicy{UtilThreshold: 0.5, LowFactor: 0.3, SwitchPenalty: 10e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Downshifted < 1900 {
		t.Errorf("downshifted = %d, want nearly all", res.Downshifted)
	}
	if res.SavingsFraction < 0.1 {
		t.Errorf("savings = %g, want > 10%%", res.SavingsFraction)
	}
	// A zero threshold downshifts nothing and saves nothing.
	none, err := EvaluateDVFS(tr, 0, cpu, DVFSPolicy{UtilThreshold: 0, LowFactor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if none.Downshifted != 0 || none.SavingsFraction != 0 {
		t.Errorf("zero threshold should be a no-op: %+v", none)
	}
	// Policy energy never exceeds baseline.
	if res.PolicyCPUJ > res.BaselineCPUJ {
		t.Error("policy energy above baseline")
	}
}
