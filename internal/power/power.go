// Package power derives energy and power estimates from workload traces —
// the paper's §5 applicability claim that a representative workload model
// "facilitates the advance to a performance and power model for the DC",
// enabling server-configuration studies (e.g. small-core vs big-core
// efficiency, Reddi et al.) without access to the application.
//
// The model is the standard linear utilization model: each subsystem draws
// idle power always and (active - idle) while busy; CPU active power
// scales further with the achieved utilization.
package power

import (
	"fmt"
	"sort"

	"dcmodel/internal/trace"
)

// Component is a two-point linear power model (Watts).
type Component struct {
	// Idle is the power drawn when the component is idle.
	Idle float64
	// Active is the power drawn while the component is busy.
	Active float64
}

// Validate reports a configuration error, if any.
func (c Component) Validate() error {
	if c.Idle < 0 || c.Active < c.Idle {
		return fmt.Errorf("power: component model [idle %g, active %g] invalid", c.Idle, c.Active)
	}
	return nil
}

// ServerPower bundles per-subsystem power models for one server.
type ServerPower struct {
	CPU     Component
	Disk    Component
	Memory  Component
	Network Component
}

// BigCoreServer returns a Xeon-class power model: hot idle, high peak.
func BigCoreServer() ServerPower {
	return ServerPower{
		CPU:     Component{Idle: 45, Active: 95},
		Disk:    Component{Idle: 5, Active: 11},
		Memory:  Component{Idle: 8, Active: 18},
		Network: Component{Idle: 3, Active: 6},
	}
}

// SmallCoreServer returns a mobile-core-class power model (the Reddi et
// al. configuration): far lower idle and peak power.
func SmallCoreServer() ServerPower {
	return ServerPower{
		CPU:     Component{Idle: 4, Active: 12},
		Disk:    Component{Idle: 5, Active: 11},
		Memory:  Component{Idle: 4, Active: 9},
		Network: Component{Idle: 3, Active: 6},
	}
}

// Validate validates all component models.
func (s ServerPower) Validate() error {
	for _, c := range []Component{s.CPU, s.Disk, s.Memory, s.Network} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s ServerPower) component(sub trace.Subsystem) Component {
	switch sub {
	case trace.CPU:
		return s.CPU
	case trace.Storage:
		return s.Disk
	case trace.Memory:
		return s.Memory
	default:
		return s.Network
	}
}

// Breakdown is the energy accounting of one server over a trace.
type Breakdown struct {
	// Duration is the accounted time span (seconds).
	Duration float64
	// EnergyJ holds per-subsystem energy in Joules (idle + active).
	EnergyJ map[trace.Subsystem]float64
	// TotalJ is the total energy.
	TotalJ float64
	// MeanPowerW is TotalJ / Duration.
	MeanPowerW float64
	// Requests is the number of requests attributed to the server.
	Requests int
	// JoulesPerRequest is TotalJ / Requests (0 when no requests).
	JoulesPerRequest float64
}

type interval struct{ start, end float64 }

// Energy computes the server's energy breakdown over the trace. Requests
// on other servers still contribute to the duration (the cluster is
// powered for the whole run) but not to this server's busy time.
func Energy(tr *trace.Trace, server int, sp ServerPower) (Breakdown, error) {
	if tr == nil || tr.Len() == 0 {
		return Breakdown{}, trace.ErrEmptyTrace
	}
	if err := sp.Validate(); err != nil {
		return Breakdown{}, err
	}
	var duration float64
	busy := make(map[trace.Subsystem][]interval)
	var requests int
	for _, r := range tr.Requests {
		if end := r.Arrival + r.Latency(); end > duration {
			duration = end
		}
		if r.Server != server {
			continue
		}
		requests++
		for _, s := range r.Spans {
			busy[s.Subsystem] = append(busy[s.Subsystem], interval{s.Start, s.End()})
		}
	}
	if duration <= 0 {
		return Breakdown{}, fmt.Errorf("power: trace has zero duration")
	}
	b := Breakdown{
		Duration: duration,
		EnergyJ:  make(map[trace.Subsystem]float64),
		Requests: requests,
	}
	for _, sub := range trace.Subsystems() {
		comp := sp.component(sub)
		var busyTime float64
		for _, iv := range merge(busy[sub]) {
			busyTime += iv.end - iv.start
		}
		e := comp.Idle*duration + (comp.Active-comp.Idle)*busyTime
		b.EnergyJ[sub] = e
		b.TotalJ += e
	}
	b.MeanPowerW = b.TotalJ / duration
	if requests > 0 {
		b.JoulesPerRequest = b.TotalJ / float64(requests)
	}
	return b, nil
}

func merge(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// ClusterEnergy sums Energy over all servers appearing in the trace.
func ClusterEnergy(tr *trace.Trace, sp ServerPower) (Breakdown, error) {
	if tr == nil || tr.Len() == 0 {
		return Breakdown{}, trace.ErrEmptyTrace
	}
	maxServer := 0
	for _, r := range tr.Requests {
		if r.Server > maxServer {
			maxServer = r.Server
		}
	}
	total := Breakdown{EnergyJ: make(map[trace.Subsystem]float64)}
	for s := 0; s <= maxServer; s++ {
		b, err := Energy(tr, s, sp)
		if err != nil {
			return Breakdown{}, err
		}
		total.Duration = b.Duration
		total.Requests += b.Requests
		total.TotalJ += b.TotalJ
		for sub, e := range b.EnergyJ {
			total.EnergyJ[sub] += e
		}
	}
	if total.Duration > 0 {
		total.MeanPowerW = total.TotalJ / total.Duration
	}
	if total.Requests > 0 {
		total.JoulesPerRequest = total.TotalJ / float64(total.Requests)
	}
	return total, nil
}
