package power

import (
	"math"
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

// handTrace builds a 10-second trace with known busy times: CPU busy 2s,
// storage busy 5s.
func handTrace() *trace.Trace {
	return &trace.Trace{Requests: []trace.Request{
		{ID: 1, Arrival: 0, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 0, Duration: 2},
			{Subsystem: trace.Storage, Start: 2, Duration: 5},
		}},
		{ID: 2, Arrival: 9, Spans: []trace.Span{
			{Subsystem: trace.Network, Start: 9, Duration: 1},
		}},
	}}
}

func TestEnergyHandComputed(t *testing.T) {
	sp := ServerPower{
		CPU:     Component{Idle: 10, Active: 20},
		Disk:    Component{Idle: 5, Active: 9},
		Memory:  Component{Idle: 2, Active: 4},
		Network: Component{Idle: 1, Active: 3},
	}
	b, err := Energy(handTrace(), 0, sp)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, b.Duration, 10, 1e-12, "duration")
	// CPU: 10W*10s + 10W*2s = 120 J.
	approx(t, b.EnergyJ[trace.CPU], 120, 1e-9, "cpu energy")
	// Disk: 5*10 + 4*5 = 70 J.
	approx(t, b.EnergyJ[trace.Storage], 70, 1e-9, "disk energy")
	// Memory idle only: 20 J. Network: 1*10 + 2*1 = 12 J.
	approx(t, b.EnergyJ[trace.Memory], 20, 1e-9, "memory energy")
	approx(t, b.EnergyJ[trace.Network], 12, 1e-9, "network energy")
	approx(t, b.TotalJ, 222, 1e-9, "total")
	approx(t, b.MeanPowerW, 22.2, 1e-9, "mean power")
	if b.Requests != 2 {
		t.Errorf("requests = %d", b.Requests)
	}
	approx(t, b.JoulesPerRequest, 111, 1e-9, "J/request")
}

func TestEnergyOverlappingSpansMerged(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{ID: 1, Arrival: 0, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 0, Duration: 2},
		}},
		{ID: 2, Arrival: 1, Spans: []trace.Span{
			{Subsystem: trace.CPU, Start: 1, Duration: 2},
			{Subsystem: trace.Network, Start: 3, Duration: 1},
		}},
	}}
	sp := ServerPower{CPU: Component{Idle: 0, Active: 10},
		Disk: Component{}, Memory: Component{}, Network: Component{}}
	b, err := Energy(tr, 0, sp)
	if err != nil {
		t.Fatal(err)
	}
	// CPU busy 0..3 merged = 3s * 10W = 30 J (not 4s).
	approx(t, b.EnergyJ[trace.CPU], 30, 1e-9, "merged cpu energy")
}

func TestEnergyErrors(t *testing.T) {
	if _, err := Energy(nil, 0, BigCoreServer()); err == nil {
		t.Error("nil trace should fail")
	}
	bad := ServerPower{CPU: Component{Idle: 10, Active: 5}}
	if _, err := Energy(handTrace(), 0, bad); err == nil {
		t.Error("active < idle should fail")
	}
	zero := &trace.Trace{Requests: []trace.Request{{ID: 1}}}
	if _, err := Energy(zero, 0, BigCoreServer()); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestSmallCoreDrawsLessPower(t *testing.T) {
	c, err := gfs.NewCluster(gfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: 1500,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Energy(tr, 0, BigCoreServer())
	if err != nil {
		t.Fatal(err)
	}
	small, err := Energy(tr, 0, SmallCoreServer())
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalJ >= big.TotalJ {
		t.Errorf("small-core energy %g not below big-core %g", small.TotalJ, big.TotalJ)
	}
	if small.JoulesPerRequest >= big.JoulesPerRequest {
		t.Error("small-core J/request should be lower")
	}
}

func TestClusterEnergy(t *testing.T) {
	cfg := gfs.DefaultConfig()
	cfg.Chunkservers = 3
	c, err := gfs.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 30},
		Requests: 1500,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	total, err := ClusterEnergy(tr, BigCoreServer())
	if err != nil {
		t.Fatal(err)
	}
	if total.Requests != 1500 {
		t.Errorf("cluster requests = %d", total.Requests)
	}
	// Cluster energy exceeds any single server's.
	one, err := Energy(tr, 0, BigCoreServer())
	if err != nil {
		t.Fatal(err)
	}
	if total.TotalJ <= one.TotalJ {
		t.Error("cluster energy should exceed one server's")
	}
	if _, err := ClusterEnergy(&trace.Trace{}, BigCoreServer()); err == nil {
		t.Error("empty cluster energy should fail")
	}
}
