package power

import "fmt"

// DVFS P-state catalog for the provisioning optimizer. Where DVFSPolicy
// (dvfs.go) evaluates a dynamic downshift policy against a recorded trace,
// a DVFSState is a static operating point for closed-form what-if math:
// the CPU runs FreqScale times its nominal clock (service demands stretch
// by 1/FreqScale) and draws PowerScale times its nominal active power.
// PowerScale follows the classic near-cubic P ~ f*V^2 scaling with voltage
// dropping alongside frequency.

// DVFSState is one static frequency/voltage operating point.
type DVFSState struct {
	// Name labels the state ("P0" is nominal).
	Name string `json:"name"`
	// FreqScale multiplies the nominal CPU clock, in (0, 1].
	FreqScale float64 `json:"freq_scale"`
	// PowerScale multiplies the nominal CPU active power, in (0, 1].
	PowerScale float64 `json:"power_scale"`
}

// Validate reports a configuration error, if any.
func (s DVFSState) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("power: dvfs state needs a name")
	case !(s.FreqScale > 0 && s.FreqScale <= 1):
		return fmt.Errorf("power: dvfs state %s freq scale %g outside (0,1]", s.Name, s.FreqScale)
	case !(s.PowerScale > 0 && s.PowerScale <= 1):
		return fmt.Errorf("power: dvfs state %s power scale %g outside (0,1]", s.Name, s.PowerScale)
	}
	return nil
}

// DVFSStates returns the catalog of supported operating points, fastest
// first. P0 is the nominal point (scales are exactly 1, so a P0 search is
// byte-identical to one that never mentions DVFS).
func DVFSStates() []DVFSState {
	return []DVFSState{
		{Name: "P0", FreqScale: 1.0, PowerScale: 1.0},
		{Name: "P1", FreqScale: 0.8, PowerScale: 0.576},
		{Name: "P2", FreqScale: 0.6, PowerScale: 0.27},
	}
}

// DVFSStateByName looks a state up in the catalog.
func DVFSStateByName(name string) (DVFSState, bool) {
	for _, s := range DVFSStates() {
		if s.Name == name {
			return s, true
		}
	}
	return DVFSState{}, false
}
