package power

import "testing"

// TestDVFSStateCatalog pins the static P-state catalog the provisioning
// optimizer searches over.
func TestDVFSStateCatalog(t *testing.T) {
	states := DVFSStates()
	if len(states) != 3 {
		t.Fatalf("catalog has %d states, want 3", len(states))
	}
	if states[0].Name != "P0" || states[0].FreqScale != 1 || states[0].PowerScale != 1 {
		t.Fatalf("P0 must be the exact nominal point, got %+v", states[0])
	}
	prevFreq, prevPower := 2.0, 2.0
	for _, s := range states {
		if err := s.Validate(); err != nil {
			t.Errorf("catalog state %s invalid: %v", s.Name, err)
		}
		if s.FreqScale >= prevFreq || s.PowerScale >= prevPower {
			t.Errorf("catalog not fastest-first at %s", s.Name)
		}
		// Near-cubic scaling: the power saving should outpace the slowdown.
		if s.PowerScale > s.FreqScale {
			t.Errorf("%s: power scale %g exceeds freq scale %g", s.Name, s.PowerScale, s.FreqScale)
		}
		prevFreq, prevPower = s.FreqScale, s.PowerScale
	}
}

func TestDVFSStateByName(t *testing.T) {
	if s, ok := DVFSStateByName("P2"); !ok || s.FreqScale != 0.6 {
		t.Fatalf("P2 lookup = %+v, %v", s, ok)
	}
	if _, ok := DVFSStateByName("P9"); ok {
		t.Fatal("P9 should not resolve")
	}
}

func TestDVFSStateValidate(t *testing.T) {
	bad := []DVFSState{
		{Name: "", FreqScale: 1, PowerScale: 1},
		{Name: "X", FreqScale: 0, PowerScale: 1},
		{Name: "X", FreqScale: 1.2, PowerScale: 1},
		{Name: "X", FreqScale: 1, PowerScale: 0},
		{Name: "X", FreqScale: 1, PowerScale: 1.5},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: %+v should not validate", i, s)
		}
	}
}
