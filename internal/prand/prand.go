// Package prand derives independent, reproducible pseudo-random sub-streams
// from a single master seed using SplitMix64 (Steele, Lea & Flood, OOPSLA
// 2014 — the generator java.util.SplittableRandom builds on).
//
// The parallel engines (sharded GFS simulation, parallel cross-examination,
// sharded synthesis) hand every worker its own *rand.Rand seeded with
// Derive(seed, stream). Because each sub-stream's seed is a fixed function
// of (seed, stream) — never of the worker count, the scheduling order or
// the wall clock — the merged output of a parallel run is byte-identical to
// a serial run of the same decomposition.
package prand

import "math/rand"

// gamma is the golden-ratio increment of the SplitMix64 state sequence.
const gamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output function (a strong 64-bit finalizer).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Mix returns the SplitMix64 output for state x — the x-th value of the
// generator whose state equals x. Exposed for tests and for callers that
// need raw 64-bit mixing.
func Mix(x uint64) uint64 { return mix64(x + gamma) }

// Derive returns the seed of sub-stream `stream` of the given master seed:
// the SplitMix64 output at position stream+1 of the sequence started at
// seed. Distinct streams of one seed, and equal streams of distinct seeds,
// yield statistically independent seeds.
func Derive(seed int64, stream uint64) int64 {
	return int64(mix64(uint64(seed) + (stream+1)*gamma))
}

// New returns a *rand.Rand for sub-stream `stream` of the master seed —
// shorthand for rand.New(rand.NewSource(Derive(seed, stream))).
func New(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, stream)))
}
