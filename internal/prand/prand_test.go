package prand

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		for stream := uint64(0); stream < 8; stream++ {
			a := Derive(seed, stream)
			b := Derive(seed, stream)
			if a != b {
				t.Fatalf("Derive(%d,%d) not deterministic: %d vs %d", seed, stream, a, b)
			}
		}
	}
}

func TestDeriveStreamsDistinct(t *testing.T) {
	const streams = 4096
	seen := make(map[int64]uint64, streams)
	for s := uint64(0); s < streams; s++ {
		v := Derive(7, s)
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on %d", prev, s, v)
		}
		seen[v] = s
	}
}

func TestDeriveSeedsDistinct(t *testing.T) {
	seen := make(map[int64]int64, 4096)
	for seed := int64(0); seed < 4096; seed++ {
		v := Derive(seed, 0)
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d collide on %d", prev, seed, v)
		}
		seen[v] = seed
	}
}

// TestMixKnownVectors pins the SplitMix64 output function to the reference
// values of the Vigna/xoshiro test vector (state 1234567 advanced by the
// golden gamma).
func TestMixKnownVectors(t *testing.T) {
	// Reference sequence generated from the canonical splitmix64.c
	// (state = 1234567): 6457827717110365317, 3203168211198807973,
	// 9817491932198370423.
	state := uint64(1234567)
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i, w := range want {
		state += gamma
		if got := mix64(state); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestNewStreamsDiverge(t *testing.T) {
	a, b := New(3, 0), New(3, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 of seed 3 overlap in %d/64 draws", same)
	}
}
