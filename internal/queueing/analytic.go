// Package queueing is the queueing-theory substrate for dcmodel.
//
// It provides the analytic models (M/M/1, M/M/c, M/G/1, open Jackson
// networks) and the discrete-event multi-station simulator that the
// in-depth modeling literature builds on (Liu et al.'s 3-tier model,
// Meisner et al.'s SQS), a simplified layered-queueing-network solver
// (Franks et al.), and a PI admission controller (Kamra et al.'s Yaksha).
// KOOZA's network model reuses the same machinery for its arrival-rate
// queue.
package queueing

import (
	"errors"
	"fmt"
	"math"

	"dcmodel/internal/errs"
)

// ErrUnstable is returned when a queueing configuration has utilization
// >= 1 and therefore no steady state. It is distinct from ErrBadConfig:
// an unstable network is a meaningful analytical answer ("this load does
// not fit this capacity"), not a malformed input.
var ErrUnstable = errors.New("queueing: utilization >= 1, no steady state")

// validNum reports whether v is a finite number — solver inputs must be
// real so NaN/Inf can never leak into results (or JSON responses) as
// silently poisoned arithmetic.
func validNum(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// badConfig wraps a validation failure in the shared errs.ErrBadConfig
// sentinel so callers (CLI tools, the daemon) branch with errors.Is.
func badConfig(format string, args ...any) error {
	return fmt.Errorf("queueing: "+format+": %w", append(args, errs.ErrBadConfig)...)
}

// MM1 is the M/M/1 queue: Poisson arrivals at rate Lambda, exponential
// service at rate Mu, one server.
type MM1 struct {
	Lambda, Mu float64
}

// NewMM1 validates and returns an M/M/1 queue. It fails when the queue is
// unstable (Lambda >= Mu) or parameters are non-positive.
func NewMM1(lambda, mu float64) (MM1, error) {
	if !validNum(lambda, mu) || lambda <= 0 || mu <= 0 {
		return MM1{}, badConfig("rates must be positive finite numbers, got lambda=%g mu=%g", lambda, mu)
	}
	if lambda >= mu {
		return MM1{}, ErrUnstable
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Utilization returns rho = Lambda/Mu.
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// MeanJobs returns the mean number of jobs in the system, rho/(1-rho).
func (q MM1) MeanJobs() float64 {
	rho := q.Utilization()
	return rho / (1 - rho)
}

// MeanResponse returns the mean sojourn (response) time, 1/(Mu-Lambda).
func (q MM1) MeanResponse() float64 { return 1 / (q.Mu - q.Lambda) }

// MeanWait returns the mean waiting time in queue, rho/(Mu-Lambda).
func (q MM1) MeanWait() float64 { return q.Utilization() / (q.Mu - q.Lambda) }

// ProbN returns the steady-state probability of n jobs in the system.
func (q MM1) ProbN(n int) float64 {
	if n < 0 {
		return 0
	}
	rho := q.Utilization()
	return (1 - rho) * math.Pow(rho, float64(n))
}

// ResponseQuantile returns the p-quantile of the (exponential) response
// time distribution.
func (q MM1) ResponseQuantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) * q.MeanResponse()
}

// MMc is the M/M/c queue: Poisson arrivals, exponential service, c servers.
type MMc struct {
	Lambda, Mu float64
	C          int
}

// NewMMc validates and returns an M/M/c queue.
func NewMMc(lambda, mu float64, c int) (MMc, error) {
	if !validNum(lambda, mu) || lambda <= 0 || mu <= 0 || c < 1 {
		return MMc{}, badConfig("invalid M/M/c parameters lambda=%g mu=%g c=%d", lambda, mu, c)
	}
	if lambda >= mu*float64(c) {
		return MMc{}, ErrUnstable
	}
	return MMc{Lambda: lambda, Mu: mu, C: c}, nil
}

// Utilization returns per-server utilization rho = Lambda/(c*Mu).
func (q MMc) Utilization() float64 { return q.Lambda / (q.Mu * float64(q.C)) }

// ErlangC returns the probability an arriving job must wait (all servers
// busy), the Erlang-C formula.
func (q MMc) ErlangC() float64 {
	c := q.C
	a := q.Lambda / q.Mu // offered load
	rho := q.Utilization()
	// Compute iteratively to avoid factorial overflow.
	term := 1.0 // a^0/0!
	sum := term
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	term *= a / float64(c) // a^c/c!
	top := term / (1 - rho)
	return top / (sum + top)
}

// MeanWait returns the mean waiting time in queue.
func (q MMc) MeanWait() float64 {
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanResponse returns the mean response time.
func (q MMc) MeanResponse() float64 { return q.MeanWait() + 1/q.Mu }

// MeanJobs returns the mean number of jobs in the system (Little's law).
func (q MMc) MeanJobs() float64 { return q.Lambda * q.MeanResponse() }

// MG1 is the M/G/1 queue: Poisson arrivals at rate Lambda and a general
// service distribution with the given mean and variance
// (Pollaczek-Khinchine).
type MG1 struct {
	Lambda, MeanService, VarService float64
}

// NewMG1 validates and returns an M/G/1 queue.
func NewMG1(lambda, meanService, varService float64) (MG1, error) {
	if !validNum(lambda, meanService, varService) || lambda <= 0 || meanService <= 0 || varService < 0 {
		return MG1{}, badConfig("invalid M/G/1 parameters lambda=%g mean=%g var=%g", lambda, meanService, varService)
	}
	if lambda*meanService >= 1 {
		return MG1{}, ErrUnstable
	}
	return MG1{Lambda: lambda, MeanService: meanService, VarService: varService}, nil
}

// Utilization returns rho = Lambda * E[S].
func (q MG1) Utilization() float64 { return q.Lambda * q.MeanService }

// MeanWait returns the Pollaczek-Khinchine mean waiting time
// lambda * E[S^2] / (2 (1 - rho)).
func (q MG1) MeanWait() float64 {
	es2 := q.VarService + q.MeanService*q.MeanService
	return q.Lambda * es2 / (2 * (1 - q.Utilization()))
}

// MeanResponse returns the mean response time.
func (q MG1) MeanResponse() float64 { return q.MeanWait() + q.MeanService }

// MeanJobs returns the mean number of jobs in the system (Little's law).
func (q MG1) MeanJobs() float64 { return q.Lambda * q.MeanResponse() }

// GG1 is the G/G/1 queue approximated by Kingman's formula: general
// interarrival and service distributions summarized by their means and
// squared coefficients of variation.
type GG1 struct {
	// Lambda is the arrival rate; SCVArrival the interarrival SCV.
	Lambda, SCVArrival float64
	// MeanService is the mean service time; SCVService its SCV.
	MeanService, SCVService float64
}

// NewGG1 validates and returns a G/G/1 queue.
func NewGG1(lambda, scvA, meanS, scvS float64) (GG1, error) {
	if !validNum(lambda, scvA, meanS, scvS) || lambda <= 0 || meanS <= 0 || scvA < 0 || scvS < 0 {
		return GG1{}, badConfig("invalid G/G/1 parameters lambda=%g scvA=%g mean=%g scvS=%g", lambda, scvA, meanS, scvS)
	}
	if lambda*meanS >= 1 {
		return GG1{}, ErrUnstable
	}
	return GG1{Lambda: lambda, SCVArrival: scvA, MeanService: meanS, SCVService: scvS}, nil
}

// Utilization returns rho = Lambda * E[S].
func (q GG1) Utilization() float64 { return q.Lambda * q.MeanService }

// MeanWait returns Kingman's approximation
// Wq ~ (rho/(1-rho)) * ((Ca^2 + Cs^2)/2) * E[S].
func (q GG1) MeanWait() float64 {
	rho := q.Utilization()
	return rho / (1 - rho) * (q.SCVArrival + q.SCVService) / 2 * q.MeanService
}

// MeanResponse returns the approximate mean response time.
func (q GG1) MeanResponse() float64 { return q.MeanWait() + q.MeanService }
