package queueing

import (
	"errors"
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestMM1KnownValues(t *testing.T) {
	q, err := NewMM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, q.Utilization(), 0.5, 1e-12, "rho")
	approx(t, q.MeanJobs(), 1, 1e-12, "L")
	approx(t, q.MeanResponse(), 2, 1e-12, "W")
	approx(t, q.MeanWait(), 1, 1e-12, "Wq")
	approx(t, q.ProbN(0), 0.5, 1e-12, "P0")
	approx(t, q.ProbN(2), 0.125, 1e-12, "P2")
	if q.ProbN(-1) != 0 {
		t.Error("ProbN(-1) should be 0")
	}
	// Little's law: L = lambda W.
	approx(t, q.MeanJobs(), q.Lambda*q.MeanResponse(), 1e-12, "Little")
	// Median response of exponential.
	approx(t, q.ResponseQuantile(0.5), 2*math.Ln2, 1e-12, "median response")
	if q.ResponseQuantile(0) != 0 || !math.IsInf(q.ResponseQuantile(1), 1) {
		t.Error("quantile endpoints wrong")
	}
}

func TestMM1Errors(t *testing.T) {
	if _, err := NewMM1(1, 1); !errors.Is(err, ErrUnstable) {
		t.Errorf("saturated M/M/1 err = %v, want ErrUnstable", err)
	}
	if _, err := NewMM1(-1, 1); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := NewMM1(1, 0); err == nil {
		t.Error("zero mu should fail")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	q1, _ := NewMM1(0.7, 1)
	qc, err := NewMMc(0.7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, qc.MeanResponse(), q1.MeanResponse(), 1e-12, "c=1 response")
	approx(t, qc.MeanWait(), q1.MeanWait(), 1e-12, "c=1 wait")
	// Erlang-C with c=1 equals rho.
	approx(t, qc.ErlangC(), 0.7, 1e-12, "c=1 erlangC")
}

func TestMMcKnownValue(t *testing.T) {
	// Classic example: lambda=2, mu=1.2, c=2: rho=5/6,
	// ErlangC = 0.7576..., Wq = ErlangC/(c mu - lambda).
	q, err := NewMMc(2, 1.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, q.Utilization(), 5.0/6, 1e-12, "rho")
	approx(t, q.ErlangC(), 25.0/33, 1e-9, "erlangC")
	approx(t, q.MeanWait(), (25.0/33)/0.4, 1e-9, "Wq")
	approx(t, q.MeanJobs(), q.Lambda*q.MeanResponse(), 1e-12, "Little")
}

func TestMMcMoreServersLessWaiting(t *testing.T) {
	prev := math.Inf(1)
	for c := 1; c <= 6; c++ {
		q, err := NewMMc(0.9, 1, c)
		if err != nil {
			t.Fatal(err)
		}
		if w := q.MeanWait(); w >= prev {
			t.Errorf("wait with %d servers = %g, not below %g", c, w, prev)
		} else {
			prev = w
		}
	}
}

func TestMMcErrors(t *testing.T) {
	if _, err := NewMMc(2, 1, 2); !errors.Is(err, ErrUnstable) {
		t.Error("saturated M/M/c should be unstable")
	}
	if _, err := NewMMc(1, 1, 0); err == nil {
		t.Error("c=0 should fail")
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: var = mean^2; P-K must equal M/M/1.
	q1, _ := NewMM1(0.6, 1)
	qg, err := NewMG1(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, qg.MeanWait(), q1.MeanWait(), 1e-12, "exp service wait")
	approx(t, qg.MeanResponse(), q1.MeanResponse(), 1e-12, "exp service response")
}

func TestMG1Deterministic(t *testing.T) {
	// M/D/1 waits exactly half of M/M/1.
	qm, _ := NewMG1(0.6, 1, 1)
	qd, err := NewMG1(0.6, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, qd.MeanWait(), qm.MeanWait()/2, 1e-12, "M/D/1 wait")
}

func TestMG1VarianceIncreasesWait(t *testing.T) {
	prev := -1.0
	for _, v := range []float64{0, 0.5, 1, 2, 5} {
		q, err := NewMG1(0.5, 1, v)
		if err != nil {
			t.Fatal(err)
		}
		if w := q.MeanWait(); w <= prev {
			t.Errorf("wait with var %g = %g, not above %g", v, w, prev)
		} else {
			prev = w
		}
	}
}

func TestGG1ReducesToMM1AndMG1(t *testing.T) {
	// Poisson arrivals (Ca^2 = 1), exponential service (Cs^2 = 1):
	// Kingman is exact and equals M/M/1.
	q1, _ := NewMM1(0.6, 1)
	gg, err := NewGG1(0.6, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, gg.MeanWait(), q1.MeanWait(), 1e-12, "Kingman = M/M/1")
	// Poisson arrivals, deterministic service: Kingman is exact and
	// equals M/D/1.
	md1, _ := NewMG1(0.6, 1, 0)
	ggd, err := NewGG1(0.6, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ggd.MeanWait(), md1.MeanWait(), 1e-12, "Kingman = M/D/1")
	approx(t, ggd.Utilization(), 0.6, 1e-12, "rho")
	approx(t, ggd.MeanResponse(), ggd.MeanWait()+1, 1e-12, "response")
}

func TestGG1VariabilityIncreasesWait(t *testing.T) {
	prev := -1.0
	for _, scv := range []float64{0, 0.5, 1, 2, 4} {
		q, err := NewGG1(0.5, scv, 1, scv)
		if err != nil {
			t.Fatal(err)
		}
		if w := q.MeanWait(); w <= prev {
			t.Errorf("wait at SCV %g = %g, not above %g", scv, w, prev)
		} else {
			prev = w
		}
	}
}

func TestGG1Errors(t *testing.T) {
	if _, err := NewGG1(1, 1, 1, 1); !errors.Is(err, ErrUnstable) {
		t.Error("rho=1 G/G/1 should be unstable")
	}
	if _, err := NewGG1(-1, 1, 1, 1); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := NewGG1(0.5, -1, 1, 1); err == nil {
		t.Error("negative SCV should fail")
	}
}

func TestMG1Errors(t *testing.T) {
	if _, err := NewMG1(1, 1, 0); !errors.Is(err, ErrUnstable) {
		t.Error("rho=1 M/G/1 should be unstable")
	}
	if _, err := NewMG1(1, -1, 0); err == nil {
		t.Error("negative mean should fail")
	}
	if _, err := NewMG1(1, 0.5, -1); err == nil {
		t.Error("negative variance should fail")
	}
}
