package queueing

// (validation helpers badConfig/validNum live in analytic.go)

// PIController is a proportional-integral admission controller in the style
// of Yaksha (Kamra et al.): it observes the measured response time each
// control interval and adjusts the admission probability to keep response
// near a target.
type PIController struct {
	// Kp and Ki are the proportional and integral gains.
	Kp, Ki float64
	// Target is the response-time set point.
	Target float64

	prevErr   float64
	admission float64
}

// NewPIController returns a controller with full admission initially.
func NewPIController(kp, ki, target float64) (*PIController, error) {
	if !validNum(target) || target <= 0 {
		return nil, badConfig("controller target must be positive, got %g", target)
	}
	if !validNum(kp, ki) || kp < 0 || ki < 0 {
		return nil, badConfig("controller gains must be non-negative, got kp=%g ki=%g", kp, ki)
	}
	return &PIController{Kp: kp, Ki: ki, Target: target, admission: 1}, nil
}

// Admission returns the current admission probability in [0, 1].
func (c *PIController) Admission() float64 { return c.admission }

// Observe feeds one control-interval measurement of the response time and
// updates the admission probability using the velocity (incremental) PI
// form, which has implicit anti-windup against the [0.01, 1] clamps. It
// returns the new admission probability.
func (c *PIController) Observe(measuredResponse float64) float64 {
	// Positive error = response too high = admit less. The normalized
	// error is clamped so a saturated measurement cannot slam the loop.
	err := (measuredResponse - c.Target) / c.Target
	const errCap = 2
	if err > errCap {
		err = errCap
	}
	if err < -errCap {
		err = -errCap
	}
	c.admission -= c.Kp*(err-c.prevErr) + c.Ki*err
	c.prevErr = err
	if c.admission < 0.01 {
		c.admission = 0.01
	}
	if c.admission > 1 {
		c.admission = 1
	}
	return c.admission
}

// Reset returns the controller to its initial state.
func (c *PIController) Reset() {
	c.prevErr = 0
	c.admission = 1
}
