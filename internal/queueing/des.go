package queueing

import (
	"fmt"
	"math/rand"

	"dcmodel/internal/stats"
)

// The discrete-event simulator: an open multi-station queueing network in
// which each job follows a per-class path of stations with FIFO queues and
// a configurable number of servers per station. This is the machinery
// behind the in-depth baseline (3-tier web model) and the SQS-style
// evaluation loop.

// Station configures one service station.
type Station struct {
	// Name labels the station in results.
	Name string
	// Servers is the number of parallel servers (>= 1).
	Servers int
	// Service is the default service-time distribution, used when the
	// job's class does not override it.
	Service stats.Dist
}

// Class describes a job class: its share of the arrival stream, the path of
// stations it visits, and optional per-step service-time overrides.
type Class struct {
	// Name labels the class.
	Name string
	// Weight is the relative probability of an arrival belonging to this
	// class. Weights are normalized internally.
	Weight float64
	// Path lists station indices in visit order.
	Path []int
	// Service optionally overrides the per-step service distribution; if
	// non-nil it must have len(Path) entries (nil entries fall back to the
	// station default).
	Service []stats.Dist
}

// Config configures a simulation run.
type Config struct {
	Stations []Station
	Classes  []Class
	// Interarrival is the distribution of times between consecutive
	// external arrivals (all arrivals enter at their class path's first
	// station).
	Interarrival stats.Dist
	// NumJobs is the number of jobs to complete before stopping.
	NumJobs int
	// Warmup is the number of initial completed jobs excluded from the
	// reported job records and station statistics' response aggregates.
	Warmup int
}

// StepRecord is one station visit of a completed job.
type StepRecord struct {
	Station int
	// Enter is the time the job arrived at the station.
	Enter float64
	// Wait is the queueing delay before service started.
	Wait float64
	// Service is the service duration.
	Service float64
}

// JobRecord is one completed job.
type JobRecord struct {
	ID      int
	Class   int
	Arrival float64
	// Completion is the time the job left its last station.
	Completion float64
	Steps      []StepRecord
}

// Response returns the end-to-end sojourn time.
func (j JobRecord) Response() float64 { return j.Completion - j.Arrival }

// StationStats aggregates a station's steady-state measurements.
type StationStats struct {
	Name string
	// Utilization is busy-server-time / (servers * makespan).
	Utilization float64
	// MeanQueueLen is the time-averaged number of jobs at the station
	// (waiting + in service).
	MeanQueueLen float64
	// MeanWait and MeanService average over post-warmup visits.
	MeanWait    float64
	MeanService float64
	// Visits counts post-warmup station visits.
	Visits int
}

// Result is the outcome of a simulation run.
type Result struct {
	// Jobs holds the post-warmup completed jobs in completion order.
	Jobs []JobRecord
	// Stations holds per-station statistics.
	Stations []StationStats
	// Makespan is the completion time of the last job.
	Makespan float64
	// Throughput is completed jobs (including warmup) divided by makespan.
	Throughput float64
}

// Responses extracts the end-to-end response times of all recorded jobs.
func (r Result) Responses() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.Response()
	}
	return out
}

type eventKind int

const (
	evArrival eventKind = iota
	evDeparture
)

type event struct {
	time    float64
	kind    eventKind
	job     *desJob
	station int
	seq     int // tie-breaker for determinism
}

// eventHeap is a typed binary min-heap ordered by (time, seq). Hand-rolled
// instead of container/heap so push and pop move concrete events with no
// interface{} boxing — the heap is the hottest structure in the simulator.
// (time, seq) is a total order, so pop order is independent of the heap's
// internal layout and matches any correct heap implementation.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

type desJob struct {
	id      int
	class   int
	arrival float64
	step    int
	steps   []StepRecord
	enter   float64 // time entered current station
}

type desStation struct {
	cfg      Station
	queue    []*desJob
	busy     int
	lastT    float64 // last time the population changed
	area     float64 // integral of population over time
	busyArea float64 // integral of busy servers over time
	pop      int

	waitSum, svcSum float64
	visits          int
}

func (s *desStation) account(now float64) {
	dt := now - s.lastT
	s.area += dt * float64(s.pop)
	s.busyArea += dt * float64(s.busy)
	s.lastT = now
}

// Simulate runs the network until cfg.NumJobs jobs complete, using r for
// all randomness. It validates the configuration and returns per-job and
// per-station statistics.
func Simulate(cfg Config, r *rand.Rand) (Result, error) {
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	stations := make([]*desStation, len(cfg.Stations))
	for i, sc := range cfg.Stations {
		stations[i] = &desStation{cfg: sc}
	}
	weights := make([]float64, len(cfg.Classes))
	for i, c := range cfg.Classes {
		weights[i] = c.Weight
	}
	classAlias, err := stats.NewAlias(weights)
	if err != nil {
		return Result{}, fmt.Errorf("queueing: class weights: %w", err)
	}
	pickClass := func() int { return classAlias.Draw(r) }
	serviceFor := func(class, step int) stats.Dist {
		c := cfg.Classes[class]
		if c.Service != nil && c.Service[step] != nil {
			return c.Service[step]
		}
		return cfg.Stations[c.Path[step]].Service
	}

	var (
		h         eventHeap
		seq       int
		completed int
		nextID    int
		result    Result
	)
	push := func(e event) {
		e.seq = seq
		seq++
		h.push(e)
	}
	scheduleArrival := func(now float64) {
		class := pickClass()
		j := &desJob{id: nextID, class: class, arrival: now}
		nextID++
		push(event{time: now, kind: evArrival, job: j, station: cfg.Classes[class].Path[0]})
	}
	startService := func(st *desStation, sIdx int, j *desJob, now float64) {
		st.busy++
		svc := serviceFor(j.class, j.step).Rand(r)
		if svc < 0 {
			svc = 0
		}
		wait := now - j.enter
		j.steps = append(j.steps, StepRecord{Station: sIdx, Enter: j.enter, Wait: wait, Service: svc})
		push(event{time: now + svc, kind: evDeparture, job: j, station: sIdx})
	}

	// Prime the arrival-generation chain: each external arrival schedules
	// the next one.
	firstGap := cfg.Interarrival.Rand(r)
	if firstGap < 0 {
		firstGap = 0
	}
	arrivalsScheduled := 1
	scheduleArrival(firstGap)

	var now float64
	for completed < cfg.NumJobs && h.Len() > 0 {
		e := h.pop()
		now = e.time
		switch e.kind {
		case evArrival:
			j := e.job
			if j.step == 0 && arrivalsScheduled < cfg.NumJobs*4 {
				// External arrival: schedule the next one (bounded to
				// avoid unbounded event growth under heavy backlog).
				gap := cfg.Interarrival.Rand(r)
				if gap < 0 {
					gap = 0
				}
				arrivalsScheduled++
				scheduleArrival(now + gap)
			}
			st := stations[e.station]
			st.account(now)
			st.pop++
			j.enter = now
			if st.busy < st.cfg.Servers {
				startService(st, e.station, j, now)
			} else {
				st.queue = append(st.queue, j)
			}
		case evDeparture:
			st := stations[e.station]
			st.account(now)
			st.pop--
			st.busy--
			j := e.job
			step := j.steps[len(j.steps)-1]
			if completed >= cfg.Warmup {
				st.waitSum += step.Wait
				st.svcSum += step.Service
				st.visits++
			}
			// Next waiting job starts service.
			if len(st.queue) > 0 {
				next := st.queue[0]
				st.queue = st.queue[1:]
				startService(st, e.station, next, now)
			}
			// Advance the departing job.
			j.step++
			path := cfg.Classes[j.class].Path
			if j.step < len(path) {
				push(event{time: now, kind: evArrival, job: j, station: path[j.step]})
			} else {
				completed++
				if completed > cfg.Warmup {
					result.Jobs = append(result.Jobs, JobRecord{
						ID: j.id, Class: j.class, Arrival: j.arrival,
						Completion: now, Steps: j.steps,
					})
				}
			}
		}
	}
	result.Makespan = now
	if now > 0 {
		result.Throughput = float64(completed) / now
	}
	result.Stations = make([]StationStats, len(stations))
	for i, st := range stations {
		st.account(now)
		ss := StationStats{Name: st.cfg.Name, Visits: st.visits}
		if now > 0 {
			ss.Utilization = st.busyArea / (now * float64(st.cfg.Servers))
			ss.MeanQueueLen = st.area / now
		}
		if st.visits > 0 {
			ss.MeanWait = st.waitSum / float64(st.visits)
			ss.MeanService = st.svcSum / float64(st.visits)
		}
		result.Stations[i] = ss
	}
	return result, nil
}

func validate(cfg Config) error {
	if len(cfg.Stations) == 0 {
		return fmt.Errorf("queueing: simulation needs at least one station")
	}
	if len(cfg.Classes) == 0 {
		return fmt.Errorf("queueing: simulation needs at least one class")
	}
	if cfg.Interarrival == nil {
		return fmt.Errorf("queueing: simulation needs an interarrival distribution")
	}
	if cfg.NumJobs < 1 {
		return fmt.Errorf("queueing: NumJobs must be positive, got %d", cfg.NumJobs)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.NumJobs {
		return fmt.Errorf("queueing: Warmup %d out of range [0, %d)", cfg.Warmup, cfg.NumJobs)
	}
	for i, s := range cfg.Stations {
		if s.Servers < 1 {
			return fmt.Errorf("queueing: station %d (%s) needs >= 1 server", i, s.Name)
		}
		if s.Service == nil {
			return fmt.Errorf("queueing: station %d (%s) needs a service distribution", i, s.Name)
		}
	}
	var wsum float64
	for i, c := range cfg.Classes {
		if c.Weight < 0 {
			return fmt.Errorf("queueing: class %d (%s) has negative weight", i, c.Name)
		}
		wsum += c.Weight
		if len(c.Path) == 0 {
			return fmt.Errorf("queueing: class %d (%s) has an empty path", i, c.Name)
		}
		for _, st := range c.Path {
			if st < 0 || st >= len(cfg.Stations) {
				return fmt.Errorf("queueing: class %d (%s) references station %d out of range", i, c.Name, st)
			}
		}
		if c.Service != nil && len(c.Service) != len(c.Path) {
			return fmt.Errorf("queueing: class %d (%s) service overrides length %d, want %d", i, c.Name, len(c.Service), len(c.Path))
		}
	}
	if wsum <= 0 {
		return fmt.Errorf("queueing: class weights must sum to a positive value")
	}
	return nil
}
