package queueing

import (
	"math/rand"
	"testing"

	"dcmodel/internal/stats"
)

// benchDESConfig is a small 3-tier open network, the shape the in-depth
// baseline and the SQS evaluation loop simulate.
func benchDESConfig(jobs int) Config {
	return Config{
		Stations: []Station{
			{Name: "web", Servers: 2, Service: stats.Exponential{Rate: 200}},
			{Name: "app", Servers: 2, Service: stats.Exponential{Rate: 150}},
			{Name: "db", Servers: 1, Service: stats.Exponential{Rate: 120}},
		},
		Classes: []Class{
			{Name: "read", Weight: 0.7, Path: []int{0, 1, 2}},
			{Name: "write", Weight: 0.3, Path: []int{0, 1, 2, 1, 0}},
		},
		Interarrival: stats.Exponential{Rate: 40},
		NumJobs:      jobs,
		Warmup:       jobs / 10,
	}
}

// BenchmarkDESSimulate times the discrete-event core: the typed event heap
// (no interface{} boxing per push/pop) is the hot structure.
func BenchmarkDESSimulate(b *testing.B) {
	cfg := benchDESConfig(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		if _, err := Simulate(cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}
