package queueing

import (
	"math/rand"
	"testing"

	"dcmodel/internal/stats"
)

func mm1Config(lambda, mu float64, jobs int) Config {
	return Config{
		Stations:     []Station{{Name: "s", Servers: 1, Service: stats.Exponential{Rate: mu}}},
		Classes:      []Class{{Name: "c", Weight: 1, Path: []int{0}}},
		Interarrival: stats.Exponential{Rate: lambda},
		NumJobs:      jobs,
		Warmup:       jobs / 10,
	}
}

func TestSimulateMatchesMM1(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	res, err := Simulate(mm1Config(0.5, 1, 60000), r)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMM1(0.5, 1)
	got := stats.Mean(res.Responses())
	approx(t, got, q.MeanResponse(), 0.1, "simulated mean response vs M/M/1")
	approx(t, res.Stations[0].Utilization, 0.5, 0.02, "utilization")
	approx(t, res.Stations[0].MeanQueueLen, q.MeanJobs(), 0.15, "mean jobs")
	approx(t, res.Throughput, 0.5, 0.02, "throughput")
}

func TestSimulateMatchesMMc(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	cfg := mm1Config(1.7, 1, 60000)
	cfg.Stations[0].Servers = 2
	res, err := Simulate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMMc(1.7, 1, 2)
	approx(t, stats.Mean(res.Responses()), q.MeanResponse(), 0.25, "M/M/2 response")
	approx(t, res.Stations[0].Utilization, q.Utilization(), 0.03, "M/M/2 utilization")
}

func TestSimulateMatchesMD1(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	cfg := mm1Config(0.6, 0, 60000)
	cfg.Stations[0].Service = stats.Deterministic{Value: 1}
	res, err := Simulate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMG1(0.6, 1, 0)
	approx(t, stats.Mean(res.Responses()), q.MeanResponse(), 0.08, "M/D/1 response")
}

func TestSimulateTandemMatchesJackson(t *testing.T) {
	// web -> app -> db with Poisson arrivals: the DES should agree with the
	// Jackson product-form solution.
	r := rand.New(rand.NewSource(203))
	cfg := Config{
		Stations: []Station{
			{Name: "web", Servers: 1, Service: stats.Exponential{Rate: 4}},
			{Name: "app", Servers: 1, Service: stats.Exponential{Rate: 3}},
			{Name: "db", Servers: 1, Service: stats.Exponential{Rate: 5}},
		},
		Classes:      []Class{{Name: "req", Weight: 1, Path: []int{0, 1, 2}}},
		Interarrival: stats.Exponential{Rate: 2},
		NumJobs:      60000,
		Warmup:       6000,
	}
	res, err := Simulate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	net, err := TandemNetwork([]string{"web", "app", "db"}, []float64{4, 3, 5}, []int{1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, stats.Mean(res.Responses()), sol.MeanResponse, 0.12, "tandem response vs Jackson")
	for i := range res.Stations {
		approx(t, res.Stations[i].Utilization, sol.Nodes[i].Utilization, 0.03, "tier utilization "+res.Stations[i].Name)
	}
}

func TestSimulateMultiClass(t *testing.T) {
	// Two classes with different paths; class mix should match weights.
	r := rand.New(rand.NewSource(204))
	cfg := Config{
		Stations: []Station{
			{Name: "a", Servers: 1, Service: stats.Exponential{Rate: 10}},
			{Name: "b", Servers: 1, Service: stats.Exponential{Rate: 10}},
		},
		Classes: []Class{
			{Name: "short", Weight: 3, Path: []int{0}},
			{Name: "long", Weight: 1, Path: []int{0, 1}},
		},
		Interarrival: stats.Exponential{Rate: 2},
		NumJobs:      20000,
	}
	res, err := Simulate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	var short int
	for _, j := range res.Jobs {
		if j.Class == 0 {
			short++
		}
	}
	frac := float64(short) / float64(len(res.Jobs))
	approx(t, frac, 0.75, 0.02, "class mix")
	// Class service overrides.
	cfg.Classes[1].Service = []stats.Dist{stats.Deterministic{Value: 0.001}, nil}
	res2, err := Simulate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res2.Jobs {
		if j.Class == 1 && j.Steps[0].Service != 0.001 {
			t.Fatalf("service override not applied: %v", j.Steps[0])
		}
	}
}

func TestSimulateConservation(t *testing.T) {
	// Every recorded job has monotone step times and response >= total
	// service.
	r := rand.New(rand.NewSource(205))
	res, err := Simulate(mm1Config(0.8, 1, 5000), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 5000-500 {
		t.Fatalf("recorded %d jobs, want %d", len(res.Jobs), 4500)
	}
	for _, j := range res.Jobs {
		var svc, wait float64
		for _, s := range j.Steps {
			if s.Enter < j.Arrival-1e-9 {
				t.Fatalf("step enters before arrival: %+v", j)
			}
			svc += s.Service
			wait += s.Wait
		}
		if j.Response() < svc-1e-9 {
			t.Fatalf("response %g below service %g", j.Response(), svc)
		}
		approx(t, j.Response(), svc+wait, 1e-6, "response = wait + service")
	}
}

func TestSimulateDeterministicNoWait(t *testing.T) {
	// Arrivals slower than deterministic service: nobody waits.
	r := rand.New(rand.NewSource(206))
	cfg := Config{
		Stations:     []Station{{Name: "s", Servers: 1, Service: stats.Deterministic{Value: 1}}},
		Classes:      []Class{{Name: "c", Weight: 1, Path: []int{0}}},
		Interarrival: stats.Deterministic{Value: 2},
		NumJobs:      100,
	}
	res, err := Simulate(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		approx(t, j.Response(), 1, 1e-9, "no-wait response")
	}
	approx(t, res.Stations[0].MeanWait, 0, 1e-9, "no waiting")
	approx(t, res.Stations[0].Utilization, 0.5, 0.02, "D/D/1 utilization")
}

func TestSimulateValidation(t *testing.T) {
	r := rand.New(rand.NewSource(207))
	base := mm1Config(0.5, 1, 100)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no stations", func(c *Config) { c.Stations = nil }},
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"nil interarrival", func(c *Config) { c.Interarrival = nil }},
		{"zero jobs", func(c *Config) { c.NumJobs = 0 }},
		{"warmup too large", func(c *Config) { c.Warmup = 100 }},
		{"zero servers", func(c *Config) { c.Stations[0].Servers = 0 }},
		{"nil service", func(c *Config) { c.Stations[0].Service = nil }},
		{"empty path", func(c *Config) { c.Classes[0].Path = nil }},
		{"bad station ref", func(c *Config) { c.Classes[0].Path = []int{5} }},
		{"negative weight", func(c *Config) { c.Classes[0].Weight = -1 }},
		{"zero weights", func(c *Config) { c.Classes[0].Weight = 0 }},
		{"override length", func(c *Config) { c.Classes[0].Service = []stats.Dist{nil, nil} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := mm1Config(0.5, 1, 100)
			cfg.Stations = append([]Station(nil), cfg.Stations...)
			cfg.Classes = append([]Class(nil), cfg.Classes...)
			tt.mutate(&cfg)
			if _, err := Simulate(cfg, r); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := Simulate(base, r); err != nil {
		t.Errorf("base config should be valid: %v", err)
	}
}

func TestSimulateDeterministicSeed(t *testing.T) {
	res1, err := Simulate(mm1Config(0.5, 1, 2000), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Simulate(mm1Config(0.5, 1, 2000), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Makespan != res2.Makespan || len(res1.Jobs) != len(res2.Jobs) {
		t.Error("same seed should reproduce the run exactly")
	}
	for i := range res1.Jobs {
		if res1.Jobs[i].Completion != res2.Jobs[i].Completion {
			t.Fatal("job completions differ under same seed")
		}
	}
}
