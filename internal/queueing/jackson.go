package queueing

import (
	"fmt"

	"dcmodel/internal/stats"
)

// JacksonNode describes one station of an open Jackson network.
type JacksonNode struct {
	// Name labels the node in results.
	Name string
	// Mu is the exponential service rate per server.
	Mu float64
	// Servers is the number of parallel servers (>= 1).
	Servers int
	// External is the external Poisson arrival rate into this node.
	External float64
}

// JacksonNetwork is an open Jackson network: Poisson external arrivals,
// exponential services, probabilistic routing. Liu et al.'s 3-tier web
// model is an instance with chain routing web -> app -> db.
type JacksonNetwork struct {
	Nodes []JacksonNode
	// Routing[i][j] is the probability a job leaving node i proceeds to
	// node j; the remainder 1 - sum_j Routing[i][j] exits the network.
	Routing [][]float64
}

// JacksonNodeResult reports the per-node steady-state metrics.
type JacksonNodeResult struct {
	Name         string
	Arrival      float64 // effective arrival rate (traffic equations)
	Utilization  float64
	MeanJobs     float64
	MeanResponse float64
}

// JacksonResult reports the network steady state.
type JacksonResult struct {
	Nodes []JacksonNodeResult
	// Throughput is the total external arrival rate (= exit rate).
	Throughput float64
	// MeanJobs is the total mean population.
	MeanJobs float64
	// MeanResponse is the end-to-end mean response time by Little's law.
	MeanResponse float64
}

// Solve computes the steady state of the network: it solves the traffic
// equations lambda_j = gamma_j + sum_i lambda_i R[i][j], then applies
// per-node M/M/c formulas (product form).
func (n *JacksonNetwork) Solve() (JacksonResult, error) {
	k := len(n.Nodes)
	if k == 0 {
		return JacksonResult{}, badConfig("jackson network has no nodes")
	}
	for i, node := range n.Nodes {
		if !validNum(node.Mu, node.External) || node.Mu <= 0 || node.External < 0 {
			return JacksonResult{}, badConfig("node %d (%s) needs a positive finite service rate and non-negative external arrivals, got mu=%g external=%g",
				i, node.Name, node.Mu, node.External)
		}
	}
	if len(n.Routing) != k {
		return JacksonResult{}, badConfig("routing matrix has %d rows, want %d", len(n.Routing), k)
	}
	for i, row := range n.Routing {
		if len(row) != k {
			return JacksonResult{}, badConfig("routing row %d has %d cols, want %d", i, len(row), k)
		}
		var sum float64
		for _, p := range row {
			if !validNum(p) || p < 0 {
				return JacksonResult{}, badConfig("invalid routing probability %g at row %d", p, i)
			}
			sum += p
		}
		if sum > 1+1e-9 {
			return JacksonResult{}, badConfig("routing row %d sums to %g > 1", i, sum)
		}
	}
	// Traffic equations: (I - R^T) lambda = gamma.
	a := stats.NewMatrix(k, k)
	gamma := make([]float64, k)
	var totalExternal float64
	for i := 0; i < k; i++ {
		gamma[i] = n.Nodes[i].External
		totalExternal += gamma[i]
		for j := 0; j < k; j++ {
			v := 0.0
			if i == j {
				v = 1
			}
			a.Set(i, j, v-n.Routing[j][i])
		}
	}
	if totalExternal <= 0 {
		return JacksonResult{}, badConfig("open network needs positive external arrivals")
	}
	lambda, err := stats.SolveLinear(a, gamma)
	if err != nil {
		return JacksonResult{}, fmt.Errorf("queueing: traffic equations: %w", err)
	}
	res := JacksonResult{Throughput: totalExternal}
	for i, node := range n.Nodes {
		servers := node.Servers
		if servers < 1 {
			servers = 1
		}
		var nodeRes JacksonNodeResult
		nodeRes.Name = node.Name
		nodeRes.Arrival = lambda[i]
		if lambda[i] <= 0 {
			res.Nodes = append(res.Nodes, nodeRes)
			continue
		}
		if servers == 1 {
			q, err := NewMM1(lambda[i], node.Mu)
			if err != nil {
				return JacksonResult{}, fmt.Errorf("queueing: node %s: %w", node.Name, err)
			}
			nodeRes.Utilization = q.Utilization()
			nodeRes.MeanJobs = q.MeanJobs()
			nodeRes.MeanResponse = q.MeanResponse()
		} else {
			q, err := NewMMc(lambda[i], node.Mu, servers)
			if err != nil {
				return JacksonResult{}, fmt.Errorf("queueing: node %s: %w", node.Name, err)
			}
			nodeRes.Utilization = q.Utilization()
			nodeRes.MeanJobs = q.MeanJobs()
			nodeRes.MeanResponse = q.MeanResponse()
		}
		res.MeanJobs += nodeRes.MeanJobs
		res.Nodes = append(res.Nodes, nodeRes)
	}
	res.MeanResponse = res.MeanJobs / totalExternal
	return res, nil
}

// TandemNetwork builds the chain routing network web -> app -> db (every
// job visits all tiers once) with the given per-tier service rates and
// external arrival rate into the first tier. It is the canonical 3-tier
// in-depth model.
func TandemNetwork(names []string, mus []float64, servers []int, lambda float64) (*JacksonNetwork, error) {
	k := len(names)
	if k == 0 || len(mus) != k || len(servers) != k {
		return nil, badConfig("tandem needs matching names/mus/servers, got %d/%d/%d", len(names), len(mus), len(servers))
	}
	n := &JacksonNetwork{
		Nodes:   make([]JacksonNode, k),
		Routing: make([][]float64, k),
	}
	for i := 0; i < k; i++ {
		n.Nodes[i] = JacksonNode{Name: names[i], Mu: mus[i], Servers: servers[i]}
		n.Routing[i] = make([]float64, k)
		if i+1 < k {
			n.Routing[i][i+1] = 1
		}
	}
	n.Nodes[0].External = lambda
	return n, nil
}
