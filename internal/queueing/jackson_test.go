package queueing

import (
	"testing"
)

func TestJacksonSingleNodeIsMM1(t *testing.T) {
	net := &JacksonNetwork{
		Nodes:   []JacksonNode{{Name: "s", Mu: 1, Servers: 1, External: 0.5}},
		Routing: [][]float64{{0}},
	}
	res, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMM1(0.5, 1)
	approx(t, res.MeanResponse, q.MeanResponse(), 1e-12, "single node response")
	approx(t, res.Nodes[0].Utilization, 0.5, 1e-12, "utilization")
	approx(t, res.Throughput, 0.5, 1e-12, "throughput")
}

func TestJacksonTandem(t *testing.T) {
	net, err := TandemNetwork([]string{"web", "app", "db"}, []float64{4, 3, 5}, []int{1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Tandem of M/M/1: W = sum 1/(mu_i - lambda).
	want := 1/(4-2.0) + 1/(3-2.0) + 1/(5-2.0)
	approx(t, res.MeanResponse, want, 1e-9, "tandem response")
	for _, node := range res.Nodes {
		approx(t, node.Arrival, 2, 1e-9, "tandem arrival rate "+node.Name)
	}
}

func TestJacksonFeedback(t *testing.T) {
	// Single node with feedback probability p=0.5: effective arrival
	// lambda/(1-p).
	net := &JacksonNetwork{
		Nodes:   []JacksonNode{{Name: "s", Mu: 10, Servers: 1, External: 2}},
		Routing: [][]float64{{0.5}},
	}
	res, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Nodes[0].Arrival, 4, 1e-9, "feedback effective arrival")
	q, _ := NewMM1(4, 10)
	approx(t, res.Nodes[0].MeanJobs, q.MeanJobs(), 1e-9, "feedback mean jobs")
}

func TestJacksonMultiServerNode(t *testing.T) {
	net := &JacksonNetwork{
		Nodes:   []JacksonNode{{Name: "s", Mu: 1, Servers: 3, External: 2}},
		Routing: [][]float64{{0}},
	}
	res, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMMc(2, 1, 3)
	approx(t, res.Nodes[0].MeanResponse, q.MeanResponse(), 1e-9, "M/M/3 node")
}

func TestJacksonErrors(t *testing.T) {
	tests := []struct {
		name string
		net  JacksonNetwork
	}{
		{"no nodes", JacksonNetwork{}},
		{"routing rows", JacksonNetwork{Nodes: []JacksonNode{{Mu: 1, Servers: 1, External: 0.1}}}},
		{"routing cols", JacksonNetwork{
			Nodes:   []JacksonNode{{Mu: 1, Servers: 1, External: 0.1}},
			Routing: [][]float64{{0, 0}},
		}},
		{"negative prob", JacksonNetwork{
			Nodes:   []JacksonNode{{Mu: 1, Servers: 1, External: 0.1}},
			Routing: [][]float64{{-0.5}},
		}},
		{"row over 1", JacksonNetwork{
			Nodes:   []JacksonNode{{Mu: 1, Servers: 1, External: 0.1}},
			Routing: [][]float64{{1.5}},
		}},
		{"no external", JacksonNetwork{
			Nodes:   []JacksonNode{{Mu: 1, Servers: 1}},
			Routing: [][]float64{{0}},
		}},
		{"unstable node", JacksonNetwork{
			Nodes:   []JacksonNode{{Mu: 1, Servers: 1, External: 2}},
			Routing: [][]float64{{0}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.net.Solve(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestTandemNetworkErrors(t *testing.T) {
	if _, err := TandemNetwork(nil, nil, nil, 1); err == nil {
		t.Error("empty tandem should fail")
	}
	if _, err := TandemNetwork([]string{"a"}, []float64{1, 2}, []int{1}, 1); err == nil {
		t.Error("mismatched tandem should fail")
	}
}

func TestLQNSingleTaskIsMM1(t *testing.T) {
	l := &LQN{
		Tasks:  []LQNTask{{Name: "t", Demand: 1, Servers: 1}},
		Lambda: 0.5,
	}
	res, err := l.Solve()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMM1(0.5, 1)
	approx(t, res[0].Response, q.MeanResponse(), 1e-12, "single-task LQN")
	approx(t, res[0].Utilization, 0.5, 1e-12, "utilization")
}

func TestLQNLayered(t *testing.T) {
	// Top task calls the bottom task twice per invocation; the bottom
	// response is folded into the top's effective service time (nested
	// possession).
	l := &LQN{
		Tasks: []LQNTask{
			{Name: "web", Demand: 0.01, Servers: 4, Calls: map[int]float64{1: 2}},
			{Name: "db", Demand: 0.02, Servers: 1},
		},
		Lambda: 5,
	}
	res, err := l.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// db throughput = 5 * 2 = 10; db is M/M/1 with mu = 50.
	approx(t, res[1].Throughput, 10, 1e-12, "db throughput")
	qdb, _ := NewMM1(10, 50)
	approx(t, res[1].Response, qdb.MeanResponse(), 1e-12, "db response")
	wantService := 0.01 + 2*res[1].Response
	approx(t, res[0].ServiceTime, wantService, 1e-12, "web effective service")
	if res[0].Response <= res[0].ServiceTime {
		t.Error("web response should include queueing above service time")
	}
}

func TestLQNErrors(t *testing.T) {
	if _, err := (&LQN{}).Solve(); err == nil {
		t.Error("empty LQN should fail")
	}
	if _, err := (&LQN{Tasks: []LQNTask{{Demand: 1, Servers: 1}}, Lambda: 0}).Solve(); err == nil {
		t.Error("zero lambda should fail")
	}
	if _, err := (&LQN{Tasks: []LQNTask{{Demand: 1, Servers: 0}}, Lambda: 1}).Solve(); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := (&LQN{Tasks: []LQNTask{{Demand: -1, Servers: 1}}, Lambda: 1}).Solve(); err == nil {
		t.Error("negative demand should fail")
	}
	// Upward call violates top-down layering.
	if _, err := (&LQN{
		Tasks: []LQNTask{
			{Demand: 0.1, Servers: 1, Calls: map[int]float64{0: 1}},
		},
		Lambda: 1,
	}).Solve(); err == nil {
		t.Error("self/upward call should fail")
	}
	// Saturated bottom layer.
	if _, err := (&LQN{
		Tasks:  []LQNTask{{Name: "t", Demand: 1, Servers: 1}},
		Lambda: 2,
	}).Solve(); err == nil {
		t.Error("saturated LQN should fail")
	}
}

func TestLQNNumParams(t *testing.T) {
	l := &LQN{
		Tasks: []LQNTask{
			{Demand: 1, Servers: 1, Calls: map[int]float64{1: 1}},
			{Demand: 1, Servers: 1},
		},
		Lambda: 0.1,
	}
	if got := l.NumParams(); got != 1+3+2 {
		t.Errorf("NumParams = %d, want 6", got)
	}
}

func TestPIControllerConverges(t *testing.T) {
	// Closed loop against an analytic M/M/1: offered load 2.0 saturates
	// the mu=1 server, so the controller must shed load until response
	// is near target.
	ctl, err := NewPIController(0.05, 0.02, 4)
	if err != nil {
		t.Fatal(err)
	}
	offered := 2.0
	var response float64
	for i := 0; i < 400; i++ {
		admitted := offered * ctl.Admission()
		if admitted >= 1 {
			response = 100 // saturated: huge measured latency
		} else {
			q, err := NewMM1(admitted, 1)
			if err != nil {
				t.Fatal(err)
			}
			response = q.MeanResponse()
		}
		ctl.Observe(response)
	}
	approx(t, response, 4, 1.0, "controlled response near target")
	// Target response 4 on M/M/1 mu=1 means lambda = 0.75.
	approx(t, offered*ctl.Admission(), 0.75, 0.15, "admitted load")
}

func TestPIControllerBounds(t *testing.T) {
	ctl, err := NewPIController(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Huge error must clamp admission to [0.01, 1].
	if a := ctl.Observe(1000); a < 0.01 || a > 1 {
		t.Errorf("admission %g out of bounds", a)
	}
	for i := 0; i < 100; i++ {
		ctl.Observe(1000)
	}
	if a := ctl.Admission(); a != 0.01 {
		t.Errorf("admission floor = %g, want 0.01", a)
	}
	ctl.Reset()
	if ctl.Admission() != 1 {
		t.Error("reset should restore full admission")
	}
}

func TestPIControllerErrors(t *testing.T) {
	if _, err := NewPIController(1, 1, 0); err == nil {
		t.Error("zero target should fail")
	}
	if _, err := NewPIController(-1, 1, 1); err == nil {
		t.Error("negative gain should fail")
	}
}
