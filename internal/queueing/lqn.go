package queueing

import "fmt"

// A simplified layered-queueing-network (LQN) solver in the spirit of
// Franks et al.: tasks arranged in layers, where an entry's total demand is
// its own service demand plus the response times of the entries it calls
// (nested resource possession). Each task is then approximated as an
// M/M/c queue at its offered load. The solver proceeds bottom-up, which is
// exact for acyclic call graphs with one entry per task and a good
// approximation otherwise — enough to expose the paper's point that LQN
// complexity grows quickly with concurrent queues.

// LQNTask is one task (software server) of the layered model.
type LQNTask struct {
	// Name labels the task.
	Name string
	// Demand is the task's own service demand per invocation (seconds).
	Demand float64
	// Servers is the task's multiplicity (threads).
	Servers int
	// Calls maps callee task index -> mean number of synchronous calls per
	// invocation. Callees must have a higher index than the caller
	// (layers are listed top-down).
	Calls map[int]float64
}

// LQN is a layered queueing network with open arrivals into task 0.
type LQN struct {
	Tasks []LQNTask
	// Lambda is the external arrival rate into the top task.
	Lambda float64
}

// LQNTaskResult reports one task's solved metrics.
type LQNTaskResult struct {
	Name string
	// Throughput is the task's invocation rate.
	Throughput float64
	// ServiceTime is the effective service time including nested calls.
	ServiceTime float64
	// Utilization is the per-server utilization.
	Utilization float64
	// Response is the task's response time including queueing.
	Response float64
}

// Solve computes task throughputs top-down and response times bottom-up.
func (l *LQN) Solve() ([]LQNTaskResult, error) {
	n := len(l.Tasks)
	if n == 0 {
		return nil, badConfig("lqn has no tasks")
	}
	if !validNum(l.Lambda) || l.Lambda <= 0 {
		return nil, badConfig("lqn needs a positive finite arrival rate, got %g", l.Lambda)
	}
	for i, t := range l.Tasks {
		if t.Servers < 1 {
			return nil, badConfig("lqn task %d (%s) needs >= 1 server", i, t.Name)
		}
		if !validNum(t.Demand) || t.Demand < 0 {
			return nil, badConfig("lqn task %d (%s) has invalid demand %g", i, t.Name, t.Demand)
		}
		for callee, cnt := range t.Calls {
			if callee <= i || callee >= n {
				return nil, badConfig("lqn task %d (%s) calls invalid task %d (layers must be top-down)", i, t.Name, callee)
			}
			if !validNum(cnt) || cnt < 0 {
				return nil, badConfig("lqn task %d (%s) has invalid call count %g to task %d", i, t.Name, cnt, callee)
			}
		}
	}
	// Throughputs top-down.
	tput := make([]float64, n)
	tput[0] = l.Lambda
	for i := 0; i < n; i++ {
		for callee, cnt := range l.Tasks[i].Calls {
			tput[callee] += tput[i] * cnt
		}
	}
	// Response times bottom-up: effective service = own demand + sum of
	// callee responses; then M/M/c queueing at the task.
	results := make([]LQNTaskResult, n)
	for i := n - 1; i >= 0; i-- {
		t := l.Tasks[i]
		service := t.Demand
		for callee, cnt := range t.Calls {
			service += cnt * results[callee].Response
		}
		res := LQNTaskResult{Name: t.Name, Throughput: tput[i], ServiceTime: service}
		if tput[i] > 0 && service > 0 {
			mu := 1 / service
			if t.Servers == 1 {
				q, err := NewMM1(tput[i], mu)
				if err != nil {
					return nil, fmt.Errorf("queueing: lqn task %s: %w", t.Name, err)
				}
				res.Utilization = q.Utilization()
				res.Response = q.MeanResponse()
			} else {
				q, err := NewMMc(tput[i], mu, t.Servers)
				if err != nil {
					return nil, fmt.Errorf("queueing: lqn task %s: %w", t.Name, err)
				}
				res.Utilization = q.Utilization()
				res.Response = q.MeanResponse()
			}
		} else {
			res.Response = service
		}
		results[i] = res
	}
	return results, nil
}

// NumParams returns the parameter count of the layered model (demand,
// multiplicity and call counts per task), the model-complexity measure the
// cross-examination scorecard reports for in-depth models.
func (l *LQN) NumParams() int {
	total := 1 // lambda
	for _, t := range l.Tasks {
		total += 2 + len(t.Calls)
	}
	return total
}
