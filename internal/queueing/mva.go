package queueing

// (validation helpers badConfig/validNum live in analytic.go)

// Exact Mean Value Analysis for closed product-form queueing networks —
// the "analysis of closed queueing networks" Luthi's VU-lists target and
// the BCMP-style closed models of Imieowski. A closed network has N
// circulating customers (e.g. N concurrent users with think time) visiting
// queueing stations with given service demands.

// MVAStation is one station of a closed network.
type MVAStation struct {
	// Name labels the station.
	Name string
	// Demand is the per-visit service demand times the visit ratio
	// (seconds per job cycle).
	Demand float64
	// Delay marks a pure delay (infinite-server) station, e.g. user think
	// time: customers never queue there.
	Delay bool
}

// MVAResult holds the steady state for one population size.
type MVAResult struct {
	// Customers is the population N this row describes.
	Customers int
	// Throughput is the system throughput X(N) in jobs/second.
	Throughput float64
	// ResponseTime is the total response time R(N) excluding delay
	// stations' contribution is included (R = N/X).
	ResponseTime float64
	// QueueLen holds the mean number of customers at each station.
	QueueLen []float64
	// StationResp holds the per-station residence time.
	StationResp []float64
}

// MVA computes the exact mean value analysis for populations 1..n and
// returns one result per population size.
func MVA(stations []MVAStation, n int) ([]MVAResult, error) {
	if len(stations) == 0 {
		return nil, badConfig("mva needs at least one station")
	}
	if n < 1 {
		return nil, badConfig("mva needs a positive population, got %d", n)
	}
	var total float64
	for i, s := range stations {
		if !validNum(s.Demand) || s.Demand < 0 {
			return nil, badConfig("mva station %d (%s) has invalid demand %g", i, s.Name, s.Demand)
		}
		total += s.Demand
	}
	if total <= 0 {
		return nil, badConfig("mva needs a positive total demand")
	}
	k := len(stations)
	queue := make([]float64, k) // Q_i(N-1), starts at 0 for N=0
	results := make([]MVAResult, 0, n)
	for pop := 1; pop <= n; pop++ {
		resp := make([]float64, k)
		var total float64
		for i, s := range stations {
			if s.Delay {
				resp[i] = s.Demand
			} else {
				resp[i] = s.Demand * (1 + queue[i])
			}
			total += resp[i]
		}
		x := float64(pop) / total
		next := make([]float64, k)
		for i := range stations {
			next[i] = x * resp[i]
		}
		queue = next
		results = append(results, MVAResult{
			Customers:    pop,
			Throughput:   x,
			ResponseTime: total,
			QueueLen:     next,
			StationResp:  resp,
		})
	}
	return results, nil
}

// Bottleneck returns the index of the station with the largest demand
// among queueing (non-delay) stations — the asymptotic throughput limit
// X(N) -> 1/D_max.
func Bottleneck(stations []MVAStation) (int, error) {
	best, bestD := -1, -1.0
	for i, s := range stations {
		if s.Delay {
			continue
		}
		if s.Demand > bestD {
			best, bestD = i, s.Demand
		}
	}
	if best < 0 {
		return 0, badConfig("no queueing station in the network")
	}
	return best, nil
}
