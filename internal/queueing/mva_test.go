package queueing

import (
	"math"
	"testing"
)

func TestMVASingleStation(t *testing.T) {
	// One queueing station, N=1: no queueing, X = 1/D.
	res, err := MVA([]MVAStation{{Name: "cpu", Demand: 0.1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	approx(t, res[0].Throughput, 10, 1e-12, "X(1)")
	approx(t, res[0].ResponseTime, 0.1, 1e-12, "R(1)")
	// With more customers the single station saturates: X -> 1/D.
	approx(t, res[2].Throughput, 10, 1e-9, "X(3) saturated")
	approx(t, res[2].ResponseTime, 0.3, 1e-9, "R(3) = N/X")
}

func TestMVAInteractiveSystem(t *testing.T) {
	// Classic interactive system: think time Z=2s (delay), cpu D=0.05,
	// disk D=0.08 (bottleneck). Asymptotes: X -> 1/0.08 = 12.5;
	// R -> N*Dmax - Z for large N.
	stations := []MVAStation{
		{Name: "think", Demand: 2, Delay: true},
		{Name: "cpu", Demand: 0.05},
		{Name: "disk", Demand: 0.08},
	}
	res, err := MVA(stations, 100)
	if err != nil {
		t.Fatal(err)
	}
	// N=1: no queueing anywhere.
	approx(t, res[0].ResponseTime, 2.13, 1e-9, "R(1)")
	approx(t, res[0].Throughput, 1/2.13, 1e-9, "X(1)")
	// Large N: bottleneck law.
	x100 := res[99].Throughput
	approx(t, x100, 12.5, 0.05, "X(100) near bottleneck limit")
	// Throughput is non-decreasing in N for product-form networks.
	for i := 1; i < len(res); i++ {
		if res[i].Throughput < res[i-1].Throughput-1e-9 {
			t.Fatalf("throughput decreased at N=%d", i+1)
		}
	}
	// Little's law at every population: N = X * (R) where R includes all
	// stations (think included in ResponseTime here since R=sum resp).
	for _, row := range res {
		if math.Abs(float64(row.Customers)-row.Throughput*row.ResponseTime) > 1e-6 {
			t.Fatalf("Little's law violated at N=%d", row.Customers)
		}
	}
	// Queue lengths sum to N.
	last := res[99]
	var totalQ float64
	for _, q := range last.QueueLen {
		totalQ += q
	}
	approx(t, totalQ, 100, 1e-6, "queue lengths sum to N")
}

func TestMVABottleneck(t *testing.T) {
	stations := []MVAStation{
		{Name: "think", Demand: 5, Delay: true},
		{Name: "cpu", Demand: 0.05},
		{Name: "disk", Demand: 0.08},
	}
	b, err := Bottleneck(stations)
	if err != nil {
		t.Fatal(err)
	}
	if stations[b].Name != "disk" {
		t.Errorf("bottleneck = %s, want disk", stations[b].Name)
	}
	if _, err := Bottleneck([]MVAStation{{Name: "z", Demand: 1, Delay: true}}); err == nil {
		t.Error("delay-only network should fail")
	}
}

func TestMVAErrors(t *testing.T) {
	if _, err := MVA(nil, 5); err == nil {
		t.Error("no stations should fail")
	}
	if _, err := MVA([]MVAStation{{Demand: 1}}, 0); err == nil {
		t.Error("zero population should fail")
	}
	if _, err := MVA([]MVAStation{{Demand: -1}}, 1); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestMVAMatchesOpenNetworkAtLowLoad(t *testing.T) {
	// With a huge think time the closed system behaves like an open one
	// at rate N/Z: compare a light-load case with M/M/1.
	const z = 1000.0
	stations := []MVAStation{
		{Name: "think", Demand: z, Delay: true},
		{Name: "srv", Demand: 0.1},
	}
	res, err := MVA(stations, 50)
	if err != nil {
		t.Fatal(err)
	}
	last := res[49]
	lambda := last.Throughput // ~50/1000 = 0.05
	q, err := NewMM1(lambda, 10)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, last.StationResp[1], q.MeanResponse(), 0.002, "station response vs open M/M/1")
}
