package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcmodel/internal/stats"
)

// Property: for random stable configurations the simulator conserves jobs
// (exactly NumJobs - Warmup records), produces non-negative waits, keeps
// utilization in [0, 1], and response = wait + service per visit.
func TestSimulateInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nStations := 1 + r.Intn(3)
		stations := make([]Station, nStations)
		for i := range stations {
			stations[i] = Station{
				Name:    "s",
				Servers: 1 + r.Intn(3),
				Service: stats.Exponential{Rate: 5 + 10*r.Float64()},
			}
		}
		path := make([]int, 1+r.Intn(nStations))
		for i := range path {
			path[i] = r.Intn(nStations)
		}
		cfg := Config{
			Stations:     stations,
			Classes:      []Class{{Name: "c", Weight: 1, Path: path}},
			Interarrival: stats.Exponential{Rate: 0.5 + r.Float64()},
			NumJobs:      300,
			Warmup:       30,
		}
		res, err := Simulate(cfg, r)
		if err != nil {
			return false
		}
		if len(res.Jobs) != 270 {
			return false
		}
		for _, j := range res.Jobs {
			var wait, svc float64
			for _, s := range j.Steps {
				if s.Wait < 0 || s.Service < 0 {
					return false
				}
				wait += s.Wait
				svc += s.Service
			}
			if math.Abs(j.Response()-(wait+svc)) > 1e-6 {
				return false
			}
		}
		for _, s := range res.Stations {
			if s.Utilization < 0 || s.Utilization > 1+1e-9 {
				return false
			}
			if s.MeanQueueLen < 0 || s.MeanWait < 0 {
				return false
			}
		}
		return res.Makespan > 0 && res.Throughput > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: MVA with random demands satisfies Little's law at every
// population and throughput never exceeds the bottleneck bound.
func TestMVAInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		stations := make([]MVAStation, n)
		var dmax float64
		for i := range stations {
			stations[i] = MVAStation{
				Demand: 0.01 + r.Float64(),
				Delay:  r.Intn(3) == 0 && i > 0,
			}
			if !stations[i].Delay && stations[i].Demand > dmax {
				dmax = stations[i].Demand
			}
		}
		if dmax == 0 {
			stations[0].Delay = false
			dmax = stations[0].Demand
		}
		res, err := MVA(stations, 30)
		if err != nil {
			return false
		}
		for _, row := range res {
			if math.Abs(float64(row.Customers)-row.Throughput*row.ResponseTime) > 1e-6 {
				return false
			}
			if row.Throughput > 1/dmax+1e-9 {
				return false
			}
			var q float64
			for _, v := range row.QueueLen {
				if v < 0 {
					return false
				}
				q += v
			}
			if math.Abs(q-float64(row.Customers)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
