package queueing

import (
	"errors"
	"math"
	"testing"

	"dcmodel/internal/errs"
)

// TestBadConfigSentinel pins the hardening contract: malformed solver
// inputs — negative demands, zero service rates, NaN/Inf parameters —
// come back as wrapped errs.ErrBadConfig, never as NaN/Inf results that
// would leak into JSON responses.
func TestBadConfigSentinel(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		err  func() error
	}{
		{"mm1 zero mu", func() error { _, err := NewMM1(1, 0); return err }},
		{"mm1 nan lambda", func() error { _, err := NewMM1(nan, 1); return err }},
		{"mm1 inf mu", func() error { _, err := NewMM1(1, inf); return err }},
		{"mmc zero servers", func() error { _, err := NewMMc(1, 2, 0); return err }},
		{"mmc nan mu", func() error { _, err := NewMMc(1, nan, 2); return err }},
		{"mg1 negative var", func() error { _, err := NewMG1(1, 0.1, -1); return err }},
		{"mg1 inf mean", func() error { _, err := NewMG1(1, inf, 0); return err }},
		{"gg1 negative scv", func() error { _, err := NewGG1(1, -0.5, 0.1, 1); return err }},
		{"gg1 nan scv", func() error { _, err := NewGG1(1, nan, 0.1, 1); return err }},
		{"mva negative demand", func() error {
			_, err := MVA([]MVAStation{{Name: "d", Demand: -1}}, 4)
			return err
		}},
		{"mva nan demand", func() error {
			_, err := MVA([]MVAStation{{Name: "d", Demand: nan}}, 4)
			return err
		}},
		{"mva zero total demand", func() error {
			_, err := MVA([]MVAStation{{Name: "d", Demand: 0}}, 4)
			return err
		}},
		{"jackson zero mu", func() error {
			n := &JacksonNetwork{
				Nodes:   []JacksonNode{{Name: "a", Mu: 0, Servers: 1, External: 1}},
				Routing: [][]float64{{0}},
			}
			_, err := n.Solve()
			return err
		}},
		{"jackson nan routing", func() error {
			n := &JacksonNetwork{
				Nodes:   []JacksonNode{{Name: "a", Mu: 2, Servers: 1, External: 1}},
				Routing: [][]float64{{nan}},
			}
			_, err := n.Solve()
			return err
		}},
		{"jackson no external", func() error {
			n := &JacksonNetwork{
				Nodes:   []JacksonNode{{Name: "a", Mu: 2, Servers: 1}},
				Routing: [][]float64{{0}},
			}
			_, err := n.Solve()
			return err
		}},
		{"lqn nan lambda", func() error {
			l := &LQN{Tasks: []LQNTask{{Name: "t", Demand: 0.1, Servers: 1}}, Lambda: nan}
			_, err := l.Solve()
			return err
		}},
		{"lqn negative demand", func() error {
			l := &LQN{Tasks: []LQNTask{{Name: "t", Demand: -0.1, Servers: 1}}, Lambda: 1}
			_, err := l.Solve()
			return err
		}},
		{"controller nan target", func() error { _, err := NewPIController(0.1, 0.1, nan); return err }},
	}
	for _, tc := range cases {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap errs.ErrBadConfig", tc.name, err)
		}
		if errors.Is(err, ErrUnstable) {
			t.Errorf("%s: validation error %v must not claim instability", tc.name, err)
		}
	}
}

// TestUnstableDistinctFromBadConfig keeps the two error classes apart: an
// overloaded but well-formed queue is ErrUnstable, not ErrBadConfig.
func TestUnstableDistinctFromBadConfig(t *testing.T) {
	for name, err := range map[string]error{
		"mm1": func() error { _, err := NewMM1(2, 1); return err }(),
		"mmc": func() error { _, err := NewMMc(5, 1, 3); return err }(),
		"mg1": func() error { _, err := NewMG1(20, 0.1, 0); return err }(),
		"gg1": func() error { _, err := NewGG1(20, 1, 0.1, 1); return err }(),
	} {
		if !errors.Is(err, ErrUnstable) {
			t.Errorf("%s: overload error %v is not ErrUnstable", name, err)
		}
		if errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("%s: overload error %v must not be ErrBadConfig", name, err)
		}
	}
	// An unstable Jackson node surfaces the node's ErrUnstable.
	n := &JacksonNetwork{
		Nodes:   []JacksonNode{{Name: "hot", Mu: 1, Servers: 1, External: 2}},
		Routing: [][]float64{{0}},
	}
	if _, err := n.Solve(); !errors.Is(err, ErrUnstable) {
		t.Errorf("jackson overload error %v is not ErrUnstable", err)
	}
}
