package replay

import (
	"reflect"
	"testing"

	"dcmodel/internal/fault"
	"dcmodel/internal/gfs"
)

// TestDegradedReplayRequeues: under an aggressive scenario, slots fail
// mid-replay and their in-flight requests requeue — more retries, no
// requests dropped, structurally valid output.
func TestDegradedReplayRequeues(t *testing.T) {
	tr := gfsTrace(t, 3, 600, 21)
	p := Platform{
		NewServer: gfs.DefaultServerHW,
		Faults:    &fault.Config{MTBF: 2, MTTR: 0.5, Seed: 9},
	}
	re, err := Run(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tr.Len() {
		t.Fatalf("replayed %d requests, want %d: faults must delay work, not drop it", re.Len(), tr.Len())
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("degraded replay fails validation: %v", err)
	}
	retried := 0
	for i, got := range re.Requests {
		orig := tr.Requests[i]
		if got.Retries > orig.Retries {
			retried++
			if got.Latency() <= orig.Latency() {
				t.Fatalf("request %d requeued %d times but latency did not grow", got.ID, got.Retries-orig.Retries)
			}
		}
		if len(got.Spans) != len(orig.Spans) {
			t.Fatalf("request %d replayed %d spans, want %d", got.ID, len(got.Spans), len(orig.Spans))
		}
	}
	if retried == 0 {
		t.Fatal("no requeues under MTBF 2s / MTTR 0.5s — mid-replay faults are not firing")
	}
}

// TestDegradedReplayDeterministic: two degraded replays of one trace are
// identical — failure histories come from the platform's fault stream, not
// from wall-clock or map order.
func TestDegradedReplayDeterministic(t *testing.T) {
	tr := gfsTrace(t, 2, 400, 77)
	p := Platform{
		NewServer:   gfs.DefaultServerHW,
		Faults:      &fault.Config{MTBF: 1.5, MTTR: 0.4, RackSize: 2, Seed: 4},
		FaultStream: 3,
	}
	a, err := Run(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("degraded replay is not deterministic")
	}
	// A different stream of the same scenario yields a different history.
	p.FaultStream = 4
	c, err := Run(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct fault streams produced identical degraded replays")
	}
}

// TestHealthyReplayCarriesAnnotations: replay without faults passes the
// source trace's retry/failover annotations through untouched.
func TestHealthyReplayCarriesAnnotations(t *testing.T) {
	tr := gfsTrace(t, 2, 50, 5)
	tr.Requests[7].Retries = 3
	tr.Requests[7].FailedOver = true
	re, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	got := re.Requests[7]
	if got.Retries != 3 || !got.FailedOver {
		t.Fatalf("annotations not carried through: %+v", got)
	}
}

func TestDegradedReplayRejectsBadScenario(t *testing.T) {
	tr := gfsTrace(t, 1, 10, 1)
	p := Platform{
		NewServer: gfs.DefaultServerHW,
		Faults:    &fault.Config{MTBF: 0, MTTR: 1},
	}
	if _, err := Run(tr, p); err == nil {
		t.Fatal("zero MTBF accepted")
	}
}
