package replay

import (
	"testing"

	"dcmodel/internal/dapper"
	"dcmodel/internal/gfs"
)

// TestReplayRecorderSeam: a Platform.Recorder receives one span tree per
// replayed request, in replay order, and attaching it changes nothing
// about the replay itself.
func TestReplayRecorderSeam(t *testing.T) {
	tr := gfsTrace(t, 4, 300, 5)

	var col dapper.Collector
	with, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW, Recorder: &col})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}

	if col.Len() != with.Len() {
		t.Fatalf("recorded %d trees for %d replayed requests", col.Len(), with.Len())
	}
	for i, tree := range col.Trees() {
		if got, want := int64(tree.Root.Span.Trace)-1, with.Requests[i].ID; got != want {
			t.Fatalf("tree %d out of replay order: request ID %d, want %d", i, got, want)
		}
		// The tree reflects the replayed (not the original) timings.
		if lat := tree.Latency(); lat != with.Requests[i].Latency() {
			t.Fatalf("tree %d latency %g, replayed request latency %g", i, lat, with.Requests[i].Latency())
		}
	}
	for i := range with.Requests {
		if with.Requests[i].Latency() != without.Requests[i].Latency() {
			t.Fatalf("recorder perturbed replay timing at request %d", i)
		}
	}
}
