// Package replay executes a workload trace — original or synthetic — on a
// simulated server platform (internal/hw) and measures the resulting
// timing. Replaying both the original and the model-generated workload on
// the same platform is how the validation experiments compare performance
// metrics, mirroring the paper's methodology of measuring synthetic
// requests against the originals on one system.
//
// Replay consumes span features only (sizes, LBNs, banks, operation
// types), never recorded durations: all timing is recomputed from the
// platform models. For a trace produced by the GFS simulator on an
// identical platform, replay reproduces the original timing exactly
// (single-replica configurations), which is the engine's core invariant.
package replay

import (
	"fmt"
	"sort"

	"dcmodel/internal/dapper"
	"dcmodel/internal/fault"
	"dcmodel/internal/hw"
	"dcmodel/internal/trace"
)

// Platform describes the simulated hardware the workload runs on.
type Platform struct {
	// NewServer builds one server's hardware models. Required.
	NewServer func() *hw.Server
	// Servers is the number of servers; 0 infers max(Server)+1 from the
	// trace.
	Servers int
	// Faults, when non-nil, degrades the platform: server slots fail and
	// recover on Markov-modulated timelines, and a request in flight on a
	// failing slot is requeued — it waits out the repair plus a client
	// timeout with exponential backoff and re-executes on the recovered
	// server, with its Retries annotation incremented. Nil replays on
	// healthy hardware, bit for bit as before.
	Faults *fault.Config
	// FaultStream selects the failure-history sub-stream when Faults is
	// armed (see gfs.RunConfig.FaultStream).
	FaultStream uint64
	// Recorder, when non-nil, receives one dapper span tree per replayed
	// request, in replay (arrival) order — the shared tracing seam (see
	// dapper.Recorder). Recording reads the finished request only and
	// perturbs no timing; wrap the recorder with obs.SampleEvery to keep a
	// fraction.
	Recorder dapper.Recorder
}

// serverState is one server's hardware plus per-subsystem availability
// (the same flow-shop contention model the GFS simulator uses).
type serverState struct {
	hw     *hw.Server
	freeAt [4]float64
}

// Run replays tr on the platform and returns a new trace with identical
// features but recomputed span timing and per-request CPU utilization.
func Run(tr *trace.Trace, p Platform) (*trace.Trace, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if p.NewServer == nil {
		return nil, fmt.Errorf("replay: platform needs a NewServer factory")
	}
	nServers := p.Servers
	for _, r := range tr.Requests {
		if r.Server+1 > nServers {
			nServers = r.Server + 1
		}
		if r.Server < 0 {
			return nil, fmt.Errorf("replay: request %d has negative server", r.ID)
		}
	}
	servers := make([]*serverState, nServers)
	for i := range servers {
		srv := p.NewServer()
		if err := srv.Validate(); err != nil {
			return nil, fmt.Errorf("replay: server %d: %w", i, err)
		}
		servers[i] = &serverState{hw: srv}
	}
	var sched *fault.Schedule
	if p.Faults != nil {
		var err error
		sched, err = fault.NewSchedule(*p.Faults, nServers, p.FaultStream)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	// Replay in arrival order.
	order := make([]int, tr.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tr.Requests[order[a]].Arrival < tr.Requests[order[b]].Arrival
	})
	out := &trace.Trace{Requests: make([]trace.Request, tr.Len())}
	for _, idx := range order {
		req, err := replayRequest(tr.Requests[idx], servers, sched)
		if err != nil {
			return nil, err
		}
		out.Requests[idx] = req
		if p.Recorder != nil {
			p.Recorder.Record(dapper.FromRequest(req))
		}
	}
	return out, nil
}

// maxReplayAttempts bounds one request's requeue loop; past it the replay
// proceeds on the current slot regardless — a termination backstop.
const maxReplayAttempts = 256

// replayRequest executes one request's spans in order on its server. With
// a fault schedule armed, a slot that is down at issue time — or dies
// before the request's spans complete — costs the attempt: the in-flight
// work is rolled back and requeued to re-execute once the server has
// recovered and the client's timeout-plus-backoff has elapsed.
func replayRequest(r trace.Request, servers []*serverState, sched *fault.Schedule) (trace.Request, error) {
	srv := servers[r.Server]
	out := trace.Request{
		ID: r.ID, Class: r.Class, Server: r.Server, Arrival: r.Arrival,
		Retries: r.Retries, FailedOver: r.FailedOver,
		Spans: make([]trace.Span, 0, len(r.Spans)),
	}
	// The memory row is derived from the request's storage target (buffer
	// and checksum pages are tied to the accessed blocks), matching the
	// trace generator's convention.
	var storageLBN int64
	for _, s := range r.Spans {
		if s.Subsystem == trace.Storage {
			storageLBN = s.LBN
			break
		}
	}
	var fcfg fault.Config
	if sched != nil {
		fcfg = sched.Config()
	}
	issue := r.Arrival
	attempt := 0
	for {
		if sched != nil && sched.DownAt(r.Server, issue) {
			// Slot down at issue: requeue behind the repair.
			issue = requeueAt(sched, r.Server, issue, fcfg, attempt)
			attempt++
			out.Retries++
			if attempt >= maxReplayAttempts {
				sched = nil
			}
			continue
		}
		saved := srv.freeAt
		now := issue
		var cpuBusy float64
		out.Spans = out.Spans[:0]
		for _, s := range r.Spans {
			var dur float64
			switch s.Subsystem {
			case trace.Network:
				dur = srv.hw.Net.TransferTime(s.Bytes)
			case trace.CPU:
				dur = srv.hw.CPU.Time(s.Bytes)
				cpuBusy += dur
			case trace.Memory:
				row := (storageLBN * 4096) / srv.hw.Mem.RowBytes
				dur = srv.hw.Mem.Access(s.Bank, row, s.Bytes)
			case trace.Storage:
				dur = srv.hw.Disk.Access(s.LBN, s.Bytes)
			default:
				return trace.Request{}, fmt.Errorf("replay: request %d has invalid subsystem %d", r.ID, s.Subsystem)
			}
			start := now
			if f := srv.freeAt[s.Subsystem]; f > start {
				start = f
			}
			ns := s
			ns.Start = start
			ns.Duration = dur
			srv.freeAt[s.Subsystem] = start + dur
			now = start + dur
			out.Spans = append(out.Spans, ns)
		}
		// Mid-replay failure: the slot dying before the request's spans
		// complete loses the attempt; the rolled-back work requeues.
		if sched != nil {
			if fail := sched.NextFailure(r.Server, issue); fail < now {
				srv.freeAt = saved
				issue = requeueAt(sched, r.Server, fail, fcfg, attempt)
				attempt++
				out.Retries++
				if attempt >= maxReplayAttempts {
					sched = nil
				}
				continue
			}
		}
		// Recompute the achieved per-request CPU utilization. Requeue
		// delays count toward residence, mirroring the GFS simulator.
		latency := now - r.Arrival
		util := 0.0
		if latency > 0 {
			util = cpuBusy / latency
		}
		if util > 1 {
			util = 1
		}
		for i := range out.Spans {
			if out.Spans[i].Subsystem == trace.CPU {
				out.Spans[i].Util = util
			}
		}
		return out, nil
	}
}

// requeueAt returns the instant a failed attempt re-issues: the server's
// recovery or the client's timeout-plus-exponential-backoff, whichever is
// later. The backoff exponent is capped to keep pathological schedules
// finite.
func requeueAt(sched *fault.Schedule, server int, failedAt float64, fcfg fault.Config, attempt int) float64 {
	if attempt > 16 {
		attempt = 16
	}
	wait := failedAt + fcfg.Timeout + fcfg.Backoff*float64(int64(1)<<uint(attempt))
	if up := sched.NextUp(server, wait); up > wait {
		return up
	}
	return wait
}
