// Package replay executes a workload trace — original or synthetic — on a
// simulated server platform (internal/hw) and measures the resulting
// timing. Replaying both the original and the model-generated workload on
// the same platform is how the validation experiments compare performance
// metrics, mirroring the paper's methodology of measuring synthetic
// requests against the originals on one system.
//
// Replay consumes span features only (sizes, LBNs, banks, operation
// types), never recorded durations: all timing is recomputed from the
// platform models. For a trace produced by the GFS simulator on an
// identical platform, replay reproduces the original timing exactly
// (single-replica configurations), which is the engine's core invariant.
package replay

import (
	"fmt"
	"sort"

	"dcmodel/internal/hw"
	"dcmodel/internal/trace"
)

// Platform describes the simulated hardware the workload runs on.
type Platform struct {
	// NewServer builds one server's hardware models. Required.
	NewServer func() *hw.Server
	// Servers is the number of servers; 0 infers max(Server)+1 from the
	// trace.
	Servers int
}

// serverState is one server's hardware plus per-subsystem availability
// (the same flow-shop contention model the GFS simulator uses).
type serverState struct {
	hw     *hw.Server
	freeAt [4]float64
}

// Run replays tr on the platform and returns a new trace with identical
// features but recomputed span timing and per-request CPU utilization.
func Run(tr *trace.Trace, p Platform) (*trace.Trace, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if p.NewServer == nil {
		return nil, fmt.Errorf("replay: platform needs a NewServer factory")
	}
	nServers := p.Servers
	for _, r := range tr.Requests {
		if r.Server+1 > nServers {
			nServers = r.Server + 1
		}
		if r.Server < 0 {
			return nil, fmt.Errorf("replay: request %d has negative server", r.ID)
		}
	}
	servers := make([]*serverState, nServers)
	for i := range servers {
		srv := p.NewServer()
		if err := srv.Validate(); err != nil {
			return nil, fmt.Errorf("replay: server %d: %w", i, err)
		}
		servers[i] = &serverState{hw: srv}
	}
	// Replay in arrival order.
	order := make([]int, tr.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tr.Requests[order[a]].Arrival < tr.Requests[order[b]].Arrival
	})
	out := &trace.Trace{Requests: make([]trace.Request, tr.Len())}
	for _, idx := range order {
		req, err := replayRequest(tr.Requests[idx], servers)
		if err != nil {
			return nil, err
		}
		out.Requests[idx] = req
	}
	return out, nil
}

// replayRequest executes one request's spans in order on its server.
func replayRequest(r trace.Request, servers []*serverState) (trace.Request, error) {
	srv := servers[r.Server]
	out := trace.Request{
		ID: r.ID, Class: r.Class, Server: r.Server, Arrival: r.Arrival,
		Spans: make([]trace.Span, 0, len(r.Spans)),
	}
	// The memory row is derived from the request's storage target (buffer
	// and checksum pages are tied to the accessed blocks), matching the
	// trace generator's convention.
	var storageLBN int64
	for _, s := range r.Spans {
		if s.Subsystem == trace.Storage {
			storageLBN = s.LBN
			break
		}
	}
	now := r.Arrival
	var cpuBusy float64
	for _, s := range r.Spans {
		var dur float64
		switch s.Subsystem {
		case trace.Network:
			dur = srv.hw.Net.TransferTime(s.Bytes)
		case trace.CPU:
			dur = srv.hw.CPU.Time(s.Bytes)
			cpuBusy += dur
		case trace.Memory:
			row := (storageLBN * 4096) / srv.hw.Mem.RowBytes
			dur = srv.hw.Mem.Access(s.Bank, row, s.Bytes)
		case trace.Storage:
			dur = srv.hw.Disk.Access(s.LBN, s.Bytes)
		default:
			return trace.Request{}, fmt.Errorf("replay: request %d has invalid subsystem %d", r.ID, s.Subsystem)
		}
		start := now
		if f := srv.freeAt[s.Subsystem]; f > start {
			start = f
		}
		ns := s
		ns.Start = start
		ns.Duration = dur
		srv.freeAt[s.Subsystem] = start + dur
		now = start + dur
		out.Spans = append(out.Spans, ns)
	}
	// Recompute the achieved per-request CPU utilization.
	latency := now - r.Arrival
	util := 0.0
	if latency > 0 {
		util = cpuBusy / latency
	}
	if util > 1 {
		util = 1
	}
	for i := range out.Spans {
		if out.Spans[i].Subsystem == trace.CPU {
			out.Spans[i].Util = util
		}
	}
	return out, nil
}
