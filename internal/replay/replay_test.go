package replay

import (
	"math"
	"math/rand"
	"testing"

	"dcmodel/internal/gfs"
	"dcmodel/internal/hw"
	"dcmodel/internal/trace"
	"dcmodel/internal/workload"
)

func gfsTrace(t *testing.T, servers, n int, seed int64) *trace.Trace {
	t.Helper()
	cfg := gfs.DefaultConfig()
	cfg.Chunkservers = servers
	c, err := gfs.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: n,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayReproducesOriginalExactly(t *testing.T) {
	// The engine's core invariant: replaying a GFS trace on an identical
	// platform reproduces every span time and thus every latency.
	tr := gfsTrace(t, 1, 500, 500)
	re, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tr.Len() {
		t.Fatalf("replayed %d requests, want %d", re.Len(), tr.Len())
	}
	for i, orig := range tr.Requests {
		got := re.Requests[i]
		if got.ID != orig.ID || got.Class != orig.Class {
			t.Fatalf("request %d identity changed", i)
		}
		if math.Abs(got.Latency()-orig.Latency()) > 1e-9 {
			t.Fatalf("request %d latency %g != original %g", i, got.Latency(), orig.Latency())
		}
		for j := range orig.Spans {
			if math.Abs(got.Spans[j].Start-orig.Spans[j].Start) > 1e-9 ||
				math.Abs(got.Spans[j].Duration-orig.Spans[j].Duration) > 1e-9 {
				t.Fatalf("request %d span %d timing mismatch: %+v vs %+v", i, j, got.Spans[j], orig.Spans[j])
			}
		}
	}
}

func TestReplayReproducesCacheHitTrace(t *testing.T) {
	// Requests without a storage phase (page-cache hits) replay exactly
	// too: the memory-row convention matches the generator's.
	cfg := gfs.DefaultConfig()
	cfg.CacheHitProb = 0.5
	c, err := gfs.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(gfs.RunConfig{
		Mix:      workload.Table2Mix(),
		Arrivals: workload.Poisson{Rate: 20},
		Requests: 800,
	}, rand.New(rand.NewSource(506)))
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range tr.Requests {
		if math.Abs(re.Requests[i].Latency()-orig.Latency()) > 1e-9 {
			t.Fatalf("request %d latency %g != original %g", i, re.Requests[i].Latency(), orig.Latency())
		}
	}
}

func TestReplayMultiServer(t *testing.T) {
	tr := gfsTrace(t, 4, 800, 501)
	re, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range tr.Requests {
		if math.Abs(re.Requests[i].Latency()-orig.Latency()) > 1e-9 {
			t.Fatalf("request %d latency mismatch on multi-server replay", i)
		}
	}
}

func TestReplayPreservesFeatures(t *testing.T) {
	tr := gfsTrace(t, 1, 300, 502)
	re, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range tr.Requests {
		got := re.Requests[i]
		for j, s := range orig.Spans {
			g := got.Spans[j]
			if g.Bytes != s.Bytes || g.LBN != s.LBN || g.Bank != s.Bank || g.Op != s.Op {
				t.Fatalf("request %d span %d features changed: %+v vs %+v", i, j, g, s)
			}
		}
	}
}

func TestReplaySlowerPlatformSlower(t *testing.T) {
	tr := gfsTrace(t, 1, 300, 503)
	fast, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW})
	if err != nil {
		t.Fatal(err)
	}
	slowHW := func() *hw.Server {
		s := gfs.DefaultServerHW()
		s.Disk.TransferRate /= 4
		s.Net.Bandwidth /= 4
		return s
	}
	slow, err := Run(tr, Platform{NewServer: slowHW})
	if err != nil {
		t.Fatal(err)
	}
	var fastMean, slowMean float64
	for i := range fast.Requests {
		fastMean += fast.Requests[i].Latency()
		slowMean += slow.Requests[i].Latency()
	}
	if slowMean <= fastMean {
		t.Errorf("slow platform total %g not above fast %g", slowMean, fastMean)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Run(nil, Platform{NewServer: gfs.DefaultServerHW}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Run(&trace.Trace{}, Platform{NewServer: gfs.DefaultServerHW}); err == nil {
		t.Error("empty trace should fail")
	}
	tr := gfsTrace(t, 1, 10, 504)
	if _, err := Run(tr, Platform{}); err == nil {
		t.Error("missing server factory should fail")
	}
	bad := &trace.Trace{Requests: []trace.Request{{ID: 1, Server: -1}}}
	if _, err := Run(bad, Platform{NewServer: gfs.DefaultServerHW}); err == nil {
		t.Error("negative server should fail")
	}
	badHW := func() *hw.Server { return &hw.Server{} }
	if _, err := Run(tr, Platform{NewServer: badHW}); err == nil {
		t.Error("invalid hardware should fail")
	}
	badSpan := &trace.Trace{Requests: []trace.Request{{
		ID: 1, Spans: []trace.Span{{Subsystem: trace.Subsystem(9)}},
	}}}
	if _, err := Run(badSpan, Platform{NewServer: gfs.DefaultServerHW}); err == nil {
		t.Error("invalid subsystem should fail")
	}
}

func TestReplayExplicitServerCount(t *testing.T) {
	tr := gfsTrace(t, 1, 50, 505)
	re, err := Run(tr, Platform{NewServer: gfs.DefaultServerHW, Servers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 50 {
		t.Errorf("replayed %d", re.Len())
	}
}
