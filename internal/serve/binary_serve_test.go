package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dcmodel/internal/trace"
)

// TestBinaryIngestAndServe covers the trace-v2 content negotiation end to
// end: binary ingest trains the same model a CSV ingest would, synthesize
// serves format=binary byte-for-byte equal to the CSV output's trace, and
// replay echoes the negotiated codec.
func TestBinaryIngestAndServe(t *testing.T) {
	tr := gfsTrace(t, 400, 1)
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}

	cfg := quietConfig()
	cfg.Window = 2048
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Ingest via the binary codec (with a media-type parameter, which the
	// negotiation must ignore).
	resp, err := http.Post(ts.URL+"/v1/ingest", trace.ContentTypeV2+"; q=1", bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Ingested  int  `json:"ingested"`
		Retrained bool `json:"retrained"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Ingested != 400 || !ing.Retrained {
		t.Fatalf("binary ingest: status=%d ingested=%d retrained=%v", resp.StatusCode, ing.Ingested, ing.Retrained)
	}

	// format=binary synthesize must carry the trace-v2 media type and
	// decode to the same trace the CSV output describes.
	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	respB, binBody := get(ts.URL + "/v1/synthesize?n=200&seed=7&format=binary")
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("binary synthesize status = %d: %s", respB.StatusCode, binBody)
	}
	if ct := respB.Header.Get("Content-Type"); ct != trace.ContentTypeV2 {
		t.Fatalf("binary synthesize Content-Type = %q", ct)
	}
	respC, csvBody := get(ts.URL + "/v1/synthesize?n=200&seed=7&format=csv")
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("csv synthesize status = %d", respC.StatusCode)
	}
	fromBin, err := trace.ReadBinary(bytes.NewReader(binBody))
	if err != nil {
		t.Fatalf("decode binary synthesize body: %v", err)
	}
	var reCSV bytes.Buffer
	if err := trace.WriteCSV(&reCSV, fromBin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reCSV.Bytes(), csvBody) {
		t.Fatal("binary and csv synthesize outputs describe different traces")
	}

	// Replay negotiation: a binary body comes back as a binary re-timed
	// trace with the same request count.
	resp, err = http.Post(ts.URL+"/v1/replay", trace.ContentTypeV2, bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary replay status = %d: %s", resp.StatusCode, replayed)
	}
	if ct := resp.Header.Get("Content-Type"); ct != trace.ContentTypeV2 {
		t.Fatalf("binary replay Content-Type = %q", ct)
	}
	timed, err := trace.ReadBinary(bytes.NewReader(replayed))
	if err != nil {
		t.Fatalf("decode replayed binary trace: %v", err)
	}
	if timed.Len() != tr.Len() {
		t.Fatalf("replay kept %d of %d requests", timed.Len(), tr.Len())
	}

	// A corrupt binary body is a 400 with everything decoded before the
	// defect kept — the same partial-ingest contract as CSV.
	cut := bin.Bytes()[:bin.Len()/2]
	resp, err = http.Post(ts.URL+"/v1/ingest", trace.ContentTypeV2, bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var bad struct {
		Ingested int    `json:"ingested"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || bad.Error == "" {
		t.Fatalf("truncated binary ingest: status=%d error=%q", resp.StatusCode, bad.Error)
	}
}

// TestBinaryIngestMatchesCSVIngest trains one daemon over CSV and one over
// trace-v2 from the same trace and asserts the resulting models synthesize
// identical workloads — the codec cannot leak into the model.
func TestBinaryIngestMatchesCSVIngest(t *testing.T) {
	tr := gfsTrace(t, 400, 3)
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	csv := traceCSV(t, tr)

	synth := func(contentType string, body []byte) []byte {
		cfg := quietConfig()
		cfg.Window = 2048
		s := newTestServer(t, cfg)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/ingest", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest (%s) status = %d", contentType, resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + "/v1/synthesize?n=300&seed=9")
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("synthesize (%s): status=%d err=%v", contentType, resp.StatusCode, err)
		}
		return out
	}
	if !bytes.Equal(synth("text/csv", csv), synth(trace.ContentTypeV2, bin.Bytes())) {
		t.Fatal("models trained via CSV and binary ingest synthesize different traces")
	}
}
