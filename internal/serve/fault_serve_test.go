package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dcmodel/internal/trace"
)

// nanTrace builds a trace whose arrivals are NaN: it streams through ingest
// (the window does not re-validate) but every trainer rejects it, which is
// the deterministic way to poison the retrain path.
func nanTrace(n int, startID int64) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			ID:      startID + int64(i),
			Class:   "read64K",
			Arrival: math.NaN(),
			Spans: []trace.Span{
				{Subsystem: trace.CPU, Duration: 0.001, Util: 0.5},
			},
		})
	}
	return tr
}

// metricsBody fetches /metrics through the handler.
func metricsBody(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	return rec.Body.String()
}

// TestRetrainBreaker: a poisoned window fails retrains without taking down
// serving — after BreakerThreshold consecutive failures the breaker opens,
// automatic retrains go quiet, the last good generation keeps serving, and
// a successful manual retrain over a cleaned window closes the breaker.
func TestRetrainBreaker(t *testing.T) {
	cfg := quietConfig()
	cfg.Window = 8
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Hour
	s := newTestServer(t, cfg)

	// Warm up on good data.
	retrained, reason, err := s.Ingest(gfsTrace(t, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !retrained || reason != ReasonCold {
		t.Fatalf("warmup: retrained=%v reason=%q, want cold", retrained, reason)
	}
	gen1 := s.model.Load()
	if gen1 == nil {
		t.Fatal("no model after warmup")
	}

	// Poison the whole window, then force retrains until the breaker trips.
	if _, _, err := s.Ingest(nanTrace(8, 100)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= cfg.BreakerThreshold; i++ {
		if err := s.Retrain(); err == nil {
			t.Fatalf("retrain %d on a poisoned window succeeded", i)
		}
		if got := s.model.Load(); got != gen1 {
			t.Fatalf("retrain failure %d swapped the served generation", i)
		}
	}
	if open, _ := s.BreakerOpen(); !open {
		t.Fatalf("breaker closed after %d consecutive failures", cfg.BreakerThreshold)
	}
	if got := s.metrics.breakerTrips.Value(); got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}

	// With the breaker open, poisoned ingests are quiet no-ops: no retrain
	// attempt, no error, no new failures counted.
	errsBefore := s.metrics.retrainErrors.Value()
	retrained, _, err = s.Ingest(nanTrace(8, 200))
	if err != nil || retrained {
		t.Fatalf("ingest with open breaker: retrained=%v err=%v, want quiet no-op", retrained, err)
	}
	if got := s.metrics.retrainErrors.Value(); got != errsBefore {
		t.Fatalf("open breaker still attempted a retrain (%d -> %d errors)", errsBefore, got)
	}

	// The last good generation is still the one serving.
	if got := s.model.Load(); got != gen1 {
		t.Fatal("poisoned retrains changed the served generation")
	}
	hz := httptest.NewRecorder()
	s.Handler().ServeHTTP(hz, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health struct {
		Warm        bool `json:"warm"`
		BreakerOpen bool `json:"retrain_breaker_open"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Warm || !health.BreakerOpen {
		t.Fatalf("healthz = %+v, want warm with an open breaker", health)
	}
	if !strings.Contains(metricsBody(t, s), "dcmodeld_retrain_breaker_trips_total 1") {
		t.Error("metrics missing the breaker trip counter")
	}

	// Clean data evicts the poison; the manual probe closes the breaker.
	if _, _, err := s.Ingest(gfsTrace(t, 8, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Retrain(); err != nil {
		t.Fatalf("probe retrain over a clean window: %v", err)
	}
	if open, _ := s.BreakerOpen(); open {
		t.Fatal("breaker still open after a successful retrain")
	}
	if got := s.model.Load(); got == gen1 {
		t.Fatal("probe retrain did not produce a fresh generation")
	}
}

// TestFaultsAdminEndpoint drives the /v1/faults lifecycle over HTTP:
// query, arm (with validation), observe degraded replay, disarm, and
// observe healthy replay again.
func TestFaultsAdminEndpoint(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	getFaults := func() faultsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/faults")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/faults status = %d", resp.StatusCode)
		}
		var fr faultsResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}
	if fr := getFaults(); fr.Armed || fr.Scenario != nil {
		t.Fatalf("fresh daemon reports %+v, want disarmed", fr)
	}

	// Bad bodies and bad scenarios are 400s and leave the daemon disarmed.
	for _, body := range []string{"{", `{"mtbf": -1, "mttr": 1}`, `{"mtbf": 2}`, `{"bogus": 1}`} {
		resp, err := http.Post(ts.URL+"/v1/faults", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", body, resp.StatusCode)
		}
	}
	if fr := getFaults(); fr.Armed {
		t.Fatal("rejected scenario left the daemon armed")
	}

	// Baseline: deterministic healthy replay.
	body := traceCSV(t, gfsTrace(t, 600, 3))
	replayOnce := func() *trace.Trace {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/replay", "text/csv", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay status = %d", resp.StatusCode)
		}
		tr, err := trace.ReadCSV(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	healthy := replayOnce()
	for _, r := range healthy.Requests {
		if r.Retries > 0 {
			t.Fatal("healthy replay produced retries")
		}
	}

	// Arm an aggressive scenario; defaults are filled in the response.
	resp, err := http.Post(ts.URL+"/v1/faults", "application/json",
		strings.NewReader(`{"mtbf": 2, "mttr": 0.5, "rack_size": 2, "seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	var armed faultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&armed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !armed.Armed || armed.Scenario == nil {
		t.Fatalf("arm: status=%d body=%+v", resp.StatusCode, armed)
	}
	if armed.Scenario.Timeout <= 0 || armed.Scenario.Backoff <= 0 {
		t.Fatalf("armed scenario missing defaults: %+v", armed.Scenario)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		FaultsArmed bool `json:"faults_armed"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if !health.FaultsArmed {
		t.Fatal("healthz does not report the armed scenario")
	}

	// Degraded replay: same trace, now with requeues and grown latencies.
	degraded := replayOnce()
	if degraded.Len() != healthy.Len() {
		t.Fatalf("degraded replay returned %d of %d requests", degraded.Len(), healthy.Len())
	}
	retried := 0
	for _, r := range degraded.Requests {
		if r.Retries > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("armed scenario did not degrade the replay")
	}

	// Disarm: replay is healthy (and deterministic) again.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/faults", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disarm status = %d", resp.StatusCode)
	}
	if fr := getFaults(); fr.Armed {
		t.Fatal("daemon still armed after DELETE")
	}
	again := replayOnce()
	if again.Len() != healthy.Len() {
		t.Fatalf("post-disarm replay returned %d requests", again.Len())
	}
	for _, r := range again.Requests {
		if r.Retries > 0 {
			t.Fatal("post-disarm replay still degraded")
		}
	}

	// Method and drain checks.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/faults", strings.NewReader("{}"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT status = %d, want 405", resp.StatusCode)
	}
	s.Close()
	resp, err = http.Post(ts.URL+"/v1/faults", "application/json",
		strings.NewReader(`{"mtbf": 2, "mttr": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("arming a draining daemon: status = %d, want 503", resp.StatusCode)
	}
}

// TestFaultArmedDrainNoDrops is the chaos acceptance test: with an
// aggressive fault scenario armed over /v1/faults, a graceful drain fired
// mid-flight must still complete every admitted replay and synthesize
// request with a full body — faults degrade latency, never availability.
func TestFaultArmedDrainNoDrops(t *testing.T) {
	cfg := quietConfig()
	cfg.QueueDepth = 64
	cfg.Workers = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest(gfsTrace(t, 200, 1)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	for i := 0; ; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if i > 100 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/faults", "application/json",
		strings.NewReader(`{"mtbf": 2, "mttr": 0.5, "rack_size": 2, "seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm status = %d", resp.StatusCode)
	}

	// Bodies are prebuilt: goroutines must not touch testing.T helpers.
	const clients = 8
	const replayN, synthN = 400, 3000
	replayBodies := make([][]byte, clients)
	for i := 0; i < clients; i += 2 {
		replayBodies[i] = traceCSV(t, gfsTrace(t, replayN, int64(i)+10))
	}

	type result struct {
		code    int
		n       int
		retried int
		err     error
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			var resp *http.Response
			var err error
			if i%2 == 0 {
				resp, err = http.Post(base+"/v1/replay", "text/csv", bytes.NewReader(replayBodies[i]))
			} else {
				resp, err = http.Get(fmt.Sprintf("%s/v1/synthesize?n=%d&seed=%d", base, synthN, i+1))
			}
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				results <- result{code: resp.StatusCode, err: err}
				return
			}
			r := result{code: resp.StatusCode}
			if resp.StatusCode == http.StatusOK {
				tr, err := trace.ReadCSV(bytes.NewReader(b))
				if err != nil {
					results <- result{code: resp.StatusCode, err: err}
					return
				}
				r.n = tr.Len()
				for _, req := range tr.Requests {
					if req.Retries > 0 {
						r.retried++
					}
				}
			}
			results <- r
		}(i)
	}

	// SIGTERM while the armed requests are in flight.
	time.Sleep(20 * time.Millisecond)
	cancel()

	totalRetried := 0
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request %d dropped during armed drain: %v", i, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("request %d status = %d during armed drain, want 200", i, r.code)
		}
		if r.n != replayN && r.n != synthN {
			t.Fatalf("request %d body truncated: %d requests", i, r.n)
		}
		totalRetried += r.retried
	}
	if totalRetried == 0 {
		t.Error("no replayed request carried retries — the armed scenario never engaged")
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after armed drain, want nil", err)
	}
}
