package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"dcmodel/internal/crossexam"
	"dcmodel/internal/errs"
	"dcmodel/internal/fault"
	"dcmodel/internal/obs"
	"dcmodel/internal/replay"
	"dcmodel/internal/trace"
	"dcmodel/internal/twin"
)

// Handler returns the daemon's HTTP handler (also used directly by the
// lifecycle tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.instrumented("ingest", s.handleIngest))
	mux.HandleFunc("/v1/synthesize", s.instrumented("synthesize", s.handleSynthesize))
	mux.HandleFunc("/v1/characterize", s.instrumented("characterize", s.handleCharacterize))
	mux.HandleFunc("/v1/replay", s.instrumented("replay", s.handleReplay))
	mux.HandleFunc("/v1/whatif", s.instrumented("whatif", s.handleWhatIf))
	mux.HandleFunc("/v1/provision", s.instrumented("provision", s.handleProvision))
	mux.HandleFunc("/v1/faults", s.timed("faults", s.handleFaults))
	mux.HandleFunc("/v1/traces", s.timed("traces", s.handleTraces))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Obs != nil && s.cfg.Obs.Pprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// statusWriter captures the status code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// timed wraps a handler with latency/status accounting.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.metrics.observe(name, sw.code, time.Since(start).Seconds())
	}
}

// instrumented is timed plus live tracing: when the tracer samples this
// request, a root span rides the request context through the pipeline
// stages, the response status is annotated, and the finished tree is
// delivered to the trace ring. Unsampled requests (and daemons without
// Obs) pay one atomic increment.
func (s *Server) instrumented(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		span := s.spanner.StartRequest("http:"+name, 0)
		if span != nil {
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span))
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		span.Annotate("status=%d", sw.code)
		span.Finish()
		s.metrics.observe(name, sw.code, time.Since(start).Seconds())
	}
}

// stage starts one measured pipeline stage: a child span under the
// request's sampled trace (if any) plus the wall/alloc histograms when
// the observability layer is armed. Callers defer or call the returned
// stop function.
func (s *Server) stage(span *obs.LiveSpan, name string) func() {
	return obs.Stage(span, name, s.stageSecs, s.stageAlloc)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// querySeed parses the seed parameter; seeds must be positive, matching
// the CLI flag contract.
func querySeed(r *http.Request) (int64, error) {
	v := r.URL.Query().Get("seed")
	if v == "" {
		return 1, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad seed %q: need a positive integer", v)
	}
	return n, nil
}

// enqueue admits job to the bounded work queue and waits for it under the
// per-request deadline. It owns the full backpressure contract: 429 +
// Retry-After on a full queue, 503 while draining, 504 on deadline.
// The job must send exactly one func on done (its response writer).
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, job func(ctx context.Context) func(http.ResponseWriter)) bool {
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	done := make(chan func(http.ResponseWriter), 1)
	admitted := s.pool.TrySubmit(func() {
		if ctx.Err() != nil {
			// The client gave up (or the deadline passed) while the job
			// was queued; skip the work.
			done <- nil
			return
		}
		done <- job(ctx)
	})
	if !admitted {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "work queue full (%d deep)", s.cfg.QueueDepth)
		return false
	}
	select {
	case respond := <-done:
		if respond == nil {
			s.metrics.deadline.Add(1)
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded while queued")
			return false
		}
		respond(w)
		return true
	case <-ctx.Done():
		s.metrics.deadline.Add(1)
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded")
		return false
	}
}

// isBinaryTrace reports whether the request body is a trace-v2 stream
// (Content-Type: application/x-dcmodel-trace-v2, media-type parameters
// ignored). Anything else is treated as CSV, the default interchange
// format. The media-type check itself lives in internal/trace
// (IsBinaryMediaType), shared with the cluster coordinator and worker.
func isBinaryTrace(r *http.Request) bool {
	return trace.IsBinaryMediaType(r.Header.Get("Content-Type"))
}

// ingestBatchRequests is how many decoded requests are applied to the
// window per ingestMu acquisition: large enough to amortize the lock,
// small enough that concurrent ingests interleave instead of serializing
// behind one slow client.
const ingestBatchRequests = 256

// handleIngest streams trace spans from the request body into the sliding
// window, running the online-training decision once the batch is in. The
// body is CSV by default; Content-Type: application/x-dcmodel-trace-v2
// selects the binary columnar codec. Decoding runs OUTSIDE ingestMu — a
// batch of requests is decoded from the (possibly slow) client stream,
// then applied under a short lock — so one stalled uploader cannot block
// concurrent ingests or the metrics scrape path.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	span := obs.SpanFrom(r.Context())
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes)
	dec := trace.NewRequestReader(body, r.Header.Get("Content-Type"))
	var ingested int
	var decodeErr error
	stop := s.stage(span, "ingest.decode")
	batch := make([]trace.Request, 0, ingestBatchRequests)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.ingestMu.Lock()
		for i := range batch {
			s.ingestOne(batch[i])
		}
		s.ingestMu.Unlock()
		ingested += len(batch)
		batch = batch[:0]
	}
	for {
		req, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			decodeErr = err
			break
		}
		batch = append(batch, req)
		if len(batch) == ingestBatchRequests {
			flush()
		}
	}
	// Everything decoded before a defect is kept, same as before the
	// batched path: the trailing partial batch flushes here.
	flush()
	stop()
	span.Annotate("ingested=%d", ingested)
	retrained, reason, trainErr := false, "", error(nil)
	if ingested > 0 {
		s.ingestMu.Lock()
		retrained, reason, trainErr = s.maybeRetrainLocked(span)
		s.ingestMu.Unlock()
	}

	n, capacity, total, _ := s.win.stats()
	resp := map[string]any{
		"ingested":  ingested,
		"window":    n,
		"capacity":  capacity,
		"total":     total,
		"retrained": retrained,
	}
	if reason != "" {
		resp["retrain_reason"] = reason
	}
	if trainErr != nil {
		resp["train_error"] = trainErr.Error()
	}
	code := http.StatusOK
	if decodeErr != nil {
		// Everything decoded before the defect was kept; report both.
		resp["error"] = decodeErr.Error()
		code = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// handleSynthesize generates a synthetic workload from a warm model.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
		return
	}
	n, err := queryInt(r, "n", 1000)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if n < 1 || n > s.cfg.MaxSynth {
		httpError(w, http.StatusBadRequest, "n must be in [1, %d], got %d", s.cfg.MaxSynth, n)
		return
	}
	seed, err := querySeed(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	modelName := r.URL.Query().Get("model")
	if modelName == "" {
		modelName = "kooza"
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	if format != "csv" && format != "json" && format != "binary" {
		httpError(w, http.StatusBadRequest, "format must be csv, json or binary, got %q", format)
		return
	}
	doReplay := r.URL.Query().Get("replay") == "1"

	ms := s.model.Load()
	if ms == nil {
		httpError(w, http.StatusServiceUnavailable, "%v: ingest a trace first", errs.ErrModelNotTrained)
		return
	}
	// The daemon serves bulk traces, so it rides the batch synthesis path
	// (byte-identical to the scalar one at the same seed).
	var synthesize func(int, *rand.Rand) (*trace.Trace, error)
	switch modelName {
	case "kooza":
		synthesize = ms.Kooza.SynthesizeBatch
	case "inbreadth":
		synthesize = ms.InBreadth.SynthesizeBatch
	case "indepth":
		synthesize = ms.InDepth.SynthesizeBatch
	default:
		httpError(w, http.StatusBadRequest, "model must be kooza, inbreadth or indepth, got %q", modelName)
		return
	}

	p := s.replayPlatform()
	span := obs.SpanFrom(r.Context())
	waitStop := s.stage(span, "queue.wait")
	s.enqueue(w, r, func(ctx context.Context) func(http.ResponseWriter) {
		waitStop()
		stop := s.stage(span, "synthesize")
		synth, err := synthesize(n, rand.New(rand.NewSource(seed)))
		stop()
		if err != nil {
			return func(w http.ResponseWriter) {
				httpError(w, http.StatusInternalServerError, "synthesize: %v", err)
			}
		}
		if doReplay && ctx.Err() == nil {
			stop = s.stage(span, "replay")
			synth, err = replay.Run(synth, p)
			stop()
			if err != nil {
				return func(w http.ResponseWriter) {
					httpError(w, http.StatusInternalServerError, "replay: %v", err)
				}
			}
		}
		stop = s.stage(span, "encode")
		var buf bytes.Buffer
		switch format {
		case "json":
			err = trace.WriteJSON(&buf, synth)
		case "binary":
			err = trace.WriteBinary(&buf, synth)
		default:
			err = trace.WriteCSV(&buf, synth)
		}
		stop()
		if err != nil {
			return func(w http.ResponseWriter) {
				httpError(w, http.StatusInternalServerError, "encode: %v", err)
			}
		}
		return func(w http.ResponseWriter) {
			switch format {
			case "json":
				w.Header().Set("Content-Type", "application/json")
			case "binary":
				w.Header().Set("Content-Type", trace.ContentTypeV2)
			default:
				w.Header().Set("Content-Type", "text/csv")
			}
			w.Write(buf.Bytes())
		}
	})
}

// characterizeResponse is the JSON shape of /v1/characterize; the Scores
// entries use the stable field tags shared with RenderScores consumers.
type characterizeResponse struct {
	TrainedOn int                `json:"trained_on"`
	Window    int                `json:"window"`
	N         int                `json:"n"`
	Seed      int64              `json:"seed"`
	Scores    []crossexam.Scores `json:"scores"`
}

// handleCharacterize runs the Table 1 cross-examination of the warm
// models against the current window.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	seed, err := querySeed(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ms := s.model.Load()
	if ms == nil {
		httpError(w, http.StatusServiceUnavailable, "%v: ingest a trace first", errs.ErrModelNotTrained)
		return
	}
	winN, _, _, _ := s.win.stats()
	def := winN
	if def > 2000 {
		def = 2000
	}
	n, err := queryInt(r, "n", def)
	if err != nil || n < 1 || n > s.cfg.MaxSynth {
		httpError(w, http.StatusBadRequest, "n must be in [1, %d]", s.cfg.MaxSynth)
		return
	}
	span := obs.SpanFrom(r.Context())
	waitStop := s.stage(span, "queue.wait")
	s.enqueue(w, r, func(ctx context.Context) func(http.ResponseWriter) {
		waitStop()
		stop := s.stage(span, "crossexam")
		defer stop()
		snap := s.win.snapshot()
		approaches := []crossexam.Approach{
			{Name: "in-breadth", Knobs: 3, Synthesize: ms.InBreadth.SynthesizeBatch, NumParams: ms.InBreadth.NumParams()},
			{Name: "in-depth", Knobs: 1, SelfTimed: true, Synthesize: ms.InDepth.SynthesizeBatch, NumParams: ms.InDepth.NumParams()},
			{Name: "KOOZA", Knobs: 5, Synthesize: ms.Kooza.SynthesizeBatch, NumParams: ms.Kooza.NumParams()},
		}
		// Workers=1: the daemon's parallelism budget belongs to the pool,
		// not to nested fan-outs inside one job.
		scores, err := crossexam.Evaluate(snap, approaches, n, s.replayPlatform(), crossexam.Options{
			Seed: seed, Workers: 1,
		})
		if err != nil {
			return func(w http.ResponseWriter) {
				httpError(w, http.StatusInternalServerError, "characterize: %v", err)
			}
		}
		resp := characterizeResponse{
			TrainedOn: ms.TrainedOn,
			Window:    snap.Len(),
			N:         n,
			Seed:      seed,
			Scores:    scores,
		}
		return func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp)
		}
	})
}

// handleReplay replays a streamed trace on the simulated platform and
// returns the re-timed trace. The body is negotiated like /v1/ingest (CSV
// default, Content-Type: application/x-dcmodel-trace-v2 for the binary
// codec) and the response echoes the request's format.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	span := obs.SpanFrom(r.Context())
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes)
	binary := isBinaryTrace(r)
	stop := s.stage(span, "replay.decode")
	var tr *trace.Trace
	var err error
	if binary {
		tr, err = trace.ReadBinary(body)
	} else {
		tr, err = trace.ReadCSV(body)
	}
	stop()
	if err != nil {
		httpError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if tr.Len() == 0 {
		httpError(w, http.StatusBadRequest, "empty trace")
		return
	}
	span.Annotate("requests=%d", tr.Len())
	p := s.replayPlatform()
	waitStop := s.stage(span, "queue.wait")
	s.enqueue(w, r, func(ctx context.Context) func(http.ResponseWriter) {
		waitStop()
		stop := s.stage(span, "replay")
		timed, err := replay.Run(tr, p)
		stop()
		if err != nil {
			return func(w http.ResponseWriter) {
				httpError(w, http.StatusInternalServerError, "replay: %v", err)
			}
		}
		stop = s.stage(span, "encode")
		var buf bytes.Buffer
		if binary {
			err = trace.WriteBinary(&buf, timed)
		} else {
			err = trace.WriteCSV(&buf, timed)
		}
		stop()
		if err != nil {
			return func(w http.ResponseWriter) {
				httpError(w, http.StatusInternalServerError, "encode: %v", err)
			}
		}
		return func(w http.ResponseWriter) {
			if binary {
				w.Header().Set("Content-Type", trace.ContentTypeV2)
			} else {
				w.Header().Set("Content-Type", "text/csv")
			}
			w.Write(buf.Bytes())
		}
	})
}

// whatifRequest is the JSON body of POST /v1/whatif: which warm model's
// analytical twin answers, plus the closed-form query itself. The query
// uses the twin package's stable snake_case field tags.
type whatifRequest struct {
	Model string     `json:"model"`
	Query twin.Query `json:"query"`
}

// whatifResponse is the JSON shape of /v1/whatif. Field order, tags and the
// deterministic twin arithmetic together make the response byte-stable for
// a given warm generation and query.
type whatifResponse struct {
	Model     string      `json:"model"`
	TrainedOn int         `json:"trained_on"`
	Query     twin.Query  `json:"query"`
	Answer    twin.Answer `json:"answer"`
}

// compileTwin lowers one warm model generation to its analytical twin on
// the daemon's configured platform hardware. Fault scenarios degrade only
// the replay platform, so the twin always answers about healthy hardware —
// what-if exploration stays meaningful while a degraded regime is armed.
func (s *Server) compileTwin(ms *modelSet, model string) (*twin.Twin, error) {
	srv := s.cfg.Platform.NewServer()
	if srv == nil {
		return nil, fmt.Errorf("platform NewServer returned nil: %w", errs.ErrBadConfig)
	}
	switch model {
	case "kooza":
		return twin.CompileKooza(ms.Kooza, srv, s.cfg.Platform.Servers)
	case "inbreadth":
		return twin.CompileInBreadth(ms.InBreadth, srv, s.cfg.Platform.Servers)
	case "indepth":
		return twin.CompileInDepth(ms.InDepth)
	default:
		return nil, fmt.Errorf("model must be kooza, inbreadth or indepth, got %q: %w", model, errs.ErrBadConfig)
	}
}

// handleWhatIf answers a closed-form what-if query against a warm model's
// analytical twin. Unlike synthesis, characterization and replay, it does
// NOT ride the bounded work queue: a twin evaluation is pure float
// arithmetic that completes in microseconds, so what-if exploration stays
// interactive even when the queue is saturated with simulations — that
// contrast is the point of the twin. Backpressure still applies to the
// expensive endpoints; this one only needs the closed/warm checks.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req whatifRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode query: %v", err)
		return
	}
	if req.Model == "" {
		req.Model = "kooza"
	}
	ms := s.model.Load()
	if ms == nil {
		httpError(w, http.StatusServiceUnavailable, "%v: ingest a trace first", errs.ErrModelNotTrained)
		return
	}
	span := obs.SpanFrom(r.Context())
	stop := s.stage(span, "whatif.compile")
	tw, err := s.compileTwin(ms, req.Model)
	stop()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errs.ErrBadConfig) {
			code = http.StatusBadRequest
		}
		httpError(w, code, "compile twin: %v", err)
		return
	}
	stop = s.stage(span, "whatif.solve")
	ans, err := tw.WhatIf(req.Query)
	stop()
	if err != nil {
		// Twin queries fail only on invalid parameters; saturation is
		// reported in-band (answer.stable == false), never as an error.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	span.Annotate("solver=%s stable=%t", ans.Solver, ans.Stable)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(whatifResponse{
		Model:     req.Model,
		TrainedOn: ms.TrainedOn,
		Query:     req.Query,
		Answer:    ans,
	})
}

// faultsResponse is the JSON shape of /v1/faults.
type faultsResponse struct {
	Armed    bool          `json:"armed"`
	Scenario *fault.Config `json:"scenario,omitempty"`
}

// handleFaults is the fault-scenario admin endpoint: GET reports the armed
// scenario, POST arms one (JSON fault.Config body, validated after the
// defaults are applied), DELETE disarms it. The scenario degrades the
// /v1/replay platform; synthesis and serving stay healthy regardless.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// Fall through to the common response below.
	case http.MethodPost:
		if s.closed.Load() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		var cfg fault.Config
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			httpError(w, http.StatusBadRequest, "decode scenario: %v", err)
			return
		}
		if err := s.ArmFaults(cfg); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case http.MethodDelete:
		s.DisarmFaults()
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET, POST or DELETE")
		return
	}
	armed := s.faults.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(faultsResponse{Armed: armed != nil, Scenario: armed})
}

// scrapeGauges feeds the gauges owned by other components (queue, window,
// drift accumulator) into the registry's bare-gauge tail at scrape time.
func (s *Server) scrapeGauges(set func(name string, v float64)) {
	n, capacity, total, spans := s.win.stats()
	s.ingestMu.Lock()
	driftTrans := s.drift.Transitions()
	s.ingestMu.Unlock()
	set("dcmodeld_queue_depth", float64(s.pool.Depth()))
	set("dcmodeld_queue_running", float64(s.pool.Running()))
	set("dcmodeld_window_requests", float64(n))
	set("dcmodeld_window_capacity", float64(capacity))
	set("dcmodeld_window_total", float64(total))
	set("dcmodeld_window_occupancy", float64(n)/float64(capacity))
	set("dcmodeld_drift_transitions", float64(driftTrans))
	for i, sub := range trace.Subsystems() {
		set(fmt.Sprintf("dcmodeld_window_spans{subsystem=%q}", sub.String()), float64(spans[i]))
	}
}

// handleMetrics renders the plain-text metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.reg.WriteText(w)
}

// handleTraces dumps the sampled span trees held by the trace ring as a
// JSON forest, oldest first — the live-tracing read path. A daemon
// without Obs (or with sampling disabled) reports enabled=false and an
// empty forest rather than a 404, so probes can distinguish "off" from
// "missing".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	dump := obs.TraceDump{Traces: []*obs.TreeDump{}}
	if s.spanner != nil {
		dump.Enabled = true
		dump.SampleEvery = s.spanner.SampleEvery()
		dump.Capacity = s.traces.Cap()
		dump.Started, dump.Sampled = s.spanner.Stats()
		for _, t := range s.traces.Snapshot() {
			if td := obs.DumpTree(t); td != nil {
				dump.Traces = append(dump.Traces, td)
			}
		}
		dump.Held = len(dump.Traces)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(dump)
}

// handleHealthz reports liveness and model warmth.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ms := s.model.Load()
	resp := map[string]any{"ok": true, "warm": ms != nil}
	if ms != nil {
		resp["trained_on"] = ms.TrainedOn
		resp["trained_at"] = ms.TrainedAt.UTC().Format(time.RFC3339Nano)
	}
	if open, until := s.BreakerOpen(); open {
		resp["retrain_breaker_open"] = true
		resp["retrain_breaker_until"] = until.UTC().Format(time.RFC3339Nano)
	}
	resp["faults_armed"] = s.faults.Load() != nil
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
