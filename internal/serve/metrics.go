package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Plain-text metrics in the Prometheus exposition style, stdlib only:
// atomic counters, a mutex-guarded label map for per-handler request
// counts, and fixed-bucket latency histograms.

// latencyBuckets are the cumulative histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// histogram is a fixed-bucket cumulative latency histogram.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // one per bucket, plus the +Inf overflow at the end
	sum    float64
	n      int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	idx := sort.SearchFloat64s(latencyBuckets, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// write renders the histogram with cumulative bucket counts.
func (h *histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	var cum int64
	for i, bound := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, bound, cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, n)
}

// metrics aggregates the daemon's counters. All methods are safe for
// concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // handler -> status code -> count
	latency  map[string]*histogram    // handler -> latency histogram

	rejected       atomic.Int64 // 429s from a full queue
	deadline       atomic.Int64 // requests cut off by the per-request deadline
	ingested       atomic.Int64 // requests folded into the window
	retrains       atomic.Int64
	retrainErrors  atomic.Int64
	driftRetrains  atomic.Int64
	staleRetrains  atomic.Int64
	breakerTrips   atomic.Int64
	lastDriftStat  atomic.Uint64 // math.Float64bits
	lastDriftP     atomic.Uint64 // math.Float64bits
	modelTrainedOn atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]map[int]int64),
		latency:  make(map[string]*histogram),
	}
	m.lastDriftP.Store(math.Float64bits(1))
	return m
}

// observe records one finished HTTP request.
func (m *metrics) observe(handler string, code int, seconds float64) {
	m.mu.Lock()
	byCode := m.requests[handler]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[handler] = byCode
	}
	byCode[code]++
	h := m.latency[handler]
	if h == nil {
		h = newHistogram()
		m.latency[handler] = h
	}
	m.mu.Unlock()
	h.observe(seconds)
}

func (m *metrics) setDrift(stat, p float64) {
	m.lastDriftStat.Store(math.Float64bits(stat))
	m.lastDriftP.Store(math.Float64bits(p))
}

// write renders every counter. Gauges owned by other components (queue
// depth, window occupancy) are passed in by the caller.
func (m *metrics) write(w io.Writer, gauges map[string]float64) {
	fmt.Fprintf(w, "# HELP dcmodeld_requests_total Finished HTTP requests by handler and status code.\n")
	fmt.Fprintf(w, "# TYPE dcmodeld_requests_total counter\n")
	m.mu.Lock()
	handlers := make([]string, 0, len(m.requests))
	for h := range m.requests {
		handlers = append(handlers, h)
	}
	sort.Strings(handlers)
	for _, h := range handlers {
		codes := make([]int, 0, len(m.requests[h]))
		for c := range m.requests[h] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "dcmodeld_requests_total{handler=%q,code=\"%d\"} %d\n", h, c, m.requests[h][c])
		}
	}
	hists := make([]string, 0, len(m.latency))
	for h := range m.latency {
		hists = append(hists, h)
	}
	sort.Strings(hists)
	histCopies := make([]*histogram, len(hists))
	for i, h := range hists {
		histCopies[i] = m.latency[h]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP dcmodeld_request_seconds Request latency by handler.\n")
	fmt.Fprintf(w, "# TYPE dcmodeld_request_seconds histogram\n")
	for i, h := range hists {
		histCopies[i].write(w, "dcmodeld_request_seconds", fmt.Sprintf("handler=%q", h))
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("dcmodeld_queue_rejected_total", "Requests refused with 429 because the work queue was full.", m.rejected.Load())
	counter("dcmodeld_deadline_exceeded_total", "Requests cut off by the per-request deadline.", m.deadline.Load())
	counter("dcmodeld_ingested_requests_total", "Trace requests folded into the sliding window.", m.ingested.Load())
	counter("dcmodeld_retrain_total", "Model retrains (all causes).", m.retrains.Load())
	counter("dcmodeld_retrain_drift_total", "Retrains triggered by transition-row drift.", m.driftRetrains.Load())
	counter("dcmodeld_retrain_stale_total", "Retrains triggered by model staleness.", m.staleRetrains.Load())
	counter("dcmodeld_retrain_errors_total", "Retrain attempts that failed (previous model kept).", m.retrainErrors.Load())
	counter("dcmodeld_retrain_breaker_trips_total", "Times the retrain circuit breaker opened after consecutive failures.", m.breakerTrips.Load())

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("dcmodeld_drift_stat", "Chi-square statistic of the last drift check.", math.Float64frombits(m.lastDriftStat.Load()))
	gauge("dcmodeld_drift_p", "P-value of the last drift check.", math.Float64frombits(m.lastDriftP.Load()))
	gauge("dcmodeld_model_trained_on", "Window requests the served model was trained on (0 = cold).", float64(m.modelTrainedOn.Load()))
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		// Labelled gauge series (e.g. window spans per subsystem) are
		// emitted bare; HELP/TYPE headers apply to unlabelled names only.
		fmt.Fprintf(w, "%s %g\n", n, gauges[n])
	}
}
