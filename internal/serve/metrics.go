package serve

import (
	"strconv"

	"dcmodel/internal/obs"
)

// The daemon's metrics live on an obs.Registry; this file only names the
// instruments and pins their registration order, which the registry
// renders verbatim — the order (and therefore every byte of /metrics) is
// the same as the daemon's original hand-rolled exposition, guarded by
// TestMetricsGolden.

// latencyBuckets are the request-latency histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// metrics aggregates the daemon's instruments. All methods are safe for
// concurrent use.
type metrics struct {
	reg *obs.Registry

	requests *obs.LabeledCounter // finished requests by handler and status
	latency  *obs.HistogramVec   // request latency by handler

	rejected      *obs.Counter // 429s from a full queue
	deadline      *obs.Counter // requests cut off by the per-request deadline
	ingested      *obs.Counter // requests folded into the window
	retrains      *obs.Counter
	driftRetrains *obs.Counter
	staleRetrains *obs.Counter
	retrainErrors *obs.Counter
	breakerTrips  *obs.Counter

	provisions      *obs.Counter // provisioning searches completed (manual + auto)
	autoProvisions  *obs.Counter // drift-triggered auto-reprovision runs published
	provisionErrors *obs.Counter // auto-reprovision runs that failed

	driftStat      *obs.Gauge
	driftP         *obs.Gauge
	modelTrainedOn *obs.Gauge

	// Per-stage wall/alloc accounting, populated only when cfg.Obs arms
	// the observability layer. Lazy: an idle family renders nothing, so
	// a daemon without Obs keeps the byte-pinned exposition.
	stageSeconds *obs.HistogramVec
	stageAlloc   *obs.HistogramVec
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		requests: reg.LabeledCounter("dcmodeld_requests_total",
			"Finished HTTP requests by handler and status code.", "handler", "code"),
		latency: reg.HistogramVec("dcmodeld_request_seconds",
			"Request latency by handler.", "handler", latencyBuckets),
		rejected: reg.Counter("dcmodeld_queue_rejected_total",
			"Requests refused with 429 because the work queue was full."),
		deadline: reg.Counter("dcmodeld_deadline_exceeded_total",
			"Requests cut off by the per-request deadline."),
		ingested: reg.Counter("dcmodeld_ingested_requests_total",
			"Trace requests folded into the sliding window."),
		retrains: reg.Counter("dcmodeld_retrain_total",
			"Model retrains (all causes)."),
		driftRetrains: reg.Counter("dcmodeld_retrain_drift_total",
			"Retrains triggered by transition-row drift."),
		staleRetrains: reg.Counter("dcmodeld_retrain_stale_total",
			"Retrains triggered by model staleness."),
		retrainErrors: reg.Counter("dcmodeld_retrain_errors_total",
			"Retrain attempts that failed (previous model kept)."),
		breakerTrips: reg.Counter("dcmodeld_retrain_breaker_trips_total",
			"Times the retrain circuit breaker opened after consecutive failures."),
		provisions: reg.Counter("dcmodeld_provision_total",
			"Provisioning searches completed (POST /v1/provision and auto-reprovision)."),
		autoProvisions: reg.Counter("dcmodeld_provision_auto_total",
			"Drift-triggered auto-reprovision runs that published a plan."),
		provisionErrors: reg.Counter("dcmodeld_provision_errors_total",
			"Auto-reprovision runs that failed (last published plan kept)."),
		driftStat: reg.Gauge("dcmodeld_drift_stat",
			"Chi-square statistic of the last drift check."),
		driftP: reg.Gauge("dcmodeld_drift_p",
			"P-value of the last drift check."),
		modelTrainedOn: reg.Gauge("dcmodeld_model_trained_on",
			"Window requests the served model was trained on (0 = cold)."),
		stageSeconds: reg.HistogramVec("dcmodeld_stage_seconds",
			"Pipeline stage wall time.", "stage", obs.StageSecondsBuckets).Lazy(),
		stageAlloc: reg.HistogramVec("dcmodeld_stage_alloc_bytes",
			"Pipeline stage heap allocation (approximate, process-wide).", "stage", obs.StageAllocBuckets).Lazy(),
	}
	m.driftP.Set(1)
	return m
}

// observe records one finished HTTP request.
func (m *metrics) observe(handler string, code int, seconds float64) {
	m.requests.Add(1, handler, strconv.Itoa(code))
	m.latency.Observe(handler, seconds)
}

func (m *metrics) setDrift(stat, p float64) {
	m.driftStat.Set(stat)
	m.driftP.Set(p)
}
