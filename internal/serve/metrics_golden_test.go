package serve

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateMetrics = flag.Bool("update-metrics", false, "regenerate the /metrics golden file under testdata/")

// TestMetricsGolden pins the /metrics exposition output byte for byte.
// The golden file was generated against the pre-obs.Registry metrics
// implementation; the registry migration must not change a single byte of
// the rendered families, their ordering, or their label formatting.
func TestMetricsGolden(t *testing.T) {
	cfg := quietConfig()
	s := newTestServer(t, cfg)

	// Deterministic stimulus touching every metric family: labeled request
	// counters, latency histograms (one value per bucket regime), every
	// scalar counter, and the drift/model gauges.
	s.metrics.observe("synthesize", 200, 0.003)
	s.metrics.observe("synthesize", 200, 0.12)
	s.metrics.observe("synthesize", 429, 0.0001)
	s.metrics.observe("ingest", 200, 0.75)
	s.metrics.observe("replay", 504, 42)
	s.metrics.rejected.Add(1)
	s.metrics.deadline.Add(2)
	s.metrics.ingested.Add(400)
	s.metrics.retrains.Add(3)
	s.metrics.driftRetrains.Add(1)
	s.metrics.staleRetrains.Add(1)
	s.metrics.retrainErrors.Add(1)
	s.metrics.breakerTrips.Add(1)
	s.metrics.setDrift(12.5, 0.0625)
	s.metrics.modelTrainedOn.Set(400)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	got := rw.Body.Bytes()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateMetrics {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve/ -run MetricsGolden -update-metrics` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/metrics drifted from the golden exposition (re-run with -update-metrics only if the change is intentional)\n got:\n%s\nwant:\n%s", got, want)
	}
}
