package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dcmodel/internal/obs"
)

// getTraces fetches and decodes GET /v1/traces.
func getTraces(t *testing.T, url string) obs.TraceDump {
	t.Helper()
	resp, err := http.Get(url + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces = %d, want 200", resp.StatusCode)
	}
	var dump obs.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	return dump
}

// checkTreeWellFormed asserts the structural invariants of one dumped
// trace tree: parent IDs resolve to an ancestor already seen, and the
// root's interval covers every descendant's.
func checkTreeWellFormed(t *testing.T, tree *obs.TreeDump) {
	t.Helper()
	if tree.Root == nil {
		t.Fatal("tree without root")
	}
	if tree.Root.ParentID != 0 {
		t.Fatalf("root %d has parent %d, want 0", tree.Root.SpanID, tree.Root.ParentID)
	}
	seen := map[uint64]bool{}
	spans := 0
	var walk func(n *obs.NodeDump, parent uint64)
	walk = func(n *obs.NodeDump, parent uint64) {
		spans++
		if n.SpanID == 0 || seen[n.SpanID] {
			t.Fatalf("span ID %d zero or duplicated", n.SpanID)
		}
		seen[n.SpanID] = true
		if parent != 0 {
			if n.ParentID != parent {
				t.Fatalf("span %d has parent %d, want %d", n.SpanID, n.ParentID, parent)
			}
			if !seen[n.ParentID] {
				t.Fatalf("span %d parent %d not an ancestor", n.SpanID, n.ParentID)
			}
		}
		if n.End < n.Start {
			t.Fatalf("span %d ends (%g) before it starts (%g)", n.SpanID, n.End, n.Start)
		}
		if n.Start < tree.Root.Start || n.End > tree.Root.End {
			t.Fatalf("root [%g,%g] does not cover span %d [%g,%g]",
				tree.Root.Start, tree.Root.End, n.SpanID, n.Start, n.End)
		}
		for _, c := range n.Children {
			walk(c, n.SpanID)
		}
	}
	walk(tree.Root, 0)
	if spans != tree.Spans {
		t.Fatalf("tree claims %d spans, walked %d", tree.Spans, spans)
	}
}

// TestObsLifecycle is the observability acceptance test (run under
// -race): the 96-client bounded-load lifecycle with tracing armed, then
// /metrics and /v1/traces scraped and every sampled span tree checked
// for well-formedness while traffic is still possible.
func TestObsLifecycle(t *testing.T) {
	cfg := quietConfig()
	cfg.Window = 2048
	cfg.QueueDepth = 16
	cfg.Workers = 4
	cfg.Obs = &obs.Options{SampleEvery: 2, TraceCapacity: 64, Pprof: true}
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := traceCSV(t, gfsTrace(t, 400, 1))
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	// 96 concurrent clients against a 16-deep queue: every response must
	// be a 200 or an explicit backpressure/deadline status, with scrapes
	// interleaved to race the collectors against the pipeline.
	const clients = 96
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"kooza", "inbreadth", "indepth"}[i%3]
			resp, err := http.Get(fmt.Sprintf("%s/v1/synthesize?n=200&model=%s&seed=%d", ts.URL, model, i+1))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			if i%8 == 0 {
				r2, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					r2.Body.Close()
				}
				getTraces(t, ts.URL)
			}
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
		default:
			t.Fatalf("client %d: status %d, want 200/429/504", i, code)
		}
	}

	dump := getTraces(t, ts.URL)
	if !dump.Enabled || dump.SampleEvery != 2 || dump.Capacity != 64 {
		t.Fatalf("dump header = %+v", dump)
	}
	if dump.Sampled == 0 || len(dump.Traces) == 0 {
		t.Fatalf("no traces sampled: started=%d sampled=%d", dump.Started, dump.Sampled)
	}
	if dump.Started < dump.Sampled {
		t.Fatalf("started=%d < sampled=%d", dump.Started, dump.Sampled)
	}
	for _, tree := range dump.Traces {
		checkTreeWellFormed(t, tree)
	}

	// The stage histograms must have appeared on /metrics now that the
	// layer is armed, and pprof must be mounted.
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	if !strings.Contains(buf.String(), "dcmodeld_stage_seconds_bucket") {
		t.Fatal("stage histograms missing from /metrics with Obs armed")
	}
	r, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pprof = %d, want 200", r.StatusCode)
	}
}

// TestTracesDeterministicSampling pins the deterministic head-sampling
// contract of GET /v1/traces: a fixed request sequence against a fixed
// SampleEvery always samples the same requests with the same tree
// shapes (trace IDs, span names, span counts).
func TestTracesDeterministicSampling(t *testing.T) {
	run := func() []string {
		cfg := quietConfig()
		cfg.Window = 2048
		cfg.Obs = &obs.Options{SampleEvery: 3, TraceCapacity: 32}
		s := newTestServer(t, cfg)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		body := traceCSV(t, gfsTrace(t, 200, 7))
		resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for i := 0; i < 8; i++ {
			resp, err := http.Get(fmt.Sprintf("%s/v1/synthesize?n=50&seed=%d", ts.URL, i+1))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("synthesize %d = %d", i, resp.StatusCode)
			}
		}
		dump := getTraces(t, ts.URL)
		if dump.Started != 9 || dump.Sampled != 3 {
			// 1 ingest + 8 synthesize; head sampling keeps 1, 4, 7.
			t.Fatalf("started=%d sampled=%d, want 9 and 3", dump.Started, dump.Sampled)
		}
		var shapes []string
		for _, tree := range dump.Traces {
			checkTreeWellFormed(t, tree)
			var names []string
			var walk func(n *obs.NodeDump)
			walk = func(n *obs.NodeDump) {
				names = append(names, n.Name)
				for _, c := range n.Children {
					walk(c)
				}
			}
			walk(tree.Root)
			shapes = append(shapes, fmt.Sprintf("trace=%d spans=%d %s",
				tree.TraceID, tree.Spans, strings.Join(names, ",")))
		}
		return shapes
	}

	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs sampled %d vs %d traces", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run shapes diverge at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	// The first sampled trace is the ingest (request 1) with its decode
	// stage and the cold retrain under it.
	if !strings.HasPrefix(a[0], "trace=1 ") || !strings.Contains(a[0], "http:ingest") ||
		!strings.Contains(a[0], "ingest.decode") || !strings.Contains(a[0], "train:cold") {
		t.Fatalf("first sampled trace = %q, want the ingest with decode and cold-train spans", a[0])
	}
	// Sampled synthesize requests carry the queue.wait and synthesize
	// stages.
	if !strings.Contains(a[1], "http:synthesize") || !strings.Contains(a[1], "queue.wait") ||
		!strings.Contains(a[1], "synthesize") {
		t.Fatalf("second sampled trace = %q, want a synthesize pipeline", a[1])
	}
}

// TestTracesDisabled pins the off-state contract: a daemon without Obs
// still serves GET /v1/traces, reporting enabled=false and no trees.
func TestTracesDisabled(t *testing.T) {
	s := newTestServer(t, quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	dump := getTraces(t, ts.URL)
	if dump.Enabled || len(dump.Traces) != 0 {
		t.Fatalf("dump = %+v, want disabled and empty", dump)
	}
	// And pprof must NOT be mounted (no Obs, no profiling surface).
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without Obs.Pprof")
	}
}
