package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dcmodel/internal/errs"
	"dcmodel/internal/obs"
	"dcmodel/internal/optimize"
	"dcmodel/internal/sqs"
	"dcmodel/internal/twin"
)

// provisionRequest is the JSON body of POST /v1/provision: which warm
// model's twin drives the search, plus the shared optimizer request. The
// daemon provisions for its ingested window, so the embedded request's
// offline-only fields (Spec, Model) are rejected.
type provisionRequest struct {
	Model   string           `json:"model"`
	Request optimize.Request `json:"request"`
}

// provisionResponse is the JSON shape of /v1/provision, mirroring the
// /v1/whatif envelope: the same model/trained_on header, the (defaulted)
// request echoed back, and the plan where whatif carries the answer.
// Saturation and infeasibility are in-band (plan.feasible), never errors.
type provisionResponse struct {
	Model     string           `json:"model"`
	TrainedOn int              `json:"trained_on"`
	Request   optimize.Request `json:"request"`
	Plan      optimize.Plan    `json:"plan"`
}

// compileProvisionTwins lowers one warm model onto every platform of the
// search space. Unlike compileTwin — which answers about the daemon's own
// configured hardware — the provisioning search explores the optimizer's
// platform catalog.
func (s *Server) compileProvisionTwins(ms *modelSet, model string, space optimize.Space) (map[string]*twin.Twin, error) {
	space = optimize.SpaceDefaults(space)
	twins := make(map[string]*twin.Twin, len(space.Platforms))
	for _, name := range space.Platforms {
		pspec, ok := optimize.PlatformByName(name)
		if !ok {
			return nil, badRequestf("unknown platform %q", name)
		}
		srv := pspec.NewServer()
		var tw *twin.Twin
		var err error
		switch model {
		case "kooza":
			tw, err = twin.CompileKooza(ms.Kooza, srv, s.cfg.Platform.Servers)
		case "inbreadth":
			tw, err = twin.CompileInBreadth(ms.InBreadth, srv, s.cfg.Platform.Servers)
		case "indepth":
			tw, err = twin.CompileInDepth(ms.InDepth)
		default:
			return nil, badRequestf("model must be kooza, inbreadth or indepth, got %q", model)
		}
		if err != nil {
			return nil, err
		}
		twins[name] = tw
	}
	return twins, nil
}

func badRequestf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errs.ErrBadConfig)...)
}

// runProvision is the shared search body of the handler and the
// auto-reprovision hook: compile the per-platform twins, characterize the
// current window into the DES farm model, and run the twin-first search.
// Stage spans provision.compile / provision.characterize /
// provision.search hang under span.
func (s *Server) runProvision(ctx context.Context, span *obs.LiveSpan, ms *modelSet, model string, req optimize.Request) (optimize.Plan, error) {
	req = req.WithDefaults()
	stop := s.stage(span, "provision.compile")
	twins, err := s.compileProvisionTwins(ms, model, req.Space)
	stop()
	if err != nil {
		return optimize.Plan{}, err
	}
	stop = s.stage(span, "provision.characterize")
	var des *sqs.Model
	snap := s.win.snapshot()
	if snap.Len() > 0 {
		des, err = optimize.NewDESModel(snap, req)
	}
	stop()
	if err != nil {
		return optimize.Plan{}, err
	}
	stop = s.stage(span, "provision.search")
	plan, err := optimize.Search(ctx, optimize.Input{Twins: twins, DES: des}, req)
	stop()
	if err == nil {
		s.metrics.provisions.Add(1)
	}
	span.Annotate("feasible=%t chosen=%d evals=%d", plan.Feasible, plan.Chosen.Servers, plan.TwinEvals)
	return plan, err
}

// handleProvision runs the provisioning optimizer against the warm models
// and the ingested window. POST runs a search (riding the bounded work
// queue — a search costs twin sweeps plus DES validation runs, far beyond
// the what-if fast path); GET returns the last auto-reprovision plan.
//
// An infeasible space answers 200 with plan.feasible == false — the
// in-band convention /v1/whatif uses for saturation — because "nothing
// fits" is a valid answer carrying a full audit trail, not a failure.
func (s *Server) handleProvision(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		last := s.autoPlan.Load()
		if last == nil {
			httpError(w, http.StatusNotFound, "no auto-reprovision plan yet")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(last)
		return
	case http.MethodPost:
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req provisionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Model == "" {
		req.Model = "kooza"
	}
	if req.Request.Spec != "" || req.Request.Model != "" {
		httpError(w, http.StatusBadRequest,
			"spec/model are offline-only fields: the daemon provisions for its ingested window (select the model with the top-level model field)")
		return
	}
	ms := s.model.Load()
	if ms == nil {
		httpError(w, http.StatusServiceUnavailable, "%v: ingest a trace first", errs.ErrModelNotTrained)
		return
	}
	span := obs.SpanFrom(r.Context())
	waitStop := s.stage(span, "queue.wait")
	s.enqueue(w, r, func(ctx context.Context) func(http.ResponseWriter) {
		waitStop()
		plan, err := s.runProvision(ctx, span, ms, req.Model, req.Request)
		if err != nil && !errors.Is(err, errs.ErrNoFeasibleConfig) {
			return func(w http.ResponseWriter) {
				code := http.StatusInternalServerError
				if errors.Is(err, errs.ErrBadConfig) {
					code = http.StatusBadRequest
				}
				httpError(w, code, "provision: %v", err)
			}
		}
		resp := provisionResponse{
			Model:     req.Model,
			TrainedOn: ms.TrainedOn,
			Request:   req.Request.WithDefaults(),
			Plan:      plan,
		}
		return func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp)
		}
	})
}

// maybeAutoProvision fires the closed-loop reprovisioning hook: when the
// daemon was configured with an AutoProvision request and a drift-triggered
// retrain just swapped in a fresh model generation, the provisioning search
// re-runs in the background against the new generation, and the resulting
// plan is published on GET /v1/provision. Single-flight: a search already
// in progress is never stacked, the trigger is simply dropped (the next
// drift retrain re-fires it). Serving traffic is untouched — the search
// runs on its own goroutine, not the work queue, so in-flight requests
// neither wait for it nor get dropped by it.
func (s *Server) maybeAutoProvision() {
	if s.cfg.AutoProvision == nil || s.closed.Load() {
		return
	}
	ms := s.model.Load()
	if ms == nil {
		return
	}
	if !s.reprovisioning.CompareAndSwap(false, true) {
		return
	}
	req := *s.cfg.AutoProvision
	s.provWG.Add(1)
	go func() {
		defer s.provWG.Done()
		defer s.reprovisioning.Store(false)
		span := s.spanner.StartRequest("auto:provision", 0)
		plan, err := s.runProvision(context.Background(), span, ms, "kooza", req)
		span.Annotate("err=%v", err != nil)
		span.Finish()
		if err != nil && !errors.Is(err, errs.ErrNoFeasibleConfig) {
			s.metrics.provisionErrors.Add(1)
			return
		}
		s.metrics.autoProvisions.Add(1)
		s.autoPlan.Store(&provisionResponse{
			Model:     "kooza",
			TrainedOn: ms.TrainedOn,
			Request:   req.WithDefaults(),
			Plan:      plan,
		})
	}()
}

// LastAutoPlan returns the most recent auto-reprovision plan, or false when
// the hook has not produced one (programmatic sibling of GET /v1/provision).
func (s *Server) LastAutoPlan() (optimize.Plan, bool) {
	last := s.autoPlan.Load()
	if last == nil {
		return optimize.Plan{}, false
	}
	return last.Plan, true
}
